// Ablation: FTGM's delayed commit point (receiver ACKs the final fragment
// only after the host DMA + RECV event complete, paper Section 4.1).
//
// Two questions the design section raises:
//  (a) What does delaying the ACK cost in normal operation?
//  (b) What does removing it break? (Figure 5's lost-message window.)
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"

using namespace myri;

namespace {

// Run the Figure-5 crash scenario: hang the receiver right after it ACKs
// a message but before the RECV event reaches the host. Returns true if
// the message was eventually delivered (after full recovery).
bool message_survives_crash(bool delayed_ack, std::uint64_t seed) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  cc.ftgm_delayed_ack = delayed_ack;
  cc.seed = seed;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++received; });
  gm::Buffer b = tx.alloc_dma_buffer(64);
  (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
  // Crash at the instant the ACK leaves, before the event post completes.
  while (cluster.node(1).mcp().stats().acks_tx < 1 && cluster.eq().step()) {
  }
  if (cluster.node(1).mcp().stats().events_posted > 0) {
    // With delayed ACK this cannot happen before the event; with immediate
    // ACK the race window is real and we crash inside it.
  }
  cluster.node(1).mcp().inject_hang("fig5 window");
  cluster.run_for(sim::sec(3));
  return received >= 1;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation -- delayed commit point (ACK after DMA + event post)");

  // (a) performance cost in normal operation.
  const int iters = bench::scaled(60);
  gm::ClusterConfig delayed;
  delayed.ftgm_delayed_ack = true;
  gm::ClusterConfig immediate;
  immediate.ftgm_delayed_ack = false;

  const auto lat_d =
      bench::run_ping_pong(mcp::McpMode::kFtgm, 64, iters, delayed);
  const auto lat_i =
      bench::run_ping_pong(mcp::McpMode::kFtgm, 64, iters, immediate);
  const auto bw_d = bench::run_bandwidth_bidir(mcp::McpMode::kFtgm, 1u << 20,
                                               bench::scaled(24), delayed);
  const auto bw_i = bench::run_bandwidth_bidir(mcp::McpMode::kFtgm, 1u << 20,
                                               bench::scaled(24), immediate);

  std::printf("%-34s %14s %14s\n", "Metric", "delayed ACK", "immediate ACK");
  std::printf("%-34s %12.2fus %12.2fus\n", "64 B one-way latency",
              lat_d.half_rtt.mean_us(), lat_i.half_rtt.mean_us());
  std::printf("%-34s %10.1fMB/s %10.1fMB/s\n", "1 MB bidirectional bandwidth",
              bw_d.mb_per_s, bw_i.mb_per_s);
  std::printf("\n(a) Cost: delaying the commit point is nearly free — only "
              "the final\nfragment's ACK waits for the DMA, so multi-packet "
              "messages keep the\npipeline full (paper Section 5.1).\n");

  // (b) correctness: the Figure-5 crash window.
  const int kTrials = bench::scaled(30);
  int lost_immediate = 0, lost_delayed = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (!message_survives_crash(true, 100 + i)) ++lost_delayed;
    if (!message_survives_crash(false, 100 + i)) ++lost_immediate;
  }
  std::printf("\n(b) Crash in the ACK->host-DMA window (%d trials each):\n",
              kTrials);
  std::printf("%-34s %8d lost\n", "immediate ACK (GM commit point)",
              lost_immediate);
  std::printf("%-34s %8d lost\n", "delayed ACK (FTGM commit point)",
              lost_delayed);
  std::printf("\nClaim check: without the delayed commit point the crash "
              "loses messages\n(the sender was ACKed and will never resend); "
              "with it, zero are lost.\n");
  return 0;
}
