// Ablation: per-(port, destination) sequence streams vs the rejected
// synchronized per-connection alternative (paper Section 4.1, Fig 6).
//
// FTGM needs the HOST to generate sequence numbers. Keeping GM's original
// one-stream-per-connection structure would force every process sending to
// the same remote node to synchronize on a shared counter; the paper
// instead gives each (port, destination) its own stream, at the price of a
// slightly larger receiver ACK table (one entry per (connection, port)
// pair — bounded by GM's 8 ports per node).
//
// This bench quantifies both sides: the latency/host-util cost of the
// synchronized design as a function of its per-send synchronization price,
// and the memory cost of the chosen design's larger ACK table.
#include <cstdio>

#include "bench/common.hpp"
#include "core/backup_store.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Ablation -- per-port sequence streams vs synchronized per-connection");

  const int iters = bench::scaled(60);
  std::printf("%34s %12s %14s\n", "design (sync cost per send)",
              "latency us", "send util us");
  for (const double sync_us : {0.0, 0.3, 0.6, 1.0, 2.0}) {
    gm::ClusterConfig cc;
    cc.timing.hostt.ftgm_seq_sync = sim::usecf(sync_us);
    const auto pp = bench::run_ping_pong(mcp::McpMode::kFtgm, 64, iters, cc);

    // Host send utilization with the same knob.
    gm::ClusterConfig cu = cc;
    cu.nodes = 2;
    cu.mode = mcp::McpMode::kFtgm;
    gm::Cluster cluster(cu);
    auto& tx = cluster.node(0).open_port(2);
    auto& rx = cluster.node(1).open_port(3);
    cluster.run_for(sim::usec(900));
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
    rx.set_receive_handler([&](const gm::RecvInfo& info) {
      rx.provide_receive_buffer(info.buffer);
    });
    gm::Buffer b = tx.alloc_dma_buffer(64);
    for (int i = 0; i < 50; ++i) {
      (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
      cluster.run_for(sim::usec(100));
    }
    const double send_util =
        sim::to_usec(tx.stats().send_cpu_ns) / 50.0;

    if (sync_us == 0.0) {
      std::printf("%34s %12.2f %14.2f   <- paper's choice\n",
                  "per-(port,dst) streams (0 us)", pp.half_rtt.mean_us(),
                  send_util);
    } else {
      char label[64];
      std::snprintf(label, sizeof(label), "per-connection, sync %.1f us",
                    sync_us);
      std::printf("%34s %12.2f %14.2f\n", label, pp.half_rtt.mean_us(),
                  send_util);
    }
  }

  // Memory side: the chosen design's receiver ACK table has one entry per
  // (connection, port) instead of per connection — 8x, but tiny.
  core::BackupStore per_port, per_conn;
  constexpr int kRemoteNodes = 32;
  for (int node = 0; node < kRemoteNodes; ++node) {
    per_conn.note_recv_seq(static_cast<net::NodeId>(node), 0, 1);
    for (std::uint32_t port = 0; port < 8; ++port) {
      per_port.note_recv_seq(static_cast<net::NodeId>(node), port, 1);
    }
  }
  std::printf("\nACK-table memory for %d remote nodes:\n", kRemoteNodes);
  std::printf("  per-connection entries: %4zu (~%zu bytes)\n",
              per_conn.ack_table().size(), per_conn.approx_bytes());
  std::printf("  per-(conn,port) entries:%4zu (~%zu bytes)\n",
              per_port.ack_table().size(), per_port.approx_bytes());
  std::printf("\nClaim check: the synchronized alternative taxes EVERY send; "
              "the chosen\ndesign's extra ACK-table memory is trivial (GM "
              "allows only 8 ports/node),\nwhich is exactly the paper's "
              "argument for Fig 6(b).\n");
  return 0;
}
