// Ablation: watchdog (IT1) interval selection.
//
// The paper arms IT1 "just slightly greater" than the maximum observed
// L_timer gap (~800 us). This sweep shows the trade-off that motivates the
// choice: shorter intervals detect hangs faster but begin to fire falsely
// once they dip under the worst-case L_timer queueing delay; longer
// intervals are safe but slow detection.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"

using namespace myri;

namespace {

struct SweepPoint {
  double interval_us;
  int false_positives = 0;   // FTD wakeups that found a live MCP
  double detect_us = 0;      // mean detection latency for real hangs
  double max_gap_us = 0;     // observed max L_timer gap under the load
};

SweepPoint sweep_interval(double interval_us) {
  SweepPoint pt;
  pt.interval_us = interval_us;

  // Phase 1: heavy bidirectional load, no faults -> count false alarms.
  {
    gm::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mcp::McpMode::kFtgm;
    cc.timing.watchdog.it1_interval = sim::usecf(interval_us);
    gm::Cluster cluster(cc);
    auto& p0 = cluster.node(0).open_port(2);
    auto& p1 = cluster.node(1).open_port(2);
    fi::StreamWorkload::Config wc;
    wc.total_msgs = bench::scaled(300);
    wc.msg_len = 4096;
    fi::StreamWorkload a(p0, p1, wc), b(p1, p0, wc);
    cluster.run_for(sim::usec(900));
    a.start();
    b.start();
    cluster.run_for(sim::msec(60));
    pt.false_positives =
        static_cast<int>(cluster.node(0).ftd().stats().false_alarms +
                         cluster.node(1).ftd().stats().false_alarms);
    pt.max_gap_us = sim::to_usec(
        std::max(cluster.node(0).mcp().max_l_timer_gap(),
                 cluster.node(1).mcp().max_l_timer_gap()));
  }

  // Phase 2: real hangs -> detection latency.
  const int kReps = bench::scaled(8);
  double sum = 0;
  int n = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    gm::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mcp::McpMode::kFtgm;
    cc.timing.watchdog.it1_interval = sim::usecf(interval_us);
    gm::Cluster cluster(cc);
    cluster.node(0).open_port(2);
    cluster.run_for(sim::usec(300 + 97 * rep));
    const sim::Time t = cluster.eq().now();
    cluster.node(0).ftd().mark_fault_injected();
    cluster.node(0).mcp().inject_hang("sweep");
    cluster.run_for(sim::msec(20));
    const sim::Time raised = cluster.node(0).ftd().phases().interrupt_raised;
    // Guard against false alarms that fired before the injection (possible
    // when the interval undercuts the L_timer gap).
    if (cluster.node(0).driver().fatal_interrupts() > 0 && raised >= t) {
      sum += sim::to_usec(raised - t);
      ++n;
    }
  }
  pt.detect_us = n > 0 ? sum / n : -1;
  return pt;
}

}  // namespace

int main() {
  bench::print_header("Ablation -- watchdog interval vs detection latency");

  const std::vector<double> intervals = {300, 450, 550, 600, 700,
                                         820, 1200, 2000, 5000};
  std::printf("%14s %14s %20s %18s\n", "IT1 interval", "false alarms",
              "mean detection (us)", "max L_timer gap");
  double gap = 0;
  for (const double us : intervals) {
    const SweepPoint pt = sweep_interval(us);
    gap = std::max(gap, pt.max_gap_us);
    std::printf("%12.0fus %14d %20.0f %16.0fus %s\n", pt.interval_us,
                pt.false_positives, pt.detect_us, pt.max_gap_us,
                us == 820 ? "  <- paper's choice" : "");
  }
  std::printf("\nMeasured max L_timer gap under load: ~%.0f us (paper: "
              "~800 us on real\nhardware). Intervals at or below the gap "
              "false-alarm; the paper arms IT1\n\"just slightly greater\" "
              "than the worst gap, keeping detection sub-millisecond\nwith "
              "zero false positives.\n", gap);
  return 0;
}
