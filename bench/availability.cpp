// Extension experiment: network availability under periodic NIC faults.
//
// The paper motivates FTGM with high-availability systems (the NASA REE
// supercomputer): what matters there is the fraction of time the network
// can move messages. This bench runs a long transfer under periodic
// network-processor hangs and charts goodput over time for baseline GM
// (first hang is permanent: availability collapses) vs FTGM (each hang
// costs ~1.7 s of downtime, then service resumes).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"

using namespace myri;

namespace {

struct AvailabilityResult {
  std::vector<int> per_second;  // messages delivered in each 1 s bucket
  int delivered = 0;
  double availability = 0;      // fraction of seconds with goodput
};

AvailabilityResult run(mcp::McpMode mode, int seconds, int fault_period_s) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);

  fi::StreamWorkload::Config wc;
  wc.total_msgs = 1'000'000;  // far more than the run can move
  wc.msg_len = 65536;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();

  // Periodic faults on the sender NIC.
  for (int t = fault_period_s; t < seconds; t += fault_period_s) {
    cluster.eq().schedule_at(sim::sec(static_cast<std::uint64_t>(t)),
                             [&cluster] {
                               cluster.node(0).mcp().inject_hang("periodic");
                             });
  }

  AvailabilityResult res;
  int last_count = 0;
  for (int s = 0; s < seconds; ++s) {
    cluster.run_for(sim::sec(1));
    res.per_second.push_back(wl.received() - last_count);
    last_count = wl.received();
  }
  res.delivered = wl.received();
  int up = 0;
  for (int g : res.per_second) up += g > 0 ? 1 : 0;
  res.availability = static_cast<double>(up) / seconds;
  return res;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension -- availability under periodic NIC hangs (1 fault / 10 s)");

  const int seconds = bench::scale() < 1.0 ? 20 : 40;
  const auto gm = run(mcp::McpMode::kGm, seconds, 10);
  const auto ft = run(mcp::McpMode::kFtgm, seconds, 10);

  std::printf("per-second goodput (messages delivered):\n");
  std::printf("%6s %10s %10s\n", "sec", "GM", "FTGM");
  for (int s = 0; s < seconds; ++s) {
    std::printf("%6d %10d %10d\n", s, gm.per_second[s], ft.per_second[s]);
  }
  std::printf("\n%-28s %12s %12s\n", "", "GM", "FTGM");
  std::printf("%-28s %12d %12d\n", "total messages delivered", gm.delivered,
              ft.delivered);
  std::printf("%-28s %11.0f%% %11.0f%%\n", "network availability",
              100.0 * gm.availability, 100.0 * ft.availability);
  std::printf("\nClaim check: baseline GM never recovers from the first hang "
              "(the node\nstays cut off); FTGM pays ~1.7 s per fault and "
              "keeps serving, so\navailability stays high no matter how many "
              "faults arrive.\n");
  return 0;
}
