// Shared measurement drivers for the benchmark binaries.
//
// Mirrors the paper's methodology (Section 5.1): latency is a repetitive
// ping-pong with one-way latency = half the mean round-trip time; bandwidth
// is the sustained bidirectional rate with both hosts sending at maximum
// speed (gm_allsize-style); host utilization is the CPU time charged per
// API call; LANai utilization is NIC-processor busy time per message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "metrics/metrics.hpp"
#include "metrics/registry.hpp"

namespace myri::bench {

/// If MYRI_METRICS_JSON is set, write the registry snapshot there ("-"
/// for stdout) so a perf run leaves a machine-readable baseline behind.
inline void export_registry_json(const metrics::Registry& reg) {
  const char* path = std::getenv("MYRI_METRICS_JSON");
  if (path == nullptr) return;
  const std::string json = reg.to_json();
  if (std::string(path) == "-") {
    std::printf("%s\n", json.c_str());
    return;
  }
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("(metrics snapshot written to %s)\n", path);
  }
}

/// Environment override for run sizes: MYRI_BENCH_SCALE=0.1 shrinks
/// campaigns for quick smoke runs; default 1.0 reproduces the paper.
inline double scale() {
  const char* s = std::getenv("MYRI_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int scaled(int n) {
  const int v = static_cast<int>(n * scale());
  return v < 1 ? 1 : v;
}

struct PingPongResult {
  metrics::LatencyRecorder half_rtt;  // one-way latency samples
  sim::Time lanai_busy_per_msg = 0;   // both NICs, per one-way message
};

/// Half-round-trip latency for `iters` ping-pong exchanges of `len` bytes.
/// Numbers are sourced from the cluster's metrics registry; pass `agg` to
/// accumulate the raw registry across invocations.
inline PingPongResult run_ping_pong(mcp::McpMode mode, std::uint32_t len,
                                    int iters,
                                    const gm::ClusterConfig& base = {},
                                    metrics::Registry* agg = nullptr) {
  gm::ClusterConfig cc = base;
  cc.nodes = 2;
  cc.mode = mode;
  gm::Cluster cluster(cc);
  auto& a = cluster.node(0).open_port(2);
  auto& b = cluster.node(1).open_port(2);
  cluster.run_for(sim::usec(900));

  const std::uint32_t buf_len = len == 0 ? 4 : len;
  gm::Buffer abuf = a.alloc_dma_buffer(buf_len);
  gm::Buffer bbuf = b.alloc_dma_buffer(buf_len);
  for (int i = 0; i < 4; ++i) {
    a.provide_receive_buffer(a.alloc_dma_buffer(buf_len));
    b.provide_receive_buffer(b.alloc_dma_buffer(buf_len));
  }

  PingPongResult res;
  int remaining = iters;
  sim::Time t0 = 0;

  // Pong side: echo every message straight back.
  b.set_receive_handler([&](const gm::RecvInfo& info) {
    b.provide_receive_buffer(info.buffer);
    (void)b.post(bbuf, len, {.dst = 0, .dst_port = 2});
  });
  // Ping side: timestamp, record, fire the next iteration. Samples land
  // both in the exact recorder (fig8 percentiles) and in the registry
  // histogram, which is what aggregated reports read.
  metrics::Histogram& rtt_hist =
      cluster.metrics().histogram("bench.half_rtt_ns");
  a.set_receive_handler([&](const gm::RecvInfo& info) {
    a.provide_receive_buffer(info.buffer);
    const sim::Time half = (cluster.eq().now() - t0) / 2;
    res.half_rtt.add(half);
    rtt_hist.add(half);
    if (--remaining > 0) {
      t0 = cluster.eq().now();
      (void)a.post(abuf, len, {.dst = 1, .dst_port = 2});
    }
  });

  const metrics::Counter& busy0 =
      cluster.metrics().counter("node0.mcp.busy_ns");
  const metrics::Counter& busy1 =
      cluster.metrics().counter("node1.mcp.busy_ns");
  const std::uint64_t busy_before = busy0.value() + busy1.value();
  t0 = cluster.eq().now();
  (void)a.post(abuf, len, {.dst = 1, .dst_port = 2});
  cluster.run_for(sim::msec(10) + sim::Time(iters) * sim::usec(200));

  const std::uint64_t busy_after = busy0.value() + busy1.value();
  const std::uint64_t msgs = 2ull * static_cast<std::uint64_t>(
                                 res.half_rtt.count());
  if (msgs > 0) res.lanai_busy_per_msg = (busy_after - busy_before) / msgs;
  if (agg != nullptr) agg->merge(cluster.metrics());
  return res;
}

struct BandwidthResult {
  double mb_per_s = 0;        // per-direction sustained rate
  double lanai_busy_frac = 0; // NIC occupancy during the run
};

/// Sustained bidirectional data rate for message length `len`
/// (both hosts send `msgs` messages as fast as tokens allow). Byte counts
/// come from the receiver port's registry counter, which (being fed by
/// delivered messages only) never includes dropped traffic.
inline BandwidthResult run_bandwidth_bidir(mcp::McpMode mode,
                                           std::uint32_t len, int msgs,
                                           const gm::ClusterConfig& base = {},
                                           metrics::Registry* agg = nullptr) {
  if (msgs < 6) msgs = 6;  // rate needs a window past pipeline fill
  gm::ClusterConfig cc = base;
  cc.nodes = 2;
  cc.mode = mode;
  cc.host_mem_bytes = 48u << 20;
  gm::Cluster cluster(cc);
  auto& a = cluster.node(0).open_port(2);
  auto& b = cluster.node(1).open_port(2);

  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = len;
  wc.recv_buffers = 12;
  wc.max_in_flight = 12;
  fi::StreamWorkload ab(a, b, wc);
  fi::StreamWorkload ba(b, a, wc);
  cluster.run_for(sim::usec(900));

  // Timestamps of deliveries in the a->b direction; bytes are read from
  // the receiving port's registry counter.
  sim::Time first = 0, last = 0;
  b.set_receive_handler([&](const gm::RecvInfo& info) {
    if (first == 0) first = cluster.eq().now();
    last = cluster.eq().now();
    b.provide_receive_buffer(info.buffer);
  });
  // NOTE: StreamWorkload::start() installs its own handler; install ours
  // after start() so measurement wins but re-providing still happens here.
  ab.start();
  ba.start();
  b.set_receive_handler([&](const gm::RecvInfo& info) {
    if (first == 0) first = cluster.eq().now();
    last = cluster.eq().now();
    b.provide_receive_buffer(info.buffer);
  });

  const metrics::Counter& rx_bytes =
      cluster.metrics().counter("node1.port2.bytes_received");
  const metrics::Counter& busy_ns =
      cluster.metrics().counter("node0.mcp.busy_ns");
  const std::uint64_t bytes_before = rx_bytes.value();
  const std::uint64_t busy0 = busy_ns.value();
  const sim::Time t_start = cluster.eq().now();
  // Enough time for the slowest size; loop in chunks with early exit.
  for (int i = 0; i < 400; ++i) {
    cluster.run_for(sim::msec(5));
    if (ab.received() >= msgs && ba.received() >= msgs) break;
  }
  BandwidthResult res;
  const std::uint64_t bytes = rx_bytes.value() - bytes_before;
  if (last > first && bytes > 0) {
    // Skip the first delivery (pipeline fill) when computing the rate.
    res.mb_per_s = metrics::bandwidth_mb_per_s(bytes, first, last);
  }
  const sim::Time elapsed = cluster.eq().now() - t_start;
  if (elapsed > 0) {
    res.lanai_busy_frac = static_cast<double>(busy_ns.value() - busy0) /
                          static_cast<double>(elapsed);
  }
  if (agg != nullptr) agg->merge(cluster.metrics());
  return res;
}

/// Unidirectional run capturing host utilization per message.
struct HostUtilResult {
  double send_us_per_msg = 0;
  double recv_us_per_msg = 0;
  double lanai_us_per_msg = 0;
};

inline HostUtilResult run_host_util(mcp::McpMode mode, std::uint32_t len,
                                    int msgs,
                                    metrics::Registry* agg = nullptr) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = len;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  for (int i = 0; i < 100 && !wl.complete(); ++i) {
    cluster.run_for(sim::msec(2));
  }
  HostUtilResult r;
  if (wl.complete()) {
    metrics::Registry& reg = cluster.metrics();
    r.send_us_per_msg =
        sim::to_usec(reg.counter("node0.port2.send_cpu_ns").value()) / msgs;
    r.recv_us_per_msg =
        sim::to_usec(reg.counter("node1.port3.recv_cpu_ns").value()) / msgs;
    r.lanai_us_per_msg =
        sim::to_usec(reg.counter("node0.mcp.busy_ns").value() +
                     reg.counter("node1.mcp.busy_ns").value()) /
        msgs;
  }
  if (agg != nullptr) agg->merge(cluster.metrics());
  return r;
}

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace myri::bench
