// Extension experiment: fault injection into the MCP's DATA segment
// (send/TX descriptors + payload staging), contrasted with the paper's
// code-segment campaign. The paper anticipates this: "Surely, these
// results could be different if fault injection is carried out on some
// other section of the code."
//
// Data flips are transient by nature — the next fragment rewrites the
// descriptor, and staging slots are refilled by DMA — so hangs all but
// vanish and the distribution shifts toward silent corruption / no impact.
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/campaign.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Extension -- injection target: send_chunk code vs MCP data segment");

  fi::CampaignConfig code_cfg;
  code_cfg.runs = bench::scaled(500);
  code_cfg.seed = 31337;
  fi::CampaignConfig data_cfg = code_cfg;
  data_cfg.target = fi::InjectTarget::kDataSegment;

  const fi::CampaignSummary code = fi::Campaign(code_cfg).run();
  std::fprintf(stderr, "  code-segment campaign done\n");
  const fi::CampaignSummary data = fi::Campaign(data_cfg).run();

  std::printf("%-24s %14s %14s\n", "Failure Category", "code segment",
              "data segment");
  for (int i = 0; i < fi::kNumOutcomes; ++i) {
    const auto o = static_cast<fi::Outcome>(i);
    std::printf("%-24s %13.1f%% %13.1f%%\n", to_string(o), code.pct(o),
                data.pct(o));
  }
  std::printf("\n(%d runs per target)\n", code.runs);
  std::printf("Claim check: code flips are persistent (every send re-executes "
              "them),\nso they hang or corrupt repeatedly; data flips are "
              "overwritten by the\nnext descriptor/DMA, so the processor "
              "almost never hangs and most flips\nare harmless or corrupt at "
              "most one message.\n");
  return 0;
}
