// Event-core throughput: calendar queue vs the legacy binary heap.
//
// Two measurements, both reported as JSON (stdout + BENCH_event_throughput
// file) so CI can track the trajectory across commits:
//
//  1. Synthetic churn at 512-node scale: ~8k pending events, every fired
//     event schedules a successor at a mixed near/mid/far horizon plus a
//     far-out retransmit timer whose predecessor is cancelled — the
//     schedule/cancel mix a busy fault-tolerant cluster generates. The
//     identical deterministic workload runs on today's calendar queue and
//     on an embedded copy of the pre-rewrite shared_ptr binary-heap queue;
//     the speedup ratio is machine-portable even though absolute rates
//     are not.
//
//  2. A real 512-node kFatTree3 cluster pushing a full stream ring,
//     reporting events/sec and the sim-time/wall-time ratio.
//
// With --baseline <json> the run gates itself against a committed
// baseline: >--max-regression (default 0.30) loss of cluster events/sec
// exits non-zero, which is what the CI perf-smoke job checks.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace myri::bench {
namespace {

// ---- the pre-rewrite queue, embedded verbatim (renamed) ------------------
//
// This is the shared_ptr-per-event binary heap the calendar queue replaced
// (git history: src/sim/event_queue.{hpp,cpp} before the rewrite). Kept
// here so the speedup the rewrite bought stays measurable in-process on
// whatever machine runs the bench.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  struct Entry {
    sim::Time at = 0;
    std::uint64_t seq = 0;
    Callback cb;
    bool cancelled = false;
    bool fired = false;
    std::size_t* live_counter = nullptr;
  };

  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (auto e = entry_.lock()) {
        if (!e->fired && !e->cancelled) {
          e->cancelled = true;
          e->cb = nullptr;
          if (e->live_counter != nullptr) --*e->live_counter;
        }
      }
    }
    [[nodiscard]] bool pending() const {
      auto e = entry_.lock();
      return e && !e->fired && !e->cancelled;
    }

   private:
    friend class LegacyEventQueue;
    explicit Handle(std::shared_ptr<Entry> e) : entry_(std::move(e)) {}
    std::weak_ptr<Entry> entry_;
  };

  [[nodiscard]] sim::Time now() const noexcept { return now_; }

  Handle schedule_at(sim::Time at, Callback cb) {
    auto e = std::make_shared<Entry>();
    e->at = std::max(at, now_);
    e->seq = next_seq_++;
    e->cb = std::move(cb);
    e->live_counter = &live_;
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return Handle(e);
  }

  Handle schedule_after(sim::Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool step() {
    if (live_ == 0) {
      heap_.clear();
      return false;
    }
    return pop_and_run();
  }

  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  static bool later(const std::shared_ptr<Entry>& a,
                    const std::shared_ptr<Entry>& b) {
    if (a->at != b->at) return a->at > b->at;
    return a->seq > b->seq;
  }

  bool pop_and_run() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), later);
      auto e = std::move(heap_.back());
      heap_.pop_back();
      if (e->cancelled) continue;
      now_ = e->at;
      e->fired = true;
      --live_;
      ++executed_;
      Callback cb = std::move(e->cb);
      cb();
      return true;
    }
    return false;
  }

  std::vector<std::shared_ptr<Entry>> heap_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- synthetic churn ----------------------------------------------------
//
// Each fired event: cancels the oldest outstanding "retransmit timer",
// arms a replacement timer far out, and schedules its own successor at a
// mixed horizon (in-bucket, mid-ring, overflow). Identical RNG consumption
// on both queue types, so the event sequences match exactly.
template <class Q>
struct Churn {
  Q eq;
  sim::Rng rng{2026};
  std::uint64_t fired = 0;
  std::uint64_t target = 0;
  // Closure padding: real callbacks capture packet-sized state, and the
  // legacy std::function heap-allocated every one of them.
  std::array<unsigned char, 64> pad{};
  std::deque<typename Q::Handle> timers;

  void arm(sim::Time at) {
    eq.schedule_at(at, [this, p = pad] {
      (void)p;
      ++fired;
      if (!timers.empty()) {
        timers.front().cancel();
        timers.pop_front();
      }
      timers.push_back(
          eq.schedule_after(sim::msec(40) + rng.below(sim::msec(10)), [] {}));
      if (fired < target) {
        const std::uint64_t r = rng.below(100);
        sim::Time d = 0;
        if (r < 50) {
          d = rng.below(4096);  // same/adjacent bucket
        } else if (r < 90) {
          d = 4096 + rng.below(500'000);  // mid-ring
        } else {
          d = sim::msec(1) + rng.below(sim::msec(30));  // overflow horizon
        }
        arm(eq.now() + d);
      }
    });
  }
};

struct SynthResult {
  std::uint64_t events = 0;
  double events_per_sec = 0;
};

template <class Q>
SynthResult run_synthetic(std::uint64_t target, int chains) {
  Churn<Q> churn;
  churn.target = target;
  for (int i = 0; i < chains; ++i) {
    churn.arm(static_cast<sim::Time>(churn.rng.below(sim::usec(100))));
  }
  const auto t0 = std::chrono::steady_clock::now();
  churn.eq.run();
  const double wall = seconds_since(t0);
  SynthResult r;
  r.events = churn.eq.executed();
  if (wall > 0) r.events_per_sec = static_cast<double>(r.events) / wall;
  return r;
}

// ---- real 512-node cluster ----------------------------------------------

struct ClusterResult {
  std::uint64_t events = 0;
  double events_per_sec = 0;
  std::uint64_t sim_ns = 0;
  double wall_s = 0;
  double sim_per_wall = 0;
  bool complete = false;
};

ClusterResult run_cluster512(int nodes, int msgs) {
  gm::ClusterConfig cc;
  cc.nodes = nodes;
  cc.fabric = net::FabricPreset::kFatTree3;
  cc.switch_ports = 16;
  gm::Cluster cluster(cc);
  std::vector<gm::Port*> tx, rx;
  tx.reserve(nodes);
  rx.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    tx.push_back(&cluster.node(i).open_port(2));
    rx.push_back(&cluster.node(i).open_port(3));
  }
  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = 1024;
  std::deque<fi::StreamWorkload> ring;
  for (int i = 0; i < nodes; ++i) {
    ring.emplace_back(*tx[i], *rx[(i + 1) % nodes], wc);
  }
  cluster.run_for(sim::usec(900));
  for (auto& wl : ring) wl.start();

  const std::uint64_t ev0 = cluster.eq().executed();
  const sim::Time t_sim0 = cluster.eq().now();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 200; ++i) {
    cluster.run_for(sim::msec(5));
    const bool all = std::all_of(ring.begin(), ring.end(),
                                 [](fi::StreamWorkload& w) {
                                   return w.complete();
                                 });
    if (all) break;
  }
  ClusterResult r;
  r.wall_s = seconds_since(t0);
  r.events = cluster.eq().executed() - ev0;
  r.sim_ns = cluster.eq().now() - t_sim0;
  if (r.wall_s > 0) {
    r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
    r.sim_per_wall = static_cast<double>(r.sim_ns) / (r.wall_s * 1e9);
  }
  r.complete = std::all_of(ring.begin(), ring.end(),
                           [](fi::StreamWorkload& w) { return w.complete(); });
  return r;
}

// ---- JSON out / baseline gate -------------------------------------------

double json_number_after(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0;
  return std::strtod(text.c_str() + pos + key.size() + 3, nullptr);
}

std::string read_file(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

}  // namespace
}  // namespace myri::bench

int main(int argc, char** argv) {
  using namespace myri;
  using namespace myri::bench;

  std::string out_path = "BENCH_event_throughput.json";
  std::string baseline_path;
  double max_regression = 0.30;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--max-regression" && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out json] [--baseline json] "
                   "[--max-regression frac]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header("event core throughput (calendar queue vs legacy heap)");

  const auto synth_target = static_cast<std::uint64_t>(scaled(3'000'000));
  const int chains = 4096;  // ~8k pending with the timer population
  const SynthResult cal =
      run_synthetic<sim::EventQueue>(synth_target, chains);
  const SynthResult legacy =
      run_synthetic<LegacyEventQueue>(synth_target, chains);
  const double speedup =
      legacy.events_per_sec > 0 ? cal.events_per_sec / legacy.events_per_sec
                                : 0;
  std::printf("synthetic churn (%llu events, %d chains):\n",
              static_cast<unsigned long long>(cal.events), chains);
  std::printf("  calendar queue : %12.0f events/s\n", cal.events_per_sec);
  std::printf("  legacy heap    : %12.0f events/s\n", legacy.events_per_sec);
  std::printf("  speedup        : %12.2fx\n", speedup);
  if (cal.events != legacy.events) {
    std::fprintf(stderr,
                 "FAIL: queues diverged (%llu vs %llu events) — the "
                 "workload is deterministic, this is a correctness bug\n",
                 static_cast<unsigned long long>(cal.events),
                 static_cast<unsigned long long>(legacy.events));
    return 1;
  }

  const int nodes = std::max(8, scaled(512));
  const int msgs = 40;
  const ClusterResult cl = run_cluster512(nodes, msgs);
  std::printf("\n%d-node kFatTree3 stream ring (%d msgs/stream):\n", nodes,
              msgs);
  std::printf("  events         : %12llu%s\n",
              static_cast<unsigned long long>(cl.events),
              cl.complete ? "" : "  (ring INCOMPLETE)");
  std::printf("  events/sec     : %12.0f\n", cl.events_per_sec);
  std::printf("  sim/wall ratio : %12.3f (%llu sim-ns in %.2f s)\n",
              cl.sim_per_wall, static_cast<unsigned long long>(cl.sim_ns),
              cl.wall_s);
  if (!cl.complete) {
    std::fprintf(stderr, "FAIL: stream ring did not complete\n");
    return 1;
  }

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\n"
      "  \"bench\": \"event_throughput\",\n"
      "  \"scale\": %.3f,\n"
      "  \"synthetic\": {\n"
      "    \"events\": %llu,\n"
      "    \"calendar_events_per_sec\": %.0f,\n"
      "    \"legacy_heap_events_per_sec\": %.0f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"cluster\": {\n"
      "    \"nodes\": %d,\n"
      "    \"events\": %llu,\n"
      "    \"events_per_sec\": %.0f,\n"
      "    \"sim_ns\": %llu,\n"
      "    \"sim_time_per_wall_time\": %.4f\n"
      "  }\n"
      "}\n",
      scale(), static_cast<unsigned long long>(cal.events),
      cal.events_per_sec, legacy.events_per_sec, speedup, nodes,
      static_cast<unsigned long long>(cl.events), cl.events_per_sec,
      static_cast<unsigned long long>(cl.sim_ns), cl.sim_per_wall);
  std::printf("\n%s", json);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("(written to %s)\n", out_path.c_str());
  }

  if (!baseline_path.empty()) {
    const std::string base = read_file(baseline_path);
    if (base.empty()) {
      std::fprintf(stderr, "FAIL: baseline %s unreadable\n",
                   baseline_path.c_str());
      return 1;
    }
    const double base_eps = json_number_after(base, "events_per_sec");
    const double floor = base_eps * (1.0 - max_regression);
    std::printf("baseline gate: %.0f events/s now vs %.0f committed "
                "(floor %.0f at %.0f%% allowed regression)\n",
                cl.events_per_sec, base_eps, floor, max_regression * 100);
    if (base_eps > 0 && cl.events_per_sec < floor) {
      std::fprintf(stderr, "FAIL: events/sec regressed past the gate\n");
      return 1;
    }
  }
  return 0;
}
