// Failover under load: kill an inter-switch cable on a 16-node fat-tree
// while every leaf streams cross-fabric traffic, and measure what the
// paper's mapper-driven reconfiguration costs end to end:
//   - time-to-reroute (cable event -> fresh routes distributed), from the
//     fabric.failover.remap_ns histogram the FailoverManager publishes
//   - the delivered-bytes dip: goodput binned over virtual time, pre-kill
//     rate vs the worst bin of the outage, and when goodput recovers
//   - exactly-once delivery across the event (no losses, no duplicates)
//
// The run also hot-adds a node once the remap has settled: the join must
// fold into the map via census (no full remap) and serve a short
// verification stream, and the membership counters land in the JSON.
//
// Prints a human table plus one JSON object per run on stdout (and the
// full registry via MYRI_METRICS_JSON, like every other bench).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mapper/failover.hpp"

using namespace myri;

namespace {

constexpr int kNodes = 16;
// Radix 10 (vs the switch default 8) leaves free leaf ports for the
// mid-run hot-add; 16 nodes still spread over 4 leaves.
constexpr std::uint8_t kRadix = 10;
constexpr int kStreams = 8;        // node i -> node i+8: always cross-leaf
constexpr std::uint32_t kLen = 2048;
constexpr sim::Time kBin = sim::usec(200);
constexpr sim::Time kKillAt = sim::msec(2);
constexpr sim::Time kJoinAt = sim::msec(6);  // after the remap settles

struct RunResult {
  double remap_us = 0;          // time-to-reroute for this run
  double prekill_bytes_per_ms = 0;
  double dip_bytes_per_ms = 0;  // worst bin in the 5 ms after the kill
  double recover_ms = 0;        // kill -> first post-stall delivery on an
                                // affected stream (0->8 crosses the trunk)
  double converge_us = 0;       // epoch push -> every node acked (mean)
  std::uint64_t route_epoch = 0;
  std::uint64_t route_retries = 0;  // MAP_ROUTE chunks re-sent on timeout
  std::uint64_t census_probes = 0;  // scrub probes at last-known routes
  std::uint64_t announces = 0;      // post-recovery route announces (all nodes)
  std::uint64_t announce_retries = 0;
  std::uint64_t membership_epoch = 0;
  std::uint64_t joins = 0;
  std::uint64_t drains = 0;
  std::uint64_t replaces = 0;
  std::uint64_t census_folds = 0;   // joins folded in without a full remap
  bool complete = false;
  int duplicates = 0;
};

RunResult one_run(std::uint64_t seed, metrics::Registry* agg) {
  gm::ClusterConfig cc;
  cc.nodes = kNodes;
  cc.fabric = net::FabricPreset::kFatTree;
  cc.switch_ports = kRadix;
  cc.seed = seed;
  gm::Cluster cluster(cc);
  mapper::FailoverManager fm(cluster);

  fi::StreamWorkload::Config wc;
  wc.total_msgs = bench::scaled(400);
  wc.msg_len = kLen;
  std::vector<std::unique_ptr<fi::StreamWorkload>> wls;
  for (int i = 0; i < kStreams; ++i) {
    wls.push_back(std::make_unique<fi::StreamWorkload>(
        cluster.node(i).open_port(2, {24, 24}),
        cluster.node(i + kStreams).open_port(3, {24, 24}), wc));
  }
  // Goodput sampler: delivered bytes per kBin of virtual time, aligned to
  // t=0 so the kill lands exactly on a bin boundary.
  std::vector<std::uint64_t> bins;
  std::vector<int> s0_bins;  // per-bin deliveries on the affected stream
  std::uint64_t last_total = 0;
  int last_s0 = 0;
  std::function<void()> sample = [&] {
    std::uint64_t total = 0;
    for (auto& w : wls) total += static_cast<std::uint64_t>(w->received());
    bins.push_back((total - last_total) * kLen);
    last_total = total;
    s0_bins.push_back(wls[0]->received() - last_s0);
    last_s0 = wls[0]->received();
    cluster.eq().schedule_after(kBin, sample);
  };
  cluster.eq().schedule_after(kBin, sample);

  cluster.run_for(sim::usec(900));
  for (auto& w : wls) w->start();

  // The kill: leaf0's first uplink (the BFS-preferred spine for every
  // cross-leaf route out of leaf 0).
  cluster.eq().schedule_after(kKillAt, [&] {
    cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[0], true);
  });

  // Hot-add once the remap has settled, with an 8-message verification
  // stream into the joiner (started after the fresh ports' open
  // handshake, like the chaos runner does).
  cluster.eq().schedule_after(kJoinAt, [&] {
    const net::NodeId id = cluster.add_node();
    cluster.eq().schedule_after(sim::msec(5), [&cluster, &wls, id] {
      gm::Port& tx = cluster.node(0).open_port(4, {24, 24});
      gm::Port& rx = cluster.node(id).open_port(3, {24, 24});
      fi::StreamWorkload::Config vwc;
      vwc.total_msgs = 8;
      vwc.msg_len = kLen;
      wls.push_back(std::make_unique<fi::StreamWorkload>(tx, rx, vwc));
      fi::StreamWorkload* wl = wls.back().get();
      cluster.eq().schedule_after(sim::msec(2), [wl] { wl->start(); });
    });
  });

  const sim::Time horizon = sim::msec(400);
  while (cluster.eq().now() < horizon) {
    cluster.run_for(sim::msec(5));
    // Don't exit before the join fired and its verification stream is in
    // wls (it enters ~7 ms after kJoinAt).
    if (cluster.eq().now() < kJoinAt + sim::msec(10)) continue;
    bool all = true;
    for (auto& w : wls) all = all && w->complete();
    if (all) break;
  }

  RunResult r;
  r.complete = true;
  for (auto& w : wls) {
    r.complete = r.complete && w->complete();
    r.duplicates += w->duplicates();
  }
  const auto& remap = cluster.metrics().histogram("fabric.failover.remap_ns");
  r.remap_us = remap.count() > 0 ? remap.mean() / 1000.0 : 0.0;
  const auto& conv = cluster.metrics().histogram("fabric.route_converge_us");
  r.converge_us = conv.count() > 0 ? conv.mean() : 0.0;
  r.route_epoch = static_cast<std::uint64_t>(
      cluster.metrics().gauge("mapper.route_epoch").value());
  r.route_retries = cluster.metrics().counter("mapper.map_route_retries").value();
  r.census_probes = cluster.metrics().counter("mapper.census_probes").value();
  r.membership_epoch = static_cast<std::uint64_t>(
      cluster.metrics().gauge("cluster.membership_epoch").value());
  r.joins = cluster.metrics().counter("mapper.joins").value();
  r.drains = cluster.metrics().counter("mapper.drains").value();
  r.replaces = cluster.metrics().counter("mapper.replaces").value();
  r.census_folds = fm.mapper().stats().census_folds;
  for (int i = 0; i < kNodes; ++i) {
    r.announces += cluster.node(static_cast<net::NodeId>(i))
                       .mcp().stats().announces_sent;
    r.announce_retries += cluster.node(static_cast<net::NodeId>(i))
                              .mcp().stats().announce_retries;
  }

  // Bin analysis. Bins [warmup .. kill) give the steady pre-kill rate;
  // the outage window is the 5 ms after the kill.
  const std::size_t kill_bin = static_cast<std::size_t>(kKillAt / kBin);
  const std::size_t warm_bin = 6;  // skip ramp-up (startup + first ~300 us)
  const double per_ms = static_cast<double>(sim::msec(1)) / kBin;
  double pre = 0;
  for (std::size_t i = warm_bin; i < kill_bin && i < bins.size(); ++i) {
    pre += static_cast<double>(bins[i]);
  }
  if (kill_bin > warm_bin) pre /= static_cast<double>(kill_bin - warm_bin);
  r.prekill_bytes_per_ms = pre * per_ms;
  const std::size_t outage_end =
      std::min(bins.size(), kill_bin + static_cast<std::size_t>(
                                           sim::msec(5) / kBin));
  double dip = r.prekill_bytes_per_ms;
  for (std::size_t i = kill_bin; i < outage_end; ++i) {
    dip = std::min(dip, static_cast<double>(bins[i]) * per_ms);
  }
  r.dip_bytes_per_ms = dip;
  // Recovery on the affected stream: in-flight messages drain first, then
  // the stream stalls until the remap installs a detour. The end of that
  // zero-delivery gap, measured from the kill, is the resume time.
  std::size_t i = kill_bin;
  while (i < s0_bins.size() && s0_bins[i] != 0) ++i;  // drain
  while (i < s0_bins.size() && s0_bins[i] == 0) ++i;  // stall
  if (i < s0_bins.size()) {
    r.recover_ms =
        static_cast<double>(i - kill_bin) * static_cast<double>(kBin) / 1e6;
  }
  if (agg != nullptr) agg->merge(cluster.metrics());
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Failover bench -- trunk-cable kill under load (16-node fat-tree)");
  std::printf("%d cross-leaf streams of %d x %u B; leaf0-spine0 trunk "
              "killed at %.1f ms; node hot-added at %.1f ms\n\n",
              kStreams, bench::scaled(400), kLen, sim::to_msec(kKillAt),
              sim::to_msec(kJoinAt));
  std::printf("  %-4s %12s %15s %15s %12s %10s %7s %9s %4s\n", "run",
              "remap (us)", "pre-kill (B/ms)", "dip (B/ms)", "recover (ms)",
              "conv (us)", "retries", "complete", "dup");

  const int kRepeats = bench::scaled(3);
  metrics::Registry agg;
  bool all_ok = true;
  std::vector<RunResult> results;
  for (int rep = 0; rep < kRepeats; ++rep) {
    RunResult r = one_run(7000 + static_cast<std::uint64_t>(rep), &agg);
    results.push_back(r);
    all_ok = all_ok && r.complete && r.duplicates == 0;
    std::printf("  %-4d %12.1f %15.0f %15.0f %12.1f %10.1f %7llu %9s %4d\n",
                rep, r.remap_us, r.prekill_bytes_per_ms, r.dip_bytes_per_ms,
                r.recover_ms, r.converge_us,
                static_cast<unsigned long long>(r.route_retries),
                r.complete ? "yes" : "NO", r.duplicates);
  }

  // Machine-readable summary: one JSON object per run.
  std::printf("\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("{\"bench\":\"failover\",\"run\":%zu,\"nodes\":%d,"
                "\"streams\":%d,\"remap_us\":%.1f,"
                "\"prekill_bytes_per_ms\":%.0f,\"dip_bytes_per_ms\":%.0f,"
                "\"recover_ms\":%.1f,\"converge_us\":%.1f,"
                "\"route_epoch\":%llu,\"route_retries\":%llu,"
                "\"census_probes\":%llu,\"announces\":%llu,"
                "\"announce_retries\":%llu,"
                "\"membership_epoch\":%llu,\"joins\":%llu,\"drains\":%llu,"
                "\"replaces\":%llu,\"census_folds\":%llu,"
                "\"complete\":%s,\"duplicates\":%d}\n",
                i, kNodes, kStreams, r.remap_us, r.prekill_bytes_per_ms,
                r.dip_bytes_per_ms, r.recover_ms, r.converge_us,
                static_cast<unsigned long long>(r.route_epoch),
                static_cast<unsigned long long>(r.route_retries),
                static_cast<unsigned long long>(r.census_probes),
                static_cast<unsigned long long>(r.announces),
                static_cast<unsigned long long>(r.announce_retries),
                static_cast<unsigned long long>(r.membership_epoch),
                static_cast<unsigned long long>(r.joins),
                static_cast<unsigned long long>(r.drains),
                static_cast<unsigned long long>(r.replaces),
                static_cast<unsigned long long>(r.census_folds),
                r.complete ? "true" : "false", r.duplicates);
  }
  bench::export_registry_json(agg);
  if (!all_ok) {
    std::printf("\nFAIL: a stream lost or duplicated messages\n");
    return 1;
  }
  return 0;
}
