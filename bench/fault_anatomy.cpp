// Extension experiment: anatomy of the Table 1 failure distribution.
//
// The paper reports *what* fractions of flips hang / corrupt / do nothing,
// but not *why*. With the interpreted send_chunk we can answer: every flip
// is attributed to the instruction and encoding field it hit, and the
// outcome distribution is broken down per field. The structure the paper
// hypothesizes becomes visible: opcode-field flips overwhelmingly hang the
// processor (invalid opcodes), immediate-field flips corrupt data or
// silently do nothing, and flips in unused encoding bits are always
// harmless.
#include <array>
#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "faultinject/campaign.hpp"
#include "lanai/disassembler.hpp"
#include "sim/rng.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Extension -- fault anatomy: outcome by flipped encoding field");

  fi::CampaignConfig cc;
  cc.mode = mcp::McpMode::kGm;
  cc.seed = 77;
  fi::Campaign camp(cc);
  const int runs = bench::scaled(600);

  // field -> outcome counts.
  std::map<lanai::Field, std::array<int, fi::kNumOutcomes>> table;
  std::map<std::string, std::array<int, 2>> by_mnemonic;  // [hang, total]
  sim::Rng seeder(cc.seed);
  for (int i = 0; i < runs; ++i) {
    const fi::RunRecord r = camp.run_one(seeder.next_u64());
    const lanai::Field f = lanai::field_of_bit(r.orig_word, r.word_bit);
    table[f][static_cast<int>(r.outcome)]++;
    auto& m = by_mnemonic[lanai::mnemonic(lanai::op_of(r.orig_word))];
    m[0] += r.hang ? 1 : 0;
    m[1] += 1;
    if ((i + 1) % 100 == 0) std::fprintf(stderr, "  ... %d/%d\n", i + 1, runs);
  }

  std::printf("%-8s %6s | %6s %8s %8s %6s %8s\n", "field", "flips", "hang%",
              "corrupt%", "restart%", "other%", "noimpact%");
  for (const auto& [field, counts] : table) {
    int total = 0;
    for (int c : counts) total += c;
    if (total == 0) continue;
    auto pct = [&](fi::Outcome o) {
      return 100.0 * counts[static_cast<int>(o)] / total;
    };
    std::printf("%-8s %6d | %6.1f %8.1f %8.1f %6.1f %8.1f\n",
                to_string(field), total, pct(fi::Outcome::kLocalHang),
                pct(fi::Outcome::kCorrupted), pct(fi::Outcome::kMcpRestart),
                pct(fi::Outcome::kOther), pct(fi::Outcome::kNoImpact));
  }

  std::printf("\nHang rate by victim instruction:\n");
  for (const auto& [mn, c] : by_mnemonic) {
    if (c[1] < 5) continue;
    std::printf("  %-8s %4d flips, %5.1f%% hang\n", mn.c_str(), c[1],
                100.0 * c[0] / c[1]);
  }
  std::printf("\nReading: opcode-field flips mostly produce invalid opcodes "
              "or wild\ncontrol flow (-> interface hang); immediate-field "
              "flips shift addresses\nand constants (-> corrupt or silent); "
              "unused-bit flips never matter.\n");
  return 0;
}
