// Figure 7: sustained bidirectional bandwidth vs message length,
// GM vs FTGM. The paper's curve rises with message size (per-packet costs
// amortize), shows a jagged pattern at 4 KB fragmentation boundaries, and
// saturates near 92 MB/s (PCI-bound, well under the 250 MB/s link rate).
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Figure 7 -- Bandwidth vs message length (bidirectional, MB/s)");

  // Sweep including points just around fragmentation boundaries to expose
  // the sawtooth the paper attributes to 4 KB packetization.
  const std::vector<std::uint32_t> sizes = {
      1,     4,     16,    64,    256,   1024,  2048,  4096,  4097,
      6144,  8192,  8193,  12288, 12289, 16384, 32768, 65536, 131072,
      262144, 524288, 1048576};

  std::printf("%10s %12s %12s %10s\n", "bytes", "GM MB/s", "FTGM MB/s",
              "FTGM/GM");
  double gm_peak = 0, ft_peak = 0;
  for (const std::uint32_t len : sizes) {
    // Enough messages to amortize startup but bounded for tiny sizes.
    const int msgs =
        bench::scaled(len >= 262144 ? 24 : len >= 4096 ? 60 : 200);
    const auto gm = bench::run_bandwidth_bidir(mcp::McpMode::kGm, len, msgs);
    const auto ft = bench::run_bandwidth_bidir(mcp::McpMode::kFtgm, len, msgs);
    gm_peak = std::max(gm_peak, gm.mb_per_s);
    ft_peak = std::max(ft_peak, ft.mb_per_s);
    std::printf("%10u %12.2f %12.2f %10.3f\n", len, gm.mb_per_s, ft.mb_per_s,
                gm.mb_per_s > 0 ? ft.mb_per_s / gm.mb_per_s : 0.0);
  }
  std::printf("\nAsymptotic bandwidth:  GM %.1f MB/s   FTGM %.1f MB/s\n",
              gm_peak, ft_peak);
  std::printf("Paper (Fig 7/Table 2): GM 92.4 MB/s   FTGM 92.0 MB/s\n");
  std::printf("Claim check: FTGM follows GM closely across the sweep; no\n"
              "appreciable bandwidth degradation.\n");
  return 0;
}
