// Figure 8: point-to-point half-round-trip latency vs message length,
// GM vs FTGM. Measured as a repetitive ping-pong, one-way latency = half
// the mean RTT (the paper's methodology). Short-message latency averaged
// over 1..100 bytes reproduces the headline 11.5 us (GM) vs 13.0 us (FTGM).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Figure 8 -- Half round-trip latency vs message length (us)");

  const std::vector<std::uint32_t> sizes = {1,    8,    32,   100,  256,
                                            512,  1024, 2048, 4096, 8192,
                                            16384, 65536};
  const int iters = bench::scaled(60);

  std::printf("%10s %12s %12s %12s\n", "bytes", "GM us", "FTGM us",
              "delta us");
  for (const std::uint32_t len : sizes) {
    const auto gm = bench::run_ping_pong(mcp::McpMode::kGm, len, iters);
    const auto ft = bench::run_ping_pong(mcp::McpMode::kFtgm, len, iters);
    std::printf("%10u %12.2f %12.2f %12.2f\n", len, gm.half_rtt.mean_us(),
                ft.half_rtt.mean_us(),
                ft.half_rtt.mean_us() - gm.half_rtt.mean_us());
  }

  // Short-message average, 1..100 bytes (paper's headline metric).
  double gm_sum = 0, ft_sum = 0;
  int n = 0;
  for (const std::uint32_t len : {1u, 25u, 50u, 75u, 100u}) {
    gm_sum += bench::run_ping_pong(mcp::McpMode::kGm, len, iters)
                  .half_rtt.mean_us();
    ft_sum += bench::run_ping_pong(mcp::McpMode::kFtgm, len, iters)
                  .half_rtt.mean_us();
    ++n;
  }
  std::printf("\nShort-message latency (1..100 B avg):  GM %.1f us  FTGM %.1f us"
              "  (overhead %.1f us)\n",
              gm_sum / n, ft_sum / n, (ft_sum - gm_sum) / n);
  std::printf("Paper:                                 GM 11.5 us  FTGM 13.0 us"
              "  (overhead 1.5 us)\n");
  return 0;
}
