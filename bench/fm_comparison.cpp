// Extension experiment: host-CPU cost of user-level protocols — GM's
// zero-copy token scheme vs an FM-style host-level credit scheme, and
// where FTGM's overhead sits between them (paper Section 5.1's discussion
// of why minimizing host-CPU utilization drove the FTGM design).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "fm/endpoint.hpp"

using namespace myri;

namespace {

struct FmRun {
  double host_us_per_msg = 0;
  double wall_us_per_msg = 0;
};

FmRun run_fm(std::uint32_t len, int msgs) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  fm::Endpoint a(cluster.node(0), {});
  fm::Endpoint b(cluster.node(1), {});
  a.add_peer(1);
  b.add_peer(0);
  cluster.run_for(sim::usec(900));

  int got = 0;
  b.register_handler(1, [&](auto, auto) { ++got; });
  std::vector<std::byte> payload(len, std::byte{5});
  const sim::Time t0 = cluster.eq().now();
  for (int i = 0; i < msgs; ++i) a.send_or_queue(1, 1, payload);
  for (int i = 0; i < 200 && got < msgs; ++i) cluster.run_for(sim::msec(1));
  FmRun r;
  if (got == msgs) {
    r.host_us_per_msg = sim::to_usec(a.stats().copy_cpu_ns +
                                     b.stats().copy_cpu_ns) /
                        msgs;
    r.wall_us_per_msg = sim::to_usec(cluster.eq().now() - t0) / msgs;
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension -- host-CPU cost: GM (zero-copy) vs FM-style (host "
      "credits + copies)");

  const int msgs = bench::scaled(200);
  std::printf("%8s %16s %16s %16s\n", "bytes", "GM host us/msg",
              "FTGM host us/msg", "FM host us/msg");
  for (const std::uint32_t len : {16u, 128u, 512u, 1024u, 2000u}) {
    const auto gm = bench::run_host_util(mcp::McpMode::kGm, len, msgs);
    const auto ft = bench::run_host_util(mcp::McpMode::kFtgm, len, msgs);
    const auto fmres = run_fm(len, msgs);
    std::printf("%8u %16.2f %16.2f %16.2f\n", len,
                gm.send_us_per_msg + gm.recv_us_per_msg,
                ft.send_us_per_msg + ft.recv_us_per_msg,
                fmres.host_us_per_msg);
  }
  std::printf(
      "\nClaim check: GM's token scheme keeps host cost flat (~1.05 us/msg) "
      "and\nFTGM adds a fixed ~0.65 us. The FM-style host-level credit "
      "scheme pays\nper-byte copies plus credit bookkeeping, so its host "
      "cost grows with\nmessage size and dwarfs FTGM's overhead — the "
      "paper's rationale for\nminimizing host-CPU utilization in the FTGM "
      "design.\n");
  return 0;
}
