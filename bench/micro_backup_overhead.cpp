// Microbenchmark (google-benchmark): real wall-clock cost of the
// BackupStore operations behind the paper's "continuous checkpointing".
//
// The paper attributes FTGM's 0.25 us send / 0.40 us receive overhead to
// exactly these operations (token copy, two hash-table updates). On modern
// hardware they are tens of nanoseconds — evidence that the technique's
// host-side cost was modest even in 2003 and would be negligible today.
#include <benchmark/benchmark.h>

#include "core/backup_store.hpp"

namespace {

using myri::core::BackupStore;
using myri::mcp::RecvToken;
using myri::mcp::SendRequest;

void BM_AddRemoveSendToken(benchmark::State& state) {
  BackupStore store;
  // Steady-state population comparable to GM's default token count.
  for (std::uint32_t i = 0; i < 16; ++i) {
    SendRequest r;
    r.token_id = i;
    store.add_send(r);
  }
  std::uint32_t next = 100;
  for (auto _ : state) {
    SendRequest r;
    r.token_id = next;
    store.add_send(r);
    store.remove_send(next - 16);  // oldest leaves, like a send completing
    ++next;
  }
  benchmark::DoNotOptimize(store.send_count());
}
BENCHMARK(BM_AddRemoveSendToken);

void BM_AddRemoveRecvToken(benchmark::State& state) {
  BackupStore store;
  for (std::uint32_t i = 0; i < 16; ++i) {
    RecvToken t;
    t.token_id = i;
    store.add_recv(t);
  }
  std::uint32_t next = 100;
  for (auto _ : state) {
    RecvToken t;
    t.token_id = next;
    store.add_recv(t);
    store.remove_recv(next - 16);
    ++next;
  }
  benchmark::DoNotOptimize(store.recv_count());
}
BENCHMARK(BM_AddRemoveRecvToken);

void BM_NoteRecvSeq(benchmark::State& state) {
  BackupStore store;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    // 8 streams, round-robin (one per remote port, paper Fig 6).
    store.note_recv_seq(static_cast<myri::net::NodeId>(seq % 4), seq % 8,
                        seq);
    ++seq;
  }
  benchmark::DoNotOptimize(store.ack_table().size());
}
BENCHMARK(BM_NoteRecvSeq);

void BM_AllocSeqBlock(benchmark::State& state) {
  BackupStore store;
  myri::net::NodeId dst = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.alloc_seq_block(dst, 4));
    dst = static_cast<myri::net::NodeId>((dst + 1) % 8);
  }
}
BENCHMARK(BM_AllocSeqBlock);

void BM_FullSendPathBackup(benchmark::State& state) {
  // The complete per-send backup work: seq block + token copy (+ later
  // removal), i.e. the mechanism behind the paper's 0.25 us figure.
  BackupStore store;
  std::uint32_t tid = 0;
  for (auto _ : state) {
    SendRequest r;
    r.token_id = tid;
    r.dst = 1;
    r.len = 2048;
    r.seq_first = store.alloc_seq_block(r.dst, 1);
    store.add_send(r);
    if (tid >= 16) store.remove_send(tid - 16);
    ++tid;
  }
}
BENCHMARK(BM_FullSendPathBackup);

void BM_FullRecvPathBackup(benchmark::State& state) {
  // Per-receive: remove the token copy + update the ACK table — the two
  // hash-table updates the paper prices at ~0.40 us.
  BackupStore store;
  std::uint32_t tid = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    RecvToken t;
    t.token_id = i;
    store.add_recv(t);
  }
  std::uint32_t seq = 0;
  for (auto _ : state) {
    RecvToken t;
    t.token_id = tid + 16;
    store.add_recv(t);
    store.remove_recv(tid);
    store.note_recv_seq(1, tid % 8, seq++);
    ++tid;
  }
}
BENCHMARK(BM_FullRecvPathBackup);

}  // namespace

BENCHMARK_MAIN();
