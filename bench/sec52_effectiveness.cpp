// Section 5.2: the Table 1 fault-injection experiments repeated under
// FTGM. The paper reports that the watchdog detected all interface hangs
// and that recovery succeeded in all but 5 of 286 hangs.
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/campaign.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Section 5.2 -- FTGM fault-injection: detection & recovery");

  fi::CampaignConfig cc;
  cc.runs = bench::scaled(1000);
  cc.mode = mcp::McpMode::kFtgm;
  cc.seed = 2003;  // same seed as Table 1: same flips, now under FTGM
  fi::Campaign camp(cc);
  const fi::CampaignSummary s = camp.run([&](int i) {
    if ((i + 1) % 100 == 0) {
      std::fprintf(stderr, "  ... %d/%d runs\n", i + 1, cc.runs);
    }
  });

  std::printf("%-40s %10d\n", "Injection runs", s.runs);
  std::printf("%-40s %10d\n", "Interface hangs induced", s.hangs);
  std::printf("%-40s %10d\n", "Hangs detected by the watchdog",
              s.hangs_detected);
  std::printf("%-40s %10d\n", "Hangs fully recovered (exactly-once)",
              s.hangs_recovered);
  std::printf("\nDetection rate: %.1f%%   Recovery rate: %.1f%%\n",
              s.hangs ? 100.0 * s.hangs_detected / s.hangs : 0.0,
              s.hangs ? 100.0 * s.hangs_recovered / s.hangs : 0.0);
  std::printf("Paper: all 286 hangs detected; 281/286 (98.3%%) recovered.\n");

  std::printf("\nOutcome distribution under FTGM (for reference):\n");
  for (int i = 0; i < fi::kNumOutcomes; ++i) {
    const auto o = static_cast<fi::Outcome>(i);
    std::printf("  %-24s %6.1f%%\n", to_string(o), s.pct(o));
  }
  return 0;
}
