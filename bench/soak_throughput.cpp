// Soak throughput: how fast the soak harness burns virtual time.
//
// Runs one pinned-seed fi::SoakProfile (64-node fat-tree, every fault
// kind plus membership churn, 500 ms check windows) and reports wall-time
// cost per virtual second as JSON (stdout + --out file), so the
// committed BENCH_soak_throughput.json baseline answers the planning
// question directly: a 2-virtual-hour nightly soak costs
// 7200 / (virtual_per_wall) wall seconds on the reference machine.
//
// MYRI_BENCH_SCALE shrinks the soaked duration for smoke runs (default
// 120 virtual s; CI smoke uses 0.25 -> 30 s).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/common.hpp"
#include "faultinject/scenario.hpp"
#include "faultinject/soak.hpp"

using namespace myri;

int main(int argc, char** argv) {
  const char* out_path = "BENCH_soak_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const double virt_s = 120.0 * bench::scale();
  fi::SoakProfile sp;
  sp.seed = 2026;
  sp.duration = sim::usecf(virt_s * 1e6);
  // Smoke-scale arrival rates: even a short measurement window sees every
  // fault kind and several churn cycles.
  sp.hang_every = sim::sec(20);
  sp.cable_every = sim::sec(25);
  sp.cable_outage = sim::sec(3);
  sp.flip_every = sim::sec(30);
  sp.loss_every = sim::sec(15);
  sp.churn_every = sim::sec(12);
  sp.replace_every = sim::sec(30);
  const fi::Scenario sc = fi::make_soak_scenario(sp);

  const auto t0 = std::chrono::steady_clock::now();
  const fi::RunReport rep = fi::ScenarioRunner::run(sc);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double virtual_run_s = sim::to_sec(rep.end_time);
  const double events_per_sec =
      wall_s > 0 ? static_cast<double>(rep.events_executed) / wall_s : 0;
  const double virtual_per_wall = wall_s > 0 ? virtual_run_s / wall_s : 0;

  std::string json = "{";
  json += "\"bench\":\"soak_throughput\"";
  json += ",\"nodes\":" + std::to_string(sc.nodes);
  json += ",\"virtual_s\":" + std::to_string(virtual_run_s);
  json += ",\"wall_s\":" + std::to_string(wall_s);
  json += ",\"events\":" + std::to_string(rep.events_executed);
  json += ",\"events_per_sec\":" + std::to_string(events_per_sec);
  json += ",\"virtual_per_wall\":" + std::to_string(virtual_per_wall);
  json += ",\"scheduled_faults\":" + std::to_string(sc.events.size());
  json += ",\"windows_checked\":" + std::to_string(rep.windows_checked);
  json += ",\"drift_checks\":" + std::to_string(rep.drift_checks);
  json += ",\"deliveries\":" + std::to_string(rep.deliveries);
  json += ",\"recoveries\":" + std::to_string(rep.recoveries);
  json += ",\"remaps\":" + std::to_string(rep.remaps);
  json += ",\"clean\":";
  json += rep.failed() ? "false" : "true";
  json += "}";
  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  // A dirty soak here means the pinned profile regressed — fail the bench
  // so CI notices even without the baseline gate.
  if (rep.failed()) {
    std::fprintf(stderr, "soak bench FAILED: %s: %s\n",
                 rep.failure_signature().c_str(),
                 rep.violation_detail.c_str());
    return 1;
  }
  return 0;
}
