// Table 1: outcome distribution of 1000 transient-fault injections into
// the send_chunk section of the MCP code segment, on baseline GM.
// Compared against the paper's measurements and those of Stott/Iyer et al.
// (FTCS'97), which the paper reproduces in the same table.
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/campaign.hpp"

using namespace myri;

int main() {
  bench::print_header(
      "Table 1 -- Fault injection on the Myrinet system (GM baseline)");

  fi::CampaignConfig cc;
  cc.runs = bench::scaled(1000);
  cc.mode = mcp::McpMode::kGm;
  cc.seed = 2003;
  fi::Campaign camp(cc);
  const fi::CampaignSummary s = camp.run([&](int i) {
    if ((i + 1) % 200 == 0) {
      std::fprintf(stderr, "  ... %d/%d runs\n", i + 1, cc.runs);
    }
  });

  struct PaperRow {
    fi::Outcome o;
    double ours_paper;   // paper column "Our work"
    double iyer_paper;   // paper column "Iyer et al."
  };
  const PaperRow rows[] = {
      {fi::Outcome::kLocalHang, 28.6, 23.4},
      {fi::Outcome::kCorrupted, 18.3, 12.7},
      {fi::Outcome::kRemoteHang, 0.0, 1.2},
      {fi::Outcome::kMcpRestart, 0.0, 3.1},
      {fi::Outcome::kHostCrash, 0.6, 0.4},
      {fi::Outcome::kOther, 1.2, 1.1},
      {fi::Outcome::kNoImpact, 51.3, 58.1},
  };

  std::printf("%-24s %12s %12s %12s\n", "Failure Category", "This repro",
              "Paper", "Iyer et al.");
  for (const auto& r : rows) {
    std::printf("%-24s %11.1f%% %11.1f%% %11.1f%%\n", to_string(r.o),
                s.pct(r.o), r.ours_paper, r.iyer_paper);
  }
  std::printf("\n(%d runs; one random bit flip in send_chunk per run while "
              "traffic is active)\n", s.runs);
  std::printf("Shape check: interface hangs + corrupted messages dominate "
              "the failures;\nno-impact flips (untaken paths, dead bits) are "
              "roughly half of all runs.\n");
  return 0;
}
