// Table 2: the paper's summary comparison of GM vs FTGM across the three
// principal network metrics plus LANai occupancy. Every number is sourced
// from the cluster metrics registry (bench helpers read the named counters
// and histograms), and the merged registry can be exported as JSON via
// MYRI_METRICS_JSON for machine-readable baseline diffs.
#include <cstdio>

#include "bench/common.hpp"

using namespace myri;

int main() {
  bench::print_header("Table 2 -- Performance metrics: GM vs FTGM");

  const int iters = bench::scaled(60);
  metrics::Registry agg_gm;
  metrics::Registry agg_ft;

  // Bandwidth: asymptotic value for 1 MB messages (Fig 7 saturation).
  const auto bw_gm = bench::run_bandwidth_bidir(
      mcp::McpMode::kGm, 1u << 20, bench::scaled(24), {}, &agg_gm);
  const auto bw_ft = bench::run_bandwidth_bidir(
      mcp::McpMode::kFtgm, 1u << 20, bench::scaled(24), {}, &agg_ft);

  // Latency: short-message average over 1..100 bytes. The per-length runs
  // merge into the aggregate registries; the reported average is the mean
  // of the pooled bench.half_rtt_ns histogram.
  for (const std::uint32_t len : {1u, 25u, 50u, 75u, 100u}) {
    bench::run_ping_pong(mcp::McpMode::kGm, len, iters, {}, &agg_gm);
    bench::run_ping_pong(mcp::McpMode::kFtgm, len, iters, {}, &agg_ft);
  }
  const double lat_gm =
      agg_gm.histogram("bench.half_rtt_ns").mean() / 1000.0;
  const double lat_ft =
      agg_ft.histogram("bench.half_rtt_ns").mean() / 1000.0;

  // Host utilization and LANai occupancy: unidirectional small messages.
  const auto hu_gm =
      bench::run_host_util(mcp::McpMode::kGm, 64, bench::scaled(300),
                           &agg_gm);
  const auto hu_ft =
      bench::run_host_util(mcp::McpMode::kFtgm, 64, bench::scaled(300),
                           &agg_ft);

  std::printf("%-22s %10s %10s %14s %14s\n", "Metric", "GM", "FTGM",
              "paper GM", "paper FTGM");
  std::printf("%-22s %8.1fMB/s %7.1fMB/s %12s %13s\n", "Bandwidth",
              bw_gm.mb_per_s, bw_ft.mb_per_s, "92.4MB/s", "92.0MB/s");
  std::printf("%-22s %8.1fus %9.1fus %12s %13s\n", "Latency", lat_gm, lat_ft,
              "11.5us", "13.0us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "Host util. (send)",
              hu_gm.send_us_per_msg, hu_ft.send_us_per_msg, "0.30us",
              "0.55us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "Host util. (recv)",
              hu_gm.recv_us_per_msg, hu_ft.recv_us_per_msg, "0.75us",
              "1.15us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "LANai util.",
              hu_gm.lanai_us_per_msg, hu_ft.lanai_us_per_msg, "6.0us",
              "6.8us");

  // Protocol-level sanity row straight out of the registry: FTGM must pay
  // its overhead in CPU time, not in retransmissions.
  std::printf("%-22s %9llu %10llu %14s %14s\n", "Retransmissions",
              static_cast<unsigned long long>(
                  agg_gm.counter("node0.mcp.retransmissions").value()),
              static_cast<unsigned long long>(
                  agg_ft.counter("node0.mcp.retransmissions").value()),
              "-", "-");

  std::printf("\nClaim check: ~%.1f us total normal-operation latency "
              "overhead for FTGM\n(paper: ~1.5 us), with no bandwidth loss.\n",
              lat_ft - lat_gm);

  metrics::Registry all;
  all.merge(agg_gm);
  all.merge(agg_ft);
  bench::export_registry_json(all);
  return 0;
}
