// Table 2: the paper's summary comparison of GM vs FTGM across the three
// principal network metrics plus LANai occupancy.
#include <cstdio>

#include "bench/common.hpp"

using namespace myri;

int main() {
  bench::print_header("Table 2 -- Performance metrics: GM vs FTGM");

  const int iters = bench::scaled(60);

  // Bandwidth: asymptotic value for 1 MB messages (Fig 7 saturation).
  const auto bw_gm =
      bench::run_bandwidth_bidir(mcp::McpMode::kGm, 1u << 20,
                                 bench::scaled(24));
  const auto bw_ft =
      bench::run_bandwidth_bidir(mcp::McpMode::kFtgm, 1u << 20,
                                 bench::scaled(24));

  // Latency: short-message average over 1..100 bytes.
  double lat_gm = 0, lat_ft = 0;
  int n = 0;
  for (const std::uint32_t len : {1u, 25u, 50u, 75u, 100u}) {
    lat_gm += bench::run_ping_pong(mcp::McpMode::kGm, len, iters)
                  .half_rtt.mean_us();
    lat_ft += bench::run_ping_pong(mcp::McpMode::kFtgm, len, iters)
                  .half_rtt.mean_us();
    ++n;
  }
  lat_gm /= n;
  lat_ft /= n;

  // Host utilization and LANai occupancy: unidirectional small messages.
  const auto hu_gm =
      bench::run_host_util(mcp::McpMode::kGm, 64, bench::scaled(300));
  const auto hu_ft =
      bench::run_host_util(mcp::McpMode::kFtgm, 64, bench::scaled(300));

  std::printf("%-22s %10s %10s %14s %14s\n", "Metric", "GM", "FTGM",
              "paper GM", "paper FTGM");
  std::printf("%-22s %8.1fMB/s %7.1fMB/s %12s %13s\n", "Bandwidth",
              bw_gm.mb_per_s, bw_ft.mb_per_s, "92.4MB/s", "92.0MB/s");
  std::printf("%-22s %8.1fus %9.1fus %12s %13s\n", "Latency", lat_gm, lat_ft,
              "11.5us", "13.0us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "Host util. (send)",
              hu_gm.send_us_per_msg, hu_ft.send_us_per_msg, "0.30us",
              "0.55us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "Host util. (recv)",
              hu_gm.recv_us_per_msg, hu_ft.recv_us_per_msg, "0.75us",
              "1.15us");
  std::printf("%-22s %8.2fus %9.2fus %12s %13s\n", "LANai util.",
              hu_gm.lanai_us_per_msg, hu_ft.lanai_us_per_msg, "6.0us",
              "6.8us");
  std::printf("\nClaim check: ~%.1f us total normal-operation latency "
              "overhead for FTGM\n(paper: ~1.5 us), with no bandwidth loss.\n",
              lat_ft - lat_gm);
  return 0;
}
