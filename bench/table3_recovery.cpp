// Table 3 + Figure 9: components of the complete fault-recovery time and
// the recovery timeline. A NIC hang is injected under live traffic; the
// watchdog (IT1), the FTD phases and the per-process FAULT_DETECTED
// handler are timestamped in virtual time.
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"

using namespace myri;

int main() {
  bench::print_header("Table 3 / Figure 9 -- Fault recovery time breakdown");

  const int kRepeats = bench::scaled(20);
  double det_sum = 0, ftd_sum = 0, proc_sum = 0, total_sum = 0;

  for (int rep = 0; rep < kRepeats; ++rep) {
    gm::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mcp::McpMode::kFtgm;
    cc.seed = 1000 + static_cast<std::uint64_t>(rep);
    gm::Cluster cluster(cc);
    auto& tx = cluster.node(0).open_port(2);
    auto& rx = cluster.node(1).open_port(3);
    fi::StreamWorkload::Config wc;
    wc.total_msgs = 40;
    wc.msg_len = 2048;
    fi::StreamWorkload wl(tx, rx, wc);
    cluster.run_for(sim::usec(900));
    wl.start();

    sim::Time recovered_at = 0;
    tx.set_on_recovered([&] { recovered_at = cluster.eq().now(); });

    // Vary the injection point across repeats (the detection time depends
    // on where in the L_timer/IT1 cycle the hang lands).
    const sim::Time inject_in = sim::usec(20 + 37 * rep);
    cluster.eq().schedule_after(inject_in, [&] {
      cluster.node(0).ftd().mark_fault_injected();
      cluster.node(0).mcp().inject_hang("bench");
    });
    cluster.run_for(sim::sec(4));
    if (recovered_at == 0) continue;

    const auto& ph = cluster.node(0).ftd().phases();
    det_sum += sim::to_usec(ph.woken - ph.fault_injected);
    ftd_sum += sim::to_usec(ph.events_posted - ph.woken);
    proc_sum += sim::to_usec(recovered_at - ph.events_posted);
    total_sum += sim::to_usec(recovered_at - ph.fault_injected);

    if (rep == 0) {
      std::printf("Figure 9 timeline (virtual time since injection, one run):\n");
      const sim::Time f = ph.fault_injected;
      std::printf("  %10.1f us  fault injected (NIC processor hangs)\n", 0.0);
      std::printf("  %10.1f us  IT1 watchdog expiry -> FATAL interrupt\n",
                  sim::to_usec(ph.interrupt_raised - f));
      std::printf("  %10.1f us  FTD woken by the driver\n",
                  sim::to_usec(ph.woken - f));
      std::printf("  %10.1f us  hang confirmed (magic word uncleared)\n",
                  sim::to_usec(ph.confirmed - f));
      std::printf("  %10.1f us  card reset complete\n",
                  sim::to_usec(ph.reset_done - f));
      std::printf("  %10.1f us  SRAM cleared\n",
                  sim::to_usec(ph.sram_cleared - f));
      std::printf("  %10.1f us  MCP reloaded\n",
                  sim::to_usec(ph.mcp_reloaded - f));
      std::printf("  %10.1f us  DMA + interrupts restarted\n",
                  sim::to_usec(ph.dma_restarted - f));
      std::printf("  %10.1f us  page hash table restored\n",
                  sim::to_usec(ph.page_hash_done - f));
      std::printf("  %10.1f us  routing tables restored\n",
                  sim::to_usec(ph.routes_done - f));
      std::printf("  %10.1f us  FAULT_DETECTED posted to open ports\n",
                  sim::to_usec(ph.events_posted - f));
      std::printf("  %10.1f us  per-process recovery complete (port reopen)\n\n",
                  sim::to_usec(recovered_at - f));
    }
  }

  std::printf("%-28s %14s %14s\n", "Component", "measured (us)", "paper (us)");
  std::printf("%-28s %14.0f %14s\n", "Fault Detection Time",
              det_sum / kRepeats, "800");
  std::printf("%-28s %14.0f %14s\n", "FTD Recovery Time", ftd_sum / kRepeats,
              "765000");
  std::printf("%-28s %14.0f %14s\n", "Per-process Recovery Time",
              proc_sum / kRepeats, "900000");
  std::printf("%-28s %14.0f %14s\n", "Complete recovery",
              total_sum / kRepeats, "< 2000000");
  std::printf("\n(%d repetitions with varied injection phase)\n", kRepeats);
  return 0;
}
