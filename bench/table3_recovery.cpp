// Table 3 + Figure 9: components of the complete fault-recovery time and
// the recovery timeline. A NIC hang is injected under live traffic; the
// watchdog (IT1), the FTD phases and the per-process FAULT_DETECTED
// handler are timestamped in virtual time. All reported durations come
// from the cluster metrics registry: the FTD's PhaseTimer publishes
// node0.ftd.recovery.{detect,confirm,reset,reload,restore}_ns and the
// port publishes node0.port2.recovery.replay_ns; repeats are pooled with
// Registry::merge().
#include <cstdio>

#include "bench/common.hpp"
#include "faultinject/workload.hpp"

using namespace myri;

namespace {

double mean_us(const metrics::Registry& reg, const std::string& name) {
  const metrics::Histogram* h = reg.find_histogram(name);
  return (h != nullptr && h->count() > 0) ? h->mean() / 1000.0 : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Table 3 / Figure 9 -- Fault recovery time breakdown");

  const int kRepeats = bench::scaled(20);
  metrics::Registry agg;
  int recovered_runs = 0;

  for (int rep = 0; rep < kRepeats; ++rep) {
    gm::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mcp::McpMode::kFtgm;
    cc.seed = 1000 + static_cast<std::uint64_t>(rep);
    gm::Cluster cluster(cc);
    auto& tx = cluster.node(0).open_port(2);
    auto& rx = cluster.node(1).open_port(3);
    fi::StreamWorkload::Config wc;
    wc.total_msgs = 40;
    wc.msg_len = 2048;
    fi::StreamWorkload wl(tx, rx, wc);
    cluster.run_for(sim::usec(900));
    wl.start();

    sim::Time recovered_at = 0;
    tx.set_on_recovered([&] { recovered_at = cluster.eq().now(); });

    // Vary the injection point across repeats (the detection time depends
    // on where in the L_timer/IT1 cycle the hang lands).
    const sim::Time inject_in = sim::usec(20 + 37 * rep);
    cluster.eq().schedule_after(inject_in, [&] {
      cluster.node(0).ftd().mark_fault_injected();
      cluster.node(0).mcp().inject_hang("bench");
    });
    cluster.run_for(sim::sec(4));
    if (recovered_at == 0) continue;
    ++recovered_runs;

    const auto& ph = cluster.node(0).ftd().phases();
    // Injection-to-service end-to-end duration for the "Complete recovery"
    // row; everything else already sits in the cluster registry.
    cluster.metrics()
        .histogram("bench.complete_recovery_ns")
        .add(recovered_at - ph.fault_injected);
    agg.merge(cluster.metrics());

    if (rep == 0) {
      std::printf("Figure 9 timeline (virtual time since injection, one run):\n");
      const sim::Time f = ph.fault_injected;
      std::printf("  %10.1f us  fault injected (NIC processor hangs)\n", 0.0);
      std::printf("  %10.1f us  IT1 watchdog expiry -> FATAL interrupt\n",
                  sim::to_usec(ph.interrupt_raised - f));
      std::printf("  %10.1f us  FTD woken by the driver\n",
                  sim::to_usec(ph.woken - f));
      std::printf("  %10.1f us  hang confirmed (magic word uncleared)\n",
                  sim::to_usec(ph.confirmed - f));
      std::printf("  %10.1f us  card reset complete\n",
                  sim::to_usec(ph.reset_done - f));
      std::printf("  %10.1f us  SRAM cleared\n",
                  sim::to_usec(ph.sram_cleared - f));
      std::printf("  %10.1f us  MCP reloaded\n",
                  sim::to_usec(ph.mcp_reloaded - f));
      std::printf("  %10.1f us  DMA + interrupts restarted\n",
                  sim::to_usec(ph.dma_restarted - f));
      std::printf("  %10.1f us  page hash table restored\n",
                  sim::to_usec(ph.page_hash_done - f));
      std::printf("  %10.1f us  routing tables restored\n",
                  sim::to_usec(ph.routes_done - f));
      std::printf("  %10.1f us  FAULT_DETECTED posted to open ports\n",
                  sim::to_usec(ph.events_posted - f));
      std::printf("  %10.1f us  per-process recovery complete (port reopen)\n\n",
                  sim::to_usec(recovered_at - f));
    }
  }

  // Per-phase breakdown, straight from the pooled registry histograms.
  const double detect = mean_us(agg, "node0.ftd.recovery.detect_ns");
  const double confirm = mean_us(agg, "node0.ftd.recovery.confirm_ns");
  const double reset = mean_us(agg, "node0.ftd.recovery.reset_ns");
  const double reload = mean_us(agg, "node0.ftd.recovery.reload_ns");
  const double restore = mean_us(agg, "node0.ftd.recovery.restore_ns");
  const double replay = mean_us(agg, "node0.port2.recovery.replay_ns");
  const double complete = mean_us(agg, "bench.complete_recovery_ns");

  std::printf("Recovery phases (registry means over %d recovered runs):\n",
              recovered_runs);
  std::printf("  %-26s %12s\n", "Phase", "mean (us)");
  std::printf("  %-26s %12.1f\n", "detect (hang -> FTD runs)", detect);
  std::printf("  %-26s %12.1f\n", "confirm (magic probe)", confirm);
  std::printf("  %-26s %12.1f\n", "reset (card + SRAM clear)", reset);
  std::printf("  %-26s %12.1f\n", "reload (MCP + DMA restart)", reload);
  std::printf("  %-26s %12.1f\n", "restore (tables + events)", restore);
  std::printf("  %-26s %12.1f\n", "replay (port token replay)", replay);

  std::printf("\n%-28s %14s %14s\n", "Component", "measured (us)",
              "paper (us)");
  std::printf("%-28s %14.0f %14s\n", "Fault Detection Time", detect, "800");
  std::printf("%-28s %14.0f %14s\n", "FTD Recovery Time",
              confirm + reset + reload + restore, "765000");
  std::printf("%-28s %14.0f %14s\n", "Per-process Recovery Time", replay,
              "900000");
  std::printf("%-28s %14.0f %14s\n", "Complete recovery", complete,
              "< 2000000");
  std::printf("\n(%d/%d repetitions recovered, varied injection phase)\n",
              recovered_runs, kRepeats);

  bench::export_registry_json(agg);
  return 0;
}
