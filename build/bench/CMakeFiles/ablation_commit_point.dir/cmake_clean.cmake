file(REMOVE_RECURSE
  "CMakeFiles/ablation_commit_point.dir/ablation_commit_point.cpp.o"
  "CMakeFiles/ablation_commit_point.dir/ablation_commit_point.cpp.o.d"
  "ablation_commit_point"
  "ablation_commit_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_commit_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
