# Empty dependencies file for ablation_commit_point.
# This may be replaced when dependencies are built.
