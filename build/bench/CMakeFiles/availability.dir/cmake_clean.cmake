file(REMOVE_RECURSE
  "CMakeFiles/availability.dir/availability.cpp.o"
  "CMakeFiles/availability.dir/availability.cpp.o.d"
  "availability"
  "availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
