file(REMOVE_RECURSE
  "CMakeFiles/data_segment_injection.dir/data_segment_injection.cpp.o"
  "CMakeFiles/data_segment_injection.dir/data_segment_injection.cpp.o.d"
  "data_segment_injection"
  "data_segment_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_segment_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
