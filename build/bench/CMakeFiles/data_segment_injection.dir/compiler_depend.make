# Empty compiler generated dependencies file for data_segment_injection.
# This may be replaced when dependencies are built.
