file(REMOVE_RECURSE
  "CMakeFiles/fig7_bandwidth.dir/fig7_bandwidth.cpp.o"
  "CMakeFiles/fig7_bandwidth.dir/fig7_bandwidth.cpp.o.d"
  "fig7_bandwidth"
  "fig7_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
