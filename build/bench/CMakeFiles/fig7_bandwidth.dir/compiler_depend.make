# Empty compiler generated dependencies file for fig7_bandwidth.
# This may be replaced when dependencies are built.
