file(REMOVE_RECURSE
  "CMakeFiles/fm_comparison.dir/fm_comparison.cpp.o"
  "CMakeFiles/fm_comparison.dir/fm_comparison.cpp.o.d"
  "fm_comparison"
  "fm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
