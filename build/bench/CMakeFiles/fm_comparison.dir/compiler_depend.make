# Empty compiler generated dependencies file for fm_comparison.
# This may be replaced when dependencies are built.
