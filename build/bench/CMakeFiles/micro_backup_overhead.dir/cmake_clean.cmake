file(REMOVE_RECURSE
  "CMakeFiles/micro_backup_overhead.dir/micro_backup_overhead.cpp.o"
  "CMakeFiles/micro_backup_overhead.dir/micro_backup_overhead.cpp.o.d"
  "micro_backup_overhead"
  "micro_backup_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_backup_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
