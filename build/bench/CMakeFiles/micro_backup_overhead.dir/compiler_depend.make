# Empty compiler generated dependencies file for micro_backup_overhead.
# This may be replaced when dependencies are built.
