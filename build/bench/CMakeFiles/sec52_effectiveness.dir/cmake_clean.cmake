file(REMOVE_RECURSE
  "CMakeFiles/sec52_effectiveness.dir/sec52_effectiveness.cpp.o"
  "CMakeFiles/sec52_effectiveness.dir/sec52_effectiveness.cpp.o.d"
  "sec52_effectiveness"
  "sec52_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
