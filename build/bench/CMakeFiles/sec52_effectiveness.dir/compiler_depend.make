# Empty compiler generated dependencies file for sec52_effectiveness.
# This may be replaced when dependencies are built.
