file(REMOVE_RECURSE
  "CMakeFiles/table1_fault_injection.dir/table1_fault_injection.cpp.o"
  "CMakeFiles/table1_fault_injection.dir/table1_fault_injection.cpp.o.d"
  "table1_fault_injection"
  "table1_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
