# Empty dependencies file for table1_fault_injection.
# This may be replaced when dependencies are built.
