file(REMOVE_RECURSE
  "CMakeFiles/table2_metrics.dir/table2_metrics.cpp.o"
  "CMakeFiles/table2_metrics.dir/table2_metrics.cpp.o.d"
  "table2_metrics"
  "table2_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
