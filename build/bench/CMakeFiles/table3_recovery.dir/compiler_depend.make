# Empty compiler generated dependencies file for table3_recovery.
# This may be replaced when dependencies are built.
