file(REMOVE_RECURSE
  "CMakeFiles/allsize.dir/allsize.cpp.o"
  "CMakeFiles/allsize.dir/allsize.cpp.o.d"
  "allsize"
  "allsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
