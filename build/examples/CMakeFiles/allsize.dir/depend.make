# Empty dependencies file for allsize.
# This may be replaced when dependencies are built.
