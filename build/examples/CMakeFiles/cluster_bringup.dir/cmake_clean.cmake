file(REMOVE_RECURSE
  "CMakeFiles/cluster_bringup.dir/cluster_bringup.cpp.o"
  "CMakeFiles/cluster_bringup.dir/cluster_bringup.cpp.o.d"
  "cluster_bringup"
  "cluster_bringup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_bringup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
