# Empty compiler generated dependencies file for cluster_bringup.
# This may be replaced when dependencies are built.
