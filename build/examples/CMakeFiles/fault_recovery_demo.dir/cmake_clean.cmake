file(REMOVE_RECURSE
  "CMakeFiles/fault_recovery_demo.dir/fault_recovery_demo.cpp.o"
  "CMakeFiles/fault_recovery_demo.dir/fault_recovery_demo.cpp.o.d"
  "fault_recovery_demo"
  "fault_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
