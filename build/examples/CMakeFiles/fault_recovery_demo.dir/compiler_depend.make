# Empty compiler generated dependencies file for fault_recovery_demo.
# This may be replaced when dependencies are built.
