file(REMOVE_RECURSE
  "CMakeFiles/myri_core.dir/backup_store.cpp.o"
  "CMakeFiles/myri_core.dir/backup_store.cpp.o.d"
  "CMakeFiles/myri_core.dir/driver.cpp.o"
  "CMakeFiles/myri_core.dir/driver.cpp.o.d"
  "CMakeFiles/myri_core.dir/ftd.cpp.o"
  "CMakeFiles/myri_core.dir/ftd.cpp.o.d"
  "libmyri_core.a"
  "libmyri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
