file(REMOVE_RECURSE
  "libmyri_core.a"
)
