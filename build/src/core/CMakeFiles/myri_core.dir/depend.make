# Empty dependencies file for myri_core.
# This may be replaced when dependencies are built.
