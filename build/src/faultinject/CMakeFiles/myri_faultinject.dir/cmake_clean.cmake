file(REMOVE_RECURSE
  "CMakeFiles/myri_faultinject.dir/campaign.cpp.o"
  "CMakeFiles/myri_faultinject.dir/campaign.cpp.o.d"
  "CMakeFiles/myri_faultinject.dir/workload.cpp.o"
  "CMakeFiles/myri_faultinject.dir/workload.cpp.o.d"
  "libmyri_faultinject.a"
  "libmyri_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
