file(REMOVE_RECURSE
  "libmyri_faultinject.a"
)
