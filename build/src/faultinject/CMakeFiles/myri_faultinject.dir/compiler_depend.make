# Empty compiler generated dependencies file for myri_faultinject.
# This may be replaced when dependencies are built.
