file(REMOVE_RECURSE
  "CMakeFiles/myri_fm.dir/endpoint.cpp.o"
  "CMakeFiles/myri_fm.dir/endpoint.cpp.o.d"
  "libmyri_fm.a"
  "libmyri_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
