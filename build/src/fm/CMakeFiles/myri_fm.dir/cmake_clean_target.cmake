file(REMOVE_RECURSE
  "libmyri_fm.a"
)
