# Empty compiler generated dependencies file for myri_fm.
# This may be replaced when dependencies are built.
