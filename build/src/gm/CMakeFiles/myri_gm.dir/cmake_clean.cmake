file(REMOVE_RECURSE
  "CMakeFiles/myri_gm.dir/cluster.cpp.o"
  "CMakeFiles/myri_gm.dir/cluster.cpp.o.d"
  "CMakeFiles/myri_gm.dir/node.cpp.o"
  "CMakeFiles/myri_gm.dir/node.cpp.o.d"
  "CMakeFiles/myri_gm.dir/port.cpp.o"
  "CMakeFiles/myri_gm.dir/port.cpp.o.d"
  "libmyri_gm.a"
  "libmyri_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
