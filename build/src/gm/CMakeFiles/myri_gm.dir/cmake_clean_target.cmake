file(REMOVE_RECURSE
  "libmyri_gm.a"
)
