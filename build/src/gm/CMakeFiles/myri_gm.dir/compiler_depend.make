# Empty compiler generated dependencies file for myri_gm.
# This may be replaced when dependencies are built.
