
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host_memory.cpp" "src/host/CMakeFiles/myri_host.dir/host_memory.cpp.o" "gcc" "src/host/CMakeFiles/myri_host.dir/host_memory.cpp.o.d"
  "/root/repo/src/host/interrupts.cpp" "src/host/CMakeFiles/myri_host.dir/interrupts.cpp.o" "gcc" "src/host/CMakeFiles/myri_host.dir/interrupts.cpp.o.d"
  "/root/repo/src/host/pci.cpp" "src/host/CMakeFiles/myri_host.dir/pci.cpp.o" "gcc" "src/host/CMakeFiles/myri_host.dir/pci.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/myri_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
