file(REMOVE_RECURSE
  "CMakeFiles/myri_host.dir/host_memory.cpp.o"
  "CMakeFiles/myri_host.dir/host_memory.cpp.o.d"
  "CMakeFiles/myri_host.dir/interrupts.cpp.o"
  "CMakeFiles/myri_host.dir/interrupts.cpp.o.d"
  "CMakeFiles/myri_host.dir/pci.cpp.o"
  "CMakeFiles/myri_host.dir/pci.cpp.o.d"
  "libmyri_host.a"
  "libmyri_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
