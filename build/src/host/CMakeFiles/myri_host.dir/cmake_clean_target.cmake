file(REMOVE_RECURSE
  "libmyri_host.a"
)
