# Empty dependencies file for myri_host.
# This may be replaced when dependencies are built.
