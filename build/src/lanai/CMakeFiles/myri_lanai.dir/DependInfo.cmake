
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lanai/assembler.cpp" "src/lanai/CMakeFiles/myri_lanai.dir/assembler.cpp.o" "gcc" "src/lanai/CMakeFiles/myri_lanai.dir/assembler.cpp.o.d"
  "/root/repo/src/lanai/cpu.cpp" "src/lanai/CMakeFiles/myri_lanai.dir/cpu.cpp.o" "gcc" "src/lanai/CMakeFiles/myri_lanai.dir/cpu.cpp.o.d"
  "/root/repo/src/lanai/disassembler.cpp" "src/lanai/CMakeFiles/myri_lanai.dir/disassembler.cpp.o" "gcc" "src/lanai/CMakeFiles/myri_lanai.dir/disassembler.cpp.o.d"
  "/root/repo/src/lanai/nic.cpp" "src/lanai/CMakeFiles/myri_lanai.dir/nic.cpp.o" "gcc" "src/lanai/CMakeFiles/myri_lanai.dir/nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/myri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/myri_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/myri_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
