file(REMOVE_RECURSE
  "CMakeFiles/myri_lanai.dir/assembler.cpp.o"
  "CMakeFiles/myri_lanai.dir/assembler.cpp.o.d"
  "CMakeFiles/myri_lanai.dir/cpu.cpp.o"
  "CMakeFiles/myri_lanai.dir/cpu.cpp.o.d"
  "CMakeFiles/myri_lanai.dir/disassembler.cpp.o"
  "CMakeFiles/myri_lanai.dir/disassembler.cpp.o.d"
  "CMakeFiles/myri_lanai.dir/nic.cpp.o"
  "CMakeFiles/myri_lanai.dir/nic.cpp.o.d"
  "libmyri_lanai.a"
  "libmyri_lanai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_lanai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
