file(REMOVE_RECURSE
  "libmyri_lanai.a"
)
