# Empty compiler generated dependencies file for myri_lanai.
# This may be replaced when dependencies are built.
