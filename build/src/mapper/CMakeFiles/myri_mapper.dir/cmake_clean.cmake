file(REMOVE_RECURSE
  "CMakeFiles/myri_mapper.dir/mapper.cpp.o"
  "CMakeFiles/myri_mapper.dir/mapper.cpp.o.d"
  "libmyri_mapper.a"
  "libmyri_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
