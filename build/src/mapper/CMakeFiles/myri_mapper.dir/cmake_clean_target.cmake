file(REMOVE_RECURSE
  "libmyri_mapper.a"
)
