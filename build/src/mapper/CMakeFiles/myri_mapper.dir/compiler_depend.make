# Empty compiler generated dependencies file for myri_mapper.
# This may be replaced when dependencies are built.
