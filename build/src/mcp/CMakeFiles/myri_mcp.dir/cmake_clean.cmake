file(REMOVE_RECURSE
  "CMakeFiles/myri_mcp.dir/mcp.cpp.o"
  "CMakeFiles/myri_mcp.dir/mcp.cpp.o.d"
  "CMakeFiles/myri_mcp.dir/send_chunk.cpp.o"
  "CMakeFiles/myri_mcp.dir/send_chunk.cpp.o.d"
  "libmyri_mcp.a"
  "libmyri_mcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_mcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
