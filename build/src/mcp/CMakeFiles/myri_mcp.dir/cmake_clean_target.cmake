file(REMOVE_RECURSE
  "libmyri_mcp.a"
)
