# Empty dependencies file for myri_mcp.
# This may be replaced when dependencies are built.
