file(REMOVE_RECURSE
  "CMakeFiles/myri_mpi.dir/comm.cpp.o"
  "CMakeFiles/myri_mpi.dir/comm.cpp.o.d"
  "libmyri_mpi.a"
  "libmyri_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
