file(REMOVE_RECURSE
  "libmyri_mpi.a"
)
