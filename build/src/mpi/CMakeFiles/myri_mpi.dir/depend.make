# Empty dependencies file for myri_mpi.
# This may be replaced when dependencies are built.
