file(REMOVE_RECURSE
  "CMakeFiles/myri_net.dir/link.cpp.o"
  "CMakeFiles/myri_net.dir/link.cpp.o.d"
  "CMakeFiles/myri_net.dir/packet.cpp.o"
  "CMakeFiles/myri_net.dir/packet.cpp.o.d"
  "CMakeFiles/myri_net.dir/switch.cpp.o"
  "CMakeFiles/myri_net.dir/switch.cpp.o.d"
  "CMakeFiles/myri_net.dir/topology.cpp.o"
  "CMakeFiles/myri_net.dir/topology.cpp.o.d"
  "libmyri_net.a"
  "libmyri_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
