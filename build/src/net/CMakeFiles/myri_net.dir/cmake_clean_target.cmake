file(REMOVE_RECURSE
  "libmyri_net.a"
)
