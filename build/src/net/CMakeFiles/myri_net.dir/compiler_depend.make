# Empty compiler generated dependencies file for myri_net.
# This may be replaced when dependencies are built.
