file(REMOVE_RECURSE
  "CMakeFiles/myri_sim.dir/event_queue.cpp.o"
  "CMakeFiles/myri_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/myri_sim.dir/trace.cpp.o"
  "CMakeFiles/myri_sim.dir/trace.cpp.o.d"
  "libmyri_sim.a"
  "libmyri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
