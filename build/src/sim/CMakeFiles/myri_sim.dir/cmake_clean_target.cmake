file(REMOVE_RECURSE
  "libmyri_sim.a"
)
