# Empty dependencies file for myri_sim.
# This may be replaced when dependencies are built.
