file(REMOVE_RECURSE
  "CMakeFiles/fm_test.dir/fm_test.cpp.o"
  "CMakeFiles/fm_test.dir/fm_test.cpp.o.d"
  "fm_test"
  "fm_test.pdb"
  "fm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
