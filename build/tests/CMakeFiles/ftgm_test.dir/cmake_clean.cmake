file(REMOVE_RECURSE
  "CMakeFiles/ftgm_test.dir/ftgm_test.cpp.o"
  "CMakeFiles/ftgm_test.dir/ftgm_test.cpp.o.d"
  "ftgm_test"
  "ftgm_test.pdb"
  "ftgm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftgm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
