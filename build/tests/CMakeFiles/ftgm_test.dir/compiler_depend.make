# Empty compiler generated dependencies file for ftgm_test.
# This may be replaced when dependencies are built.
