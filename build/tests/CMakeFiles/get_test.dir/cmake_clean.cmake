file(REMOVE_RECURSE
  "CMakeFiles/get_test.dir/get_test.cpp.o"
  "CMakeFiles/get_test.dir/get_test.cpp.o.d"
  "get_test"
  "get_test.pdb"
  "get_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/get_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
