# Empty compiler generated dependencies file for get_test.
# This may be replaced when dependencies are built.
