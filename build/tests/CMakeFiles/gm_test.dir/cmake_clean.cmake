file(REMOVE_RECURSE
  "CMakeFiles/gm_test.dir/gm_test.cpp.o"
  "CMakeFiles/gm_test.dir/gm_test.cpp.o.d"
  "gm_test"
  "gm_test.pdb"
  "gm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
