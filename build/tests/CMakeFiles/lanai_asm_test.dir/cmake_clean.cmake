file(REMOVE_RECURSE
  "CMakeFiles/lanai_asm_test.dir/lanai_asm_test.cpp.o"
  "CMakeFiles/lanai_asm_test.dir/lanai_asm_test.cpp.o.d"
  "lanai_asm_test"
  "lanai_asm_test.pdb"
  "lanai_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanai_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
