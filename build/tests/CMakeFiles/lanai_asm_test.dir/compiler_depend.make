# Empty compiler generated dependencies file for lanai_asm_test.
# This may be replaced when dependencies are built.
