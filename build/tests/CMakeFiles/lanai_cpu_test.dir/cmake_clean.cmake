file(REMOVE_RECURSE
  "CMakeFiles/lanai_cpu_test.dir/lanai_cpu_test.cpp.o"
  "CMakeFiles/lanai_cpu_test.dir/lanai_cpu_test.cpp.o.d"
  "lanai_cpu_test"
  "lanai_cpu_test.pdb"
  "lanai_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanai_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
