# Empty dependencies file for lanai_cpu_test.
# This may be replaced when dependencies are built.
