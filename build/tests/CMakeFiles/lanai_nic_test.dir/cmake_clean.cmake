file(REMOVE_RECURSE
  "CMakeFiles/lanai_nic_test.dir/lanai_nic_test.cpp.o"
  "CMakeFiles/lanai_nic_test.dir/lanai_nic_test.cpp.o.d"
  "lanai_nic_test"
  "lanai_nic_test.pdb"
  "lanai_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanai_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
