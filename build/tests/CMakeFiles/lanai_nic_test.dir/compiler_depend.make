# Empty compiler generated dependencies file for lanai_nic_test.
# This may be replaced when dependencies are built.
