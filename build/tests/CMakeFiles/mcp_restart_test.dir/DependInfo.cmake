
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mcp_restart_test.cpp" "tests/CMakeFiles/mcp_restart_test.dir/mcp_restart_test.cpp.o" "gcc" "tests/CMakeFiles/mcp_restart_test.dir/mcp_restart_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faultinject/CMakeFiles/myri_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/myri_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/myri_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/myri_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/myri_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/myri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcp/CMakeFiles/myri_mcp.dir/DependInfo.cmake"
  "/root/repo/build/src/lanai/CMakeFiles/myri_lanai.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/myri_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/myri_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/myri_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
