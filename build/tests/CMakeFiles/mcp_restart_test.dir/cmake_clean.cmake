file(REMOVE_RECURSE
  "CMakeFiles/mcp_restart_test.dir/mcp_restart_test.cpp.o"
  "CMakeFiles/mcp_restart_test.dir/mcp_restart_test.cpp.o.d"
  "mcp_restart_test"
  "mcp_restart_test.pdb"
  "mcp_restart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
