# Empty dependencies file for mcp_restart_test.
# This may be replaced when dependencies are built.
