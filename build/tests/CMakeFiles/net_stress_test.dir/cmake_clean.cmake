file(REMOVE_RECURSE
  "CMakeFiles/net_stress_test.dir/net_stress_test.cpp.o"
  "CMakeFiles/net_stress_test.dir/net_stress_test.cpp.o.d"
  "net_stress_test"
  "net_stress_test.pdb"
  "net_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
