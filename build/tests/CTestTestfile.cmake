# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/lanai_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/lanai_asm_test[1]_include.cmake")
include("/root/repo/build/tests/lanai_nic_test[1]_include.cmake")
include("/root/repo/build/tests/mcp_test[1]_include.cmake")
include("/root/repo/build/tests/gm_test[1]_include.cmake")
include("/root/repo/build/tests/ftgm_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/faultinject_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/directed_test[1]_include.cmake")
include("/root/repo/build/tests/net_stress_test[1]_include.cmake")
include("/root/repo/build/tests/mcp_restart_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/fm_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/get_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
