// allsize: a port of GM's gm_allsize-style performance utility.
//
// Sweeps message sizes and reports one-way latency and sustained
// bidirectional bandwidth for the mode given on the command line
// ("gm" or "ftgm", default ftgm) — the same measurements behind the
// paper's Figures 7 and 8, packaged as a user tool.
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"

using namespace myri;

int main(int argc, char** argv) {
  mcp::McpMode mode = mcp::McpMode::kFtgm;
  if (argc > 1 && std::strcmp(argv[1], "gm") == 0) {
    mode = mcp::McpMode::kGm;
  }
  std::printf("allsize (%s)\n",
              mode == mcp::McpMode::kGm ? "GM baseline" : "FTGM");
  std::printf("%10s %14s %16s\n", "bytes", "latency (us)",
              "bandwidth (MB/s)");
  for (std::uint32_t len = 1; len <= (1u << 20); len *= 4) {
    const auto pp = bench::run_ping_pong(mode, len, 30);
    const auto bw = bench::run_bandwidth_bidir(
        mode, len, len >= (1u << 18) ? 12 : 40);
    std::printf("%10u %14.2f %16.2f\n", len, pp.half_rtt.mean_us(),
                bw.mb_per_s);
  }
  return 0;
}
