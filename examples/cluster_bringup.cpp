// Cluster bring-up: self-configuration of a multi-switch fabric.
//
// Builds a 3-switch / 6-node fabric with no routes installed anywhere,
// runs the GM mapper from node 0 (scout flood -> topology graph -> route
// computation -> MAP_ROUTE distribution), then proves the routes work by
// running traffic between nodes on opposite switches. This is the
// substrate the FTD's routing-table restoration depends on.
#include <cstdio>
#include <memory>
#include <vector>

#include "faultinject/workload.hpp"
#include "gm/node.hpp"
#include "mapper/mapper.hpp"
#include "net/topology.hpp"

using namespace myri;

int main() {
  sim::EventQueue eq;
  sim::Rng rng(2003);
  net::Topology topo(eq, rng);

  // Fabric: sw0 -- sw1 -- sw2 (a line), two hosts per switch.
  const auto s0 = topo.add_switch(8, "sw0");
  const auto s1 = topo.add_switch(8, "sw1");
  const auto s2 = topo.add_switch(8, "sw2");
  topo.connect_switches(s0, 7, s1, 6);
  topo.connect_switches(s1, 7, s2, 6);

  std::vector<std::unique_ptr<gm::Node>> nodes;
  const std::uint16_t attach_sw[] = {s0, s0, s1, s1, s2, s2};
  for (int i = 0; i < 6; ++i) {
    gm::Node::Config nc;
    nc.id = static_cast<net::NodeId>(i);
    nc.host_mem_bytes = 8u << 20;
    nodes.push_back(
        std::make_unique<gm::Node>(eq, nc, "node" + std::to_string(i)));
    nodes.back()->attach(topo, attach_sw[i], static_cast<std::uint8_t>(i % 2));
    nodes.back()->boot();
  }

  std::printf("fabric: 3 switches in a line, 6 interfaces, no routes yet\n");
  std::printf("node5 route table size before mapping: %zu\n\n",
              nodes[5]->nic().num_routes());

  // Run the mapper from node 0.
  mapper::Mapper mapper(*nodes[0]);
  bool ok = false;
  mapper.run([&](bool r) { ok = r; });
  eq.run(10'000'000);

  std::printf("mapper finished: %s\n", ok ? "ok" : "FAILED");
  std::printf("discovered: %zu interfaces, %zu switches "
              "(%llu scouts, %llu timeouts)\n",
              mapper.interfaces().size(), mapper.num_switches(),
              static_cast<unsigned long long>(mapper.stats().scouts_sent),
              static_cast<unsigned long long>(mapper.stats().timeouts));
  for (net::NodeId a : {net::NodeId{0}, net::NodeId{2}}) {
    for (net::NodeId b : mapper.interfaces()) {
      if (a == b) continue;
      auto r = mapper.route_between(a, b);
      if (!r) continue;
      std::printf("  route %u->%u: [", a, b);
      for (std::size_t i = 0; i < r->size(); ++i) {
        std::printf("%s%u", i ? " " : "", (*r)[i]);
      }
      std::printf("]\n");
    }
  }
  std::printf("node5 route table size after mapping: %zu\n\n",
              nodes[5]->nic().num_routes());

  // Prove it: verified traffic between the far corners (node0 <-> node5).
  gm::Port& tx = nodes[0]->open_port(2);
  gm::Port& rx = nodes[5]->open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 25;
  wc.msg_len = 4096;
  fi::StreamWorkload wl(tx, rx, wc);
  eq.run_for(sim::usec(900));
  wl.start();
  eq.run_for(sim::msec(50));
  std::printf("traffic node0 -> node5 across both inter-switch links: "
              "%d/25 delivered, %d corrupted\n",
              wl.received(), wl.corrupted());
  return wl.complete() && ok ? 0 : 1;
}
