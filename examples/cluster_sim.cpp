// cluster_sim: command-line scenario runner for the simulated platform.
//
//   cluster_sim [--nodes N] [--fabric single|line|ring|fat-tree]
//               [--radix R] [--mode gm|ftgm] [--msgs M] [--len BYTES]
//               [--drop P] [--corrupt P] [--hang-at USEC[,USEC...]]
//               [--victim NODE] [--kill-cable-at USEC] [--cable IDX]
//               [--join-at USEC] [--drain-at USEC] [--drain-node NODE]
//               [--replace-at USEC] [--replace-node NODE]
//               [--seed S] [--horizon-ms MS] [--trace]
//               [--soak VIRT_SECONDS] [--soak-retain-caches]
//
// Runs a verified all-pairs-neighbour workload under the given fault
// scenario and prints a full report: delivery/exactly-once status, MCP and
// NIC counters, recovery statistics. The Swiss-army knife for exploring
// the system without writing code.
//
// Node count is bounded only by the fabric preset's capacity: a 64-node
// run wants --fabric fat-tree (16 leaves + 4 spines at the default radix).
// --kill-cable-at downs a trunk cable mid-run and lets the mapper-driven
// FailoverManager reroute around it.
//
// Membership events exercise the elastic roster under traffic:
// --join-at hot-adds a node at a free switch port (and verifies it with a
// short stream from node 0), --drain-at drains a node until it retires,
// --replace-at swaps a node for a spare at the same port and NodeId
// (combine with --hang-at/--victim to replace a genuinely dead card; its
// two ring streams are abandoned by design).
//
// --soak N runs the long-horizon soak instead: N virtual seconds of
// continuous background fault arrival (all kinds plus membership churn)
// on a 64-node fat-tree by default, with every oracle invariant and the
// drift probes checked each 500 ms window. On failure the schedule is
// shrunk (window-granular ddmin) and written as repro_soak_<seed>.json
// for bit-identical replay through scenario_replay.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "faultinject/scenario.hpp"
#include "faultinject/shrinker.hpp"
#include "faultinject/soak.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mapper/failover.hpp"

using namespace myri;

namespace {

struct Options {
  int nodes = 2;
  net::FabricPreset fabric = net::FabricPreset::kSingleSwitch;
  int radix = 8;
  mcp::McpMode mode = mcp::McpMode::kFtgm;
  int msgs = 50;
  std::uint32_t len = 2048;
  double drop = 0, corrupt = 0;
  std::vector<double> hang_at_us;
  int victim = 0;
  double kill_cable_at_us = -1;  // <0 = no cable kill
  int cable = 0;                 // trunk-cable index to kill
  double join_at_us = -1;        // <0 = no hot-add
  double drain_at_us = -1;       // <0 = no drain
  int drain_node = 1;
  double replace_at_us = -1;     // <0 = no spare swap
  int replace_node = 1;
  std::uint64_t seed = 42;
  double horizon_ms = 0;  // 0 = auto
  bool trace = false;
  double soak_s = 0;      // >0 = soak mode, virtual seconds
  bool soak_retain_caches = false;
  // Soak mode has its own topology defaults (64-node fat-tree, radix
  // 10); explicit flags still win.
  bool nodes_set = false, fabric_set = false, radix_set = false;
};

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--nodes") { o.nodes = std::atoi(next(i)); o.nodes_set = true; }
    else if (a == "--soak") o.soak_s = std::atof(next(i));
    else if (a == "--soak-retain-caches") o.soak_retain_caches = true;
    else if (a == "--fabric") {
      const char* v = next(i);
      const auto p = net::parse_fabric_preset(v);
      if (!p) {
        std::fprintf(stderr,
                     "--fabric must be single|line|ring|fat-tree, got %s\n",
                     v);
        std::exit(2);
      }
      o.fabric = *p;
      o.fabric_set = true;
    } else if (a == "--radix") { o.radix = std::atoi(next(i)); o.radix_set = true; }
    else if (a == "--kill-cable-at") o.kill_cable_at_us = std::atof(next(i));
    else if (a == "--cable") o.cable = std::atoi(next(i));
    else if (a == "--join-at") o.join_at_us = std::atof(next(i));
    else if (a == "--drain-at") o.drain_at_us = std::atof(next(i));
    else if (a == "--drain-node") o.drain_node = std::atoi(next(i));
    else if (a == "--replace-at") o.replace_at_us = std::atof(next(i));
    else if (a == "--replace-node") o.replace_node = std::atoi(next(i));
    else if (a == "--mode") {
      o.mode = std::strcmp(next(i), "gm") == 0 ? mcp::McpMode::kGm
                                               : mcp::McpMode::kFtgm;
    } else if (a == "--msgs") o.msgs = std::atoi(next(i));
    else if (a == "--len") o.len = static_cast<std::uint32_t>(std::atoi(next(i)));
    else if (a == "--drop") o.drop = std::atof(next(i));
    else if (a == "--corrupt") o.corrupt = std::atof(next(i));
    else if (a == "--victim") o.victim = std::atoi(next(i));
    else if (a == "--seed") o.seed = std::strtoull(next(i), nullptr, 0);
    else if (a == "--horizon-ms") o.horizon_ms = std::atof(next(i));
    else if (a == "--trace") o.trace = true;
    else if (a == "--hang-at") {
      std::string v = next(i);
      for (std::size_t p = 0; p < v.size();) {
        o.hang_at_us.push_back(std::atof(v.c_str() + p));
        const auto comma = v.find(',', p);
        if (comma == std::string::npos) break;
        p = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      std::exit(2);
    }
  }
  net::FabricConfig fc;
  fc.preset = o.fabric;
  fc.nodes = o.nodes;
  fc.radix = static_cast<std::uint8_t>(o.radix);
  const std::size_t cap = net::FabricBuilder::capacity(fc);
  if (o.nodes < 2 || static_cast<std::size_t>(o.nodes) > cap) {
    std::fprintf(stderr, "--nodes must be 2..%zu for --fabric %s --radix %d\n",
                 cap, net::to_string(o.fabric), o.radix);
    std::exit(2);
  }
  if (o.drain_at_us >= 0 && (o.drain_node < 1 || o.drain_node >= o.nodes)) {
    std::fprintf(stderr, "--drain-node must be 1..%d\n", o.nodes - 1);
    std::exit(2);
  }
  if (o.replace_at_us >= 0 &&
      (o.replace_node < 1 || o.replace_node >= o.nodes)) {
    std::fprintf(stderr, "--replace-node must be 1..%d\n", o.nodes - 1);
    std::exit(2);
  }
  return o;
}

}  // namespace

namespace {

int run_soak(const Options& o) {
  fi::SoakProfile sp;
  sp.seed = o.seed;
  if (o.nodes_set) sp.nodes = o.nodes;
  if (o.fabric_set) sp.fabric = o.fabric;
  if (o.radix_set) sp.radix = static_cast<std::uint8_t>(o.radix);
  sp.duration = sim::usecf(o.soak_s * 1e6);
  sp.retain_caches = o.soak_retain_caches;
  if (sp.duration < sim::sec(300)) {
    // Smoke-scale soak: tighten the arrival rates so a short run still
    // sees every fault kind (and several churn cycles).
    sp.hang_every = sim::sec(20);
    sp.cable_every = sim::sec(25);
    sp.cable_outage = sim::sec(3);
    sp.flip_every = sim::sec(30);
    sp.loss_every = sim::sec(15);
    sp.churn_every = sim::sec(12);
    sp.replace_every = sim::sec(30);
  }
  const fi::Scenario sc = fi::make_soak_scenario(sp);
  std::printf("soak: %d nodes on %s fabric (radix %d), %.0f virtual s, "
              "%zu scheduled faults, %d msgs/stream every %.0f ms, "
              "check window %.0f ms, seed %llu%s\n",
              sc.nodes, net::to_string(sc.fabric), sc.radix, o.soak_s,
              sc.events.size(), sc.msgs,
              static_cast<double>(sc.send_gap) / 1e6,
              static_cast<double>(sc.check_window) / 1e6,
              static_cast<unsigned long long>(sc.seed),
              sc.retain_caches ? " [leak planted]" : "");
  const fi::RunReport rep = fi::ScenarioRunner::run(sc);
  std::printf("soak: %.1f virtual s run, %llu deliveries, %llu windows "
              "checked, %llu drift sweeps, %llu recoveries, %llu remaps, "
              "digest %llx\n",
              sim::to_sec(rep.end_time),
              static_cast<unsigned long long>(rep.deliveries),
              static_cast<unsigned long long>(rep.windows_checked),
              static_cast<unsigned long long>(rep.drift_checks),
              static_cast<unsigned long long>(rep.recoveries),
              static_cast<unsigned long long>(rep.remaps),
              static_cast<unsigned long long>(rep.digest));
  if (!rep.failed()) {
    std::printf("result: soak clean — every invariant held in every "
                "window\n");
    return 0;
  }
  std::printf("soak FAILED: %s at %.3f s (window %lld): %s\n",
              rep.failure_signature().c_str(), sim::to_sec(rep.violation_at),
              static_cast<long long>(rep.violation_window),
              rep.violation_detail.c_str());
  fi::Shrinker::Config scfg;
  scfg.max_attempts = 60;
  const fi::ShrinkResult sr = fi::Shrinker::shrink(sc, rep, scfg);
  const std::string path =
      "repro_soak_" + std::to_string(o.seed) + ".json";
  if (fi::write_repro(path, sr.minimal, sr.report)) {
    std::printf("shrunk to %zu event(s) / %.1f virtual s in %d attempts; "
                "repro written to %s\n",
                sr.minimal.events.size(),
                sim::to_sec(sr.minimal.effective_horizon()), sr.attempts,
                path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.soak_s > 0) return run_soak(o);

  gm::ClusterConfig cc;
  cc.nodes = o.nodes;
  cc.fabric = o.fabric;
  cc.switch_ports = static_cast<std::uint8_t>(o.radix);
  cc.mode = o.mode;
  cc.seed = o.seed;
  cc.faults = {o.drop, o.corrupt, 0.0};
  gm::Cluster cluster(cc);

  const bool membership = o.join_at_us >= 0 || o.drain_at_us >= 0 ||
                          o.replace_at_us >= 0;

  // Cable-kill scenario: the FailoverManager watches the topology and
  // re-runs the mapper when the trunk goes down. Membership events also
  // get a live mapper when the fabric has one to give (so a join folds in
  // at the next epoch instead of only riding the pristine routes).
  std::unique_ptr<mapper::FailoverManager> fm;
  if (o.kill_cable_at_us >= 0) {
    const auto& trunks = cluster.fabric().trunk_cables();
    if (trunks.empty()) {
      std::fprintf(stderr, "--kill-cable-at needs a multi-switch --fabric\n");
      return 2;
    }
    if (o.cable < 0 || static_cast<std::size_t>(o.cable) >= trunks.size()) {
      std::fprintf(stderr, "--cable must be 0..%zu\n", trunks.size() - 1);
      return 2;
    }
    fm = std::make_unique<mapper::FailoverManager>(cluster);
    cluster.eq().schedule_after(sim::usecf(o.kill_cable_at_us),
                                [&cluster, &o] {
                                  cluster.topo().set_cable_down(
                                      cluster.fabric().trunk_cables()[o.cable],
                                      true);
                                });
  }
  if (!fm && membership && !cluster.fabric().trunk_cables().empty()) {
    fm = std::make_unique<mapper::FailoverManager>(cluster);
  }

  sim::Trace trace;
  if (o.trace) {
    trace.enable(sim::TraceCat::kFt, &std::cout);
    trace.enable(sim::TraceCat::kMcp, &std::cout);
    cluster.set_trace(&trace);
  }

  // Neighbour-ring workload: node i -> node (i+1) % n, verified.
  std::vector<gm::Port*> ports;
  for (int i = 0; i < o.nodes; ++i) {
    ports.push_back(&cluster.node(i).open_port(2, {24, 24}));
  }
  fi::StreamWorkload::Config wc;
  wc.total_msgs = o.msgs;
  wc.msg_len = o.len;
  std::vector<std::unique_ptr<fi::StreamWorkload>> wls;
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < o.nodes; ++i) {
    wls.push_back(std::make_unique<fi::StreamWorkload>(
        *ports[i], *ports[(i + 1) % o.nodes], wc));
    wls.back()->start();
  }

  for (const double at_us : o.hang_at_us) {
    cluster.eq().schedule_after(sim::usecf(at_us), [&cluster, &o] {
      cluster.node(o.victim).mcp().inject_hang("--hang-at");
      if (cluster.node(o.victim).has_ftd()) {
        cluster.node(o.victim).ftd().mark_fault_injected();
      }
    });
  }

  // Membership events. Joins and replaces get an 8-message verification
  // stream from node 0 into the new card (receive port 3), started once
  // the fresh ports have had their open handshake on the wire.
  int verif_streams = 0;
  auto start_verification = [&](net::NodeId dst) {
    gm::Port& tx = cluster.node(0).open_port(
        static_cast<std::uint8_t>(4 + verif_streams), {24, 24});
    gm::Port& rx = cluster.node(dst).open_port(3, {24, 24});
    ++verif_streams;
    fi::StreamWorkload::Config vwc;
    vwc.total_msgs = 8;
    vwc.msg_len = o.len;
    wls.push_back(std::make_unique<fi::StreamWorkload>(tx, rx, vwc));
    fi::StreamWorkload* wl = wls.back().get();
    cluster.eq().schedule_after(sim::msec(2), [wl] { wl->start(); });
  };
  if (o.join_at_us >= 0) {
    cluster.eq().schedule_after(sim::usecf(o.join_at_us), [&] {
      const net::NodeId id = cluster.add_node();
      cluster.eq().schedule_after(sim::msec(5),
                                  [&, id] { start_verification(id); });
    });
  }
  if (o.drain_at_us >= 0) {
    cluster.eq().schedule_after(sim::usecf(o.drain_at_us), [&] {
      cluster.drain_node(static_cast<net::NodeId>(o.drain_node));
    });
  }
  if (o.replace_at_us >= 0) {
    cluster.eq().schedule_after(sim::usecf(o.replace_at_us), [&] {
      const auto x = static_cast<net::NodeId>(o.replace_node);
      // The outgoing card takes its two ring streams with it.
      wls[static_cast<std::size_t>(o.replace_node)]->abandon();
      wls[static_cast<std::size_t>((o.replace_node - 1 + o.nodes) %
                                   o.nodes)]
          ->abandon();
      cluster.replace_node(x);
      cluster.eq().schedule_after(sim::msec(5),
                                  [&, x] { start_verification(x); });
    });
  }

  const double auto_ms =
      10.0 + o.msgs * o.nodes * 0.1 +
      (o.hang_at_us.empty() ? 0.0 : 4000.0 * o.hang_at_us.size()) +
      (o.kill_cable_at_us >= 0 ? 1000.0 : 0.0) +
      (membership ? 1000.0 : 0.0);
  const sim::Time horizon =
      sim::usecf((o.horizon_ms > 0 ? o.horizon_ms : auto_ms) * 1000.0);
  // Don't declare victory before the schedule has fired: a join at 20 ms
  // must not be skipped because the ring drained at 10 ms (its
  // verification stream only enters wls ~7 ms after the event).
  double last_sched_us = 0;
  for (const double at : o.hang_at_us) last_sched_us = std::max(last_sched_us, at);
  last_sched_us = std::max({last_sched_us, o.kill_cable_at_us, o.join_at_us,
                            o.drain_at_us, o.replace_at_us});
  // A drain additionally needs its quiet window (default 25 ms) of
  // quiescence before it retires — hold the run open long enough to show
  // the retirement in the report.
  const sim::Time settle = sim::usecf(last_sched_us) + sim::msec(10) +
                           (o.drain_at_us >= 0 ? sim::msec(50) : 0);
  while (cluster.eq().now() < horizon) {
    cluster.run_for(sim::msec(20));
    if (cluster.eq().now() < settle) continue;
    bool all = true;
    for (auto& w : wls) all = all && (w->complete() || w->abandoned());
    if (all) break;
  }

  std::printf("scenario: %d nodes on %s fabric (%zu switches, %zu trunks), "
              "%s, %d x %u B per stream, drop=%.2f corrupt=%.2f, %zu "
              "hang(s) on node %d\n",
              o.nodes, net::to_string(o.fabric),
              cluster.fabric().num_switches(),
              cluster.fabric().trunk_cables().size(),
              o.mode == mcp::McpMode::kGm ? "GM" : "FTGM", o.msgs, o.len,
              o.drop, o.corrupt, o.hang_at_us.size(), o.victim);
  std::printf("virtual time: %.3f s\n\n", sim::to_sec(cluster.eq().now()));
  if (fm && o.kill_cable_at_us >= 0) {
    const auto& remap_ns =
        cluster.metrics().histogram("fabric.failover.remap_ns");
    std::printf("failover: cable %d down at %.0f us -> %llu remap(s), "
                "%llu failed, remap latency max %.3f ms\n\n",
                o.cable, o.kill_cable_at_us,
                static_cast<unsigned long long>(fm->remaps()),
                static_cast<unsigned long long>(fm->failed_remaps()),
                static_cast<double>(remap_ns.max()) / 1e6);
  }

  if (membership) {
    const auto cval = [&](const char* name) -> unsigned long long {
      const auto* c = cluster.metrics().find_counter(name);
      return c ? static_cast<unsigned long long>(c->value()) : 0;
    };
    std::printf("membership: epoch %u, %zu member(s), joins=%llu "
                "drains=%llu replaces=%llu\n\n",
                cluster.roster().epoch(), cluster.roster().size(),
                cval("mapper.joins"), cval("mapper.drains"),
                cval("mapper.replaces"));
  }

  bool all_ok = true;
  for (std::size_t i = 0; i < wls.size(); ++i) {
    auto& w = *wls[i];
    all_ok = all_ok && (w.complete() || w.abandoned());
    const int total = i < static_cast<std::size_t>(o.nodes) ? o.msgs : 8;
    std::string label =
        i < static_cast<std::size_t>(o.nodes)
            ? ("stream " + std::to_string(i) + "->" +
               std::to_string((i + 1) % static_cast<std::size_t>(o.nodes)))
            : ("verify 0->" + w.receiver().node().name());
    std::printf("%s: %3d/%3d delivered, %d dup, %d corrupt, %d missing %s\n",
                label.c_str(), w.received(), total, w.duplicates(),
                w.corrupted(), w.missing(),
                w.complete()    ? ""
                : w.abandoned() ? "  [abandoned to replace]"
                                : "  <-- BAD");
  }
  std::printf("\nper-node counters:\n");
  for (int i = 0; i < cluster.size(); ++i) {
    gm::Node& n = cluster.node(i);
    const auto& s = n.mcp().stats();
    const bool retired = !cluster.roster().is_member(n.id());
    std::printf("  %s: frags=%llu retx=%llu crc_drops=%llu dup_drops=%llu "
                "hangs=%llu%s%s",
                n.name().c_str(),
                static_cast<unsigned long long>(s.fragments_tx),
                static_cast<unsigned long long>(s.retransmissions),
                static_cast<unsigned long long>(s.crc_drops),
                static_cast<unsigned long long>(s.dup_drops),
                static_cast<unsigned long long>(s.hangs),
                retired ? "  [retired]" : "",
                n.mcp().hung() ? "  [STILL HUNG]\n" : "\n");
    if (n.has_ftd()) {
      const auto& f = n.ftd().stats();
      if (f.wakeups > 0) {
        std::printf("         ftd: %llu wakeups, %llu recoveries, %llu false "
                    "alarms\n",
                    static_cast<unsigned long long>(f.wakeups),
                    static_cast<unsigned long long>(f.recoveries),
                    static_cast<unsigned long long>(f.false_alarms));
      }
    }
  }
  std::printf("\nresult: %s\n", all_ok ? "exactly-once delivery everywhere"
                                       : "DELIVERY INCOMPLETE");
  return all_ok ? 0 : 1;
}
