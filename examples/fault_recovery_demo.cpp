// Fault-recovery demo: the paper's headline scenario, narrated.
//
// A bulk transfer is running when the sender's network processor hangs
// (as a cosmic-ray bit flip in the MCP would cause). Watch the IT1 software
// watchdog fire, the FTD confirm the hang and rebuild the card, and the
// library's FAULT_DETECTED handler restore the port — while the
// application code below remains completely oblivious: it just sees all
// of its sends complete and all messages arrive exactly once.
#include <cstdio>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"

using namespace myri;

int main() {
  gm::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cfg);

  gm::Port& tx = cluster.node(0).open_port(2);
  gm::Port& rx = cluster.node(1).open_port(3);

  // A verified 60-message transfer (the "application").
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 60;
  wc.msg_len = 8192;
  fi::StreamWorkload transfer(tx, rx, wc);

  cluster.run_for(sim::usec(900));
  transfer.start();
  std::printf("[%8.0f us] transfer started (60 x 8 KB, verified)\n",
              sim::to_usec(cluster.eq().now()));

  // Crash the sender's network processor mid-transfer.
  cluster.eq().schedule_after(sim::usec(150), [&] {
    cluster.node(0).ftd().mark_fault_injected();
    cluster.node(0).mcp().inject_hang("cosmic ray in the LANai");
    std::printf("[%8.0f us] !!! sender NIC processor hung (%d/60 delivered "
                "so far)\n",
                sim::to_usec(cluster.eq().now()), transfer.received());
  });

  sim::Time recovered_at = 0;
  tx.set_on_recovered([&] {
    recovered_at = cluster.eq().now();
    std::printf("[%8.0f us] port recovered: tokens, sequence numbers and "
                "ACK table restored; unacknowledged sends replayed\n",
                sim::to_usec(recovered_at));
  });

  cluster.run_for(sim::sec(4));

  const auto& ph = cluster.node(0).ftd().phases();
  std::printf("[%8.0f us] IT1 watchdog expired -> FATAL interrupt\n",
              sim::to_usec(ph.interrupt_raised));
  std::printf("[%8.0f us] FTD woken; magic-word probe confirmed the hang\n",
              sim::to_usec(ph.confirmed));
  std::printf("[%8.0f us] card reset, SRAM cleared, MCP reloaded\n",
              sim::to_usec(ph.mcp_reloaded));
  std::printf("[%8.0f us] page hash + routes restored, FAULT_DETECTED "
              "posted\n",
              sim::to_usec(ph.events_posted));

  std::printf("\n=== outcome ===\n");
  std::printf("messages delivered: %d/60  duplicates: %d  corrupted: %d\n",
              transfer.received(), transfer.duplicates(),
              transfer.corrupted());
  std::printf("sends completed:    %d/60  (every callback eventually fired)\n",
              transfer.sent_ok());
  std::printf("recoveries on the sender port: %llu\n",
              static_cast<unsigned long long>(tx.recoveries()));
  std::printf("detection %.0f us after the fault; full recovery %.2f s "
              "(paper: < 2 s)\n",
              sim::to_usec(ph.woken - ph.fault_injected),
              sim::to_sec(recovered_at - ph.fault_injected));
  return transfer.complete() ? 0 : 1;
}
