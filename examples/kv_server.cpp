// A miniature key-value service over GM, with RDMA-style reads.
//
// One server and three clients on a switch. PUTs travel as ordinary GM
// messages; GETs are answered with a *directed send* straight into a
// buffer the client registered and advertised — the zero-copy pattern
// high-performance services used on Myrinet. Halfway through, the server's
// NIC processor hangs; under FTGM every outstanding and subsequent request
// still completes exactly once, with no server/client code aware of it.
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "gm/cluster.hpp"

using namespace myri;

namespace {

// Wire format: byte 0 = opcode, bytes 1..8 key, then value / reply addr.
enum Opcode : unsigned char { kPut = 1, kGet = 2 };
constexpr std::uint32_t kValueSize = 64;

struct Server {
  gm::Port& port;
  std::map<std::string, std::string> store;
  int puts = 0, gets = 0;

  explicit Server(gm::Port& p) : port(p) {
    for (int i = 0; i < 16; ++i) {
      port.provide_receive_buffer(port.alloc_dma_buffer(256));
    }
    // Zero-copy discipline: a reply buffer stays untouched until its send
    // completes, so replies draw from a pool and return via the callback.
    for (int i = 0; i < 8; ++i) {
      reply_pool.push_back(port.alloc_dma_buffer(kValueSize));
    }
    port.set_receive_handler([this](const gm::RecvInfo& info) {
      handle(info);
      port.provide_receive_buffer(info.buffer);
    });
  }

  void handle(const gm::RecvInfo& info) {
    auto bytes = port.node().memory().at(info.buffer.addr, info.len);
    const auto op = std::to_integer<unsigned char>(bytes[0]);
    const std::string key(reinterpret_cast<const char*>(&bytes[1]), 8);
    if (op == kPut) {
      ++puts;
      store[key].assign(reinterpret_cast<const char*>(&bytes[9]),
                        info.len - 9);
    } else if (op == kGet) {
      ++gets;
      std::uint32_t reply_addr = 0;
      std::memcpy(&reply_addr, &bytes[9], 4);
      pending.push_back({key, info.src, info.src_port, reply_addr});
      pump_replies();
    }
  }

  void pump_replies() {
    while (!pending.empty() && !reply_pool.empty()) {
      const Reply r = pending.front();
      pending.pop_front();
      gm::Buffer buf = reply_pool.back();
      reply_pool.pop_back();
      // Zero-copy answer: put the value straight into the client's
      // registered reply slot.
      const std::string& value = store[r.key];
      auto out = port.node().memory().at(buf.addr, kValueSize);
      std::fill(out.begin(), out.end(), std::byte{0});
      std::memcpy(out.data(), value.data(),
                  std::min<std::size_t>(value.size(), kValueSize));
      if (!port.post(buf, kValueSize,
                     {.dst = r.client,
                      .dst_port = r.client_port,
                      .remote_vaddr = r.reply_addr,
                      .callback = [this, buf](bool) {
                        reply_pool.push_back(buf);
                        pump_replies();
                      }})) {
        // Port is recovering or out of tokens: requeue and retry shortly
        // (recovery replays finish in well under a second).
        pending.push_front(r);
        reply_pool.push_back(buf);
        port.node().event_queue().schedule_after(sim::msec(1),
                                                 [this] { pump_replies(); });
        return;
      }
    }
  }

  struct Reply {
    std::string key;
    net::NodeId client;
    std::uint8_t client_port;
    std::uint32_t reply_addr;
  };
  std::deque<Reply> pending;
  std::vector<gm::Buffer> reply_pool;
};

struct Client {
  gm::Port& port;
  net::NodeId server;
  gm::Buffer req_buf, reply_slot;
  int acks = 0;

  Client(gm::Port& p, net::NodeId srv) : port(p), server(srv) {
    req_buf = port.alloc_dma_buffer(256);
    reply_slot = port.alloc_dma_buffer(kValueSize);  // registered => RDMA-able
  }

  void put(const std::string& key, const std::string& value,
           std::function<void()> done) {
    auto bytes = port.node().memory().at(req_buf.addr, 256);
    bytes[0] = std::byte{kPut};
    std::memcpy(&bytes[1], key.data(), 8);
    std::memcpy(&bytes[9], value.data(), value.size());
    if (!port.post(req_buf, 9 + static_cast<std::uint32_t>(value.size()),
                   {.dst = server, .dst_port = 1,
                    .callback = [done](bool) { done(); }})) {
      std::printf("  !! PUT refused\n");
    }
  }

  void get(const std::string& key, std::function<void(std::string)> done) {
    auto bytes = port.node().memory().at(req_buf.addr, 256);
    bytes[0] = std::byte{kGet};
    std::memcpy(&bytes[1], key.data(), 8);
    const auto addr = static_cast<std::uint32_t>(reply_slot.addr);
    std::memcpy(&bytes[9], &addr, 4);
    pending_get = std::move(done);
    if (!port.post(req_buf, 13, {.dst = server, .dst_port = 1})) {
      std::printf("  !! GET refused\n");
    }
    poll_reply();
  }

  void poll_reply() {
    // The RDMA answer lands silently in reply_slot; poll it (a real app
    // would spin on a "doorbell" byte the same way).
    port.node().event_queue().schedule_after(sim::usec(5), [this] {
      auto bytes = port.node().memory().at(reply_slot.addr, kValueSize);
      if (std::to_integer<unsigned char>(bytes[0]) != 0) {
        std::string v;
        for (auto b : bytes) {
          if (b == std::byte{0}) break;
          v += static_cast<char>(std::to_integer<unsigned char>(b));
        }
        auto done = std::move(pending_get);
        std::fill(bytes.begin(), bytes.end(), std::byte{0});
        if (done) done(v);
        return;
      }
      poll_reply();
    });
  }

  std::function<void(std::string)> pending_get;
};

}  // namespace

int main() {
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);

  Server server(cluster.node(0).open_port(1));
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 1; i < 4; ++i) {
    clients.push_back(
        std::make_unique<Client>(cluster.node(i).open_port(2), 0));
  }
  cluster.run_for(sim::usec(900));

  std::printf("kv_server: 1 server, 3 clients; GETs answered by RDMA put\n");

  int completed = 0;
  int verify_failures = 0;
  // Each client: PUT its key, then repeatedly GET and verify.
  for (int i = 0; i < 3; ++i) {
    Client& c = *clients[i];
    const std::string key = "key-000" + std::to_string(i);
    const std::string value = "value-from-client-" + std::to_string(i);
    c.put(key, value, [&, key, value, i] {
      // Self-owning GET loop (continuations outlive this callback frame).
      auto loop = std::make_shared<std::function<void(int)>>();
      *loop = [&, key, value, i, loop](int round) {
        clients[i]->get(key, [&, key, value, i, loop,
                              round](std::string got) {
          if (got != value) {
            std::printf("  !! client %d got wrong value '%s'\n", i + 1,
                        got.c_str());
            ++verify_failures;
          }
          if (round < 9) {
            (*loop)(round + 1);
          } else {
            ++completed;
            std::printf("  client %d: 10/10 GETs verified\n", i + 1);
          }
        });
      };
      (*loop)(0);
    });
  }

  // The server NIC hangs mid-service.
  cluster.eq().schedule_after(sim::usec(60), [&] {
    cluster.node(0).mcp().inject_hang("cosmic ray");
    std::printf("  !!! server NIC hung after %d puts / %d gets\n",
                server.puts, server.gets);
  });

  cluster.run_for(sim::sec(4));
  std::printf("\nclients finished: %d/3   server handled: %d puts, %d gets\n",
              completed, server.puts, server.gets);
  std::printf("server NIC recoveries: %llu (service never saw the fault)\n",
              static_cast<unsigned long long>(
                  cluster.node(0).ftd().stats().recoveries));
  std::printf("verification failures: %d\n", verify_failures);
  return completed == 3 && verify_failures == 0 ? 0 : 1;
}
