// MPI application demo: 1-D Jacobi heat diffusion with halo exchange,
// running over GM or FTGM ("gm" as argv[1] selects the baseline).
//
// The point (paper Section 2): MPI middleware treats GM send errors as
// fatal, so a single NIC hang brings a whole distributed job to a grinding
// halt under baseline GM. Under FTGM the same unmodified application rides
// straight through the failure: detection, card rebuild and state
// restoration all happen below the API.
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "gm/cluster.hpp"
#include "mpi/comm.hpp"

using namespace myri;

namespace {

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 64;
constexpr int kIterations = 40;
constexpr int kTagLeft = 1;   // halo travelling left
constexpr int kTagRight = 2;  // halo travelling right

struct Solver {
  mpi::Rank& rank;
  std::vector<double> u, next;
  int iter = 0;
  int pending_halos = 0;
  double left_halo = 0, right_halo = 0;
  std::function<void()> on_finished;
  int* global_done;

  Solver(mpi::Rank& r, int* done_counter)
      : rank(r), u(kCellsPerRank, 0.0), next(kCellsPerRank, 0.0),
        global_done(done_counter) {
    // Initial condition: rank 0 holds a hot boundary.
    if (rank.rank() == 0) u[0] = 100.0;
  }

  void step() {
    if (iter >= kIterations) {
      ++*global_done;
      return;
    }
    // Halo exchange with neighbours (continuation-gated).
    pending_halos = 0;
    const int r = rank.rank();
    if (r > 0) {
      ++pending_halos;
      rank.isend(r - 1, kTagLeft, mpi::as_bytes(u.front()));
      rank.irecv(r - 1, kTagRight, [this](mpi::Message m) {
        left_halo = mpi::from_bytes<double>(m.data);
        halo_done();
      });
    }
    if (r < rank.size() - 1) {
      ++pending_halos;
      rank.isend(r + 1, kTagRight, mpi::as_bytes(u.back()));
      rank.irecv(r + 1, kTagLeft, [this](mpi::Message m) {
        right_halo = mpi::from_bytes<double>(m.data);
        halo_done();
      });
    }
    if (pending_halos == 0) halo_done();  // single-rank degenerate case
  }

  void halo_done() {
    if (--pending_halos > 0) return;
    // Jacobi update.
    const int r = rank.rank();
    for (int i = 0; i < kCellsPerRank; ++i) {
      const double left = i > 0 ? u[i - 1] : (r > 0 ? left_halo : 100.0);
      const double right =
          i < kCellsPerRank - 1 ? u[i + 1]
                                : (r < rank.size() - 1 ? right_halo : 0.0);
      next[i] = 0.5 * (left + right);
    }
    std::swap(u, next);
    ++iter;
    // Every 10 iterations: a global residual via allreduce.
    if (iter % 10 == 0) {
      double local = 0;
      for (int i = 0; i < kCellsPerRank; ++i) local += u[i];
      rank.allreduce_sum(local, [this](double total) {
        if (rank.rank() == 0) {
          std::printf("  iter %2d  total heat %.3f\n", iter, total);
        }
        step();
      });
    } else {
      step();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool baseline = argc > 1 && std::strcmp(argv[1], "gm") == 0;
  const mcp::McpMode mode =
      baseline ? mcp::McpMode::kGm : mcp::McpMode::kFtgm;
  std::printf("mpi_heat over %s (4 ranks, %d iterations, NIC hang injected "
              "mid-run)\n\n",
              baseline ? "baseline GM" : "FTGM", kIterations);

  gm::ClusterConfig cc;
  cc.nodes = kRanks;
  cc.mode = mode;
  gm::Cluster cluster(cc);
  std::vector<gm::Node*> nodes;
  for (int i = 0; i < kRanks; ++i) nodes.push_back(&cluster.node(i));
  mpi::Comm comm(std::move(nodes), {});
  cluster.run_for(sim::usec(900));

  int done = 0;
  std::vector<std::unique_ptr<Solver>> solvers;
  for (int r = 0; r < kRanks; ++r) {
    solvers.push_back(std::make_unique<Solver>(comm.rank(r), &done));
  }
  for (auto& s : solvers) s->step();

  // The cosmic ray strikes rank 2's NIC mid-computation.
  cluster.eq().schedule_after(sim::usec(400), [&] {
    cluster.node(2).mcp().inject_hang("cosmic ray");
    std::printf("  !!! NIC on rank 2 hung at iteration %d\n",
                solvers[2]->iter);
  });

  cluster.run_for(sim::sec(5));

  std::printf("\nresult: %d/%d ranks finished %d iterations; job %s\n", done,
              kRanks, kIterations,
              comm.aborted() ? "ABORTED (fatal GM error)"
              : done == kRanks ? "completed normally"
                               : "STALLED (node cut off, no recovery)");
  if (!baseline) {
    std::printf("recoveries on rank 2's NIC: %llu (transparent to the MPI "
                "layer)\n",
                static_cast<unsigned long long>(
                    cluster.node(2).ftd().stats().recoveries));
  }
  return done == kRanks ? 0 : 1;
}
