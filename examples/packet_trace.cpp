// packet_trace: watch the protocol on the wire.
//
// Enables category tracing on a 2-node FTGM exchange and prints every
// link/NIC/MCP/FT event with virtual timestamps — the send_chunk DMA, the
// data packet, the delayed ACK, and (second half) a watchdog-detected hang
// with the whole FTD sequence. Also dumps the send_chunk disassembly that
// the fault campaign flips bits in.
#include <iostream>

#include "gm/cluster.hpp"
#include "lanai/disassembler.hpp"
#include "mcp/send_chunk.hpp"

using namespace myri;

int main() {
  std::printf("=== the interpreted send_chunk (fault-injection target) ===\n");
  const auto img = mcp::assemble_send_chunk();
  lanai::Sram scratch(64 * 1024);
  for (std::size_t i = 0; i < img.program.words.size(); ++i) {
    scratch.write32(img.program.base + static_cast<std::uint32_t>(i * 4),
                    img.program.words[i]);
  }
  std::cout << lanai::disassemble_range(
      scratch, img.program.base,
      static_cast<std::uint32_t>(img.program.size_bytes()));

  std::printf("\n=== wire trace: one 64 B message over FTGM ===\n");
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  sim::Trace trace;
  trace.enable(sim::TraceCat::kNet, &std::cout);
  trace.enable(sim::TraceCat::kNic, &std::cout);
  trace.enable(sim::TraceCat::kFt, &std::cout);
  cluster.set_trace(&trace);

  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(1));

  std::printf("\n=== trace: hang -> watchdog -> FTD recovery ===\n");
  cluster.node(0).ftd().mark_fault_injected();
  cluster.node(0).mcp().inject_hang("demo");
  // Quiet the packet noise during the long recovery; keep FT events.
  sim::Trace ft_only;
  ft_only.enable(sim::TraceCat::kFt, &std::cout);
  cluster.set_trace(&ft_only);
  cluster.run_for(sim::sec(2));
  std::printf("recovered: %s\n",
              cluster.node(0).mcp().hung() ? "NO" : "yes");
  return 0;
}
