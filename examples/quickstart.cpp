// Quickstart: two nodes on a Myrinet switch exchange a message over FTGM.
//
// Shows the GM programming model end to end: open ports, allocate pinned
// DMA buffers, provide a receive buffer, send with a completion callback,
// and poll the receive queue (here: a receive handler driven by the event
// pump). Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "gm/cluster.hpp"

using namespace myri;

int main() {
  // A 2-node cluster on one 8-port switch, running the fault-tolerant GM.
  gm::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cfg);

  // gm_open() on both nodes (port ids 2 and 4, two of the 8 per node).
  gm::Port& sender = cluster.node(0).open_port(2);
  gm::Port& receiver = cluster.node(1).open_port(4);

  // Port opens travel through the MCP's L_timer control path; give the
  // virtual cluster a moment to process them.
  cluster.run_for(sim::usec(900));

  // Receiver: pinned buffer + receive token, and a handler.
  gm::Buffer rbuf = receiver.alloc_dma_buffer(256);
  receiver.provide_receive_buffer(rbuf);
  receiver.set_receive_handler([&](const gm::RecvInfo& info) {
    auto bytes = receiver.node().memory().at(info.buffer.addr, info.len);
    std::printf("[node1] received %u bytes from node %u port %u: \"%s\"\n",
                info.len, info.src, info.src_port,
                reinterpret_cast<const char*>(bytes.data()));
  });

  // Sender: fill a pinned buffer and send with a callback.
  const char msg[] = "hello, Myrinet!";
  gm::Buffer sbuf = sender.alloc_dma_buffer(256);
  cluster.node(0).memory().write(
      sbuf.addr, std::as_bytes(std::span(msg, sizeof(msg))));
  gm::Status st = sender.post(
      sbuf, sizeof(msg),
      {.dst = 1, .dst_port = 4, .callback = [&](bool ok) {
         std::printf("[node0] send %s (token returned to the process)\n",
                     ok ? "complete" : "FAILED");
       }});
  if (!st) {
    std::printf("[node0] post refused: %s\n", st.message());
    return 1;
  }

  cluster.run_for(sim::msec(2));

  std::printf("\nvirtual time elapsed: %.1f us\n",
              sim::to_usec(cluster.eq().now()));
  std::printf("one-way data path: gm_send -> PCI -> LANai (send_chunk) -> "
              "wire -> LANai -> DMA -> event queue\n");
  return 0;
}
