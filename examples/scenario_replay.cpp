// scenario_replay: re-run a chaos-schedule repro artifact bit-identically.
//
//   scenario_replay repro.json            verify the recorded outcome
//   scenario_replay repro.json --print    also dump the parsed scenario
//   scenario_replay --random SEED         run a random schedule (no file)
//
// A repro artifact is the {seed, topology, schedule, expect} JSON the
// Shrinker writes when a chaos sweep fails. Replay rebuilds the exact
// cluster, applies the schedule at the same virtual times and compares
// the outcome digest against the recorded one: equal digests mean the
// failure reproduced bit for bit. Exit codes:
//   0  outcome matches the artifact's expect block (or, without an
//      expect block / with --random, the run passed)
//   1  outcome diverged from the expectation (or the run failed)
//   2  usage / parse errors
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "faultinject/scenario.hpp"

using namespace myri;

namespace {

void print_report(const fi::Scenario& s, const fi::RunReport& r) {
  std::printf("scenario: %d nodes on %s fabric, %s, %d x %u B per stream, "
              "%zu event(s), seed %llu\n",
              s.nodes, net::to_string(s.fabric),
              s.mode == mcp::McpMode::kGm ? "GM" : "FTGM", s.msgs, s.msg_len,
              s.events.size(), static_cast<unsigned long long>(s.seed));
  for (const fi::ScenarioEvent& ev : s.events) {
    std::printf("  [%12.3f us] %s node=%d cable=%d\n", sim::to_usec(ev.at),
                fi::to_string(ev.kind), ev.node, ev.cable);
  }
  std::printf("result: %s", r.failed() ? "FAILED" : "ok");
  if (!r.oracle_ok) {
    std::printf(" — oracle violation '%s' at %.3f us (%s)",
                r.violation.c_str(), sim::to_usec(r.violation_at),
                r.violation_detail.c_str());
  } else if (!r.delivered) {
    std::printf(" — incomplete delivery");
  }
  std::printf("\ndeliveries=%llu recoveries=%llu remaps=%llu checks=%llu "
              "end=%.3f ms\ndigest: %llu\n",
              static_cast<unsigned long long>(r.deliveries),
              static_cast<unsigned long long>(r.recoveries),
              static_cast<unsigned long long>(r.remaps),
              static_cast<unsigned long long>(r.oracle_checks),
              sim::to_msec(r.end_time),
              static_cast<unsigned long long>(r.digest));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s repro.json [--print] | --random SEED\n", argv[0]);
    return 2;
  }

  if (std::strcmp(argv[1], "--random") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "--random needs a seed\n");
      return 2;
    }
    const fi::Scenario s =
        fi::Scenario::random(std::strtoull(argv[2], nullptr, 0));
    if (argc > 3 && std::strcmp(argv[3], "--print") == 0) {
      std::printf("%s\n", s.to_json().c_str());
    }
    const fi::RunReport r = fi::ScenarioRunner::run(s);
    print_report(s, r);
    return r.failed() ? 1 : 0;
  }

  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  std::string err;
  const auto s = fi::Scenario::from_json(text, &err);
  if (!s) {
    std::fprintf(stderr, "parse error in %s: %s\n", argv[1], err.c_str());
    return 2;
  }
  const bool print = argc > 2 && std::strcmp(argv[2], "--print") == 0;
  if (print) std::printf("%s\n", s->to_json().c_str());

  const fi::RunReport r = fi::ScenarioRunner::run(*s);
  print_report(*s, r);

  const auto expect = fi::parse_repro_expect(text);
  if (!expect) {
    // Plain scenario file: success = the run holds its invariants.
    return r.failed() ? 1 : 0;
  }
  if (r.failed() != expect->failed ||
      r.failure_signature() != expect->signature ||
      r.digest != expect->digest) {
    std::printf("REPLAY DIVERGED: expected %s signature='%s' digest=%llu\n",
                expect->failed ? "failure" : "pass",
                expect->signature.c_str(),
                static_cast<unsigned long long>(expect->digest));
    return 1;
  }
  std::printf("replay matches the recorded outcome (digest %llu)\n",
              static_cast<unsigned long long>(r.digest));
  return 0;
}
