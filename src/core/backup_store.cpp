#include "core/backup_store.hpp"

#include <algorithm>

namespace myri::core {

void BackupStore::remove_send(std::uint32_t token_id) {
  auto it = std::find_if(
      sends_.begin(), sends_.end(),
      [&](const mcp::SendRequest& r) { return r.token_id == token_id; });
  if (it != sends_.end()) sends_.erase(it);
}

void BackupStore::remove_recv(std::uint32_t token_id) {
  auto it = std::find_if(
      recvs_.begin(), recvs_.end(),
      [&](const mcp::RecvToken& t) { return t.token_id == token_id; });
  if (it != recvs_.end()) recvs_.erase(it);
}

}  // namespace myri::core
