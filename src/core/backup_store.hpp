// Host-side backup of the network-interface state a port depends on.
//
// This is the paper's central idea (Section 4.1): instead of periodic
// checkpoints, the process continuously keeps copies of exactly the state
// the LANai holds on its behalf —
//   * every send token handed to the LANai (removed just before the send
//     callback runs),
//   * every receive token handed to the LANai (removed when the matching
//     message is received),
//   * the per-(destination, port)-stream sequence-number generators (the
//     host, not the MCP, numbers messages in FTGM), and
//   * the ACK-number table: the last sequence number received on each
//     incoming stream, kept current from RECV events.
// After a NIC failure, the FAULT_DETECTED handler replays this store into
// the reloaded MCP, which is sufficient for exactly-once delivery across
// the failure.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "mcp/types.hpp"
#include "net/packet.hpp"

namespace myri::core {

class BackupStore {
 public:
  // ---- send-token copies ----
  void add_send(const mcp::SendRequest& req) { sends_.push_back(req); }

  /// Remove the copy for `token_id`; call just before the send callback.
  void remove_send(std::uint32_t token_id);

  /// Outstanding (unacknowledged) sends, in original post order — the
  /// order matters: recovery re-posts them with their original sequence
  /// numbers, which must be contiguous per stream.
  [[nodiscard]] const std::deque<mcp::SendRequest>& sends() const {
    return sends_;
  }

  // ---- receive-token copies ----
  void add_recv(const mcp::RecvToken& tok) { recvs_.push_back(tok); }
  void remove_recv(std::uint32_t token_id);
  [[nodiscard]] const std::deque<mcp::RecvToken>& recvs() const {
    return recvs_;
  }

  // ---- host-generated sequence numbers (per destination stream) ----
  /// Allocate `nfrags` contiguous sequence numbers for a message to `dst`;
  /// returns the first.
  std::uint32_t alloc_seq_block(net::NodeId dst, std::uint32_t nfrags) {
    std::uint32_t& next = seq_gen_[dst];
    const std::uint32_t first = next;
    next += nfrags;
    return first;
  }
  [[nodiscard]] std::uint32_t next_seq(net::NodeId dst) const {
    auto it = seq_gen_.find(dst);
    return it == seq_gen_.end() ? 0 : it->second;
  }

  // ---- ACK-number table (receiver side) ----
  /// Record that the message ending at `seq` on (peer, stream) reached the
  /// process (driven by RECV events, which carry the sequence number).
  void note_recv_seq(net::NodeId peer, std::uint32_t stream,
                     std::uint32_t seq) {
    auto [it, fresh] = ack_table_.try_emplace(mcp::stream_key(peer, stream),
                                              AckEntry{peer, stream, seq});
    if (!fresh && seq + 1 > it->second.last_seq + 1) it->second.last_seq = seq;
  }
  struct AckEntry {
    net::NodeId peer;
    std::uint32_t stream;
    std::uint32_t last_seq;
  };
  [[nodiscard]] const std::map<std::uint64_t, AckEntry>& ack_table() const {
    return ack_table_;
  }

  // ---- sizing (the paper reports ~20 KB extra virtual memory) ----
  [[nodiscard]] std::size_t send_count() const { return sends_.size(); }
  [[nodiscard]] std::size_t recv_count() const { return recvs_.size(); }
  [[nodiscard]] std::size_t approx_bytes() const {
    return sends_.size() * sizeof(mcp::SendRequest) +
           recvs_.size() * sizeof(mcp::RecvToken) +
           ack_table_.size() * sizeof(AckEntry) +
           seq_gen_.size() * sizeof(std::uint64_t);
  }

  void clear() {
    sends_.clear();
    recvs_.clear();
    ack_table_.clear();
    seq_gen_.clear();
  }

 private:
  std::deque<mcp::SendRequest> sends_;
  std::deque<mcp::RecvToken> recvs_;
  std::map<std::uint64_t, AckEntry> ack_table_;
  std::map<net::NodeId, std::uint32_t> seq_gen_;
};

}  // namespace myri::core
