#include "core/driver.hpp"

#include "mcp/sram_layout.hpp"

namespace myri::core {

Driver::Driver(lanai::Nic& nic, mcp::Mcp& mcp, host::InterruptController& irq,
               host::TimingConfig timing)
    : nic_(nic), mcp_(mcp), irq_(irq), timing_(timing) {}

void Driver::install(mcp::HostIface* host_iface) {
  host_iface_ = host_iface;
  irq_.set_handler(host::IrqLine::kFatal, [this] {
    ++fatals_;
    // Acknowledge the level-triggered source (write-1-to-clear IT1) so
    // unrelated ISR activity does not re-raise FATAL while the FTD works.
    nic_.clear_isr_bits(lanai::kIsrIt1);
    if (wake_ftd_) wake_ftd_();
  });
  mcp_.set_host(host_iface_);
  mcp_.load();
  mcp_.host_register_page_hash();
}

std::uint32_t Driver::map_route_update(const net::RouteUpdate& update,
                                       net::NodeId from) {
  mapper_node_ = from;
  if (update.epoch < installed_epoch_) {
    return installed_epoch_;  // late retransmit from a superseded remap
  }
  if (update.epoch > highest_seen_epoch_) highest_seen_epoch_ = update.epoch;
  if (update.nchunks == 0) {
    // Epoch probe: no entries. If it named a newer epoch the node is now
    // suspect (routes_suspect()) until the re-push completes.
    return installed_epoch_;
  }
  // Data chunk: mirror the entries (merged view — routes to nodes the
  // latest remap could not see survive, matching what the card holds).
  for (const auto& e : update.entries) routes_[e.dst] = e.route;
  if (update.epoch > installed_epoch_) {
    if (chunks_epoch_ != update.epoch) {
      chunks_epoch_ = update.epoch;
      chunks_got_.assign(update.nchunks, false);
    }
    if (update.chunk < chunks_got_.size()) chunks_got_[update.chunk] = true;
    bool complete = true;
    for (const bool got : chunks_got_) complete = complete && got;
    if (complete) installed_epoch_ = update.epoch;
  }
  return installed_epoch_;
}

void Driver::install_route(net::NodeId dst, std::vector<std::uint8_t> route) {
  routes_[dst] = route;
  nic_.set_route(dst, std::move(route));
}

void Driver::record_local_epoch(std::uint32_t epoch) {
  if (epoch > installed_epoch_) installed_epoch_ = epoch;
  if (epoch > highest_seen_epoch_) highest_seen_epoch_ = epoch;
}

void Driver::write_magic(std::uint32_t value) {
  nic_.sram().write32(mcp::SramLayout::kMagicAddr, value);
}

std::uint32_t Driver::read_magic() const {
  return const_cast<lanai::Nic&>(nic_).sram().read32(
      mcp::SramLayout::kMagicAddr);
}

void Driver::disable_interrupts_and_reset() {
  // Unmap IO + card reset: registers, timers, DMA engine, RX queue and the
  // on-card route table return to power-on state.
  nic_.reset();
}

void Driver::clear_sram() { nic_.sram().clear(); }

void Driver::reload_mcp() {
  mcp_.set_host(host_iface_);
  mcp_.load();
}

void Driver::restart_dma_and_interrupts() {
  // DMA engine restart is implicit in Nic::reset(); nothing extra to do in
  // the model beyond re-enabling the IMR path, which mcp_.load() configured.
}

void Driver::restore_routes() {
  for (const auto& [dst, route] : routes_) nic_.set_route(dst, route);
  // The mirror restores *an epoch*, not necessarily the current one: tell
  // the MCP which, and let it announce to the mapper, which re-pushes if
  // a remap happened while this card was down. Pre-mapper direct installs
  // (epoch 0) have no mapper to ask and skip the announce.
  mcp_.host_restore_routes(mapper_node_, installed_epoch_);
}

}  // namespace myri::core
