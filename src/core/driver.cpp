#include "core/driver.hpp"

#include "mcp/sram_layout.hpp"

namespace myri::core {

Driver::Driver(lanai::Nic& nic, mcp::Mcp& mcp, host::InterruptController& irq,
               host::TimingConfig timing)
    : nic_(nic), mcp_(mcp), irq_(irq), timing_(timing) {}

void Driver::install(mcp::HostIface* host_iface) {
  host_iface_ = host_iface;
  irq_.set_handler(host::IrqLine::kFatal, [this] {
    ++fatals_;
    // Acknowledge the level-triggered source (write-1-to-clear IT1) so
    // unrelated ISR activity does not re-raise FATAL while the FTD works.
    nic_.clear_isr_bits(lanai::kIsrIt1);
    if (wake_ftd_) wake_ftd_();
  });
  mcp_.set_host(host_iface_);
  mcp_.load();
  mcp_.host_register_page_hash();
}

void Driver::record_routes(const std::vector<net::RouteEntry>& entries) {
  for (const auto& e : entries) routes_[e.dst] = e.route;
}

void Driver::install_route(net::NodeId dst, std::vector<std::uint8_t> route) {
  routes_[dst] = route;
  nic_.set_route(dst, std::move(route));
}

void Driver::write_magic(std::uint32_t value) {
  nic_.sram().write32(mcp::SramLayout::kMagicAddr, value);
}

std::uint32_t Driver::read_magic() const {
  return const_cast<lanai::Nic&>(nic_).sram().read32(
      mcp::SramLayout::kMagicAddr);
}

void Driver::disable_interrupts_and_reset() {
  // Unmap IO + card reset: registers, timers, DMA engine, RX queue and the
  // on-card route table return to power-on state.
  nic_.reset();
}

void Driver::clear_sram() { nic_.sram().clear(); }

void Driver::reload_mcp() {
  mcp_.set_host(host_iface_);
  mcp_.load();
}

void Driver::restart_dma_and_interrupts() {
  // DMA engine restart is implicit in Nic::reset(); nothing extra to do in
  // the model beyond re-enabling the IMR path, which mcp_.load() configured.
}

void Driver::restore_routes() {
  for (const auto& [dst, route] : routes_) nic_.set_route(dst, route);
}

}  // namespace myri::core
