// GM host device driver.
//
// Kernel-side glue between the host and the card (paper Section 2): loads
// the MCP, opens/closes ports, registers the page hash table, keeps the
// host-side mirror of the routing tables, and fields the FATAL interrupt
// that the watchdog raises, waking the fault-tolerance daemon. The actual
// recovery never runs in interrupt context (the paper's point about
// sleep()/malloc()): the handler only wakes the FTD.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/timing.hpp"
#include "lanai/nic.hpp"
#include "mcp/mcp.hpp"
#include "net/map_info.hpp"

namespace myri::core {

class Driver {
 public:
  Driver(lanai::Nic& nic, mcp::Mcp& mcp, host::InterruptController& irq,
         host::TimingConfig timing);

  /// Initial driver load: program node identity, load the MCP, register
  /// the page hash table, hook the FATAL interrupt line.
  void install(mcp::HostIface* host_iface);

  /// Handler invoked (in "process context") when the FATAL interrupt
  /// fires; the FTD registers itself here.
  void set_fatal_handler(std::function<void()> wake) {
    wake_ftd_ = std::move(wake);
  }

  // ---- host-side routing-table mirror ----
  void record_routes(const std::vector<net::RouteEntry>& entries);
  /// Install a route on the card and mirror it (tests/benches use this to
  /// configure small fabrics without running the full mapper).
  void install_route(net::NodeId dst, std::vector<std::uint8_t> route);
  [[nodiscard]] const std::unordered_map<net::NodeId,
                                         std::vector<std::uint8_t>>&
  route_mirror() const {
    return routes_;
  }

  // ---- port management (forwarded to the MCP control path) ----
  void open_port(std::uint8_t port) { mcp_.host_open_port(port); }
  void close_port(std::uint8_t port) { mcp_.host_close_port(port); }

  // ---- FTD-facing card operations (state changes; the FTD accounts the
  //      time each step takes using RecoveryTiming) ----
  void write_magic(std::uint32_t value);
  [[nodiscard]] std::uint32_t read_magic() const;
  void disable_interrupts_and_reset();
  void clear_sram();
  void reload_mcp();
  void restart_dma_and_interrupts();
  void register_page_hash() { mcp_.host_register_page_hash(); }
  void restore_routes();

  [[nodiscard]] mcp::Mcp& mcp() noexcept { return mcp_; }
  [[nodiscard]] lanai::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] std::uint64_t fatal_interrupts() const noexcept {
    return fatals_;
  }

 private:
  lanai::Nic& nic_;
  mcp::Mcp& mcp_;
  host::InterruptController& irq_;
  host::TimingConfig timing_;
  mcp::HostIface* host_iface_ = nullptr;
  std::function<void()> wake_ftd_;
  std::unordered_map<net::NodeId, std::vector<std::uint8_t>> routes_;
  std::uint64_t fatals_ = 0;
};

}  // namespace myri::core
