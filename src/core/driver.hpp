// GM host device driver.
//
// Kernel-side glue between the host and the card (paper Section 2): loads
// the MCP, opens/closes ports, registers the page hash table, keeps the
// host-side mirror of the routing tables, and fields the FATAL interrupt
// that the watchdog raises, waking the fault-tolerance daemon. The actual
// recovery never runs in interrupt context (the paper's point about
// sleep()/malloc()): the handler only wakes the FTD.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/timing.hpp"
#include "lanai/nic.hpp"
#include "mcp/mcp.hpp"
#include "net/map_info.hpp"

namespace myri::core {

class Driver {
 public:
  Driver(lanai::Nic& nic, mcp::Mcp& mcp, host::InterruptController& irq,
         host::TimingConfig timing);

  /// Initial driver load: program node identity, load the MCP, register
  /// the page hash table, hook the FATAL interrupt line.
  void install(mcp::HostIface* host_iface);

  /// Handler invoked (in "process context") when the FATAL interrupt
  /// fires; the FTD registers itself here.
  void set_fatal_handler(std::function<void()> wake) {
    wake_ftd_ = std::move(wake);
  }

  // ---- host-side routing-table mirror (epoch-versioned view) ----
  /// Mapper route push or epoch probe arrived (via the MCP). Mirrors the
  /// entries, tracks per-epoch chunk completeness, and returns the last
  /// epoch held completely — the MAP_ROUTE_ACK content.
  std::uint32_t map_route_update(const net::RouteUpdate& update,
                                 net::NodeId from);
  /// Install a route on the card and mirror it (tests/benches use this to
  /// configure small fabrics without running the full mapper). Direct
  /// installs live in the pre-mapper world: they never touch the epoch.
  void install_route(net::NodeId dst, std::vector<std::uint8_t> route);
  /// Mapper-host shortcut: the mapper programs its own card directly and
  /// stamps the mirror as complete at `epoch`.
  void record_local_epoch(std::uint32_t epoch);
  [[nodiscard]] const std::unordered_map<net::NodeId,
                                         std::vector<std::uint8_t>>&
  route_mirror() const {
    return routes_;
  }
  /// Last route epoch this node holds completely (0 = pre-mapper routes).
  [[nodiscard]] std::uint32_t route_epoch() const noexcept {
    return installed_epoch_;
  }
  /// True while the node knows a newer epoch exists (a probe or chunk for
  /// epoch > route_epoch() arrived) but has not finished installing it.
  /// The GM library refuses sends with kRecovering while this holds, so
  /// traffic is not launched onto routes a remap already declared dead.
  [[nodiscard]] bool routes_suspect() const noexcept {
    return highest_seen_epoch_ > installed_epoch_;
  }
  /// The node the mapper runs on, learnt from route pushes (kInvalidNode
  /// until the first mapper contact).
  [[nodiscard]] net::NodeId mapper_node() const noexcept {
    return mapper_node_;
  }

  // ---- port management (forwarded to the MCP control path) ----
  void open_port(std::uint8_t port) { mcp_.host_open_port(port); }
  void close_port(std::uint8_t port) { mcp_.host_close_port(port); }

  // ---- membership drain gate ----
  /// Mark a destination as draining: the GM library refuses *new* streams
  /// to it with kDraining while established ones finish (gm::Cluster
  /// broadcasts this on drain_node; it stays set after retirement).
  void set_dst_draining(net::NodeId dst, bool draining) {
    if (draining) {
      draining_dsts_.insert(dst);
    } else {
      draining_dsts_.erase(dst);
    }
  }
  [[nodiscard]] bool dst_draining(net::NodeId dst) const {
    return draining_dsts_.count(dst) != 0;
  }

  // ---- FTD-facing card operations (state changes; the FTD accounts the
  //      time each step takes using RecoveryTiming) ----
  void write_magic(std::uint32_t value);
  [[nodiscard]] std::uint32_t read_magic() const;
  void disable_interrupts_and_reset();
  void clear_sram();
  void reload_mcp();
  void restart_dma_and_interrupts();
  void register_page_hash() { mcp_.host_register_page_hash(); }
  void restore_routes();

  [[nodiscard]] mcp::Mcp& mcp() noexcept { return mcp_; }
  [[nodiscard]] lanai::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] std::uint64_t fatal_interrupts() const noexcept {
    return fatals_;
  }

 private:
  lanai::Nic& nic_;
  mcp::Mcp& mcp_;
  host::InterruptController& irq_;
  host::TimingConfig timing_;
  mcp::HostIface* host_iface_ = nullptr;
  std::function<void()> wake_ftd_;
  std::unordered_map<net::NodeId, std::vector<std::uint8_t>> routes_;
  std::unordered_set<net::NodeId> draining_dsts_;
  // Epoch-versioned view of the mapper's table (the single source of
  // truth lives in mapper::Mapper; this is a per-node shadow of it).
  std::uint32_t installed_epoch_ = 0;     // last epoch held completely
  std::uint32_t highest_seen_epoch_ = 0;  // newest epoch heard of
  net::NodeId mapper_node_ = net::kInvalidNode;
  std::vector<bool> chunks_got_;          // per-chunk arrival, current push
  std::uint32_t chunks_epoch_ = 0;        // epoch chunks_got_ tracks
  std::uint64_t fatals_ = 0;
};

}  // namespace myri::core
