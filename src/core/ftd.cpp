#include "core/ftd.hpp"

namespace myri::core {

Ftd::Ftd(sim::EventQueue& eq, Driver& driver, Config cfg)
    : eq_(eq), driver_(driver), cfg_(cfg) {}

void Ftd::start() {
  driver_.set_fatal_handler([this] { on_fatal(); });
}

void Ftd::bind_metrics(metrics::Registry& reg, const std::string& prefix) {
  phase_timer_ = metrics::PhaseTimer(reg, prefix + ".recovery");
  m_wakeups_ = &reg.counter(prefix + ".wakeups");
  m_false_alarms_ = &reg.counter(prefix + ".false_alarms");
  m_recoveries_ = &reg.counter(prefix + ".recoveries");
}

void Ftd::step(sim::Time cost, std::function<void()> fn) {
  eq_.schedule_after(cost, std::move(fn));
}

void Ftd::on_fatal() {
  if (busy_) return;  // already mid-recovery; level interrupt coalesces
  busy_ = true;
  phases_.interrupt_raised = eq_.now();
  step(cfg_.wake_latency, [this] {
    ++stats_.wakeups;
    metrics::bump(m_wakeups_);
    phases_.woken = eq_.now();
    // Detection runs from the injection stamp when an experiment set one
    // (the Table 3 definition); otherwise from the FATAL interrupt.
    phase_timer_.start(phases_.fault_injected != 0 ? phases_.fault_injected
                                                   : phases_.interrupt_raised);
    phase_timer_.mark("detect", eq_.now());
    if (trace_ && trace_->on(sim::TraceCat::kFt)) {
      trace_->log(sim::TraceCat::kFt, eq_.now(), "ftd", "woken by FATAL irq");
    }
    // Confirm the hang: write the magic word; a live MCP clears it in
    // L_timer(). Wait comfortably longer than the maximum L_timer gap.
    driver_.write_magic(cfg_.magic);
    step(cfg_.timing.magic_probe_wait, [this] {
      phases_.confirmed = eq_.now();
      phase_timer_.mark("confirm", eq_.now());
      if (driver_.read_magic() != cfg_.magic) {
        // The MCP cleared it: interface alive after all.
        ++stats_.false_alarms;
        metrics::bump(m_false_alarms_);
        busy_ = false;
        if (trace_ && trace_->on(sim::TraceCat::kFt)) {
          trace_->log(sim::TraceCat::kFt, eq_.now(), "ftd",
                      "false alarm: magic word cleared");
        }
        return;
      }
      run_recovery();
    });
  });
}

void Ftd::run_recovery() {
  if (trace_ && trace_->on(sim::TraceCat::kFt)) {
    trace_->log(sim::TraceCat::kFt, eq_.now(), "ftd",
                "hang confirmed; starting recovery");
  }
  driver_.disable_interrupts_and_reset();
  step(cfg_.timing.card_reset, [this] {
    phases_.reset_done = eq_.now();
    driver_.clear_sram();
    step(cfg_.timing.sram_clear, [this] {
      phases_.sram_cleared = eq_.now();
      phase_timer_.mark("reset", eq_.now());
      driver_.reload_mcp();
      step(cfg_.timing.mcp_reload, [this] {
        phases_.mcp_reloaded = eq_.now();
        driver_.restart_dma_and_interrupts();
        step(cfg_.timing.dma_restart, [this] {
          phases_.dma_restarted = eq_.now();
          phase_timer_.mark("reload", eq_.now());
          driver_.register_page_hash();
          step(cfg_.timing.page_hash_restore, [this] {
            phases_.page_hash_done = eq_.now();
            driver_.restore_routes();
            step(cfg_.timing.route_restore, [this] {
              phases_.routes_done = eq_.now();
              const std::vector<std::uint8_t> ports =
                  open_ports_ ? open_ports_() : std::vector<std::uint8_t>{};
              const sim::Time per = cfg_.timing.post_fault_event;
              sim::Time at = 0;
              for (std::uint8_t p : ports) {
                at += per;
                step(at, [this, p] {
                  if (post_fault_) post_fault_(p);
                });
              }
              step(at, [this] {
                phases_.events_posted = eq_.now();
                // Page hash + routing tables + fault-event posting: the
                // Table 3 "table restore" row.
                phase_timer_.mark("restore", eq_.now());
                phase_timer_.finish(eq_.now());
                ++stats_.recoveries;
                metrics::bump(m_recoveries_);
                busy_ = false;  // rewind and stand guard for the next fault
                if (trace_ && trace_->on(sim::TraceCat::kFt)) {
                  trace_->log(sim::TraceCat::kFt, eq_.now(), "ftd",
                              "FTD recovery phase complete");
                }
                if (on_recovered_) on_recovered_();
              });
            });
          });
        });
      });
    });
  });
}

}  // namespace myri::core
