// The Fault Tolerance Daemon (paper Section 4.3).
//
// A host daemon that sleeps until the driver wakes it on a FATAL (watchdog)
// interrupt. It then confirms the hang with a magic-word probe — it writes
// a magic value into LANai SRAM that a live MCP's L_timer() would clear —
// and, if confirmed, walks the recovery sequence: card reset, SRAM clear,
// MCP reload, DMA/interrupt restart, page-hash and routing-table
// restoration, and finally a FAULT_DETECTED event into every open port's
// receive queue. Each phase's duration comes from RecoveryTiming, which is
// calibrated to the paper's Table 3 (~765 ms total, ~500 ms of it the MCP
// reload).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/driver.hpp"
#include "host/timing.hpp"
#include "metrics/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace myri::core {

class Ftd {
 public:
  struct Config {
    host::RecoveryTiming timing;
    std::uint32_t magic = 0xfeedface;
    /// Daemon scheduling latency between the interrupt handler's wakeup
    /// and the FTD actually running.
    sim::Time wake_latency = sim::usec(120);
  };

  /// Virtual-time stamps of the phases of the most recent recovery
  /// (reproduces the paper's Figure 9 timeline).
  struct Phases {
    sim::Time fault_injected = 0;   // set externally by experiments
    sim::Time interrupt_raised = 0; // FATAL reached the driver
    sim::Time woken = 0;            // FTD started running
    sim::Time confirmed = 0;        // magic-word probe concluded
    sim::Time reset_done = 0;
    sim::Time sram_cleared = 0;
    sim::Time mcp_reloaded = 0;
    sim::Time dma_restarted = 0;
    sim::Time page_hash_done = 0;
    sim::Time routes_done = 0;
    sim::Time events_posted = 0;    // FTD phase complete
  };

  struct Stats {
    std::uint64_t wakeups = 0;
    std::uint64_t false_alarms = 0;
    std::uint64_t recoveries = 0;
  };

  Ftd(sim::EventQueue& eq, Driver& driver, Config cfg);

  /// Start the daemon: hooks the driver's FATAL path and waits.
  void start();

  /// Which ports are open from the host's point of view (the FTD posts
  /// FAULT_DETECTED into each of their receive queues).
  void set_open_ports_provider(std::function<std::vector<std::uint8_t>()> f) {
    open_ports_ = std::move(f);
  }
  /// Sink that appends a FAULT_DETECTED event to a port's receive queue.
  void set_fault_event_sink(std::function<void(std::uint8_t)> f) {
    post_fault_ = std::move(f);
  }
  /// Called when the FTD phase of a recovery finishes.
  void set_on_recovered(std::function<void()> f) {
    on_recovered_ = std::move(f);
  }
  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Publish recovery accounting under "<prefix>.": wakeup/false-alarm/
  /// recovery counters plus the Table 3 per-phase duration histograms
  /// "<prefix>.recovery.{detect,confirm,reset,reload,restore}_ns" (the
  /// sixth Table 3 phase, port replay, is recorded by gm::Port).
  void bind_metrics(metrics::Registry& reg, const std::string& prefix);

  /// Experiments stamp the injection time so Phases yields Figure 9.
  void mark_fault_injected() { phases_.fault_injected = eq_.now(); }

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] const Phases& phases() const noexcept { return phases_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_fatal();
  void run_recovery();
  void step(sim::Time cost, std::function<void()> fn);

  sim::EventQueue& eq_;
  Driver& driver_;
  Config cfg_;
  std::function<std::vector<std::uint8_t>()> open_ports_;
  std::function<void(std::uint8_t)> post_fault_;
  std::function<void()> on_recovered_;
  sim::Trace* trace_ = nullptr;
  bool busy_ = false;
  Phases phases_;
  Stats stats_;

  metrics::PhaseTimer phase_timer_;
  metrics::Counter* m_wakeups_ = nullptr;
  metrics::Counter* m_false_alarms_ = nullptr;
  metrics::Counter* m_recoveries_ = nullptr;
};

}  // namespace myri::core
