#include "faultinject/campaign.hpp"

#include "faultinject/workload.hpp"
#include "mcp/sram_layout.hpp"
#include "sim/rng.hpp"

namespace myri::fi {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kLocalHang: return "Local Interface Hung";
    case Outcome::kCorrupted: return "Messages Corrupted";
    case Outcome::kRemoteHang: return "Remote Interface Hung";
    case Outcome::kMcpRestart: return "MCP Restart";
    case Outcome::kHostCrash: return "Host Computer Crash";
    case Outcome::kOther: return "Other Errors";
    case Outcome::kNoImpact: return "No Impact";
  }
  return "?";
}

RunRecord Campaign::run_one(std::uint64_t run_seed) {
  sim::Rng rng(run_seed);
  const bool ftgm = cfg_.mode == mcp::McpMode::kFtgm;

  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = cfg_.mode;
  cc.timing = cfg_.timing;
  cc.host_mem_bytes = 4u << 20;
  cc.seed = run_seed ^ 0x5eedu;
  gm::Cluster cluster(cc);

  gm::Port& tx = cluster.node(0).open_port(2);
  gm::Port& rx = cluster.node(1).open_port(2);

  StreamWorkload::Config wc;
  wc.total_msgs = cfg_.msgs;
  wc.msg_len = cfg_.msg_len;
  StreamWorkload wl(tx, rx, wc);

  // Let the L_timer control path open the ports, then start traffic.
  cluster.run_for(sim::usec(900));
  wl.start();

  // Pick the flip inside send_chunk and a moment while traffic is active.
  auto& victim = cluster.node(0);
  RunRecord rec;
  if (cfg_.target == InjectTarget::kSendChunkCode) {
    rec.flip_addr = victim.mcp().code_base() +
                    static_cast<std::uint32_t>(
                        rng.below(victim.mcp().code_size()));
  } else {
    // Data segment: the send descriptor, TX descriptor and the payload
    // staging slots — everything the send path reads that is not code.
    constexpr std::uint32_t lo = mcp::SramLayout::kSendDescAddr;
    constexpr std::uint32_t hi =
        mcp::SramLayout::kSendStagingBase +
        mcp::SramLayout::kNumSendSlots * mcp::SramLayout::kStagingSlotSize;
    rec.flip_addr = lo + static_cast<std::uint32_t>(rng.below(hi - lo));
  }
  rec.flip_bit = static_cast<unsigned>(rng.below(8));
  const std::uint32_t word_addr = rec.flip_addr & ~3u;
  rec.orig_word = victim.nic().sram().read32(word_addr);
  rec.word_bit = (rec.flip_addr & 3u) * 8u + rec.flip_bit;
  const sim::Time inject_in = sim::usec(10 + rng.below(150));
  cluster.eq().schedule_after(inject_in, [&] {
    victim.nic().sram().flip_bit(rec.flip_addr, rec.flip_bit);
    if (victim.has_ftd()) victim.ftd().mark_fault_injected();
  });

  // Observe: chunked so completed runs exit early.
  const sim::Time window = ftgm ? cfg_.observe_ftgm : cfg_.observe_gm;
  const sim::Time chunk = ftgm ? sim::msec(50) : sim::msec(1);
  const sim::Time deadline = cluster.eq().now() + window;
  while (cluster.eq().now() < deadline) {
    cluster.run_for(chunk);
    if (wl.complete() && tx.send_tokens_free() == 16 &&
        !victim.mcp().hung()) {
      break;
    }
  }

  // ---- classify (paper Table 1 categories) ----
  const auto& s0 = victim.mcp().stats();
  const auto& s1 = cluster.node(1).mcp().stats();
  rec.hang = s0.hangs > 0;
  if (victim.crashed() || cluster.node(1).crashed()) {
    rec.outcome = Outcome::kHostCrash;
  } else if (s1.hangs > 0) {
    rec.outcome = Outcome::kRemoteHang;
  } else if (rec.hang) {
    rec.outcome = Outcome::kLocalHang;
  } else if (s0.self_restarts > 0) {
    rec.outcome = Outcome::kMcpRestart;
  } else if (wl.corrupted() > 0 || wl.duplicates() > 0 ||
             s1.crc_drops > 0 || s1.foreign_drops > 0 ||
             s1.ooo_drops > 0 || s1.dup_drops > 0 ||
             s0.unmapped_dma_refusals > 0 ||
             victim.nic().stats().tx_errors > 0 ||
             cluster.topo().get_switch(0).stats().dead_routed > 0) {
    // Damage visible on the wire: garbled payloads/headers the receiver's
    // CRC or routing rejected, or malformed TX descriptors. The sender's
    // Go-Back-N may still mask it end-to-end, but the messages were
    // corrupted, which is what Table 1 counts.
    rec.outcome = Outcome::kCorrupted;
  } else if (!wl.complete()) {
    rec.outcome = Outcome::kOther;
  } else {
    rec.outcome = Outcome::kNoImpact;
  }

  if (ftgm) {
    rec.detected = victim.driver().fatal_interrupts() > 0;
    rec.recovered = rec.hang && wl.complete() && wl.duplicates() == 0 &&
                    !victim.mcp().hung();
  }
  return rec;
}

CampaignSummary Campaign::run(const std::function<void(int)>& progress) {
  CampaignSummary sum;
  sim::Rng seeder(cfg_.seed);
  for (int i = 0; i < cfg_.runs; ++i) {
    const RunRecord rec = run_one(seeder.next_u64());
    ++sum.runs;
    ++sum.counts[static_cast<int>(rec.outcome)];
    if (rec.hang) {
      ++sum.hangs;
      if (rec.detected) ++sum.hangs_detected;
      if (rec.recovered) ++sum.hangs_recovered;
    }
    if (progress) progress(i);
  }
  return sum;
}

}  // namespace myri::fi
