// Fault-injection campaign (paper Section 2, Table 1; Section 5.2).
//
// Reproduces the SWIFI methodology: for each run, a fresh two-node cluster
// carries verified traffic while one random bit of the send_chunk code
// segment in the sender's LANai SRAM is flipped. The run's outcome is then
// classified into the paper's failure categories. In FTGM mode the campaign
// additionally records whether the watchdog detected the hang and whether
// recovery restored exactly-once delivery (Section 5.2's effectiveness
// result: all hangs detected, 281 of 286 recovered).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "gm/cluster.hpp"
#include "mcp/types.hpp"

namespace myri::fi {

enum class Outcome : int {
  kLocalHang = 0,
  kCorrupted = 1,
  kRemoteHang = 2,
  kMcpRestart = 3,
  kHostCrash = 4,
  kOther = 5,
  kNoImpact = 6,
};
inline constexpr int kNumOutcomes = 7;

const char* to_string(Outcome o);

/// What SRAM region the campaign flips bits in. The paper injects into the
/// send_chunk code section; it notes "these results could be different if
/// fault injection is carried out on some other section" — the data-segment
/// target explores that.
enum class InjectTarget {
  kSendChunkCode,  // instruction encodings (the paper's experiment)
  kDataSegment,    // descriptors + staging buffers
};

struct CampaignConfig {
  int runs = 1000;
  std::uint64_t seed = 2003;
  mcp::McpMode mode = mcp::McpMode::kGm;
  InjectTarget target = InjectTarget::kSendChunkCode;
  int msgs = 30;
  std::uint32_t msg_len = 2048;
  host::TimingConfig timing{};
  /// Observation window after injection before classification.
  sim::Time observe_gm = sim::msec(10);
  sim::Time observe_ftgm = sim::sec(5);
};

struct RunRecord {
  Outcome outcome = Outcome::kNoImpact;
  bool hang = false;
  bool detected = false;    // FTGM: watchdog FATAL interrupt fired
  bool recovered = false;   // FTGM: exactly-once delivery restored
  std::uint32_t flip_addr = 0;
  unsigned flip_bit = 0;       // bit within the byte at flip_addr
  std::uint32_t orig_word = 0; // instruction word before the flip
  unsigned word_bit = 0;       // bit index within that word (0..31)
};

struct CampaignSummary {
  int runs = 0;
  std::array<int, kNumOutcomes> counts{};
  int hangs = 0;
  int hangs_detected = 0;
  int hangs_recovered = 0;

  [[nodiscard]] double pct(Outcome o) const {
    return runs == 0 ? 0.0
                     : 100.0 * counts[static_cast<int>(o)] / runs;
  }
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig cfg) : cfg_(cfg) {}

  /// Run one injection experiment with its own seed.
  RunRecord run_one(std::uint64_t run_seed);

  /// Full campaign; `progress(i)` fires after each run.
  CampaignSummary run(const std::function<void(int)>& progress = nullptr);

 private:
  CampaignConfig cfg_;
};

}  // namespace myri::fi
