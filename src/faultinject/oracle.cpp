#include "faultinject/oracle.hpp"

#include <string>

#include "faultinject/workload.hpp"
#include "mapper/failover.hpp"

namespace myri::fi {

Oracle::Oracle(gm::Cluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(cfg) {}

Oracle::~Oracle() { detach(); }

void Oracle::watch(StreamWorkload& wl, std::uint32_t send_tokens,
                   std::uint32_t recv_tokens) {
  streams_.push_back(Stream{&wl, send_tokens, recv_tokens, 0});
}

void Oracle::attach() {
  attached_ = true;
  cluster_.eq().set_after_event([this](sim::Time now) {
    if (!ok()) return;
    if (!checked_once_ || now - last_check_ >= cfg_.check_gap) check_now();
  });
}

void Oracle::detach() {
  if (!attached_) return;
  attached_ = false;
  cluster_.eq().set_after_event(nullptr);
}

void Oracle::violate(const std::string& invariant,
                     const std::string& detail) {
  // Keep the first violation only: everything after it is cascade noise
  // (a duplicate delivery also desynchronizes the FIFO cursor, ...).
  if (!violations_.empty()) return;
  violations_.push_back(Violation{cluster_.eq().now(), invariant, detail});
}

void Oracle::on_delivery(std::size_t stream, int msg) {
  if (!ok() || stream >= streams_.size()) return;
  Stream& s = streams_[stream];
  const std::string where =
      "stream " + std::to_string(stream) + ": ";
  if (msg < 0) {
    violate("stream-corruption", where + "delivered payload failed verify");
  } else if (msg < s.next_msg) {
    violate("stream-exactly-once",
            where + "msg " + std::to_string(msg) + " delivered again (next=" +
                std::to_string(s.next_msg) + ")");
  } else if (msg > s.next_msg) {
    violate("stream-fifo", where + "expected msg " +
                               std::to_string(s.next_msg) + ", got " +
                               std::to_string(msg));
  } else {
    ++s.next_msg;
  }
}

void Oracle::add_drift_probe(std::string name,
                             std::function<std::uint64_t()> sample,
                             std::function<std::uint64_t()> bound) {
  drift_probes_.push_back(
      DriftProbe{std::move(name), std::move(sample), std::move(bound)});
}

void Oracle::check_drift() {
  if (!ok()) return;
  ++drift_checks_;
  for (const DriftProbe& p : drift_probes_) {
    if (!ok()) break;
    const std::uint64_t v = p.sample();
    const std::uint64_t b = p.bound();
    if (v > b) {
      violate("state-drift", p.name + ": " + std::to_string(v) +
                                 " past bound " + std::to_string(b));
    }
  }
}

void Oracle::check_now() {
  if (!ok()) return;
  ++checks_;
  checked_once_ = true;
  last_check_ = cluster_.eq().now();
  check_streams();
  check_tokens();
  check_watchdog();
  check_metrics();
}

void Oracle::check_streams() {
  for (std::size_t i = 0; i < streams_.size() && ok(); ++i) {
    const StreamWorkload& wl = *streams_[i].wl;
    if (wl.duplicates() > 0) {
      violate("stream-exactly-once", "stream " + std::to_string(i) + ": " +
                                         std::to_string(wl.duplicates()) +
                                         " duplicate(s)");
    } else if (wl.corrupted() > 0) {
      violate("stream-corruption", "stream " + std::to_string(i) + ": " +
                                       std::to_string(wl.corrupted()) +
                                       " corrupted");
    }
  }
}

void Oracle::check_tokens() {
  for (std::size_t i = 0; i < streams_.size() && ok(); ++i) {
    Stream& s = streams_[i];
    const std::uint32_t free = s.wl->sender().send_tokens_free();
    if (free > s.send_tokens) {
      violate("token-conservation",
              "stream " + std::to_string(i) + ": sender has " +
                  std::to_string(free) + " send tokens free, allotment is " +
                  std::to_string(s.send_tokens));
    }
    const std::size_t held =
        s.wl->receiver().node().mcp().recv_tokens_held(s.wl->receiver().id());
    if (held > s.recv_tokens) {
      violate("token-conservation",
              "stream " + std::to_string(i) + ": LANai holds " +
                  std::to_string(held) + " recv tokens, allotment is " +
                  std::to_string(s.recv_tokens));
    }
  }
}

void Oracle::check_watchdog() {
  for (int i = 0; i < cluster_.size() && ok(); ++i) {
    gm::Node& n = cluster_.node(i);
    if (!n.has_ftd()) continue;
    const auto& st = n.ftd().stats();
    if (st.false_alarms != 0) {
      violate("watchdog-soundness",
              n.name() + ": " + std::to_string(st.false_alarms) +
                  " false alarm(s)");
    } else if (st.recoveries > st.wakeups) {
      violate("watchdog-soundness",
              n.name() + ": " + std::to_string(st.recoveries) +
                  " recoveries from " + std::to_string(st.wakeups) +
                  " wakeups");
    }
  }
}

void Oracle::check_metrics() {
  // The Registry and the component structs account independently; they
  // must never disagree (PR 1's accounting bugs were exactly this).
  for (int i = 0; i < cluster_.size() && ok(); ++i) {
    gm::Node& n = cluster_.node(i);
    if (!n.has_ftd()) continue;
    const auto* rec =
        cluster_.metrics().find_counter(n.name() + ".ftd.recoveries");
    const auto* wake =
        cluster_.metrics().find_counter(n.name() + ".ftd.wakeups");
    if (rec != nullptr && rec->value() != n.ftd().stats().recoveries) {
      violate("metrics-consistency",
              n.name() + ".ftd.recoveries=" + std::to_string(rec->value()) +
                  " but Ftd::Stats says " +
                  std::to_string(n.ftd().stats().recoveries));
    } else if (wake != nullptr &&
               wake->value() != n.ftd().stats().wakeups) {
      violate("metrics-consistency",
              n.name() + ".ftd.wakeups=" + std::to_string(wake->value()) +
                  " but Ftd::Stats says " +
                  std::to_string(n.ftd().stats().wakeups));
    }
  }
  for (net::Link* l : cluster_.topo().links()) {
    if (!ok()) break;
    const auto& st = l->stats();
    if (st.delivered_bytes > st.offered_bytes || st.delivered > st.sent) {
      violate("metrics-consistency",
              "link " + l->name() + ": delivered exceeds offered (" +
                  std::to_string(st.delivered_bytes) + " > " +
                  std::to_string(st.offered_bytes) + " bytes)");
    }
  }
}

void Oracle::final_check() {
  if (!ok()) return;
  check_now();
  if (!ok()) return;
  check_membership();
  if (!ok()) return;
  // Quiescence: only meaningful once every stream finished and the
  // cluster drained — mid-flight tokens are legitimately outstanding.
  // Abandoned streams (endpoint replaced mid-run) are excused: their
  // tails are scheduled losses, their tokens stranded on the dead card.
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Stream& s = streams_[i];
    if (!s.wl->complete() && !s.wl->abandoned()) return;
  }
  for (std::size_t i = 0; i < streams_.size() && ok(); ++i) {
    Stream& s = streams_[i];
    if (s.wl->abandoned()) continue;
    const std::uint32_t free = s.wl->sender().send_tokens_free();
    if (free != s.send_tokens) {
      violate("quiescence", "stream " + std::to_string(i) +
                                ": only " + std::to_string(free) + "/" +
                                std::to_string(s.send_tokens) +
                                " send tokens back after completion");
    } else if (cluster_.config().mode == mcp::McpMode::kFtgm &&
               s.wl->sender().backup().send_count() != 0) {
      violate("quiescence",
              "stream " + std::to_string(i) + ": " +
                  std::to_string(s.wl->sender().backup().send_count()) +
                  " send backups outstanding after completion");
    }
  }
  check_route_convergence();
}

void Oracle::check_membership() {
  // A drain must terminate: once every stream to the victim quiesces the
  // cluster retires it. Still draining ~1 s after the drain started at
  // end-of-run means the handshake wedged (an admission leak keeps
  // feeding it, or the quiescence poll lost its timer).
  if (!ok()) return;
  for (const gm::RosterEvent& ev : cluster_.roster().history()) {
    if (ev.kind != gm::MembershipChange::kDrain) continue;
    if (cluster_.roster().is_draining(ev.node) &&
        cluster_.eq().now() - ev.at > sim::sec(1)) {
      violate("membership",
              "node " + std::to_string(ev.node) +
                  " still draining " +
                  std::to_string((cluster_.eq().now() - ev.at) / 1000000) +
                  " ms after drain started (never retired)");
    }
  }
}

void Oracle::check_route_convergence() {
  // Every node the mapper's table names must hold the mapper's current
  // epoch completely once the run quiesced — the control plane promises
  // retries/scrub/announce eventually repair any lag, so a node still
  // behind here is a lost-update bug, not latency.
  if (!ok() || route_authority_ == nullptr) return;
  // A repair loop that ran its budgets into silence is a failure in its
  // own right — it used to read as "settled" and digest as success.
  if (route_authority_->gave_up()) {
    violate("route-convergence",
            "failover manager gave up: remap/scrub budgets exhausted with "
            "the fabric not fully converged");
    return;
  }
  const mapper::Mapper& m = route_authority_->mapper();
  if (m.epoch() == 0) return;  // never mapped: nothing to converge to
  // Roster interface count: a node expected up at horizon that the final
  // map never discovered has no table entry to lag behind — without this
  // check it would be invisible to the epoch loop below.
  for (const net::NodeId node : expected_roster_) {
    if (!ok()) break;
    if (node >= static_cast<net::NodeId>(cluster_.size())) continue;
    // The scenario's timeline is a static prediction; the cluster's
    // roster is the membership truth. A node the roster retired (a drain
    // that finished earlier than predicted) is legitimately unmapped.
    if (!cluster_.roster().is_member(node)) continue;
    if (m.table().count(node) == 0) {
      violate("route-convergence",
              cluster_.node(node).name() +
                  ": expected up at horizon but absent from the final map "
                  "(" + std::to_string(m.table().size()) + " of " +
                  std::to_string(expected_roster_.size()) +
                  " expected interfaces mapped)");
    }
  }
  for (const auto& [node, entries] : m.table()) {
    (void)entries;
    if (!ok()) break;
    if (node >= static_cast<net::NodeId>(cluster_.size())) continue;
    const std::uint32_t got = cluster_.node(node).route_epoch();
    if (got != m.epoch()) {
      violate("route-convergence",
              cluster_.node(node).name() + ": installed route epoch " +
                  std::to_string(got) + ", mapper is at " +
                  std::to_string(m.epoch()));
    }
  }
}

}  // namespace myri::fi
