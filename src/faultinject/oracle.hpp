// Continuous cluster-wide invariant oracle.
//
// The hand-written sweeps only asserted invariants at end-of-run: a
// violation that appeared and healed mid-run (a duplicate delivery later
// compensated, a token leak refilled by recovery) was invisible. The
// Oracle hooks sim::EventQueue's after-event observer and re-checks the
// DESIGN.md invariants at event granularity while the schedule runs:
//
//   stream-fifo          per-stream delivery indices strictly ascend by 1
//   stream-exactly-once  no message index delivered twice
//   stream-corruption    no delivered payload fails verification
//   token-conservation   a port never holds more tokens than configured
//   watchdog-soundness   no false alarms; recoveries never exceed wakeups
//   metrics-consistency  metrics::Registry counters agree with component
//                        stats (ftd recoveries/wakeups) and per-link
//                        delivered <= offered accounting
//   quiescence           after all streams complete and the cluster
//                        drains: all send tokens free, FTGM send backups
//                        empty (final_check only; streams abandoned to a
//                        node replacement are excused)
//   membership           a started drain terminates: the victim must be
//                        retired, not still draining, ~1 s after the
//                        drain began (final_check only)
//   route-convergence    after quiesce, every node in the mapper's table
//                        holds the mapper's current route epoch
//                        completely, every node expected up at horizon is
//                        present in the map at all (roster interface
//                        count, see set_expected_roster), and the
//                        failover manager did not give up its repair loop
//                        (final_check only; needs a route authority, see
//                        set_route_authority)
//   state-drift          no registered drift probe samples past its bound
//                        (check_drift only; soak mode samples per check
//                        window). Probes watch state that must stay
//                        epoch-bounded over an arbitrarily long run:
//                        event-queue occupancy, mapper cross-epoch cache
//                        sizes, windowed-histogram sample counts, retry
//                        budget counters. Unbounded growth is a leak even
//                        when every delivery invariant still holds.
//
// The first violation is recorded with its virtual timestamp and checking
// stops (later checks would cascade). The oracle is deterministic: its
// check count and violation list feed the run's outcome digest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gm/cluster.hpp"
#include "sim/time.hpp"

namespace myri::mapper {
class FailoverManager;
}  // namespace myri::mapper

namespace myri::fi {

class StreamWorkload;

class Oracle {
 public:
  struct Config {
    /// Full invariant sweeps are throttled to at most one per this much
    /// virtual time (delivery-driven stream checks are unthrottled).
    sim::Time check_gap = sim::usec(200);
  };

  struct Violation {
    sim::Time at = 0;
    std::string invariant;  // stable name, see table above
    std::string detail;
  };

  Oracle(gm::Cluster& cluster, Config cfg);
  ~Oracle();
  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Register a stream and the token allotment of the two ports carrying
  /// it. Call once per stream before attach().
  void watch(StreamWorkload& wl, std::uint32_t send_tokens,
             std::uint32_t recv_tokens);

  /// Install the event-queue hook: every executed event may trigger a
  /// sweep (throttled by Config::check_gap).
  void attach();
  /// Remove the hook (the destructor also detaches).
  void detach();

  /// Per-delivery stream check: `msg` is the delivered message index
  /// (-1 = failed verification). Unthrottled; call for every delivery.
  void on_delivery(std::size_t stream, int msg);

  /// Run one full invariant sweep right now.
  void check_now();

  /// Register a drift probe: `sample` reads some internal-state size,
  /// `bound` its allowed ceiling (a callable, because legitimate bounds
  /// move with cluster size / roster churn). check_drift() violates
  /// "state-drift" when sample() > bound(). Probes run only from
  /// check_drift(), so legacy end-only schedules pay nothing.
  void add_drift_probe(std::string name,
                       std::function<std::uint64_t()> sample,
                       std::function<std::uint64_t()> bound);

  /// Sample every drift probe once (soak mode runs this per check
  /// window). Records the first probe over its bound as a "state-drift"
  /// violation, naming the probe and both values.
  void check_drift();

  /// Route authority for the route-convergence invariant: the mapper
  /// behind `fm` is the single source of truth for what every node's
  /// installed epoch must be after quiesce. Optional — schedules without
  /// a control plane (single-switch fabrics) skip the check.
  void set_route_authority(const mapper::FailoverManager* fm) {
    route_authority_ = fm;
  }
  /// Nodes the scenario expects to be up at horizon. With a route
  /// authority set, route-convergence additionally requires every one of
  /// them to be present in the final map — a node the map never
  /// discovered used to be invisible to the epoch check (it has no table
  /// entry to lag behind).
  void set_expected_roster(std::vector<net::NodeId> roster) {
    expected_roster_ = std::move(roster);
  }

  /// End-of-run quiescence checks; call after the cluster drained.
  void final_check();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t drift_checks_run() const noexcept {
    return drift_checks_;
  }

 private:
  struct Stream {
    StreamWorkload* wl = nullptr;
    std::uint32_t send_tokens = 0;
    std::uint32_t recv_tokens = 0;
    int next_msg = 0;  // FIFO cursor: the only index allowed next
  };

  struct DriftProbe {
    std::string name;
    std::function<std::uint64_t()> sample;
    std::function<std::uint64_t()> bound;
  };

  void violate(const std::string& invariant, const std::string& detail);
  void check_streams();
  void check_tokens();
  void check_watchdog();
  void check_metrics();
  void check_membership();
  void check_route_convergence();

  gm::Cluster& cluster_;
  const mapper::FailoverManager* route_authority_ = nullptr;
  std::vector<net::NodeId> expected_roster_;
  Config cfg_;
  std::vector<Stream> streams_;
  std::vector<DriftProbe> drift_probes_;
  std::vector<Violation> violations_;
  sim::Time last_check_ = 0;
  bool checked_once_ = false;
  bool attached_ = false;
  std::uint64_t checks_ = 0;
  std::uint64_t drift_checks_ = 0;
};

}  // namespace myri::fi
