#include "faultinject/scenario.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <utility>

#include "faultinject/oracle.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mapper/failover.hpp"
#include "mcp/sram_layout.hpp"
#include "sim/rng.hpp"

namespace myri::fi {

namespace {

// ---- outcome digest: FNV-1a over the run's observable history ----

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  mix(h, s.size());
}

/// Byte span of the SRAM data segment kSramFlip offsets index into
/// (send descriptor, TX descriptor, payload staging — what send_chunk
/// reads that is not code; same region Campaign's kDataSegment flips).
constexpr std::uint32_t data_segment_size() {
  return mcp::SramLayout::kSendStagingBase +
         mcp::SramLayout::kNumSendSlots * mcp::SramLayout::kStagingSlotSize -
         mcp::SramLayout::kSendDescAddr;
}

const char* mode_name(mcp::McpMode m) {
  return m == mcp::McpMode::kGm ? "gm" : "ftgm";
}

// Deterministic double formatting that strtod round-trips exactly.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(ScenarioEvent::Kind k) {
  switch (k) {
    case ScenarioEvent::Kind::kNicHang: return "nic-hang";
    case ScenarioEvent::Kind::kCableDown: return "cable-down";
    case ScenarioEvent::Kind::kCableUp: return "cable-up";
    case ScenarioEvent::Kind::kFaultWindow: return "fault-window";
    case ScenarioEvent::Kind::kSramFlip: return "sram-flip";
    case ScenarioEvent::Kind::kDoubleDeliver: return "double-deliver";
    case ScenarioEvent::Kind::kNodeJoin: return "node-join";
    case ScenarioEvent::Kind::kNodeDrain: return "node-drain";
    case ScenarioEvent::Kind::kNodeReplace: return "node-replace";
    case ScenarioEvent::Kind::kTokenLeak: return "token-leak";
  }
  return "?";
}

namespace {

std::optional<ScenarioEvent::Kind> parse_kind(const std::string& s) {
  using K = ScenarioEvent::Kind;
  for (K k : {K::kNicHang, K::kCableDown, K::kCableUp, K::kFaultWindow,
              K::kSramFlip, K::kDoubleDeliver, K::kNodeJoin, K::kNodeDrain,
              K::kNodeReplace, K::kTokenLeak}) {
    if (s == to_string(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

// ---- random schedule generation ----

Scenario Scenario::random(std::uint64_t rand_seed) {
  sim::Rng rng(rand_seed);
  Scenario s;
  s.seed = rng.next_u64();

  struct TopoChoice {
    int nodes;
    net::FabricPreset preset;
  };
  static const std::vector<TopoChoice> kTopos = {
      {2, net::FabricPreset::kSingleSwitch},
      {4, net::FabricPreset::kSingleSwitch},
      {6, net::FabricPreset::kSingleSwitch},
      {4, net::FabricPreset::kRing},
      {6, net::FabricPreset::kRing},
      {8, net::FabricPreset::kFatTree},
      {16, net::FabricPreset::kFatTree},
  };
  const TopoChoice& tc = rng.pick(kTopos);
  s.nodes = tc.nodes;
  s.fabric = tc.preset;
  s.radix = 8;
  s.mode = mcp::McpMode::kFtgm;
  s.msgs = 15 + static_cast<int>(rng.below(16));
  s.msg_len = 512 + static_cast<std::uint32_t>(rng.below(2048));

  // Trunk count of the chosen preset (cable events need redundancy the
  // mapper can reroute across). Built on a throwaway topology: cheap,
  // and keeps this function the single source of truth.
  std::size_t trunks = 0;
  if (s.fabric != net::FabricPreset::kSingleSwitch) {
    sim::EventQueue eq;
    sim::Rng r(0);
    net::Topology topo(eq, r);
    net::FabricBuilder fb(topo, {s.fabric, s.nodes, s.radix});
    trunks = fb.trunk_cables().size();
  }

  // One mixed profile: cable kills, NIC hangs, lossy links and fault
  // windows now coexist freely. The old disjoint cable-only profile was a
  // crutch for raw MAP_ROUTE pushes (a chunk lost to a lossy link or hung
  // MCP stranded a node on stale routes forever); the epoch/ACK/scrub
  // control plane repairs those, so mixing is a test of the code, not a
  // failure by construction. Two constraints keep schedules survivable:
  // cable events need trunk redundancy, and at most one trunk is down at
  // any instant (ring and fat-tree presets tolerate exactly one cut).
  if (rng.bernoulli(0.5)) {
    s.drop = rng.below(11) * 0.01;     // 0 .. 0.10
    s.corrupt = rng.below(9) * 0.01;   // 0 .. 0.08
  }

  const int n_events = 1 + static_cast<int>(rng.below(4));
  // Hangs (and recoveries) serialize at ~1.7 s each; space them out so
  // every one is individually maskable, like the hand-written sweeps did.
  sim::Time hang_slot = kWarmup + sim::usec(rng.below(10'000));
  // Cable kills serialize too: the next kill waits for the previous
  // restore, so the fabric never runs with two trunks missing.
  sim::Time cable_slot = kWarmup + sim::usec(rng.below(5000));
  bool cable_ok = trunks > 0;
  for (int i = 0; i < n_events; ++i) {
    ScenarioEvent ev;
    const std::uint64_t pick = rng.below(cable_ok ? 4 : 3);
    if (pick == 3) {
      ev.kind = ScenarioEvent::Kind::kCableDown;
      ev.cable = static_cast<int>(rng.below(trunks));
      ev.at = cable_slot;
      if (rng.bernoulli(0.7)) {
        ScenarioEvent up;
        up.kind = ScenarioEvent::Kind::kCableUp;
        up.cable = ev.cable;
        up.at = ev.at + sim::msec(200 + rng.below(1800));
        s.events.push_back(up);
        cable_slot = up.at + sim::msec(50 + rng.below(200));
      } else {
        // This trunk stays dead: no further kills, or a second cut could
        // partition the fabric.
        cable_ok = false;
      }
    } else if (pick != 2) {
      ev.kind = ScenarioEvent::Kind::kNicHang;
      ev.node = static_cast<int>(rng.below(s.nodes));
      ev.at = hang_slot;
      hang_slot += sim::sec(2) + sim::usec(200'000 + rng.below(400'000));
    } else {
      ev.kind = ScenarioEvent::Kind::kFaultWindow;
      ev.at = kWarmup + sim::usec(rng.below(2000));
      ev.duration = sim::usec(100 + rng.below(5000));
      ev.drop = rng.below(21) * 0.01;     // 0 .. 0.20
      ev.corrupt = rng.below(11) * 0.01;  // 0 .. 0.10
    }
    s.events.push_back(ev);
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

// ---- validation ----

std::string Scenario::validate() const {
  net::FabricConfig fc{fabric, nodes, radix};
  const std::size_t cap = net::FabricBuilder::capacity(fc);
  if (nodes < 2 || static_cast<std::size_t>(nodes) > cap) {
    return "nodes must be 2.." + std::to_string(cap) + " for fabric " +
           std::string(net::to_string(fabric));
  }
  if (msgs < 1 || msgs > 100'000) return "msgs out of range";
  if (msg_len < 8 || msg_len > 65536) return "msg_len out of range";

  // Replay the schedule as a membership timeline (same order the runner
  // fires it: time, ties by vector position). Later events may target
  // ids the timeline created; joins consume as-built free ports and a
  // drain's port comes back kRecoveryAllowance after the drain starts
  // (retire_now -> Fabric::release_port, observed worst case is the
  // quiesce poll finishing well inside the allowance).
  std::vector<ScenarioEvent> ordered = events;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  bool membership = false;
  for (const ScenarioEvent& ev : ordered) {
    if (ev.kind == ScenarioEvent::Kind::kNodeJoin ||
        ev.kind == ScenarioEvent::Kind::kNodeDrain ||
        ev.kind == ScenarioEvent::Kind::kNodeReplace) {
      membership = true;
      break;
    }
  }
  std::size_t free = 0;
  if (membership) {
    // The preset capacity is theoretical; what a join actually needs is a
    // free port on the *as-built* fabric (a radix-3 ring is full: every
    // switch spends 2 ports on trunks and 1 on its host). Dry-build the
    // fabric so an unsatisfiable schedule is rejected here instead of
    // blowing up add_node() mid-run.
    sim::EventQueue eq;
    sim::Rng rng(1);
    net::Topology topo(eq, rng);
    const net::FabricBuilder fb(topo, fc);
    free = fb.free_ports();
  }
  int ids = nodes;                     // ids assigned so far (joins extend)
  std::vector<bool> drained;           // by id: retirement scheduled
  drained.assign(static_cast<std::size_t>(nodes), false);
  std::vector<sim::Time> credits;      // sorted: drain ports coming back
  std::size_t credited = 0;
  for (const ScenarioEvent& ev : ordered) {
    while (credited < credits.size() && credits[credited] <= ev.at) {
      ++free;
      ++credited;
    }
    if (ev.cable < 0) return "negative cable index";
    switch (ev.kind) {
      case ScenarioEvent::Kind::kNodeJoin:
        if (free == 0) {
          return "join at " + std::to_string(ev.at) +
                 " ns has no free port on the as-built fabric "
                 "(counting ports handed back by earlier drains)";
        }
        if (static_cast<std::size_t>(ids) + 1 > cap) {
          return "schedule joins past fabric capacity " + std::to_string(cap);
        }
        --free;
        ++ids;
        drained.push_back(false);
        break;
      case ScenarioEvent::Kind::kNodeDrain:
      case ScenarioEvent::Kind::kNodeReplace:
        if (ev.node == 0) {
          return "membership event cannot target node 0 (mapper home)";
        }
        if (ev.node < 0 || ev.node >= ids) {
          return "event node " + std::to_string(ev.node) +
                 " out of range (ids assigned by then: " +
                 std::to_string(ids) + ")";
        }
        if (drained[static_cast<std::size_t>(ev.node)]) {
          return std::string(ev.kind == ScenarioEvent::Kind::kNodeDrain
                                 ? "node "
                                 : "replace of node ") +
                 std::to_string(ev.node) + " after it was already drained";
        }
        if (ev.kind == ScenarioEvent::Kind::kNodeDrain) {
          drained[static_cast<std::size_t>(ev.node)] = true;
          credits.push_back(ev.at + kRecoveryAllowance);
        }
        break;
      default:
        // Fault / test-only kinds. `node` is a victim id or stream index;
        // ids joined earlier in the timeline are legitimate targets.
        if (ev.node < 0 || ev.node >= ids) {
          return "event node " + std::to_string(ev.node) +
                 " out of range (ids assigned by then: " +
                 std::to_string(ids) + ")";
        }
        break;
    }
  }
  return {};
}

// ---- roster / horizon ----

sim::Time Scenario::effective_horizon() const {
  if (horizon != 0) return horizon;
  sim::Time h = Scenario::kWarmup + sim::msec(10) +
                sim::usec(150) * static_cast<std::uint64_t>(msgs) *
                    static_cast<std::uint64_t>(nodes);
  if (send_gap > 0) {
    // Paced streams run in parallel, gated by their own clock: the run
    // lasts ~msgs * gap regardless of node count, plus drain slack.
    h = std::max(h, Scenario::kWarmup +
                        send_gap * static_cast<std::uint64_t>(msgs) +
                        sim::sec(2));
  }
  for (const ScenarioEvent& ev : events) {
    h = std::max(h, ev.at + ev.duration + sim::sec(1));
    if (ev.kind == ScenarioEvent::Kind::kNicHang ||
        ev.kind == ScenarioEvent::Kind::kSramFlip ||
        ev.kind == ScenarioEvent::Kind::kNodeJoin ||
        ev.kind == ScenarioEvent::Kind::kNodeDrain ||
        ev.kind == ScenarioEvent::Kind::kNodeReplace) {
      // detect + confirm + reload + replay for faults; fold-in / drain
      // quiesce / spare bring-up for membership deltas.
      h += kRecoveryAllowance;
    }
  }
  return h;
}

std::vector<net::NodeId> Scenario::expected_up_at_horizon() const {
  const sim::Time h = effective_horizon();
  // Replay the schedule as a membership timeline: later events override
  // earlier ones (a replace revives a node an earlier hang excused).
  // Joined nodes get ids nodes, nodes+1, ... in firing order, which is
  // time order (the runner schedules same-time events in vector order).
  std::vector<ScenarioEvent> ordered = events;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  std::vector<bool> up(static_cast<std::size_t>(nodes), true);
  for (const ScenarioEvent& ev : ordered) {
    switch (ev.kind) {
      case ScenarioEvent::Kind::kNicHang:
      case ScenarioEvent::Kind::kSramFlip:
        if (ev.node < 0 || ev.node >= static_cast<int>(up.size())) break;
        // kGm has no watchdog/FTD: a wedged card stays wedged. A flip may
        // be benign or self-restart, but "may be up" is not "expected
        // up". kFtgm recovers, but a victim hit too close to the horizon
        // cannot be counted on to be back (and remapped) in time.
        if (mode == mcp::McpMode::kGm || ev.at + kRecoveryAllowance > h) {
          up[static_cast<std::size_t>(ev.node)] = false;
        }
        break;
      case ScenarioEvent::Kind::kNodeDrain:
        // A drain with room to finish ends in retirement: the node is
        // expected ABSENT. Too close to the horizon, the drain may still
        // be waiting out in-flight streams — leave it expected up.
        if (ev.node < 0 || ev.node >= static_cast<int>(up.size())) break;
        if (ev.at + kRecoveryAllowance <= h) {
          up[static_cast<std::size_t>(ev.node)] = false;
        }
        break;
      case ScenarioEvent::Kind::kNodeReplace:
        // The spare takes the victim's id: expected up when the swap has
        // time to land, even if an earlier hang excused the old card.
        if (ev.node < 0 || ev.node >= static_cast<int>(up.size())) break;
        up[static_cast<std::size_t>(ev.node)] =
            ev.at + kRecoveryAllowance <= h;
        break;
      case ScenarioEvent::Kind::kNodeJoin:
        up.push_back(ev.at + kRecoveryAllowance <= h);
        break;
      default:
        break;
    }
  }
  std::vector<net::NodeId> out;
  for (std::size_t i = 0; i < up.size(); ++i) {
    if (up[i]) out.push_back(static_cast<net::NodeId>(i));
  }
  return out;
}

// ---- runner ----

RunReport ScenarioRunner::run(const Scenario& s, const Options& opt) {
  const std::string bad = s.validate();
  if (!bad.empty()) {
    throw std::invalid_argument("invalid scenario: " + bad);
  }

  gm::ClusterConfig cc;
  cc.nodes = s.nodes;
  cc.fabric = s.fabric;
  cc.switch_ports = s.radix;
  cc.mode = s.mode;
  cc.seed = s.seed;
  cc.faults = {s.drop, s.corrupt, s.misroute};
  gm::Cluster cluster(cc);

  // Cable events are mapper territory: the FailoverManager watches the
  // topology and reroutes around dead trunks (and back, on restore).
  std::unique_ptr<mapper::FailoverManager> fm;
  if (!cluster.fabric().trunk_cables().empty()) {
    fm = std::make_unique<mapper::FailoverManager>(cluster);
    // Test-only leak plant: keep retired nodes' mapper caches so the
    // drift oracle has a real unbounded growth to catch.
    if (s.retain_caches) fm->test_retain_retired_caches(true);
  }

  constexpr std::uint32_t kTokens = 24;
  std::vector<gm::Port*> ports;
  for (int i = 0; i < s.nodes; ++i) {
    ports.push_back(&cluster.node(i).open_port(2, {kTokens, kTokens}));
  }
  StreamWorkload::Config wc;
  wc.total_msgs = s.msgs;
  wc.msg_len = s.msg_len;
  wc.send_gap = s.send_gap;

  std::vector<std::unique_ptr<StreamWorkload>> wls;
  for (int i = 0; i < s.nodes; ++i) {
    wls.push_back(std::make_unique<StreamWorkload>(
        *ports[i], *ports[(i + 1) % s.nodes], wc));
  }

  Oracle oracle(cluster, Oracle::Config{opt.check_gap});
  oracle.set_route_authority(fm.get());
  oracle.set_expected_roster(s.expected_up_at_horizon());
  std::uint64_t digest = kFnvOffset;
  std::uint64_t deliveries = 0;
  std::vector<bool> dup_next(wls.size(), false);
  // Delivery log entry: (stream, msg, time). A run that delivers the
  // same messages at different times or in a different order gets a
  // different digest — that is the seed-stability guarantee.
  auto on_delivery = [&](std::size_t i, int msg) {
    mix(digest, i);
    mix(digest, static_cast<std::uint64_t>(static_cast<std::int64_t>(msg)));
    mix(digest, cluster.eq().now());
    ++deliveries;
    oracle.on_delivery(i, msg);
    if (dup_next[i]) {
      dup_next[i] = false;
      mix(digest, i);
      mix(digest, static_cast<std::uint64_t>(static_cast<std::int64_t>(msg)));
      mix(digest, cluster.eq().now());
      ++deliveries;
      oracle.on_delivery(i, msg);
    }
  };
  for (std::size_t i = 0; i < wls.size(); ++i) {
    oracle.watch(*wls[i], kTokens, kTokens);
    wls[i]->set_on_delivery([&, i](int msg) { on_delivery(i, msg); });
  }

  // Membership verification streams: after a join or replace, a short
  // stream from node 0 into the new card (receive port 3, a sender port
  // of its own per stream) proves it serves traffic. Started ~5 ms after
  // the roster event so port-open control traffic has landed; watched by
  // the oracle and mixed into the digest like the ring streams.
  int membership_streams = 0;
  // Sender ports 4..7 on node 0, round-robin: a long soak sees dozens of
  // roster events, far more than the card has ports, and reopening a port
  // id would destroy a Port that earlier (finished) workloads still
  // reference. Streams are short (8 msgs) and arrivals are many seconds
  // apart, so a recycled port is always idle by the time it is reused.
  std::array<gm::Port*, 4> membership_tx{};
  auto start_membership_stream = [&](net::NodeId dst) {
    const std::size_t idx = wls.size();
    const int slot = membership_streams % 4;
    if (membership_tx[slot] == nullptr) {
      membership_tx[slot] = &cluster.node(0).open_port(
          static_cast<std::uint8_t>(4 + slot), {kTokens, kTokens});
    }
    gm::Port& tx = *membership_tx[slot];
    gm::Port& rx = cluster.node(dst).open_port(3, {kTokens, kTokens});
    ++membership_streams;
    StreamWorkload::Config mwc;
    mwc.total_msgs = 8;
    mwc.msg_len = s.msg_len;
    wls.push_back(std::make_unique<StreamWorkload>(tx, rx, mwc));
    dup_next.push_back(false);
    oracle.watch(*wls[idx], kTokens, kTokens);
    wls[idx]->set_on_delivery([&, idx](int msg) { on_delivery(idx, msg); });
    // Fresh ports need their L_timer open handshake on the wire before
    // peers accept traffic (same reason the ring workload waits out
    // kWarmup): starting immediately would lose the first sends.
    cluster.eq().schedule_after(sim::msec(2),
                                [&wls, idx] { wls[idx]->start(); });
  };

  // ---- schedule the fault events ----
  const net::LinkFaults baseline{s.drop, s.corrupt, s.misroute};
  for (const ScenarioEvent& ev : s.events) {
    switch (ev.kind) {
      case ScenarioEvent::Kind::kNicHang:
        cluster.eq().schedule_at(ev.at, [&cluster, ev] {
          gm::Node& victim = cluster.node(ev.node);
          victim.mcp().inject_hang("scenario");
          if (victim.has_ftd()) victim.ftd().mark_fault_injected();
        });
        break;
      case ScenarioEvent::Kind::kCableDown:
      case ScenarioEvent::Kind::kCableUp:
        cluster.eq().schedule_at(ev.at, [&cluster, ev] {
          const auto& trunks = cluster.fabric().trunk_cables();
          // Out-of-range indices no-op (a shrunk topology may have fewer
          // trunks than the original schedule referenced).
          if (static_cast<std::size_t>(ev.cable) >= trunks.size()) return;
          cluster.topo().set_cable_down(
              trunks[static_cast<std::size_t>(ev.cable)],
              ev.kind == ScenarioEvent::Kind::kCableDown);
        });
        break;
      case ScenarioEvent::Kind::kFaultWindow:
        cluster.eq().schedule_at(ev.at, [&cluster, ev, baseline, &s] {
          cluster.topo().set_all_faults({ev.drop, ev.corrupt, s.misroute});
          cluster.eq().schedule_after(ev.duration, [&cluster, baseline] {
            cluster.topo().set_all_faults(baseline);
          });
        });
        break;
      case ScenarioEvent::Kind::kSramFlip:
        cluster.eq().schedule_at(ev.at, [&cluster, ev] {
          gm::Node& victim = cluster.node(ev.node);
          const std::uint32_t addr = mcp::SramLayout::kSendDescAddr +
                                     ev.offset % data_segment_size();
          victim.nic().sram().flip_bit(addr, ev.bit & 7u);
          if (victim.has_ftd()) victim.ftd().mark_fault_injected();
        });
        break;
      case ScenarioEvent::Kind::kDoubleDeliver:
        cluster.eq().schedule_at(ev.at, [&dup_next, ev] {
          if (static_cast<std::size_t>(ev.node) < dup_next.size()) {
            dup_next[static_cast<std::size_t>(ev.node)] = true;
          }
        });
        break;
      case ScenarioEvent::Kind::kTokenLeak:
        cluster.eq().schedule_at(ev.at, [&wls, ev] {
          if (static_cast<std::size_t>(ev.node) >= wls.size()) return;
          gm::Port& tx = wls[static_cast<std::size_t>(ev.node)]->sender();
          // Push free tokens past the allotment (kTokens) so the next
          // token-conservation sweep trips no matter how many sends are
          // in flight right now.
          while (tx.send_tokens_free() <= kTokens) tx.test_inject_send_token();
        });
        break;
      case ScenarioEvent::Kind::kNodeJoin:
        cluster.eq().schedule_at(
            ev.at, [&cluster, &start_membership_stream] {
              const net::NodeId id = cluster.add_node();
              cluster.eq().schedule_after(
                  sim::msec(5),
                  [&start_membership_stream, id] {
                    start_membership_stream(id);
                  });
            });
        break;
      case ScenarioEvent::Kind::kNodeDrain:
        cluster.eq().schedule_at(ev.at, [&cluster, ev] {
          cluster.drain_node(static_cast<net::NodeId>(ev.node));
        });
        break;
      case ScenarioEvent::Kind::kNodeReplace:
        cluster.eq().schedule_at(
            ev.at, [&cluster, &wls, &s, &start_membership_stream, ev] {
              const auto x = static_cast<net::NodeId>(ev.node);
              // The dead card takes its ring streams with it: the stream
              // it sends (index x) and the one feeding it (x-1). Their
              // in-flight tails can never complete — that loss is the
              // point of needing a spare.
              wls[x]->abandon();
              wls[static_cast<std::size_t>((ev.node - 1 + s.nodes) %
                                           s.nodes)]
                  ->abandon();
              cluster.replace_node(x);
              cluster.eq().schedule_after(
                  sim::msec(5),
                  [&start_membership_stream, x] {
                    start_membership_stream(x);
                  });
            });
        break;
    }
  }

  // ---- windowed invariant checking (soak mode) ----
  // Every check_window of virtual time past kWarmup: a full invariant
  // sweep, the drift probes, a digest snapshot (localizes divergence to a
  // window), and a roll of the windowed histograms. None of it mutates
  // sim state, so the digest formula is byte-identical to legacy runs.
  const sim::Time horizon = s.effective_horizon();
  std::uint64_t windows_checked = 0;
  std::vector<std::uint64_t> window_digests;
  std::function<void()> window_tick;
  if (s.check_window > 0) {
    sim::EventQueue& eq = cluster.eq();
    // Drift probes: state that must stay epoch-bounded no matter how long
    // the run. Bounds are callables because the legitimate ceiling moves
    // with cluster size and roster churn.
    oracle.add_drift_probe(
        "eq-cancelled-pending",
        [&eq] { return static_cast<std::uint64_t>(eq.cancelled_pending()); },
        [&eq] {
          // Compaction triggers at cancelled >= 1024 && cancelled >= live;
          // anything far past both is a stale-entry leak.
          return std::max<std::uint64_t>(8192, 2 * eq.pending_events() + 1024);
        });
    oracle.add_drift_probe(
        "eq-pending-events",
        [&eq] { return static_cast<std::uint64_t>(eq.pending_events()); },
        [&cluster] {
          // Each live node owns a bounded set of timer/link events;
          // retired-but-simulated cards keep their L_timer chains.
          return 4096 + 1024 * static_cast<std::uint64_t>(cluster.size());
        });
    oracle.add_drift_probe(
        "windowed-histograms",
        [&cluster] {
          std::uint64_t worst = 0;
          for (const auto& [name, h] : cluster.metrics().histograms()) {
            (void)name;
            if (h.windowed()) worst = std::max(worst, h.count());
          }
          return worst;
        },
        [&cluster] {
          // Rolled every window; even a remap storm samples ~n^2 route
          // lengths per remap, so sustained growth past this is a roll
          // that stopped happening.
          const auto n = static_cast<std::uint64_t>(cluster.size());
          return 16 * n * n + 65536;
        });
    if (fm != nullptr) {
      mapper::FailoverManager* f = fm.get();
      oracle.add_drift_probe(
          "mapper-attach-cache",
          [f] {
            return static_cast<std::uint64_t>(
                f->mapper().tracked_attach_points());
          },
          [&cluster] {
            return cluster.roster().members().size() + 8;
          });
      oracle.add_drift_probe(
          "mapper-route-cache",
          [f] {
            return static_cast<std::uint64_t>(f->mapper().tracked_routes());
          },
          [&cluster] {
            return cluster.roster().members().size() + 8;
          });
      oracle.add_drift_probe(
          "fm-remap-retries",
          [f] { return static_cast<std::uint64_t>(f->remap_retries()); },
          [f] {
            // Progress resets the budget; a counter past it means the
            // give-up gate stopped working.
            return static_cast<std::uint64_t>(
                f->config().max_remap_retries + 1);
          });
      oracle.add_drift_probe(
          "fm-scrub-strikes",
          [f] { return static_cast<std::uint64_t>(f->scrub_strikes()); },
          [f] {
            return static_cast<std::uint64_t>(
                f->config().max_scrub_strikes + 1);
          });
    }
    window_tick = [&]() {
      if (!oracle.ok()) return;  // first violation recorded; stop sweeping
      oracle.check_now();
      oracle.check_drift();
      ++windows_checked;
      window_digests.push_back(digest);
      cluster.metrics().roll_windowed();
      if (cluster.eq().now() < horizon) {
        cluster.eq().schedule_after(s.check_window,
                                    [&window_tick] { window_tick(); });
      }
    };
  }

  // ---- run ----
  cluster.run_for(Scenario::kWarmup);
  for (auto& wl : wls) wl->start();
  oracle.attach();
  if (s.check_window > 0) {
    cluster.eq().schedule_after(s.check_window,
                                [&window_tick] { window_tick(); });
  }

  // The experiment is over when every stream is complete, every scheduled
  // event has fired, and no NIC is still wedged mid-recovery. Returning at
  // first completion would silently skip trailing schedule entries (e.g. a
  // soak's hang train) — the schedule is part of the experiment.
  sim::Time last_event = 0;
  for (const ScenarioEvent& ev : s.events) {
    last_event = std::max(last_event, ev.at + ev.duration);
  }
  while (cluster.eq().now() < horizon) {
    cluster.run_for(sim::msec(10));
    if (!oracle.ok()) break;
    if (cluster.eq().now() < last_event) continue;
    bool all = true;
    for (auto& wl : wls) all = all && (wl->complete() || wl->abandoned());
    for (int i = 0; all && i < cluster.size(); ++i) {
      gm::Node& n = cluster.node(i);
      all = !n.mcp().hung() && !(n.has_ftd() && n.ftd().busy());
    }
    if (all) break;
  }
  // Drain ACK tails so tokens come home. A lost terminal ACK is only
  // repaired by the sender's retransmission cycle, so poll for true
  // quiescence (bounded) instead of assuming one RTT is enough.
  for (int i = 0; i < 200; ++i) {
    cluster.run_for(sim::msec(10));
    if (!oracle.ok()) break;
    bool quiet = true;
    for (auto& wl : wls) {
      // Abandoned streams never quiesce: their outstanding GBN frames
      // retransmit into the quarantined card's cut cable forever.
      if (wl->abandoned()) continue;
      quiet = quiet && wl->complete() &&
              wl->sender().send_tokens_free() == kTokens;
      if (quiet && s.mode == mcp::McpMode::kFtgm) {
        quiet = wl->sender().backup().send_count() == 0;
      }
    }
    for (int j = 0; quiet && j < cluster.size(); ++j) {
      gm::Node& n = cluster.node(j);
      quiet = !n.mcp().hung() && !(n.has_ftd() && n.ftd().busy());
    }
    // Route control plane must settle too: the convergence invariant is
    // only fair to check once retries/scrub had their chance to land.
    quiet = quiet && (fm == nullptr || fm->settled());
    if (quiet) break;
  }
  oracle.final_check();
  if (s.check_window > 0) oracle.check_drift();
  oracle.detach();

  // ---- report ----
  RunReport rep;
  rep.delivered = true;
  for (auto& wl : wls) {
    StreamOutcome so;
    so.received = wl->received();
    so.duplicates = wl->duplicates();
    so.corrupted = wl->corrupted();
    so.missing = wl->missing();
    so.complete = wl->complete();
    // An abandoned stream's incompleteness is scheduled, not a failure.
    rep.delivered = rep.delivered && (so.complete || wl->abandoned());
    rep.streams.push_back(so);
  }
  rep.oracle_ok = oracle.ok();
  if (!oracle.ok()) {
    rep.violation = oracle.violations().front().invariant;
    rep.violation_detail = oracle.violations().front().detail;
    rep.violation_at = oracle.violations().front().at;
  }
  rep.oracle_checks = oracle.checks_run();
  rep.deliveries = deliveries;
  rep.windows_checked = windows_checked;
  rep.drift_checks = oracle.drift_checks_run();
  rep.window_digests = std::move(window_digests);
  if (!rep.oracle_ok && s.check_window > 0) {
    rep.violation_window =
        rep.violation_at > Scenario::kWarmup
            ? static_cast<std::int64_t>((rep.violation_at - Scenario::kWarmup) /
                                        s.check_window)
            : 0;
  }
  for (int i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).has_ftd()) {
      rep.recoveries += cluster.node(i).ftd().stats().recoveries;
    }
  }
  rep.remaps = fm ? fm->remaps() : 0;
  rep.end_time = cluster.eq().now();
  rep.events_executed = cluster.eq().executed();

  for (const StreamOutcome& so : rep.streams) {
    mix(digest, static_cast<std::uint64_t>(so.received));
    mix(digest, static_cast<std::uint64_t>(so.duplicates));
    mix(digest, static_cast<std::uint64_t>(so.corrupted));
    mix(digest, static_cast<std::uint64_t>(so.missing));
  }
  for (const Oracle::Violation& v : oracle.violations()) {
    mix(digest, v.invariant);
    mix(digest, v.at);
  }
  mix(digest, rep.recoveries);
  mix(digest, rep.remaps);
  rep.digest = digest;
  return rep;
}

// ---- JSON writer ----

std::string Scenario::to_json() const {
  std::string out = "{";
  out += "\"seed\":" + std::to_string(seed);
  out += ",\"topology\":{\"nodes\":" + std::to_string(nodes);
  out += ",\"fabric\":\"" + std::string(net::to_string(fabric)) + '"';
  out += ",\"radix\":" + std::to_string(radix);
  out += ",\"mode\":\"" + std::string(mode_name(mode)) + "\"}";
  out += ",\"workload\":{\"msgs\":" + std::to_string(msgs);
  out += ",\"len\":" + std::to_string(msg_len);
  out += ",\"gap_ns\":" + std::to_string(send_gap) + '}';
  out += ",\"faults\":{\"drop\":" + fmt_double(drop);
  out += ",\"corrupt\":" + fmt_double(corrupt);
  out += ",\"misroute\":" + fmt_double(misroute) + '}';
  out += ",\"horizon_ns\":" + std::to_string(horizon);
  out += ",\"check_window_ns\":" + std::to_string(check_window);
  out += ",\"retain_caches\":";
  out += retain_caches ? "true" : "false";
  out += ",\"schedule\":[";
  bool first = true;
  for (const ScenarioEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"at_ns\":" + std::to_string(ev.at);
    out += ",\"kind\":\"" + std::string(to_string(ev.kind)) + '"';
    out += ",\"node\":" + std::to_string(ev.node);
    out += ",\"cable\":" + std::to_string(ev.cable);
    out += ",\"drop\":" + fmt_double(ev.drop);
    out += ",\"corrupt\":" + fmt_double(ev.corrupt);
    out += ",\"duration_ns\":" + std::to_string(ev.duration);
    out += ",\"offset\":" + std::to_string(ev.offset);
    out += ",\"bit\":" + std::to_string(ev.bit) + '}';
  }
  out += "]}";
  return out;
}

std::string repro_json(const Scenario& s, const RunReport& r) {
  std::string out = s.to_json();
  out.pop_back();  // strip closing brace; append the expect block
  out += ",\"expect\":{\"failed\":";
  out += r.failed() ? "true" : "false";
  out += ",\"signature\":\"" + r.failure_signature() + '"';
  out += ",\"digest\":" + std::to_string(r.digest);
  out += ",\"violation_at_ns\":" + std::to_string(r.violation_at);
  out += ",\"violation_window\":" + std::to_string(r.violation_window);
  out += ",\"windows_checked\":" + std::to_string(r.windows_checked);
  out += "}}";
  return out;
}

bool write_repro(const std::string& path, const Scenario& s,
                 const RunReport& r) {
  std::ofstream f(path);
  if (!f) return false;
  f << repro_json(s, r) << '\n';
  return static_cast<bool>(f);
}

// ---- JSON parser (minimal, schema-focused) ----

namespace {

/// Tiny JSON value: enough structure for the repro schema, nothing more.
/// Numbers keep their raw token so 64-bit seeds/digests round-trip
/// without a double truncating them.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  std::string raw;  // number token or string contents
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return std::strtoull(raw.c_str(), nullptr, 10);
  }
  [[nodiscard]] double as_double() const {
    return std::strtod(raw.c_str(), nullptr);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse(std::string* err) {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (!v || pos_ != s_.size()) {
      if (err != nullptr) {
        *err = error_.empty() ? "trailing garbage at byte " +
                                    std::to_string(pos_)
                              : error_;
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end");
      return std::nullopt;
    }
    JsonValue v;
    const char c = s_[pos_];
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::optional<std::string> key = string_token();
        if (!key) return std::nullopt;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          fail("expected ':'");
          return std::nullopt;
        }
        ++pos_;
        std::optional<JsonValue> member = value();
        if (!member) return std::nullopt;
        v.obj.emplace_back(std::move(*key), std::move(*member));
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return v;
        }
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        std::optional<JsonValue> elem = value();
        if (!elem) return std::nullopt;
        v.arr.push_back(std::move(*elem));
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return v;
        }
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> str = string_token();
      if (!str) return std::nullopt;
      v.type = JsonValue::Type::kString;
      v.raw = std::move(*str);
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.type = JsonValue::Type::kBool;
      v.b = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    // Number token.
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("unexpected character");
      return std::nullopt;
    }
    v.type = JsonValue::Type::kNumber;
    v.raw = s_.substr(start, pos_ - start);
    return v;
  }

  std::optional<std::string> string_token() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        c = s_[pos_++];
        if (c == 'n') c = '\n';
        else if (c == 't') c = '\t';
        // '"' and '\\' pass through as themselves.
      }
      out += c;
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++pos_;  // closing quote
    return out;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::uint64_t u64_field(const JsonValue& obj, const std::string& key,
                        std::uint64_t def = 0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->as_u64()
                                                             : def;
}

double double_field(const JsonValue& obj, const std::string& key,
                    double def = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->as_double()
                                                             : def;
}

std::string string_field(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->raw
                                                             : std::string();
}

}  // namespace

std::optional<Scenario> Scenario::from_json(const std::string& text,
                                            std::string* err) {
  auto set_err = [err](const std::string& what) {
    if (err != nullptr) *err = what;
  };
  std::optional<JsonValue> root = JsonParser(text).parse(err);
  if (!root) return std::nullopt;
  if (root->type != JsonValue::Type::kObject) {
    set_err("top level is not an object");
    return std::nullopt;
  }

  Scenario s;
  s.seed = u64_field(*root, "seed", s.seed);
  if (const JsonValue* topo = root->find("topology")) {
    s.nodes = static_cast<int>(u64_field(*topo, "nodes", 2));
    s.radix = static_cast<std::uint8_t>(u64_field(*topo, "radix", 8));
    const std::string fab = string_field(*topo, "fabric");
    if (!fab.empty()) {
      const auto p = net::parse_fabric_preset(fab);
      if (!p) {
        set_err("unknown fabric preset: " + fab);
        return std::nullopt;
      }
      s.fabric = *p;
    }
    const std::string mode = string_field(*topo, "mode");
    if (!mode.empty()) {
      if (mode != "gm" && mode != "ftgm") {
        set_err("unknown mode: " + mode);
        return std::nullopt;
      }
      s.mode = mode == "gm" ? mcp::McpMode::kGm : mcp::McpMode::kFtgm;
    }
  }
  if (const JsonValue* wl = root->find("workload")) {
    s.msgs = static_cast<int>(u64_field(*wl, "msgs", 25));
    s.msg_len = static_cast<std::uint32_t>(u64_field(*wl, "len", 1800));
    s.send_gap = u64_field(*wl, "gap_ns", 0);
  }
  if (const JsonValue* f = root->find("faults")) {
    s.drop = double_field(*f, "drop");
    s.corrupt = double_field(*f, "corrupt");
    s.misroute = double_field(*f, "misroute");
  }
  s.horizon = u64_field(*root, "horizon_ns", 0);
  s.check_window = u64_field(*root, "check_window_ns", 0);
  if (const JsonValue* rc = root->find("retain_caches")) {
    s.retain_caches = rc->type == JsonValue::Type::kBool && rc->b;
  }
  if (const JsonValue* sched = root->find("schedule")) {
    if (sched->type != JsonValue::Type::kArray) {
      set_err("schedule is not an array");
      return std::nullopt;
    }
    for (const JsonValue& e : sched->arr) {
      ScenarioEvent ev;
      ev.at = u64_field(e, "at_ns");
      const auto kind = parse_kind(string_field(e, "kind"));
      if (!kind) {
        set_err("unknown event kind: " + string_field(e, "kind"));
        return std::nullopt;
      }
      ev.kind = *kind;
      ev.node = static_cast<int>(u64_field(e, "node"));
      ev.cable = static_cast<int>(u64_field(e, "cable"));
      ev.drop = double_field(e, "drop");
      ev.corrupt = double_field(e, "corrupt");
      ev.duration = u64_field(e, "duration_ns");
      ev.offset = static_cast<std::uint32_t>(u64_field(e, "offset"));
      ev.bit = static_cast<unsigned>(u64_field(e, "bit"));
      s.events.push_back(ev);
    }
  }
  const std::string bad = s.validate();
  if (!bad.empty()) {
    set_err(bad);
    return std::nullopt;
  }
  return s;
}

std::optional<ReproExpect> parse_repro_expect(const std::string& text) {
  std::optional<JsonValue> root = JsonParser(text).parse(nullptr);
  if (!root || root->type != JsonValue::Type::kObject) return std::nullopt;
  const JsonValue* exp = root->find("expect");
  if (exp == nullptr || exp->type != JsonValue::Type::kObject) {
    return std::nullopt;
  }
  ReproExpect out;
  const JsonValue* failed = exp->find("failed");
  out.failed = failed != nullptr && failed->b;
  out.signature = string_field(*exp, "signature");
  out.digest = u64_field(*exp, "digest");
  return out;
}

}  // namespace myri::fi
