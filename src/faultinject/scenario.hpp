// Declarative, seed-deterministic chaos schedules.
//
// A Scenario is a complete description of one fault experiment: topology
// (any gm::Cluster / net::FabricBuilder preset), a verified neighbour-ring
// workload, baseline link-error rates, and a list of timed fault events
// (NIC hang, trunk-cable kill/restore, link-fault window, SRAM bit flip)
// applied at exact sim::Time points. The same Scenario value always
// produces the same run, bit for bit — the outcome digest makes that
// checkable — which is what lets the Shrinker minimize failing schedules
// and scenario_replay re-run a JSON repro artifact identically.
//
// The paper's experiments (Section 5.2 hang masking; PR 2's cable
// failover) are single fixed fault shapes; Scenario composes them: every
// hand-written chaos/property sweep is now a schedule, and randomized
// schedules explore the shapes nobody wrote by hand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mcp/types.hpp"
#include "net/fabric.hpp"
#include "sim/time.hpp"

namespace myri::fi {

/// One timed fault in a schedule. Which fields matter depends on `kind`;
/// unused fields stay at their defaults (and serialize/compare as such).
struct ScenarioEvent {
  enum class Kind : int {
    kNicHang = 0,      // wedge node `node`'s network processor
    kCableDown = 1,    // kill trunk cable index `cable` (fabric order)
    kCableUp = 2,      // restore trunk cable index `cable`
    kFaultWindow = 3,  // drop/corrupt rates on every link for `duration`
    kSramFlip = 4,     // flip `bit` of data-segment byte `offset`, node
    kDoubleDeliver = 5,  // test-only: report stream `node`'s next
                         // delivery twice to the oracle (breaks
                         // exactly-once on purpose; never generated
                         // randomly — exists to prove the oracle and the
                         // shrink/replay loop catch a real violation)
    // ---- membership events (gm::Roster deltas under traffic) ----
    kNodeJoin = 6,     // hot-add a node at a free switch port; the id is
                       // the next unused one (`node` is ignored). A
                       // verification stream into the joiner starts
                       // shortly after the join.
    kNodeDrain = 7,    // drain node `node`: new sends refused, in-flight
                       // streams finish exactly-once, then it retires
    kNodeReplace = 8,  // swap node `node` for a spare at the same switch
                       // port and NodeId; its ring streams are abandoned
                       // (the dead card takes them with it) and a
                       // verification stream proves the spare serves
                       // traffic
    kTokenLeak = 9,    // test-only: conjure send tokens on stream
                       // `node`'s sender port past its allotment (breaks
                       // token-conservation on purpose; never generated
                       // randomly — exists to prove windowed oracle
                       // checks attribute a mid-run violation to the
                       // window it happened in)
  };

  sim::Time at = 0;  // absolute virtual time (workload starts at kWarmup)
  Kind kind = Kind::kNicHang;
  int node = 0;               // kNicHang/kSramFlip victim; stream index
  int cable = 0;              // kCableDown/kCableUp trunk index
  double drop = 0.0;          // kFaultWindow rates
  double corrupt = 0.0;
  sim::Time duration = 0;     // kFaultWindow length
  std::uint32_t offset = 0;   // kSramFlip byte offset into the data segment
  unsigned bit = 0;           // kSramFlip bit 0..7

  friend bool operator==(const ScenarioEvent&, const ScenarioEvent&) = default;
};

[[nodiscard]] const char* to_string(ScenarioEvent::Kind k);

/// A full experiment description. Everything the run depends on lives
/// here (plus the code itself): serializing {seed, topology, schedule}
/// to JSON and re-running reproduces the run exactly.
struct Scenario {
  /// Workloads start (and event times are usually at/after) this point:
  /// the cluster needs ~900 us of L_timer control traffic to open ports.
  static constexpr sim::Time kWarmup = sim::usec(900);

  std::uint64_t seed = 1;  // cluster RNG seed (link faults, jitter)
  // ---- topology ----
  int nodes = 2;
  net::FabricPreset fabric = net::FabricPreset::kSingleSwitch;
  std::uint8_t radix = 8;
  mcp::McpMode mode = mcp::McpMode::kFtgm;
  // ---- workload: node i streams msgs x msg_len to node (i+1) % nodes ----
  int msgs = 25;
  std::uint32_t msg_len = 1800;
  /// Minimum virtual time between message posts per stream. 0 = legacy
  /// max-rate (post as fast as tokens allow). Soak runs pace their
  /// streams so the workload spans hours instead of finishing in ms.
  sim::Time send_gap = 0;
  // ---- baseline link-error rates for the whole run ----
  double drop = 0.0;
  double corrupt = 0.0;
  double misroute = 0.0;
  /// 0 = derive from schedule (hangs cost ~4 s of recovery each, ...).
  sim::Time horizon = 0;
  /// Windowed invariant checking: when > 0 the runner sweeps every
  /// Oracle invariant (plus the drift probes) at each multiple of this
  /// interval past kWarmup, snapshotting the incremental digest per
  /// window so a violation localizes to the window it happened in.
  /// 0 = legacy behavior (delivery-driven checks + final_check only).
  sim::Time check_window = 0;
  /// Test-only leak plant: disable the mapper's retired-node cache
  /// eviction so `last_attach_` / `last_route_` grow with every retire.
  /// Exists to prove the drift oracle catches real unbounded growth.
  bool retain_caches = false;
  std::vector<ScenarioEvent> events;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// Per-fault recovery allowance used both to derive the default horizon
  /// and to decide which fault victims count as "expected up at horizon"
  /// (detect + confirm + reload + replay is ~1.7-4 s).
  static constexpr sim::Time kRecoveryAllowance = sim::sec(4);

  /// The horizon the runner actually uses: `horizon` when set, otherwise
  /// derived from workload size and the schedule (each hang/flip adds
  /// kRecoveryAllowance).
  [[nodiscard]] sim::Time effective_horizon() const;

  /// Structural validity: empty string when the scenario is runnable,
  /// else a description of the first problem. Replays the schedule as a
  /// membership timeline in event-time order, so events may target nodes
  /// joined earlier in the schedule, double-drains and drains/replaces of
  /// node 0 are rejected, and every join needs a free switch port on the
  /// as-built fabric *at its fire time* — a drain hands its port back
  /// kRecoveryAllowance after it starts (matching the runner's retire +
  /// Fabric::release_port), so sustained join/drain churn validates even
  /// when the fabric only ever has one port spare.
  [[nodiscard]] std::string validate() const;

  /// Nodes expected to be up (recovered, mappable) at effective_horizon(),
  /// replayed as a membership *timeline* in event-time order:
  ///   - hang/flip victims that cannot be back in time are excused (in
  ///     kGm mode there is no watchdog/FTD, so any victim may stay down),
  ///   - a drained node is expected RETIRED (absent) when the drain has
  ///     kRecoveryAllowance to finish before the horizon,
  ///   - a replaced node is expected up again (the spare) when the swap
  ///     lands in time — even if an earlier hang had excused it,
  ///   - joined nodes (ids nodes, nodes+1, ... in event order) are
  ///     expected up when the join lands in time.
  /// The runner feeds this to the oracle's roster-aware
  /// route-convergence invariant.
  [[nodiscard]] std::vector<net::NodeId> expected_up_at_horizon() const;

  /// Deterministic random scenario: topology, rates and schedule are all
  /// derived from `rand_seed`. Never emits the test-only kDoubleDeliver
  /// kind nor the membership kinds (join/drain/replace live in pinned
  /// schedules so existing seed digests stay stable); hangs are spaced
  /// past the ~1.7 s recovery; cable events only appear on redundant
  /// fabrics (ring, fat-tree) where the mapper can route around them.
  [[nodiscard]] static Scenario random(std::uint64_t rand_seed);

  /// {seed, topology, schedule} JSON (deterministic field order).
  [[nodiscard]] std::string to_json() const;

  /// Parse to_json() output (also accepts insignificant whitespace).
  /// nullopt on malformed input; `err` (if non-null) says what broke.
  [[nodiscard]] static std::optional<Scenario> from_json(
      const std::string& text, std::string* err = nullptr);
};

/// Per-stream outcome (stream i = node i -> node (i+1) % nodes).
struct StreamOutcome {
  int received = 0;
  int duplicates = 0;
  int corrupted = 0;
  int missing = 0;
  bool complete = false;
};

/// Everything a run reports. `digest` is a stable FNV-1a hash of the
/// delivery log (stream, msg, time of every delivery), the oracle's
/// violation list and the end-of-run counters: two runs of the same
/// Scenario must produce equal digests, and a schedule "fails the same
/// way" exactly when digests match.
struct RunReport {
  bool delivered = false;    // every stream complete, exactly-once
  bool oracle_ok = true;     // no invariant violation mid-run
  std::string violation;     // first violated invariant (empty if none)
  std::string violation_detail;
  sim::Time violation_at = 0;
  std::uint64_t digest = 0;
  std::uint64_t deliveries = 0;   // delivery-log length
  std::uint64_t oracle_checks = 0;
  std::uint64_t recoveries = 0;   // FTD recoveries, cluster-wide
  std::uint64_t remaps = 0;       // failover remaps (multi-switch only)
  sim::Time end_time = 0;
  std::uint64_t events_executed = 0;  // sim events fired over the run
  std::vector<StreamOutcome> streams;
  // ---- windowed-mode extras (check_window > 0; zero/empty otherwise) ----
  std::uint64_t windows_checked = 0;  // periodic sweeps that ran
  std::uint64_t drift_checks = 0;     // Oracle::drift_checks_run()
  /// Window index of the first violation: (violation_at - kWarmup) /
  /// check_window. -1 when the run passed or ran without windowing.
  std::int64_t violation_window = -1;
  /// Incremental digest snapshot taken at each window boundary. The
  /// prefix up to any window is a pure function of the run prefix, so
  /// two runs diverge exactly at the first window whose snapshots differ.
  std::vector<std::uint64_t> window_digests;

  [[nodiscard]] bool failed() const { return !delivered || !oracle_ok; }
  /// Stable failure identity for the shrinker: the violated invariant, or
  /// incomplete delivery when the oracle saw nothing wrong.
  [[nodiscard]] std::string failure_signature() const {
    if (!oracle_ok) return violation;
    return delivered ? std::string() : std::string("incomplete-delivery");
  }
};

class ScenarioRunner {
 public:
  struct Options {
    /// Oracle sampling throttle: invariants are re-checked at the first
    /// event boundary at least this long after the previous check (plus
    /// at every delivery, unthrottled).
    sim::Time check_gap = sim::usec(200);
  };

  /// Build the cluster, apply the schedule, run to completion or horizon,
  /// and report. Deterministic for equal (scenario, opt).
  [[nodiscard]] static RunReport run(const Scenario& s, const Options& opt);
  [[nodiscard]] static RunReport run(const Scenario& s) {
    return run(s, Options{});
  }
};

/// Repro artifact: scenario plus the failure it reproduces, as JSON.
/// Scenario::from_json reads the artifact back (the "expect" block is
/// ignored there); parse_repro_expect extracts the recorded outcome so
/// scenario_replay can verify the re-run matches bit for bit.
[[nodiscard]] std::string repro_json(const Scenario& s, const RunReport& r);
/// Write repro_json to `path`; false on I/O error.
bool write_repro(const std::string& path, const Scenario& s,
                 const RunReport& r);

/// The "expect" block of a repro artifact.
struct ReproExpect {
  bool failed = false;
  std::string signature;       // RunReport::failure_signature()
  std::uint64_t digest = 0;
};
[[nodiscard]] std::optional<ReproExpect> parse_repro_expect(
    const std::string& text);

}  // namespace myri::fi
