#include "faultinject/shrinker.hpp"

#include <algorithm>
#include <functional>

namespace myri::fi {

namespace {

/// Rewrite a scenario for a smaller node count: victim/stream indices are
/// remapped into range. An index at or past the old node count named a
/// node joined by the schedule — keep it pointing at the same join
/// ordinal relative to the new count so the membership timeline still
/// validates. (Scenario::validate() gates the result in the caller.)
Scenario with_nodes(const Scenario& s, int nodes) {
  Scenario out = s;
  out.nodes = nodes;
  for (ScenarioEvent& ev : out.events) {
    if (ev.kind == ScenarioEvent::Kind::kNodeJoin) continue;
    if (ev.node >= s.nodes) {
      ev.node = nodes + (ev.node - s.nodes);
    } else {
      ev.node = ev.node % nodes;
    }
  }
  return out;
}

/// The check-window a schedule entry belongs to (windowed runs only).
std::uint64_t window_of(const ScenarioEvent& ev, sim::Time window) {
  if (ev.at <= Scenario::kWarmup) return 0;
  return (ev.at - Scenario::kWarmup) / window;
}

}  // namespace

ShrinkResult Shrinker::shrink(const Scenario& failing,
                              const RunReport& original, const Config& cfg) {
  ShrinkResult res;
  res.minimal = failing;
  res.report = original;
  const std::string signature = original.failure_signature();

  // A candidate is an improvement iff it still fails with the same
  // signature. Signature (not full digest) is the right equivalence:
  // removing an irrelevant event legitimately changes timings, but the
  // violated invariant must not drift.
  auto try_candidate = [&](const Scenario& cand) -> bool {
    // Full structural validation, not just capacity: a candidate with a
    // broken membership timeline (drain of a dropped join, no free port
    // at a join's fire time) would make ScenarioRunner::run throw.
    if (!cand.validate().empty()) return false;
    if (res.attempts >= cfg.max_attempts) return false;
    ++res.attempts;
    const RunReport rep = ScenarioRunner::run(cand, cfg.run);
    if (!rep.failed() || rep.failure_signature() != signature) return false;
    res.minimal = cand;
    res.report = rep;
    ++res.accepted;
    return true;
  };

  // 0. Window truncation (soak failures): a windowed violation localizes
  //    the failure in time — everything after the violating window is
  //    aftershock. Cutting the schedule and the horizon there first turns
  //    a multi-virtual-hour soak into a sub-minute repro, and every later
  //    shrink pass re-runs the short scenario instead of the soak.
  if (failing.check_window > 0 && original.violation_at > 0) {
    Scenario cand = res.minimal;
    const sim::Time cut = original.violation_at + failing.check_window;
    std::vector<ScenarioEvent> kept;
    for (const ScenarioEvent& ev : cand.events) {
      if (ev.at <= cut) kept.push_back(ev);
    }
    cand.events = std::move(kept);
    cand.horizon = cut + 2 * failing.check_window;
    try_candidate(cand);
  }

  bool improved = true;
  while (improved && res.attempts < cfg.max_attempts) {
    improved = false;

    // 0b. Windowed runs: drop whole check-windows of events at once,
    //     newest window first — ddmin at window granularity converges far
    //     faster on a long soak schedule than event-at-a-time, and the
    //     per-event pass below still polishes whatever survives.
    if (res.minimal.check_window > 0) {
      std::vector<std::uint64_t> groups;
      for (const ScenarioEvent& ev : res.minimal.events) {
        const std::uint64_t g = window_of(ev, res.minimal.check_window);
        if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
          groups.push_back(g);
        }
      }
      std::sort(groups.begin(), groups.end(), std::greater<>());
      for (const std::uint64_t g : groups) {
        if (res.minimal.events.size() <= 1) break;
        Scenario cand = res.minimal;
        std::vector<ScenarioEvent> keep;
        for (const ScenarioEvent& ev : cand.events) {
          if (window_of(ev, cand.check_window) != g) keep.push_back(ev);
        }
        if (keep.size() == cand.events.size()) continue;
        cand.events = std::move(keep);
        if (try_candidate(cand)) improved = true;
      }
    }

    // 1. Drop events, last first (later events are most often cleanup /
    //    aftershock; removing them first keeps indices stable).
    for (int i = static_cast<int>(res.minimal.events.size()) - 1; i >= 0;
         --i) {
      Scenario cand = res.minimal;
      cand.events.erase(cand.events.begin() + i);
      if (try_candidate(cand)) improved = true;
    }

    // 2. Shorten fault windows.
    for (std::size_t i = 0; i < res.minimal.events.size(); ++i) {
      if (res.minimal.events[i].kind != ScenarioEvent::Kind::kFaultWindow ||
          res.minimal.events[i].duration <= sim::usec(50)) {
        continue;
      }
      Scenario cand = res.minimal;
      cand.events[i].duration /= 2;
      if (try_candidate(cand)) improved = true;
    }

    // 3. Shrink the cluster: halve, then step down to the 2-node floor.
    for (int n : {res.minimal.nodes / 2, res.minimal.nodes - 1, 2}) {
      if (n >= 2 && n < res.minimal.nodes &&
          try_candidate(with_nodes(res.minimal, n))) {
        improved = true;
        break;
      }
    }

    // 4. Shorten the workload.
    if (res.minimal.msgs > 5) {
      Scenario cand = res.minimal;
      cand.msgs = std::max(5, cand.msgs / 2);
      if (try_candidate(cand)) improved = true;
    }

    // 5. Shift the surviving schedule to just after warmup. After
    //    truncation and event drops, a temporally-local failure (a leak
    //    planted two virtual hours in) sits at the end of an otherwise
    //    idle run; moving the events — and the explicit horizon — earlier
    //    is what turns it into a sub-minute repro.
    if (!res.minimal.events.empty() && res.minimal.horizon > 0) {
      sim::Time first = res.minimal.events.front().at;
      for (const ScenarioEvent& ev : res.minimal.events) {
        first = std::min(first, ev.at);
      }
      const sim::Time base = Scenario::kWarmup + sim::msec(10);
      if (first > base) {
        const sim::Time delta = first - base;
        Scenario cand = res.minimal;
        for (ScenarioEvent& ev : cand.events) ev.at -= delta;
        cand.horizon = cand.horizon > delta + base ? cand.horizon - delta
                                                   : base + sim::sec(1);
        if (try_candidate(cand)) improved = true;
      }
    }
  }
  return res;
}

}  // namespace myri::fi
