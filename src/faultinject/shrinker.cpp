#include "faultinject/shrinker.hpp"

#include <algorithm>

namespace myri::fi {

namespace {

/// Rewrite a scenario for a smaller node count: victim/stream indices are
/// remapped into range; the fabric preset survives if it can still carry
/// the new count (capacity() gate in the caller).
Scenario with_nodes(const Scenario& s, int nodes) {
  Scenario out = s;
  out.nodes = nodes;
  for (ScenarioEvent& ev : out.events) {
    ev.node = ev.node % nodes;
  }
  return out;
}

bool satisfiable(const Scenario& s) {
  const std::size_t cap =
      net::FabricBuilder::capacity({s.fabric, s.nodes, s.radix});
  return s.nodes >= 2 && static_cast<std::size_t>(s.nodes) <= cap;
}

}  // namespace

ShrinkResult Shrinker::shrink(const Scenario& failing,
                              const RunReport& original, const Config& cfg) {
  ShrinkResult res;
  res.minimal = failing;
  res.report = original;
  const std::string signature = original.failure_signature();

  // A candidate is an improvement iff it still fails with the same
  // signature. Signature (not full digest) is the right equivalence:
  // removing an irrelevant event legitimately changes timings, but the
  // violated invariant must not drift.
  auto try_candidate = [&](const Scenario& cand) -> bool {
    if (!satisfiable(cand)) return false;
    if (res.attempts >= cfg.max_attempts) return false;
    ++res.attempts;
    const RunReport rep = ScenarioRunner::run(cand, cfg.run);
    if (!rep.failed() || rep.failure_signature() != signature) return false;
    res.minimal = cand;
    res.report = rep;
    ++res.accepted;
    return true;
  };

  bool improved = true;
  while (improved && res.attempts < cfg.max_attempts) {
    improved = false;

    // 1. Drop events, last first (later events are most often cleanup /
    //    aftershock; removing them first keeps indices stable).
    for (int i = static_cast<int>(res.minimal.events.size()) - 1; i >= 0;
         --i) {
      Scenario cand = res.minimal;
      cand.events.erase(cand.events.begin() + i);
      if (try_candidate(cand)) improved = true;
    }

    // 2. Shorten fault windows.
    for (std::size_t i = 0; i < res.minimal.events.size(); ++i) {
      if (res.minimal.events[i].kind != ScenarioEvent::Kind::kFaultWindow ||
          res.minimal.events[i].duration <= sim::usec(50)) {
        continue;
      }
      Scenario cand = res.minimal;
      cand.events[i].duration /= 2;
      if (try_candidate(cand)) improved = true;
    }

    // 3. Shrink the cluster: halve, then step down to the 2-node floor.
    for (int n : {res.minimal.nodes / 2, res.minimal.nodes - 1, 2}) {
      if (n >= 2 && n < res.minimal.nodes &&
          try_candidate(with_nodes(res.minimal, n))) {
        improved = true;
        break;
      }
    }

    // 4. Shorten the workload.
    if (res.minimal.msgs > 5) {
      Scenario cand = res.minimal;
      cand.msgs = std::max(5, cand.msgs / 2);
      if (try_candidate(cand)) improved = true;
    }
  }
  return res;
}

}  // namespace myri::fi
