// Delta-debugging shrinker for failing chaos schedules.
//
// A randomized schedule that trips the oracle usually carries events that
// have nothing to do with the failure. The shrinker minimizes while
// preserving the failure signature (RunReport::failure_signature): it
// repeatedly re-runs candidate scenarios with events removed, fault
// windows halved, the node count reduced and the workload shortened,
// keeping every candidate that still fails the same way, until a fixpoint
// (or the attempt budget) is reached. The minimal scenario is written as
// a JSON repro artifact that examples/scenario_replay re-runs
// bit-identically.
#pragma once

#include "faultinject/scenario.hpp"

namespace myri::fi {

struct ShrinkResult {
  Scenario minimal;
  RunReport report;      // how `minimal` fails
  int attempts = 0;      // candidate runs executed
  int accepted = 0;      // candidates that kept the failure
};

class Shrinker {
 public:
  struct Config {
    int max_attempts = 300;
    ScenarioRunner::Options run{};
  };

  /// Minimize `failing` (which must fail when run; `original` is its
  /// report). Deterministic: same inputs, same minimal scenario.
  [[nodiscard]] static ShrinkResult shrink(const Scenario& failing,
                                           const RunReport& original,
                                           const Config& cfg);
  [[nodiscard]] static ShrinkResult shrink(const Scenario& failing,
                                           const RunReport& original) {
    return shrink(failing, original, Config{});
  }
};

}  // namespace myri::fi
