#include "faultinject/soak.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace myri::fi {

namespace {

/// One draw of a track's inter-arrival time: every/2 + uniform(every),
/// so arrivals are jittered but never closer than half the mean — the
/// spacing that keeps per-kind recoveries from piling onto each other.
sim::Time gap(sim::Rng& rng, sim::Time every) {
  return every / 2 + rng.below(every);
}

}  // namespace

Scenario make_soak_scenario(const SoakProfile& p) {
  Scenario s;
  s.seed = p.seed;
  s.nodes = p.nodes;
  s.fabric = p.fabric;
  s.radix = p.radix;
  s.mode = mcp::McpMode::kFtgm;
  s.msg_len = p.msg_len;
  s.send_gap = p.send_gap;
  s.drop = p.drop;
  s.corrupt = p.corrupt;
  s.check_window = p.window;
  s.retain_caches = p.retain_caches;
  s.horizon = Scenario::kWarmup + p.duration;

  // Ring streams sized to span the soak yet finish comfortably inside it
  // even after hang/outage stalls push their pacing clocks back.
  const sim::Time margin = std::max<sim::Time>(sim::sec(30), p.duration / 20);
  if (p.send_gap > 0 && p.duration > margin) {
    const std::uint64_t m = (p.duration - margin) / p.send_gap;
    s.msgs = static_cast<int>(std::clamp<std::uint64_t>(m, 1, 100'000));
  } else {
    s.msgs = 25;
  }

  // The generator's RNG stream is distinct from the cluster's (which is
  // seeded with s.seed directly), so schedule shape and link noise stay
  // independent draws of the same knob.
  sim::Rng rng(p.seed ^ 0x9e3779b97f4a7c15ull);

  // Every track stops with runway for its last recovery to clear before
  // the horizon. Too short for that: an idle (fault-free) soak.
  const sim::Time tail = sim::sec(16);
  if (p.duration <= tail) return s;
  const sim::Time end = p.duration - tail;

  auto push = [&s](ScenarioEvent ev, sim::Time offset) {
    ev.at = Scenario::kWarmup + offset;
    s.events.push_back(ev);
  };

  // -- NIC hangs: odd ring ids in [1, nodes-2]. Node 0 (mapper home and
  //    membership-stream sender) and the replace victim (nodes-1) are
  //    never hung; flips take the even ids so no node is ever hung and
  //    flipped at once.
  if (p.hang_every > 0 && p.nodes >= 4) {
    const std::uint64_t odd = static_cast<std::uint64_t>(p.nodes - 1) / 2;
    for (sim::Time t = gap(rng, p.hang_every); t < end;
         t += gap(rng, p.hang_every)) {
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::kNicHang;
      ev.node = static_cast<int>(1 + 2 * rng.below(odd));
      push(ev, t);
    }
  }

  // -- SRAM flips: even ring ids in [2, nodes-2].
  if (p.flip_every > 0 && p.nodes >= 6) {
    const std::uint64_t even = static_cast<std::uint64_t>(p.nodes - 2) / 2;
    for (sim::Time t = gap(rng, p.flip_every); t < end;
         t += gap(rng, p.flip_every)) {
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::kSramFlip;
      ev.node = static_cast<int>(2 + 2 * rng.below(even));
      ev.offset = static_cast<std::uint32_t>(rng.below(1 << 16));
      ev.bit = static_cast<unsigned>(rng.below(8));
      push(ev, t);
    }
  }

  // -- Trunk outages: down for cable_outage, then restored; the next cut
  //    waits out the restore plus settle time, so at most one trunk is
  //    ever missing (what ring/fat-tree redundancy tolerates).
  std::size_t trunks = 0;
  if (p.fabric != net::FabricPreset::kSingleSwitch) {
    sim::EventQueue eq;
    sim::Rng r(0);
    net::Topology topo(eq, r);
    const net::FabricBuilder fb(topo, {p.fabric, p.nodes, p.radix});
    trunks = fb.trunk_cables().size();
  }
  if (p.cable_every > 0 && p.cable_outage > 0 && trunks > 0) {
    sim::Time t = sim::msec(500) + rng.below(p.cable_every);
    while (t + p.cable_outage < end) {
      const int cable = static_cast<int>(rng.below(trunks));
      ScenarioEvent down;
      down.kind = ScenarioEvent::Kind::kCableDown;
      down.cable = cable;
      push(down, t);
      ScenarioEvent up;
      up.kind = ScenarioEvent::Kind::kCableUp;
      up.cable = cable;
      push(up, t + p.cable_outage);
      t += p.cable_outage + sim::msec(500) + gap(rng, p.cable_every);
    }
  }

  // -- Loss windows: elevated drop/corrupt for loss_len, never
  //    overlapping (baseline rates restore between windows).
  if (p.loss_every > 0 && p.loss_len > 0) {
    for (sim::Time t = gap(rng, p.loss_every); t + p.loss_len < end;
         t += std::max<sim::Time>(gap(rng, p.loss_every),
                                  p.loss_len + sim::msec(100))) {
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::kFaultWindow;
      ev.duration = p.loss_len;
      ev.drop = p.loss_drop;
      ev.corrupt = p.loss_corrupt;
      push(ev, t);
    }
  }

  // -- Membership churn: one joiner at a time. Join at t, drain it at
  //    t + churn/2, next join at t + churn — by then the drained port has
  //    been credited back (validate() charges the credit at drain +
  //    kRecoveryAllowance, hence the >= 10 s clamp). Joins and replaces
  //    share the membership-stream budget: stream sender ports on node 0
  //    are numbered 4 + k in a uint8_t, so the combined count is capped.
  int membership_streams = 0;
  constexpr int kMaxMembershipStreams = 180;
  if (p.churn_every > 0 && p.nodes >= 3) {
    const sim::Time churn = std::max<sim::Time>(p.churn_every, sim::sec(10));
    int next_id = p.nodes;
    for (sim::Time t = churn / 2; t + churn / 2 + sim::sec(8) < end;
         t += churn) {
      if (membership_streams >= kMaxMembershipStreams) break;
      ScenarioEvent join;
      join.kind = ScenarioEvent::Kind::kNodeJoin;
      push(join, t);
      ScenarioEvent drain;
      drain.kind = ScenarioEvent::Kind::kNodeDrain;
      drain.node = next_id++;
      push(drain, t + churn / 2);
      ++membership_streams;
    }
  }

  // -- Node replacement: always the same ring victim (nodes-1). Its two
  //    ring streams are abandoned on the first swap; the verification
  //    stream into each fresh spare proves it serves traffic.
  if (p.replace_every > 0 && p.nodes >= 3) {
    for (sim::Time t = gap(rng, p.replace_every); t < end;
         t += gap(rng, p.replace_every)) {
      if (membership_streams >= kMaxMembershipStreams) break;
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::kNodeReplace;
      ev.node = p.nodes - 1;
      push(ev, t);
      ++membership_streams;
    }
  }

  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

}  // namespace myri::fi
