// Long-horizon soak profiles: continuous background fault arrival.
//
// A soak is not a new execution engine — it is a Scenario generator. The
// profile describes per-kind mean inter-arrival times (NIC hangs, trunk
// cable outages, SRAM flips, link-loss windows, join/drain churn, node
// replacement) and make_soak_scenario() expands them, seed-
// deterministically, into one long Scenario: paced ring streams that span
// the whole run, windowed invariant checking (Scenario::check_window) so
// every fi::Oracle invariant plus the drift probes run each window
// instead of only at quiesce, and an explicit horizon.
//
// Because the output is an ordinary Scenario, everything downstream works
// unchanged: the runner executes it, a violation localizes to its check
// window, the Shrinker's window-granular passes cut a multi-virtual-hour
// failure down to a sub-minute repro, and the repro JSON replays
// bit-identically through scenario_replay.
//
// The generator keeps its schedules survivable by construction:
//   - hang and flip victims are disjoint (odd vs even ring ids) and never
//     node 0 (mapper home) or the replace victim,
//   - at most one trunk cable is down at any instant,
//   - loss windows never overlap,
//   - churn runs one joiner at a time: join, drain it churn/2 later, and
//     the next join waits for the drained port to come back (the 64-node
//     radix-10 fat-tree has exactly one spare port — recycling it is what
//     makes sustained churn possible at all),
//   - replacement always hits the same ring victim (its two ring streams
//     are abandoned on the first swap; later swaps are idempotent),
//   - all fault arrival stops with enough runway for the last recovery to
//     finish before the horizon.
#pragma once

#include "faultinject/scenario.hpp"

namespace myri::fi {

/// Knobs for one soak run. A rate of 0 disables that fault kind.
/// All `*_every` values are mean inter-arrival times; actual arrivals are
/// jittered as every/2 + uniform(every) off a deterministic sim::Rng.
struct SoakProfile {
  std::uint64_t seed = 1;
  // ---- topology ----
  int nodes = 64;
  net::FabricPreset fabric = net::FabricPreset::kFatTree;
  std::uint8_t radix = 10;
  // ---- time ----
  sim::Time duration = sim::sec(7200);   // virtual soak length
  sim::Time window = sim::msec(500);     // invariant check window
  // ---- workload: paced so streams span the soak ----
  sim::Time send_gap = sim::msec(250);
  std::uint32_t msg_len = 1800;
  // ---- baseline link noise ----
  double drop = 0.005;
  double corrupt = 0.002;
  // ---- fault arrival rates ----
  sim::Time hang_every = sim::sec(90);
  sim::Time cable_every = sim::sec(120);
  sim::Time cable_outage = sim::sec(10);
  sim::Time flip_every = sim::sec(150);
  sim::Time loss_every = sim::sec(60);
  sim::Time loss_len = sim::msec(50);
  double loss_drop = 0.10;
  double loss_corrupt = 0.05;
  /// Join/drain cycle period: a join fires, the joiner drains churn/2
  /// later, and the next join reuses the freed port. Values under ~10 s
  /// are clamped up so the drained port is credited back in time.
  sim::Time churn_every = sim::sec(60);
  sim::Time replace_every = sim::sec(300);
  // ---- test-only leak plant (satellite: prove the drift oracle) ----
  bool retain_caches = false;
};

/// Expand a profile into a runnable Scenario. Deterministic: equal
/// profiles produce equal scenarios (and therefore equal run digests).
[[nodiscard]] Scenario make_soak_scenario(const SoakProfile& p);

}  // namespace myri::fi
