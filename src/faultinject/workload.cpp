#include "faultinject/workload.hpp"

namespace myri::fi {

StreamWorkload::StreamWorkload(gm::Port& sender, gm::Port& receiver,
                               Config cfg)
    : sender_(sender), receiver_(receiver), cfg_(cfg) {
  recv_count_.assign(static_cast<std::size_t>(cfg_.total_msgs), 0);
}

void StreamWorkload::start() {
  started_ = true;
  // Receiver side: post buffers and verify arrivals.
  for (int i = 0; i < cfg_.recv_buffers; ++i) {
    provide_recv(receiver_.alloc_dma_buffer(cfg_.msg_len));
  }
  receiver_.set_receive_handler([this](const gm::RecvInfo& info) {
    verify(info);
    // Zero-copy discipline: hand the buffer straight back.
    provide_recv(info.buffer);
  });

  // Sender side: one pinned buffer per in-flight slot.
  for (int i = 0; i < cfg_.max_in_flight; ++i) {
    send_bufs_.push_back(sender_.alloc_dma_buffer(cfg_.msg_len));
    slot_busy_.push_back(false);
  }
  pump_sends();
}

void StreamWorkload::fill(const gm::Buffer& buf, int msg) {
  auto span = sender_.node().memory().at(buf.addr, cfg_.msg_len);
  for (std::uint32_t j = 0; j < span.size(); ++j) {
    span[j] = pattern(msg, j);
  }
  // Message index in the first 4 bytes (still matches pattern() in checks
  // below because verify() decodes it first).
  if (span.size() >= 4) {
    span[0] = static_cast<std::byte>(msg & 0xff);
    span[1] = static_cast<std::byte>((msg >> 8) & 0xff);
    span[2] = static_cast<std::byte>((msg >> 16) & 0xff);
    span[3] = static_cast<std::byte>((msg >> 24) & 0xff);
  }
}

void StreamWorkload::pump_sends() {
  while (!abandoned_ && next_msg_ < cfg_.total_msgs) {
    // Paced stream: wait out the gap since the last post. The pace timer
    // is separate from the 1 ms backoff retry so the cadence stays exact.
    if (cfg_.send_gap > 0) {
      const sim::Time now = sender_.node().event_queue().now();
      if (now < next_send_at_) {
        arm_pace(next_send_at_ - now);
        return;
      }
    }
    // Find a free slot.
    int slot = -1;
    for (std::size_t i = 0; i < slot_busy_.size(); ++i) {
      if (!slot_busy_[i]) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) return;  // all slots in flight; resume on a callback
    const int msg = next_msg_;
    fill(send_bufs_[static_cast<std::size_t>(slot)], msg);
    const gm::Status st = sender_.post(
        send_bufs_[static_cast<std::size_t>(slot)], cfg_.msg_len,
        {.dst = receiver_.node().id(),
         .dst_port = receiver_.id(),
         .priority = cfg_.priority,
         .callback =
             [this, slot](bool success) {
               slot_busy_[static_cast<std::size_t>(slot)] = false;
               if (success) {
                 ++sent_ok_;
               } else {
                 ++send_failures_;
               }
               pump_sends();
             }});
    if (st.code() == gm::Status::kRecovering ||
        st.code() == gm::Status::kUnreachable ||
        st.code() == gm::Status::kDraining) {
      // FAULT_DETECTED replay in progress, no route right now (cable
      // down, remap pending), or the destination is draining: no
      // completion callback is due to wake us, so come back on a timer
      // once the port reopens / routes return. (A draining destination
      // never reopens — the caller is expected to abandon or the stream
      // simply stalls until the horizon; established streams were
      // admitted before the drain and do not hit this path.)
      ++send_backoffs_;
      arm_retry();
      return;
    }
    if (!st) return;  // out of send tokens; resume on a callback
    slot_busy_[static_cast<std::size_t>(slot)] = true;
    ++next_msg_;
    if (cfg_.send_gap > 0) {
      next_send_at_ = sender_.node().event_queue().now() + cfg_.send_gap;
    }
  }
}

void StreamWorkload::arm_pace(sim::Time delay) {
  if (pace_armed_) return;
  pace_armed_ = true;
  sender_.node().event_queue().schedule_after(delay, [this] {
    pace_armed_ = false;
    pump_sends();
  });
}

void StreamWorkload::provide_recv(const gm::Buffer& buf) {
  if (!receiver_.provide_receive_buffer(buf, cfg_.priority)) {
    // Refused mid-recovery (or token-exhausted): park the buffer and
    // re-provide when the retry timer fires, so no capacity is leaked.
    recv_retry_.push_back(buf);
    arm_retry();
  }
}

void StreamWorkload::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  sender_.node().event_queue().schedule_after(sim::msec(1), [this] {
    retry_armed_ = false;
    std::vector<gm::Buffer> parked;
    parked.swap(recv_retry_);
    for (const gm::Buffer& b : parked) provide_recv(b);
    pump_sends();
  });
}

void StreamWorkload::verify(const gm::RecvInfo& info) {
  ++received_;
  auto span = receiver_.node().memory().at(info.buffer.addr, info.len);
  if (span.size() < 4 || info.len != cfg_.msg_len) {
    ++corrupted_;
    if (on_delivery_) on_delivery_(-1);
    return;
  }
  const int msg = std::to_integer<int>(span[0]) |
                  std::to_integer<int>(span[1]) << 8 |
                  std::to_integer<int>(span[2]) << 16 |
                  std::to_integer<int>(span[3]) << 24;
  if (msg < 0 || msg >= cfg_.total_msgs) {
    ++corrupted_;
    if (on_delivery_) on_delivery_(-1);
    return;
  }
  bool ok = true;
  for (std::uint32_t j = 4; j < span.size(); ++j) {
    if (span[j] != pattern(msg, j)) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    ++corrupted_;
    if (on_delivery_) on_delivery_(-1);
    return;
  }
  if (++recv_count_[static_cast<std::size_t>(msg)] > 1) ++duplicates_;
  if (on_delivery_) on_delivery_(msg);
}

int StreamWorkload::missing() const {
  int n = 0;
  for (int c : recv_count_) {
    if (c == 0) ++n;
  }
  return n;
}

bool StreamWorkload::complete() const {
  if (!started_) return false;
  for (int c : recv_count_) {
    if (c != 1) return false;
  }
  return corrupted_ == 0;
}

}  // namespace myri::fi
