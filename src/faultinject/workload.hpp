// Verified streaming workload for fault experiments.
//
// A sender port streams numbered, patterned messages to a receiver port;
// the receiver checks every byte and counts exact-once delivery. The
// workload is the oracle the fault-injection campaign classifies against:
// content mismatches => "messages corrupted", missing messages =>
// "other errors", double delivery => duplicates (must never survive FTGM
// recovery).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gm/node.hpp"
#include "gm/port.hpp"

namespace myri::fi {

class StreamWorkload {
 public:
  struct Config {
    int total_msgs = 30;
    std::uint32_t msg_len = 2048;
    std::uint8_t priority = 0;
    int recv_buffers = 16;
    int max_in_flight = 8;
    /// Minimum virtual time between message posts. 0 = pump at max rate
    /// (the classic short-schedule behavior). Soak mode paces streams so
    /// hours of virtual time cost background-traffic events, not a
    /// saturated fabric's.
    sim::Time send_gap = 0;
  };

  StreamWorkload(gm::Port& sender, gm::Port& receiver, Config cfg);

  /// Allocate buffers, arm the receiver, begin streaming.
  void start();

  /// Observer invoked for every delivered message with its decoded index
  /// (-1 when the payload failed verification). Fires for duplicates too,
  /// so a continuous oracle sees every delivery, not just the first. Must
  /// be set before start().
  void set_on_delivery(std::function<void(int msg)> obs) {
    on_delivery_ = std::move(obs);
  }

  [[nodiscard]] gm::Port& sender() noexcept { return sender_; }
  [[nodiscard]] gm::Port& receiver() noexcept { return receiver_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // ---- outcome counters ----
  [[nodiscard]] int sent_ok() const noexcept { return sent_ok_; }
  [[nodiscard]] int send_failures() const noexcept { return send_failures_; }
  /// Posts refused with a retryable Status (kRecovering during
  /// FAULT_DETECTED replay) and re-attempted on a timer.
  [[nodiscard]] int send_backoffs() const noexcept { return send_backoffs_; }
  [[nodiscard]] int received() const noexcept { return received_; }
  [[nodiscard]] int corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] int duplicates() const noexcept { return duplicates_; }
  [[nodiscard]] int missing() const;
  /// Every message received exactly once with correct contents.
  [[nodiscard]] bool complete() const;

  /// Give the stream up: its endpoint died for good (node replaced, card
  /// quarantined). Stops pumping new messages; outstanding GBN frames
  /// keep retransmitting into the dead route, which is the protocol's
  /// no-give-up contract, not the workload's problem. The runner skips
  /// abandoned streams in completion and quiescence checks.
  void abandon() { abandoned_ = true; }
  [[nodiscard]] bool abandoned() const noexcept { return abandoned_; }

  /// Expected byte at position j of message i.
  static std::byte pattern(int msg, std::uint32_t j) {
    return static_cast<std::byte>((msg * 131 + static_cast<int>(j) * 31 + 7) &
                                  0xff);
  }

 private:
  void pump_sends();
  void fill(const gm::Buffer& buf, int msg);
  void verify(const gm::RecvInfo& info);
  void provide_recv(const gm::Buffer& buf);
  void arm_retry();
  void arm_pace(sim::Time delay);

  gm::Port& sender_;
  gm::Port& receiver_;
  Config cfg_;
  std::vector<gm::Buffer> send_bufs_;   // one per in-flight slot
  std::vector<bool> slot_busy_;
  std::vector<int> recv_count_;         // per message index
  int next_msg_ = 0;
  int sent_ok_ = 0;
  int send_failures_ = 0;
  int send_backoffs_ = 0;
  int received_ = 0;
  int corrupted_ = 0;
  int duplicates_ = 0;
  bool started_ = false;
  bool abandoned_ = false;
  bool retry_armed_ = false;
  bool pace_armed_ = false;
  sim::Time next_send_at_ = 0;  // send_gap pacing cursor
  std::function<void(int)> on_delivery_;
  std::vector<gm::Buffer> recv_retry_;  // provides refused mid-recovery
};

}  // namespace myri::fi
