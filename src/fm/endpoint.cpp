#include "fm/endpoint.hpp"

#include <cstring>

namespace myri::fm {

namespace {
// Wire framing: byte 0 = handler id (0..15), or 0xff for a credit-return
// message whose byte 1 carries the credit count.
constexpr unsigned char kCreditMsg = 0xff;
constexpr std::size_t kHeaderBytes = 2;
}  // namespace

Endpoint::Endpoint(gm::Node& node, Config cfg) : node_(node), cfg_(cfg) {
  gm::Port::Config pc;
  pc.send_tokens = 32;
  pc.recv_tokens = 64;
  port_ = &node_.open_port(cfg_.gm_port, pc);
  // Bounce pool: enough posted buffers for every peer's credits; FM posts
  // them all up front.
  for (int i = 0; i < 32; ++i) {
    port_->provide_receive_buffer(
        port_->alloc_dma_buffer(cfg_.buf_size + kHeaderBytes));
  }
  for (int i = 0; i < 8; ++i) {
    staging_.push_back(port_->alloc_dma_buffer(cfg_.buf_size + kHeaderBytes));
  }
  port_->set_receive_handler(
      [this](const gm::RecvInfo& info) { on_message(info); });
}

void Endpoint::add_peer(net::NodeId peer) {
  send_credits_.try_emplace(peer, cfg_.credits_per_peer);
  owed_credits_.try_emplace(peer, 0);
}

void Endpoint::register_handler(int handler_id, Handler h) {
  handlers_[handler_id] = std::move(h);
}

sim::Time Endpoint::copy_cost(std::size_t bytes) const {
  // MB/s == bytes/us.
  return static_cast<sim::Time>(static_cast<double>(bytes) /
                                cfg_.copy_mb_per_s * 1000.0);
}

int Endpoint::credits_for(net::NodeId dst) const {
  auto it = send_credits_.find(dst);
  return it == send_credits_.end() ? 0 : it->second;
}

bool Endpoint::send(net::NodeId dst, int handler_id,
                    std::span<const std::byte> data) {
  if (data.size() > cfg_.buf_size) return false;
  auto cit = send_credits_.find(dst);
  if (cit == send_credits_.end()) return false;
  if (cit->second <= 0) {
    ++stats_.credit_stalls;
    return false;
  }
  if (staging_.empty()) {
    ++stats_.credit_stalls;
    return false;
  }
  --cit->second;
  ++stats_.sends;

  gm::Buffer slot = staging_.back();
  staging_.pop_back();
  // Host copy into the pinned staging slot (FM has no zero-copy path).
  auto dstspan = node_.memory().at(slot.addr, kHeaderBytes + data.size());
  dstspan[0] = static_cast<std::byte>(handler_id & 0xff);
  dstspan[1] = std::byte{0};
  std::memcpy(dstspan.data() + kHeaderBytes, data.data(), data.size());
  const sim::Time copy = copy_cost(data.size());
  stats_.copy_cpu_ns += copy + cfg_.credit_overhead;
  node_.cpu().run(copy + cfg_.credit_overhead, [] {});

  const gm::Status st = port_->post(
      slot, static_cast<std::uint32_t>(kHeaderBytes + data.size()),
      {.dst = dst, .dst_port = cfg_.gm_port, .callback = [this, slot](bool) {
         staging_.push_back(slot);
         drain_queue();
       }});
  if (!st) {
    // Token exhausted or port recovering: undo the credit/slot claim and
    // let the caller queue the message for a later drain.
    staging_.push_back(slot);
    ++send_credits_[dst];
    --stats_.sends;
    ++stats_.credit_stalls;
    return false;
  }
  return true;
}

void Endpoint::send_or_queue(net::NodeId dst, int handler_id,
                             std::span<const std::byte> data) {
  if (send(dst, handler_id, data)) return;
  queue_.push_back(
      {dst, handler_id, std::vector<std::byte>(data.begin(), data.end())});
}

void Endpoint::drain_queue() {
  while (!queue_.empty()) {
    Queued& q = queue_.front();
    if (!send(q.dst, q.handler_id, q.data)) return;
    queue_.pop_front();
  }
}

void Endpoint::on_message(const gm::RecvInfo& info) {
  auto bytes = node_.memory().at(info.buffer.addr, info.len);
  const auto tag = std::to_integer<unsigned char>(bytes[0]);
  if (tag == kCreditMsg) {
    // Credit return from a receiver: replenish and drain queued sends.
    const int n = std::to_integer<int>(bytes[1]);
    send_credits_[info.src] += n;
    port_->provide_receive_buffer(info.buffer);
    drain_queue();
    return;
  }

  // Data: copy OUT of the bounce buffer (the second host copy), then run
  // the handler on the copied view and return the credit.
  const std::size_t len = info.len - kHeaderBytes;
  std::vector<std::byte> data(bytes.begin() + kHeaderBytes, bytes.end());
  const sim::Time copy = copy_cost(len);
  stats_.copy_cpu_ns += copy + cfg_.credit_overhead;
  ++stats_.delivered;
  const net::NodeId src = info.src;
  port_->provide_receive_buffer(info.buffer);
  node_.cpu().run(copy + cfg_.credit_overhead,
                  [this, src, tag, data = std::move(data)] {
                    auto it = handlers_.find(tag);
                    if (it != handlers_.end() && it->second) {
                      it->second(src, data);
                    }
                  });

  // Batched explicit credit return (host-level flow control).
  int& owed = ++owed_credits_[src];
  if (owed >= cfg_.credit_return_batch) {
    return_credits(src, owed);
    owed = 0;
  }
}

void Endpoint::return_credits(net::NodeId to, int n) {
  if (staging_.empty()) {
    // No staging slot free for the credit message right now. Credit
    // messages must never consume send credits (that would deadlock the
    // flow control), so retry shortly instead of queueing behind data.
    node_.event_queue().schedule_after(sim::usec(5), [this, to, n] {
      return_credits(to, n);
    });
    return;
  }
  ++stats_.credit_returns;
  gm::Buffer slot = staging_.back();
  staging_.pop_back();
  auto bytes = node_.memory().at(slot.addr, 2);
  bytes[0] = std::byte{kCreditMsg};
  bytes[1] = std::byte{static_cast<unsigned char>(n)};
  node_.cpu().run(cfg_.credit_overhead, [] {});
  const gm::Status st =
      port_->post(slot, 2,
                  {.dst = to, .dst_port = cfg_.gm_port,
                   .callback = [this, slot](bool) {
                     staging_.push_back(slot);
                     drain_queue();
                   }});
  if (!st) {
    // Could not post the credit message (tokens busy / recovering): put
    // the slot back and retry on the same no-slot backoff path.
    --stats_.credit_returns;
    staging_.push_back(slot);
    node_.event_queue().schedule_after(sim::usec(5), [this, to, n] {
      return_credits(to, n);
    });
  }
}

}  // namespace myri::fm
