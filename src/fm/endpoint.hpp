// A miniature Fast Messages (FM)-style layer: the comparator protocol the
// paper names when discussing host-CPU overhead (Section 5.1: "This factor
// is most predominant in protocols employing a host-level credit scheme
// for flow control, such as FM").
//
// FM's design points, modelled here on top of the same GM substrate:
//  * handler-carrying messages: the sender names a handler id; the
//    receiving host runs the registered handler on arrival;
//  * host-level credit flow control: a sender must hold a credit for the
//    receiver's bounce-buffer pool before sending; the receiving host
//    returns credits explicitly once buffers are drained;
//  * no zero-copy: payloads are copied by the host into a pinned send
//    region on the way out and copied out of the bounce region on the way
//    in, charging host CPU proportional to message size.
//
// Because it sits on the unmodified GM/FTGM API, FM inherits FTGM's NIC
// fault tolerance for free — the paper's closing argument that "all these
// protocols can stand to gain from such a scheme".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "gm/node.hpp"
#include "gm/port.hpp"

namespace myri::fm {

struct EndpointStats {
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
  std::uint64_t credit_stalls = 0;    // sends deferred for lack of credit
  std::uint64_t credit_returns = 0;   // credit-return messages sent
  sim::Time copy_cpu_ns = 0;          // host CPU burnt copying payloads
};

class Endpoint {
 public:
  struct Config {
    std::uint8_t gm_port = 7;
    int credits_per_peer = 8;      // receiver bounce buffers per sender
    std::uint32_t buf_size = 2048; // FM packet/bounce-buffer size
    /// Host memcpy throughput for the copy-in/copy-out cost (a 2003-class
    /// host sustains a few hundred MB/s through the cache hierarchy).
    double copy_mb_per_s = 300.0;
    /// Fixed host cost of the credit bookkeeping per send/receive.
    sim::Time credit_overhead = sim::usecf(0.30);
    /// Return credits to a sender once this many accumulate.
    int credit_return_batch = 4;
  };

  using Handler = std::function<void(net::NodeId src,
                                     std::span<const std::byte> data)>;

  Endpoint(gm::Node& node, Config cfg);

  /// Register the handler run for messages carrying `handler_id` (0..15).
  void register_handler(int handler_id, Handler h);

  /// FM-style send: copies `data` into a pinned staging slot and ships it.
  /// Returns false when no credit (or staging slot) is available right
  /// now; the message is NOT queued — FM callers retry, typically from
  /// their own handler loop (use send_or_queue for convenience).
  bool send(net::NodeId dst, int handler_id, std::span<const std::byte> data);

  /// Convenience: queue internally when out of credits and drain as
  /// credits return.
  void send_or_queue(net::NodeId dst, int handler_id,
                     std::span<const std::byte> data);

  [[nodiscard]] int credits_for(net::NodeId dst) const;
  [[nodiscard]] const EndpointStats& stats() const noexcept { return stats_; }
  [[nodiscard]] gm::Port& port() noexcept { return *port_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_.id(); }

  /// Peers must be introduced before messaging (allocates credit state).
  void add_peer(net::NodeId peer);

 private:
  struct Queued {
    net::NodeId dst;
    int handler_id;
    std::vector<std::byte> data;
  };

  void on_message(const gm::RecvInfo& info);
  void return_credits(net::NodeId to, int n);
  void drain_queue();
  [[nodiscard]] sim::Time copy_cost(std::size_t bytes) const;

  gm::Node& node_;
  Config cfg_;
  gm::Port* port_;
  std::unordered_map<int, Handler> handlers_;
  std::unordered_map<net::NodeId, int> send_credits_;  // ours, per peer
  std::unordered_map<net::NodeId, int> owed_credits_;  // to each sender
  std::vector<gm::Buffer> staging_;                    // free send slots
  std::deque<Queued> queue_;
  EndpointStats stats_;
};

}  // namespace myri::fm
