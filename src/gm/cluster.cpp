#include "gm/cluster.hpp"

#include <stdexcept>
#include <string>

namespace myri::gm {

Cluster::Cluster(const ClusterConfig& cfg) : rng_(cfg.seed), cfg_(cfg) {
  if (cfg.nodes < 1) {
    throw std::invalid_argument("cluster needs at least one node");
  }
  topo_ = std::make_unique<net::Topology>(eq_, rng_);

  net::FabricConfig fc;
  fc.preset = cfg.fabric;
  fc.nodes = cfg.nodes;
  fc.radix = cfg.switch_ports;
  fabric_ = std::make_unique<net::FabricBuilder>(*topo_, fc);

  for (int i = 0; i < cfg.nodes; ++i) {
    Node::Config nc;
    nc.id = static_cast<net::NodeId>(i);
    nc.mode = cfg.mode;
    nc.timing = cfg.timing;
    nc.host_mem_bytes = cfg.host_mem_bytes;
    nc.send_window = cfg.send_window;
    nc.rto = cfg.rto;
    nc.ftgm_delayed_ack = cfg.ftgm_delayed_ack;
    nodes_.push_back(
        std::make_unique<Node>(eq_, nc, "node" + std::to_string(i)));
    const net::Placement& at = fabric_->placements()[i];
    nodes_.back()->attach(*topo_, at.sw, at.port);
    nodes_.back()->bind_metrics(metrics_);
  }
  topo_->set_all_faults(cfg.faults);
  topo_->bind_metrics(metrics_);

  if (cfg.install_routes) {
    // Pristine routes straight from the builder's graph (the mapper would
    // compute the same ones on an undamaged fabric, minus the discovery).
    // One BFS per source row: the per-pair route() would be O(n²) BFS,
    // which dominates construction from ~512 nodes up.
    for (int a = 0; a < cfg.nodes; ++a) {
      auto row = fabric_->routes_from(static_cast<net::NodeId>(a));
      for (int b = 0; b < cfg.nodes; ++b) {
        if (a == b || row[static_cast<std::size_t>(b)].empty()) continue;
        nodes_[a]->install_route(static_cast<net::NodeId>(b),
                                 std::move(row[static_cast<std::size_t>(b)]));
      }
    }
  }
  if (cfg.boot) {
    for (auto& n : nodes_) n->boot();
  }
}

void Cluster::set_trace(sim::Trace* t) {
  topo_->set_trace(t);
  for (auto& n : nodes_) n->set_trace(t);
}

}  // namespace myri::gm
