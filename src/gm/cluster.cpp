#include "gm/cluster.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace myri::gm {

Cluster::Cluster(const ClusterConfig& cfg) : rng_(cfg.seed), cfg_(cfg) {
  if (cfg.nodes < 1) {
    throw std::invalid_argument("cluster needs at least one node");
  }
  topo_ = std::make_unique<net::Topology>(eq_, rng_);

  net::FabricConfig fc;
  fc.preset = cfg.fabric;
  fc.nodes = cfg.nodes;
  fc.radix = cfg.switch_ports;
  fabric_ = std::make_unique<net::FabricBuilder>(*topo_, fc);

  for (int i = 0; i < cfg.nodes; ++i) {
    nodes_.push_back(build_node(static_cast<net::NodeId>(i),
                                "node" + std::to_string(i)));
    const net::Placement& at = fabric_->placements()[i];
    nodes_.back()->attach(*topo_, at.sw, at.port);
    nodes_.back()->bind_metrics(metrics_);
  }
  topo_->set_all_faults(cfg.faults);
  topo_->bind_metrics(metrics_);

  if (cfg.install_routes) {
    // Pristine routes straight from the builder's graph (the mapper would
    // compute the same ones on an undamaged fabric, minus the discovery).
    // One BFS per source row: the per-pair route() would be O(n²) BFS,
    // which dominates construction from ~512 nodes up.
    for (int a = 0; a < cfg.nodes; ++a) {
      auto row = fabric_->routes_from(static_cast<net::NodeId>(a));
      for (int b = 0; b < cfg.nodes; ++b) {
        if (a == b || row[static_cast<std::size_t>(b)].empty()) continue;
        nodes_[a]->install_route(static_cast<net::NodeId>(b),
                                 std::move(row[static_cast<std::size_t>(b)]));
      }
    }
  }
  if (cfg.boot) {
    for (auto& n : nodes_) n->boot();
  }

  std::vector<net::NodeId> seed;
  seed.reserve(nodes_.size());
  for (int i = 0; i < cfg.nodes; ++i) {
    seed.push_back(static_cast<net::NodeId>(i));
  }
  roster_.seed(seed, eq_.now());
  roster_.set_observer([this](const RosterEvent& ev) { on_roster_event(ev); });
  metrics_.gauge("cluster.membership_epoch")
      .set(static_cast<std::int64_t>(roster_.epoch()));
}

std::unique_ptr<Node> Cluster::build_node(net::NodeId id,
                                          const std::string& name) {
  Node::Config nc;
  nc.id = id;
  nc.mode = cfg_.mode;
  nc.timing = cfg_.timing;
  nc.host_mem_bytes = cfg_.host_mem_bytes;
  nc.send_window = cfg_.send_window;
  nc.rto = cfg_.rto;
  nc.ftgm_delayed_ack = cfg_.ftgm_delayed_ack;
  return std::make_unique<Node>(eq_, nc, name);
}

void Cluster::install_pristine_routes(net::NodeId id) {
  // Both directions: the new card's full row, and a route to it on every
  // existing member. A live mapper overwrites these at its next epoch.
  auto row = fabric_->routes_from(id);
  for (std::size_t b = 0; b < row.size(); ++b) {
    if (b == id || row[b].empty()) continue;
    nodes_[id]->install_route(static_cast<net::NodeId>(b),
                              std::move(row[b]));
  }
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    if (a == id || !roster_.is_member(static_cast<net::NodeId>(a))) continue;
    if (auto r = fabric_->route(static_cast<net::NodeId>(a), id)) {
      nodes_[a]->install_route(id, std::move(*r));
    }
  }
}

void Cluster::on_roster_event(const RosterEvent& ev) {
  metrics_.gauge("cluster.membership_epoch")
      .set(static_cast<std::int64_t>(roster_.epoch()));
  if (membership_listener_) membership_listener_(ev);
}

net::NodeId Cluster::add_node() {
  const auto at = fabric_->reserve_port();
  if (!at) {
    throw std::runtime_error("add_node: fabric has no free switch port");
  }
  const auto id = static_cast<net::NodeId>(nodes_.size());
  nodes_.push_back(build_node(id, "node" + std::to_string(id)));
  Node& n = *nodes_.back();
  // reattach, not attach: the port may be recycled from a retired node
  // (release_port in retire_now) whose endpoint is still plugged in, down.
  // On a virgin port reattach degrades to a plain attach.
  n.reattach(*topo_, at->sw, at->port);
  topo_->set_endpoint_faults(at->sw, at->port, cfg_.faults);
  n.bind_metrics(metrics_);
  if (cfg_.install_routes) install_pristine_routes(id);
  if (cfg_.boot) n.boot();
  roster_.join(id, eq_.now());
  return id;
}

void Cluster::drain_node(net::NodeId x, sim::Time quiet_window,
                         std::function<void(net::NodeId)> on_retired) {
  roster_.drain(x, eq_.now());  // throws if x is not a member
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (static_cast<net::NodeId>(i) == x) continue;
    nodes_[i]->set_dst_draining(x, true);
  }
  auto quiet_since = std::make_shared<sim::Time>(0);
  poll_drain(x, quiet_window, std::move(quiet_since), std::move(on_retired));
}

void Cluster::poll_drain(net::NodeId x, sim::Time quiet_window,
                         std::shared_ptr<sim::Time> quiet_since,
                         std::function<void(net::NodeId)> on_retired) {
  // Quiescent: no member still has unacked fragments in flight to x, and
  // x's own send streams are fully acknowledged. The quiet window guards
  // against sampling the gap between two fragments of a live stream.
  bool quiet = nodes_[x]->mcp().sends_quiescent();
  for (std::size_t i = 0; quiet && i < nodes_.size(); ++i) {
    if (static_cast<net::NodeId>(i) == x ||
        !roster_.is_member(static_cast<net::NodeId>(i))) {
      continue;
    }
    if (nodes_[i]->mcp().has_unacked_to(x)) quiet = false;
  }
  if (!quiet) {
    *quiet_since = 0;
  } else if (*quiet_since == 0) {
    *quiet_since = eq_.now();
  } else if (eq_.now() - *quiet_since >= quiet_window) {
    retire_now(x, std::move(on_retired));
    return;
  }
  eq_.schedule_after(sim::msec(1), [this, x, quiet_window, quiet_since,
                                    on_retired = std::move(on_retired)]() mutable {
    poll_drain(x, quiet_window, std::move(quiet_since),
               std::move(on_retired));
  });
}

void Cluster::retire_now(net::NodeId x,
                         std::function<void(net::NodeId)> on_retired) {
  const net::Placement& at = fabric_->placements()[x];
  topo_->set_endpoint_down(at.sw, at.port, true);
  // Give the switch port back: sustained join/drain churn (soak mode)
  // would otherwise exhaust the as-built free ports after a handful of
  // hot-adds. The retired card stays plugged into its (down) links until
  // a later add_node re-points the port.
  fabric_->release_port(x);
  roster_.retire(x, eq_.now());
  if (on_retired) on_retired(x);
}

Node& Cluster::replace_node(net::NodeId x) {
  if (!roster_.is_member(x)) {
    throw std::invalid_argument("replace_node: node " + std::to_string(x) +
                                " is not a member");
  }
  const net::Placement at = fabric_->placements()[x];
  // Quarantine the dead card: scheduled events may still hold pointers
  // into it, so it must outlive the simulation. Its cable is cut by
  // reattach_endpoint below.
  quarantined_.push_back(std::move(nodes_[x]));
  ++replace_gen_;
  nodes_[x] = build_node(x, "node" + std::to_string(x) + "r" +
                                std::to_string(replace_gen_));
  Node& spare = *nodes_[x];
  spare.reattach(*topo_, at.sw, at.port);
  topo_->set_endpoint_faults(at.sw, at.port, cfg_.faults);
  spare.bind_metrics(metrics_);
  if (cfg_.install_routes) install_pristine_routes(x);
  if (cfg_.boot) spare.boot();
  roster_.replace(x, eq_.now());
  return spare;
}

void Cluster::set_trace(sim::Trace* t) {
  topo_->set_trace(t);
  for (auto& n : nodes_) n->set_trace(t);
}

}  // namespace myri::gm
