#include "gm/cluster.hpp"

#include <stdexcept>

namespace myri::gm {

Cluster::Cluster(const ClusterConfig& cfg) : rng_(cfg.seed) {
  if (cfg.nodes < 1 || cfg.nodes > 8) {
    throw std::invalid_argument("cluster supports 1..8 nodes per switch");
  }
  topo_ = std::make_unique<net::Topology>(eq_, rng_);
  sw_ = topo_->add_switch(8, "sw0");

  for (int i = 0; i < cfg.nodes; ++i) {
    Node::Config nc;
    nc.id = static_cast<net::NodeId>(i);
    nc.mode = cfg.mode;
    nc.timing = cfg.timing;
    nc.host_mem_bytes = cfg.host_mem_bytes;
    nc.send_window = cfg.send_window;
    nc.rto = cfg.rto;
    nc.ftgm_delayed_ack = cfg.ftgm_delayed_ack;
    nodes_.push_back(
        std::make_unique<Node>(eq_, nc, "node" + std::to_string(i)));
    nodes_.back()->attach(*topo_, sw_, static_cast<std::uint8_t>(i));
    nodes_.back()->bind_metrics(metrics_);
  }
  topo_->set_all_faults(cfg.faults);
  topo_->bind_metrics(metrics_);

  if (cfg.install_routes) {
    // Node i sits on switch port i: the route a->b is the single byte [b].
    for (int a = 0; a < cfg.nodes; ++a) {
      for (int b = 0; b < cfg.nodes; ++b) {
        if (a == b) continue;
        nodes_[a]->install_route(static_cast<net::NodeId>(b),
                                 {static_cast<std::uint8_t>(b)});
      }
    }
  }
  if (cfg.boot) {
    for (auto& n : nodes_) n->boot();
  }
}

void Cluster::set_trace(sim::Trace* t) {
  topo_->set_trace(t);
  for (auto& n : nodes_) n->set_trace(t);
}

}  // namespace myri::gm
