// Convenience testbed: an N-node cluster on a preset multi-switch fabric.
//
// Mirrors the paper's experimental setup (two hosts on an M3M-SW8 switch)
// and scales well past one switch: the FabricBuilder assembles the preset
// (single switch, line, ring, 2-level fat-tree) and computes endpoint
// placement, so node count is no longer bounded by one switch's ports.
// Tests, benches and examples build on this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gm/node.hpp"
#include "gm/roster.hpp"
#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace myri::gm {

struct ClusterConfig {
  int nodes = 2;
  /// Fabric shape. Redundant presets (ring, fat-tree) are what the
  /// mapper-driven failover path reroutes across when a cable dies.
  net::FabricPreset fabric = net::FabricPreset::kSingleSwitch;
  std::uint8_t switch_ports = 8;  // edge-switch radix
  mcp::McpMode mode = mcp::McpMode::kGm;
  host::TimingConfig timing{};
  std::size_t host_mem_bytes = 8u << 20;
  std::uint64_t seed = 42;
  net::LinkFaults faults{};
  std::uint32_t send_window = 16;
  sim::Time rto = sim::usec(400);
  bool ftgm_delayed_ack = true;  // ablation knob (see Mcp::Config)
  bool install_routes = true;    // direct route setup (skip the mapper)
  bool boot = true;
  /// Event bound for run_until_idle(): long fat-tree runs raise it, short
  /// unit tests shrink it, nobody patches a magic constant.
  std::size_t max_events = 50'000'000;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  [[nodiscard]] sim::EventQueue& eq() noexcept { return eq_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] net::Topology& topo() noexcept { return *topo_; }
  /// The builder that laid the fabric out: placements, trunk cables
  /// (failover targets), preset tier count.
  [[nodiscard]] net::FabricBuilder& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  /// Cluster-wide observability: every node, link and switch publishes
  /// its accounting here. Benches merge() per-repeat registries and/or
  /// export Registry::to_json() for machine-readable baselines.
  [[nodiscard]] metrics::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(i); }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  /// The versioned membership roster: who is expected on the fabric, as
  /// of which membership epoch. The FailoverManager feeds members() to
  /// the mapper as the expected roster, and the chaos oracle checks the
  /// final map against the roster timeline.
  [[nodiscard]] const Roster& roster() const noexcept { return roster_; }

  /// Observer for membership deltas (one at a time, last wins). Fires on
  /// every roster mutation — join, drain, retire, replace — after the
  /// cluster has applied the physical change (node built, cable moved).
  void set_membership_listener(Roster::Observer l) {
    membership_listener_ = std::move(l);
  }

  // ---- elastic membership (all under traffic) ----

  /// Hot-plug a new node + cable at a free switch port. The node id is
  /// the next unused id; with install_routes the new node and the
  /// existing members get pristine routes immediately (a live mapper
  /// folds the node in and re-stamps everything at the next epoch).
  /// Throws std::runtime_error when the fabric has no free port.
  net::NodeId add_node();

  /// Drain `x`: stop admitting *new* streams to it (established ones
  /// finish exactly-once), then — once every member's traffic to it and
  /// its own sends have stayed quiescent for `quiet_window` — unplug its
  /// cable and retire it from the roster. Cooperative: callers stop
  /// initiating conversations with a draining node once in-flight ones
  /// complete. `on_retired` fires at retirement.
  void drain_node(net::NodeId x, sim::Time quiet_window = sim::msec(25),
                  std::function<void(net::NodeId)> on_retired = {});

  /// Replace a dead node with a spare: the spare takes over `x`'s switch
  /// port and NodeId. The old card is quarantined (its cable is cut — a
  /// late recovery transmits into an unplugged link). Returns the spare.
  Node& replace_node(net::NodeId x);

  /// Run the simulation for `d` of virtual time.
  void run_for(sim::Time d) {
    eq_.run_until(eq_.now() + d);
    publish_eq_metrics();
  }
  /// Run until the event queue drains, bounded against runaway loops by
  /// ClusterConfig::max_events (or an explicit non-zero override).
  std::size_t run_until_idle(std::size_t max_events = 0) {
    const std::size_t n = eq_.run(max_events != 0 ? max_events : cfg_.max_events);
    publish_eq_metrics();
    return n;
  }

  void set_trace(sim::Trace* t);

 private:
  // Event-core health, refreshed after every run slice: compaction sweeps
  // (cancelled-entry eviction) and the dead-entry backlog.
  void publish_eq_metrics() {
    metrics_.gauge("sim.eq_compactions")
        .set(static_cast<std::int64_t>(eq_.compactions()));
    metrics_.gauge("sim.eq_cancelled_pending")
        .set(static_cast<std::int64_t>(eq_.cancelled_pending()));
  }

  std::unique_ptr<Node> build_node(net::NodeId id, const std::string& name);
  void install_pristine_routes(net::NodeId id);
  void on_roster_event(const RosterEvent& ev);
  void poll_drain(net::NodeId x, sim::Time quiet_window,
                  std::shared_ptr<sim::Time> quiet_since,
                  std::function<void(net::NodeId)> on_retired);
  void retire_now(net::NodeId x, std::function<void(net::NodeId)> on_retired);

  sim::EventQueue eq_;
  sim::Rng rng_;
  ClusterConfig cfg_;
  metrics::Registry metrics_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<net::FabricBuilder> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Replaced cards: destroying a Node mid-simulation is unsafe (scheduled
  // events hold component pointers), so the old card lives on, unplugged.
  std::vector<std::unique_ptr<Node>> quarantined_;
  Roster roster_;
  Roster::Observer membership_listener_;
  std::uint32_t replace_gen_ = 0;  // unique names for spare cards
};

}  // namespace myri::gm
