// Host-CPU cost model.
//
// GM's user library runs on the host processor; its per-call overhead is
// one of the paper's three principal metrics (Table 2: host utilization).
// All library work serializes through this object so concurrent API calls
// queue like they would on one CPU, and busy_ns() gives the utilization
// benches their numerator.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace myri::gm {

class HostCpu {
 public:
  explicit HostCpu(sim::EventQueue& eq) : eq_(eq) {}

  /// Occupy the CPU for `cost`, then run `then`.
  void run(sim::Time cost, std::function<void()> then) {
    const sim::Time start = std::max(eq_.now(), busy_until_);
    busy_until_ = start + cost;
    busy_ns_ += cost;
    eq_.schedule_at(busy_until_, std::move(then));
  }

  [[nodiscard]] sim::Time busy_ns() const noexcept { return busy_ns_; }

  /// Benches snapshot-and-diff: reset the accumulated busy time.
  void reset_busy() noexcept { busy_ns_ = 0; }

 private:
  sim::EventQueue& eq_;
  sim::Time busy_until_ = 0;
  sim::Time busy_ns_ = 0;
};

}  // namespace myri::gm
