#include "gm/node.hpp"

namespace myri::gm {

namespace {
// The first MB of host memory stands in for kernel space; the pinned pool
// for user DMA buffers starts above it. Wild DMA writes below the pool (or
// to any unpinned range) trip the host-crash detector.
constexpr host::DmaAddr kPinnedBase = 1u << 20;

mcp::Mcp::Config make_mcp_config(const Node::Config& cfg) {
  mcp::Mcp::Config m;
  m.mode = cfg.mode;
  m.timing = cfg.timing;
  m.send_window = cfg.send_window;
  m.rto = cfg.rto;
  m.ftgm_delayed_ack = cfg.ftgm_delayed_ack;
  return m;
}

lanai::Nic::Config make_nic_config(const Node::Config& cfg) {
  lanai::Nic::Config n;
  n.sram_bytes = cfg.sram_bytes;
  n.timing = cfg.timing.lanai;
  return n;
}
}  // namespace

Node::Node(sim::EventQueue& eq, Config cfg, std::string name)
    : eq_(eq),
      cfg_(cfg),
      name_(std::move(name)),
      hmem_(cfg.host_mem_bytes),
      pinned_(kPinnedBase, cfg.host_mem_bytes - kPinnedBase),
      pci_(eq, cfg.timing.pci),
      irq_(eq, cfg.timing.irq),
      cpu_(eq),
      nic_(eq, make_nic_config(cfg), name_ + ".nic"),
      mcp_(nic_, pci_, hmem_, make_mcp_config(cfg)),
      driver_(nic_, mcp_, irq_, cfg.timing) {
  nic_.set_node_id(cfg.id);
  nic_.attach_host(hmem_, pci_, irq_);
  nic_.set_pinned_checker([this](host::DmaAddr a, std::size_t l) {
    return pinned_.is_pinned(a, l);
  });
  nic_.set_host_crash_handler([this] { crashed_ = true; });
  if (cfg.mode == mcp::McpMode::kFtgm) {
    core::Ftd::Config fc;
    fc.timing = cfg.timing.recovery;
    ftd_ = std::make_unique<core::Ftd>(eq_, driver_, fc);
  }
}

void Node::attach(net::Topology& topo, std::uint16_t sw, std::uint8_t port) {
  net::Link& up = topo.attach_endpoint(nic_, sw, port, name_);
  nic_.attach_uplink(up);
}

void Node::reattach(net::Topology& topo, std::uint16_t sw,
                    std::uint8_t port) {
  net::Link& up = topo.reattach_endpoint(nic_, sw, port, name_);
  nic_.attach_uplink(up);
}

void Node::boot() {
  driver_.install(this);
  if (ftd_) {
    ftd_->set_open_ports_provider([this] { return open_ports(); });
    ftd_->set_fault_event_sink([this](std::uint8_t p) {
      if (ports_[p]) {
        mcp::EventRecord ev;
        ev.type = mcp::EventType::kFaultDetected;
        ev.port = p;
        ports_[p]->push_event(ev);
      }
    });
    ftd_->start();
  }
}

Port& Node::open_port(std::uint8_t id, Port::Config cfg) {
  ports_.at(id) = std::make_unique<Port>(*this, id, cfg);
  if (metrics_ != nullptr) {
    ports_[id]->bind_metrics(*metrics_,
                             name_ + ".port" + std::to_string(id));
  }
  driver_.open_port(id);
  return *ports_[id];
}

void Node::close_port(std::uint8_t id) {
  driver_.close_port(id);
  pht_.unmap_port(id);
  ports_.at(id).reset();
}

Port* Node::port(std::uint8_t id) {
  return id < ports_.size() ? ports_[id].get() : nullptr;
}

std::vector<std::uint8_t> Node::open_ports() const {
  std::vector<std::uint8_t> out;
  for (std::uint8_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i]) out.push_back(i);
  }
  return out;
}

void Node::post_event(std::uint8_t port, const mcp::EventRecord& ev) {
  if (port < ports_.size() && ports_[port]) ports_[port]->push_event(ev);
}

std::optional<host::DmaAddr> Node::translate(std::uint8_t port,
                                             std::uint64_t vaddr) {
  return pht_.lookup(port, vaddr);
}

void Node::set_trace(sim::Trace* t) {
  nic_.set_trace(t);
  mcp_.set_trace(t);
  if (ftd_) ftd_->set_trace(t);
}

void Node::bind_metrics(metrics::Registry& reg) {
  metrics_ = &reg;
  mcp_.bind_metrics(reg, name_ + ".mcp");
  if (ftd_) ftd_->bind_metrics(reg, name_ + ".ftd");
  for (std::uint8_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i]) {
      ports_[i]->bind_metrics(reg, name_ + ".port" + std::to_string(i));
    }
  }
}

std::optional<host::DmaAddr> Node::alloc_pinned(std::uint32_t size) {
  return pinned_.alloc(size);
}

}  // namespace myri::gm
