// A complete cluster node: host, NIC, MCP, driver, GM library glue.
//
// Owns every per-node component and wires them together the way Figure 1/2
// of the paper arranges them: HostMemory + pinned pool + page hash table on
// the host side; PCI bus and interrupt controller between; the LANai NIC
// running the MCP on the card; the Driver and (in FTGM mode) the FTD as
// host software. Implements mcp::HostIface so the MCP can post events into
// port receive queues and translate DMA addresses.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/ftd.hpp"
#include "gm/host_cpu.hpp"
#include "gm/port.hpp"
#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/pci.hpp"
#include "host/timing.hpp"
#include "lanai/nic.hpp"
#include "mcp/mcp.hpp"
#include "metrics/registry.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace myri::gm {

class Node final : public mcp::HostIface {
 public:
  struct Config {
    net::NodeId id = 0;
    mcp::McpMode mode = mcp::McpMode::kGm;
    host::TimingConfig timing{};
    std::size_t host_mem_bytes = 64u << 20;
    std::uint32_t send_window = 16;
    sim::Time rto = sim::usec(400);
    std::size_t sram_bytes = 1u << 20;
    bool ftgm_delayed_ack = true;  // ablation knob (see Mcp::Config)
  };

  Node(sim::EventQueue& eq, Config cfg, std::string name);

  /// Cable this node's NIC to a switch port.
  void attach(net::Topology& topo, std::uint16_t sw, std::uint8_t sw_port);

  /// Cable this node's NIC to a switch port that already had an endpoint:
  /// the spare takes over a dead card's cable (Cluster::replace_node).
  void reattach(net::Topology& topo, std::uint16_t sw, std::uint8_t sw_port);

  /// Load the driver + MCP; in FTGM mode also start the FTD.
  void boot();

  /// gm_open: open a GM port (0..7).
  Port& open_port(std::uint8_t id, Port::Config cfg = {});
  void close_port(std::uint8_t id);
  [[nodiscard]] Port* port(std::uint8_t id);
  [[nodiscard]] std::vector<std::uint8_t> open_ports() const;

  /// Install a route on the card and in the driver mirror (used by tests
  /// and benches; real deployments learn routes from the mapper).
  void install_route(net::NodeId dst, std::vector<std::uint8_t> route) {
    driver_.install_route(dst, std::move(route));
  }

  /// True once a route to `dst` is known (installed directly or learnt
  /// from the mapper). Port::post() refuses kUnreachable destinations.
  [[nodiscard]] bool has_route(net::NodeId dst) const {
    return driver_.route_mirror().count(dst) != 0;
  }

  /// True while this node knows a newer route epoch exists than the one
  /// it holds. Port::post() returns kRecovering until the re-push lands.
  [[nodiscard]] bool routes_stale() const {
    return driver_.routes_suspect();
  }
  /// Last route epoch this node holds completely (0 = pre-mapper routes).
  [[nodiscard]] std::uint32_t route_epoch() const {
    return driver_.route_epoch();
  }

  /// Membership drain gate (see core::Driver): Port::post() refuses new
  /// streams to a draining destination with kDraining.
  void set_dst_draining(net::NodeId dst, bool d) {
    driver_.set_dst_draining(dst, d);
  }
  [[nodiscard]] bool dst_draining(net::NodeId dst) const {
    return driver_.dst_draining(dst);
  }

  // ---- mcp::HostIface ----
  void post_event(std::uint8_t port, const mcp::EventRecord& ev) override;
  std::optional<host::DmaAddr> translate(std::uint8_t port,
                                         std::uint64_t vaddr) override;
  std::uint32_t map_route_update(const net::RouteUpdate& update,
                                 net::NodeId from) override {
    return driver_.map_route_update(update, from);
  }

  // ---- component access ----
  [[nodiscard]] sim::EventQueue& event_queue() noexcept { return eq_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] net::NodeId id() const noexcept { return cfg_.id; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] HostCpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] host::HostMemory& memory() noexcept { return hmem_; }
  [[nodiscard]] host::PinnedAllocator& pinned() noexcept { return pinned_; }
  [[nodiscard]] host::PageHashTable& page_hash() noexcept { return pht_; }
  [[nodiscard]] host::PciBus& pci() noexcept { return pci_; }
  [[nodiscard]] host::InterruptController& irq() noexcept { return irq_; }
  [[nodiscard]] lanai::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] mcp::Mcp& mcp() noexcept { return mcp_; }
  [[nodiscard]] core::Driver& driver() noexcept { return driver_; }
  [[nodiscard]] core::Ftd& ftd() noexcept { return *ftd_; }
  [[nodiscard]] bool has_ftd() const noexcept { return ftd_ != nullptr; }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  void set_trace(sim::Trace* t);

  /// Publish every component's accounting into `reg` under "<name>.*"
  /// (mcp, ftd, and each port as it is opened).
  void bind_metrics(metrics::Registry& reg);
  [[nodiscard]] metrics::Registry* metrics() noexcept { return metrics_; }

  /// Allocate pinned host memory (page-registered separately per port).
  std::optional<host::DmaAddr> alloc_pinned(std::uint32_t size);

 private:
  sim::EventQueue& eq_;
  Config cfg_;
  std::string name_;
  host::HostMemory hmem_;
  host::PinnedAllocator pinned_;
  host::PageHashTable pht_;
  host::PciBus pci_;
  host::InterruptController irq_;
  HostCpu cpu_;
  lanai::Nic nic_;
  mcp::Mcp mcp_;
  core::Driver driver_;
  std::unique_ptr<core::Ftd> ftd_;
  std::array<std::unique_ptr<Port>, mcp::kMaxPorts> ports_{};
  bool crashed_ = false;
  metrics::Registry* metrics_ = nullptr;
};

}  // namespace myri::gm
