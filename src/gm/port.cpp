#include "gm/port.hpp"

#include "gm/node.hpp"

namespace myri::gm {

Port::Port(Node& node, std::uint8_t id, Config cfg)
    : node_(node),
      id_(id),
      cfg_(cfg),
      send_tokens_free_(cfg.send_tokens),
      recv_tokens_free_(cfg.recv_tokens) {}

bool Port::ftgm() const {
  return node_.config().mode == mcp::McpMode::kFtgm;
}

void Port::bind_metrics(metrics::Registry& reg, const std::string& prefix) {
  const std::string p = prefix + '.';
  m_.sends_posted = &reg.counter(p + "sends_posted");
  m_.sends_completed = &reg.counter(p + "sends_completed");
  m_.msgs_received = &reg.counter(p + "msgs_received");
  m_.bytes_sent = &reg.counter(p + "bytes_sent");
  m_.bytes_received = &reg.counter(p + "bytes_received");
  m_.send_cpu_ns = &reg.counter(p + "send_cpu_ns");
  m_.recv_cpu_ns = &reg.counter(p + "recv_cpu_ns");
  m_.recoveries = &reg.counter(p + "recoveries");
  m_.send_tokens_in_flight = &reg.gauge(p + "send_tokens_in_flight");
  m_.recv_tokens_posted = &reg.gauge(p + "recv_tokens_posted");
  m_.event_queue_depth = &reg.gauge(p + "event_queue_depth");
  m_.replay_ns = &reg.histogram(p + "recovery.replay_ns");
}

void Port::sync_token_gauges() {
  metrics::level(m_.send_tokens_in_flight,
                 static_cast<std::int64_t>(cfg_.send_tokens) -
                     static_cast<std::int64_t>(send_tokens_free_));
  metrics::level(m_.recv_tokens_posted,
                 static_cast<std::int64_t>(cfg_.recv_tokens) -
                     static_cast<std::int64_t>(recv_tokens_free_));
}

Buffer Port::alloc_dma_buffer(std::uint32_t size) {
  auto addr = node_.alloc_pinned(size);
  if (!addr) return {};
  // Register every page of the buffer in the page hash table so the MCP
  // can translate and DMA it (virtual == DMA address in this model, but
  // the mapping must exist or the MCP refuses the transfer).
  for (host::DmaAddr page = *addr / host::kPageSize * host::kPageSize;
       page < *addr + size; page += host::kPageSize) {
    node_.page_hash().map(id_, page, page);
  }
  return Buffer{*addr, size};
}

Status Port::post(const Buffer& buf, std::uint32_t len, SendOptions opts) {
  mcp::SendRequest req;
  req.dst = opts.dst;
  req.dst_port = opts.dst_port;
  req.priority = opts.priority;
  if (opts.remote_vaddr) {
    req.directed = true;
    req.target_vaddr = *opts.remote_vaddr;
  }
  return submit_send(buf, len, std::move(req), std::move(opts.callback));
}

Status Port::submit_send(const Buffer& buf, std::uint32_t len,
                         mcp::SendRequest req, SendCallback cb) {
  if (!buf.valid() || len > buf.size || req.dst == net::kInvalidNode) {
    return Status::kInvalidArg;
  }
  if (recovering_) return Status::kRecovering;
  // The card came back from a reload but this port's FAULT_DETECTED has
  // not been dispatched yet (the FTD is still restoring tables), so the
  // on-card port is closed and a post would be refused after the host
  // already allocated its FTGM sequence block — a hole in the stream's
  // sequence space that no retransmission can ever fill. Back off like
  // any other recovery window. Posts while the card is hung or unloaded
  // are unaffected: those land in the backup store and replay intact.
  if (ftgm() && node_.mcp().loaded() && !node_.mcp().hung() &&
      !node_.mcp().port_open(id_)) {
    return Status::kRecovering;
  }
  // A remap declared this node's installed routes stale and the fresh
  // epoch has not fully landed yet: refuse instead of launching onto a
  // route that may cross a dead trunk (callers back off and retry).
  if (node_.routes_stale()) return Status::kRecovering;
  if (!node_.has_route(req.dst)) return Status::kUnreachable;
  // A draining destination accepts traffic only from streams established
  // before the drain began: in-flight conversations finish exactly-once,
  // new ones are refused so the node can quiesce and retire.
  if (node_.dst_draining(req.dst) && active_dsts_.count(req.dst) == 0) {
    return Status::kDraining;
  }
  if (send_tokens_free_ == 0) return Status::kNoSendToken;
  active_dsts_.insert(req.dst);
  --send_tokens_free_;
  ++stats_.sends_posted;
  stats_.bytes_sent += len;
  metrics::bump(m_.sends_posted);
  metrics::bump(m_.bytes_sent, len);
  sync_token_gauges();

  req.port = id_;
  req.host_addr = buf.addr;
  req.len = len;
  req.token_id = next_token_id_++;
  req.msg_id = next_msg_id_++;
  const net::NodeId dst = req.dst;

  const auto& t = node_.config().timing;
  sim::Time cost = t.hostt.send_api_overhead;
  if (ftgm()) {
    // Host-generated sequence numbers and the send-token copy: the whole
    // "continuous checkpointing" cost on the send side (paper: ~0.25 us).
    const std::uint32_t nfrags =
        len == 0 ? 1u
                 : (len + net::kMaxPacketPayload - 1) / net::kMaxPacketPayload;
    req.seq_first = backup_.alloc_seq_block(dst, nfrags);
    backup_.add_send(req);
    cost += t.hostt.ftgm_send_backup;
    cost += t.hostt.ftgm_seq_sync;  // 0 in the chosen per-port design
  }
  if (cb) send_callbacks_[req.token_id] = std::move(cb);
  stats_.send_cpu_ns += cost;
  metrics::bump(m_.send_cpu_ns, cost);

  // The Node outlives every Port; capture it rather than `this` so a
  // gm_close between the charge and the PIO cannot dangle.
  Node* n = &node_;
  node_.cpu().run(cost, [n, req] {
    n->pci().pio([n, req] {
      n->mcp().host_post_send(req);
      n->nic().ring_doorbell();
    });
  });
  return Status::kOk;
}

Status Port::get_with_callback(const Buffer& local, std::uint32_t len,
                               net::NodeId dst, std::uint8_t dst_port,
                               std::uint32_t remote_vaddr, SendCallback cb) {
  if (!local.valid() || len > local.size || dst == net::kInvalidNode) {
    return Status::kInvalidArg;
  }
  if (recovering_) return Status::kRecovering;
  if (node_.routes_stale()) return Status::kRecovering;
  if (!node_.has_route(dst)) return Status::kUnreachable;
  if (node_.dst_draining(dst) && active_dsts_.count(dst) == 0) {
    return Status::kDraining;
  }
  active_dsts_.insert(dst);
  mcp::GetRequest g;
  g.port = id_;
  g.dst = dst;
  g.dst_port = dst_port;
  g.remote_vaddr = remote_vaddr;
  g.local_vaddr = static_cast<std::uint32_t>(local.addr);
  g.len = len;
  g.correlation = next_token_id_++;
  pending_gets_[g.correlation] = PendingGet{g, std::move(cb), 0};
  issue_get(g.correlation);
  return Status::kOk;
}

void Port::issue_get(std::uint32_t correlation) {
  auto it = pending_gets_.find(correlation);
  if (it == pending_gets_.end()) return;
  PendingGet& pg = it->second;
  if (pg.attempts >= 12) {
    auto cb = std::move(pg.cb);
    pending_gets_.erase(it);
    if (cb) cb(false);
    return;
  }
  ++pg.attempts;
  const mcp::GetRequest req = pg.req;
  Node* n = &node_;
  node_.cpu().run(node_.config().timing.hostt.send_api_overhead, [n, req] {
    n->pci().pio([n, req] {
      n->mcp().host_post_get(req);
      n->nic().ring_doorbell();
    });
  });
  // Idempotent retry with exponential backoff: lost requests or responses
  // are reissued, and the total budget (~2.5 s) outlasts a full FTGM NIC
  // recovery on either end of the path.
  const sim::Time delay =
      std::min<sim::Time>(sim::msec(2) << (pg.attempts - 1), sim::msec(800));
  node_.event_queue().schedule_after(
      delay, guarded([this, correlation] { issue_get(correlation); }));
}

Status Port::provide_receive_buffer(const Buffer& buf,
                                    std::uint8_t priority) {
  if (!buf.valid()) return Status::kInvalidArg;
  // During FAULT_DETECTED replay the recv-token queue is rebuilt from the
  // BackupStore; accepting a fresh token here would double-post it (once
  // now, once from the backup copy the replay is about to install).
  if (recovering_) return Status::kRecovering;
  if (recv_tokens_free_ == 0) return Status::kNoRecvToken;
  --recv_tokens_free_;
  sync_token_gauges();

  mcp::RecvToken tok;
  tok.port = id_;
  tok.host_addr = buf.addr;
  tok.size = buf.size;
  tok.priority = priority;
  tok.token_id = next_token_id_++;
  recv_buffers_[tok.token_id] = buf;
  recv_priorities_[tok.token_id] = priority;
  if (ftgm()) backup_.add_recv(tok);

  Node* n = &node_;
  node_.cpu().run(sim::usecf(0.10), [n, tok] {
    n->pci().pio([n, tok] {
      n->mcp().host_provide_recv_token(tok);
      n->nic().ring_doorbell();
    });
  });
  return Status::kOk;
}

void Port::set_alarm(sim::Time delay, std::function<void()> handler) {
  const std::uint32_t aid = next_alarm_id_++;
  alarms_[aid] = std::move(handler);
  node_.mcp().host_set_alarm(id_, delay, aid);
}

void Port::push_event(const mcp::EventRecord& ev) {
  queue_.push_back(ev);
  metrics::level(m_.event_queue_depth,
                 static_cast<std::int64_t>(queue_.size()));
  if (!pump_armed_) {
    pump_armed_ = true;
    node_.event_queue().schedule_after(
        node_.config().timing.hostt.poll_interval,
        guarded([this] { pump(); }));
  }
}

void Port::pump() {
  if (queue_.empty()) {
    pump_armed_ = false;
    return;
  }
  const mcp::EventRecord ev = queue_.front();
  queue_.pop_front();
  metrics::level(m_.event_queue_depth,
                 static_cast<std::int64_t>(queue_.size()));

  const auto& t = node_.config().timing;
  sim::Time cost;
  switch (ev.type) {
    case mcp::EventType::kRecv:
      // The paper's per-receive host cost; FTGM adds two hash-table
      // updates (recv-token copy + ACK-number table, ~0.40 us).
      cost = t.hostt.recv_api_overhead;
      if (ftgm()) cost += t.hostt.ftgm_recv_backup;
      stats_.recv_cpu_ns += cost;
      metrics::bump(m_.recv_cpu_ns, cost);
      break;
    case mcp::EventType::kSent:
      cost = sim::usecf(0.15);  // callback dispatch only
      break;
    default:
      cost = sim::usecf(0.10);
      break;
  }
  node_.cpu().run(cost, guarded([this, ev] {
                    dispatch(ev);
                    pump();
                  }));
}

void Port::dispatch(const mcp::EventRecord& ev) {
  ++stats_.events_dispatched;
  switch (ev.type) {
    case mcp::EventType::kRecv: {
      if (ftgm()) {
        backup_.note_recv_seq(ev.peer, ev.stream, ev.seq);
        backup_.remove_recv(ev.token_id);
      }
      ++recv_tokens_free_;
      ++stats_.msgs_received;
      stats_.bytes_received += ev.len;
      metrics::bump(m_.msgs_received);
      metrics::bump(m_.bytes_received, ev.len);
      sync_token_gauges();
      RecvInfo info;
      auto it = recv_buffers_.find(ev.token_id);
      if (it != recv_buffers_.end()) {
        info.buffer = it->second;
        recv_buffers_.erase(it);
      }
      auto pit = recv_priorities_.find(ev.token_id);
      if (pit != recv_priorities_.end()) {
        info.priority = pit->second;
        recv_priorities_.erase(pit);
      }
      info.len = ev.len;
      info.src = ev.peer;
      info.src_port = ev.peer_port;
      if (recv_handler_) recv_handler_(info);
      break;
    }
    case mcp::EventType::kSent: {
      // The backup copy is removed just before the callback is invoked
      // (paper Section 4.1).
      if (ftgm()) backup_.remove_send(ev.token_id);
      ++send_tokens_free_;
      ++stats_.sends_completed;
      metrics::bump(m_.sends_completed);
      sync_token_gauges();
      auto it = send_callbacks_.find(ev.token_id);
      if (it != send_callbacks_.end()) {
        auto cb = std::move(it->second);
        send_callbacks_.erase(it);
        cb(true);
      }
      break;
    }
    case mcp::EventType::kGot: {
      if (ftgm()) backup_.note_recv_seq(ev.peer, ev.stream, ev.seq);
      auto it = pending_gets_.find(ev.msg_id);
      if (it != pending_gets_.end()) {
        auto cb = std::move(it->second.cb);
        pending_gets_.erase(it);
        if (cb) cb(true);
      }
      break;
    }
    case mcp::EventType::kAlarm: {
      ++stats_.alarms;
      auto it = alarms_.find(ev.token_id);
      if (it != alarms_.end()) {
        auto h = std::move(it->second);
        alarms_.erase(it);
        if (h) h();
      }
      break;
    }
    default:
      unknown(ev);
      break;
  }
}

void Port::unknown(const mcp::EventRecord& ev) {
  // gm_unknown(): the default handler for GM-internal events. FTGM's
  // transparency hinges on hooking FAULT_DETECTED here (paper Section 4.4).
  switch (ev.type) {
    case mcp::EventType::kFaultDetected:
      if (ftgm()) handle_fault_detected();
      break;
    case mcp::EventType::kSendError: {
      ++stats_.send_errors;
      if (ftgm()) backup_.remove_send(ev.token_id);
      ++send_tokens_free_;
      sync_token_gauges();
      auto it = send_callbacks_.find(ev.token_id);
      if (it != send_callbacks_.end()) {
        auto cb = std::move(it->second);
        send_callbacks_.erase(it);
        cb(false);
      }
      break;
    }
    default:
      break;
  }
}

void Port::handle_fault_detected() {
  recovering_ = true;
  ++recoveries_;
  metrics::bump(m_.recoveries);
  recover_started_ = node_.event_queue().now();

  // The handler's execution time dominates per-process recovery (paper
  // Table 3: ~900 ms): port teardown/reopen handshakes, pinned-page
  // revalidation, receive-queue rebuild, plus per-item restore costs.
  const auto& rt = node_.config().timing.recovery;
  sim::Time cost = rt.per_process_base;
  cost += rt.per_send_token_restore * backup_.send_count();
  cost += rt.per_recv_token_restore * backup_.recv_count();
  cost += rt.per_stream_restore * backup_.ack_table().size();

  node_.cpu().run(cost, guarded([this] {
    auto& m = node_.mcp();
    // 1. Restore the LANai's receive-token queue from our copies.
    for (const auto& tok : backup_.recvs()) {
      m.host_provide_recv_token(tok);
    }
    // 2. Update the LANai with the last sequence number received on each
    //    stream so it ACKs the right messages and NACKs out-of-order ones.
    for (const auto& [key, e] : backup_.ack_table()) {
      m.host_restore_ack_entry(e.peer, e.stream, e.last_seq);
    }
    // 3. Reopen the port; the LANai reinitializes per-port state.
    m.host_reopen_port(id_);
    // 4. Re-post every unacknowledged send token with its original
    //    host-generated sequence numbers; peers that already received a
    //    message drop the duplicate at the MCP level and re-ACK.
    for (const auto& req : backup_.sends()) {
      m.host_post_send(req);
    }
    node_.nic().ring_doorbell();
    recovering_ = false;
    // Table 3's "per-process recovery" row: FAULT_DETECTED dispatch to
    // tokens-replayed, i.e. the paper's port replay phase.
    metrics::observe(m_.replay_ns,
                     node_.event_queue().now() - recover_started_);
    if (on_recovered_) on_recovered_();
  }));
}

}  // namespace myri::gm
