// GM port: the user-level communication endpoint (paper Section 3.1).
//
// Mirrors the GM programming model: connectionless messaging through up to
// 8 ports per node, implicit send/receive tokens, asynchronous completion
// through a receive (event) queue, and a gm_unknown()-style default handler
// for internal events. In FTGM mode the library transparently maintains the
// BackupStore (send/receive token copies, host-generated sequence numbers,
// the ACK-number table) and implements the FAULT_DETECTED recovery handler
// — applications need no changes, exactly as the paper requires.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/backup_store.hpp"
#include "gm/status.hpp"
#include "mcp/types.hpp"
#include "metrics/registry.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace myri::gm {

class Node;

/// A pinned, DMA-able message buffer (GM's zero-copy requirement).
struct Buffer {
  host::DmaAddr addr = 0;
  std::uint32_t size = 0;
  [[nodiscard]] bool valid() const noexcept { return size != 0; }
};

/// What a receive handler sees for an arrived message.
struct RecvInfo {
  Buffer buffer;              // the posted buffer the message landed in
  std::uint32_t len = 0;
  net::NodeId src = net::kInvalidNode;
  std::uint8_t src_port = 0;
  std::uint8_t priority = 0;
};

/// Completion callback for sends/gets (ok == delivered & acknowledged).
using SendCallback = std::function<void(bool ok)>;

/// One parameter block for every send flavour (gm_send_with_callback,
/// gm_directed_send_with_callback, fire-and-forget): designated
/// initializers replace the old positional sprawl.
///   port.post(buf, len, {.dst = 3, .dst_port = 2, .callback = cb});
struct SendOptions {
  net::NodeId dst = net::kInvalidNode;
  std::uint8_t dst_port = 0;
  std::uint8_t priority = 0;
  /// Engaged => RDMA put into the remote process's registered memory at
  /// this virtual address (the receiver consumes no token, sees no event).
  std::optional<std::uint32_t> remote_vaddr{};
  SendCallback callback{};
};

struct PortStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t sends_completed = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t alarms = 0;
  // Host-CPU time attributable to the send call path and to receive-event
  // processing (the paper's "host utilization" metric, Table 2).
  sim::Time send_cpu_ns = 0;
  sim::Time recv_cpu_ns = 0;
};

class Port {
 public:
  struct Config {
    std::uint32_t send_tokens = 16;
    std::uint32_t recv_tokens = 16;
  };
  using SendCallback = gm::SendCallback;
  using RecvHandler = std::function<void(const RecvInfo&)>;

  Port(Node& node, std::uint8_t id, Config cfg);
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  [[nodiscard]] std::uint8_t id() const noexcept { return id_; }
  [[nodiscard]] Node& node() noexcept { return node_; }

  /// Allocate a pinned DMA buffer and register its pages for this port.
  Buffer alloc_dma_buffer(std::uint32_t size);

  /// The one send entry point: relinquish a send token and queue `len`
  /// bytes of `buf` per `opts` (plain message, or RDMA put when
  /// opts.remote_vaddr is engaged). Returns:
  ///   kOk          accepted; opts.callback fires on completion
  ///   kInvalidArg  invalid buffer, len > buf.size, or invalid dst
  ///   kRecovering  FAULT_DETECTED replay in progress — back off, retry
  ///   kUnreachable no route installed for dst (mapper hasn't reached it)
  ///   kDraining    dst is draining and this port has no stream to it yet
  ///   kNoSendToken all tokens in flight — retry on a completion callback
  /// On any non-kOk result opts.callback never fires: check the Status.
  [[nodiscard]] Status post(const Buffer& buf, std::uint32_t len,
                            SendOptions opts);

  /// gm_send_with_callback (thin forwarder to post()).
  Status send_with_callback(const Buffer& buf, std::uint32_t len,
                            net::NodeId dst, std::uint8_t dst_port,
                            std::uint8_t priority, SendCallback cb) {
    return post(buf, len,
                SendOptions{.dst = dst,
                            .dst_port = dst_port,
                            .priority = priority,
                            .remote_vaddr = std::nullopt,
                            .callback = std::move(cb)});
  }

  /// gm_directed_send_with_callback (RDMA put): thin forwarder to post()
  /// with remote_vaddr engaged. The remote port must have the target pages
  /// registered (its own DMA buffers are).
  Status directed_send_with_callback(const Buffer& buf, std::uint32_t len,
                                     net::NodeId dst, std::uint8_t dst_port,
                                     std::uint32_t remote_vaddr,
                                     SendCallback cb,
                                     std::uint8_t priority = 0) {
    return post(buf, len,
                SendOptions{.dst = dst,
                            .dst_port = dst_port,
                            .priority = priority,
                            .remote_vaddr = remote_vaddr,
                            .callback = std::move(cb)});
  }

  /// gm_get (RDMA read): fetch `len` bytes of the remote process's
  /// registered memory at `remote_vaddr` into `local` (which must be one
  /// of this port's registered buffers). The request is retried until the
  /// response lands (gets are idempotent); cb(false) after the retry
  /// budget is exhausted (unregistered remote memory, dead peer, ...).
  [[nodiscard]] Status get_with_callback(const Buffer& local,
                                         std::uint32_t len, net::NodeId dst,
                                         std::uint8_t dst_port,
                                         std::uint32_t remote_vaddr,
                                         SendCallback cb);

  /// gm_provide_receive_buffer: relinquish a receive token. Returns kOk,
  /// kInvalidArg, kRecovering or kNoRecvToken.
  Status provide_receive_buffer(const Buffer& buf, std::uint8_t priority = 0);

  /// Handler invoked (from the event pump) for each received message.
  void set_receive_handler(RecvHandler h) { recv_handler_ = std::move(h); }

  /// gm_set_alarm: one-shot alarm delivered through the receive queue.
  void set_alarm(sim::Time delay, std::function<void()> handler);

  /// Invoked after this port finishes FAULT_DETECTED recovery (FTGM).
  void set_on_recovered(std::function<void()> f) {
    on_recovered_ = std::move(f);
  }

  /// Publish this port's accounting (tokens in flight, event-queue depth,
  /// host CPU time, recovery replay timing) under "<prefix>.".
  void bind_metrics(metrics::Registry& reg, const std::string& prefix);

  // ---- introspection ----
  [[nodiscard]] std::uint32_t send_tokens_free() const noexcept {
    return send_tokens_free_;
  }
  [[nodiscard]] std::uint32_t recv_tokens_free() const noexcept {
    return recv_tokens_free_;
  }
  [[nodiscard]] bool recovering() const noexcept { return recovering_; }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] const PortStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::BackupStore& backup() const noexcept {
    return backup_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Test-only fault hook: conjure one send token out of thin air. Exists
  /// to prove the chaos oracle's token-conservation invariant fires on a
  /// real leak (fi::ScenarioEvent::Kind::kTokenLeak) — never called by
  /// production code, never generated in random schedules.
  void test_inject_send_token() noexcept {
    ++send_tokens_free_;
    sync_token_gauges();
  }

  // ---- host receive queue (used by the MCP glue and the FTD) ----
  void push_event(const mcp::EventRecord& ev);

 private:
  /// Wrap a deferred callback so it becomes a no-op if this Port has been
  /// destroyed (gm_close while events or CPU work are in flight).
  template <typename F>
  auto guarded(F&& f) {
    return [w = std::weak_ptr<int>(life_),
            f = std::forward<F>(f)]() mutable {
      if (w.expired()) return;
      f();
    };
  }

  struct BoundMetrics {
    metrics::Counter* sends_posted = nullptr;
    metrics::Counter* sends_completed = nullptr;
    metrics::Counter* msgs_received = nullptr;
    metrics::Counter* bytes_sent = nullptr;
    metrics::Counter* bytes_received = nullptr;
    metrics::Counter* send_cpu_ns = nullptr;
    metrics::Counter* recv_cpu_ns = nullptr;
    metrics::Counter* recoveries = nullptr;
    metrics::Gauge* send_tokens_in_flight = nullptr;
    metrics::Gauge* recv_tokens_posted = nullptr;
    metrics::Gauge* event_queue_depth = nullptr;
    metrics::Histogram* replay_ns = nullptr;
  };

  void sync_token_gauges();

  Status submit_send(const Buffer& buf, std::uint32_t len,
                     mcp::SendRequest req, SendCallback cb);
  void pump();
  void dispatch(const mcp::EventRecord& ev);
  void unknown(const mcp::EventRecord& ev);      // gm_unknown()
  void handle_fault_detected();                  // FTGM transparent recovery
  [[nodiscard]] bool ftgm() const;

  Node& node_;
  std::uint8_t id_;
  Config cfg_;
  std::uint32_t send_tokens_free_;
  std::uint32_t recv_tokens_free_;
  std::uint32_t next_token_id_ = 1;
  std::uint32_t next_msg_id_ = 1;

  std::deque<mcp::EventRecord> queue_;  // host-side receive queue
  bool pump_armed_ = false;

  struct PendingGet {
    mcp::GetRequest req;
    SendCallback cb;
    int attempts = 0;
  };
  void issue_get(std::uint32_t correlation);

  std::unordered_map<std::uint32_t, SendCallback> send_callbacks_;
  std::unordered_map<std::uint32_t, PendingGet> pending_gets_;
  std::unordered_map<std::uint32_t, Buffer> recv_buffers_;  // token -> buf
  std::unordered_map<std::uint32_t, std::uint8_t> recv_priorities_;
  std::unordered_map<std::uint32_t, std::function<void()>> alarms_;
  std::uint32_t next_alarm_id_ = 1;

  // Destinations this port has posted to: streams already established
  // when a drain begins are exempt from the kDraining gate.
  std::set<net::NodeId> active_dsts_;

  RecvHandler recv_handler_;
  std::function<void()> on_recovered_;
  core::BackupStore backup_;   // maintained only in FTGM mode
  bool recovering_ = false;
  std::uint64_t recoveries_ = 0;
  sim::Time recover_started_ = 0;
  PortStats stats_;
  BoundMetrics m_;
  std::shared_ptr<int> life_ = std::make_shared<int>(0);  // liveness token
};

}  // namespace myri::gm
