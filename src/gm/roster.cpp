#include "gm/roster.hpp"

#include <stdexcept>
#include <string>

namespace myri::gm {

const char* to_string(MembershipChange c) {
  switch (c) {
    case MembershipChange::kSeed: return "seed";
    case MembershipChange::kJoin: return "join";
    case MembershipChange::kDrain: return "drain";
    case MembershipChange::kRetire: return "retire";
    case MembershipChange::kReplace: return "replace";
  }
  return "?";
}

void Roster::seed(const std::vector<net::NodeId>& members, sim::Time at) {
  if (epoch_ != 0) throw std::logic_error("roster already seeded");
  epoch_ = 1;
  for (const net::NodeId x : members) {
    members_.insert(x);
    history_.push_back({epoch_, at, MembershipChange::kSeed, x});
  }
}

std::vector<net::NodeId> Roster::members_at(sim::Time t) const {
  std::set<net::NodeId> out;
  for (const RosterEvent& ev : history_) {
    if (ev.at > t) break;  // history is appended in time order
    switch (ev.kind) {
      case MembershipChange::kSeed:
      case MembershipChange::kJoin:
      case MembershipChange::kReplace:
        out.insert(ev.node);
        break;
      case MembershipChange::kRetire:
        out.erase(ev.node);
        break;
      case MembershipChange::kDrain:
        break;  // draining nodes are still members
    }
  }
  return {out.begin(), out.end()};
}

void Roster::apply(MembershipChange kind, net::NodeId x, sim::Time at) {
  ++epoch_;
  history_.push_back({epoch_, at, kind, x});
  if (observer_) observer_(history_.back());
}

void Roster::join(net::NodeId x, sim::Time at) {
  if (is_member(x)) {
    throw std::invalid_argument("join: node " + std::to_string(x) +
                                " already a member");
  }
  members_.insert(x);
  apply(MembershipChange::kJoin, x, at);
}

void Roster::drain(net::NodeId x, sim::Time at) {
  if (!is_member(x)) {
    throw std::invalid_argument("drain: node " + std::to_string(x) +
                                " not a member");
  }
  if (is_draining(x)) return;  // idempotent
  draining_.insert(x);
  apply(MembershipChange::kDrain, x, at);
}

void Roster::retire(net::NodeId x, sim::Time at) {
  if (!is_member(x)) {
    throw std::invalid_argument("retire: node " + std::to_string(x) +
                                " not a member");
  }
  members_.erase(x);
  draining_.erase(x);
  apply(MembershipChange::kRetire, x, at);
}

void Roster::replace(net::NodeId x, sim::Time at) {
  if (!is_member(x)) {
    throw std::invalid_argument("replace: node " + std::to_string(x) +
                                " not a member");
  }
  draining_.erase(x);
  apply(MembershipChange::kReplace, x, at);
}

}  // namespace myri::gm
