// Versioned cluster membership: the roster of node ids expected on the
// fabric, epoch-stamped like routes.
//
// The roster is the single source of truth for "who should be mapped":
// the FailoverManager feeds members() to the mapper as the expected
// roster, and the chaos oracle checks the final map against the roster
// *timeline* (members_at) instead of a frozen vector. Every mutation —
// join, drain, retire, replace — bumps the membership epoch and appends
// to an immutable history, so observers can replay exactly what changed
// and when.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace myri::gm {

enum class MembershipChange : std::uint8_t {
  kSeed,     // initial member, present since construction
  kJoin,     // hot-added node + cable at a free switch port
  kDrain,    // stop admitting new sends; in-flight streams finish
  kRetire,   // drained node left the fabric (cable unplugged)
  kReplace,  // spare took over a dead node's switch port and NodeId
};

[[nodiscard]] const char* to_string(MembershipChange c);

struct RosterEvent {
  std::uint32_t epoch = 0;  // membership epoch after this change
  sim::Time at = 0;
  MembershipChange kind = MembershipChange::kSeed;
  net::NodeId node = 0;
};

class Roster {
 public:
  /// Seed the initial membership (epoch 1). Call once, before any
  /// mutation; seeding does not fire the observer.
  void seed(const std::vector<net::NodeId>& members, sim::Time at);

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool is_member(net::NodeId x) const {
    return members_.count(x) != 0;
  }
  [[nodiscard]] bool is_draining(net::NodeId x) const {
    return draining_.count(x) != 0;
  }
  /// Current members in id order (draining nodes are still members —
  /// they stay mapped until retired).
  [[nodiscard]] std::vector<net::NodeId> members() const {
    return {members_.begin(), members_.end()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  /// Every change since seed, in epoch order.
  [[nodiscard]] const std::vector<RosterEvent>& history() const noexcept {
    return history_;
  }

  /// Membership as of virtual time `t`: the seed set with every change
  /// stamped at or before `t` replayed. This is the timeline view the
  /// chaos oracle consumes.
  [[nodiscard]] std::vector<net::NodeId> members_at(sim::Time t) const;

  void join(net::NodeId x, sim::Time at);
  void drain(net::NodeId x, sim::Time at);
  void retire(net::NodeId x, sim::Time at);
  void replace(net::NodeId x, sim::Time at);

  /// Observer for roster deltas (one at a time, last wins). The
  /// FailoverManager registers here: a delta is a first-class event like
  /// a cable transition.
  using Observer = std::function<void(const RosterEvent&)>;
  void set_observer(Observer o) { observer_ = std::move(o); }

 private:
  void apply(MembershipChange kind, net::NodeId x, sim::Time at);

  std::uint32_t epoch_ = 0;
  std::set<net::NodeId> members_;
  std::set<net::NodeId> draining_;
  std::vector<RosterEvent> history_;
  Observer observer_;
};

}  // namespace myri::gm
