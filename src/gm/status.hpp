// gm::Status — typed result of the GM host API (send/receive posting).
//
// GM's C API reports "could not post" as a bare false, which forces callers
// to guess whether they should retry now (token exhaustion), back off
// (recovery in progress) or give up (bad arguments, unreachable peer).
// Status keeps the single-word cost of bool but names the reason. It
// converts contextually to bool (true == kOk), so `if (!port.post(...))`
// call sites keep compiling; callers that want the reason switch on code().
//
// Not a [[nodiscard]] type: provide_receive_buffer() is habitually called
// fire-and-forget; the posting entry points that MUST be checked (post,
// get_with_callback — their callbacks never fire on rejection) carry
// [[nodiscard]] individually.
#pragma once

#include <cstdint>

namespace myri::gm {

class Status {
 public:
  enum Code : std::uint8_t {
    kOk = 0,          // accepted; completion reported via callback/event
    kNoSendToken,     // all send tokens in flight — retry on a completion
    kNoRecvToken,     // all receive tokens posted — retry on a receive
    kRecovering,      // port is replaying FAULT_DETECTED recovery — back off
    kInvalidArg,      // unusable buffer / length / destination
    kUnreachable,     // no route installed for the destination node
    kDraining,        // destination is draining — no new streams admitted
  };

  constexpr Status() = default;
  constexpr Status(Code c) : code_(c) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr bool ok() const noexcept { return code_ == kOk; }
  constexpr explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] constexpr Code code() const noexcept { return code_; }
  friend constexpr bool operator==(Status, Status) = default;

  [[nodiscard]] constexpr const char* message() const noexcept {
    switch (code_) {
      case kOk: return "ok";
      case kNoSendToken: return "no send token";
      case kNoRecvToken: return "no receive token";
      case kRecovering: return "port recovering";
      case kInvalidArg: return "invalid argument";
      case kUnreachable: return "destination unreachable";
      case kDraining: return "destination draining";
    }
    return "unknown";
  }

 private:
  Code code_ = kOk;
};

}  // namespace myri::gm
