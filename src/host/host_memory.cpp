#include "host/host_memory.hpp"

#include <algorithm>
#include <cstring>

namespace myri::host {

std::span<std::byte> HostMemory::at(DmaAddr addr, std::size_t len) {
  if (addr > mem_.size() || len > mem_.size() - addr) return {};
  return {mem_.data() + addr, len};
}

std::span<const std::byte> HostMemory::at(DmaAddr addr,
                                          std::size_t len) const {
  if (addr > mem_.size() || len > mem_.size() - addr) return {};
  return {mem_.data() + addr, len};
}

bool HostMemory::write(DmaAddr addr, std::span<const std::byte> data) {
  auto dst = at(addr, data.size());
  if (dst.size() != data.size()) return false;
  std::memcpy(dst.data(), data.data(), data.size());
  return true;
}

bool HostMemory::read(DmaAddr addr, std::span<std::byte> out) const {
  auto src = at(addr, out.size());
  if (src.size() != out.size()) return false;
  std::memcpy(out.data(), src.data(), out.size());
  return true;
}

std::optional<DmaAddr> PinnedAllocator::alloc(std::size_t len,
                                              std::size_t align) {
  if (len == 0) len = 1;
  // First-fit over the free list.
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    Region& r = free_list_[i];
    const DmaAddr aligned = (r.addr + align - 1) / align * align;
    const std::size_t pad = static_cast<std::size_t>(aligned - r.addr);
    if (r.len >= pad + len) {
      const DmaAddr out = aligned;
      // Shrink or remove the free region (leading pad is wasted; fine for
      // a simulator allocator).
      r.addr = aligned + len;
      r.len -= pad + len;
      if (r.len == 0) free_list_.erase(free_list_.begin() + i);
      live_[out] = len;
      in_use_ += len;
      return out;
    }
  }
  const DmaAddr aligned = (next_ + align - 1) / align * align;
  if (aligned + len > base_ + len_) return std::nullopt;
  next_ = aligned + len;
  live_[aligned] = len;
  in_use_ += len;
  return aligned;
}

void PinnedAllocator::free(DmaAddr addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) return;
  free_list_.push_back({addr, it->second});
  in_use_ -= it->second;
  live_.erase(it);
}

bool PinnedAllocator::is_pinned(DmaAddr addr, std::size_t len) const {
  // A DMA is safe if it is fully contained in one live allocation.
  for (const auto& [a, l] : live_) {
    if (addr >= a && addr + len <= a + l) return true;
  }
  return false;
}

void PageHashTable::map(std::uint8_t port, std::uint64_t vaddr, DmaAddr dma) {
  table_[key(port, vaddr / kPageSize)] = dma / kPageSize * kPageSize;
}

void PageHashTable::unmap_port(std::uint8_t port) {
  for (auto it = table_.begin(); it != table_.end();) {
    if ((it->first >> 52) == port) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<DmaAddr> PageHashTable::lookup(std::uint8_t port,
                                             std::uint64_t vaddr) const {
  auto it = table_.find(key(port, vaddr / kPageSize));
  if (it == table_.end()) return std::nullopt;
  return it->second + vaddr % kPageSize;
}

}  // namespace myri::host
