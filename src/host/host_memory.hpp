// Host DRAM, pinned DMA regions, and the page hash table.
//
// GM's zero-copy model requires user buffers to live in pinned (unswappable)
// pages so the NIC can DMA them directly (paper Section 2). The page hash
// table maps (port, user virtual page) -> DMA address; it lives in host
// memory and the MCP caches entries in SRAM. We use identity virtual->DMA
// mapping, but the table and its restoration after a card reset are real:
// the MCP refuses DMA for unmapped pages, so a recovery that forgot to
// re-register the table would fail visibly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace myri::host {

/// Physical/DMA address in host memory.
using DmaAddr = std::uint64_t;

inline constexpr std::size_t kPageSize = 4096;

class HostMemory {
 public:
  explicit HostMemory(std::size_t bytes) : mem_(bytes) {}

  [[nodiscard]] std::size_t size() const noexcept { return mem_.size(); }

  /// Bounds-checked span; empty span if [addr, addr+len) is out of range.
  [[nodiscard]] std::span<std::byte> at(DmaAddr addr, std::size_t len);
  [[nodiscard]] std::span<const std::byte> at(DmaAddr addr,
                                              std::size_t len) const;

  /// Copy helpers; return false (and touch nothing) when out of range.
  bool write(DmaAddr addr, std::span<const std::byte> data);
  bool read(DmaAddr addr, std::span<std::byte> out) const;

 private:
  std::vector<std::byte> mem_;
};

/// Bump-with-free-list allocator over a pinned window of host memory.
/// Tracks which ranges are pinned so the NIC-side DMA checker can flag
/// wild DMA (the "host computer crash" failure mode of Table 1).
class PinnedAllocator {
 public:
  PinnedAllocator(DmaAddr base, std::size_t len)
      : base_(base), len_(len), next_(base) {}

  /// Allocate a pinned region; returns std::nullopt when exhausted.
  std::optional<DmaAddr> alloc(std::size_t len, std::size_t align = 64);

  /// Release a region previously returned by alloc().
  void free(DmaAddr addr);

  /// True if [addr, addr+len) lies entirely within currently pinned memory.
  [[nodiscard]] bool is_pinned(DmaAddr addr, std::size_t len) const;

  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_; }

 private:
  struct Region {
    DmaAddr addr;
    std::size_t len;
  };
  DmaAddr base_;
  std::size_t len_;
  DmaAddr next_;
  std::size_t in_use_ = 0;
  std::unordered_map<DmaAddr, std::size_t> live_;   // addr -> len
  std::vector<Region> free_list_;
};

/// (port, virtual page) -> DMA page. Big, so host-resident; the MCP caches
/// entries in SRAM and re-fetches after recovery (paper Section 4.3).
class PageHashTable {
 public:
  void map(std::uint8_t port, std::uint64_t vaddr, DmaAddr dma);
  void unmap_port(std::uint8_t port);

  /// Lookup by any address within a mapped page.
  [[nodiscard]] std::optional<DmaAddr> lookup(std::uint8_t port,
                                              std::uint64_t vaddr) const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  static std::uint64_t key(std::uint8_t port, std::uint64_t vpage) {
    return (static_cast<std::uint64_t>(port) << 52) | vpage;
  }
  std::unordered_map<std::uint64_t, DmaAddr> table_;
};

}  // namespace myri::host
