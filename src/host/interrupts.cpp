#include "host/interrupts.hpp"

namespace myri::host {

void InterruptController::raise(IrqLine line) {
  const auto i = static_cast<unsigned>(line);
  if (pending_[i]) return;  // level-triggered: coalesce
  pending_[i] = true;
  eq_.schedule_after(cfg_.latency, [this, i] {
    pending_[i] = false;
    ++delivered_[i];
    if (handlers_[i]) handlers_[i]();
  });
}

}  // namespace myri::host
