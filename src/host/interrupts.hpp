// Host interrupt delivery.
//
// The NIC raises lines (FATAL watchdog expiry being the one the paper
// cares about); the controller invokes the registered handler after the
// platform interrupt latency (~13 us per the paper). Raises while a
// delivery of the same line is pending coalesce, as level-triggered PCI
// interrupts do.
#pragma once

#include <array>
#include <functional>

#include "host/timing.hpp"
#include "sim/event_queue.hpp"

namespace myri::host {

enum class IrqLine : unsigned {
  kRecvEvent = 0,  // optional receive-notify (GM mostly polls)
  kFatal = 1,      // watchdog IT1 expiry routed through the IMR
  kCount = 2,
};

class InterruptController {
 public:
  using Handler = std::function<void()>;

  InterruptController(sim::EventQueue& eq, InterruptTiming cfg)
      : eq_(eq), cfg_(cfg) {}

  void set_handler(IrqLine line, Handler h) {
    handlers_[static_cast<unsigned>(line)] = std::move(h);
  }

  void raise(IrqLine line);

  [[nodiscard]] std::uint64_t delivered(IrqLine line) const {
    return delivered_[static_cast<unsigned>(line)];
  }

 private:
  sim::EventQueue& eq_;
  InterruptTiming cfg_;
  std::array<Handler, static_cast<unsigned>(IrqLine::kCount)> handlers_{};
  std::array<bool, static_cast<unsigned>(IrqLine::kCount)> pending_{};
  std::array<std::uint64_t, static_cast<unsigned>(IrqLine::kCount)>
      delivered_{};
};

}  // namespace myri::host
