#include "host/pci.hpp"

#include <algorithm>

namespace myri::host {

void PciBus::occupy(sim::Time dur, std::function<void()> done) {
  const sim::Time start = std::max(eq_.now(), busy_until_);
  busy_until_ = start + dur;
  busy_time_ += dur;
  ++txns_;
  eq_.schedule_at(busy_until_, std::move(done));
}

void PciBus::dma(std::size_t bytes, std::function<void()> done) {
  // MB/s == bytes/us; convert to ns.
  const auto transfer = static_cast<sim::Time>(
      static_cast<double>(bytes) / cfg_.mb_per_s * 1000.0);
  occupy(cfg_.dma_setup + transfer, std::move(done));
}

void PciBus::pio(std::function<void()> done) {
  occupy(cfg_.pio, std::move(done));
}

}  // namespace myri::host
