// PCI bus model.
//
// The NIC's host-DMA engine and the driver's programmed I/O share one bus;
// transactions serialize FIFO. The bus is the bandwidth bottleneck in the
// paper's setup (Fig 7 saturates ~92 MB/s per direction, well below the
// 250 MB/s link rate), so its throughput constant is the main bandwidth
// calibration knob.
#pragma once

#include <cstdint>
#include <functional>

#include "host/timing.hpp"
#include "sim/event_queue.hpp"

namespace myri::host {

class PciBus {
 public:
  PciBus(sim::EventQueue& eq, PciTiming cfg) : eq_(eq), cfg_(cfg) {}

  /// Queue a DMA transaction of `bytes`; `done` fires when it completes.
  void dma(std::size_t bytes, std::function<void()> done);

  /// Queue a programmed-I/O access (doorbell/register); `done` on completion.
  void pio(std::function<void()> done);

  /// Cost of one PIO access (for synchronous accounting paths).
  [[nodiscard]] sim::Time pio_cost() const noexcept { return cfg_.pio; }

  [[nodiscard]] sim::Time busy_until() const noexcept { return busy_until_; }

  /// Total bus-occupied time (utilization diagnostics).
  [[nodiscard]] sim::Time busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::uint64_t transactions() const noexcept { return txns_; }

 private:
  void occupy(sim::Time dur, std::function<void()> done);

  sim::EventQueue& eq_;
  PciTiming cfg_;
  sim::Time busy_until_ = 0;
  sim::Time busy_time_ = 0;
  std::uint64_t txns_ = 0;
};

}  // namespace myri::host
