// Calibration constants for the virtual-time cost model.
//
// Every constant is traceable to a number the paper reports (Table 2,
// Table 3, Section 5) or to the hardware it describes (2 Gb/s links, 33 MHz
// PCI, LANai9 @ 132 MHz, 0.5 us interval-timer tick). The benches reproduce
// the paper's tables/figures from these; EXPERIMENTS.md records
// paper-vs-measured. Values the paper does not give directly (e.g. PCI DMA
// setup) were tuned so the emergent end-to-end metrics match Table 2.
#pragma once

#include "sim/time.hpp"

namespace myri::host {

using sim::Time;
using sim::usecf;

struct HostTiming {
  // Host-CPU cost of GM API calls (paper Table 2: 0.30 us send, 0.75 us recv).
  Time send_api_overhead = usecf(0.30);
  Time recv_api_overhead = usecf(0.75);

  // FTGM additions (paper Section 5.1): send-token backup ~0.25 us; receive
  // side updates two hash tables (recv tokens + per-stream ACK numbers),
  // ~0.40 us.
  Time ftgm_send_backup = usecf(0.25);
  Time ftgm_recv_backup = usecf(0.40);

  // Polling granularity of an application spinning on gm_receive().
  Time poll_interval = usecf(0.35);

  // Ablation knob (paper Section 4.1 / Fig 6): the rejected design keeps
  // ONE host-generated sequence stream per connection, which forces every
  // process sending to the same remote node to synchronize on a shared
  // counter. This models that synchronization's per-send cost; the chosen
  // per-(port, destination) scheme leaves it at 0.
  Time ftgm_seq_sync = 0;
};

struct PciTiming {
  // Effective shared PCI throughput. The PCI64B card sits on a 33 MHz bus
  // (264 MB/s theoretical for 64-bit); sustained DMA efficiency ~72% gives
  // the paper's ~92 MB/s per direction when both send and receive DMAs
  // share the bus under the bidirectional workload of Fig 7.
  double mb_per_s = 185.0;
  // Per-DMA-transaction setup (bus acquisition, address phase, descriptor).
  Time dma_setup = usecf(1.20);
  // Programmed-I/O access (doorbell write, register read) across PCI.
  Time pio = usecf(0.40);
};

struct LanaiTiming {
  // LANai9 runs at 132 MHz; the interpreter charges one cycle/instruction.
  double cpu_mhz = 132.0;
  // Interval timers decrement every 0.5 us (paper Section 4.2).
  Time timer_tick = usecf(0.5);
  // Fixed dispatch cost for taking one MCP event (ISR scan + branch).
  Time dispatch_overhead = usecf(0.45);
  // Native protocol-engine costs per packet, calibrated so the LANai
  // occupancy per small message is ~6.0 us for GM (paper Table 2):
  // ~3 us on the sending NIC, ~3 us on the receiving NIC.
  Time send_proto = usecf(1.40);   // descriptor fetch, window checks, route
  Time recv_proto = usecf(1.45);   // CRC check, seq check, token match
  Time ack_proto = usecf(0.45);    // ACK/NACK generation or absorption
  // FTGM extra LANai work (Table 2: 6.0 -> 6.8 us): host-supplied seqno
  // handling on the send side; per-(connection,port) ACK bookkeeping and
  // delayed-ACK arming on the receive side.
  Time ftgm_send_extra = usecf(0.40);
  Time ftgm_recv_extra = usecf(0.40);

  [[nodiscard]] Time cycle_time_ns() const {
    return static_cast<Time>(1000.0 / cpu_mhz + 0.5);
  }
};

struct InterruptTiming {
  // Host interrupt delivery latency (paper Section 5.2: ~13 us).
  Time latency = usecf(13.0);
};

struct WatchdogTiming {
  // Maximum observed gap between L_timer() invocations is ~800 us (paper
  // Section 4.2); IT1 is armed "just slightly greater".
  Time l_timer_interval = usecf(550.0);   // nominal IT0 reload
  Time l_timer_max_gap = usecf(800.0);    // measured worst case (with jitter)
  Time it1_interval = usecf(820.0);       // watchdog arm value
};

struct RecoveryTiming {
  // Paper Table 3 and Section 5.2. MCP reload dominates the FTD phase
  // (~500 ms of ~765 ms); the remainder covers the magic-word probe wait,
  // card reset, SRAM clear, DMA-engine restart and table restoration.
  Time magic_probe_wait = sim::msec(5);     // wait before re-reading the word
  Time card_reset = sim::msec(40);
  Time sram_clear = sim::msec(80);
  Time mcp_reload = sim::msec(500);
  Time dma_restart = sim::msec(20);
  Time page_hash_restore = sim::msec(80);
  Time route_restore = sim::msec(40);
  Time post_fault_event = usecf(50.0);      // per open port

  // Per-process FAULT_DETECTED handler (paper: ~900 ms). The base covers
  // port-state teardown/reopen handshakes and receive-queue rebuild; the
  // per-item costs cover restoring backed-up tokens and stream seqnos.
  Time per_process_base = sim::msec(898);
  Time per_send_token_restore = usecf(12.0);
  Time per_recv_token_restore = usecf(9.0);
  Time per_stream_restore = usecf(6.0);
};

/// All cost-model knobs in one bundle; benches construct variants of this.
struct TimingConfig {
  HostTiming hostt;
  PciTiming pci;
  LanaiTiming lanai;
  InterruptTiming irq;
  WatchdogTiming watchdog;
  RecoveryTiming recovery;
};

}  // namespace myri::host
