#include "lanai/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "lanai/cpu.hpp"

namespace myri::lanai {

std::uint32_t Program::label(const std::string& name) const {
  auto it = labels.find(name);
  if (it == labels.end()) throw AsmError("unknown label: " + name);
  return it->second;
}

namespace {

struct Token {
  std::string text;
};

std::string strip(const std::string& line) {
  std::string s = line;
  // Cut comments.
  for (const char c : {';', '#'}) {
    if (auto p = s.find(c); p != std::string::npos) s.resize(p);
  }
  // Trim.
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  return s;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Split "addi r2, r0, 0x40" -> mnemonic + operand strings.
std::pair<std::string, std::vector<std::string>> split_line(
    const std::string& line) {
  std::istringstream is(line);
  std::string mnem;
  is >> mnem;
  std::string rest;
  std::getline(is, rest);
  std::vector<std::string> ops;
  std::string cur;
  for (char c : rest) {
    if (c == ',') {
      ops.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!strip(cur).empty()) ops.push_back(strip(cur));
  return {lower(mnem), ops};
}

std::optional<unsigned> parse_reg(const std::string& t) {
  std::string s = lower(t);
  if (s.size() < 2 || s[0] != 'r') return std::nullopt;
  unsigned v = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
    v = v * 10 + static_cast<unsigned>(s[i] - '0');
  }
  if (v > 15) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int(const std::string& t) {
  if (t.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(t, &pos, 0);  // handles 0x, decimal, -
    if (pos != t.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

struct Line {
  std::string mnem;
  std::vector<std::string> ops;
  int lineno = 0;
};

[[noreturn]] void fail(int lineno, const std::string& what) {
  throw AsmError("line " + std::to_string(lineno) + ": " + what);
}

}  // namespace

Program assemble(const std::string& src, std::uint32_t base) {
  if ((base & 3u) != 0) throw AsmError("base address must be word-aligned");
  Program prog;
  prog.base = base;

  // Pass 1: collect labels and instruction lines.
  std::vector<Line> lines;
  {
    std::istringstream is(src);
    std::string raw;
    int lineno = 0;
    std::uint32_t addr = base;
    while (std::getline(is, raw)) {
      ++lineno;
      std::string s = strip(raw);
      while (!s.empty()) {
        if (auto colon = s.find(':');
            colon != std::string::npos &&
            s.find_first_of(" \t") > colon) {
          std::string lab = s.substr(0, colon);
          if (prog.labels.count(lab) != 0) fail(lineno, "duplicate label " + lab);
          prog.labels[lab] = addr;
          s = strip(s.substr(colon + 1));
          continue;
        }
        break;
      }
      if (s.empty()) continue;
      auto [mnem, ops] = split_line(s);
      lines.push_back({mnem, ops, lineno});
      addr += 4;
    }
  }

  // Pass 2: encode.
  auto imm_or_label = [&](const std::string& t, int lineno) -> std::int64_t {
    if (auto v = parse_int(t)) return *v;
    auto it = prog.labels.find(t);
    if (it == prog.labels.end()) fail(lineno, "bad immediate/label: " + t);
    return it->second;
  };
  auto need_imm18 = [&](std::int64_t v, int lineno) -> std::int32_t {
    // Accept anything expressible in 18 bits, signed or unsigned; the
    // encoder masks to 18 bits and consumers that shift (LUI, JAL) are
    // insensitive to the sign extension.
    if (v < -(1 << 17) || v >= (1 << 18)) {
      fail(lineno, "immediate out of 18-bit range: " + std::to_string(v));
    }
    return static_cast<std::int32_t>(v);
  };
  auto reg_op = [&](const Line& l, std::size_t i) -> unsigned {
    if (i >= l.ops.size()) fail(l.lineno, "missing operand");
    auto r = parse_reg(l.ops[i]);
    if (!r) fail(l.lineno, "bad register: " + l.ops[i]);
    return *r;
  };
  // "imm(rs1)" operand for loads/stores.
  auto mem_op = [&](const Line& l, std::size_t i,
                    std::int32_t& imm_out) -> unsigned {
    if (i >= l.ops.size()) fail(l.lineno, "missing memory operand");
    const std::string& t = l.ops[i];
    const auto open = t.find('(');
    const auto close = t.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(l.lineno, "bad memory operand: " + t);
    }
    const std::string immstr = strip(t.substr(0, open));
    const std::string regstr = t.substr(open + 1, close - open - 1);
    auto r = parse_reg(regstr);
    if (!r) fail(l.lineno, "bad base register: " + regstr);
    const std::int64_t imm = immstr.empty() ? 0 : imm_or_label(immstr, l.lineno);
    imm_out = need_imm18(imm, l.lineno);
    return *r;
  };

  std::uint32_t addr = base;
  for (const Line& l : lines) {
    std::uint32_t w = 0;
    const int ln = l.lineno;
    if (l.mnem == ".word") {
      if (l.ops.size() != 1) fail(ln, ".word takes one value");
      w = static_cast<std::uint32_t>(imm_or_label(l.ops[0], ln));
    } else if (l.mnem == "halt") {
      w = encode(Op::kHalt, 0, 0, 0, 0);
    } else if (l.mnem == "nop") {
      w = encode(Op::kNop, 0, 0, 0, 0);
    } else if (l.mnem == "add" || l.mnem == "sub" || l.mnem == "and" ||
               l.mnem == "or" || l.mnem == "xor" || l.mnem == "sll" ||
               l.mnem == "srl" || l.mnem == "mul") {
      static const std::unordered_map<std::string, Op> kR = {
          {"add", Op::kAdd}, {"sub", Op::kSub}, {"and", Op::kAnd},
          {"or", Op::kOr},   {"xor", Op::kXor}, {"sll", Op::kSll},
          {"srl", Op::kSrl}, {"mul", Op::kMul}};
      if (l.ops.size() != 3) fail(ln, l.mnem + " takes rd, rs1, rs2");
      w = encode(kR.at(l.mnem), reg_op(l, 0), reg_op(l, 1), reg_op(l, 2), 0);
    } else if (l.mnem == "addi" || l.mnem == "lui") {
      const Op op = l.mnem == "addi" ? Op::kAddi : Op::kLui;
      if (op == Op::kAddi) {
        if (l.ops.size() != 3) fail(ln, "addi takes rd, rs1, imm");
        w = encode(op, reg_op(l, 0), reg_op(l, 1), 0,
                   need_imm18(imm_or_label(l.ops[2], ln), ln));
      } else {
        if (l.ops.size() != 2) fail(ln, "lui takes rd, imm");
        w = encode(op, reg_op(l, 0), 0, 0,
                   need_imm18(imm_or_label(l.ops[1], ln), ln));
      }
    } else if (l.mnem == "lw" || l.mnem == "sw" || l.mnem == "lb" ||
               l.mnem == "sb") {
      static const std::unordered_map<std::string, Op> kM = {
          {"lw", Op::kLw}, {"sw", Op::kSw}, {"lb", Op::kLb}, {"sb", Op::kSb}};
      if (l.ops.size() != 2) fail(ln, l.mnem + " takes rd, imm(rs1)");
      std::int32_t imm = 0;
      const unsigned rs1 = mem_op(l, 1, imm);
      w = encode(kM.at(l.mnem), reg_op(l, 0), rs1, 0, imm);
    } else if (l.mnem == "beq" || l.mnem == "bne" || l.mnem == "blt" ||
               l.mnem == "bge") {
      static const std::unordered_map<std::string, Op> kB = {
          {"beq", Op::kBeq}, {"bne", Op::kBne}, {"blt", Op::kBlt},
          {"bge", Op::kBge}};
      if (l.ops.size() != 3) fail(ln, l.mnem + " takes rd, rs1, target");
      const std::int64_t target = imm_or_label(l.ops[2], ln);
      const std::int64_t off_words = (target - (addr + 4)) / 4;
      if ((target & 3) != 0) fail(ln, "branch target misaligned");
      w = encode(kB.at(l.mnem), reg_op(l, 0), reg_op(l, 1), 0,
                 need_imm18(off_words, ln));
    } else if (l.mnem == "jal") {
      if (l.ops.size() != 2) fail(ln, "jal takes rd, target");
      const std::int64_t target = imm_or_label(l.ops[1], ln);
      if ((target & 3) != 0) fail(ln, "jal target misaligned");
      w = encode(Op::kJal, reg_op(l, 0), 0, 0, need_imm18(target / 4, ln));
    } else if (l.mnem == "jalr") {
      if (l.ops.size() != 2) fail(ln, "jalr takes rd, rs1");
      w = encode(Op::kJalr, reg_op(l, 0), reg_op(l, 1), 0, 0);
    } else {
      fail(ln, "unknown mnemonic: " + l.mnem);
    }
    prog.words.push_back(w);
    addr += 4;
  }
  return prog;
}

}  // namespace myri::lanai
