// Two-pass assembler for the LanISA (see cpu.hpp).
//
// Syntax, one instruction per line:
//   label:                 ; labels end with ':'
//     addi r2, r0, 0x40    ; immediates: decimal, 0x-hex, or -negative
//     lui  r1, 0x3c000
//     lw   r3, 8(r2)       ; load/store: rd, imm(rs1)
//     sw   r3, 0x20(r1)
//     beq  r3, r0, done    ; branch targets are labels
//     jal  r15, helper     ; call (absolute target)
//     jalr r0, r15         ; return through a register
//     halt
//     .word 0xdeadbeef     ; raw data word
// Comments start with ';' or '#'.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace myri::lanai {

struct AsmError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Program {
  std::uint32_t base = 0;                  // byte address of words[0]
  std::vector<std::uint32_t> words;
  std::unordered_map<std::string, std::uint32_t> labels;  // byte addresses

  /// Byte address of a label; throws AsmError if absent.
  [[nodiscard]] std::uint32_t label(const std::string& name) const;

  [[nodiscard]] std::size_t size_bytes() const { return words.size() * 4; }
};

/// Assemble `src` for loading at byte address `base`. Throws AsmError with
/// a line-numbered message on any syntax or range problem.
Program assemble(const std::string& src, std::uint32_t base);

}  // namespace myri::lanai
