#include "lanai/cpu.hpp"

#include <sstream>

namespace myri::lanai {

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kReturned: return "returned";
    case RunStatus::kHalted: return "halted";
    case RunStatus::kFault: return "fault";
    case RunStatus::kBudgetExceeded: return "budget-exceeded";
    case RunStatus::kRestart: return "restart";
  }
  return "?";
}

void Cpu::reset() {
  for (auto& r : regs_) r = 0;
}

namespace {
std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

RunResult Cpu::run(std::uint32_t entry, std::uint64_t max_cycles) {
  RunResult res;
  std::uint32_t pc = entry;
  regs_[15] = kReturnAddr;

  auto stop = [&](RunStatus st, std::string detail) {
    res.status = st;
    res.pc = pc;
    res.detail = std::move(detail);
    total_cycles_ += res.cycles;
    return res;
  };

  for (;;) {
    if (pc == kReturnAddr) return stop(RunStatus::kReturned, "");
    if (pc == 0) return stop(RunStatus::kRestart, "jump to reset vector");
    if (res.cycles >= max_cycles) {
      return stop(RunStatus::kBudgetExceeded, "cycle budget exhausted");
    }
    if ((pc & 3u) != 0 || !sram_.in_range(pc, 4)) {
      return stop(RunStatus::kFault, "bad fetch address " + hex(pc));
    }
    const std::uint32_t w = sram_.read32(pc);
    const Op op = op_of(w);
    const unsigned rd = rd_of(w), rs1 = rs1_of(w), rs2 = rs2_of(w);
    const std::int32_t imm = imm18_of(w);
    ++res.cycles;
    std::uint32_t next = pc + 4;

    auto set = [&](unsigned r, std::uint32_t v) {
      if (r != 0) regs_[r] = v;
    };
    auto data_addr = [&]() {
      return regs_[rs1] + static_cast<std::uint32_t>(imm);
    };

    switch (op) {
      case Op::kHalt:
        return stop(RunStatus::kHalted, "HALT at " + hex(pc));
      case Op::kNop:
        break;
      case Op::kAdd: set(rd, regs_[rs1] + regs_[rs2]); break;
      case Op::kSub: set(rd, regs_[rs1] - regs_[rs2]); break;
      case Op::kAnd: set(rd, regs_[rs1] & regs_[rs2]); break;
      case Op::kOr: set(rd, regs_[rs1] | regs_[rs2]); break;
      case Op::kXor: set(rd, regs_[rs1] ^ regs_[rs2]); break;
      case Op::kSll: set(rd, regs_[rs1] << (regs_[rs2] & 31u)); break;
      case Op::kSrl: set(rd, regs_[rs1] >> (regs_[rs2] & 31u)); break;
      case Op::kMul: set(rd, regs_[rs1] * regs_[rs2]); break;
      case Op::kAddi:
        set(rd, regs_[rs1] + static_cast<std::uint32_t>(imm));
        break;
      case Op::kLui:
        set(rd, static_cast<std::uint32_t>(imm) << 14);
        break;
      case Op::kLw: {
        const std::uint32_t a = data_addr();
        if (a >= kMmioBase) {
          if ((a & 3u) != 0) return stop(RunStatus::kFault, "mmio align");
          set(rd, mmio_.mmio_read(a));
        } else if ((a & 3u) == 0 && sram_.in_range(a, 4)) {
          set(rd, sram_.read32(a));
        } else {
          return stop(RunStatus::kFault, "bad LW address " + hex(a));
        }
        break;
      }
      case Op::kSw: {
        const std::uint32_t a = data_addr();
        if (a >= kMmioBase) {
          if ((a & 3u) != 0) return stop(RunStatus::kFault, "mmio align");
          mmio_.mmio_write(a, regs_[rd]);
        } else if ((a & 3u) == 0 && sram_.in_range(a, 4)) {
          sram_.write32(a, regs_[rd]);
        } else {
          return stop(RunStatus::kFault, "bad SW address " + hex(a));
        }
        break;
      }
      case Op::kLb: {
        const std::uint32_t a = data_addr();
        if (a < kMmioBase && sram_.in_range(a, 1)) {
          set(rd, sram_.read8(a));
        } else {
          return stop(RunStatus::kFault, "bad LB address " + hex(a));
        }
        break;
      }
      case Op::kSb: {
        const std::uint32_t a = data_addr();
        if (a < kMmioBase && sram_.in_range(a, 1)) {
          sram_.write8(a, static_cast<std::uint8_t>(regs_[rd]));
        } else {
          return stop(RunStatus::kFault, "bad SB address " + hex(a));
        }
        break;
      }
      case Op::kBeq:
        if (regs_[rd] == regs_[rs1]) next = pc + 4 + (imm << 2);
        break;
      case Op::kBne:
        if (regs_[rd] != regs_[rs1]) next = pc + 4 + (imm << 2);
        break;
      case Op::kBlt:
        if (static_cast<std::int32_t>(regs_[rd]) <
            static_cast<std::int32_t>(regs_[rs1])) {
          next = pc + 4 + (imm << 2);
        }
        break;
      case Op::kBge:
        if (static_cast<std::int32_t>(regs_[rd]) >=
            static_cast<std::int32_t>(regs_[rs1])) {
          next = pc + 4 + (imm << 2);
        }
        break;
      case Op::kJal:
        set(rd, pc + 4);
        next = static_cast<std::uint32_t>(imm) << 2;
        break;
      case Op::kJalr:
        set(rd, pc + 4);
        next = regs_[rs1] & ~3u;
        break;
      case Op::kInvalid:
      default:
        return stop(RunStatus::kFault,
                    "invalid opcode " + hex(w >> 26) + " at " + hex(pc));
    }
    pc = next;
  }
}

}  // namespace myri::lanai
