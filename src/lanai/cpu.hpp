// Emulated LANai RISC core ("LanISA").
//
// A small 32-bit load/store ISA interpreted one cycle per instruction at
// the LANai9 clock rate. The MCP's send_chunk routine is written in this
// ISA (see mcp/send_chunk.hpp); the fault-injection campaign flips bits in
// its encoded instructions, so processor hangs, runaway loops, wild stores
// and silent data corruption all arise from genuine execution effects —
// mirroring the paper's SWIFI experiments on real LANai hardware.
//
// Encoding (32-bit words, little-endian in SRAM):
//   op  : bits 31..26
//   rd  : bits 25..22
//   rs1 : bits 21..18
//   rs2 : bits 17..14        (R-type only)
//   imm : bits 17..0, signed (I-type, branches, JAL)
//
// Conventions: r0 reads as zero. Routines are entered with r15 holding the
// return sentinel; `jalr r0, r15` returns. A jump to address 0 is the reset
// vector (classified as "MCP restart"). Opcode 0 is invalid, so executing
// zeroed SRAM faults immediately.
#pragma once

#include <cstdint>
#include <string>

#include "lanai/registers.hpp"
#include "lanai/sram.hpp"

namespace myri::lanai {

enum class Op : std::uint8_t {
  kInvalid = 0,
  kHalt = 1,
  kNop = 2,
  kAdd = 3,
  kSub = 4,
  kAnd = 5,
  kOr = 6,
  kXor = 7,
  kSll = 8,
  kSrl = 9,
  kMul = 10,
  kAddi = 11,
  kLui = 12,
  kLw = 13,
  kSw = 14,
  kLb = 15,
  kSb = 16,
  kBeq = 17,
  kBne = 18,
  kBlt = 19,
  kBge = 20,
  kJal = 21,
  kJalr = 22,
  kOpCount = 23,
};

/// Device backend for loads/stores at or above kMmioBase.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual std::uint32_t mmio_read(std::uint32_t addr) = 0;
  virtual void mmio_write(std::uint32_t addr, std::uint32_t value) = 0;
};

enum class RunStatus {
  kReturned,        // hit the return sentinel: routine completed normally
  kHalted,          // executed HALT (deliberate stop -> interface hang)
  kFault,           // invalid opcode / bad address / misaligned access
  kBudgetExceeded,  // still running after max_cycles: runaway loop
  kRestart,         // jumped to the reset vector (address 0)
};

const char* to_string(RunStatus s);

struct RunResult {
  RunStatus status = RunStatus::kReturned;
  std::uint64_t cycles = 0;
  std::uint32_t pc = 0;       // pc when execution stopped
  std::string detail;         // human-readable fault description
};

class Cpu {
 public:
  static constexpr std::uint32_t kReturnAddr = 0xfffffffcu;
  static constexpr unsigned kNumRegs = 16;

  Cpu(Sram& sram, MmioDevice& mmio) : sram_(sram), mmio_(mmio) { reset(); }

  void reset();

  [[nodiscard]] std::uint32_t reg(unsigned i) const { return regs_[i & 15u]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if ((i & 15u) != 0) regs_[i & 15u] = v;
  }

  /// Execute from `entry` until return/halt/fault or `max_cycles` spent.
  RunResult run(std::uint32_t entry, std::uint64_t max_cycles);

  /// Total cycles executed since construction (LANai utilization metric).
  [[nodiscard]] std::uint64_t total_cycles() const noexcept {
    return total_cycles_;
  }

 private:
  Sram& sram_;
  MmioDevice& mmio_;
  std::uint32_t regs_[kNumRegs] = {};
  std::uint64_t total_cycles_ = 0;
};

// --- encoding helpers (shared with the assembler and fault classifier) ---

constexpr std::uint32_t encode(Op op, unsigned rd, unsigned rs1, unsigned rs2,
                               std::int32_t imm18) {
  return (static_cast<std::uint32_t>(op) << 26) | ((rd & 15u) << 22) |
         ((rs1 & 15u) << 18) | ((rs2 & 15u) << 14) |
         (static_cast<std::uint32_t>(imm18) & 0x3ffffu);
}

constexpr Op op_of(std::uint32_t w) {
  const auto v = w >> 26;
  return v < static_cast<std::uint32_t>(Op::kOpCount) ? static_cast<Op>(v)
                                                      : Op::kInvalid;
}
constexpr unsigned rd_of(std::uint32_t w) { return (w >> 22) & 15u; }
constexpr unsigned rs1_of(std::uint32_t w) { return (w >> 18) & 15u; }
constexpr unsigned rs2_of(std::uint32_t w) { return (w >> 14) & 15u; }
constexpr std::int32_t imm18_of(std::uint32_t w) {
  const auto raw = w & 0x3ffffu;
  return (raw & 0x20000u) ? static_cast<std::int32_t>(raw | 0xfffc0000u)
                          : static_cast<std::int32_t>(raw);
}

}  // namespace myri::lanai
