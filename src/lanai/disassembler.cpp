#include "lanai/disassembler.hpp"

#include <cstdio>
#include <sstream>

namespace myri::lanai {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kHalt: return "halt";
    case Op::kNop: return "nop";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kMul: return "mul";
    case Op::kAddi: return "addi";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kSw: return "sw";
    case Op::kLb: return "lb";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    default: return "invalid";
  }
}

const char* to_string(Field f) {
  switch (f) {
    case Field::kOpcode: return "opcode";
    case Field::kRd: return "rd";
    case Field::kRs1: return "rs1";
    case Field::kRs2: return "rs2";
    case Field::kImm: return "imm";
    case Field::kUnused: return "unused";
  }
  return "?";
}

namespace {

enum class Format { kNone, kR, kI, kLoadStore, kBranch, kJal, kJalr, kLui };

Format format_of(Op op) {
  switch (op) {
    case Op::kHalt:
    case Op::kNop:
      return Format::kNone;
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kMul:
      return Format::kR;
    case Op::kAddi:
      return Format::kI;
    case Op::kLui:
      return Format::kLui;
    case Op::kLw:
    case Op::kSw:
    case Op::kLb:
    case Op::kSb:
      return Format::kLoadStore;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      return Format::kBranch;
    case Op::kJal:
      return Format::kJal;
    case Op::kJalr:
      return Format::kJalr;
    default:
      return Format::kNone;
  }
}

}  // namespace

std::string disassemble(std::uint32_t w) {
  const Op op = op_of(w);
  const unsigned rd = rd_of(w), rs1 = rs1_of(w), rs2 = rs2_of(w);
  const std::int32_t imm = imm18_of(w);
  std::ostringstream os;
  os << mnemonic(op);
  switch (format_of(op)) {
    case Format::kNone:
      break;
    case Format::kR:
      os << " r" << rd << ", r" << rs1 << ", r" << rs2;
      break;
    case Format::kI:
      os << " r" << rd << ", r" << rs1 << ", " << imm;
      break;
    case Format::kLui:
      os << " r" << rd << ", 0x" << std::hex << (w & 0x3ffffu);
      break;
    case Format::kLoadStore:
      os << " r" << rd << ", " << imm << "(r" << rs1 << ")";
      break;
    case Format::kBranch:
      os << " r" << rd << ", r" << rs1 << ", " << imm;
      break;
    case Format::kJal:
      os << " r" << rd << ", 0x" << std::hex << ((w & 0x3ffffu) << 2);
      break;
    case Format::kJalr:
      os << " r" << rd << ", r" << rs1;
      break;
  }
  return os.str();
}

Field field_of_bit(std::uint32_t word, unsigned bit) {
  bit &= 31u;
  if (bit >= 26) return Field::kOpcode;
  const Format f = format_of(op_of(word));
  if (bit >= 22) {
    return f == Format::kNone ? Field::kUnused : Field::kRd;
  }
  if (bit >= 18) {
    switch (f) {
      case Format::kR:
      case Format::kI:
      case Format::kLoadStore:
      case Format::kBranch:
      case Format::kJalr:
        return Field::kRs1;
      case Format::kLui:
      case Format::kJal:
        return Field::kUnused;
      default:
        return Field::kUnused;
    }
  }
  // bits 17..0
  switch (f) {
    case Format::kR:
      return bit >= 14 ? Field::kRs2 : Field::kUnused;
    case Format::kI:
    case Format::kLoadStore:
    case Format::kBranch:
    case Format::kLui:
    case Format::kJal:
      return Field::kImm;
    case Format::kJalr:
    case Format::kNone:
    default:
      return Field::kUnused;
  }
}

std::string disassemble_range(const Sram& sram, std::uint32_t base,
                              std::uint32_t len_bytes) {
  std::ostringstream os;
  for (std::uint32_t a = base; a + 4 <= base + len_bytes; a += 4) {
    if (!sram.in_range(a, 4)) break;
    const std::uint32_t w = sram.read32(a);
    char head[32];
    std::snprintf(head, sizeof(head), "0x%05x: %08x  ", a, w);
    os << head << disassemble(w) << '\n';
  }
  return os.str();
}

}  // namespace myri::lanai
