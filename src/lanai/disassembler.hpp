// LanISA disassembler.
//
// Used by the fault-injection analysis to report which instruction (and
// which field of it) a bit flip landed in, and by debugging tools to dump
// SRAM code segments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lanai/cpu.hpp"
#include "lanai/sram.hpp"

namespace myri::lanai {

/// Mnemonic for an opcode ("addi", "lw", ... or "invalid").
const char* mnemonic(Op op);

/// One instruction word -> "addi r2, r0, 0x4100" style text.
std::string disassemble(std::uint32_t word);

/// Which encoding field a bit index (0..31) falls in for this opcode.
enum class Field {
  kOpcode,    // bits 31..26
  kRd,        // bits 25..22
  kRs1,       // bits 21..18
  kRs2,       // bits 17..14 (R-type)
  kImm,       // bits 17..0  (I-type/branch/jump)
  kUnused,    // ignored bits (R-type low bits)
};

const char* to_string(Field f);

/// Classify bit `bit` (0 = LSB) of instruction `word`.
Field field_of_bit(std::uint32_t word, unsigned bit);

/// Disassemble a code range from SRAM; one line per word:
/// "0x1010: 2c48000a  lw   r3, 10(r2)".
std::string disassemble_range(const Sram& sram, std::uint32_t base,
                              std::uint32_t len_bytes);

}  // namespace myri::lanai
