#include "lanai/nic.hpp"

#include <algorithm>
#include <cstring>

#include "lanai/tx_descriptor.hpp"

namespace myri::lanai {

Nic::Nic(sim::EventQueue& eq, Config cfg, std::string name)
    : eq_(eq),
      cfg_(cfg),
      name_(std::move(name)),
      sram_(cfg.sram_bytes),
      cpu_(sram_, *this) {
  for (int i = 0; i < kNumTimers; ++i) {
    timers_.push_back(std::make_unique<IntervalTimer>(
        eq_, cfg_.timing.timer_tick, [this, i] { on_timer_expired(i); }));
  }
}

void Nic::attach_host(host::HostMemory& hmem, host::PciBus& pci,
                      host::InterruptController& irq) {
  hmem_ = &hmem;
  pci_ = &pci;
  irq_ = &irq;
}

void Nic::set_route(net::NodeId dst, std::vector<std::uint8_t> route) {
  routes_[dst] = std::move(route);
}

const std::vector<std::uint8_t>* Nic::route(net::NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

void Nic::set_isr_bits(std::uint32_t bits) {
  isr_ |= bits;
  maybe_raise_host_irq();
}

void Nic::maybe_raise_host_irq() {
  // The IMR gates which ISR bits interrupt the host. FTGM routes only the
  // watchdog timer (IT1) through it; GM leaves the IMR clear and polls.
  if ((isr_ & imr_) != 0 && irq_ != nullptr) {
    irq_->raise(host::IrqLine::kFatal);
  }
}

void Nic::arm_timer(int idx, std::uint32_t ticks) {
  timers_.at(static_cast<std::size_t>(idx))->arm(ticks);
}

std::uint32_t Nic::timer_remaining(int idx) const {
  return timers_.at(static_cast<std::size_t>(idx))->remaining();
}

void Nic::on_timer_expired(int idx) {
  set_isr_bits(idx == 0 ? kIsrIt0 : idx == 1 ? kIsrIt1 : kIsrIt2);
  if (hooks_.on_timer) hooks_.on_timer(idx);
}

void Nic::start_hdma(bool to_sram, host::DmaAddr haddr, std::uint32_t laddr,
                     std::uint32_t len) {
  if (hdma_busy_ || pci_ == nullptr || hmem_ == nullptr) {
    ++stats_.tx_errors;
    return;
  }
  hdma_busy_ = true;
  const std::uint64_t epoch = hdma_epoch_;
  pci_->dma(len, [this, to_sram, haddr, laddr, len, epoch] {
    if (epoch != hdma_epoch_) return;  // card was reset mid-transfer
    hdma_busy_ = false;
    ++stats_.hdma_transfers;
    stats_.hdma_bytes += len;
    if (to_sram) {
      // Read DMA from host memory. Reads of unpinned-but-existing memory
      // return stale garbage (a data corruption, not a crash); reads
      // beyond physical memory master-abort, which on this platform's
      // chipset raises an NMI: the host goes down.
      auto dst = sram_.bytes(laddr, len);
      if (dst.size() == len) {
        auto src = hmem_->at(haddr, len);
        if (src.size() == len) {
          std::memcpy(dst.data(), src.data(), len);
        } else {
          ++stats_.wild_dma_reads;
          std::fill(dst.begin(), dst.end(), std::byte{0xff});
          if (on_host_crash_) on_host_crash_();
        }
      }
    } else {
      // Write DMA into host memory. Writes outside pinned regions scribble
      // over kernel/user state: the "host computer crash" failure category.
      const bool safe = pinned_ok_ && pinned_ok_(haddr, len) &&
                        hmem_->at(haddr, len).size() == len;
      auto src = sram_.bytes(laddr, len);
      if (safe && src.size() == len) {
        hmem_->write(haddr, src);
      } else {
        ++stats_.wild_dma_writes;
        if (on_host_crash_) on_host_crash_();
      }
    }
    set_isr_bits(kIsrHdmaDone);
    if (hooks_.on_hdma_done) hooks_.on_hdma_done();
  });
}

void Nic::tx_from_descriptor(std::uint32_t desc_addr) {
  using L = TxDescLayout;
  if (!sram_.in_range(desc_addr, L::kSize)) {
    ++stats_.tx_errors;
    return;
  }
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.src = node_id_;
  pkt.dst = static_cast<net::NodeId>(sram_.read32(desc_addr + L::kDst));
  pkt.seq = sram_.read32(desc_addr + L::kSeq);
  pkt.stream = sram_.read32(desc_addr + L::kStream);
  pkt.dst_port = static_cast<std::uint8_t>(sram_.read32(desc_addr + L::kDstPort));
  pkt.src_port = static_cast<std::uint8_t>(sram_.read32(desc_addr + L::kSrcPort));
  pkt.msg_id = sram_.read32(desc_addr + L::kMsgId);
  pkt.msg_len = sram_.read32(desc_addr + L::kMsgLen);
  pkt.frag_offset = sram_.read32(desc_addr + L::kFragOffset);
  const std::uint32_t flags = sram_.read32(desc_addr + L::kFlags);
  pkt.priority = static_cast<std::uint8_t>(flags & 1u);
  pkt.directed = (flags & 4u) != 0;
  pkt.notify = (flags & 8u) != 0;
  pkt.target_vaddr = sram_.read32(desc_addr + L::kTarget);

  const std::uint32_t pay_addr = sram_.read32(desc_addr + L::kPayloadAddr);
  const std::uint32_t pay_len = sram_.read32(desc_addr + L::kPayloadLen);
  if (pay_len > net::kMaxPacketPayload || !sram_.in_range(pay_addr, pay_len)) {
    ++stats_.tx_errors;
    return;
  }
  auto src = sram_.bytes(pay_addr, pay_len);
  pkt.payload.assign(src.begin(), src.end());
  pkt.seal();
  send_packet(std::move(pkt));
}

void Nic::send_packet(net::Packet pkt, bool resolve_route) {
  if (uplink_ == nullptr) {
    ++stats_.tx_errors;
    return;
  }
  if (resolve_route && pkt.route.empty()) {
    const auto* r = route(pkt.dst);
    if (r == nullptr) {
      ++stats_.tx_errors;
      if (trace_ && trace_->on(sim::TraceCat::kNic)) {
        trace_->log(sim::TraceCat::kNic, eq_.now(), name_,
                    "no route to " + std::to_string(pkt.dst));
      }
      return;
    }
    pkt.route = *r;
  }
  ++stats_.pkts_tx;
  if (trace_ && trace_->on(sim::TraceCat::kNic)) {
    trace_->log(sim::TraceCat::kNic, eq_.now(), name_, "TX " + pkt.describe());
  }
  uplink_->send(std::move(pkt));
}

net::Packet Nic::rx_pop() {
  net::Packet p = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return p;
}

void Nic::ring_doorbell() {
  set_isr_bits(kIsrDoorbell);
  if (hooks_.on_doorbell) hooks_.on_doorbell();
}

void Nic::deliver(net::Packet pkt, std::uint8_t /*in_port*/) {
  if (rx_queue_.size() >= cfg_.rx_queue_cap) {
    // Backpressure overflow: a wedged MCP stops draining; packets die here
    // and Go-Back-N on the peer retransmits (or its watchdog fires). The
    // RECV condition is level-triggered: the ISR stays asserted and the
    // notification still fires so a freshly reloaded MCP starts draining.
    ++stats_.rx_dropped_full;
    set_isr_bits(kIsrRecv);
    if (hooks_.on_rx) hooks_.on_rx();
    return;
  }
  ++stats_.pkts_rx;
  if (trace_ && trace_->on(sim::TraceCat::kNic)) {
    trace_->log(sim::TraceCat::kNic, eq_.now(), name_, "RX " + pkt.describe());
  }
  rx_queue_.push_back(std::move(pkt));
  set_isr_bits(kIsrRecv);
  if (hooks_.on_rx) hooks_.on_rx();
}

void Nic::reset() {
  isr_ = 0;
  imr_ = 0;
  for (auto& t : timers_) t->disarm();
  hdma_busy_ = false;
  ++hdma_epoch_;  // orphan any in-flight DMA completion
  rx_queue_.clear();
  routes_.clear();
  scratch_ = 0;
  cpu_.reset();
}

std::uint32_t Nic::mmio_read(std::uint32_t addr) {
  switch (addr) {
    case kRegIsr: return isr_;
    case kRegImr: return imr_;
    case kRegIt0: return timer_remaining(0);
    case kRegIt1: return timer_remaining(1);
    case kRegIt2: return timer_remaining(2);
    case kRegHdmaHost: return hdma_host_;
    case kRegHdmaLocal: return hdma_local_;
    case kRegHdmaLen: return hdma_len_;
    case kRegHdmaCtrl: return hdma_busy_ ? 1u : 0u;
    case kRegScratch: return scratch_;
    default: return 0;
  }
}

void Nic::mmio_write(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kRegIsr: isr_ &= ~value; break;  // write-1-to-clear
    case kRegImr: imr_ = value; maybe_raise_host_irq(); break;
    case kRegIt0: arm_timer(0, value); break;
    case kRegIt1: arm_timer(1, value); break;
    case kRegIt2: arm_timer(2, value); break;
    case kRegHdmaHost: hdma_host_ = value; break;
    case kRegHdmaLocal: hdma_local_ = value; break;
    case kRegHdmaLen: hdma_len_ = value; break;
    case kRegHdmaCtrl:
      // bit1: SRAM->host write; else bit0: host->SRAM read.
      if (value & 2u) {
        start_hdma(false, hdma_host_, hdma_local_, hdma_len_);
      } else if (value & 1u) {
        start_hdma(true, hdma_host_, hdma_local_, hdma_len_);
      }
      break;
    case kRegTxDesc: tx_from_descriptor(value); break;
    case kRegScratch: scratch_ = value; break;
    default: break;  // unmapped MMIO writes are ignored (bus sink)
  }
}

}  // namespace myri::lanai
