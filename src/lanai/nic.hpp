// The LANai host-interface card: SRAM, CPU, timers, DMA, packet interface.
//
// Composes every on-card device behind one MMIO register file so the
// interpreted MCP code and the native protocol engine drive the same
// hardware state. The paper's key architectural assumption — timers and
// interrupt logic keep running when the network processor hangs — holds
// here by construction: timers are independent simulation events.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/pci.hpp"
#include "host/timing.hpp"
#include "lanai/cpu.hpp"
#include "lanai/registers.hpp"
#include "lanai/sram.hpp"
#include "lanai/timer.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/trace.hpp"

namespace myri::lanai {

struct NicStats {
  std::uint64_t pkts_tx = 0;
  std::uint64_t pkts_rx = 0;
  std::uint64_t rx_dropped_full = 0;   // RX queue overflow (hung MCP)
  std::uint64_t tx_errors = 0;         // bad descriptor / missing route
  std::uint64_t hdma_transfers = 0;
  std::uint64_t hdma_bytes = 0;
  std::uint64_t wild_dma_reads = 0;    // master-abort reads (return 0xff)
  std::uint64_t wild_dma_writes = 0;   // host-crashing writes
};

class Nic final : public MmioDevice, public net::PacketSink {
 public:
  struct Config {
    std::size_t sram_bytes = 1 << 20;   // LANai9-class SRAM
    std::size_t rx_queue_cap = 64;
    host::LanaiTiming timing;
  };

  struct Hooks {
    std::function<void()> on_doorbell;    // host rang the doorbell
    std::function<void()> on_hdma_done;   // host DMA completed
    std::function<void(int)> on_timer;    // interval timer idx expired
    std::function<void()> on_rx;          // packet appended to RX queue
  };

  Nic(sim::EventQueue& eq, Config cfg, std::string name);

  // ---- wiring ----
  void attach_uplink(net::Link& up) { uplink_ = &up; }
  void attach_host(host::HostMemory& hmem, host::PciBus& pci,
                   host::InterruptController& irq);
  /// Predicate for DMA-safety of host addresses (pinned-region check).
  void set_pinned_checker(std::function<bool(host::DmaAddr, std::size_t)> f) {
    pinned_ok_ = std::move(f);
  }
  /// Invoked when a wild DMA write clobbers unpinned host memory.
  void set_host_crash_handler(std::function<void()> f) {
    on_host_crash_ = std::move(f);
  }
  void set_hooks(Hooks h) { hooks_ = std::move(h); }
  void set_trace(sim::Trace* t) { trace_ = t; }

  [[nodiscard]] Sram& sram() noexcept { return sram_; }
  [[nodiscard]] Cpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] sim::EventQueue& event_queue() noexcept { return eq_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] const NicStats& stats() const noexcept { return stats_; }

  // ---- identity & routing (programmed by the driver / mapper) ----
  void set_node_id(net::NodeId id) { node_id_ = id; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }
  void set_route(net::NodeId dst, std::vector<std::uint8_t> route);
  [[nodiscard]] const std::vector<std::uint8_t>* route(net::NodeId dst) const;
  void clear_routes() { routes_.clear(); }
  [[nodiscard]] std::size_t num_routes() const { return routes_.size(); }

  // ---- registers (native view; MMIO uses the same state) ----
  [[nodiscard]] std::uint32_t isr() const noexcept { return isr_; }
  void set_isr_bits(std::uint32_t bits);
  void clear_isr_bits(std::uint32_t bits) { isr_ &= ~bits; }
  [[nodiscard]] std::uint32_t imr() const noexcept { return imr_; }
  void set_imr(std::uint32_t v) { imr_ = v; }
  void arm_timer(int idx, std::uint32_t ticks);
  [[nodiscard]] std::uint32_t timer_remaining(int idx) const;

  // ---- host DMA engine ----
  [[nodiscard]] bool hdma_busy() const noexcept { return hdma_busy_; }
  /// Start a host<->SRAM DMA. Completion sets kIsrHdmaDone and fires
  /// on_hdma_done. Starting while busy is ignored (counted as tx error).
  void start_hdma(bool to_sram, host::DmaAddr haddr, std::uint32_t laddr,
                  std::uint32_t len);

  // ---- packet interface ----
  /// Transmit a packet described by the SRAM descriptor at `desc_addr`
  /// (route looked up from the on-card route table).
  void tx_from_descriptor(std::uint32_t desc_addr);
  /// Native transmit path for protocol packets (ACK/NACK, mapper traffic).
  /// With `resolve_route`, an empty route is filled from the route table;
  /// without it the packet goes out as-is (mapper probes may legitimately
  /// carry an empty route, addressed to whatever sits one hop away).
  void send_packet(net::Packet pkt, bool resolve_route = true);
  [[nodiscard]] bool rx_empty() const noexcept { return rx_queue_.empty(); }
  [[nodiscard]] std::size_t rx_depth() const noexcept {
    return rx_queue_.size();
  }
  net::Packet rx_pop();

  /// Host rings the doorbell (PIO write from the driver/library).
  void ring_doorbell();

  /// Card reset: registers, timers, DMA, RX queue and routes return to
  /// power-on state. SRAM contents are preserved (the FTD clears SRAM as a
  /// separate, slower step, as the paper describes).
  void reset();

  // ---- PacketSink ----
  void deliver(net::Packet pkt, std::uint8_t in_port) override;

  // ---- MmioDevice ----
  std::uint32_t mmio_read(std::uint32_t addr) override;
  void mmio_write(std::uint32_t addr, std::uint32_t value) override;

 private:
  void on_timer_expired(int idx);
  void maybe_raise_host_irq();

  sim::EventQueue& eq_;
  Config cfg_;
  std::string name_;
  Sram sram_;
  Cpu cpu_;
  net::Link* uplink_ = nullptr;
  host::HostMemory* hmem_ = nullptr;
  host::PciBus* pci_ = nullptr;
  host::InterruptController* irq_ = nullptr;
  std::function<bool(host::DmaAddr, std::size_t)> pinned_ok_;
  std::function<void()> on_host_crash_;
  Hooks hooks_;
  sim::Trace* trace_ = nullptr;

  net::NodeId node_id_ = net::kInvalidNode;
  std::unordered_map<net::NodeId, std::vector<std::uint8_t>> routes_;

  std::uint32_t isr_ = 0;
  std::uint32_t imr_ = 0;
  std::vector<std::unique_ptr<IntervalTimer>> timers_;

  bool hdma_busy_ = false;
  std::uint32_t hdma_host_ = 0;
  std::uint32_t hdma_local_ = 0;
  std::uint32_t hdma_len_ = 0;
  std::uint64_t hdma_epoch_ = 0;  // invalidates in-flight DMA on reset

  std::deque<net::Packet> rx_queue_;
  std::uint32_t scratch_ = 0;
  NicStats stats_;
};

}  // namespace myri::lanai
