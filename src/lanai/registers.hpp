// LANai memory-mapped register file: address map and ISR bit assignments.
//
// The interpreted MCP code accesses devices through these MMIO addresses;
// native MCP code uses the same registers through the Nic API, so both
// views stay coherent.
#pragma once

#include <cstdint>

namespace myri::lanai {

inline constexpr std::uint32_t kMmioBase = 0xf0000000u;

enum MmioReg : std::uint32_t {
  kRegIsr = kMmioBase + 0x00,        // read; write-1-to-clear
  kRegImr = kMmioBase + 0x04,        // interrupt mask toward the host
  kRegIt0 = kMmioBase + 0x08,        // interval timers: write arms (ticks)
  kRegIt1 = kMmioBase + 0x0c,
  kRegIt2 = kMmioBase + 0x10,
  kRegHdmaHost = kMmioBase + 0x20,   // host DMA: host address
  kRegHdmaLocal = kMmioBase + 0x24,  // host DMA: SRAM address
  kRegHdmaLen = kMmioBase + 0x28,    // host DMA: length (bytes)
  kRegHdmaCtrl = kMmioBase + 0x2c,   // write 1: host->SRAM, 2: SRAM->host;
                                     // read: 1 while the engine is busy
  kRegTxDesc = kMmioBase + 0x30,     // write SRAM descriptor addr: transmit
  kRegScratch = kMmioBase + 0x3c,    // r/w scratch (tests)
};

// Interface status register bits.
enum IsrBit : std::uint32_t {
  kIsrIt0 = 1u << 0,
  kIsrIt1 = 1u << 1,
  kIsrIt2 = 1u << 2,
  kIsrHdmaDone = 1u << 3,
  kIsrSendDone = 1u << 4,
  kIsrRecv = 1u << 5,
  kIsrDoorbell = 1u << 6,   // host signalled new work
};

/// Number of interval timers on the LANai (paper Section 4.2).
inline constexpr int kNumTimers = 3;

}  // namespace myri::lanai
