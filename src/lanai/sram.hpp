// LANai on-board SRAM.
//
// Stores the MCP image (including the interpreted send_chunk code the fault
// campaign flips bits in), packet staging buffers, descriptor rings and the
// FTD's magic word. Byte-addressable, little-endian 32-bit accessors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace myri::lanai {

class Sram {
 public:
  explicit Sram(std::size_t bytes) : mem_(bytes) {}

  [[nodiscard]] std::size_t size() const noexcept { return mem_.size(); }

  [[nodiscard]] bool in_range(std::uint32_t addr,
                              std::size_t len) const noexcept {
    return addr <= mem_.size() && len <= mem_.size() - addr;
  }

  // Unchecked fast accessors (callers validate with in_range / the CPU's
  // bus checker). 32-bit accesses must be 4-byte aligned.
  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const {
    return static_cast<std::uint8_t>(mem_[addr]);
  }
  void write8(std::uint32_t addr, std::uint8_t v) {
    mem_[addr] = static_cast<std::byte>(v);
  }
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const {
    return static_cast<std::uint32_t>(read8(addr)) |
           static_cast<std::uint32_t>(read8(addr + 1)) << 8 |
           static_cast<std::uint32_t>(read8(addr + 2)) << 16 |
           static_cast<std::uint32_t>(read8(addr + 3)) << 24;
  }
  void write32(std::uint32_t addr, std::uint32_t v) {
    write8(addr, static_cast<std::uint8_t>(v));
    write8(addr + 1, static_cast<std::uint8_t>(v >> 8));
    write8(addr + 2, static_cast<std::uint8_t>(v >> 16));
    write8(addr + 3, static_cast<std::uint8_t>(v >> 24));
  }

  [[nodiscard]] std::span<std::byte> bytes(std::uint32_t addr,
                                           std::size_t len) {
    if (!in_range(addr, len)) return {};
    return {mem_.data() + addr, len};
  }
  [[nodiscard]] std::span<const std::byte> bytes(std::uint32_t addr,
                                                 std::size_t len) const {
    if (!in_range(addr, len)) return {};
    return {mem_.data() + addr, len};
  }

  /// Zero the whole SRAM (card reset / FTD clear step).
  void clear() { std::fill(mem_.begin(), mem_.end(), std::byte{0}); }

  /// Flip one bit (fault injection).
  void flip_bit(std::uint32_t addr, unsigned bit) {
    mem_[addr] ^= static_cast<std::byte>(1u << (bit & 7u));
  }

 private:
  std::vector<std::byte> mem_;
};

}  // namespace myri::lanai
