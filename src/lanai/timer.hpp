// LANai interval timer: a 32-bit down-counter decremented every 0.5 us.
//
// Writing a value arms the timer; on expiry it sets its ISR bit (via the
// owner's callback) and stays expired until re-armed — exactly the
// semantics the paper's watchdog relies on: L_timer() re-arms IT1 in time
// during normal operation, and a hung MCP lets it expire.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace myri::lanai {

class IntervalTimer {
 public:
  IntervalTimer(sim::EventQueue& eq, sim::Time tick,
                std::function<void()> on_expire)
      : eq_(eq), tick_(tick), on_expire_(std::move(on_expire)) {}

  /// Arm with `ticks` timer ticks; 0 disarms. Re-arming cancels the
  /// previous expiry.
  void arm(std::uint32_t ticks) {
    pending_.cancel();
    if (ticks == 0) return;
    expiry_ = eq_.now() + static_cast<sim::Time>(ticks) * tick_;
    pending_ = eq_.schedule_at(expiry_, [this] {
      if (on_expire_) on_expire_();
    });
  }

  void disarm() { pending_.cancel(); }

  [[nodiscard]] bool armed() const { return pending_.pending(); }

  /// Remaining ticks (0 when expired or disarmed).
  [[nodiscard]] std::uint32_t remaining() const {
    if (!pending_.pending() || expiry_ <= eq_.now()) return 0;
    return static_cast<std::uint32_t>((expiry_ - eq_.now()) / tick_);
  }

 private:
  sim::EventQueue& eq_;
  sim::Time tick_;
  std::function<void()> on_expire_;
  sim::EventQueue::Handle pending_;
  sim::Time expiry_ = 0;
};

}  // namespace myri::lanai
