// SRAM layout of the transmit descriptor that send_chunk builds and the
// packet interface consumes. Shared between the interpreted assembly (field
// offsets appear as immediates in mcp/send_chunk) and the native
// Nic::tx_from_descriptor() reader, so keep them in sync.
#pragma once

#include <cstdint>

namespace myri::lanai {

struct TxDescLayout {
  static constexpr std::uint32_t kDst = 0;          // destination node id
  static constexpr std::uint32_t kSeq = 4;          // sequence number
  static constexpr std::uint32_t kStream = 8;       // stream id
  static constexpr std::uint32_t kDstPort = 12;     // destination GM port
  static constexpr std::uint32_t kPayloadAddr = 16; // SRAM staging address
  static constexpr std::uint32_t kPayloadLen = 20;  // bytes
  static constexpr std::uint32_t kMsgId = 24;
  static constexpr std::uint32_t kMsgLen = 28;
  static constexpr std::uint32_t kFragOffset = 32;
  static constexpr std::uint32_t kFlags = 36;       // bit0: priority,
                                                    // bit2: directed send
  static constexpr std::uint32_t kSrcPort = 40;     // source GM port
  static constexpr std::uint32_t kTarget = 44;      // directed target vaddr
  static constexpr std::uint32_t kSize = 48;
};

}  // namespace myri::lanai
