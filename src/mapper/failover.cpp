#include "mapper/failover.hpp"

#include <algorithm>
#include <vector>

namespace myri::mapper {

namespace {
std::vector<std::uint64_t> route_len_bounds() {
  // Routes are a handful of bytes (one per traversed switch): linear
  // 1..16 buckets beat the registry's exponential time defaults.
  std::vector<std::uint64_t> b;
  for (std::uint64_t i = 1; i <= 16; ++i) b.push_back(i);
  return b;
}
}  // namespace

FailoverManager::FailoverManager(gm::Cluster& cluster, Config cfg)
    : cluster_(cluster),
      cfg_(cfg),
      mapper_(cluster.node(cfg.home_node), cfg.mapper) {
  metrics::Registry& reg = cluster_.metrics();
  cable_events_ = &reg.counter("fabric.cable_events");
  remaps_ok_ = &reg.counter("fabric.failover.remaps");
  remaps_failed_ = &reg.counter("fabric.failover.failed_remaps");
  remap_ns_ = &reg.histogram("fabric.failover.remap_ns");
  route_len_ = &reg.histogram("fabric.route_len_hops", route_len_bounds());
  // Snapshot semantics: holds only the current epoch's routes (reset on
  // every remap by record_route_lengths). Marked windowed so generic
  // window rollers (Registry::roll_windowed, driven by soak mode) and the
  // drift oracle's bounded-accumulation probe know it never accumulates.
  route_len_->set_windowed();
  mapper_.bind_metrics(reg);
  cluster_.topo().set_cable_listener(
      [this](net::Topology::CableId id, bool down) {
        on_cable_event(id, down);
      });
  joins_ = &reg.counter("mapper.joins");
  drains_ = &reg.counter("mapper.drains");
  replaces_ = &reg.counter("mapper.replaces");
  // The fabric roster: scrub() census-probes roster nodes the map never
  // discovered, and convergence is only "full" once all of them are in.
  mapper_.set_expected_roster(cluster_.roster().members());
  // Membership deltas are first-class control-plane events: a clean join
  // folds in via census (no full remap), a retirement evicts the node
  // from the map and the cross-epoch caches, a replacement re-pushes the
  // table to the fresh card.
  cluster_.set_membership_listener(
      [this](const gm::RosterEvent& ev) { on_roster_event(ev); });
  // A node the current map does not contain announced itself or answered
  // a census probe (it was hung through discovery and just recovered):
  // fold it back in with a remap.
  mapper_.set_on_node_returned([this](net::NodeId) {
    on_progress();
    request_remap();
  });
  // Any sign of life from a missing/lagging card resets the retry budgets
  // (self-healing: an outage longer than the budget still converges once
  // the node is back, with no external trigger).
  mapper_.set_on_progress([this] { on_progress(); });
}

void FailoverManager::on_roster_event(const gm::RosterEvent& ev) {
  switch (ev.kind) {
    case gm::MembershipChange::kJoin: {
      metrics::bump(joins_);
      // Tell the mapper where the new card is cabled so a census probe
      // reaches it before any discovery has scouted it.
      const net::Placement& at = cluster_.fabric().placements()[ev.node];
      mapper_.note_attach(
          ev.node, DeviceRef{net::DeviceKind::kSwitch, at.sw}.key(), at.port);
      mapper_.set_expected_roster(cluster_.roster().members());
      if (mapper_.epoch() == 0) {
        // Nothing mapped yet: the initial bring-up remap covers the
        // joiner along with everyone else.
        request_remap();
        break;
      }
      // Clean join: no full remap. The scrub/census loop probes the new
      // attach point; the announce/scout answer folds the node in and
      // bumps the route epoch for just the affected rows.
      on_progress();
      mapper_.scrub();
      if (!fully_converged()) arm_scrub();
      break;
    }
    case gm::MembershipChange::kDrain:
      metrics::bump(drains_);
      // Still a member while draining: admission control is the nodes'
      // business, the map keeps routing its in-flight traffic.
      mapper_.set_expected_roster(cluster_.roster().members());
      break;
    case gm::MembershipChange::kRetire:
      mapper_.retire_node(ev.node);
      mapper_.set_expected_roster(cluster_.roster().members());
      break;
    case gm::MembershipChange::kReplace: {
      metrics::bump(replaces_);
      const net::Placement& at = cluster_.fabric().placements()[ev.node];
      mapper_.note_attach(
          ev.node, DeviceRef{net::DeviceKind::kSwitch, at.sw}.key(), at.port);
      mapper_.node_replaced(ev.node);
      mapper_.set_expected_roster(cluster_.roster().members());
      on_progress();
      if (!fully_converged()) arm_scrub();
      break;
    }
    case gm::MembershipChange::kSeed:
      mapper_.set_expected_roster(cluster_.roster().members());
      break;
  }
}

void FailoverManager::on_cable_event(net::Topology::CableId, bool) {
  metrics::bump(cable_events_);
  on_progress();  // fresh external trigger: fresh retry budgets
  request_remap();
}

void FailoverManager::on_progress() {
  remap_retries_ = 0;
  scrub_strikes_ = 0;
  if (gave_up_) {
    // The repair loop had stopped into silence; a sign of life revives it.
    gave_up_ = false;
    if (!fully_converged()) arm_scrub();
  }
}

void FailoverManager::request_remap() {
  if (running_) {
    // Routes computed from the pre-event map may already be stale when
    // they land; queue exactly one follow-up remap.
    rerun_ = true;
    return;
  }
  if (!pending_) {
    pending_ = true;
    trigger_time_ = cluster_.eq().now();
    cluster_.eq().schedule_after(cfg_.debounce, [this] {
      pending_ = false;
      start_remap();
    });
  }
}

void FailoverManager::remap_now(std::function<void(bool)> done) {
  user_done_ = std::move(done);
  if (running_) {
    rerun_ = true;
    return;
  }
  trigger_time_ = cluster_.eq().now();
  start_remap();
}

void FailoverManager::start_remap() {
  running_ = true;
  mapper_.run([this](bool ok) { finish_remap(ok); });
}

void FailoverManager::finish_remap(bool ok) {
  running_ = false;
  metrics::observe(remap_ns_, cluster_.eq().now() - trigger_time_);
  if (ok) {
    ++remaps_;
    metrics::bump(remaps_ok_);
    record_route_lengths();
    if (mapper_.interfaces().size() >=
        static_cast<std::size_t>(cluster_.size())) {
      remap_retries_ = 0;
    } else if (!rerun_) {
      // Short map: a node the cluster owns did not answer its scout (hung
      // card, probe lost to a lossy window). Its old routes stay installed
      // everywhere, but a remap is the only way to fold it back in.
      schedule_remap_retry();
    }
    if (!fully_converged()) arm_scrub();
  } else {
    ++failed_;
    metrics::bump(remaps_failed_);
    if (!rerun_) schedule_remap_retry();
  }
  if (rerun_) {
    rerun_ = false;
    trigger_time_ = cluster_.eq().now();
    start_remap();
    return;
  }
  if (user_done_) {
    auto cb = std::move(user_done_);
    user_done_ = nullptr;
    cb(ok);
  }
}

void FailoverManager::schedule_remap_retry() {
  if (retry_pending_) return;
  if (remap_retries_ >= cfg_.max_remap_retries) {
    // Out of remap patience into silence (progress would have reset the
    // budget). The scrub/census loop, if armed, keeps probing and can
    // still revive things; with nothing armed the control plane has
    // formally given up — visible via gave_up(), never as quiet success.
    if (!scrub_armed_) gave_up_ = true;
    return;
  }
  retry_pending_ = true;
  const sim::Time wait = cfg_.remap_retry_backoff
                         << std::min<std::uint32_t>(remap_retries_, 3);
  ++remap_retries_;
  cluster_.eq().schedule_after(wait, [this] {
    retry_pending_ = false;
    if (running_ || pending_) return;  // something else already remapping
    trigger_time_ = cluster_.eq().now();
    start_remap();
  });
}

void FailoverManager::arm_scrub() {
  if (scrub_armed_) return;
  scrub_armed_ = true;
  cluster_.eq().schedule_after(cfg_.scrub_interval, [this] {
    scrub_armed_ = false;
    if (mapper_.epoch() == 0) return;
    if (running_ || pending_) {
      arm_scrub();  // remap in flight; re-check after it lands
      return;
    }
    if (fully_converged() && mapper_.distribution_idle()) {
      scrub_strikes_ = 0;
      return;  // done; the next trigger re-arms
    }
    if (++scrub_strikes_ > cfg_.max_scrub_strikes) {
      // Strikes of probing into pure silence: stop so the event queue
      // can drain. A later announce revives the loop via on_progress().
      gave_up_ = true;
      return;
    }
    mapper_.scrub();
    arm_scrub();
  });
}

bool FailoverManager::settled() const {
  if (running_ || pending_ || retry_pending_) return false;
  if (!mapper_.distribution_idle()) return false;
  if (mapper_.epoch() == 0 || fully_converged()) return true;
  // Unconverged: settled only in the terminal give-up state. While the
  // scrub/census loop is still armed, repair is still in flight — a
  // runner must keep waiting (budget exhaustion alone used to read as
  // "settled", silently passing unconverged fabrics off as success).
  return gave_up_ && !scrub_armed_;
}

void FailoverManager::record_route_lengths() {
  // Snapshot of the CURRENT epoch's routes: re-observing every pair on
  // every remap would skew the percentiles toward the most-remapped
  // topology (and count pairs, not routes, across the run). The reset is
  // this histogram's window roll (it is marked windowed at registration);
  // soak mode additionally rolls all windowed histograms per check
  // window via Registry::roll_windowed().
  route_len_->reset();
  for (const net::NodeId a : mapper_.interfaces()) {
    for (const auto& [b, route] : mapper_.routes_from_interface(a)) {
      (void)b;
      metrics::observe(route_len_, route.size());
    }
  }
}

}  // namespace myri::mapper
