#include "mapper/failover.hpp"

#include <vector>

namespace myri::mapper {

namespace {
std::vector<std::uint64_t> route_len_bounds() {
  // Routes are a handful of bytes (one per traversed switch): linear
  // 1..16 buckets beat the registry's exponential time defaults.
  std::vector<std::uint64_t> b;
  for (std::uint64_t i = 1; i <= 16; ++i) b.push_back(i);
  return b;
}
}  // namespace

FailoverManager::FailoverManager(gm::Cluster& cluster, Config cfg)
    : cluster_(cluster),
      cfg_(cfg),
      mapper_(cluster.node(cfg.home_node), cfg.mapper) {
  metrics::Registry& reg = cluster_.metrics();
  cable_events_ = &reg.counter("fabric.cable_events");
  remaps_ok_ = &reg.counter("fabric.failover.remaps");
  remaps_failed_ = &reg.counter("fabric.failover.failed_remaps");
  remap_ns_ = &reg.histogram("fabric.failover.remap_ns");
  route_len_ = &reg.histogram("fabric.route_len_hops", route_len_bounds());
  cluster_.topo().set_cable_listener(
      [this](net::Topology::CableId id, bool down) {
        on_cable_event(id, down);
      });
}

void FailoverManager::on_cable_event(net::Topology::CableId, bool) {
  metrics::bump(cable_events_);
  if (running_) {
    // Routes computed from the pre-event map may already be stale when
    // they land; queue exactly one follow-up remap.
    rerun_ = true;
    return;
  }
  if (!pending_) {
    pending_ = true;
    trigger_time_ = cluster_.eq().now();
    cluster_.eq().schedule_after(cfg_.debounce, [this] {
      pending_ = false;
      start_remap();
    });
  }
}

void FailoverManager::remap_now(std::function<void(bool)> done) {
  user_done_ = std::move(done);
  if (running_) {
    rerun_ = true;
    return;
  }
  trigger_time_ = cluster_.eq().now();
  start_remap();
}

void FailoverManager::start_remap() {
  running_ = true;
  mapper_.run([this](bool ok) { finish_remap(ok); });
}

void FailoverManager::finish_remap(bool ok) {
  running_ = false;
  metrics::observe(remap_ns_, cluster_.eq().now() - trigger_time_);
  if (ok) {
    ++remaps_;
    metrics::bump(remaps_ok_);
    record_route_lengths();
  } else {
    ++failed_;
    metrics::bump(remaps_failed_);
  }
  if (rerun_) {
    rerun_ = false;
    trigger_time_ = cluster_.eq().now();
    start_remap();
    return;
  }
  if (user_done_) {
    auto cb = std::move(user_done_);
    user_done_ = nullptr;
    cb(ok);
  }
}

void FailoverManager::record_route_lengths() {
  for (const net::NodeId a : mapper_.interfaces()) {
    for (const auto& [b, route] : mapper_.routes_from_interface(a)) {
      (void)b;
      metrics::observe(route_len_, route.size());
    }
  }
}

}  // namespace myri::mapper
