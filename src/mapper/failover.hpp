// Mapper-driven link failover (paper Section 2, end to end).
//
// Watches the fabric for cable state changes and re-runs the GM mapper
// from a home node whenever one fires: the fabric is re-discovered, fresh
// route tables are distributed to every card under a new route epoch, and
// in-flight GM traffic resumes on the surviving paths without application
// changes (Go-Back-N pushes the stalled window through the new routes).
//
// On top of the raw remap trigger this owns the control plane's repair
// loops:
//   - a slow periodic scrub that probes the installed epoch of every node
//     still lagging the current one (re-verify; real GM's remapping-scout
//     analogue) and census-probes roster nodes the map never discovered,
//     until the fabric converges AND the expected roster (fed from the
//     cluster's endpoint placement) is fully mapped,
//   - retrying remaps that failed or came back short (the mapper host's
//     own card hung, scouts lost to a lossy window) with bounded backoff,
//   - remapping when a node absent from the current map announces itself
//     after FTD recovery or answers a census probe (it was hung through
//     discovery).
//
// Budgets reset on progress, not only on external cable events: any
// announce, census answer, laggard ack or new-interface scout reply
// resets the remap retry budget and the scrub strike counter, so an
// outage longer than the budget still heals the moment the node shows
// life — no fresh trigger needed. Only total silence (max_scrub_strikes
// consecutive scrub passes with no progress signal, ~30 s) stops the
// repair loop; that terminal state is visible via gave_up() and surfaced
// by the chaos oracle as a route-convergence violation.
//
// Failover latency, post-remap route lengths and control-plane telemetry
// are published through the cluster's metrics::Registry:
//   fabric.cable_events            cable up/down transitions seen
//   fabric.failover.remaps         remaps completed ok
//   fabric.failover.failed_remaps  remaps that found nothing
//   fabric.failover.remap_ns       cable event -> routes distributed
//   fabric.route_len_hops          route length per reachable pair of the
//                                  CURRENT epoch (snapshot per remap, not
//                                  cumulative across remaps)
//   mapper.route_epoch             current route epoch (gauge)
//   mapper.map_route_retries       MAP_ROUTE chunks re-sent on ack timeout
//   mapper.scrub_repairs           full-table re-pushes to lagging nodes
//   mapper.census_probes           probes to expected-but-unmapped nodes
//   fabric.route_converge_us       epoch push -> every node acked
//   mapper.joins/drains/replaces   membership deltas folded into the map
//
// Membership deltas (gm::Roster events) are first-class triggers next to
// cable transitions: a clean join is folded in via census probe at its
// recorded attach point (no full remap), a retirement evicts the node
// from the map and the cross-epoch caches, a replacement re-pushes the
// current table to the fresh card under the same NodeId.
#pragma once

#include <cstdint>
#include <functional>

#include "gm/cluster.hpp"
#include "mapper/mapper.hpp"
#include "metrics/registry.hpp"
#include "sim/time.hpp"

namespace myri::mapper {

class FailoverManager {
 public:
  struct Config {
    Mapper::Config mapper{};
    /// Coalescing window: cable events arriving while a remap is pending
    /// or running fold into one follow-up remap instead of stacking.
    sim::Time debounce = sim::usec(100);
    int home_node = 0;  // the node the mapper runs on
    /// Scrub cadence while any mapped node lags the current epoch. The
    /// timer stops once the fabric converges so an idle cluster's event
    /// queue still drains (virtual time has no background noise).
    sim::Time scrub_interval = sim::msec(50);
    /// Backoff base for retrying failed/short remaps (doubles, capped).
    sim::Time remap_retry_backoff = sim::msec(100);
    /// Retry budget for failed/short remaps. Resets on any external
    /// trigger AND on any progress signal from the mapper (announce,
    /// census answer, laggard ack, new-interface scout reply).
    std::uint32_t max_remap_retries = 8;
    /// Consecutive scrub passes with work left but no progress signal
    /// before the repair loop stops (gave_up()) so the event queue can
    /// drain. Progress resets the count; a later announce revives the
    /// loop. 600 x 50 ms = ~30 s of probing into silence.
    std::uint32_t max_scrub_strikes = 600;
  };

  /// Registers itself as the topology's cable listener. Must outlive the
  /// last cable event delivered to the cluster's topology.
  FailoverManager(gm::Cluster& cluster, Config cfg);
  explicit FailoverManager(gm::Cluster& cluster)
      : FailoverManager(cluster, Config{}) {}

  /// Force a remap now (initial bring-up on an unmapped fabric, or after
  /// out-of-band changes). `done(ok)` fires when routes are distributed.
  void remap_now(std::function<void(bool)> done = {});

  [[nodiscard]] std::uint64_t remaps() const noexcept { return remaps_; }
  [[nodiscard]] std::uint64_t failed_remaps() const noexcept {
    return failed_;
  }
  [[nodiscard]] bool remap_in_progress() const noexcept { return running_; }
  [[nodiscard]] const Mapper& mapper() const noexcept { return mapper_; }

  /// True when every node in the mapper's table acked the current epoch.
  [[nodiscard]] bool converged() const { return mapper_.converged(); }
  /// converged() AND every roster node (the cluster's endpoint placement)
  /// is present in the map — a short map that acked everywhere it reaches
  /// is NOT fully converged.
  [[nodiscard]] bool fully_converged() const {
    return mapper_.converged() && mapper_.roster_complete();
  }
  /// Control plane fully settled: nothing running, pending or retrying,
  /// and the fabric fully converged — or the repair loop gave up, which
  /// settles the event queue but is a failure, not success (gave_up()).
  [[nodiscard]] bool settled() const;
  /// Terminal repair failure: retry/scrub budgets ran into silence with
  /// the fabric not fully converged. A later progress signal clears it.
  [[nodiscard]] bool gave_up() const {
    return gave_up_ && !fully_converged();
  }
  /// Run one scrub pass immediately (tests / out-of-band verification).
  void scrub_now() { mapper_.scrub(); }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  /// Current retry-budget positions. Both are capped by design
  /// (Config::max_remap_retries / max_scrub_strikes, reset on progress);
  /// the soak drift oracle treats a counter wandering past its cap as a
  /// budget-accounting bug.
  [[nodiscard]] std::uint32_t remap_retries() const noexcept {
    return remap_retries_;
  }
  [[nodiscard]] std::uint32_t scrub_strikes() const noexcept {
    return scrub_strikes_;
  }
  /// Test-only passthrough of Mapper::set_retain_retired_caches (the
  /// planted cache leak the soak drift oracle must catch).
  void test_retain_retired_caches(bool retain) noexcept {
    mapper_.set_retain_retired_caches(retain);
  }
  /// Forward kMapper tracing to the owned mapper.
  void set_trace(sim::Trace* t) { mapper_.set_trace(t); }

 private:
  void on_cable_event(net::Topology::CableId id, bool down);
  void on_roster_event(const gm::RosterEvent& ev);
  void on_progress();
  void request_remap();
  void start_remap();
  void finish_remap(bool ok);
  void schedule_remap_retry();
  void arm_scrub();
  void record_route_lengths();

  gm::Cluster& cluster_;
  Config cfg_;
  Mapper mapper_;
  bool pending_ = false;  // debounce timer armed
  bool running_ = false;  // mapper run in flight
  bool rerun_ = false;    // events arrived mid-run: go again
  bool scrub_armed_ = false;
  bool retry_pending_ = false;  // failed/short-remap retry scheduled
  bool gave_up_ = false;        // repair loop stopped into silence
  std::uint32_t remap_retries_ = 0;
  std::uint32_t scrub_strikes_ = 0;  // scrub passes since last progress
  sim::Time trigger_time_ = 0;
  std::uint64_t remaps_ = 0;
  std::uint64_t failed_ = 0;
  std::function<void(bool)> user_done_;

  metrics::Counter* cable_events_ = nullptr;
  metrics::Counter* joins_ = nullptr;
  metrics::Counter* drains_ = nullptr;
  metrics::Counter* replaces_ = nullptr;
  metrics::Counter* remaps_ok_ = nullptr;
  metrics::Counter* remaps_failed_ = nullptr;
  metrics::Histogram* remap_ns_ = nullptr;
  metrics::Histogram* route_len_ = nullptr;
};

}  // namespace myri::mapper
