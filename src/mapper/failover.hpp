// Mapper-driven link failover (paper Section 2, end to end).
//
// Watches the fabric for cable state changes and re-runs the GM mapper
// from a home node whenever one fires: the fabric is re-discovered, fresh
// route tables are distributed to every card, and in-flight GM traffic
// resumes on the surviving paths without application changes (Go-Back-N
// pushes the stalled window through the new routes). Failover latency and
// post-remap route lengths are published through the cluster's
// metrics::Registry:
//   fabric.cable_events            cable up/down transitions seen
//   fabric.failover.remaps         remaps completed ok
//   fabric.failover.failed_remaps  remaps that found nothing
//   fabric.failover.remap_ns       cable event -> routes distributed
//   fabric.route_len_hops          route length per reachable pair
#pragma once

#include <cstdint>
#include <functional>

#include "gm/cluster.hpp"
#include "mapper/mapper.hpp"
#include "metrics/registry.hpp"
#include "sim/time.hpp"

namespace myri::mapper {

class FailoverManager {
 public:
  struct Config {
    Mapper::Config mapper{};
    /// Coalescing window: cable events arriving while a remap is pending
    /// or running fold into one follow-up remap instead of stacking.
    sim::Time debounce = sim::usec(100);
    int home_node = 0;  // the node the mapper runs on
  };

  /// Registers itself as the topology's cable listener. Must outlive the
  /// last cable event delivered to the cluster's topology.
  FailoverManager(gm::Cluster& cluster, Config cfg);
  explicit FailoverManager(gm::Cluster& cluster)
      : FailoverManager(cluster, Config{}) {}

  /// Force a remap now (initial bring-up on an unmapped fabric, or after
  /// out-of-band changes). `done(ok)` fires when routes are distributed.
  void remap_now(std::function<void(bool)> done = {});

  [[nodiscard]] std::uint64_t remaps() const noexcept { return remaps_; }
  [[nodiscard]] std::uint64_t failed_remaps() const noexcept {
    return failed_;
  }
  [[nodiscard]] bool remap_in_progress() const noexcept { return running_; }
  [[nodiscard]] const Mapper& mapper() const noexcept { return mapper_; }

 private:
  void on_cable_event(net::Topology::CableId id, bool down);
  void start_remap();
  void finish_remap(bool ok);
  void record_route_lengths();

  gm::Cluster& cluster_;
  Config cfg_;
  Mapper mapper_;
  bool pending_ = false;  // debounce timer armed
  bool running_ = false;  // mapper run in flight
  bool rerun_ = false;    // events arrived mid-run: go again
  sim::Time trigger_time_ = 0;
  std::uint64_t remaps_ = 0;
  std::uint64_t failed_ = 0;
  std::function<void(bool)> user_done_;

  metrics::Counter* cable_events_ = nullptr;
  metrics::Counter* remaps_ok_ = nullptr;
  metrics::Counter* remaps_failed_ = nullptr;
  metrics::Histogram* remap_ns_ = nullptr;
  metrics::Histogram* route_len_ = nullptr;
};

}  // namespace myri::mapper
