#include "mapper/mapper.hpp"

#include <algorithm>
#include <deque>
#include <utility>

namespace myri::mapper {

namespace {

constexpr std::uint32_t vertex_key(net::DeviceKind k, std::uint16_t id) {
  return static_cast<std::uint32_t>(k) << 16 | id;
}

/// MAP_ROUTE payloads are bounded by the packet size; chunk the table.
constexpr std::size_t kChunk = 40;

/// Unknown-port census probes per scrub pass (see scrub()): bounds the
/// sweep's per-pass cost on big fabrics; the rotating cursor covers the
/// rest on later passes.
constexpr std::size_t kCensusSweepMax = 32;

std::vector<std::uint64_t> converge_us_bounds() {
  // Convergence is dominated by ack round trips and retry backoff: tens
  // of microseconds on a quiet fabric, tens of milliseconds when chunks
  // are being retried into a lossy window.
  return {50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000};
}

}  // namespace

Mapper::Mapper(gm::Node& home, Config cfg) : home_(home), cfg_(cfg) {
  // The handler survives MCP reloads, so it is safe to install once: the
  // mapper host keeps receiving scout replies, chunk acks and announces
  // even across its own card's recovery.
  home_.mcp().set_map_reply_handler([this](const net::Packet& pkt) {
    if (pkt.type == net::PacketType::kMapRouteAck) {
      on_route_ack(pkt);
    } else {
      on_reply(pkt);
    }
  });
}

void Mapper::run(std::function<void(bool)> done) {
  done_ = std::move(done);
  devices_.clear();
  pending_.clear();
  running_ = true;
  ++stats_.runs;

  // Seed the graph with the mapper's own interface.
  DeviceInfo self;
  self.ref = {net::DeviceKind::kInterface, home_.id()};
  self.ports = 1;
  devices_[self.ref.key()] = self;

  // Probe whatever is at the end of our own cable.
  send_scout({}, std::nullopt, 0);
}

void Mapper::send_scout(std::vector<std::uint8_t> route,
                        std::optional<std::uint32_t> parent,
                        std::uint8_t out_port, std::uint32_t tries) {
  const std::uint32_t id = next_scout_++;
  pending_[id] = PendingScout{route, parent, out_port, tries};
  ++stats_.scouts_sent;

  net::Packet pkt;
  pkt.type = net::PacketType::kMapScout;
  pkt.src = home_.id();
  pkt.msg_id = id;
  pkt.route = std::move(route);
  pkt.seal();
  home_.mcp().send_raw(std::move(pkt));

  home_.event_queue().schedule_after(cfg_.scout_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingScout ctx = std::move(it->second);
    pending_.erase(it);
    if (ctx.tries + 1 < cfg_.scout_tries) {
      // Reply lost — or still queued behind the discovery burst on the
      // home link. Re-probe: the retry rides a fabric the burst has long
      // drained from, so a live node answers in time. Without this, the
      // tail of a large fabric's reply wave deterministically misses the
      // map, and a node that was never mapped is invisible to census.
      ++stats_.scout_retries;
      send_scout(std::move(ctx.route), ctx.parent, ctx.out_port,
                 ctx.tries + 1);
      return;
    }
    ++stats_.timeouts;  // nothing at the end of that route
    if (pending_.empty() && running_) finish_discovery();
  });
}

void Mapper::on_reply(const net::Packet& pkt) {
  auto it = pending_.find(pkt.msg_id);
  if (it == pending_.end()) return;  // late reply after timeout
  const PendingScout ctx = std::move(it->second);
  pending_.erase(it);
  ++stats_.replies;

  const net::MapReplyInfo info = net::MapReplyInfo::decode(pkt.payload);
  // An interface the current map lacks answered a scout: a missing node
  // came (back) to life mid-remap. Progress for the owner's retry budget.
  if (epoch_ > 0 && info.kind == net::DeviceKind::kInterface &&
      table_.count(info.id) == 0 && on_progress_) {
    on_progress_();
  }
  const DeviceRef v{info.kind, info.id};
  const std::uint32_t vkey = v.key();
  const std::uint32_t parent_key =
      ctx.parent ? *ctx.parent
                 : vertex_key(net::DeviceKind::kInterface, home_.id());
  const std::uint8_t parent_port = ctx.parent ? ctx.out_port : 0;
  // The probe's recorded input ports give the far end of the last cable:
  // for a switch it is the last walked entry; an interface has one port.
  const std::uint8_t far_port =
      info.kind == net::DeviceKind::kSwitch && !info.walked.empty()
          ? info.walked.back()
          : 0;

  const bool fresh = devices_.find(vkey) == devices_.end();
  if (fresh) {
    DeviceInfo d;
    d.ref = v;
    d.ports = info.ports;
    d.scout_route = ctx.route;
    devices_[vkey] = std::move(d);
  }
  devices_[parent_key].neighbours[parent_port] = {vkey, far_port};
  devices_[vkey].neighbours[far_port] = {parent_key, parent_port};

  if (fresh && info.kind == net::DeviceKind::kSwitch &&
      ctx.route.size() < cfg_.max_depth) {
    for (std::uint8_t q = 0; q < info.ports; ++q) {
      if (q == far_port) continue;  // don't probe back the way we came
      std::vector<std::uint8_t> r = ctx.route;
      r.push_back(q);
      send_scout(std::move(r), vkey, q);
    }
  }
  if (pending_.empty() && running_) finish_discovery();
}

void Mapper::finish_discovery() {
  running_ = false;
  if (num_switches() == 0 || interfaces().empty()) {
    if (done_) {
      auto cb = std::move(done_);
      done_ = nullptr;
      cb(false);
    }
    return;
  }
  compute_and_distribute();
}

std::vector<net::NodeId> Mapper::interfaces() const {
  std::vector<net::NodeId> out;
  for (const auto& [key, d] : devices_) {
    if (d.ref.kind == net::DeviceKind::kInterface) out.push_back(d.ref.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Mapper::num_switches() const {
  std::size_t n = 0;
  for (const auto& [key, d] : devices_) {
    if (d.ref.kind == net::DeviceKind::kSwitch) ++n;
  }
  return n;
}

std::map<std::uint32_t, std::vector<std::uint8_t>> Mapper::routes_from(
    std::uint32_t src_key) const {
  // BFS producing, per reachable vertex, the source route (the output port
  // taken at each *switch* along the path; interface hops emit no byte).
  struct Hop {
    std::uint32_t parent;
    std::uint8_t out_port;  // port used at the parent
  };
  std::map<std::uint32_t, Hop> prev;
  std::deque<std::uint32_t> frontier{src_key};
  prev[src_key] = {src_key, 0};
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    auto it = devices_.find(u);
    if (it == devices_.end()) continue;
    for (const auto& [port, edge] : it->second.neighbours) {
      const auto [w, wport] = edge;
      if (prev.count(w) != 0) continue;
      prev[w] = {u, port};
      frontier.push_back(w);
    }
  }
  std::map<std::uint32_t, std::vector<std::uint8_t>> out;
  for (const auto& [v, hop] : prev) {
    if (v == src_key) continue;
    // Reconstruct backwards, collecting switch output ports.
    std::vector<std::uint8_t> rev;
    std::uint32_t cur = v;
    while (cur != src_key) {
      const Hop& h = prev.at(cur);
      const auto pit = devices_.find(h.parent);
      const bool parent_is_switch =
          pit != devices_.end() &&
          pit->second.ref.kind == net::DeviceKind::kSwitch;
      if (parent_is_switch) rev.push_back(h.out_port);
      cur = h.parent;
    }
    out[v] = {rev.rbegin(), rev.rend()};
  }
  return out;
}

std::map<net::NodeId, std::vector<std::uint8_t>>
Mapper::routes_from_interface(net::NodeId a) const {
  std::map<net::NodeId, std::vector<std::uint8_t>> out;
  const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, a));
  for (const auto& [key, route] : routes) {
    const auto it = devices_.find(key);
    if (it == devices_.end() ||
        it->second.ref.kind != net::DeviceKind::kInterface) {
      continue;
    }
    out.emplace(it->second.ref.id, route);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Mapper::route_between(
    net::NodeId a, net::NodeId b) const {
  const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, a));
  auto it = routes.find(vertex_key(net::DeviceKind::kInterface, b));
  if (it == routes.end()) return std::nullopt;
  return it->second;
}

// --------------------------------------------------------------------------
// Epoch-versioned distribution
// --------------------------------------------------------------------------

void Mapper::compute_and_distribute() {
  ++epoch_;
  scrubs_since_map_ = 0;
  if (m_epoch_) m_epoch_->set(epoch_);
  table_.clear();
  home_route_.clear();
  dist_.clear();
  converged_.clear();
  converge_observed_ = false;
  distributing_ = true;
  dist_start_ = home_.event_queue().now();

  // Retired members are skipped even if a discovery scouted them before
  // their cable was unplugged (the retire/remap race).
  std::vector<net::NodeId> ifaces;
  for (const net::NodeId x : interfaces()) {
    if (retired_.count(x) == 0) ifaces.push_back(x);
  }
  const auto home_routes =
      routes_from(vertex_key(net::DeviceKind::kInterface, home_.id()));
  for (net::NodeId x : ifaces) {
    auto hit = home_routes.find(vertex_key(net::DeviceKind::kInterface, x));
    if (hit != home_routes.end()) {
      home_route_[x] = hit->second;
      last_route_[x] = hit->second;  // census fallback, survives epochs
    }
    // Remember the attach point (switch, port) across epochs: the census
    // re-derives probe routes to it from whatever the graph looks like
    // later, instead of replaying bytes frozen at this epoch.
    const auto dit =
        devices_.find(vertex_key(net::DeviceKind::kInterface, x));
    if (dit != devices_.end() && !dit->second.neighbours.empty()) {
      const auto& [nb_key, nb_port] = dit->second.neighbours.begin()->second;
      last_attach_[x] = {nb_key, nb_port};
    }
  }

  // Build the whole table before distributing anything: mark_converged's
  // "everyone acked" check walks table_, so a partially built table would
  // declare convergence the moment the home node self-installs.
  for (net::NodeId x : ifaces) {
    const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, x));
    std::vector<net::RouteEntry> entries;
    for (net::NodeId y : ifaces) {
      if (y == x) continue;
      auto rit = routes.find(vertex_key(net::DeviceKind::kInterface, y));
      if (rit != routes.end()) entries.push_back({y, rit->second});
    }
    table_[x] = std::move(entries);
  }
  for (const auto& [x, entries] : table_) {
    if (x == home_.id()) {
      // Local install: the mapper host programs its own card directly and
      // stamps its driver shadow as complete at this epoch.
      for (const auto& e : entries) {
        home_.install_route(e.dst, e.route);
      }
      home_.driver().record_local_epoch(epoch_);
      mark_converged(x);
      continue;
    }
    if (home_route_.count(x) != 0) start_distribution(x);
  }
  trace("epoch " + std::to_string(epoch_) + ": routes for " +
        std::to_string(table_.size()) + " node(s), " +
        std::to_string(dist_.size()) + " remote push(es)");
  check_distribution_done();
}

bool Mapper::fold_in(net::NodeId x) {
  if (running_) return false;  // discovery in flight: it re-scouts anyway
  if (retired_.count(x) != 0) return false;
  const auto ait = last_attach_.find(x);
  if (ait == last_attach_.end()) return false;
  const auto [sw_key, sw_port] = ait->second;
  const auto dit = devices_.find(sw_key);
  if (dit == devices_.end()) return false;
  const std::uint32_t vkey = vertex_key(net::DeviceKind::kInterface, x);
  const auto nb = dit->second.neighbours.find(sw_port);
  if (nb != dit->second.neighbours.end() && nb->second.first != vkey) {
    return false;  // someone else holds that port now: view is stale
  }
  if (devices_.count(vkey) == 0) {
    DeviceInfo d;
    d.ref = {net::DeviceKind::kInterface, x};
    d.ports = 1;
    d.scout_route = dit->second.scout_route;
    d.scout_route.push_back(sw_port);
    devices_[vkey] = std::move(d);
  }
  dit->second.neighbours[sw_port] = {vkey, 0};
  devices_[vkey].neighbours[0] = {sw_key, sw_port};
  ++stats_.census_folds;
  compute_and_distribute();
  return true;
}

void Mapper::start_distribution(net::NodeId x) {
  converged_.erase(x);
  const std::vector<net::RouteEntry>& entries = table_[x];
  Distribution d;
  for (std::size_t i = 0; i < entries.size(); i += kChunk) {
    d.chunks.emplace_back(
        entries.begin() + static_cast<std::ptrdiff_t>(i),
        entries.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + kChunk, entries.size())));
  }
  if (d.chunks.empty()) d.chunks.emplace_back();  // empty table still acks
  d.acked.assign(d.chunks.size(), false);
  d.gen = ++dist_gen_;
  auto [it, ignored] = dist_.insert_or_assign(x, std::move(d));
  for (std::size_t i = 0; i < it->second.chunks.size(); ++i) {
    send_chunk(x, it->second, i);
  }
  arm_retry(x);
}

void Mapper::push_routes(net::NodeId x) {
  if (table_.count(x) == 0 || home_route_.count(x) == 0) return;
  if (dist_.count(x) != 0) return;  // push already in flight
  ++stats_.repushes;
  metrics::bump(m_scrub_repairs_);
  trace("node " + std::to_string(x) + ": re-push @ epoch " +
        std::to_string(epoch_));
  start_distribution(x);
}

void Mapper::send_chunk(net::NodeId x, const Distribution& d, std::size_t i) {
  auto rit = home_route_.find(x);
  if (rit == home_route_.end()) return;
  net::Packet pkt;
  pkt.type = net::PacketType::kMapRoute;
  pkt.src = home_.id();
  pkt.dst = x;
  pkt.route = rit->second;
  net::RouteUpdate u;
  u.epoch = epoch_;
  u.chunk = static_cast<std::uint16_t>(i);
  u.nchunks = static_cast<std::uint16_t>(d.chunks.size());
  u.entries = d.chunks[i];
  pkt.payload = u.encode();
  pkt.seal();
  ++stats_.route_packets;
  home_.mcp().send_raw(std::move(pkt));
}

void Mapper::arm_retry(net::NodeId x) {
  const auto it = dist_.find(x);
  if (it == dist_.end()) return;
  const std::uint64_t gen = it->second.gen;
  // Bounded exponential backoff: 1x, 2x, 4x ... 32x the base timeout.
  const sim::Time wait =
      cfg_.ack_timeout << std::min<std::uint32_t>(it->second.round, 5);
  home_.event_queue().schedule_after(wait, [this, x, gen] {
    auto dit = dist_.find(x);
    if (dit == dist_.end() || dit->second.gen != gen) return;  // superseded
    Distribution& d = dit->second;
    if (d.round >= cfg_.max_ack_retries) {
      // Retry budget exhausted: leave the node to scrub/announce repair
      // so a single dead card cannot wedge the remap forever.
      trace("node " + std::to_string(x) +
            ": ack retries exhausted, leaving to scrub");
      dist_.erase(dit);
      check_distribution_done();
      return;
    }
    ++d.round;
    std::size_t resent = 0;
    for (std::size_t i = 0; i < d.chunks.size(); ++i) {
      if (d.acked[i]) continue;
      ++stats_.route_retries;
      metrics::bump(m_retries_);
      send_chunk(x, d, i);
      ++resent;
    }
    trace("node " + std::to_string(x) + ": retry round " +
          std::to_string(d.round) + " (" + std::to_string(resent) +
          " chunk(s))");
    arm_retry(x);
  });
}

void Mapper::on_route_ack(const net::Packet& pkt) {
  const net::RouteAck a = net::RouteAck::decode(pkt.payload);
  const net::NodeId node = pkt.src;
  ++stats_.route_acks;
  if (retired_.count(node) != 0) return;  // stale ack from a retired card

  const bool known = table_.count(node) != 0;
  // Evidence a previously missing/lagging card is alive (see
  // set_on_progress): an announce, an answer from a node the current map
  // does not contain (current-epoch only — a late ack from an old push to
  // a since-removed node proves nothing about *now*), or a laggard heard
  // outside an in-flight push. Deliberately not every chunk ack.
  const bool progress =
      a.announce || (!known && a.epoch == epoch_) ||
      (known && converged_.count(node) == 0 && dist_.count(node) == 0);

  auto it = dist_.find(node);
  if (it != dist_.end() && a.epoch == epoch_ &&
      a.chunk != net::kProbeChunk && a.chunk < it->second.acked.size()) {
    it->second.acked[a.chunk] = true;
  }
  const bool all_acked =
      it != dist_.end() &&
      std::all_of(it->second.acked.begin(), it->second.acked.end(),
                  [](bool b) { return b; });
  if (a.installed_epoch >= epoch_ || all_acked) {
    dist_.erase(node);
    mark_converged(node);
    check_distribution_done();
  } else if (dist_.count(node) != 0) {
    // Push in flight: its retries cover the node.
  } else if (converged_.count(node) != 0) {
    // Stale ack from an older push.
  } else if (known) {
    // Scrub probe or announce found a laggard the map knows: repair it.
    push_routes(node);
  } else if (a.announce || a.epoch == epoch_) {
    // A node the current map never saw (hung through discovery, or its
    // scout replies lost to link loss) is back — it announced, or
    // answered a census probe we sent at this epoch. Re-running full
    // discovery here is how remap storms perpetuate under sustained
    // loss: every re-scout can lose a different node's replies, which
    // the next census folds back in, forever. The answer itself proves
    // where the node sits (the probe rode a current-graph route to its
    // attach port), so graft it in incrementally; only fall back to a
    // full remap when the attach point is unknown or contested.
    const bool folded = fold_in(node);
    trace("node " + std::to_string(node) + ": " +
          (a.announce ? "announced" : "answered census probe,") +
          " installed epoch " + std::to_string(a.installed_epoch) +
          (folded ? ", not in map -> fold in" : ", not in map -> remap"));
    if (!folded && on_node_returned_) on_node_returned_(node);
  }
  if (progress && on_progress_) on_progress_();
}

void Mapper::mark_converged(net::NodeId x) {
  if (!converged_.insert(x).second || converge_observed_) return;
  for (const auto& [node, entries] : table_) {
    if (converged_.count(node) == 0) return;
  }
  converge_observed_ = true;
  trace("epoch " + std::to_string(epoch_) + " converged");
  metrics::observe(m_converge_us_,
                   (home_.event_queue().now() - dist_start_) / 1000);
}

void Mapper::check_distribution_done() {
  if (!distributing_ || !dist_.empty()) return;
  distributing_ = false;
  // Fire asynchronously: run()'s contract is that done() never re-enters
  // the caller's stack (the old settle timer behaved the same way).
  home_.event_queue().schedule_after(0, [this] {
    if (done_) {
      auto cb = std::move(done_);
      done_ = nullptr;
      cb(true);
    }
  });
}

bool Mapper::converged() const {
  for (const auto& [node, entries] : table_) {
    if (converged_.count(node) == 0) return false;
  }
  return true;
}

std::vector<net::NodeId> Mapper::stale_nodes() const {
  std::vector<net::NodeId> out;
  for (const auto& [node, entries] : table_) {
    if (converged_.count(node) == 0) out.push_back(node);
  }
  return out;
}

void Mapper::scrub() {
  if (epoch_ == 0) return;
  ++scrubs_since_map_;
  std::size_t probes = 0;
  for (const auto& [x, entries] : table_) {
    if (x == home_.id() || converged_.count(x) != 0 || dist_.count(x) != 0) {
      continue;
    }
    auto rit = home_route_.find(x);
    if (rit == home_route_.end()) continue;
    net::Packet pkt;
    pkt.type = net::PacketType::kMapRoute;
    pkt.src = home_.id();
    pkt.dst = x;
    pkt.route = rit->second;
    pkt.payload = net::RouteUpdate{epoch_, 0, 0, {}}.encode();
    pkt.seal();
    ++stats_.scrub_probes;
    ++probes;
    home_.mcp().send_raw(std::move(pkt));
  }
  // Census: the roster says these nodes exist but the current map has no
  // trace of them (hung through every remap, recovery announce lost).
  // An answer arrives as an ack from a node not in table_, which triggers
  // on_node_returned_ -> remap.
  std::size_t census = 0;
  bool need_sweep = false;
  std::vector<net::NodeId> missing;
  for (const net::NodeId x : roster_) {
    if (x != home_.id() && table_.count(x) == 0) missing.push_back(x);
  }
  std::map<std::uint32_t, std::vector<std::uint8_t>> fresh;
  if (!missing.empty()) {
    // Probe routes are re-derived from the *current* switch graph every
    // pass: bytes frozen at the epoch the node vanished in may no longer
    // reach its attach point after the fabric was remapped around faults.
    fresh = routes_from(vertex_key(net::DeviceKind::kInterface, home_.id()));
  }
  const auto send_probe = [&](net::NodeId dst,
                              std::vector<std::uint8_t> route) {
    net::Packet pkt;
    pkt.type = net::PacketType::kMapRoute;
    pkt.src = home_.id();
    pkt.dst = dst;
    pkt.route = std::move(route);
    pkt.payload = net::RouteUpdate{epoch_, 0, 0, {}}.encode();
    pkt.seal();
    home_.mcp().send_raw(std::move(pkt));
  };
  for (const net::NodeId x : missing) {
    std::vector<std::uint8_t> route;
    const auto ait = last_attach_.find(x);
    if (ait != last_attach_.end() && devices_.count(ait->second.first) != 0) {
      // Current-graph route to the node's last attach switch, plus the
      // host port it sat on.
      const auto rit = fresh.find(ait->second.first);
      if (rit != fresh.end()) {
        route = rit->second;
        route.push_back(ait->second.second);
      }
    }
    if (route.empty()) {
      // Attach switch itself missing from the current map: fall back to
      // the last route ever known (best effort).
      const auto lit = last_route_.find(x);
      if (lit != last_route_.end()) route = lit->second;
    }
    if (route.empty()) {
      need_sweep = true;  // never mapped: no address for it at all
      continue;
    }
    ++stats_.census_probes;
    metrics::bump(m_census_probes_);
    ++census;
    send_probe(x, std::move(route));
  }
  // Unknown-port sweep: a roster node never present in any map has no
  // attach point and no last route — the only transport left is to knock
  // on switch ports the current map shows no neighbour behind. Probes
  // into genuinely dark ports are dropped by the fabric; a live card
  // answers with an ack and gets folded back in. A rotating cursor plus
  // a per-pass cap keeps big fabrics' sweeps cheap and deterministic.
  // The sweep is a last resort: while mapping runs are still landing
  // (storms under loss), every run re-scouts all ports anyway, so only
  // sweep once the map has survived two full scrub passes unchanged.
  std::size_t sweep = 0;
  if (need_sweep && scrubs_since_map_ >= 2) {
    std::vector<std::vector<std::uint8_t>> candidates;
    for (const auto& [key, dev] : devices_) {
      if (dev.ref.kind != net::DeviceKind::kSwitch) continue;
      const auto rit = fresh.find(key);
      if (rit == fresh.end()) continue;
      for (std::uint8_t p = 0; p < dev.ports; ++p) {
        if (dev.neighbours.count(p) != 0) continue;
        std::vector<std::uint8_t> route = rit->second;
        route.push_back(p);
        candidates.push_back(std::move(route));
      }
    }
    if (!candidates.empty()) {
      const std::size_t cap =
          std::min<std::size_t>(candidates.size(), kCensusSweepMax);
      for (std::size_t i = 0; i < cap; ++i) {
        std::vector<std::uint8_t> route =
            candidates[(sweep_cursor_ + i) % candidates.size()];
        ++stats_.census_sweep_probes;
        metrics::bump(m_census_probes_);
        ++sweep;
        send_probe(net::kInvalidNode, std::move(route));
      }
      sweep_cursor_ = (sweep_cursor_ + cap) % candidates.size();
    }
  }
  if (probes > 0 || census > 0 || sweep > 0) {
    trace("scrub: " + std::to_string(probes) + " probe(s), " +
          std::to_string(census) + " census probe(s), " +
          std::to_string(sweep) + " sweep probe(s) @ epoch " +
          std::to_string(epoch_));
  }
}

void Mapper::set_expected_roster(std::vector<net::NodeId> roster) {
  roster_ = std::set<net::NodeId>(roster.begin(), roster.end());
}

void Mapper::note_attach(net::NodeId x, std::uint32_t sw_key,
                         std::uint8_t port) {
  retired_.erase(x);
  last_attach_[x] = {sw_key, port};
}

void Mapper::retire_node(net::NodeId x) {
  retired_.insert(x);
  roster_.erase(x);
  if (!retain_retired_caches_) {
    // The eviction that bounds the cross-epoch caches across churn; the
    // test-only retain flag plants the leak the soak drift oracle must
    // catch (see Mapper::set_retain_retired_caches).
    last_route_.erase(x);
    last_attach_.erase(x);
  }
  home_route_.erase(x);
  converged_.erase(x);
  table_.erase(x);
  if (dist_.erase(x) != 0) check_distribution_done();
  // Unlink the interface vertex from the graph so later recomputes stop
  // routing to it (its attach port goes dark).
  const std::uint32_t vkey = vertex_key(net::DeviceKind::kInterface, x);
  const auto dit = devices_.find(vkey);
  if (dit != devices_.end()) {
    for (const auto& [port_at_iface, nb] : dit->second.neighbours) {
      const auto sit = devices_.find(nb.first);
      if (sit == devices_.end()) continue;
      const auto back = sit->second.neighbours.find(nb.second);
      if (back != sit->second.neighbours.end() && back->second.first == vkey) {
        sit->second.neighbours.erase(back);
      }
    }
    devices_.erase(dit);
  }
  trace("node " + std::to_string(x) + ": retired from roster");
}

void Mapper::node_replaced(net::NodeId x) {
  retired_.erase(x);
  if (epoch_ == 0) return;  // never mapped: bring-up handles it
  converged_.erase(x);
  if (dist_.count(x) != 0) return;  // in-flight push reaches the spare
  if (table_.count(x) != 0) {
    // Same attach point, fresh card with an empty table: everyone else's
    // routes still hold, only x's table needs re-pushing.
    push_routes(x);
  }
  // Not in the table: scrub's census probes knock at the attach point.
}

bool Mapper::roster_complete() const {
  for (const net::NodeId x : roster_) {
    if (table_.count(x) == 0) return false;
  }
  return true;
}

std::vector<net::NodeId> Mapper::missing_nodes() const {
  std::vector<net::NodeId> out;
  for (const net::NodeId x : roster_) {
    if (table_.count(x) == 0) out.push_back(x);
  }
  return out;
}

void Mapper::trace(const std::string& msg) const {
  if (trace_ != nullptr && trace_->on(sim::TraceCat::kMapper)) {
    trace_->log(sim::TraceCat::kMapper, home_.event_queue().now(), "mapper",
                msg);
  }
}

void Mapper::bind_metrics(metrics::Registry& reg) {
  m_epoch_ = &reg.gauge("mapper.route_epoch");
  m_retries_ = &reg.counter("mapper.map_route_retries");
  m_scrub_repairs_ = &reg.counter("mapper.scrub_repairs");
  m_census_probes_ = &reg.counter("mapper.census_probes");
  m_converge_us_ =
      &reg.histogram("fabric.route_converge_us", converge_us_bounds());
  if (epoch_ > 0) m_epoch_->set(epoch_);
}

}  // namespace myri::mapper
