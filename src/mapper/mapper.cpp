#include "mapper/mapper.hpp"

#include <algorithm>
#include <deque>

namespace myri::mapper {

namespace {
constexpr std::uint32_t vertex_key(net::DeviceKind k, std::uint16_t id) {
  return static_cast<std::uint32_t>(k) << 16 | id;
}
}  // namespace

Mapper::Mapper(gm::Node& home, Config cfg) : home_(home), cfg_(cfg) {}

void Mapper::run(std::function<void(bool)> done) {
  done_ = std::move(done);
  devices_.clear();
  pending_.clear();
  running_ = true;
  ++stats_.runs;

  home_.mcp().set_map_reply_handler(
      [this](const net::Packet& pkt) { on_reply(pkt); });

  // Seed the graph with the mapper's own interface.
  DeviceInfo self;
  self.ref = {net::DeviceKind::kInterface, home_.id()};
  self.ports = 1;
  devices_[self.ref.key()] = self;

  // Probe whatever is at the end of our own cable.
  send_scout({}, std::nullopt, 0);
}

void Mapper::send_scout(std::vector<std::uint8_t> route,
                        std::optional<std::uint32_t> parent,
                        std::uint8_t out_port) {
  const std::uint32_t id = next_scout_++;
  pending_[id] = PendingScout{route, parent, out_port};
  ++stats_.scouts_sent;

  net::Packet pkt;
  pkt.type = net::PacketType::kMapScout;
  pkt.src = home_.id();
  pkt.msg_id = id;
  pkt.route = std::move(route);
  pkt.seal();
  home_.mcp().send_raw(std::move(pkt));

  home_.event_queue().schedule_after(cfg_.scout_timeout, [this, id] {
    if (pending_.erase(id) > 0) {
      ++stats_.timeouts;  // nothing at the end of that route
      if (pending_.empty() && running_) finish_discovery();
    }
  });
}

void Mapper::on_reply(const net::Packet& pkt) {
  auto it = pending_.find(pkt.msg_id);
  if (it == pending_.end()) return;  // late reply after timeout
  const PendingScout ctx = std::move(it->second);
  pending_.erase(it);
  ++stats_.replies;

  const net::MapReplyInfo info = net::MapReplyInfo::decode(pkt.payload);
  const DeviceRef v{info.kind, info.id};
  const std::uint32_t vkey = v.key();
  const std::uint32_t parent_key =
      ctx.parent ? *ctx.parent
                 : vertex_key(net::DeviceKind::kInterface, home_.id());
  const std::uint8_t parent_port = ctx.parent ? ctx.out_port : 0;
  // The probe's recorded input ports give the far end of the last cable:
  // for a switch it is the last walked entry; an interface has one port.
  const std::uint8_t far_port =
      info.kind == net::DeviceKind::kSwitch && !info.walked.empty()
          ? info.walked.back()
          : 0;

  const bool fresh = devices_.find(vkey) == devices_.end();
  if (fresh) {
    DeviceInfo d;
    d.ref = v;
    d.ports = info.ports;
    d.scout_route = ctx.route;
    devices_[vkey] = std::move(d);
  }
  devices_[parent_key].neighbours[parent_port] = {vkey, far_port};
  devices_[vkey].neighbours[far_port] = {parent_key, parent_port};

  if (fresh && info.kind == net::DeviceKind::kSwitch &&
      ctx.route.size() < cfg_.max_depth) {
    for (std::uint8_t q = 0; q < info.ports; ++q) {
      if (q == far_port) continue;  // don't probe back the way we came
      std::vector<std::uint8_t> r = ctx.route;
      r.push_back(q);
      send_scout(std::move(r), vkey, q);
    }
  }
  if (pending_.empty() && running_) finish_discovery();
}

void Mapper::finish_discovery() {
  running_ = false;
  if (num_switches() == 0 || interfaces().empty()) {
    if (done_) done_(false);
    return;
  }
  compute_and_distribute();
}

std::vector<net::NodeId> Mapper::interfaces() const {
  std::vector<net::NodeId> out;
  for (const auto& [key, d] : devices_) {
    if (d.ref.kind == net::DeviceKind::kInterface) out.push_back(d.ref.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Mapper::num_switches() const {
  std::size_t n = 0;
  for (const auto& [key, d] : devices_) {
    if (d.ref.kind == net::DeviceKind::kSwitch) ++n;
  }
  return n;
}

std::map<std::uint32_t, std::vector<std::uint8_t>> Mapper::routes_from(
    std::uint32_t src_key) const {
  // BFS producing, per reachable vertex, the source route (the output port
  // taken at each *switch* along the path; interface hops emit no byte).
  struct Hop {
    std::uint32_t parent;
    std::uint8_t out_port;  // port used at the parent
  };
  std::map<std::uint32_t, Hop> prev;
  std::deque<std::uint32_t> frontier{src_key};
  prev[src_key] = {src_key, 0};
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    auto it = devices_.find(u);
    if (it == devices_.end()) continue;
    for (const auto& [port, edge] : it->second.neighbours) {
      const auto [w, wport] = edge;
      if (prev.count(w) != 0) continue;
      prev[w] = {u, port};
      frontier.push_back(w);
    }
  }
  std::map<std::uint32_t, std::vector<std::uint8_t>> out;
  for (const auto& [v, hop] : prev) {
    if (v == src_key) continue;
    // Reconstruct backwards, collecting switch output ports.
    std::vector<std::uint8_t> rev;
    std::uint32_t cur = v;
    while (cur != src_key) {
      const Hop& h = prev.at(cur);
      const auto pit = devices_.find(h.parent);
      const bool parent_is_switch =
          pit != devices_.end() &&
          pit->second.ref.kind == net::DeviceKind::kSwitch;
      if (parent_is_switch) rev.push_back(h.out_port);
      cur = h.parent;
    }
    out[v] = {rev.rbegin(), rev.rend()};
  }
  return out;
}

std::map<net::NodeId, std::vector<std::uint8_t>>
Mapper::routes_from_interface(net::NodeId a) const {
  std::map<net::NodeId, std::vector<std::uint8_t>> out;
  const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, a));
  for (const auto& [key, route] : routes) {
    const auto it = devices_.find(key);
    if (it == devices_.end() ||
        it->second.ref.kind != net::DeviceKind::kInterface) {
      continue;
    }
    out.emplace(it->second.ref.id, route);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Mapper::route_between(
    net::NodeId a, net::NodeId b) const {
  const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, a));
  auto it = routes.find(vertex_key(net::DeviceKind::kInterface, b));
  if (it == routes.end()) return std::nullopt;
  return it->second;
}

void Mapper::compute_and_distribute() {
  const std::vector<net::NodeId> ifaces = interfaces();
  const auto home_routes =
      routes_from(vertex_key(net::DeviceKind::kInterface, home_.id()));

  for (net::NodeId x : ifaces) {
    const auto routes = routes_from(vertex_key(net::DeviceKind::kInterface, x));
    std::vector<net::RouteEntry> entries;
    for (net::NodeId y : ifaces) {
      if (y == x) continue;
      auto rit = routes.find(vertex_key(net::DeviceKind::kInterface, y));
      if (rit != routes.end()) entries.push_back({y, rit->second});
    }
    if (x == home_.id()) {
      // Local install: the mapper host programs its own card directly.
      for (const auto& e : entries) {
        home_.install_route(e.dst, e.route);
      }
      continue;
    }
    auto hit = home_routes.find(vertex_key(net::DeviceKind::kInterface, x));
    if (hit == home_routes.end()) continue;
    // MAP_ROUTE payloads are bounded by the packet size; chunk the table.
    constexpr std::size_t kChunk = 40;
    for (std::size_t i = 0; i < entries.size(); i += kChunk) {
      std::vector<net::RouteEntry> chunk(
          entries.begin() + static_cast<std::ptrdiff_t>(i),
          entries.begin() +
              static_cast<std::ptrdiff_t>(std::min(i + kChunk,
                                                   entries.size())));
      net::Packet pkt;
      pkt.type = net::PacketType::kMapRoute;
      pkt.src = home_.id();
      pkt.dst = x;
      pkt.route = hit->second;
      pkt.payload = net::encode_route_update(chunk);
      pkt.seal();
      ++stats_.route_packets;
      home_.mcp().send_raw(std::move(pkt));
    }
  }
  home_.event_queue().schedule_after(cfg_.settle, [this] {
    if (done_) done_(true);
  });
}

}  // namespace myri::mapper
