// The GM mapper: self-configuration of a Myrinet fabric (paper Section 2).
//
// Runs on one node ("the mapper host"). Discovers the topology by flooding
// MAP_SCOUT probes along incrementally longer source routes: every device
// at the end of a probe's route answers with its identity and the list of
// input ports the probe walked, which pins down each cable's far end.
// After discovery it computes shortest-path source routes between every
// pair of interfaces and distributes per-node route tables with MAP_ROUTE
// packets. Re-running it remaps a changed fabric, mirroring GM's behaviour
// when links or nodes appear or disappear.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gm/node.hpp"
#include "net/map_info.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace myri::mapper {

/// Vertex identity in the discovered graph.
struct DeviceRef {
  net::DeviceKind kind = net::DeviceKind::kInterface;
  std::uint16_t id = 0;

  [[nodiscard]] std::uint32_t key() const {
    return static_cast<std::uint32_t>(kind) << 16 | id;
  }
  friend bool operator==(const DeviceRef&, const DeviceRef&) = default;
};

struct DeviceInfo {
  DeviceRef ref;
  std::uint8_t ports = 1;
  std::vector<std::uint8_t> scout_route;  // shortest probe route found
  /// port -> (neighbour, neighbour's port)
  std::map<std::uint8_t, std::pair<std::uint32_t, std::uint8_t>> neighbours;
};

struct MapperStats {
  std::uint64_t scouts_sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t route_packets = 0;
  std::uint64_t runs = 0;
};

class Mapper {
 public:
  struct Config {
    sim::Time scout_timeout = sim::usec(300);
    sim::Time settle = sim::usec(100);  // let MAP_ROUTE packets land
    std::size_t max_depth = 16;         // probe route length bound
  };

  explicit Mapper(gm::Node& home) : Mapper(home, Config()) {}
  Mapper(gm::Node& home, Config cfg);

  /// Discover + compute + distribute. `done(ok)` fires once the route
  /// tables have been delivered (ok=false if discovery found nothing).
  void run(std::function<void(bool)> done);

  // ---- results ----
  [[nodiscard]] const std::map<std::uint32_t, DeviceInfo>& devices() const {
    return devices_;
  }
  [[nodiscard]] std::vector<net::NodeId> interfaces() const;
  [[nodiscard]] std::size_t num_switches() const;
  /// Source route from interface `a` to interface `b` (after run()).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> route_between(
      net::NodeId a, net::NodeId b) const;
  /// All source routes out of interface `a` (one BFS; route-length
  /// telemetry uses this instead of O(n^2) route_between calls).
  [[nodiscard]] std::map<net::NodeId, std::vector<std::uint8_t>>
  routes_from_interface(net::NodeId a) const;
  [[nodiscard]] const MapperStats& stats() const noexcept { return stats_; }

 private:
  struct PendingScout {
    std::vector<std::uint8_t> route;
    std::optional<std::uint32_t> parent;  // vertex key the route extends
    std::uint8_t out_port = 0;            // port used at the parent
  };

  void send_scout(std::vector<std::uint8_t> route,
                  std::optional<std::uint32_t> parent, std::uint8_t out_port);
  void on_reply(const net::Packet& pkt);
  void scout_done(std::uint32_t scout_id);
  void finish_discovery();
  void compute_and_distribute();
  [[nodiscard]] std::map<std::uint32_t, std::vector<std::uint8_t>>
  routes_from(std::uint32_t src_key) const;

  gm::Node& home_;
  Config cfg_;
  std::function<void(bool)> done_;
  std::map<std::uint32_t, DeviceInfo> devices_;
  std::map<std::uint32_t, PendingScout> pending_;  // scout id -> context
  std::uint32_t next_scout_ = 1;
  bool running_ = false;
  MapperStats stats_;
};

}  // namespace myri::mapper
