// The GM mapper: self-configuration of a Myrinet fabric (paper Section 2).
//
// Runs on one node ("the mapper host"). Discovers the topology by flooding
// MAP_SCOUT probes along incrementally longer source routes: every device
// at the end of a probe's route answers with its identity and the list of
// input ports the probe walked, which pins down each cable's far end.
// After discovery it computes shortest-path source routes between every
// pair of interfaces and distributes per-node route tables with MAP_ROUTE
// packets. Re-running it remaps a changed fabric, mirroring GM's behaviour
// when links or nodes appear or disappear.
//
// The mapper owns the route control plane's single source of truth: every
// successful run bumps a monotonically increasing *route epoch* stamped
// into each MAP_ROUTE chunk. Distribution is reliable — the receiving card
// answers every chunk with a MAP_ROUTE_ACK carrying the last epoch it
// holds completely, and unacked chunks are re-sent with bounded
// exponential backoff. Nodes that stay behind (hung through the remap,
// chunks lost beyond the retry budget) are repaired later: by scrub()
// epoch probes, or by the announce a recovered node sends when its driver
// restores a mapper-learnt table (see DESIGN.md section 11).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gm/node.hpp"
#include "metrics/registry.hpp"
#include "net/map_info.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace myri::mapper {

/// Vertex identity in the discovered graph.
struct DeviceRef {
  net::DeviceKind kind = net::DeviceKind::kInterface;
  std::uint16_t id = 0;

  [[nodiscard]] std::uint32_t key() const {
    return static_cast<std::uint32_t>(kind) << 16 | id;
  }
  friend bool operator==(const DeviceRef&, const DeviceRef&) = default;
};

struct DeviceInfo {
  DeviceRef ref;
  std::uint8_t ports = 1;
  std::vector<std::uint8_t> scout_route;  // shortest probe route found
  /// port -> (neighbour, neighbour's port)
  std::map<std::uint8_t, std::pair<std::uint32_t, std::uint8_t>> neighbours;
};

struct MapperStats {
  std::uint64_t scouts_sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t timeouts = 0;       // routes declared dead (tries exhausted)
  std::uint64_t scout_retries = 0;  // scouts re-sent after a silent try
  std::uint64_t route_packets = 0;  // MAP_ROUTE chunks sent (incl. resends)
  std::uint64_t runs = 0;
  std::uint64_t route_acks = 0;     // MAP_ROUTE_ACKs received
  std::uint64_t route_retries = 0;  // chunks re-sent after an ack timeout
  std::uint64_t repushes = 0;       // full-table re-pushes (scrub/announce)
  std::uint64_t scrub_probes = 0;   // epoch probes sent by scrub()
  std::uint64_t census_probes = 0;  // probes to expected-but-unmapped nodes
  /// Census probes sent into unmapped switch ports: the transport of last
  /// resort for roster nodes *never* seen in any map (no known route at
  /// all — only knocking on dark ports can reach them).
  std::uint64_t census_sweep_probes = 0;
  /// Missing nodes grafted back into the map at their recorded attach
  /// point after answering a census probe/announcing — no re-discovery.
  std::uint64_t census_folds = 0;
};

class Mapper {
 public:
  struct Config {
    sim::Time scout_timeout = sim::usec(300);
    /// Probes per route before it is declared dead. Discovery scouts a
    /// whole fabric in one burst; the tail of the reply wave queues behind
    /// the burst on the home link and can outlive scout_timeout, so a
    /// single silent try must not erase a live node from the map.
    std::uint32_t scout_tries = 3;
    std::size_t max_depth = 16;  // probe route length bound
    /// Initial MAP_ROUTE_ACK wait; doubles per retry round (capped).
    sim::Time ack_timeout = sim::usec(400);
    /// Retry rounds before a node is left to scrub/announce repair.
    std::uint32_t max_ack_retries = 6;
  };

  explicit Mapper(gm::Node& home) : Mapper(home, Config()) {}
  Mapper(gm::Node& home, Config cfg);

  /// Discover + compute + distribute. `done(ok)` fires once every reachable
  /// node has acknowledged the new epoch or exhausted its retry budget
  /// (ok=false if discovery found nothing).
  void run(std::function<void(bool)> done);

  // ---- results ----
  [[nodiscard]] const std::map<std::uint32_t, DeviceInfo>& devices() const {
    return devices_;
  }
  [[nodiscard]] std::vector<net::NodeId> interfaces() const;
  [[nodiscard]] std::size_t num_switches() const;
  /// Source route from interface `a` to interface `b` (after run()).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> route_between(
      net::NodeId a, net::NodeId b) const;
  /// All source routes out of interface `a` (one BFS; route-length
  /// telemetry uses this instead of O(n^2) route_between calls).
  [[nodiscard]] std::map<net::NodeId, std::vector<std::uint8_t>>
  routes_from_interface(net::NodeId a) const;
  [[nodiscard]] const MapperStats& stats() const noexcept { return stats_; }

  // ---- route control plane (single source of truth) ----
  /// Current route epoch; bumped by every successful run. 0 = never ran.
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  /// Per-node route tables of the current epoch, keyed by interface id.
  [[nodiscard]] const std::map<net::NodeId, std::vector<net::RouteEntry>>&
  table() const noexcept {
    return table_;
  }
  /// True when every node in table() has acknowledged the current epoch.
  [[nodiscard]] bool converged() const;
  /// Nodes in table() that have not acknowledged the current epoch.
  [[nodiscard]] std::vector<net::NodeId> stale_nodes() const;
  /// True while ACK-tracked chunk pushes (or their retries) are in flight.
  [[nodiscard]] bool distribution_idle() const noexcept {
    return dist_.empty();
  }
  /// Re-send node `x`'s full table at the current epoch, ACK-tracked.
  void push_routes(net::NodeId x);
  /// Probe the installed epoch of every unconverged node (the slow
  /// re-verify pass; FailoverManager runs it periodically). A probe ack
  /// showing a stale epoch triggers push_routes() for that node. When an
  /// expected roster is set, additionally census-probes roster nodes the
  /// current map never discovered (at their last known route), so a node
  /// whose recovery announce was lost is still pulled back in.
  void scrub();

  /// The nodes this fabric is supposed to contain (the owner feeds it
  /// from gm::Cluster's membership roster). Drives scrub()'s census
  /// probes and roster_complete(). Empty = no expectation (raw mapper).
  void set_expected_roster(std::vector<net::NodeId> roster);

  // ---- membership deltas (FailoverManager forwards roster events) ----
  /// Record where a hot-added (or replaced) node is cabled so census
  /// probes reach it before any discovery has seen it: `sw_key` is the
  /// switch's DeviceRef key, `port` its host port. Clears any retired
  /// mark on `x`.
  void note_attach(net::NodeId x, std::uint32_t sw_key, std::uint8_t port);
  /// Retire `x` from the control plane: evict it from the expected
  /// roster, the current table/graph, and the cross-epoch caches
  /// (last_route_/last_attach_ — the membership-triggered eviction that
  /// bounds their growth). A discovery already in flight is immunized:
  /// retired interfaces are skipped at table-build time.
  void retire_node(net::NodeId x);
  /// A spare took over `x`'s id at the same attach point: the fresh card
  /// holds no routes, so mark it unconverged and re-push its table (or
  /// leave it to census when `x` was never mapped).
  void node_replaced(net::NodeId x);
  /// Attach points remembered across epochs (bounded by retirement).
  [[nodiscard]] std::size_t tracked_attach_points() const {
    return last_attach_.size();
  }
  /// Last-known routes remembered across epochs (bounded by retirement);
  /// with tracked_attach_points() these are the soak drift oracle's
  /// cache-size probes.
  [[nodiscard]] std::size_t tracked_routes() const {
    return last_route_.size();
  }
  /// Test-only leak plant: stop retire_node() from evicting the
  /// cross-epoch caches, so join/drain churn grows last_route_ and
  /// last_attach_ without bound. Exists to prove the soak drift oracle
  /// catches a real eviction regression; never set by production code.
  void set_retain_retired_caches(bool retain) noexcept {
    retain_retired_caches_ = retain;
  }
  /// True when every expected-roster node is present in the current map
  /// (vacuously true with no roster set).
  [[nodiscard]] bool roster_complete() const;
  /// Expected-roster nodes absent from the current map.
  [[nodiscard]] std::vector<net::NodeId> missing_nodes() const;

  /// Publish control-plane telemetry: mapper.route_epoch (gauge),
  /// mapper.map_route_retries, mapper.scrub_repairs, mapper.census_probes
  /// (counters) and fabric.route_converge_us (histogram: epoch push ->
  /// all nodes acked).
  void bind_metrics(metrics::Registry& reg);
  /// Fires when a node absent from the current map announces itself
  /// (post-recovery): the fabric has more in it than the map says, so the
  /// owner should schedule a remap.
  void set_on_node_returned(std::function<void(net::NodeId)> cb) {
    on_node_returned_ = std::move(cb);
  }
  /// Fires on evidence that a previously missing or lagging card is alive
  /// and repair can still make headway: a post-recovery announce, an ack
  /// from a node the current map does not contain (census probe answered),
  /// a laggard answering outside an in-flight push, or a scout reply from
  /// an interface the current map lacks. Routine chunk acks of a healthy
  /// distribution deliberately do NOT fire it — the owner uses this to
  /// reset retry budgets, and resetting them on every ack would turn the
  /// short-map retry backoff into a hot loop while a node is down.
  void set_on_progress(std::function<void()> cb) {
    on_progress_ = std::move(cb);
  }
  /// Emit kMapper trace lines for epoch pushes, retries, repairs and
  /// convergence (golden-trace tests pin the distribution protocol).
  void set_trace(sim::Trace* t) { trace_ = t; }

 private:
  struct PendingScout {
    std::vector<std::uint8_t> route;
    std::optional<std::uint32_t> parent;  // vertex key the route extends
    std::uint8_t out_port = 0;            // port used at the parent
    std::uint32_t tries = 0;              // probes already sent, this route
  };

  /// ACK-tracked chunk push to one node (current epoch).
  struct Distribution {
    std::vector<std::vector<net::RouteEntry>> chunks;
    std::vector<bool> acked;
    std::uint32_t round = 0;  // retry rounds used
    std::uint64_t gen = 0;    // invalidates retry timers of older pushes
  };

  void send_scout(std::vector<std::uint8_t> route,
                  std::optional<std::uint32_t> parent, std::uint8_t out_port,
                  std::uint32_t tries = 0);
  void on_reply(const net::Packet& pkt);
  void finish_discovery();
  void compute_and_distribute();
  /// Graft a returned-but-unmapped node back into the device graph at its
  /// recorded attach point and recompute/push routes — no re-discovery.
  /// Returns false (caller falls back to a full remap) when the attach
  /// point is unknown, absent from the current graph, or contested.
  bool fold_in(net::NodeId x);
  [[nodiscard]] std::map<std::uint32_t, std::vector<std::uint8_t>>
  routes_from(std::uint32_t src_key) const;

  void start_distribution(net::NodeId x);
  void send_chunk(net::NodeId x, const Distribution& d, std::size_t i);
  void arm_retry(net::NodeId x);
  void on_route_ack(const net::Packet& pkt);
  void mark_converged(net::NodeId x);
  void check_distribution_done();
  void trace(const std::string& msg) const;

  gm::Node& home_;
  Config cfg_;
  std::function<void(bool)> done_;
  std::map<std::uint32_t, DeviceInfo> devices_;
  std::map<std::uint32_t, PendingScout> pending_;  // scout id -> context
  std::uint32_t next_scout_ = 1;
  bool running_ = false;

  std::uint32_t epoch_ = 0;
  std::map<net::NodeId, std::vector<net::RouteEntry>> table_;
  /// Home's source route to each node of the current epoch (chunk/probe
  /// transport; pushes must not depend on the stale installed table).
  std::map<net::NodeId, std::vector<std::uint8_t>> home_route_;
  /// Last route ever known to each node, across epochs (entries are
  /// overwritten, never erased): the census probe's transport of last
  /// resort when the node's old attach switch has left the map too. Best
  /// effort — the fabric may have changed under it.
  std::map<net::NodeId, std::vector<std::uint8_t>> last_route_;
  /// Where each node was last attached: (switch vertex key, switch port),
  /// across epochs. Census probes are re-derived from the *current*
  /// switch graph to this attach point, so they survive route churn that
  /// invalidates the frozen last_route_ bytes.
  std::map<net::NodeId, std::pair<std::uint32_t, std::uint8_t>> last_attach_;
  /// Rotating cursor over (switch key, port) for the unknown-port census
  /// sweep, so successive scrubs cover a big fabric's dark ports fairly.
  std::size_t sweep_cursor_ = 0;
  /// Scrub passes since the last mapping run. While remaps are still
  /// landing, every run re-scouts the whole fabric, so dark-port sweeping
  /// would only add probe churn; the sweep waits until the control plane
  /// has been quiet for a couple of passes with roster nodes still dark.
  std::size_t scrubs_since_map_ = 0;
  /// Nodes this fabric is supposed to contain (see set_expected_roster).
  std::set<net::NodeId> roster_;
  /// Retired members: never mapped, folded in, or census-probed again
  /// (guards against a discovery that scouted the node before its cable
  /// was unplugged).
  std::set<net::NodeId> retired_;
  bool retain_retired_caches_ = false;  // test-only leak plant
  std::map<net::NodeId, Distribution> dist_;
  std::set<net::NodeId> converged_;
  std::uint64_t dist_gen_ = 0;
  sim::Time dist_start_ = 0;
  bool distributing_ = false;
  bool converge_observed_ = false;

  std::function<void(net::NodeId)> on_node_returned_;
  std::function<void()> on_progress_;
  sim::Trace* trace_ = nullptr;
  metrics::Gauge* m_epoch_ = nullptr;
  metrics::Counter* m_retries_ = nullptr;
  metrics::Counter* m_scrub_repairs_ = nullptr;
  metrics::Counter* m_census_probes_ = nullptr;
  metrics::Histogram* m_converge_us_ = nullptr;
  MapperStats stats_;
};

}  // namespace myri::mapper
