#include "mcp/mcp.hpp"

#include <algorithm>
#include <cassert>

#include "net/map_info.hpp"

namespace myri::mcp {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kRecv: return "RECV";
    case EventType::kSent: return "SENT";
    case EventType::kGot: return "GOT";
    case EventType::kAlarm: return "ALARM";
    case EventType::kFaultDetected: return "FAULT_DETECTED";
    case EventType::kSendError: return "SEND_ERROR";
  }
  return "?";
}

namespace {
constexpr std::uint32_t kMagicAddr = SramLayout::kMagicAddr;

std::uint32_t fragments_of(std::uint32_t len) {
  if (len == 0) return 1;
  return (len + net::kMaxPacketPayload - 1) / net::kMaxPacketPayload;
}
}  // namespace

Mcp::Mcp(lanai::Nic& nic, host::PciBus& pci, host::HostMemory& hmem,
         Config cfg)
    : nic_(nic), pci_(pci), hmem_(hmem), cfg_(cfg),
      image_(assemble_send_chunk()) {}

// --------------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------------

void Mcp::load() {
  // Write the send_chunk image into the SRAM code segment.
  auto& sram = nic_.sram();
  for (std::size_t i = 0; i < image_.program.words.size(); ++i) {
    sram.write32(image_.program.base + static_cast<std::uint32_t>(i * 4),
                 image_.program.words[i]);
  }
  ++gen_;
  loaded_ = true;
  hung_ = false;
  hang_reason_.clear();
  page_hash_registered_ = false;
  busy_until_ = nic_.event_queue().now();
  for (auto& p : ports_) {
    p.open = false;
    p.tokens.clear();
  }
  control_queue_.clear();
  send_streams_.clear();
  recv_streams_.clear();
  send_rr_.clear();
  dma_active_ = false;
  rto_scan_armed_ = false;
  rx_handler_pending_ = false;
  route_epoch_ = 0;  // card reset wiped the table; driver restore re-seeds
  cancel_announce();  // a reload supersedes any pending announce retries

  lanai::Nic::Hooks hooks;
  hooks.on_hdma_done = [this] {
    if (hung_ || !loaded_ || !dma_active_) return;
    exec(cfg_.timing.lanai.dispatch_overhead, [this] { finish_fragment_tx(); });
  };
  hooks.on_timer = [this](int idx) {
    if (hung_ || !loaded_) return;
    if (idx == 0) {
      exec(cfg_.timing.lanai.dispatch_overhead + sim::usecf(0.6),
           [this] { run_l_timer(); });
    }
    // IT1 (watchdog) expiry is pure hardware: the Nic already set the ISR
    // bit and, if the IMR routes it, raised the host FATAL interrupt.
  };
  hooks.on_rx = [this] {
    if (hung_ || !loaded_) return;
    if (rx_handler_pending_) return;
    rx_handler_pending_ = true;
    exec(cfg_.timing.lanai.dispatch_overhead, [this] { on_packet(); });
  };
  nic_.set_hooks(std::move(hooks));

  arm_it0();
  if (cfg_.mode == McpMode::kFtgm) {
    nic_.set_imr(nic_.imr() | lanai::kIsrIt1);
    arm_watchdog();
  }
  // Packets may already be waiting (arrivals during a reload): drain them.
  if (!nic_.rx_empty()) {
    rx_handler_pending_ = true;
    exec(cfg_.timing.lanai.dispatch_overhead, [this] { on_packet(); });
  }
}

void Mcp::exec(sim::Time cost, std::function<void()> fn) {
  auto& eq = nic_.event_queue();
  const sim::Time start = std::max(eq.now(), busy_until_);
  busy_until_ = start + cost;
  busy_ns_ += cost;
  metrics::bump(m_.busy_ns, cost);
  const std::uint64_t g = gen_;
  eq.schedule_at(busy_until_, [this, g, fn = std::move(fn)] {
    if (hung_ || !loaded_ || g != gen_) return;
    fn();
  });
}

bool Mcp::run_interpreted(std::uint32_t entry) {
  ++stats_.send_chunk_runs;
  const lanai::RunResult r = nic_.cpu().run(entry, cfg_.cycle_budget);
  const sim::Time c =
      r.cycles * static_cast<sim::Time>(cfg_.timing.lanai.cycle_time_ns());
  busy_until_ = std::max(busy_until_, nic_.event_queue().now()) + c;
  busy_ns_ += c;
  metrics::bump(m_.busy_ns, c);
  if (r.status == lanai::RunStatus::kReturned) return true;
  handle_cpu_failure(r);
  return false;
}

void Mcp::handle_cpu_failure(const lanai::RunResult& r) {
  if (r.status == lanai::RunStatus::kRestart) {
    restart_self();
    return;
  }
  become_hung(std::string(lanai::to_string(r.status)) +
              (r.detail.empty() ? "" : (": " + r.detail)));
}

void Mcp::become_hung(const std::string& reason) {
  // The network processor stops executing instructions. Interval timers
  // and the host-interrupt logic are independent hardware and keep going;
  // that is precisely what the paper's watchdog detection relies on.
  hung_ = true;
  hang_reason_ = reason;
  ++stats_.hangs;
  metrics::bump(m_.hangs);
  if (trace_ && trace_->on(sim::TraceCat::kMcp)) {
    trace_->log(sim::TraceCat::kMcp, nic_.event_queue().now(), nic_.name(),
                "HUNG: " + reason);
  }
}

void Mcp::restart_self() {
  // A corrupted jump landed on the reset vector: the control program
  // reinitializes itself from scratch. All connection/port state is lost
  // (the code image, including any injected fault, stays as-is).
  ++gen_;
  ++stats_.self_restarts;
  hung_ = false;
  hang_reason_.clear();
  for (auto& p : ports_) {
    p.open = false;
    p.tokens.clear();
  }
  control_queue_.clear();
  send_streams_.clear();
  recv_streams_.clear();
  send_rr_.clear();
  dma_active_ = false;
  rx_handler_pending_ = false;
  rto_scan_armed_ = false;
  cancel_announce();
  busy_until_ = nic_.event_queue().now();
  arm_it0();
  if (cfg_.mode == McpMode::kFtgm) arm_watchdog();
}

void Mcp::inject_hang(const std::string& reason) { become_hung(reason); }

void Mcp::bind_metrics(metrics::Registry& reg, const std::string& prefix) {
  const std::string p = prefix + '.';
  m_.sends_posted = &reg.counter(p + "sends_posted");
  m_.fragments_tx = &reg.counter(p + "fragments_tx");
  m_.retransmissions = &reg.counter(p + "retransmissions");
  m_.acks_tx = &reg.counter(p + "acks_tx");
  m_.acks_rx = &reg.counter(p + "acks_rx");
  m_.nacks_tx = &reg.counter(p + "nacks_tx");
  m_.nacks_rx = &reg.counter(p + "nacks_rx");
  m_.crc_drops = &reg.counter(p + "crc_drops");
  m_.msgs_delivered = &reg.counter(p + "msgs_delivered");
  m_.events_posted = &reg.counter(p + "events_posted");
  m_.l_timer_runs = &reg.counter(p + "l_timer_runs");
  m_.hangs = &reg.counter(p + "hangs");
  m_.busy_ns = &reg.counter(p + "busy_ns");
  m_.announces = &reg.counter(p + "announces_tx");
  m_.announce_retries = &reg.counter(p + "announce_retries");
  m_.l_timer_gap = &reg.histogram(p + "l_timer_gap_ns");
}

// --------------------------------------------------------------------------
// L_timer and control path
// --------------------------------------------------------------------------

void Mcp::arm_it0() {
  const auto ticks = static_cast<std::uint32_t>(
      cfg_.timing.watchdog.l_timer_interval / cfg_.timing.lanai.timer_tick);
  nic_.arm_timer(0, ticks);
}

void Mcp::arm_watchdog() {
  const auto ticks = static_cast<std::uint32_t>(
      cfg_.timing.watchdog.it1_interval / cfg_.timing.lanai.timer_tick);
  nic_.arm_timer(1, ticks);
}

void Mcp::run_l_timer() {
  ++stats_.l_timer_runs;
  metrics::bump(m_.l_timer_runs);
  const sim::Time now = nic_.event_queue().now();
  if (last_l_timer_ != 0) {
    const sim::Time gap = now - last_l_timer_;
    if (gap > max_l_timer_gap_) max_l_timer_gap_ = gap;
    // The gap distribution underpins the paper's IT1 interval choice
    // (L_timer can lag its nominal period by ~800 us of queueing).
    metrics::observe(m_.l_timer_gap, gap);
  }
  last_l_timer_ = now;
  nic_.clear_isr_bits(lanai::kIsrIt0);
  // A live MCP clears the FTD's magic probe word (paper Section 4.3).
  nic_.sram().write32(kMagicAddr, 0);

  while (!control_queue_.empty()) {
    const ControlCmd cmd = control_queue_.front();
    control_queue_.pop_front();
    switch (cmd.kind) {
      case ControlCmd::Kind::kOpen:
        ports_[cmd.port].open = true;
        break;
      case ControlCmd::Kind::kClose:
        ports_[cmd.port].open = false;
        ports_[cmd.port].tokens.clear();
        break;
      case ControlCmd::Kind::kAlarm: {
        const std::uint64_t g = gen_;
        const std::uint8_t port = cmd.port;
        const std::uint32_t aid = cmd.alarm_id;
        nic_.event_queue().schedule_after(cmd.alarm_delay,
                                          [this, g, port, aid] {
          if (hung_ || !loaded_ || g != gen_) return;
          ++stats_.alarms_fired;
          EventRecord ev;
          ev.type = EventType::kAlarm;
          ev.port = port;
          ev.token_id = aid;
          post_event(port, ev);
        });
        break;
      }
    }
  }

  arm_it0();
  if (cfg_.mode == McpMode::kFtgm) arm_watchdog();
}

void Mcp::host_open_port(std::uint8_t port) {
  control_queue_.push_back({ControlCmd::Kind::kOpen, port, 0});
}

void Mcp::host_close_port(std::uint8_t port) {
  control_queue_.push_back({ControlCmd::Kind::kClose, port, 0});
}

void Mcp::host_set_alarm(std::uint8_t port, sim::Time delay,
                         std::uint32_t alarm_id) {
  control_queue_.push_back({ControlCmd::Kind::kAlarm, port, delay, alarm_id});
}

bool Mcp::port_open(std::uint8_t port) const {
  return port < kMaxPorts && ports_[port].open;
}

std::size_t Mcp::recv_tokens_held(std::uint8_t port) const {
  return port < kMaxPorts ? ports_[port].tokens.size() : 0;
}

// --------------------------------------------------------------------------
// Sender
// --------------------------------------------------------------------------

Mcp::SendStream& Mcp::send_stream(net::NodeId peer, std::uint32_t sid) {
  const std::uint64_t key = stream_key(peer, sid);
  auto [it, inserted] = send_streams_.try_emplace(key);
  if (inserted) {
    it->second.peer = peer;
    it->second.sid = sid;
  }
  return it->second;
}

void Mcp::host_post_send(const SendRequest& req) {
  if (hung_ || !loaded_) return;
  ++stats_.sends_posted;
  metrics::bump(m_.sends_posted);
  const std::uint32_t sid = req.internal ? internal_stream_id(req.port)
                                         : stream_id(cfg_.mode, req.port);

  auto refuse = [&] {
    EventRecord ev;
    ev.type = EventType::kSendError;
    ev.port = req.port;
    ev.peer = req.dst;
    ev.token_id = req.token_id;
    ev.msg_id = req.msg_id;
    exec(cfg_.timing.lanai.dispatch_overhead,
         [this, ev] { post_event(ev.port, ev); });
  };

  if (req.port >= kMaxPorts || !ports_[req.port].open) {
    refuse();
    return;
  }
  if (!page_hash_registered_ || host_ == nullptr ||
      !host_->translate(req.port, req.host_addr)) {
    ++stats_.unmapped_dma_refusals;
    refuse();
    return;
  }
  if (nic_.route(req.dst) == nullptr) {
    refuse();
    return;
  }

  SendStream& s = send_stream(req.dst, sid);
  const std::uint32_t nfrags = fragments_of(req.len);
  std::uint32_t first = s.next_seq;
  if (cfg_.mode == McpMode::kFtgm && !req.internal) {
    if (req.seq_first == s.next_seq) {
      first = req.seq_first;
    } else if (s.outstanding.empty()) {
      // Recovery re-post: the host's sequence generator is authoritative
      // after an MCP reload (paper Section 4.1).
      first = req.seq_first;
      s.base = s.cursor = s.high_water = first;
    }  // else: host out of sync; fall back to the MCP counter.
  }
  OutMsg m;
  m.req = req;
  m.seq_first = first;
  m.seq_last = first + nfrags - 1;
  s.next_seq = first + nfrags;
  if (s.outstanding.empty()) s.last_progress = nic_.event_queue().now();
  s.outstanding.push_back(std::move(m));

  exec(cfg_.timing.lanai.dispatch_overhead, [this] { kick_sender(); });
  schedule_rto_scan();
}

void Mcp::host_provide_recv_token(const RecvToken& tok) {
  if (hung_ || !loaded_) return;
  if (tok.port >= kMaxPorts) return;
  ports_[tok.port].tokens.push_back(tok);
}

void Mcp::host_restore_ack_entry(net::NodeId peer, std::uint32_t stream,
                                 std::uint32_t last_seq) {
  if (hung_ || !loaded_) return;
  RecvStream& rs = recv_streams_[stream_key(peer, stream)];
  // Two local ports may hold partial views of the same remote stream (a
  // stream is per sender port, not per receiver port); the furthest-along
  // view wins.
  rs.expected = std::max(rs.expected, last_seq + 1);
  rs.active = false;
  rs.accepted = 0;
}

void Mcp::host_reopen_port(std::uint8_t port) {
  if (hung_ || !loaded_ || port >= kMaxPorts) return;
  ports_[port].open = true;
}

bool Mcp::stream_has_work(const SendStream& s) const {
  if (s.outstanding.empty()) return false;
  if (s.cursor > s.outstanding.back().seq_last) return false;
  return s.cursor < s.base + cfg_.send_window;
}

void Mcp::kick_sender() {
  if (hung_ || !loaded_ || dma_active_) return;
  if (send_streams_.empty()) return;
  // Two non-preemptive priority levels (paper Section 3.1): a round-robin
  // pass over streams whose next fragment is high priority, then a pass
  // over the rest. In-flight fragments are never preempted.
  for (const std::uint8_t want_prio : {std::uint8_t{1}, std::uint8_t{0}}) {
    auto it = send_streams_.upper_bound(last_served_);
    for (std::size_t n = 0; n <= send_streams_.size(); ++n) {
      if (it == send_streams_.end()) it = send_streams_.begin();
      SendStream& s = it->second;
      if (stream_has_work(s) && next_fragment_priority(s) == want_prio) {
        last_served_ = it->first;
        start_fragment(s);
        return;
      }
      ++it;
    }
  }
}

std::uint8_t Mcp::next_fragment_priority(const SendStream& s) const {
  for (const auto& m : s.outstanding) {
    if (s.cursor >= m.seq_first && s.cursor <= m.seq_last) {
      return m.req.priority;
    }
  }
  return 0;
}

void Mcp::start_fragment(SendStream& s) {
  // Locate the message containing the cursor.
  const OutMsg* m = nullptr;
  for (const auto& om : s.outstanding) {
    if (s.cursor >= om.seq_first && s.cursor <= om.seq_last) {
      m = &om;
      break;
    }
  }
  if (m == nullptr) {
    // Cursor points into a hole (should not happen: seq ranges are
    // contiguous). Skip forward defensively.
    s.cursor = s.outstanding.front().seq_first;
    m = &s.outstanding.front();
  }
  const std::uint32_t idx = s.cursor - m->seq_first;
  const std::uint32_t off = idx * net::kMaxPacketPayload;
  const std::uint32_t flen =
      std::min<std::uint32_t>(net::kMaxPacketPayload, m->req.len - off);
  auto dma = host_->translate(m->req.port, m->req.host_addr + off);
  if (!dma) {
    // Page went unmapped mid-message (cannot happen in normal operation);
    // count and move on so the pipeline does not wedge.
    ++stats_.unmapped_dma_refusals;
    ++s.cursor;
    return;
  }

  // Fill the SRAM send descriptor the interpreted send_chunk consumes.
  using D = SendDescLayout;
  auto& sram = nic_.sram();
  const std::uint32_t slot =
      SramLayout::kSendStagingBase +
      (s.cursor % SramLayout::kNumSendSlots) * SramLayout::kStagingSlotSize;
  const std::uint32_t d = SramLayout::kSendDescAddr;
  sram.write32(d + D::kHostAddr, static_cast<std::uint32_t>(*dma));
  sram.write32(d + D::kStagingAddr, slot);
  sram.write32(d + D::kLen, flen);
  sram.write32(d + D::kSeq, s.cursor);
  sram.write32(d + D::kStream, s.sid);
  sram.write32(d + D::kDst, m->req.dst);
  sram.write32(d + D::kDstPort, m->req.dst_port);
  sram.write32(d + D::kSrcPort, m->req.port);
  sram.write32(d + D::kMsgId, m->req.msg_id);
  sram.write32(d + D::kMsgLen, m->req.len);
  sram.write32(d + D::kFragOffset, off);
  sram.write32(d + D::kFlags,
               static_cast<std::uint32_t>(m->req.priority) |
                   (m->req.directed ? 4u : 0u) |
                   (m->req.notify ? 8u : 0u));
  sram.write32(d + D::kTarget, m->req.target_vaddr);

  sim::Time cost = cfg_.timing.lanai.send_proto;
  if (cfg_.mode == McpMode::kFtgm) cost += cfg_.timing.lanai.ftgm_send_extra;
  const std::uint64_t key = stream_key(s.peer, s.sid);
  const std::uint32_t seq = s.cursor;
  dma_active_ = true;  // claim the engine before the exec fires
  pending_stream_key_ = key;
  pending_seq_ = seq;
  exec(cost, [this] {
    if (!run_interpreted(image_.entry_dma)) {
      // Processor hung mid-send; the engine claim dies with this MCP
      // generation (reset on load/restart).
      return;
    }
    if (!nic_.hdma_busy()) {
      // send_chunk returned down its error path (descriptor rejected)
      // without programming the DMA — under fault injection this is a
      // persistent "GM send error" condition. Release the engine claim
      // and retry with backoff so the rest of the MCP stays live.
      ++stats_.send_chunk_bailouts;
      dma_active_ = false;
      const std::uint64_t g = gen_;
      nic_.event_queue().schedule_after(sim::usec(200), [this, g] {
        if (hung_ || !loaded_ || g != gen_) return;
        exec(cfg_.timing.lanai.dispatch_overhead, [this] { kick_sender(); });
      });
    }
    // Otherwise phase A programmed the host DMA; completion re-enters via
    // on_hdma_done -> finish_fragment_tx.
  });
}

void Mcp::finish_fragment_tx() {
  if (!dma_active_) return;
  if (!run_interpreted(image_.entry_tx)) return;
  dma_active_ = false;
  ++stats_.fragments_tx;
  metrics::bump(m_.fragments_tx);
  auto it = send_streams_.find(pending_stream_key_);
  if (it != send_streams_.end()) {
    SendStream& s = it->second;
    if (pending_seq_ + 1 > s.high_water) {
      s.high_water = pending_seq_ + 1;
    } else {
      ++stats_.retransmissions;
      metrics::bump(m_.retransmissions);
    }
    // Only advance if no NACK rewound the cursor while the DMA was in
    // flight; a rewound cursor must win so the receiver's expected
    // fragment is retransmitted.
    if (s.cursor == pending_seq_) ++s.cursor;
  }
  kick_sender();
}

void Mcp::on_ack(const net::Packet& pkt) {
  ++stats_.acks_rx;
  metrics::bump(m_.acks_rx);
  auto it = send_streams_.find(stream_key(pkt.src, pkt.stream));
  if (it == send_streams_.end()) return;
  SendStream& s = it->second;
  const std::uint32_t new_base = pkt.ack_seq + 1;
  if (new_base <= s.base) return;  // stale cumulative ack
  s.base = new_base;
  s.cursor = std::max(s.cursor, s.base);
  s.last_progress = nic_.event_queue().now();
  s.rto_backoff = 1;
  complete_messages(s);
  kick_sender();
}

void Mcp::on_nack(const net::Packet& pkt) {
  ++stats_.nacks_rx;
  metrics::bump(m_.nacks_rx);
  auto it = send_streams_.find(stream_key(pkt.src, pkt.stream));
  if (it == send_streams_.end()) return;
  SendStream& s = it->second;
  const std::uint32_t expected = pkt.ack_seq;
  if (s.outstanding.empty()) return;

  const bool may_resync =
      cfg_.mode == McpMode::kGm || s.sid >= kInternalSidBase;
  if (may_resync && expected > s.high_water) {
    // GM resynchronizes to the receiver's expectation. This is the
    // mechanism behind the paper's Figure 4: after a naive MCP reload the
    // sender renumbers pending messages to whatever the receiver expects,
    // and a message the receiver already consumed is accepted again.
    std::uint32_t q = expected;
    for (auto& m : s.outstanding) {
      const std::uint32_t n = m.seq_last - m.seq_first + 1;
      m.seq_first = q;
      m.seq_last = q + n - 1;
      q += n;
    }
    s.base = s.cursor = s.high_water = expected;
    s.next_seq = q;
  } else if (expected < s.outstanding.front().seq_first) {
    // The peer expects a sequence below everything we still hold. A
    // same-instance FTGM receiver can never ask this: its reload restores
    // the ack table, so it re-expects at most the oldest unacked seq. The
    // acks that advanced us past `expected` therefore came from a previous
    // card at that address — the node was replaced and the spare's stream
    // state is pristine. Renumber the outstanding tail down to the spare's
    // expectation: none of these messages were accepted by the new card,
    // so this is first delivery to it, not the naive-reload duplicate path
    // the FTGM no-resync rule exists to prevent.
    std::uint32_t q = expected;
    for (auto& m : s.outstanding) {
      const std::uint32_t n = m.seq_last - m.seq_first + 1;
      m.seq_first = q;
      m.seq_last = q + n - 1;
      q += n;
    }
    s.base = s.cursor = s.high_water = expected;
    s.next_seq = q;
  } else {
    // Go-Back-N rewind. After an FTGM receiver recovery the expected
    // sequence may regress below our base: the data is still available
    // because send tokens are held until message completion, so we simply
    // rewind into the oldest outstanding message.
    const std::uint32_t floor_seq = s.outstanding.front().seq_first;
    const std::uint32_t target = std::max(expected, floor_seq);
    if (target < s.cursor) s.cursor = target;
    s.base = std::min(s.base, s.cursor);
  }
  s.last_progress = nic_.event_queue().now();
  s.rto_backoff = 1;
  kick_sender();
}

void Mcp::complete_messages(SendStream& s) {
  while (!s.outstanding.empty() && s.outstanding.front().seq_last < s.base) {
    const OutMsg m = std::move(s.outstanding.front());
    s.outstanding.pop_front();
    if (m.req.internal) continue;  // gm_get response: nothing to tell the host
    EventRecord ev;
    ev.type = EventType::kSent;
    ev.port = m.req.port;
    ev.peer = m.req.dst;
    ev.peer_port = m.req.dst_port;
    ev.stream = s.sid;
    ev.seq = m.seq_last;
    ev.len = m.req.len;
    ev.token_id = m.req.token_id;
    ev.msg_id = m.req.msg_id;
    post_event(ev.port, ev);
  }
}

void Mcp::schedule_rto_scan() {
  if (rto_scan_armed_ || hung_ || !loaded_) return;
  rto_scan_armed_ = true;
  const std::uint64_t g = gen_;
  nic_.event_queue().schedule_after(cfg_.rto / 2, [this, g] {
    if (hung_ || !loaded_ || g != gen_) return;
    rto_scan_armed_ = false;
    bool any = false;
    const sim::Time now = nic_.event_queue().now();
    for (auto& [key, s] : send_streams_) {
      if (s.outstanding.empty()) continue;
      any = true;
      if (now - s.last_progress > cfg_.rto * s.rto_backoff) {
        s.cursor = s.base;  // full Go-Back-N rewind
        s.last_progress = now;
        // Exponential backoff bounds the retransmission storm while a peer
        // is down for a multi-second recovery (paper: < 2 s outages).
        s.rto_backoff = std::min<std::uint32_t>(s.rto_backoff * 2, 128);
        exec(cfg_.timing.lanai.dispatch_overhead, [this] { kick_sender(); });
      }
    }
    if (any) schedule_rto_scan();
  });
}

// --------------------------------------------------------------------------
// Receiver
// --------------------------------------------------------------------------

void Mcp::on_packet() {
  if (nic_.rx_empty()) {
    rx_handler_pending_ = false;
    return;
  }
  net::Packet pkt = nic_.rx_pop();

  sim::Time cost = cfg_.timing.lanai.ack_proto;
  if (pkt.type == net::PacketType::kData) {
    cost = cfg_.timing.lanai.recv_proto;
    if (cfg_.mode == McpMode::kFtgm) cost += cfg_.timing.lanai.ftgm_recv_extra;
  }
  exec(cost, [this, pkt = std::move(pkt)]() mutable {
    switch (pkt.type) {
      case net::PacketType::kData:
        handle_data(std::move(pkt));
        break;
      case net::PacketType::kAck:
        if (pkt.intact()) {
          on_ack(pkt);
        } else {
          ++stats_.crc_drops;
    metrics::bump(m_.crc_drops);
        }
        break;
      case net::PacketType::kNack:
        if (pkt.intact()) {
          on_nack(pkt);
        } else {
          ++stats_.crc_drops;
    metrics::bump(m_.crc_drops);
        }
        break;
      case net::PacketType::kGetReq:
        handle_get_req(pkt);
        break;
      case net::PacketType::kMapScout:
      case net::PacketType::kMapReply:
      case net::PacketType::kMapRoute:
      case net::PacketType::kMapRouteAck:
        handle_map_packet(std::move(pkt));
        break;
      case net::PacketType::kControl:
        break;
    }
    // Chain the next packet, preserving per-packet serialization.
    if (!nic_.rx_empty()) {
      exec(cfg_.timing.lanai.dispatch_overhead, [this] { on_packet(); });
    } else {
      rx_handler_pending_ = false;
    }
  });
}

void Mcp::send_ack(net::NodeId to, std::uint32_t sid, std::uint32_t ack_seq) {
  ++stats_.acks_tx;
  metrics::bump(m_.acks_tx);
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.src = nic_.node_id();
  ack.dst = to;
  ack.stream = sid;
  ack.ack_seq = ack_seq;
  ack.seal();
  nic_.send_packet(std::move(ack));
}

void Mcp::send_nack(net::NodeId to, std::uint32_t sid,
                    std::uint32_t expected) {
  ++stats_.nacks_tx;
  metrics::bump(m_.nacks_tx);
  net::Packet nack;
  nack.type = net::PacketType::kNack;
  nack.src = nic_.node_id();
  nack.dst = to;
  nack.stream = sid;
  nack.ack_seq = expected;
  nack.seal();
  nic_.send_packet(std::move(nack));
}

void Mcp::handle_data(net::Packet pkt) {
  if (pkt.dst != nic_.node_id()) {
    ++stats_.foreign_drops;
    return;
  }
  if (!pkt.intact()) {
    // Transient bit corruption in flight: the CRC check catches it; the
    // sender's Go-Back-N retransmits (paper Section 2).
    ++stats_.crc_drops;
    metrics::bump(m_.crc_drops);
    return;
  }
  // A closed port generates no protocol responses at all: between an MCP
  // reload and the process's reopen, arriving traffic must neither ACK,
  // NACK nor advance stream state, or the peer's backoff collapses into a
  // retransmission storm against a port that cannot accept anything yet.
  if (pkt.dst_port >= kMaxPorts || !ports_[pkt.dst_port].open) {
    ++stats_.no_token_drops;
    return;
  }

  RecvStream& rs = recv_streams_[stream_key(pkt.src, pkt.stream)];

  if (pkt.seq < rs.expected) {
    if (pkt.seq + cfg_.send_window < rs.expected) {
      // Far below the window: not a retransmit but a peer whose MCP lost
      // its sequence state (e.g. a naive reload). GM NACKs the expected
      // number and the sender resynchronizes to it — the exact mechanism
      // that lets a duplicate slip through in the paper's Figure 4.
      ++stats_.ooo_drops;
      const sim::Time now = nic_.event_queue().now();
      if (now - rs.last_nack > cfg_.rto / 4 || rs.last_nack == 0) {
        rs.last_nack = now;
        exec(cfg_.timing.lanai.ack_proto,
             [this, src = pkt.src, sid = pkt.stream, e = rs.expected] {
               send_nack(src, sid, e);
             });
      }
      return;
    }
    ++stats_.dup_drops;
    if (rs.expected > 0) {
      exec(cfg_.timing.lanai.ack_proto, [this, src = pkt.src,
                                         sid = pkt.stream,
                                         a = rs.expected - 1] {
        send_ack(src, sid, a);
      });
    }
    return;
  }
  if (pkt.seq > rs.expected) {
    ++stats_.ooo_drops;
    const sim::Time now = nic_.event_queue().now();
    if (now - rs.last_nack > cfg_.rto / 4 || rs.last_nack == 0) {
      rs.last_nack = now;
      exec(cfg_.timing.lanai.ack_proto,
           [this, src = pkt.src, sid = pkt.stream, e = rs.expected] {
             send_nack(src, sid, e);
           });
    }
    return;
  }

  // In-sequence fragment.
  const std::uint8_t port = pkt.dst_port;
  if (port >= kMaxPorts || !ports_[port].open) {
    ++stats_.no_token_drops;
    return;
  }

  if (pkt.directed) {
    // Directed send (RDMA put): no receive token, no event — the payload
    // goes straight into the target process's registered memory. The
    // target must be page-registered by the local port, which is also the
    // protection boundary: a remote cannot write anywhere else.
    auto dma = host_ ? host_->translate(port, pkt.target_vaddr +
                                                  pkt.frag_offset)
                     : std::nullopt;
    if (!dma) {
      ++stats_.unmapped_dma_refusals;
      return;  // not accepted; the sender retries and eventually times out
    }
    rs.expected = pkt.seq + 1;
    ++stats_.directed_frags;
    const bool last = pkt.frag_offset + pkt.payload.size() >= pkt.msg_len;
    if (last) ++stats_.directed_puts;
    const bool ack_now =
        cfg_.mode == McpMode::kGm || !last || !cfg_.ftgm_delayed_ack;
    const net::NodeId src = pkt.src;
    const std::uint32_t sid = pkt.stream;
    const std::uint32_t seq = pkt.seq;
    if (ack_now) {
      exec(cfg_.timing.lanai.ack_proto,
           [this, src, sid, seq] { send_ack(src, sid, seq); });
    }
    // A notify put (gm_get response) reports its landing to the host; the
    // event precedes the ACK so the host's ACK-number backup stays ahead.
    EventRecord got;
    got.type = EventType::kGot;
    got.port = port;
    got.peer = src;
    got.peer_port = pkt.src_port;
    got.stream = sid;
    got.seq = seq;
    got.len = pkt.msg_len;
    got.msg_id = pkt.msg_id;
    const bool notify = pkt.notify;
    const std::size_t dbytes = pkt.payload.size();
    pci_.dma(dbytes, [this, g = gen_, data = std::move(pkt.payload),
                      addr = *dma, last, ack_now, src, sid, seq, notify,
                      got] {
      hmem_.write(addr, data);
      if (hung_ || !loaded_ || g != gen_) return;
      if (!last) return;
      if (notify) {
        post_event(got.port, got, [this, ack_now, src, sid, seq] {
          if (!ack_now) {
            exec(cfg_.timing.lanai.ack_proto,
                 [this, src, sid, seq] { send_ack(src, sid, seq); });
          }
        });
      } else if (!ack_now) {
        // FTGM delayed commit point: ACK only once the put has landed.
        exec(cfg_.timing.lanai.ack_proto,
             [this, src, sid, seq] { send_ack(src, sid, seq); });
      }
    });
    return;
  }

  if (pkt.frag_offset == 0) {
    if (rs.active) {
      // A fresh message while another is mid-assembly on the same stream
      // means the peer rewound across a message boundary; drop the stale
      // partial (its token returns to the pool).
      ports_[port].tokens.push_front(rs.token);
      rs.active = false;
    }
    // Match a receive token: first fit by capacity and priority.
    auto& toks = ports_[port].tokens;
    auto it = std::find_if(toks.begin(), toks.end(), [&](const RecvToken& t) {
      return t.size >= pkt.msg_len && t.priority == pkt.priority;
    });
    if (it == toks.end()) {
      ++stats_.no_token_drops;  // sender retransmits until a buffer appears
      return;
    }
    rs.token = *it;
    toks.erase(it);
    rs.active = true;
    rs.msg_id = pkt.msg_id;
    rs.msg_len = pkt.msg_len;
    rs.accepted = 0;
    rs.src = pkt.src;
    rs.src_port = pkt.src_port;
  } else {
    if (!rs.active || rs.msg_id != pkt.msg_id ||
        rs.accepted != pkt.frag_offset) {
      ++stats_.ooo_drops;
      return;
    }
  }
  auto dma = host_ ? host_->translate(port, rs.token.host_addr +
                                                pkt.frag_offset)
                   : std::nullopt;
  if (!dma) {
    ++stats_.unmapped_dma_refusals;
    return;
  }

  // Accept: advance the stream.
  rs.expected = pkt.seq + 1;
  rs.accepted += static_cast<std::uint32_t>(pkt.payload.size());
  const bool last = rs.accepted >= rs.msg_len;
  const std::uint64_t key = stream_key(pkt.src, pkt.stream);
  const RecvToken token = rs.token;
  const std::uint32_t msg_len = rs.msg_len;
  const std::uint32_t msg_id = rs.msg_id;
  const net::NodeId src = rs.src;
  const std::uint8_t src_port = rs.src_port;
  const std::uint32_t sid = pkt.stream;
  if (last) rs.active = false;

  // ACK policy (the crux of the paper's Figure 5 fix): GM acknowledges at
  // acceptance, before the host DMA; FTGM acknowledges intermediate
  // fragments immediately but defers the final fragment's ACK until the
  // payload DMA and the RECV event post have completed.
  const bool ack_now =
      cfg_.mode == McpMode::kGm || !last || !cfg_.ftgm_delayed_ack;
  if (ack_now) {
    exec(cfg_.timing.lanai.ack_proto,
         [this, src, sid, a = pkt.seq] { send_ack(src, sid, a); });
  }

  // DMA the fragment into the user buffer. (Size taken before the lambda's
  // init-capture moves the payload out: argument order is unspecified.)
  const std::uint32_t seq = pkt.seq;
  const std::size_t dma_bytes = pkt.payload.size();
  pci_.dma(dma_bytes,
           [this, g = gen_, data = std::move(pkt.payload), addr = *dma, key,
            seq, last, token, msg_len, msg_id, src, src_port, sid] {
             // The DMA engine itself is hardware: the copy lands even if
             // the MCP hung meanwhile. Post-DMA bookkeeping, however,
             // requires a live MCP.
             hmem_.write(addr, data);
             if (hung_ || !loaded_ || g != gen_) return;
             fragment_dma_done(key, seq, last, token, msg_len, msg_id, src,
                               src_port, sid);
           });
}

void Mcp::fragment_dma_done(std::uint64_t /*key*/, std::uint32_t seq,
                            bool last, RecvToken token, std::uint32_t msg_len,
                            std::uint32_t msg_id, net::NodeId src,
                            std::uint8_t src_port, std::uint32_t sid) {
  if (!last) return;
  ++stats_.msgs_delivered;
  metrics::bump(m_.msgs_delivered);
  EventRecord ev;
  ev.type = EventType::kRecv;
  ev.port = token.port;
  ev.peer = src;
  ev.peer_port = src_port;
  ev.stream = sid;
  ev.seq = seq;  // FTGM: lets the host keep its ACK-number backup current
  ev.len = msg_len;
  ev.token_id = token.token_id;
  ev.msg_id = msg_id;
  if (cfg_.mode == McpMode::kFtgm && cfg_.ftgm_delayed_ack) {
    // Delayed commit point: the RECV event (which updates the host's
    // backup) must land before the ACK releases the sender's token.
    post_event(ev.port, ev, [this, src, sid, seq] {
      exec(cfg_.timing.lanai.ack_proto,
           [this, src, sid, seq] { send_ack(src, sid, seq); });
    });
  } else {
    post_event(ev.port, ev);
  }
}

void Mcp::post_event(std::uint8_t port, EventRecord ev,
                     std::function<void()> after) {
  pci_.dma(kEventRecordWireBytes,
           [this, g = gen_, port, ev, after = std::move(after)] {
             if (!loaded_ || g != gen_) return;
             ++stats_.events_posted;
             metrics::bump(m_.events_posted);
             if (host_) host_->post_event(port, ev);
             if (after && !hung_) after();
           });
}

// --------------------------------------------------------------------------
// gm_get (RDMA read)
// --------------------------------------------------------------------------

void Mcp::host_post_get(const GetRequest& get) {
  if (hung_ || !loaded_) return;
  if (get.port >= kMaxPorts || !ports_[get.port].open) return;
  if (nic_.route(get.dst) == nullptr) return;  // retry loop times out
  net::Packet p;
  p.type = net::PacketType::kGetReq;
  p.src = nic_.node_id();
  p.dst = get.dst;
  p.dst_port = get.dst_port;
  p.src_port = get.port;
  p.target_vaddr = get.remote_vaddr;
  p.msg_len = get.len;
  p.msg_id = get.correlation;
  p.payload = {
      std::byte{static_cast<unsigned char>(get.local_vaddr & 0xff)},
      std::byte{static_cast<unsigned char>((get.local_vaddr >> 8) & 0xff)},
      std::byte{static_cast<unsigned char>((get.local_vaddr >> 16) & 0xff)},
      std::byte{static_cast<unsigned char>((get.local_vaddr >> 24) & 0xff)}};
  p.seal();
  exec(cfg_.timing.lanai.dispatch_overhead,
       [this, p = std::move(p)]() mutable { nic_.send_packet(std::move(p)); });
}

void Mcp::handle_get_req(const net::Packet& pkt) {
  if (pkt.dst != nic_.node_id()) {
    ++stats_.foreign_drops;
    return;
  }
  if (!pkt.intact()) {
    ++stats_.crc_drops;
    metrics::bump(m_.crc_drops);
    return;
  }
  const std::uint8_t port = pkt.dst_port;
  if (port >= kMaxPorts || !ports_[port].open) return;
  // Protection boundary: only memory the local process registered for this
  // port may be read remotely.
  const std::uint32_t span = pkt.msg_len == 0 ? 1 : pkt.msg_len;
  if (host_ == nullptr || !host_->translate(port, pkt.target_vaddr) ||
      !host_->translate(port, pkt.target_vaddr + span - 1)) {
    ++stats_.unmapped_dma_refusals;
    return;  // never answered; the requester's retry loop gives up
  }
  if (pkt.payload.size() < 4) return;
  std::uint32_t local = 0;
  for (int i = 0; i < 4; ++i) {
    local |= std::to_integer<std::uint32_t>(pkt.payload[i]) << (8 * i);
  }
  ++stats_.gets_served;
  // Answer with an internal directed put out of our own registered memory.
  SendRequest r;
  r.port = port;
  r.dst = pkt.src;
  r.dst_port = pkt.src_port;
  r.host_addr = pkt.target_vaddr;
  r.len = pkt.msg_len;
  r.msg_id = pkt.msg_id;  // correlation id, echoed to the requester
  r.directed = true;
  r.notify = true;
  r.internal = true;
  r.target_vaddr = local;
  host_post_send(r);
}

// --------------------------------------------------------------------------
// Mapper support
// --------------------------------------------------------------------------

void Mcp::send_raw(net::Packet pkt) {
  if (hung_ || !loaded_) return;
  exec(cfg_.timing.lanai.dispatch_overhead,
       [this, pkt = std::move(pkt)]() mutable {
         nic_.send_packet(std::move(pkt), /*resolve_route=*/false);
       });
}

void Mcp::host_restore_routes(net::NodeId mapper_node, std::uint32_t epoch) {
  route_epoch_ = epoch;
  // A card that never heard from a mapper has nowhere to announce to; the
  // mapper's census probe / a fresh remap is the only way back in. Epoch 0
  // with a *known* mapper does announce: a card that recovered before ever
  // completing a route table may still hold partial mirror routes that
  // reach the mapper host, and the announce is what tells the mapper a
  // node it may never have mapped exists (DESIGN.md section 11).
  if (mapper_node == net::kInvalidNode) return;
  announce_dst_ = mapper_node;
  announce_epoch_ = epoch;
  announce_left_ = cfg_.max_announce_retries;
  announce_wait_ = cfg_.announce_retry_base;
  ++announce_gen_;
  send_announce(/*retry=*/false);
}

void Mcp::send_announce(bool retry) {
  if (hung_ || !loaded_) return;
  // Announce the restored epoch so the mapper can re-push (known laggard)
  // or remap (node the current map never saw). Re-sent with bounded
  // exponential backoff until a MAP_ROUTE at a current-or-newer epoch
  // arrives — the only acknowledgement the mapper ever sends back.
  net::Packet ann;
  ann.type = net::PacketType::kMapRouteAck;
  ann.src = nic_.node_id();
  ann.dst = announce_dst_;
  ann.payload = net::RouteAck{announce_epoch_, net::kProbeChunk,
                              announce_epoch_, /*announce=*/true}
                    .encode();
  ann.seal();
  ++stats_.announces_sent;
  metrics::bump(m_.announces);
  if (retry) {
    ++stats_.announce_retries;
    metrics::bump(m_.announce_retries);
  }
  exec(cfg_.timing.lanai.dispatch_overhead,
       [this, ann = std::move(ann)]() mutable {
         nic_.send_packet(std::move(ann), /*resolve_route=*/true);
       });
  arm_announce_retry();
}

void Mcp::arm_announce_retry() {
  if (announce_left_ == 0) return;
  --announce_left_;
  const std::uint64_t g = announce_gen_;
  nic_.event_queue().schedule_after(announce_wait_, [this, g] {
    if (g != announce_gen_) return;  // cancelled or superseded
    if (hung_ || !loaded_) return;
    send_announce(/*retry=*/true);
  });
  announce_wait_ = std::min<sim::Time>(announce_wait_ * 2,
                                       cfg_.announce_retry_base * 64);
}

void Mcp::cancel_announce() {
  announce_left_ = 0;
  ++announce_gen_;
}

void Mcp::handle_map_packet(net::Packet pkt) {
  // Mapper packets carry no sequence numbers: a corrupted one cannot be
  // NACKed, only dropped (the mapper's timeout/retry machinery re-sends).
  // Installing a bit-flipped route would silently misroute data traffic.
  if (!pkt.intact()) {
    ++stats_.crc_drops;
    metrics::bump(m_.crc_drops);
    return;
  }
  switch (pkt.type) {
    case net::PacketType::kMapScout: {
      net::Packet reply;
      reply.type = net::PacketType::kMapReply;
      reply.src = nic_.node_id();
      reply.dst = pkt.src;
      reply.msg_id = pkt.msg_id;  // scout correlation id
      reply.route = net::reverse_route(pkt.walked);
      reply.payload = net::MapReplyInfo{net::DeviceKind::kInterface,
                                        nic_.node_id(), 1, pkt.walked}
                          .encode();
      reply.seal();
      nic_.send_packet(std::move(reply));
      break;
    }
    case net::PacketType::kMapReply:
      if (map_reply_handler_) map_reply_handler_(pkt);
      break;
    case net::PacketType::kMapRoute: {
      if (drop_map_routes_ > 0) {
        --drop_map_routes_;  // injected control-plane loss (test hook)
        break;
      }
      const net::RouteUpdate u = net::RouteUpdate::decode(pkt.payload);
      // The mapper heard us (or was about to push anyway): any MAP_ROUTE
      // at the announced epoch or newer retires the announce retry timer.
      if (announce_left_ > 0 && u.epoch >= announce_epoch_) {
        cancel_announce();
      }
      // Install unless the chunk is from an epoch older than what this
      // card already holds (a late retransmit racing a newer remap).
      if (u.epoch >= route_epoch_) {
        for (const auto& e : u.entries) {
          nic_.set_route(e.dst, e.route);
        }
        if (u.nchunks > 0) route_epoch_ = std::max(route_epoch_, u.epoch);
      }
      // The driver versions its mirror and reports the last epoch it holds
      // completely; even a stale chunk is ACKed so the mapper's retry
      // machinery sees where the node actually is.
      std::uint32_t installed = u.epoch;
      if (host_) installed = host_->map_route_update(u, pkt.src);
      net::Packet ack;
      ack.type = net::PacketType::kMapRouteAck;
      ack.src = nic_.node_id();
      ack.dst = pkt.src;
      ack.route = net::reverse_route(pkt.walked);
      ack.payload =
          net::RouteAck{u.epoch,
                        u.nchunks == 0 ? net::kProbeChunk : u.chunk,
                        installed, /*announce=*/false}
              .encode();
      ack.seal();
      nic_.send_packet(std::move(ack), /*resolve_route=*/false);
      break;
    }
    case net::PacketType::kMapRouteAck:
      // Only the mapper host installs a handler; acks and announces that
      // land anywhere else are noise.
      if (map_reply_handler_) map_reply_handler_(pkt);
      break;
    default:
      break;
  }
}

}  // namespace myri::mcp
