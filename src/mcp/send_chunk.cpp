#include "mcp/send_chunk.hpp"

#include "mcp/sram_layout.hpp"

namespace myri::mcp {

// Field immediates must match SendDescLayout / lanai::TxDescLayout.
//
// Like the real GM send path, most of this section is conditionally
// executed: error-handling blocks whose checks normally pass, a
// high-priority variant, and a resend path gated on a descriptor flag.
// Fault-injection flips that land in untaken blocks have no effect, which
// is where the paper's large "No Impact" fraction (Table 1) comes from.
const std::string& send_chunk_source() {
  static const std::string kSrc = R"(
; ---------- phase A: stage the fragment payload from host memory ----------
send_chunk:
    lui  r1, 0x3c000        ; r1 = MMIO base (0xF0000000)
    addi r2, r0, 0x4100     ; r2 = send descriptor
    ; --- sanity checks (normally pass; failures divert to error path) ---
    lw   r5, 8(r2)          ; fragment length
    addi r6, r0, 4096
    blt  r6, r5, sc_bad_desc     ; len > 4 KB: malformed descriptor
    lw   r3, 0(r2)          ; host address
    beq  r3, r0, sc_bad_desc     ; null host pointer
    lw   r4, 4(r2)          ; SRAM staging address
    beq  r4, r0, sc_bad_desc
    ; --- resend path: flag bit 1 set means staged payload is still valid
    ;     and the DMA can be skipped (rare) ---
    lw   r9, 44(r2)         ; flags
    addi r10, r0, 2
    and  r9, r9, r10
    bne  r9, r0, sc_resend
    ; --- bounded wait for the host-DMA engine ---
    addi r8, r0, 2000
sc_wait:
    lw   r9, 0x2c(r1)       ; HDMA_CTRL reads 1 while the engine is busy
    beq  r9, r0, sc_go
    addi r8, r8, -1
    bne  r8, r0, sc_wait
    halt                    ; engine wedged: stop the processor
sc_go:
    sw   r3, 0x20(r1)       ; HDMA_HOST
    sw   r4, 0x24(r1)       ; HDMA_LOCAL
    sw   r5, 0x28(r1)       ; HDMA_LEN
    addi r6, r0, 1
    sw   r6, 0x2c(r1)       ; HDMA_CTRL: start host->SRAM
    jalr r0, r15            ; return; phase B resumes on DMA completion

    ; --- error path: malformed descriptor. Scrub it and report by leaving
    ;     a diagnostic code in the scratch register (normally unreached) ---
sc_bad_desc:
    addi r6, r0, 0x7e
    sw   r6, 0x3c(r1)       ; scratch: diagnostic code
    sw   r0, 0(r2)          ; clear the descriptor
    sw   r0, 4(r2)
    sw   r0, 8(r2)
    sw   r0, 12(r2)
    jalr r0, r15

    ; --- resend path: payload already staged; go straight to TX ---
sc_resend:
    jal  r14, sc_build_tx
    jalr r0, r15

; ---------- phase B: build the TX descriptor, start transmission ----------
send_chunk_tx:
    lui  r1, 0x3c000
    addi r2, r0, 0x4100     ; send descriptor
    jal  r14, sc_build_tx
    jalr r0, r15

    ; --- shared TX-descriptor builder (r1 = MMIO, r2 = send desc) ---
sc_build_tx:
    addi r7, r0, 0x4200     ; TX descriptor
    lw   r3, 20(r2)         ; dst node
    sw   r3, 0(r7)
    lw   r3, 12(r2)         ; sequence number
    sw   r3, 4(r7)
    lw   r3, 16(r2)         ; stream id
    sw   r3, 8(r7)
    lw   r3, 24(r2)         ; dst port
    sw   r3, 12(r7)
    lw   r3, 4(r2)          ; payload staging address
    sw   r3, 16(r7)
    lw   r3, 8(r2)          ; payload length
    sw   r3, 20(r7)
    lw   r3, 32(r2)         ; msg id
    sw   r3, 24(r7)
    lw   r3, 36(r2)         ; msg len
    sw   r3, 28(r7)
    lw   r3, 40(r2)         ; frag offset
    sw   r3, 32(r7)
    lw   r3, 28(r2)         ; src port
    sw   r3, 40(r7)
    lw   r3, 48(r2)         ; directed-send target address
    sw   r3, 44(r7)
    lw   r3, 44(r2)         ; flags (priority | directed)
    sw   r3, 36(r7)
    addi r6, r0, 1
    and  r5, r3, r6
    beq  r5, r0, sc_tx_lo
    ; --- high-priority variant: expedited doorbell (rare) ---
    addi r3, r0, 0x4200
    sw   r3, 0x30(r1)       ; TX_DESC: go
    jalr r0, r14
sc_tx_lo:
    addi r3, r0, 0x4200
    sw   r3, 0x30(r1)       ; TX_DESC: go
    jalr r0, r14
)";
  return kSrc;
}

SendChunkImage assemble_send_chunk() {
  SendChunkImage img;
  img.program = lanai::assemble(send_chunk_source(), SramLayout::kCodeBase);
  img.entry_dma = img.program.label("send_chunk");
  img.entry_tx = img.program.label("send_chunk_tx");
  return img;
}

}  // namespace myri::mcp
