// The MCP's send path, written in the emulated LANai ISA.
//
// This is the serial routine the paper's fault-injection campaign targets:
// "send_chunk corresponds to a serial piece of code that is executed by the
// LANai each time a message is sent out, [so] we are assured that all the
// faults are activated" (paper Section 2). It runs in two phases because
// the MCP is event-driven: phase A programs the host->SRAM payload DMA and
// returns; phase B runs on DMA completion, builds the TX descriptor and
// hands it to the packet interface.
#pragma once

#include <cstdint>
#include <string>

#include "lanai/assembler.hpp"

namespace myri::mcp {

/// Assembly source text (exposed for tests and for documentation).
const std::string& send_chunk_source();

struct SendChunkImage {
  lanai::Program program;     // assembled at SramLayout::kCodeBase
  std::uint32_t entry_dma;    // phase A entry ("send_chunk")
  std::uint32_t entry_tx;     // phase B entry ("send_chunk_tx")
};

/// Assemble the routine for the standard code base address.
SendChunkImage assemble_send_chunk();

}  // namespace myri::mcp
