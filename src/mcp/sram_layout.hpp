// SRAM memory map used by the MCP.
//
// The code segment starts at 0x1000 so that the reset vector (address 0)
// stays distinct from live code: a corrupted jump that lands on 0 is the
// "MCP restart" failure category, while jumps into zeroed SRAM fault
// (opcode 0 is invalid). Everything the interpreted code addresses directly
// sits below 0x20000 to stay within the ISA's 18-bit immediates.
#pragma once

#include <cstdint>

namespace myri::mcp {

struct SramLayout {
  static constexpr std::uint32_t kCodeBase = 0x1000;
  static constexpr std::uint32_t kCodeLimit = 0x4000;

  /// The FTD writes a magic word here; a live MCP clears it in L_timer().
  static constexpr std::uint32_t kMagicAddr = 0x4000;

  /// Active send descriptor, filled by the native engine, consumed by the
  /// interpreted send_chunk. One in flight at a time (host-DMA serializes).
  static constexpr std::uint32_t kSendDescAddr = 0x4100;

  /// TX descriptor built by send_chunk phase B (lanai::TxDescLayout).
  static constexpr std::uint32_t kTxDescAddr = 0x4200;

  /// Payload staging slots (send side), one packet each.
  static constexpr std::uint32_t kSendStagingBase = 0x8000;
  static constexpr std::uint32_t kStagingSlotSize = 0x1000;  // 4 KB
  static constexpr std::uint32_t kNumSendSlots = 8;

  /// Receive staging (native recv path).
  static constexpr std::uint32_t kRecvStagingBase = 0x10000;
  static constexpr std::uint32_t kNumRecvSlots = 8;
};

/// Send descriptor field offsets (from kSendDescAddr). The interpreted
/// send_chunk reads these with fixed immediates; keep in sync with
/// mcp/send_chunk.cpp.
struct SendDescLayout {
  static constexpr std::uint32_t kHostAddr = 0;
  static constexpr std::uint32_t kStagingAddr = 4;
  static constexpr std::uint32_t kLen = 8;
  static constexpr std::uint32_t kSeq = 12;
  static constexpr std::uint32_t kStream = 16;
  static constexpr std::uint32_t kDst = 20;
  static constexpr std::uint32_t kDstPort = 24;
  static constexpr std::uint32_t kSrcPort = 28;
  static constexpr std::uint32_t kMsgId = 32;
  static constexpr std::uint32_t kMsgLen = 36;
  static constexpr std::uint32_t kFragOffset = 40;
  static constexpr std::uint32_t kFlags = 44;       // bit0 prio, bit1 resend,
                                                    // bit2 directed
  static constexpr std::uint32_t kTarget = 48;      // directed target vaddr
  static constexpr std::uint32_t kSize = 52;
};

}  // namespace myri::mcp
