// Host<->MCP interface types: send requests, receive tokens, events.
//
// These mirror GM's token system (paper Section 3.1): a send token carries
// location/size/priority/destination of a send buffer; a receive token
// describes a posted receive buffer. The MCP reports completions and
// arrivals to the host by posting EventRecords into a port's receive queue.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "host/host_memory.hpp"
#include "net/map_info.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace myri::mcp {

/// GM allows 8 ports per node (paper Section 4.1).
inline constexpr std::uint8_t kMaxPorts = 8;

enum class McpMode : std::uint8_t {
  kGm,    // baseline GM-1.5.1 behaviour
  kFtgm,  // the paper's fault-tolerant variant
};

struct SendRequest {
  std::uint8_t port = 0;          // source GM port
  net::NodeId dst = net::kInvalidNode;
  std::uint8_t dst_port = 0;
  std::uint8_t priority = 0;
  host::DmaAddr host_addr = 0;    // pinned send buffer (virtual == DMA here)
  std::uint32_t len = 0;
  std::uint32_t token_id = 0;     // library-side send-token handle
  std::uint32_t msg_id = 0;       // unique per (port); assigned by library
  /// FTGM: host-generated first sequence number for this message's
  /// fragments (paper Section 4.1). Ignored in GM mode.
  std::uint32_t seq_first = 0;
  /// GM directed send (RDMA put): payload lands at target_vaddr in the
  /// remote process's registered memory; no receive token is consumed and
  /// no receive event is posted. Re-execution after a recovery is safe
  /// because a put is idempotent.
  bool directed = false;
  std::uint32_t target_vaddr = 0;
  /// Directed send that posts a GOT event at the receiver when it lands
  /// (carries a gm_get response).
  bool notify = false;
  /// MCP-originated send (a get response): no SENT event, MCP-minted
  /// sequence numbers on a reserved internal stream.
  bool internal = false;
};

/// gm_get (RDMA read): fetch `len` bytes of the remote process's
/// registered memory at `remote_vaddr` into local registered memory at
/// `local_vaddr`. The response arrives as an internal directed put with
/// notification; `correlation` ties it back to the caller.
struct GetRequest {
  std::uint8_t port = 0;
  net::NodeId dst = net::kInvalidNode;
  std::uint8_t dst_port = 0;
  std::uint32_t remote_vaddr = 0;
  std::uint32_t local_vaddr = 0;
  std::uint32_t len = 0;
  std::uint32_t correlation = 0;
};

struct RecvToken {
  std::uint8_t port = 0;
  host::DmaAddr host_addr = 0;
  std::uint32_t size = 0;         // buffer capacity
  std::uint8_t priority = 0;
  std::uint32_t token_id = 0;
};

enum class EventType : std::uint8_t {
  kRecv,           // message landed in a posted buffer
  kSent,           // send complete; send token returns to the process
  kGot,            // gm_get response landed in local registered memory
  kAlarm,          // gm_set_alarm expiry
  kFaultDetected,  // FTGM: posted by the FTD after NIC recovery
  kSendError,      // unroutable destination etc. (middleware treats as fatal)
};

const char* to_string(EventType t);

struct EventRecord {
  EventType type = EventType::kRecv;
  std::uint8_t port = 0;
  net::NodeId peer = net::kInvalidNode;  // src node (kRecv) / dst (kSent)
  std::uint8_t peer_port = 0;
  std::uint32_t stream = 0;
  std::uint32_t seq = 0;       // FTGM: last seq of the message just ACKed
  std::uint32_t len = 0;
  std::uint32_t token_id = 0;  // recv token (kRecv) / send token (kSent)
  std::uint32_t msg_id = 0;
};

/// Size charged for the event-post DMA into the host receive queue.
inline constexpr std::size_t kEventRecordWireBytes = 64;

/// What the MCP sees of the host: event delivery and page-hash lookups.
/// Implemented by the driver/GM-library glue on each node.
class HostIface {
 public:
  virtual ~HostIface() = default;

  /// Deliver an event record to the host-side receive queue of `port`.
  /// Called after the event-post DMA has completed.
  virtual void post_event(std::uint8_t port, const EventRecord& ev) = 0;

  /// Page-hash translation for DMA addresses (std::nullopt if unmapped,
  /// which makes the MCP refuse the DMA).
  virtual std::optional<host::DmaAddr> translate(std::uint8_t port,
                                                 std::uint64_t vaddr) = 0;

  /// Mapper pushed an epoch-stamped route update (or epoch probe, when
  /// `update.nchunks == 0`) to this card. The driver versions its mirror
  /// with it and returns the last epoch it holds *completely*; the MCP
  /// echoes that in the MAP_ROUTE_ACK so the mapper can re-push laggards.
  virtual std::uint32_t map_route_update(const net::RouteUpdate& update,
                                         net::NodeId /*from*/) {
    return update.epoch;
  }
};

/// Sequence-number stream identifier inside packets.
/// GM multiplexes all traffic between two nodes over one connection
/// (stream id 0); FTGM gives each source port its own stream (paper Fig 6).
constexpr std::uint32_t stream_id(McpMode mode, std::uint8_t src_port) {
  return mode == McpMode::kGm ? 0u : static_cast<std::uint32_t>(src_port);
}

/// MCP-internal streams (gm_get responses) live above the port streams;
/// their sequence numbers are MCP-minted (not host-backed), which is safe
/// because get responses are idempotent and re-requested by the host.
inline constexpr std::uint32_t kInternalSidBase = 0x100;
constexpr std::uint32_t internal_stream_id(std::uint8_t src_port) {
  return kInternalSidBase | src_port;
}

/// Map key for per-peer stream state: (remote node, stream id).
constexpr std::uint64_t stream_key(net::NodeId peer, std::uint32_t stream) {
  return (static_cast<std::uint64_t>(peer) << 32) | stream;
}

struct McpStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t fragments_tx = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t nacks_tx = 0;
  std::uint64_t nacks_rx = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t foreign_drops = 0;  // misrouted packets for another node
  std::uint64_t dup_drops = 0;
  std::uint64_t ooo_drops = 0;
  std::uint64_t no_token_drops = 0;
  std::uint64_t unmapped_dma_refusals = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t directed_frags = 0;   // directed fragments written
  std::uint64_t directed_puts = 0;    // directed messages completed
  std::uint64_t gets_served = 0;      // gm_get requests answered
  std::uint64_t events_posted = 0;
  std::uint64_t l_timer_runs = 0;
  std::uint64_t send_chunk_runs = 0;
  std::uint64_t send_chunk_bailouts = 0;  // error-path returns, no DMA
  std::uint64_t alarms_fired = 0;
  std::uint64_t announces_sent = 0;     // post-recovery route announces
  std::uint64_t announce_retries = 0;   // announces re-sent (no MAP_ROUTE)
  // Persistent across reloads (fault classification reads these).
  std::uint64_t hangs = 0;
  std::uint64_t self_restarts = 0;
};

}  // namespace myri::mcp
