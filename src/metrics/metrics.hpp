// Measurement helpers for the benches: latency distributions, bandwidth,
// and utilization accounting over virtual time.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace myri::metrics {

class LatencyRecorder {
 public:
  void add(sim::Time t) {
    samples_.push_back(t);
    sorted_ = samples_.size() <= 1;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double mean_us() const {
    if (samples_.empty()) return 0.0;
    long double sum = 0;
    for (auto s : samples_) sum += static_cast<long double>(s);
    return static_cast<double>(sum / samples_.size()) / 1000.0;
  }

  [[nodiscard]] double min_us() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return sim::to_usec(samples_.front());
  }

  [[nodiscard]] double max_us() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return sim::to_usec(samples_.back());
  }

  /// p in [0,100]; nearest-rank percentile: the smallest sample whose rank
  /// is >= ceil(p/100 * N), i.e. index ceil(p/100 * N) - 1 once sorted.
  [[nodiscard]] double percentile_us(double p) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(samples_.size()));
    const std::size_t idx = static_cast<std::size_t>(
        std::clamp<double>(rank, 1.0,
                           static_cast<double>(samples_.size()))) -
        1;
    return sim::to_usec(samples_[idx]);
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

 private:
  // Sorted lazily, in place, at most once per batch of adds: aggregate
  // queries never depend on insertion order.
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<sim::Time> samples_;
  mutable bool sorted_ = true;
};

/// Sustained data rate of `bytes` moved during [start, end].
inline double bandwidth_mb_per_s(std::uint64_t bytes, sim::Time start,
                                 sim::Time end) {
  if (end <= start) return 0.0;
  // bytes / us == MB/s.
  return static_cast<double>(bytes) / sim::to_usec(end - start);
}

}  // namespace myri::metrics
