// Measurement helpers for the benches: latency distributions, bandwidth,
// and utilization accounting over virtual time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace myri::metrics {

class LatencyRecorder {
 public:
  void add(sim::Time t) { samples_.push_back(t); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double mean_us() const {
    if (samples_.empty()) return 0.0;
    long double sum = 0;
    for (auto s : samples_) sum += static_cast<long double>(s);
    return static_cast<double>(sum / samples_.size()) / 1000.0;
  }

  [[nodiscard]] double min_us() const {
    if (samples_.empty()) return 0.0;
    return sim::to_usec(*std::min_element(samples_.begin(), samples_.end()));
  }

  [[nodiscard]] double max_us() const {
    if (samples_.empty()) return 0.0;
    return sim::to_usec(*std::max_element(samples_.begin(), samples_.end()));
  }

  /// p in [0,100]; nearest-rank percentile.
  [[nodiscard]] double percentile_us(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<sim::Time> s = samples_;
    std::sort(s.begin(), s.end());
    const auto idx = static_cast<std::size_t>(
        std::min<double>(s.size() - 1, p / 100.0 * s.size()));
    return sim::to_usec(s[idx]);
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<sim::Time> samples_;
};

/// Sustained data rate of `bytes` moved during [start, end].
inline double bandwidth_mb_per_s(std::uint64_t bytes, sim::Time start,
                                 sim::Time end) {
  if (end <= start) return 0.0;
  // bytes / us == MB/s.
  return static_cast<double>(bytes) / sim::to_usec(end - start);
}

}  // namespace myri::metrics
