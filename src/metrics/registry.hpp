// Process-wide observability registry (counters, gauges, histograms).
//
// The paper's claims are quantitative (Table 2 overhead, Table 3 recovery
// breakdown, Figs 7-8), so every layer of the stack publishes its numbers
// into one named registry instead of hand-rolled locals. Instruments are
// designed for per-packet hot paths: after registration an update is a
// pointer-guarded O(1) add with no allocation. Snapshots are exported as
// deterministic JSON (sorted names, integers only) so benches can diff a
// machine-readable baseline across PRs.
//
// Naming scheme (see DESIGN.md "Metrics & observability"):
//   <owner>.<component>.<metric>[_<unit>]
//   e.g. node0.mcp.retransmissions, link.node1.delivered_bytes,
//        node0.ftd.recovery.reload_ns
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace myri::metrics {

/// Monotonically increasing event/byte count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept { v_ += n; }
  void inc() noexcept { ++v_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Instantaneous level (queue depth, tokens in flight) with a high-water
/// mark, so a snapshot shows both "now" and "worst seen".
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_ = v;
    max_ = std::max(max_, v);
  }
  void add(std::int64_t d) noexcept { set(v_ + d); }
  [[nodiscard]] std::int64_t value() const noexcept { return v_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bucket histogram: bounds are chosen at registration, add() is a
/// branch-light upper-bound search over a small vector (no allocation).
/// Exact count/sum/min/max are kept alongside the buckets, so means are
/// exact and only percentiles are bucket-quantized.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly ascending; values above
  /// the last bound land in an implicit overflow bucket.
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  /// Powers-of-`factor` bounds starting at `start`: the default shape for
  /// durations (1 us .. ~8 s when called with (1000, 2, 24)).
  static std::vector<std::uint64_t> exponential_bounds(std::uint64_t start,
                                                       double factor,
                                                       int count) {
    std::vector<std::uint64_t> b;
    double v = static_cast<double>(start);
    for (int i = 0; i < count; ++i) {
      b.push_back(static_cast<std::uint64_t>(v));
      v *= factor;
    }
    return b;
  }

  /// Default time buckets: 1 us to ~8.4 s in powers of two (nanoseconds).
  static const std::vector<std::uint64_t>& default_time_bounds() {
    static const std::vector<std::uint64_t> kBounds =
        exponential_bounds(1000, 2.0, 24);
    return kBounds;
  }

  void add(std::uint64_t v) noexcept {
    // First bound >= v (inclusive upper bounds); off the end -> overflow.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Nearest-rank percentile, quantized to bucket upper bounds (the
  /// overflow bucket reports the exact observed max).
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    double rank = p / 100.0 * static_cast<double>(count_);
    rank = std::ceil(rank);
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(rank));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (cum >= target) {
        return i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
      }
    }
    return max_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }

  /// Forget every observation (bounds are kept). For histograms that
  /// snapshot per-round state (e.g. fabric.route_len_hops holds only the
  /// current epoch's routes) rather than accumulate forever.
  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
  }

  /// Windowed mode: this histogram holds a bounded window of samples
  /// (its owner resets it per round, and/or Registry::roll_windowed()
  /// resets it per soak check window) instead of accumulating for the
  /// whole run. Long-run percentile reads stay fresh, and the soak drift
  /// oracle can bound the live sample count — a windowed histogram whose
  /// count keeps climbing is a missing roll, which is a leak.
  void set_windowed(bool windowed = true) noexcept { windowed_ = windowed; }
  [[nodiscard]] bool windowed() const noexcept { return windowed_; }

  /// Accumulate another histogram (same bounds: bucket-exact; different
  /// bounds: scalars only, buckets are left untouched).
  void merge(const Histogram& o) noexcept {
    if (o.count_ == 0) return;
    if (o.bounds_ == bounds_) {
      for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += o.counts_[i];
      }
    }
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  bool windowed_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Named instrument store. Registration returns stable references (node-
/// based maps), so components cache pointers once and update lock-free on
/// the hot path. One Registry per Cluster by default; benches merge the
/// per-repeat registries into an aggregate before reporting.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds =
                           Histogram::default_time_bounds()) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
    }
    return it->second;
  }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }
  /// Every registered histogram, by name (drift probes iterate these).
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Reset every histogram marked windowed (see Histogram::set_windowed).
  /// Soak mode calls this once per check window so windowed instruments
  /// hold at most one window of samples. Returns how many were rolled.
  std::size_t roll_windowed() {
    std::size_t rolled = 0;
    for (auto& [name, h] : histograms_) {
      if (!h.windowed()) continue;
      h.reset();
      ++rolled;
    }
    return rolled;
  }

  /// Accumulate every instrument of `o` into this registry (counters add,
  /// gauges keep the other's last value and the joint high-water mark,
  /// histograms merge). Used by benches to aggregate across repeats.
  void merge(const Registry& o) {
    for (const auto& [name, c] : o.counters_) counters_[name].add(c.value());
    for (const auto& [name, g] : o.gauges_) {
      Gauge& mine = gauges_[name];
      mine.set(std::max(mine.max(), g.max()));
      mine.set(g.value());
    }
    for (const auto& [name, h] : o.histograms_) {
      auto it = histograms_.find(name);
      if (it == histograms_.end()) {
        histograms_.emplace(name, h);
      } else {
        it->second.merge(h);
      }
    }
  }

  /// Deterministic JSON snapshot: object keys sorted (std::map order),
  /// integers only, histogram buckets emitted sparsely as [bound, count]
  /// pairs with null as the overflow bound.
  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) out += ',';
      first = false;
      out += '"' + escape(name) + "\":" + std::to_string(c.value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) out += ',';
      first = false;
      out += '"' + escape(name) + "\":{\"max\":" + std::to_string(g.max()) +
             ",\"value\":" + std::to_string(g.value()) + '}';
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out += ',';
      first = false;
      out += '"' + escape(name) + "\":{\"buckets\":[";
      bool bfirst = true;
      const auto& counts = h.bucket_counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        if (!bfirst) out += ',';
        bfirst = false;
        out += '[';
        out += i < h.bounds().size() ? std::to_string(h.bounds()[i]) : "null";
        out += ',' + std::to_string(counts[i]) + ']';
      }
      out += "],\"count\":" + std::to_string(h.count()) +
             ",\"max\":" + std::to_string(h.max()) +
             ",\"min\":" + std::to_string(h.min()) +
             ",\"sum\":" + std::to_string(h.sum()) + '}';
    }
    out += "}}";
    return out;
  }

 private:
  static std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Null-safe update helpers: components hold instrument pointers that stay
/// null until (unless) bind_metrics() is called, so unbound hot paths pay
/// one predictable branch.
inline void bump(Counter* c, std::uint64_t n = 1) noexcept {
  if (c != nullptr) c->add(n);
}
inline void level(Gauge* g, std::int64_t v) noexcept {
  if (g != nullptr) g->set(v);
}
inline void observe(Histogram* h, std::uint64_t v) noexcept {
  if (h != nullptr) h->add(v);
}

/// Timing of a multi-stage operation (the FTD's recovery sequence): each
/// mark() records the duration since the previous mark into the histogram
/// "<prefix>.<phase>_ns", finish() records "<prefix>.total_ns". Cheap
/// enough for control paths; not intended for per-packet use.
class PhaseTimer {
 public:
  PhaseTimer() = default;
  PhaseTimer(Registry& reg, std::string prefix)
      : reg_(&reg), prefix_(std::move(prefix)) {}

  [[nodiscard]] bool bound() const noexcept { return reg_ != nullptr; }

  void start(sim::Time now) noexcept { start_ = last_ = now; }

  void mark(std::string_view phase, sim::Time now) {
    if (reg_ != nullptr) {
      reg_->histogram(prefix_ + '.' + std::string(phase) + "_ns")
          .add(now - last_);
    }
    last_ = now;
  }

  void finish(sim::Time now) {
    if (reg_ != nullptr) {
      reg_->histogram(prefix_ + ".total_ns").add(now - start_);
    }
    last_ = now;
  }

 private:
  Registry* reg_ = nullptr;
  std::string prefix_;
  sim::Time start_ = 0;
  sim::Time last_ = 0;
};

}  // namespace myri::metrics
