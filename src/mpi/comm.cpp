#include "mpi/comm.hpp"

#include <cstring>

namespace myri::mpi {

namespace {

// Internal collective tags live above the user range: user tags must be
// in [0, 2^24). Layout: [kind:4][generation:16][round:8] above bit 24.
constexpr int kCollBase = 1 << 24;
constexpr int kBarrierKind = 1;
constexpr int kBcastKind = 2;
constexpr int kReduceKind = 3;

constexpr int make_coll_tag(int kind, std::uint32_t gen, int round) {
  return kCollBase + (kind << 20) + static_cast<int>((gen & 0xfff) << 8) +
         round;
}

// Message framing: [i32 tag][i32 src rank][payload].
constexpr std::size_t kHeaderBytes = 8;

void put_i32(std::vector<std::byte>& v, int x) {
  for (int i = 0; i < 4; ++i) {
    v.push_back(static_cast<std::byte>((x >> (8 * i)) & 0xff));
  }
}

int get_i32(std::span<const std::byte> v, std::size_t off) {
  int x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= std::to_integer<int>(v[off + i]) << (8 * i);
  }
  return x;
}

}  // namespace

// --------------------------------------------------------------------------
// Comm
// --------------------------------------------------------------------------

Comm::Comm(std::vector<gm::Node*> nodes, Config cfg)
    : cfg_(cfg), nodes_(std::move(nodes)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    gm::Port::Config pc;
    pc.send_tokens = static_cast<std::uint32_t>(cfg_.send_slots) + 2;
    pc.recv_tokens = static_cast<std::uint32_t>(cfg_.recv_slots) + 2;
    gm::Port& port = nodes_[i]->open_port(cfg_.gm_port, pc);
    ranks_.emplace_back(new Rank(*this, static_cast<int>(i), port));
  }
}

void Comm::abort(const std::string& why) {
  if (aborted_) return;
  aborted_ = true;
  abort_reason_ = why;
}

// --------------------------------------------------------------------------
// Rank
// --------------------------------------------------------------------------

Rank::Rank(Comm& comm, int rank, gm::Port& port)
    : comm_(comm), rank_(rank), port_(&port) {
  // Receive side: post buffers and install the demultiplexer.
  for (int i = 0; i < comm_.cfg_.recv_slots; ++i) {
    port_->provide_receive_buffer(port_->alloc_dma_buffer(comm_.cfg_.max_msg));
  }
  port_->set_receive_handler(
      [this](const gm::RecvInfo& info) { on_message(info); });
  // Send side: a pool of pinned buffers.
  for (int i = 0; i < comm_.cfg_.send_slots; ++i) {
    send_pool_.push_back(port_->alloc_dma_buffer(comm_.cfg_.max_msg));
  }
}

int Rank::size() const noexcept { return comm_.size(); }

bool Rank::aborted() const noexcept { return comm_.aborted(); }

void Rank::isend(int dst, int tag, std::span<const std::byte> data,
                 SendDone done) {
  if (comm_.aborted()) {
    if (done) done(false);
    return;
  }
  if (data.size() + kHeaderBytes > comm_.cfg_.max_msg) {
    comm_.abort("message exceeds communicator max_msg");
    if (done) done(false);
    return;
  }
  ++stats_.sends;
  QueuedSend qs;
  qs.dst = dst;
  qs.framed.reserve(kHeaderBytes + data.size());
  put_i32(qs.framed, tag);
  put_i32(qs.framed, rank_);
  qs.framed.insert(qs.framed.end(), data.begin(), data.end());
  qs.done = std::move(done);
  send_queue_.push_back(std::move(qs));
  pump_sends();
}

void Rank::pump_sends() {
  while (!send_queue_.empty() && !send_pool_.empty()) {
    if (!try_send_now(send_queue_.front())) break;
    send_queue_.pop_front();
  }
}

bool Rank::try_send_now(const QueuedSend& qs) {
  gm::Buffer buf = send_pool_.back();
  gm::Node& node = port_->node();
  if (!node.memory().write(buf.addr, qs.framed)) return false;
  SendDone done = qs.done;  // copy before the queue entry is destroyed
  const gm::Status st = port_->post(
      buf, static_cast<std::uint32_t>(qs.framed.size()),
      {.dst = comm_.nodes_[static_cast<std::size_t>(qs.dst)]->id(),
       .dst_port = comm_.cfg_.gm_port,
       .callback = [this, buf, done](bool success) {
         send_pool_.push_back(buf);
         if (!success && comm_.cfg_.abort_on_send_error) {
           // MPI-over-GM semantics (paper Section 2): a GM send error is
           // fatal; the distributed application grinds to a halt.
           comm_.abort("fatal GM send error");
         }
         if (done) done(success);
         pump_sends();
       }});
  // Out of GM send tokens (or recovering): retry on the next completion.
  if (!st) return false;
  send_pool_.pop_back();
  return true;
}

void Rank::on_message(const gm::RecvInfo& info) {
  auto bytes = port_->node().memory().at(info.buffer.addr, info.len);
  Message msg;
  if (bytes.size() >= kHeaderBytes) {
    msg.tag = get_i32(bytes, 0);
    msg.src = get_i32(bytes, 4);
    msg.data.assign(bytes.begin() + kHeaderBytes, bytes.end());
  }
  // Zero-copy discipline: the buffer goes straight back to the LANai.
  port_->provide_receive_buffer(info.buffer);
  ++stats_.recvs;
  deliver(std::move(msg));
}

void Rank::deliver(Message msg) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const bool src_ok = it->src == kAnySource || it->src == msg.src;
    const bool tag_ok = it->tag == kAnyTag || it->tag == msg.tag;
    if (src_ok && tag_ok) {
      RecvK k = std::move(it->k);
      pending_.erase(it);
      k(std::move(msg));
      return;
    }
  }
  ++stats_.unexpected;
  unexpected_.push_back(std::move(msg));
}

void Rank::irecv(int src, int tag, RecvK k) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const bool src_ok = src == kAnySource || src == it->src;
    const bool tag_ok = tag == kAnyTag || tag == it->tag;
    if (src_ok && tag_ok) {
      Message msg = std::move(*it);
      unexpected_.erase(it);
      k(std::move(msg));
      return;
    }
  }
  pending_.push_back({src, tag, std::move(k)});
}

// --------------------------------------------------------------------------
// Collectives
// --------------------------------------------------------------------------

void Rank::barrier(std::function<void()> done) {
  ++stats_.collectives;
  const std::uint32_t gen = coll_gen_++;
  const int n = size();
  if (n <= 1) {
    if (done) done();
    return;
  }
  // Dissemination barrier: ceil(log2 n) rounds of send/recv at doubling
  // distances. Progress is gated on the receive of each round.
  struct State {
    int round = 0;
    std::function<void()> done;
    std::function<void(State*)> step;
  };
  auto* st = new State{0, std::move(done), nullptr};
  st->step = [this, n, gen](State* s) {
    const int dist = 1 << s->round;
    if (dist >= n) {
      auto d = std::move(s->done);
      delete s;
      if (d) d();
      return;
    }
    const int to = (rank_ + dist) % n;
    const int from = ((rank_ - dist) % n + n) % n;
    const int tag = make_coll_tag(kBarrierKind, gen, s->round);
    isend(to, tag, {});
    irecv(from, tag, [s](Message) {
      ++s->round;
      s->step(s);
    });
  };
  st->step(st);
}

void Rank::bcast(int root, std::vector<std::byte>* data,
                 std::function<void()> done) {
  ++stats_.collectives;
  const std::uint32_t gen = coll_gen_++;
  const int n = size();
  const int vr = ((rank_ - root) % n + n) % n;

  auto forward = [this, n, vr, root, gen, data,
                  done = std::move(done)](int recv_mask) {
    // Send down the binomial tree: all masks below the one we received on.
    for (int mask = recv_mask >> 1; mask > 0; mask >>= 1) {
      if (vr + mask < n) {
        const int to = (vr + mask + root) % n;
        isend(to, make_coll_tag(kBcastKind, gen, 0), *data);
      }
    }
    if (done) done();
  };

  if (vr == 0) {
    // Root: its "receive mask" is the smallest power of two >= n.
    int mask = 1;
    while (mask < n) mask <<= 1;
    forward(mask);
    return;
  }
  // Non-root: parent strips the lowest set bit of vr.
  const int lowbit = vr & -vr;
  const int parent = (vr - lowbit + root) % n;
  irecv(parent, make_coll_tag(kBcastKind, gen, 0),
        [data, forward, lowbit](Message msg) {
          *data = std::move(msg.data);
          forward(lowbit);
        });
}

void Rank::reduce_sum(int root, double value,
                      std::function<void(double)> done) {
  ++stats_.collectives;
  const std::uint32_t gen = coll_gen_++;
  const int n = size();
  const int vr = ((rank_ - root) % n + n) % n;

  struct State {
    double acc;
    int mask = 1;
    std::function<void(double)> done;
    std::function<void(State*)> step;
  };
  auto* st = new State{value, 1, std::move(done), nullptr};
  st->step = [this, n, vr, root, gen](State* s) {
    if (s->mask >= n) {
      // Only the root reaches here with the full sum.
      auto d = std::move(s->done);
      const double acc = s->acc;
      delete s;
      if (d) d(acc);
      return;
    }
    if (vr & s->mask) {
      // Leaf for this round: ship the partial sum to the parent and stop.
      const int parent = (vr - s->mask + root) % n;
      isend(parent, make_coll_tag(kReduceKind, gen, 0), as_bytes(s->acc));
      auto d = std::move(s->done);
      delete s;
      if (d) d(0.0);  // result is only valid at the root
      return;
    }
    const int partner = vr + s->mask;
    if (partner < n) {
      const int from = (partner + root) % n;
      irecv(from, make_coll_tag(kReduceKind, gen, 0), [s](Message msg) {
        s->acc += from_bytes<double>(msg.data);
        s->mask <<= 1;
        s->step(s);
      });
    } else {
      s->mask <<= 1;
      s->step(s);
    }
  };
  st->step(st);
}

void Rank::allreduce_sum(double value, std::function<void(double)> done) {
  // Reduce to rank 0, then broadcast the result.
  reduce_sum(0, value, [this, done = std::move(done)](double sum) {
    auto* buf = new std::vector<std::byte>();
    if (rank_ == 0) {
      buf->resize(sizeof(double));
      std::memcpy(buf->data(), &sum, sizeof(double));
    }
    bcast(0, buf, [buf, done = std::move(done)] {
      const double total = from_bytes<double>(*buf);
      delete buf;
      if (done) done(total);
    });
  });
}

int Rank::coll_tag(int kind, int round) const {
  return make_coll_tag(kind, coll_gen_, round);
}

}  // namespace myri::mpi
