// A miniature MPI-style middleware over GM ("mmpi").
//
// The paper motivates FTGM with exactly this layer: "Middleware, such as
// MPI, built on top of GM, consider GM send errors to be fatal and exit
// when they encounter such errors. This can cause a distributed
// application using MPI to come to a grinding halt if proper fault
// tolerance is not implemented" (Section 2). This module provides ranks,
// tagged point-to-point messaging with MPI matching semantics (wildcards,
// unexpected-message queue), and dissemination/binomial-tree collectives —
// all on the unmodified GM API, so the same middleware binary runs over
// baseline GM (where a NIC hang kills the job) and over FTGM (where it
// doesn't; the recovery is invisible up here).
//
// The simulation is event-driven, so the API is continuation-based:
// isend/irecv take completion callbacks instead of blocking.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gm/node.hpp"
#include "gm/port.hpp"

namespace myri::mpi {

/// Wildcards for irecv matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// An arrived message as delivered to an irecv continuation.
struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> data;
};

struct RankStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t unexpected = 0;   // arrived before a matching irecv
  std::uint64_t collectives = 0;
};

class Comm;

/// One MPI process (one GM port on one node).
class Rank {
 public:
  using SendDone = std::function<void(bool ok)>;
  using RecvK = std::function<void(Message)>;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Non-blocking tagged send; `done(ok)` fires when the send token
  /// returns. With abort_on_send_error (the default, matching MPI-over-GM
  /// semantics), a failed send aborts the whole job instead.
  void isend(int dst, int tag, std::span<const std::byte> data,
             SendDone done = nullptr);

  /// Post a receive; `k` fires with the matching message. Matching is
  /// MPI-like: FIFO by posting order, wildcards allowed, and messages that
  /// arrive before a matching post wait in the unexpected queue.
  void irecv(int src, int tag, RecvK k);

  // ---- collectives (dissemination / binomial tree) ----
  void barrier(std::function<void()> done);
  void bcast(int root, std::vector<std::byte>* data,
             std::function<void()> done);
  void reduce_sum(int root, double value, std::function<void(double)> done);
  void allreduce_sum(double value, std::function<void(double)> done);

  /// True once the job aborted (fatal GM send error, MPI-over-GM style).
  [[nodiscard]] bool aborted() const noexcept;
  [[nodiscard]] const RankStats& stats() const noexcept { return stats_; }
  [[nodiscard]] gm::Port& port() noexcept { return *port_; }

 private:
  friend class Comm;
  struct PendingRecv {
    int src;
    int tag;
    RecvK k;
  };
  struct QueuedSend {
    int dst;
    std::vector<std::byte> framed;
    SendDone done;
  };

  Rank(Comm& comm, int rank, gm::Port& port);
  void on_message(const gm::RecvInfo& info);
  void deliver(Message msg);
  void pump_sends();
  bool try_send_now(const QueuedSend& qs);

  // Collective plumbing: internal tags carry (kind | generation | round).
  [[nodiscard]] int coll_tag(int kind, int round) const;

  Comm& comm_;
  int rank_;
  gm::Port* port_;
  std::deque<PendingRecv> pending_;
  std::deque<Message> unexpected_;
  std::deque<QueuedSend> send_queue_;
  std::vector<gm::Buffer> send_pool_;   // free pinned send buffers
  std::uint32_t coll_gen_ = 0;          // disambiguates back-to-back collectives
  RankStats stats_;
};

/// The communicator: one Rank per node, all on the same GM port id.
class Comm {
 public:
  struct Config {
    std::uint8_t gm_port = 6;
    std::uint32_t max_msg = 64 * 1024;  // buffer size per slot
    int send_slots = 8;
    int recv_slots = 16;
    /// Faithful MPI-over-GM behaviour: a GM send error is fatal for the
    /// whole job (paper Section 2). Disable to get error-returning sends.
    bool abort_on_send_error = true;
  };

  /// Build a communicator over `nodes` (rank i lives on nodes[i]). Ports
  /// are opened here; run the simulation ~1 ms before communicating so the
  /// control path processes the opens.
  Comm(std::vector<gm::Node*> nodes, Config cfg);
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] Rank& rank(int r) { return *ranks_.at(r); }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  /// Abort the job (fatal error semantics); all ranks observe it.
  void abort(const std::string& why);
  [[nodiscard]] const std::string& abort_reason() const noexcept {
    return abort_reason_;
  }

 private:
  friend class Rank;
  Config cfg_;
  std::vector<gm::Node*> nodes_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  bool aborted_ = false;
  std::string abort_reason_;
};

// ---- helpers for typed payloads ----

template <typename T>
std::span<const std::byte> as_bytes(const T& v) {
  return std::as_bytes(std::span<const T, 1>(&v, 1));
}

template <typename T>
T from_bytes(const std::vector<std::byte>& data) {
  T v{};
  if (data.size() >= sizeof(T)) std::memcpy(&v, data.data(), sizeof(T));
  return v;
}

}  // namespace myri::mpi
