#include "net/fabric.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

namespace myri::net {

const char* to_string(FabricPreset p) {
  switch (p) {
    case FabricPreset::kSingleSwitch: return "single";
    case FabricPreset::kLine: return "line";
    case FabricPreset::kRing: return "ring";
    case FabricPreset::kFatTree: return "fat-tree";
    case FabricPreset::kFatTree3: return "fat-tree3";
  }
  return "?";
}

std::optional<FabricPreset> parse_fabric_preset(std::string_view s) {
  if (s == "single") return FabricPreset::kSingleSwitch;
  if (s == "line") return FabricPreset::kLine;
  if (s == "ring") return FabricPreset::kRing;
  if (s == "fat-tree" || s == "fattree") return FabricPreset::kFatTree;
  if (s == "fat-tree3" || s == "fattree3") return FabricPreset::kFatTree3;
  return std::nullopt;
}

namespace {
// Chains reserve the two highest ports for trunks; fat-trees split the
// radix evenly between hosts (low ports) and uplinks (high ports).
constexpr std::size_t kMaxSwitches = 4096;
}  // namespace

std::size_t FabricBuilder::capacity(const FabricConfig& cfg) {
  switch (cfg.preset) {
    case FabricPreset::kSingleSwitch:
      return cfg.radix;
    case FabricPreset::kLine:
    case FabricPreset::kRing:
      if (cfg.radix < 3) return 0;
      return static_cast<std::size_t>(cfg.radix - 2) * kMaxSwitches;
    case FabricPreset::kFatTree:
      if (cfg.radix < 2) return 0;
      // One spine port per leaf; leaves bounded by the spine port counter.
      return static_cast<std::size_t>(cfg.radix / 2) * 255;
    case FabricPreset::kFatTree3: {
      if (cfg.radix < 2) return 0;
      // Canonical k-ary fat-tree: k pods of k/2 edge switches with k/2
      // hosts each — k³/4 endpoints (radix 16 ⇒ 1024).
      const std::size_t half = cfg.radix / 2;
      return half * half * cfg.radix;
    }
  }
  return 0;
}

FabricBuilder::FabricBuilder(Topology& topo, FabricConfig cfg)
    : topo_(topo), cfg_(cfg) {
  if (cfg_.nodes < 1) {
    throw std::invalid_argument("fabric needs at least one node");
  }
  if (static_cast<std::size_t>(cfg_.nodes) > capacity(cfg_)) {
    throw std::invalid_argument(
        std::string("fabric preset ") + to_string(cfg_.preset) + " radix " +
        std::to_string(cfg_.radix) + " cannot hold " +
        std::to_string(cfg_.nodes) + " nodes");
  }
  switch (cfg_.preset) {
    case FabricPreset::kSingleSwitch: build_single_switch(); break;
    case FabricPreset::kLine: build_chain(false); break;
    case FabricPreset::kRing: build_chain(true); break;
    case FabricPreset::kFatTree: build_fat_tree(); break;
    case FabricPreset::kFatTree3: build_fat_tree3(); break;
  }
  compute_tiers();
}

std::uint16_t FabricBuilder::add_switch(std::uint8_t ports,
                                        std::string name) {
  const std::uint16_t id = topo_.add_switch(ports, std::move(name));
  sw_ids_.push_back(id);
  adj_.emplace_back();
  return static_cast<std::uint16_t>(sw_ids_.size() - 1);  // local index
}

void FabricBuilder::add_trunk(std::uint16_t a, std::uint8_t port_a,
                              std::uint16_t b, std::uint8_t port_b) {
  trunks_.push_back(
      topo_.connect_switches(sw_ids_[a], port_a, sw_ids_[b], port_b));
  adj_[a].push_back({b, port_a});
  adj_[b].push_back({a, port_b});
}

void FabricBuilder::build_single_switch() {
  const std::uint16_t s = add_switch(cfg_.radix, "sw0");
  for (int i = 0; i < cfg_.nodes; ++i) {
    placements_.push_back({sw_ids_[s], static_cast<std::uint8_t>(i)});
    local_index_.push_back(s);
  }
}

void FabricBuilder::build_chain(bool closed) {
  const int hosts_per = cfg_.radix - 2;
  const int num_sw = (cfg_.nodes + hosts_per - 1) / hosts_per;
  const std::uint8_t next_port = static_cast<std::uint8_t>(cfg_.radix - 2);
  const std::uint8_t prev_port = static_cast<std::uint8_t>(cfg_.radix - 1);
  for (int k = 0; k < num_sw; ++k) {
    add_switch(cfg_.radix, "sw" + std::to_string(k));
  }
  for (int k = 0; k + 1 < num_sw; ++k) {
    add_trunk(static_cast<std::uint16_t>(k), next_port,
              static_cast<std::uint16_t>(k + 1), prev_port);
  }
  if (closed && num_sw > 1) {
    add_trunk(static_cast<std::uint16_t>(num_sw - 1), next_port, 0,
              prev_port);
  }
  for (int i = 0; i < cfg_.nodes; ++i) {
    const auto k = static_cast<std::uint16_t>(i / hosts_per);
    placements_.push_back(
        {sw_ids_[k], static_cast<std::uint8_t>(i % hosts_per)});
    local_index_.push_back(k);
  }
}

void FabricBuilder::build_fat_tree() {
  const int hosts_per_leaf = cfg_.radix / 2;
  const int uplinks = cfg_.radix / 2;
  const int leaves = (cfg_.nodes + hosts_per_leaf - 1) / hosts_per_leaf;
  // Leaves first (local 0..leaves-1), then spines. A spine carries one
  // port per leaf; spine j's port L cables to leaf L's uplink j.
  for (int l = 0; l < leaves; ++l) {
    add_switch(cfg_.radix, "leaf" + std::to_string(l));
  }
  for (int j = 0; j < uplinks; ++j) {
    add_switch(static_cast<std::uint8_t>(leaves),
               "spine" + std::to_string(j));
  }
  for (int l = 0; l < leaves; ++l) {
    for (int j = 0; j < uplinks; ++j) {
      add_trunk(static_cast<std::uint16_t>(l),
                static_cast<std::uint8_t>(hosts_per_leaf + j),
                static_cast<std::uint16_t>(leaves + j),
                static_cast<std::uint8_t>(l));
    }
  }
  for (int i = 0; i < cfg_.nodes; ++i) {
    const auto l = static_cast<std::uint16_t>(i / hosts_per_leaf);
    placements_.push_back(
        {sw_ids_[l], static_cast<std::uint8_t>(i % hosts_per_leaf)});
    local_index_.push_back(l);
  }
}

void FabricBuilder::build_fat_tree3() {
  // Canonical k-ary fat-tree with k = radix. Pods hold k/2 edge switches
  // (low ports: hosts, high ports: uplinks to every agg in the pod) and
  // k/2 agg switches (low ports: one per edge, high ports: uplinks to
  // cores). Core c of agg-column a cables port p to pod p's agg a — the
  // (a, c) core grid gives (k/2)² disjoint spines between any two pods.
  const int half = cfg_.radix / 2;
  const int hosts_per_pod = half * half;
  const int pods = (cfg_.nodes + hosts_per_pod - 1) / hosts_per_pod;
  for (int p = 0; p < pods; ++p) {
    for (int e = 0; e < half; ++e) {
      add_switch(cfg_.radix,
                 "p" + std::to_string(p) + "e" + std::to_string(e));
    }
    for (int a = 0; a < half; ++a) {
      add_switch(cfg_.radix,
                 "p" + std::to_string(p) + "a" + std::to_string(a));
    }
  }
  const int core_base = pods * 2 * half;
  for (int a = 0; a < half; ++a) {
    for (int c = 0; c < half; ++c) {
      add_switch(cfg_.radix,
                 "core" + std::to_string(a) + "x" + std::to_string(c));
    }
  }
  for (int p = 0; p < pods; ++p) {
    const int base = p * 2 * half;
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        add_trunk(static_cast<std::uint16_t>(base + e),
                  static_cast<std::uint8_t>(half + a),
                  static_cast<std::uint16_t>(base + half + a),
                  static_cast<std::uint8_t>(e));
      }
    }
  }
  for (int p = 0; p < pods; ++p) {
    const int base = p * 2 * half;
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        add_trunk(static_cast<std::uint16_t>(base + half + a),
                  static_cast<std::uint8_t>(half + c),
                  static_cast<std::uint16_t>(core_base + a * half + c),
                  static_cast<std::uint8_t>(p));
      }
    }
  }
  for (int i = 0; i < cfg_.nodes; ++i) {
    const int p = i / hosts_per_pod;
    const int e = (i % hosts_per_pod) / half;
    placements_.push_back({sw_ids_[static_cast<std::size_t>(p * 2 * half + e)],
                           static_cast<std::uint8_t>(i % half)});
    local_index_.push_back(static_cast<std::uint16_t>(p * 2 * half + e));
  }
}

void FabricBuilder::compute_tiers() {
  // Route length (bytes) == switches traversed == switch-graph path edges
  // + 1; tiers_ is the worst case over switches that actually host nodes.
  int worst = 1;
  // One BFS per distinct hosting switch, not per node — many nodes share
  // an edge switch at scale.
  std::vector<std::uint16_t> hosting(local_index_);
  std::sort(hosting.begin(), hosting.end());
  hosting.erase(std::unique(hosting.begin(), hosting.end()), hosting.end());
  for (const std::uint16_t src : hosting) {
    std::vector<int> dist(adj_.size(), -1);
    std::deque<std::uint16_t> q{src};
    dist[src] = 0;
    while (!q.empty()) {
      const std::uint16_t u = q.front();
      q.pop_front();
      for (const Edge& e : adj_[u]) {
        if (dist[e.to] >= 0) continue;
        dist[e.to] = dist[u] + 1;
        q.push_back(e.to);
      }
    }
    for (const std::uint16_t dst : hosting) {
      if (dist[dst] >= 0) worst = std::max(worst, dist[dst] + 1);
    }
  }
  tiers_ = worst;
}

std::vector<std::vector<bool>> FabricBuilder::port_usage() const {
  std::vector<std::vector<bool>> used(sw_ids_.size());
  for (std::size_t s = 0; s < sw_ids_.size(); ++s) {
    used[s].assign(topo_.get_switch(sw_ids_[s]).num_ports(), false);
    for (const Edge& e : adj_[s]) used[s][e.out_port] = true;
  }
  // placements_ store topology switch ids; map back to local indices.
  std::vector<std::size_t> local(sw_ids_.size());
  for (std::size_t s = 0; s < sw_ids_.size(); ++s) local[sw_ids_[s]] = s;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (i < released_.size() && released_[i]) continue;  // retired: reusable
    used[local[placements_[i].sw]][placements_[i].port] = true;
  }
  return used;
}

void FabricBuilder::release_port(NodeId id) {
  if (id >= placements_.size()) return;
  if (released_.size() < placements_.size()) {
    released_.resize(placements_.size(), false);
  }
  released_[id] = true;
}

std::optional<Placement> FabricBuilder::reserve_port() {
  const auto used = port_usage();
  for (std::size_t s = 0; s < sw_ids_.size(); ++s) {
    for (std::size_t p = 0; p < used[s].size(); ++p) {
      if (used[s][p]) continue;
      const Placement at{sw_ids_[s], static_cast<std::uint8_t>(p)};
      placements_.push_back(at);
      local_index_.push_back(static_cast<std::uint16_t>(s));
      return at;
    }
  }
  return std::nullopt;
}

std::size_t FabricBuilder::free_ports() const {
  std::size_t n = 0;
  for (const auto& sw : port_usage()) {
    for (const bool u : sw) n += u ? 0 : 1;
  }
  return n;
}

std::optional<std::vector<std::uint8_t>> FabricBuilder::route(
    NodeId a, NodeId b) const {
  if (a == b) return std::nullopt;
  if (a >= placements_.size() || b >= placements_.size()) {
    return std::nullopt;
  }
  const std::uint16_t src = local_index_[a];
  const std::uint16_t dst = local_index_[b];
  struct Hop {
    std::uint16_t parent;
    std::uint8_t out_port;  // port taken at the parent
  };
  std::vector<std::optional<Hop>> prev(adj_.size());
  std::deque<std::uint16_t> q{src};
  prev[src] = Hop{src, 0};
  while (!q.empty() && !prev[dst].has_value()) {
    const std::uint16_t u = q.front();
    q.pop_front();
    for (const Edge& e : adj_[u]) {
      if (prev[e.to].has_value()) continue;
      prev[e.to] = Hop{u, e.out_port};
      q.push_back(e.to);
    }
  }
  if (!prev[dst].has_value()) return std::nullopt;
  // Inter-switch bytes reconstructed backwards; the final byte is the
  // destination's host port at its own switch.
  std::vector<std::uint8_t> rev{placements_[b].port};
  for (std::uint16_t cur = dst; cur != src; cur = prev[cur]->parent) {
    rev.push_back(prev[cur]->out_port);
  }
  return std::vector<std::uint8_t>(rev.rbegin(), rev.rend());
}

std::vector<std::vector<std::uint8_t>> FabricBuilder::routes_from(
    NodeId a) const {
  std::vector<std::vector<std::uint8_t>> out(placements_.size());
  if (a >= placements_.size()) return out;
  const std::uint16_t src = local_index_[a];
  struct Hop {
    std::uint16_t parent;
    std::uint8_t out_port;  // port taken at the parent
  };
  std::vector<std::optional<Hop>> prev(adj_.size());
  std::deque<std::uint16_t> q{src};
  prev[src] = Hop{src, 0};
  while (!q.empty()) {
    const std::uint16_t u = q.front();
    q.pop_front();
    for (const Edge& e : adj_[u]) {
      if (prev[e.to].has_value()) continue;
      prev[e.to] = Hop{u, e.out_port};
      q.push_back(e.to);
    }
  }
  for (std::size_t b = 0; b < placements_.size(); ++b) {
    if (b == a) continue;
    const std::uint16_t dst = local_index_[b];
    if (!prev[dst].has_value()) continue;
    std::vector<std::uint8_t> rev{placements_[b].port};
    for (std::uint16_t cur = dst; cur != src; cur = prev[cur]->parent) {
      rev.push_back(prev[cur]->out_port);
    }
    out[b].assign(rev.rbegin(), rev.rend());
  }
  return out;
}

}  // namespace myri::net
