// Fabric builder: preset multi-switch topologies with computed placement.
//
// Assembles switches and trunk cables in a Topology from a small recipe
// (single switch, line, ring, 2-level fat-tree/Clos) and computes where
// each endpoint plugs in, so a cluster is no longer bounded by one
// switch's ports. The builder also keeps the as-built graph and can emit
// pristine source routes for direct installation (tests/benches skipping
// the mapper); live fabrics learn and re-learn routes from the mapper,
// which is what routes around failed cables.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "net/topology.hpp"

namespace myri::net {

enum class FabricPreset : std::uint8_t {
  kSingleSwitch,  // one switch, node i on port i (the seed testbed)
  kLine,          // chain of switches, no redundancy
  kRing,          // chain closed into a loop: one redundant path
  kFatTree,       // 2-level Clos: leaf switches + radix/2 spines
  kFatTree3,      // 3-level Clos (k-ary fat-tree): edge/agg pods + cores
};

[[nodiscard]] const char* to_string(FabricPreset p);
[[nodiscard]] std::optional<FabricPreset> parse_fabric_preset(
    std::string_view s);

struct FabricConfig {
  FabricPreset preset = FabricPreset::kSingleSwitch;
  int nodes = 2;
  /// Ports per edge switch (the Myrinet switch radix). Fat-tree spines are
  /// wider: one port per leaf, mirroring a Clos built from a bigger
  /// crossbar (or a quad of small ones) in the middle.
  std::uint8_t radix = 8;
};

/// Where the builder plugged endpoint (node) `i` in.
struct Placement {
  std::uint16_t sw = 0;
  std::uint8_t port = 0;
};

class FabricBuilder {
 public:
  /// Builds the preset into `topo` immediately (switches + trunk cables).
  /// Throws std::invalid_argument if `cfg` is unsatisfiable (node count
  /// over capacity, radix too small for the preset).
  FabricBuilder(Topology& topo, FabricConfig cfg);

  [[nodiscard]] const FabricConfig& config() const noexcept { return cfg_; }
  /// Endpoint placements, indexed by node id (0..nodes-1).
  [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
    return placements_;
  }
  /// Inter-switch cables, in creation order (failover targets).
  [[nodiscard]] const std::vector<Topology::CableId>& trunk_cables()
      const noexcept {
    return trunks_;
  }
  [[nodiscard]] std::size_t num_switches() const noexcept {
    return sw_ids_.size();
  }
  /// Max switches any pristine minimal route traverses (= max route bytes:
  /// every traversed switch consumes one route byte). Fat-tree: 3.
  [[nodiscard]] int tiers() const noexcept { return tiers_; }

  /// Pristine shortest source route a -> b over the as-built graph (one
  /// output-port byte per traversed switch). nullopt when a == b or out
  /// of range. Ignores cable state: use the mapper on a degraded fabric.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> route(
      NodeId a, NodeId b) const;

  /// Pristine shortest routes from `a` to every other endpoint, indexed
  /// by destination node id (empty vector: self or unreachable). One BFS
  /// for the whole row — installing full route tables on an n-node
  /// cluster is O(n · graph) instead of the O(n² · graph) of per-pair
  /// route() calls, which matters from ~512 endpoints up.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> routes_from(
      NodeId a) const;

  /// Max endpoints the preset supports (0 = unsatisfiable config).
  [[nodiscard]] static std::size_t capacity(const FabricConfig& cfg);

  /// Reserve a free switch port for a hot-added endpoint: the first
  /// (switch, port) — in local switch order, then port order — occupied
  /// by neither a placement nor a trunk. Appends the placement (the new
  /// node id is placements().size() - 1) so route()/routes_from() cover
  /// it. nullopt when the as-built fabric has no free port.
  std::optional<Placement> reserve_port();

  /// Ports reserve_port() could still hand out on the as-built switches.
  [[nodiscard]] std::size_t free_ports() const;

  /// Release the switch port behind placement `id` (a retired endpoint):
  /// reserve_port() may hand the same (switch, port) out again for a later
  /// hot-add, so sustained join/drain churn is not bounded by the as-built
  /// free-port count. The placement entry itself is kept — node ids stay
  /// stable and route()/routes_from() still index by id. No-op for ids out
  /// of range or already released.
  void release_port(NodeId id);

 private:
  struct Edge {
    std::uint16_t to;       // local switch index
    std::uint8_t out_port;  // port taken at the source switch
  };

  std::vector<std::vector<bool>> port_usage() const;
  void build_single_switch();
  void build_chain(bool closed);
  void build_fat_tree();
  void build_fat_tree3();
  std::uint16_t add_switch(std::uint8_t ports, std::string name);
  void add_trunk(std::uint16_t a, std::uint8_t port_a, std::uint16_t b,
                 std::uint8_t port_b);
  void compute_tiers();

  Topology& topo_;
  FabricConfig cfg_;
  std::vector<Placement> placements_;
  std::vector<bool> released_;  // by node id: port given back by a retire
  std::vector<Topology::CableId> trunks_;
  std::vector<std::uint16_t> sw_ids_;       // local index -> topology id
  std::vector<std::vector<Edge>> adj_;      // by local switch index
  std::vector<std::uint16_t> local_index_;  // by node id: placement switch
  int tiers_ = 1;
};

}  // namespace myri::net
