#include "net/link.hpp"

#include <cassert>

namespace myri::net {

Link::Link(sim::EventQueue& eq, sim::Rng rng, Config cfg, std::string name)
    : eq_(eq), rng_(std::move(rng)), cfg_(cfg), name_(std::move(name)) {}

void Link::connect(PacketSink& dst, std::uint8_t dst_port) {
  dst_ = &dst;
  dst_port_ = dst_port;
}

bool Link::can_accept() const { return queued_ < cfg_.max_queued_packets; }

void Link::bind_metrics(metrics::Registry& reg) {
  const std::string p = "link." + name_ + '.';
  m_.offered_bytes = &reg.counter(p + "offered_bytes");
  m_.delivered_bytes = &reg.counter(p + "delivered_bytes");
  m_.dropped = &reg.counter(p + "dropped");
  m_.corrupted = &reg.counter(p + "corrupted");
  m_.misrouted = &reg.counter(p + "misrouted");
}

sim::Time Link::serialization_time(std::size_t bytes) const {
  // bits / (Gb/s) = ns exactly, so: bytes * 8 / gbps nanoseconds.
  return static_cast<sim::Time>(static_cast<double>(bytes) * 8.0 / cfg_.gbps);
}

void Link::apply_faults(Packet& pkt, bool& drop) {
  drop = false;
  if (rng_.bernoulli(faults_.drop_prob)) {
    drop = true;
    ++stats_.dropped;
    metrics::bump(m_.dropped);
    return;
  }
  if (rng_.bernoulli(faults_.corrupt_prob)) {
    ++stats_.corrupted;
    metrics::bump(m_.corrupted);
    if (!pkt.payload.empty()) {
      const std::size_t bit = static_cast<std::size_t>(
          rng_.below(pkt.payload.size() * 8));
      pkt.payload[bit / 8] ^= std::byte{static_cast<unsigned char>(
          1u << (bit % 8))};
    } else {
      // Header corruption on a payload-less packet (e.g. an ACK).
      pkt.seq ^= 1u << rng_.below(32);
    }
    // crc left as-is: the receiver's CRC check catches the damage.
  }
  if (!pkt.route.empty() && rng_.bernoulli(faults_.misroute_prob)) {
    ++stats_.misrouted;
    metrics::bump(m_.misrouted);
    pkt.route.front() =
        static_cast<std::uint8_t>(pkt.route.front() ^ (1u + rng_.below(7)));
  }
}

void Link::send(Packet pkt) {
  assert(dst_ != nullptr && "link not connected");
  // Fault injection only flips bits, so the wire size is stable from here.
  const std::size_t wire = pkt.wire_size();
  ++stats_.sent;
  stats_.offered_bytes += wire;
  metrics::bump(m_.offered_bytes, wire);
  if (down_) {
    ++stats_.dropped;  // unplugged cable: everything is lost
    metrics::bump(m_.dropped);
    return;
  }

  bool drop = false;
  apply_faults(pkt, drop);
  if (drop) {
    if (trace_ && trace_->on(sim::TraceCat::kNet)) {
      trace_->log(sim::TraceCat::kNet, eq_.now(), name_,
                  "DROP " + pkt.describe());
    }
    return;
  }

  const sim::Time depart = std::max(eq_.now(), busy_until_);
  const sim::Time ser = serialization_time(wire);
  busy_until_ = depart + ser;
  const sim::Time arrive = busy_until_ + cfg_.propagation;

  ++queued_;
  if (trace_ && trace_->on(sim::TraceCat::kNet)) {
    trace_->log(sim::TraceCat::kNet, eq_.now(), name_,
                "TX " + pkt.describe());
  }
  eq_.schedule_at(arrive, [this, wire, p = std::move(pkt)]() mutable {
    --queued_;
    ++stats_.delivered;
    stats_.delivered_bytes += wire;
    metrics::bump(m_.delivered_bytes, wire);
    dst_->deliver(std::move(p), dst_port_);
  });
}

}  // namespace myri::net
