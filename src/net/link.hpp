// Point-to-point Myrinet link (one direction of a full-duplex cable).
//
// A link serializes packets at a configurable rate (2 Gb/s by default, the
// paper's Myrinet generation), adds propagation delay, and optionally
// injects the transient faults GM must tolerate: drops, bit corruption and
// misroutes. Bounded queueing models backpressure: wormhole flow control is
// approximated by stalling the upstream switch when the queue is full.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/registry.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace myri::net {

/// Receiving side of a link: a switch input port or a NIC packet interface.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// Packet arrival. `in_port` is the receiver-local port the packet came
  /// in on (switches use it for scout route recording).
  virtual void deliver(Packet pkt, std::uint8_t in_port) = 0;
};

struct LinkFaults {
  double drop_prob = 0.0;      // packet silently vanishes
  double corrupt_prob = 0.0;   // one random payload/header bit flips
  double misroute_prob = 0.0;  // first remaining route byte is altered
};

struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t misrouted = 0;
  // Offered load counts every packet handed to the link; delivered load
  // counts only what reached the far end. Dropped and cable-cut packets
  // must never inflate a bandwidth computation, so the two are separate.
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;
};

class Link {
 public:
  struct Config {
    double gbps = 2.0;                     // paper: 2 Gb/s links
    sim::Time propagation = 100;           // ns of cable + switch port delay
    std::size_t max_queued_packets = 32;   // backpressure threshold
  };

  Link(sim::EventQueue& eq, sim::Rng rng, Config cfg, std::string name);

  /// Attach the receiving endpoint; `dst_port` is the endpoint-local port.
  void connect(PacketSink& dst, std::uint8_t dst_port);

  void set_faults(const LinkFaults& f) { faults_ = f; }
  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Publish this link's accounting into `reg` under "link.<name>.*".
  void bind_metrics(metrics::Registry& reg);

  /// Take the link down (unplugged/failed cable): everything sent is lost.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const noexcept { return down_; }

  /// True if the link can accept another packet without exceeding its
  /// queue bound. Upstream devices stall (retry later) when false.
  [[nodiscard]] bool can_accept() const;

  /// Enqueue a packet for transmission. Faults are applied per-packet.
  /// Precondition: connect() has been called.
  void send(Packet pkt);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Time busy_until() const noexcept { return busy_until_; }

  /// Serialization time for `bytes` at the configured rate.
  [[nodiscard]] sim::Time serialization_time(std::size_t bytes) const;

 private:
  void apply_faults(Packet& pkt, bool& drop);

  struct BoundMetrics {
    metrics::Counter* offered_bytes = nullptr;
    metrics::Counter* delivered_bytes = nullptr;
    metrics::Counter* dropped = nullptr;
    metrics::Counter* corrupted = nullptr;
    metrics::Counter* misrouted = nullptr;
  };

  sim::EventQueue& eq_;
  sim::Rng rng_;
  Config cfg_;
  std::string name_;
  PacketSink* dst_ = nullptr;
  std::uint8_t dst_port_ = 0;
  LinkFaults faults_;
  LinkStats stats_;
  sim::Time busy_until_ = 0;
  std::size_t queued_ = 0;
  bool down_ = false;
  sim::Trace* trace_ = nullptr;
  BoundMetrics m_;
};

}  // namespace myri::net
