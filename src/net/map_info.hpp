// Payload carried by mapper scout replies.
//
// When a MAP_SCOUT's route ends at a device, the device answers with a
// MAP_REPLY describing itself, sent back along the reversed walked route.
// This mirrors how the GM mapper discovers Myrinet topologies by probing
// routes and reading back device identities.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace myri::net {

enum class DeviceKind : std::uint8_t { kSwitch = 1, kInterface = 2 };

struct MapReplyInfo {
  DeviceKind kind = DeviceKind::kInterface;
  std::uint16_t id = 0;      // switch id or interface NodeId
  std::uint8_t ports = 1;    // port count (1 for interfaces)
  /// Input ports the scout recorded on its way here; lets the mapper learn
  /// the far end of each cable (switch port <-> switch port).
  std::vector<std::uint8_t> walked;

  [[nodiscard]] std::vector<std::byte> encode() const {
    std::vector<std::byte> out = {
        std::byte{static_cast<unsigned char>(kind)},
        std::byte{static_cast<unsigned char>(id & 0xff)},
        std::byte{static_cast<unsigned char>(id >> 8)},
        std::byte{ports},
        std::byte{static_cast<unsigned char>(walked.size())}};
    for (auto b : walked) out.push_back(std::byte{b});
    return out;
  }

  static MapReplyInfo decode(const std::vector<std::byte>& p) {
    MapReplyInfo info;
    if (p.size() >= 5) {
      info.kind = static_cast<DeviceKind>(p[0]);
      info.id = static_cast<std::uint16_t>(std::to_integer<unsigned>(p[1]) |
                                           std::to_integer<unsigned>(p[2])
                                               << 8);
      info.ports = std::to_integer<std::uint8_t>(p[3]);
      const auto n = std::to_integer<std::size_t>(p[4]);
      for (std::size_t i = 0; i < n && 5 + i < p.size(); ++i) {
        info.walked.push_back(std::to_integer<std::uint8_t>(p[5 + i]));
      }
    }
    return info;
  }
};

/// Route back to the prober: reverse the recorded input ports.
inline std::vector<std::uint8_t> reverse_route(
    const std::vector<std::uint8_t>& walked) {
  return {walked.rbegin(), walked.rend()};
}

/// Route-table entry carried in MAP_ROUTE packets.
struct RouteEntry {
  NodeId dst = kInvalidNode;
  std::vector<std::uint8_t> route;
};

namespace detail {

inline void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(std::byte{static_cast<unsigned char>(v & 0xff)});
  out.push_back(std::byte{static_cast<unsigned char>(v >> 8)});
}

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(std::byte{static_cast<unsigned char>((v >> (8 * i)) & 0xff)});
  }
}

inline std::uint16_t get_u16(const std::vector<std::byte>& p, std::size_t i) {
  return static_cast<std::uint16_t>(std::to_integer<unsigned>(p[i]) |
                                    std::to_integer<unsigned>(p[i + 1]) << 8);
}

inline std::uint32_t get_u32(const std::vector<std::byte>& p, std::size_t i) {
  std::uint32_t v = 0;
  for (int k = 3; k >= 0; --k) {
    v = v << 8 | std::to_integer<std::uint32_t>(p[i + static_cast<unsigned>(k)]);
  }
  return v;
}

}  // namespace detail

/// Sentinel chunk index in a MAP_ROUTE_ACK answering an epoch probe
/// (a MAP_ROUTE with nchunks == 0) rather than a data chunk.
inline constexpr std::uint16_t kProbeChunk = 0xffff;

/// Payload of a MAP_ROUTE packet: one chunk of an epoch-stamped route
/// table push. `nchunks == 0` is an epoch probe: no entries, the receiver
/// just reports (and, if behind, flags) its installed epoch.
struct RouteUpdate {
  std::uint32_t epoch = 0;
  std::uint16_t chunk = 0;    // index of this chunk within the push
  std::uint16_t nchunks = 0;  // total chunks in the push (0 = probe)
  std::vector<RouteEntry> entries;

  [[nodiscard]] std::vector<std::byte> encode() const {
    std::vector<std::byte> out;
    detail::put_u32(out, epoch);
    detail::put_u16(out, chunk);
    detail::put_u16(out, nchunks);
    for (const auto& e : entries) {
      detail::put_u16(out, e.dst);
      out.push_back(std::byte{static_cast<unsigned char>(e.route.size())});
      for (auto b : e.route) out.push_back(std::byte{b});
    }
    return out;
  }

  static RouteUpdate decode(const std::vector<std::byte>& p) {
    RouteUpdate u;
    if (p.size() < 8) return u;
    u.epoch = detail::get_u32(p, 0);
    u.chunk = detail::get_u16(p, 4);
    u.nchunks = detail::get_u16(p, 6);
    std::size_t i = 8;
    while (i + 3 <= p.size()) {
      RouteEntry e;
      e.dst = static_cast<NodeId>(detail::get_u16(p, i));
      const auto len = std::to_integer<std::size_t>(p[i + 2]);
      i += 3;
      if (i + len > p.size()) break;  // truncated/corrupt update: stop
      e.route.reserve(len);
      for (std::size_t k = 0; k < len; ++k) {
        e.route.push_back(std::to_integer<std::uint8_t>(p[i + k]));
      }
      i += len;
      u.entries.push_back(std::move(e));
    }
    return u;
  }
};

/// Payload of a MAP_ROUTE_ACK. `epoch`/`chunk` echo the MAP_ROUTE being
/// acknowledged (kProbeChunk for probes); `installed_epoch` is the last
/// epoch the node holds *completely*. `announce` marks an unsolicited
/// post-recovery epoch announcement (node -> mapper), which the mapper
/// answers with a re-push when the node is behind.
struct RouteAck {
  std::uint32_t epoch = 0;
  std::uint16_t chunk = 0;
  std::uint32_t installed_epoch = 0;
  bool announce = false;

  [[nodiscard]] std::vector<std::byte> encode() const {
    std::vector<std::byte> out;
    detail::put_u32(out, epoch);
    detail::put_u16(out, chunk);
    detail::put_u32(out, installed_epoch);
    out.push_back(std::byte{static_cast<unsigned char>(announce ? 1 : 0)});
    return out;
  }

  static RouteAck decode(const std::vector<std::byte>& p) {
    RouteAck a;
    if (p.size() < 11) return a;
    a.epoch = detail::get_u32(p, 0);
    a.chunk = detail::get_u16(p, 4);
    a.installed_epoch = detail::get_u32(p, 6);
    a.announce = std::to_integer<unsigned>(p[10]) != 0;
    return a;
  }
};

}  // namespace myri::net
