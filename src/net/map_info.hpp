// Payload carried by mapper scout replies.
//
// When a MAP_SCOUT's route ends at a device, the device answers with a
// MAP_REPLY describing itself, sent back along the reversed walked route.
// This mirrors how the GM mapper discovers Myrinet topologies by probing
// routes and reading back device identities.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace myri::net {

enum class DeviceKind : std::uint8_t { kSwitch = 1, kInterface = 2 };

struct MapReplyInfo {
  DeviceKind kind = DeviceKind::kInterface;
  std::uint16_t id = 0;      // switch id or interface NodeId
  std::uint8_t ports = 1;    // port count (1 for interfaces)
  /// Input ports the scout recorded on its way here; lets the mapper learn
  /// the far end of each cable (switch port <-> switch port).
  std::vector<std::uint8_t> walked;

  [[nodiscard]] std::vector<std::byte> encode() const {
    std::vector<std::byte> out = {
        std::byte{static_cast<unsigned char>(kind)},
        std::byte{static_cast<unsigned char>(id & 0xff)},
        std::byte{static_cast<unsigned char>(id >> 8)},
        std::byte{ports},
        std::byte{static_cast<unsigned char>(walked.size())}};
    for (auto b : walked) out.push_back(std::byte{b});
    return out;
  }

  static MapReplyInfo decode(const std::vector<std::byte>& p) {
    MapReplyInfo info;
    if (p.size() >= 5) {
      info.kind = static_cast<DeviceKind>(p[0]);
      info.id = static_cast<std::uint16_t>(std::to_integer<unsigned>(p[1]) |
                                           std::to_integer<unsigned>(p[2])
                                               << 8);
      info.ports = std::to_integer<std::uint8_t>(p[3]);
      const auto n = std::to_integer<std::size_t>(p[4]);
      for (std::size_t i = 0; i < n && 5 + i < p.size(); ++i) {
        info.walked.push_back(std::to_integer<std::uint8_t>(p[5 + i]));
      }
    }
    return info;
  }
};

/// Route back to the prober: reverse the recorded input ports.
inline std::vector<std::uint8_t> reverse_route(
    const std::vector<std::uint8_t>& walked) {
  return {walked.rbegin(), walked.rend()};
}

/// Route-table entry carried in MAP_ROUTE packets.
struct RouteEntry {
  NodeId dst = kInvalidNode;
  std::vector<std::uint8_t> route;
};

/// Encode route-table entries for distribution: [u16 dst][u8 len][bytes]*.
inline std::vector<std::byte> encode_route_update(
    const std::vector<RouteEntry>& entries) {
  std::vector<std::byte> out;
  for (const auto& e : entries) {
    out.push_back(std::byte{static_cast<unsigned char>(e.dst & 0xff)});
    out.push_back(std::byte{static_cast<unsigned char>(e.dst >> 8)});
    out.push_back(std::byte{static_cast<unsigned char>(e.route.size())});
    for (auto b : e.route) out.push_back(std::byte{b});
  }
  return out;
}

inline std::vector<RouteEntry> decode_route_update(
    const std::vector<std::byte>& p) {
  std::vector<RouteEntry> out;
  std::size_t i = 0;
  while (i + 3 <= p.size()) {
    RouteEntry e;
    e.dst = static_cast<NodeId>(std::to_integer<unsigned>(p[i]) |
                                std::to_integer<unsigned>(p[i + 1]) << 8);
    const auto len = std::to_integer<std::size_t>(p[i + 2]);
    i += 3;
    if (i + len > p.size()) break;  // truncated/corrupt update: stop
    e.route.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      e.route.push_back(std::to_integer<std::uint8_t>(p[i + k]));
    }
    i += len;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace myri::net
