#include "net/packet.hpp"

#include <array>
#include <sstream>

namespace myri::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
    case PacketType::kNack: return "NACK";
    case PacketType::kGetReq: return "GET_REQ";
    case PacketType::kMapScout: return "MAP_SCOUT";
    case PacketType::kMapReply: return "MAP_REPLY";
    case PacketType::kMapRoute: return "MAP_ROUTE";
    case PacketType::kMapRouteAck: return "MAP_ROUTE_ACK";
    case PacketType::kControl: return "CONTROL";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  std::uint32_t c = seed;
  const auto& t = crc_table();
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t Packet::compute_crc() const {
  // Serialize header fields into a flat buffer, then fold in the payload.
  std::array<std::uint32_t, 12> hdr = {
      static_cast<std::uint32_t>(type),
      static_cast<std::uint32_t>(src) << 16 | dst,
      static_cast<std::uint32_t>(src_port) << 16 | dst_port,
      priority,
      stream,
      seq,
      ack_seq,
      msg_id,
      msg_len,
      frag_offset,
      (directed ? 1u : 0u) | (notify ? 2u : 0u),
      target_vaddr,
  };
  std::uint32_t c = 0xffffffffu;
  const auto& t = crc_table();
  auto fold = [&](const std::uint8_t* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  };
  fold(reinterpret_cast<const std::uint8_t*>(hdr.data()),
       hdr.size() * sizeof(std::uint32_t));
  fold(reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
  return c ^ 0xffffffffu;
}

std::size_t Packet::wire_size() const {
  // Myrinet framing: route bytes + 16-byte GM header + payload + 4-byte CRC.
  constexpr std::size_t kHeaderBytes = 16;
  constexpr std::size_t kCrcBytes = 4;
  return route.size() + kHeaderBytes + payload.size() + kCrcBytes;
}

std::string Packet::describe() const {
  std::ostringstream os;
  os << to_string(type) << " " << src << ":" << int(src_port) << "->" << dst
     << ":" << int(dst_port) << " stream=" << stream << " seq=" << seq;
  if (type == PacketType::kAck || type == PacketType::kNack) {
    os << " ack_seq=" << ack_seq;
  }
  os << " len=" << payload.size();
  return os.str();
}

}  // namespace myri::net
