// Myrinet-style packets.
//
// A packet carries a source route (one output-port byte consumed per switch
// hop), a GM protocol header, a payload, and a CRC covering both. Links can
// corrupt payload/header bits without fixing the CRC, which is how receivers
// detect damage, exactly as GM's MCP does on real hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace myri::net {

/// Cluster-wide interface (node) identifier, assigned by the mapper.
using NodeId = std::uint16_t;

inline constexpr NodeId kInvalidNode = 0xffff;

/// GM fragments messages into packets of at most 4 KB (paper, Section 5.1).
inline constexpr std::uint32_t kMaxPacketPayload = 4096;

enum class PacketType : std::uint8_t {
  kData,      // message fragment
  kAck,       // cumulative acknowledgement for a stream
  kNack,      // negative ack carrying the expected sequence number
  kGetReq,    // gm_get: fetch from remote registered memory
  kMapScout,  // mapper topology probe
  kMapReply,  // mapper probe answer (carries reversed route)
  kMapRoute,  // mapper route-table distribution (epoch-stamped)
  kMapRouteAck,  // per-node acknowledgement of a MAP_ROUTE chunk/probe
  kControl,   // misc control (port open notifications etc.)
};

const char* to_string(PacketType t);

struct Packet {
  // --- routing ---
  std::vector<std::uint8_t> route;  // remaining hops: output port per switch
  std::vector<std::uint8_t> walked; // input ports recorded per hop (scouts)

  // --- protocol header ---
  PacketType type = PacketType::kData;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint8_t src_port = 0;   // GM port (0..7) on the sender
  std::uint8_t dst_port = 0;   // GM port (0..7) on the receiver
  std::uint8_t priority = 0;   // 0 = low, 1 = high
  std::uint32_t stream = 0;    // sequence-number stream id (see mcp/stream.hpp)
  std::uint32_t seq = 0;       // Go-Back-N sequence number (kData)
  std::uint32_t ack_seq = 0;   // cumulative ack / expected seq (kAck, kNack)
  std::uint32_t msg_id = 0;    // sender-local message id (reassembly)
  std::uint32_t msg_len = 0;   // total message length in bytes
  std::uint32_t frag_offset = 0;  // payload offset of this fragment

  /// GM directed send (RDMA put): the payload lands at target_vaddr in the
  /// receiving process's registered memory, consuming no receive token.
  bool directed = false;
  std::uint32_t target_vaddr = 0;
  /// Directed send with completion notification at the RECEIVER (carries a
  /// gm_get response: the requester gets a GOT event when it lands).
  bool notify = false;

  std::vector<std::byte> payload;

  std::uint32_t crc = 0;

  /// CRC over the protocol header and payload (route excluded: it is
  /// consumed in flight, as in Myrinet's per-hop route stripping).
  [[nodiscard]] std::uint32_t compute_crc() const;

  /// Stamp crc from current contents. Call after filling in all fields.
  void seal() { crc = compute_crc(); }

  /// True if the CRC still matches (no in-flight corruption).
  [[nodiscard]] bool intact() const { return crc == compute_crc(); }

  /// Bytes serialized on the wire: route + header + payload + CRC.
  [[nodiscard]] std::size_t wire_size() const;

  /// Short human-readable description for traces.
  [[nodiscard]] std::string describe() const;
};

/// Standard CRC-32 (IEEE 802.3 polynomial), table-driven.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0xffffffffu);

}  // namespace myri::net
