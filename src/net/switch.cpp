#include "net/switch.hpp"

#include "net/map_info.hpp"

namespace myri::net {

Switch::Switch(sim::EventQueue& eq, std::uint16_t id, std::uint8_t num_ports,
               Config cfg, std::string name)
    : eq_(eq),
      id_(id),
      num_ports_(num_ports),
      cfg_(cfg),
      name_(std::move(name)),
      out_(num_ports, nullptr) {}

void Switch::connect(std::uint8_t port, Link& out) { out_.at(port) = &out; }

void Switch::bind_metrics(metrics::Registry& reg) {
  const std::string p = "switch." + name_ + '.';
  m_.forwarded = &reg.counter(p + "forwarded");
  m_.dead_routed = &reg.counter(p + "dead_routed");
  m_.backpressure_stalls = &reg.counter(p + "backpressure_stalls");
}

void Switch::deliver(Packet pkt, std::uint8_t in_port) {
  if (pkt.type == PacketType::kMapScout) {
    pkt.walked.push_back(in_port);
    if (pkt.route.empty()) {
      answer_scout(pkt, in_port);
      return;
    }
  } else if (pkt.type == PacketType::kMapRoute) {
    // Route pushes record their walked input ports like scouts do, so the
    // receiving card can MAP_ROUTE_ACK along the reversed path even while
    // its own route table is stale or empty.
    pkt.walked.push_back(in_port);
    if (pkt.route.empty()) {
      ++stats_.dead_routed;
      metrics::bump(m_.dead_routed);
      return;
    }
  } else if (pkt.route.empty()) {
    // A data packet whose route ends at a switch is undeliverable: this is
    // what a misroute fault usually produces. The wormhole just kills it.
    ++stats_.dead_routed;
    metrics::bump(m_.dead_routed);
    if (trace_ && trace_->on(sim::TraceCat::kNet)) {
      trace_->log(sim::TraceCat::kNet, eq_.now(), name_,
                  "DEAD (route exhausted) " + pkt.describe());
    }
    return;
  }

  const std::uint8_t out_port = pkt.route.front();
  pkt.route.erase(pkt.route.begin());
  if (out_port >= num_ports_ || out_[out_port] == nullptr) {
    ++stats_.dead_routed;
    metrics::bump(m_.dead_routed);
    if (trace_ && trace_->on(sim::TraceCat::kNet)) {
      trace_->log(sim::TraceCat::kNet, eq_.now(), name_,
                  "DEAD (bad port " + std::to_string(out_port) + ") " +
                      pkt.describe());
    }
    return;
  }
  eq_.schedule_after(cfg_.routing_latency,
                     [this, p = std::move(pkt), out_port]() mutable {
                       forward(std::move(p), out_port, 0);
                     });
}

void Switch::forward(Packet pkt, std::uint8_t out_port, unsigned attempts) {
  Link& link = *out_[out_port];
  if (!link.can_accept()) {
    // Backpressure: the downstream queue is full; stall and retry, like a
    // blocked wormhole. Give up after a bounded time so a wedged receiver
    // cannot leak packets forever (they become drops, which Go-Back-N heals).
    constexpr unsigned kMaxAttempts = 500;
    if (attempts >= kMaxAttempts) {
      ++stats_.dead_routed;
      metrics::bump(m_.dead_routed);
      return;
    }
    ++stats_.stalled;
    metrics::bump(m_.backpressure_stalls);
    eq_.schedule_after(cfg_.stall_retry,
                       [this, p = std::move(pkt), out_port, attempts]() mutable {
                         forward(std::move(p), out_port, attempts + 1);
                       });
    return;
  }
  ++stats_.forwarded;
  metrics::bump(m_.forwarded);
  link.send(std::move(pkt));
}

void Switch::answer_scout(const Packet& scout, std::uint8_t in_port) {
  Link* back = out_[in_port];
  if (back == nullptr) return;
  ++stats_.scouts_answered;

  Packet reply;
  reply.type = PacketType::kMapReply;
  reply.src = kInvalidNode;
  reply.dst = scout.src;
  reply.msg_id = scout.msg_id;  // scout correlation id, echoed back
  // The walked list includes our own in_port (pushed by deliver); the
  // reverse of it routes the reply back to the prober. Our own entry is the
  // first reverse hop, consumed by us... except we *are* the sender, so we
  // drop it and transmit on that port directly.
  std::vector<std::uint8_t> rev = reverse_route(scout.walked);
  rev.erase(rev.begin());
  reply.route = std::move(rev);
  reply.payload =
      MapReplyInfo{DeviceKind::kSwitch, id_, num_ports_, scout.walked}
          .encode();
  reply.seal();
  back->send(std::move(reply));
}

}  // namespace myri::net
