// Source-routed Myrinet switch.
//
// Each arriving packet's first route byte selects the output port and is
// consumed (route stripping). Routing latency models the crossbar setup of
// a cut-through switch; backpressure is modelled by retrying when the
// selected output link's bounded queue is full. A scout whose route is
// exhausted at this switch is answered with the switch's identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace myri::net {

struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t dead_routed = 0;   // bad route byte / unconnected port
  std::uint64_t stalled = 0;       // backpressure retries
  std::uint64_t scouts_answered = 0;
};

class Switch : public PacketSink {
 public:
  struct Config {
    sim::Time routing_latency = 50;   // ns per hop (crossbar + arbitration)
    sim::Time stall_retry = 200;      // ns between backpressure retries
  };

  Switch(sim::EventQueue& eq, std::uint16_t id, std::uint8_t num_ports,
         Config cfg, std::string name);

  /// Attach the outgoing half-link on `port`.
  void connect(std::uint8_t port, Link& out);

  void deliver(Packet pkt, std::uint8_t in_port) override;

  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Publish this switch's accounting into `reg` under "switch.<name>.*".
  void bind_metrics(metrics::Registry& reg);

  [[nodiscard]] std::uint16_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint8_t num_ports() const noexcept { return num_ports_; }
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  void forward(Packet pkt, std::uint8_t out_port, unsigned attempts);
  void answer_scout(const Packet& scout, std::uint8_t in_port);

  struct BoundMetrics {
    metrics::Counter* forwarded = nullptr;
    metrics::Counter* dead_routed = nullptr;
    metrics::Counter* backpressure_stalls = nullptr;
  };

  sim::EventQueue& eq_;
  std::uint16_t id_;
  std::uint8_t num_ports_;
  Config cfg_;
  std::string name_;
  std::vector<Link*> out_;   // indexed by port; nullptr if unconnected
  SwitchStats stats_;
  sim::Trace* trace_ = nullptr;
  BoundMetrics m_;
};

}  // namespace myri::net
