#include "net/topology.hpp"

namespace myri::net {

Topology::Topology(sim::EventQueue& eq, sim::Rng& rng, Link::Config link_cfg,
                   Switch::Config switch_cfg)
    : eq_(eq), rng_(rng), link_cfg_(link_cfg), switch_cfg_(switch_cfg) {}

std::uint16_t Topology::add_switch(std::uint8_t ports, std::string name) {
  const auto id = static_cast<std::uint16_t>(switches_.size());
  if (name.empty()) name = "sw" + std::to_string(id);
  switches_.push_back(
      std::make_unique<Switch>(eq_, id, ports, switch_cfg_, std::move(name)));
  switches_.back()->set_trace(trace_);
  if (metrics_ != nullptr) switches_.back()->bind_metrics(*metrics_);
  return id;
}

Link& Topology::new_link(std::string name) {
  links_.push_back(std::make_unique<Link>(eq_, rng_.fork(links_.size() + 1),
                                          link_cfg_, std::move(name)));
  links_.back()->set_trace(trace_);
  if (metrics_ != nullptr) links_.back()->bind_metrics(*metrics_);
  return *links_.back();
}

Topology::CableId Topology::connect_switches(std::uint16_t a,
                                             std::uint8_t port_a,
                                             std::uint16_t b,
                                             std::uint8_t port_b) {
  Switch& sa = *switches_.at(a);
  Switch& sb = *switches_.at(b);
  Link& ab = new_link(sa.name() + "." + std::to_string(port_a) + "->" +
                      sb.name());
  Link& ba = new_link(sb.name() + "." + std::to_string(port_b) + "->" +
                      sa.name());
  ab.connect(sb, port_b);
  ba.connect(sa, port_a);
  sa.connect(port_a, ab);
  sb.connect(port_b, ba);
  cables_.push_back({&ab, &ba});
  return cables_.size() - 1;
}

void Topology::set_cable_down(CableId cable, bool down) {
  auto [ab, ba] = cables_.at(cable);
  const bool was_down = ab->is_down();
  ab->set_down(down);
  ba->set_down(down);
  if (down != was_down && cable_listener_) cable_listener_(cable, down);
}

Link& Topology::attach_endpoint(PacketSink& sink, std::uint16_t sw,
                                std::uint8_t port, std::string name) {
  Switch& s = *switches_.at(sw);
  Link& up = new_link(name + "->" + s.name());     // endpoint transmits here
  Link& down = new_link(s.name() + "->" + name);   // endpoint receives here
  up.connect(s, port);
  down.connect(sink, 0);
  s.connect(port, down);
  endpoints_[(static_cast<std::uint32_t>(sw) << 8) | port] = {&up, &down};
  return up;
}

void Topology::set_endpoint_down(std::uint16_t sw, std::uint8_t port,
                                 bool down) {
  auto [up, dn] =
      endpoints_.at((static_cast<std::uint32_t>(sw) << 8) | port);
  up->set_down(down);
  dn->set_down(down);
}

Link& Topology::reattach_endpoint(PacketSink& sink, std::uint16_t sw,
                                  std::uint8_t port, std::string name) {
  const std::uint32_t key = (static_cast<std::uint32_t>(sw) << 8) | port;
  if (auto it = endpoints_.find(key); it != endpoints_.end()) {
    it->second.first->set_down(true);
    it->second.second->set_down(true);
  }
  // attach_endpoint re-points the switch port's egress at the new down
  // link and overwrites the registry entry.
  return attach_endpoint(sink, sw, port, std::move(name));
}

void Topology::set_all_faults(const LinkFaults& f) {
  for (auto& l : links_) l->set_faults(f);
}

void Topology::set_endpoint_faults(std::uint16_t sw, std::uint8_t port,
                                   const LinkFaults& f) {
  auto [up, dn] =
      endpoints_.at((static_cast<std::uint32_t>(sw) << 8) | port);
  up->set_faults(f);
  dn->set_faults(f);
}

void Topology::set_trace(sim::Trace* t) {
  trace_ = t;
  for (auto& l : links_) l->set_trace(t);
  for (auto& s : switches_) s->set_trace(t);
}

void Topology::bind_metrics(metrics::Registry& reg) {
  metrics_ = &reg;
  for (auto& l : links_) l->bind_metrics(reg);
  for (auto& s : switches_) s->bind_metrics(reg);
}

std::vector<Link*> Topology::links() {
  std::vector<Link*> out;
  out.reserve(links_.size());
  for (auto& l : links_) out.push_back(l.get());
  return out;
}

}  // namespace myri::net
