// Fabric construction: owns switches and links, wires full-duplex cables.
//
// A physical Myrinet cable is full duplex; we model it as two unidirectional
// Links. Endpoints (NIC packet interfaces) attach with exactly one port.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace myri::net {

class Topology {
 public:
  Topology(sim::EventQueue& eq, sim::Rng& rng, Link::Config link_cfg = {},
           Switch::Config switch_cfg = {});

  /// Create a switch with `ports` ports; returns its switch id.
  std::uint16_t add_switch(std::uint8_t ports, std::string name = "");

  /// Full-duplex cable identifier (for failure injection).
  using CableId = std::size_t;

  /// Cable between two switch ports (both directions).
  CableId connect_switches(std::uint16_t a, std::uint8_t port_a,
                           std::uint16_t b, std::uint8_t port_b);

  /// Fail / restore a cable: both directions drop everything while down.
  /// The mapper's next run routes around it (paper Section 2: the GM
  /// mapper reconfigures when links or nodes appear or disappear).
  void set_cable_down(CableId cable, bool down);

  /// Observer for cable state changes. mapper::FailoverManager registers
  /// here to trigger a remap whenever a cable dies or heals; only state
  /// transitions are reported. One listener at a time (last wins).
  using CableListener = std::function<void(CableId, bool down)>;
  void set_cable_listener(CableListener l) { cable_listener_ = std::move(l); }

  [[nodiscard]] std::size_t num_cables() const noexcept {
    return cables_.size();
  }
  [[nodiscard]] bool cable_is_down(CableId cable) const {
    return cables_.at(cable).first->is_down();
  }

  /// Cable between an endpoint and a switch port. Returns the Link the
  /// endpoint transmits on (endpoint -> switch); arriving packets are
  /// delivered to `sink` with in_port = 0.
  Link& attach_endpoint(PacketSink& sink, std::uint16_t sw, std::uint8_t port,
                        std::string name);

  /// Unplug / replug an endpoint cable (both directions). A retired node
  /// is unplugged so discovery and census can never re-find it.
  void set_endpoint_down(std::uint16_t sw, std::uint8_t port, bool down);

  /// Re-point an endpoint switch port at a replacement endpoint (spare
  /// NIC on a dead card's cable). The old endpoint's links are taken down
  /// permanently — a later recovery of the old card transmits into an
  /// unplugged cable. Returns the spare's transmit link.
  Link& reattach_endpoint(PacketSink& sink, std::uint16_t sw,
                          std::uint8_t port, std::string name);

  /// Apply a fault profile to every link (typical for error-rate sweeps).
  void set_all_faults(const LinkFaults& f);

  /// Apply a fault profile to one endpoint cable only (hot-added cables
  /// get the cluster's base profile without stomping an active
  /// set_all_faults fault window on the rest of the fabric).
  void set_endpoint_faults(std::uint16_t sw, std::uint8_t port,
                           const LinkFaults& f);

  void set_trace(sim::Trace* t);

  /// Publish every link's and switch's accounting into `reg`; devices
  /// added later bind on creation.
  void bind_metrics(metrics::Registry& reg);

  [[nodiscard]] Switch& get_switch(std::uint16_t id) {
    return *switches_.at(id);
  }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }
  [[nodiscard]] std::vector<Link*> links();

 private:
  Link& new_link(std::string name);

  sim::EventQueue& eq_;
  sim::Rng& rng_;
  Link::Config link_cfg_;
  Switch::Config switch_cfg_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::pair<Link*, Link*>> cables_;  // switch-to-switch pairs
  // Endpoint cable pairs (up, down) keyed by (sw << 8) | port, so hot
  // membership ops can unplug or re-point a specific switch port.
  std::map<std::uint32_t, std::pair<Link*, Link*>> endpoints_;
  CableListener cable_listener_;
  sim::Trace* trace_ = nullptr;
  metrics::Registry* metrics_ = nullptr;
};

}  // namespace myri::net
