// Move-only callable wrapper with inline storage.
//
// The event queue stores one callback per scheduled event. With
// std::function every Link/Switch hop heap-allocates its closure (a
// captured Packet alone is 128 bytes, past any SBO), which at 512-node
// scale dominates the simulator's profile. InlineCallback keeps closures
// up to `Capacity` bytes inside the pooled event slab entry itself; only
// oversized or throwing-move callables fall back to the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace myri::sim {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVt<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVt<Fn>;
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { steal(o); }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when a callable of type Fn lives in the inline buffer rather
  /// than behind a heap pointer (exposed for tests/bench assertions).
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct dst from src, then destroy src's callable.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static constexpr VTable kInlineVt = {
      [](void* p) { (*as<Fn>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*as<Fn>(src)));
        as<Fn>(src)->~Fn();
      },
      [](void* p) { as<Fn>(p)->~Fn(); },
  };

  // Heap fallback stores a raw Fn* in the buffer; the pointer itself is
  // trivially destructible, so relocation is a plain pointer copy.
  template <typename Fn>
  static constexpr VTable kHeapVt = {
      [](void* p) { (**as<Fn*>(p))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(*as<Fn*>(src)); },
      [](void* p) { delete *as<Fn*>(p); },
  };

  void steal(InlineCallback& o) noexcept {
    if (o.vt_ != nullptr) {
      o.vt_->relocate(buf_, o.buf_);
      vt_ = o.vt_;
      o.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace myri::sim
