#include "sim/event_queue.hpp"

#include <algorithm>

namespace myri::sim {

// ---- event slab ----------------------------------------------------------
//
// Every scheduled event occupies one pooled Entry; the closure is stored
// inline (InlineCallback), so the steady-state hot path does zero heap
// allocation. Slots are recycled through a free list; each reuse bumps the
// slot's generation so outstanding Handles (and any queue item referencing
// the old incarnation) go inert instead of touching the new occupant. The
// slab is shared_ptr-owned by the queue and weak_ptr-referenced by Handles,
// which makes a Handle outliving its queue a safe no-op.

struct EventQueue::Slab {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  enum class State : std::uint8_t { kFree, kPending, kCancelled };

  struct Entry {
    Time at = 0;
    std::uint64_t seq = 0;
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNone;
    State state = State::kFree;
  };

  std::vector<Entry> pool;
  std::uint32_t free_head = kNone;
  std::size_t live = 0;       // pending (non-cancelled) events
  std::size_t cancelled = 0;  // cancelled entries not yet reclaimed
};

void EventQueue::Handle::cancel() {
  auto s = slab_.lock();
  if (!s || slot_ >= s->pool.size()) return;
  Slab::Entry& e = s->pool[slot_];
  if (e.gen != gen_ || e.state != Slab::State::kPending) return;
  e.state = Slab::State::kCancelled;
  e.cb = nullptr;  // release captured resources eagerly
  --s->live;
  ++s->cancelled;
}

bool EventQueue::Handle::pending() const {
  auto s = slab_.lock();
  if (!s || slot_ >= s->pool.size()) return false;
  const Slab::Entry& e = s->pool[slot_];
  return e.gen == gen_ && e.state == Slab::State::kPending;
}

namespace {

// "Later" ordering on (at, seq). Used three ways: sorting a bucket
// descending (so it drains ascending from the back), as the comparator
// that makes std::push_heap a min-heap, and for the sorted insert into
// the currently-draining bucket.
constexpr auto kLater = [](const auto& a, const auto& b) {
  if (a.at != b.at) return a.at > b.at;
  return a.seq > b.seq;
};

// Compaction triggers once at least this many cancelled entries have
// accumulated AND they outnumber the live events.
constexpr std::size_t kCompactMin = 1024;

}  // namespace

EventQueue::EventQueue()
    : slab_(std::make_shared<Slab>()), buckets_(kBucketCount) {
  slab_->pool.reserve(1024);
}

EventQueue::~EventQueue() = default;

bool EventQueue::empty() const noexcept { return slab_->live == 0; }

std::size_t EventQueue::pending_events() const noexcept {
  return slab_->live;
}

std::size_t EventQueue::cancelled_pending() const noexcept {
  return slab_->cancelled;
}

std::uint32_t EventQueue::alloc_slot() {
  Slab& s = *slab_;
  if (s.free_head != Slab::kNone) {
    const std::uint32_t slot = s.free_head;
    s.free_head = s.pool[slot].next_free;
    return slot;
  }
  s.pool.emplace_back();
  return static_cast<std::uint32_t>(s.pool.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slab& s = *slab_;
  Slab::Entry& e = s.pool[slot];
  ++e.gen;  // outstanding handles and queue items go stale
  e.state = Slab::State::kFree;
  e.cb = nullptr;
  e.next_free = s.free_head;
  s.free_head = slot;
}

EventQueue::Handle EventQueue::schedule_at(Time at, Callback cb) {
  at = std::max(at, now_);
  const std::uint32_t slot = alloc_slot();
  Slab::Entry& e = slab_->pool[slot];
  e.at = at;
  e.seq = next_seq_++;
  e.cb = std::move(cb);
  e.state = Slab::State::kPending;
  ++slab_->live;
  const Handle h(slab_, slot, e.gen);
  place_item(Item{at, e.seq, slot, e.gen});
  maybe_compact();
  return h;
}

void EventQueue::place_item(const Item& it) {
  // Invariant: every pending event satisfies bucket_of(at) >= cur_bn_
  // (schedule_at clamps to now_, and the cursor never passes the bucket
  // of the current clock). Within the ring window each absolute bucket
  // number maps to a distinct slot, so a bucket only ever mixes events
  // of one bucket number.
  const std::uint64_t bn = bucket_of(it.at);
  if (bn < cur_bn_ + kBucketCount) {
    auto& b = buckets_[bn & kBucketMask];
    if (cur_sorted_ && bn == cur_bn_) {
      // The current bucket drains ascending from the back; keep it
      // sorted descending on insert so a callback scheduling at `now`
      // still fires in FIFO order behind its equal-timestamp peers.
      b.insert(std::lower_bound(b.begin(), b.end(), it, kLater), it);
    } else {
      b.push_back(it);
    }
    ++ring_items_;
  } else {
    overflow_.push_back(it);
    std::push_heap(overflow_.begin(), overflow_.end(), kLater);
  }
}

bool EventQueue::advance_to_next(bool bounded, Time limit) {
  const std::uint64_t limit_bn = bucket_of(limit);
  for (;;) {
    auto& b = buckets_[cur_bn_ & kBucketMask];
    if (!b.empty()) {
      if (!cur_sorted_) {
        std::sort(b.begin(), b.end(), kLater);
        cur_sorted_ = true;
      }
      return true;
    }
    cur_sorted_ = false;
    if (ring_items_ == 0) {
      if (overflow_.empty()) return false;
      // Rebase: jump the cursor straight to the earliest overflow event
      // instead of scanning the empty gap bucket by bucket.
      const std::uint64_t target = bucket_of(overflow_.front().at);
      if (bounded && target > limit_bn) return false;
      cur_bn_ = target;
    } else {
      // In bounded mode never move the cursor past the limit's bucket;
      // that keeps cur_bn_ <= bucket_of(now_) after run_until returns,
      // which place_item's window bijectivity depends on.
      if (bounded && cur_bn_ >= limit_bn) return false;
      ++cur_bn_;
    }
    // Migrate overflow events that fell inside the new horizon. Doing
    // this on every cursor move keeps the overflow strictly later than
    // everything in the ring.
    while (!overflow_.empty() &&
           bucket_of(overflow_.front().at) < cur_bn_ + kBucketCount) {
      std::pop_heap(overflow_.begin(), overflow_.end(), kLater);
      const Item mig = overflow_.back();
      overflow_.pop_back();
      buckets_[bucket_of(mig.at) & kBucketMask].push_back(mig);
      ++ring_items_;
    }
  }
}

bool EventQueue::pop_and_run(bool bounded, Time limit) {
  Slab& s = *slab_;
  while (s.live > 0) {
    if (!advance_to_next(bounded, limit)) return false;
    auto& b = buckets_[cur_bn_ & kBucketMask];
    const Item it = b.back();
    Slab::Entry* e = &s.pool[it.slot];
    if (e->gen != it.gen) {  // slot recycled since: stale item
      b.pop_back();
      --ring_items_;
      continue;
    }
    if (e->state == Slab::State::kCancelled) {
      b.pop_back();
      --ring_items_;
      --s.cancelled;
      free_slot(it.slot);
      continue;
    }
    if (bounded && it.at > limit) return false;
    b.pop_back();
    --ring_items_;
    now_ = it.at;
    Callback cb = std::move(e->cb);
    --s.live;
    ++executed_;
    free_slot(it.slot);
    e = nullptr;  // pool may reallocate once user code runs
    // Run after the entry leaves the queue so the callback may schedule
    // or cancel freely, including rescheduling itself.
    cb();
    if (after_event_) after_event_(now_);
    return true;
  }
  reclaim_all();
  return false;
}

bool EventQueue::step() {
  if (slab_->live == 0) {
    reclaim_all();
    return false;
  }
  return pop_and_run(false, 0);
}

std::size_t EventQueue::run_until(Time t) {
  std::size_t n = 0;
  while (pop_and_run(true, t)) ++n;
  now_ = std::max(now_, t);
  return n;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void EventQueue::reclaim_all() {
  // No live events remain: every gen-matching entry still queued is
  // cancelled. Drop them all and rewind the cursor to the clock.
  if (ring_items_ != 0 || !overflow_.empty()) {
    Slab& s = *slab_;
    const auto drop = [&](const Item& it) {
      const Slab::Entry& e = s.pool[it.slot];
      if (e.gen == it.gen && e.state == Slab::State::kCancelled) {
        --s.cancelled;
        free_slot(it.slot);
      }
    };
    for (auto& b : buckets_) {
      for (const Item& it : b) drop(it);
      b.clear();
    }
    for (const Item& it : overflow_) drop(it);
    overflow_.clear();
    ring_items_ = 0;
  }
  cur_sorted_ = false;
  cur_bn_ = bucket_of(now_);
}

void EventQueue::maybe_compact() {
  Slab& s = *slab_;
  if (s.cancelled < kCompactMin || s.cancelled < s.live) return;
  // Long-horizon soaks cancel retry timers far faster than the clock
  // reaches them; sweep the dead entries out so queue memory tracks the
  // live population instead of the cancellation history.
  ++compactions_;
  const auto dead = [&](const Item& it) {
    Slab::Entry& e = s.pool[it.slot];
    if (e.gen != it.gen) return true;
    if (e.state == Slab::State::kCancelled) {
      --s.cancelled;
      free_slot(it.slot);
      return true;
    }
    return false;
  };
  std::size_t kept = 0;
  for (auto& b : buckets_) {
    // remove_if preserves the relative order of survivors, so a sorted
    // current bucket stays sorted and FIFO order is unaffected.
    b.erase(std::remove_if(b.begin(), b.end(), dead), b.end());
    kept += b.size();
  }
  ring_items_ = kept;
  overflow_.erase(std::remove_if(overflow_.begin(), overflow_.end(), dead),
                  overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), kLater);
}

}  // namespace myri::sim
