#include "sim/event_queue.hpp"

#include <algorithm>

namespace myri::sim {

struct EventQueue::Handle::Entry {
  Time at = 0;
  std::uint64_t seq = 0;
  Callback cb;
  bool cancelled = false;
  bool fired = false;
  std::size_t* live_counter = nullptr;  // owner's live-event count
};

void EventQueue::Handle::cancel() {
  if (auto e = entry_.lock()) {
    if (!e->fired && !e->cancelled) {
      e->cancelled = true;
      e->cb = nullptr;  // release captured resources eagerly
      if (e->live_counter != nullptr) --*e->live_counter;
    }
  }
}

bool EventQueue::Handle::pending() const {
  auto e = entry_.lock();
  return e && !e->fired && !e->cancelled;
}

namespace {
// Min-heap on (time, seq): std::push_heap builds a max-heap, so invert.
bool later(const std::shared_ptr<EventQueue::Handle::Entry>& a,
           const std::shared_ptr<EventQueue::Handle::Entry>& b) {
  if (a->at != b->at) return a->at > b->at;
  return a->seq > b->seq;
}
}  // namespace

EventQueue::Handle EventQueue::schedule_at(Time at, Callback cb) {
  auto e = std::make_shared<Handle::Entry>();
  e->at = std::max(at, now_);
  e->seq = next_seq_++;
  e->cb = std::move(cb);
  e->live_counter = &live_;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return Handle(e);
}

bool EventQueue::pop_and_run() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    auto e = std::move(heap_.back());
    heap_.pop_back();
    if (e->cancelled) continue;
    now_ = e->at;
    e->fired = true;
    --live_;
    ++executed_;
    // Run after the entry leaves the heap so the callback may schedule
    // or cancel freely, including rescheduling itself.
    Callback cb = std::move(e->cb);
    cb();
    if (after_event_) after_event_(now_);
    return true;
  }
  return false;
}

bool EventQueue::step() {
  // Drop leading cancelled entries lazily; live_ tracks real work.
  if (live_ == 0) {
    heap_.clear();
    return false;
  }
  return pop_and_run();
}

std::size_t EventQueue::run_until(Time t) {
  std::size_t n = 0;
  while (live_ > 0) {
    // Peek: skim cancelled heads first.
    while (!heap_.empty() && heap_.front()->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
    }
    if (heap_.empty() || heap_.front()->at > t) break;
    if (pop_and_run()) ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace myri::sim
