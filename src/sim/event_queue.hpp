// Discrete-event simulation kernel.
//
// A single EventQueue drives the whole simulated cluster: hosts, NICs,
// switches and daemons all schedule closures against one virtual clock.
// Events at equal timestamps run in FIFO scheduling order, which keeps every
// experiment fully deterministic for a given seed.
//
// Internally the queue is a calendar queue: a ring of fixed-width time
// buckets plus a min-heap overflow for events beyond the ring's horizon,
// with all event entries pooled in a slab allocator (closures live inline
// in the slab via InlineCallback — no per-event heap allocation on the hot
// path). The execution order is defined purely by the (timestamp, sequence)
// pair, identical to the classic binary-heap implementation this replaced,
// so golden traces and chaos digests are bit-stable across the designs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace myri::sim {

class EventQueue {
 public:
  /// Sized so the common Link/Switch hop closures (capturing a 128-byte
  /// Packet plus a pointer and a port) stay inline in the event slab.
  using Callback = InlineCallback<152>;

  struct Slab;  // event entry pool, defined in event_queue.cpp

  /// Cancellation handle for a scheduled event. Copyable; outliving the
  /// queue or the event firing is safe (cancel becomes a no-op). The
  /// handle addresses a pooled slot by (index, generation): once the
  /// event fires or is cancelled the slot's generation moves on and the
  /// handle goes inert.
  class Handle {
   public:
    Handle() = default;

    /// Prevent the event from firing. No-op if already fired or cancelled.
    void cancel();

    /// True if the event is still waiting to fire.
    [[nodiscard]] bool pending() const;

   private:
    friend class EventQueue;
    Handle(std::weak_ptr<Slab> s, std::uint32_t slot, std::uint32_t gen)
        : slab_(std::move(s)), slot_(slot), gen_(gen) {}
    std::weak_ptr<Slab> slab_;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (clamped to now if in the past).
  Handle schedule_at(Time at, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds of virtual time.
  Handle schedule_after(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Run the next pending event, advancing the clock. False if queue empty.
  bool step();

  /// Run all events with timestamp <= t; the clock ends exactly at t.
  /// Returns the number of events executed.
  std::size_t run_until(Time t);

  /// Run all events within the next `d` nanoseconds.
  std::size_t run_for(Time d) { return run_until(now_ + d); }

  /// Run until the queue drains or `max_events` have executed.
  /// The cap guards tests against runaway self-rescheduling loops.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Observer invoked after every executed event, with the clock already
  /// advanced to the event's timestamp. Continuous checkers (the chaos
  /// oracle) hook here to sample cluster invariants at event granularity
  /// instead of only at end-of-run. One observer at a time (last wins;
  /// empty function clears). The observer must not call step()/run*()
  /// re-entrantly, but may schedule new events.
  void set_after_event(std::function<void(Time)> obs) {
    after_event_ = std::move(obs);
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of live events waiting.
  [[nodiscard]] std::size_t pending_events() const noexcept;

  /// Cancelled entries still occupying queue slots (reclaimed lazily at
  /// pop time or eagerly by compaction).
  [[nodiscard]] std::size_t cancelled_pending() const noexcept;

  /// Total events executed since construction (for diagnostics).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Compaction sweeps performed (cancelled-entry eviction; see
  /// maybe_compact in event_queue.cpp). Exported as `sim.eq_compactions`.
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  // One ring bucket covers 256 ns; 4096 buckets span ~1.05 ms. Events
  // beyond the horizon wait in the overflow heap and migrate into the
  // ring as the cursor advances.
  static constexpr int kBucketShift = 8;
  static constexpr std::uint64_t kBucketCount = 1u << 12;
  static constexpr std::uint64_t kBucketMask = kBucketCount - 1;

  // A bucket entry: enough to order the event and find its slab slot.
  // The generation pins the slot's identity — a stale item whose slot
  // was recycled is skipped at pop time.
  struct Item {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint64_t bucket_of(Time at) noexcept {
    return at >> kBucketShift;
  }

  void place_item(const Item& it);
  bool advance_to_next(bool bounded, Time limit);
  bool pop_and_run(bool bounded, Time limit);
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void reclaim_all();
  void maybe_compact();

  std::shared_ptr<Slab> slab_;
  std::vector<std::vector<Item>> buckets_;
  std::vector<Item> overflow_;  // min-heap on (at, seq)
  std::function<void(Time)> after_event_;
  Time now_ = 0;
  std::uint64_t cur_bn_ = 0;     // absolute bucket number of the cursor
  std::size_t ring_items_ = 0;   // items in buckets_ (incl. stale/cancelled)
  bool cur_sorted_ = false;      // current bucket sorted & being drained
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace myri::sim
