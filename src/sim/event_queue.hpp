// Discrete-event simulation kernel.
//
// A single EventQueue drives the whole simulated cluster: hosts, NICs,
// switches and daemons all schedule closures against one virtual clock.
// Events at equal timestamps run in FIFO scheduling order, which keeps every
// experiment fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace myri::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cancellation handle for a scheduled event. Copyable; outliving the
  /// queue or the event firing is safe (cancel becomes a no-op).
  class Handle {
   public:
    Handle() = default;

    /// Prevent the event from firing. No-op if already fired or cancelled.
    void cancel();

    /// True if the event is still waiting to fire.
    [[nodiscard]] bool pending() const;

    struct Entry;  // implementation detail, defined in event_queue.cpp

   private:
    friend class EventQueue;
    explicit Handle(std::shared_ptr<Entry> e) : entry_(std::move(e)) {}
    std::weak_ptr<Entry> entry_;
  };

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (clamped to now if in the past).
  Handle schedule_at(Time at, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds of virtual time.
  Handle schedule_after(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Run the next pending event, advancing the clock. False if queue empty.
  bool step();

  /// Run all events with timestamp <= t; the clock ends exactly at t.
  /// Returns the number of events executed.
  std::size_t run_until(Time t);

  /// Run all events within the next `d` nanoseconds.
  std::size_t run_for(Time d) { return run_until(now_ + d); }

  /// Run until the queue drains or `max_events` have executed.
  /// The cap guards tests against runaway self-rescheduling loops.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Observer invoked after every executed event, with the clock already
  /// advanced to the event's timestamp. Continuous checkers (the chaos
  /// oracle) hook here to sample cluster invariants at event granularity
  /// instead of only at end-of-run. One observer at a time (last wins;
  /// empty function clears). The observer must not call step()/run*()
  /// re-entrantly, but may schedule new events.
  void set_after_event(std::function<void(Time)> obs) {
    after_event_ = std::move(obs);
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events waiting.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }

  /// Total events executed since construction (for diagnostics).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct HeapCmp;
  bool pop_and_run();

  std::vector<std::shared_ptr<Handle::Entry>> heap_;
  std::function<void(Time)> after_event_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace myri::sim
