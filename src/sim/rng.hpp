// Deterministic, seedable random number generation.
//
// Every stochastic component (link error injection, fault campaigns, jitter)
// draws from an explicitly seeded Rng so experiments are reproducible run to
// run. Components that need independent streams derive them with fork() so
// adding draws in one component does not perturb another.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace myri::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}

  /// Uniform 64-bit value.
  std::uint64_t next_u64() { return eng_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(eng_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(eng_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(eng_);
  }

  /// Pick a uniformly random element; v must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive an independent generator for stream id `stream`.
  Rng fork(std::uint64_t stream) {
    // Mix the stream id through splitmix64 so neighbouring ids decorrelate.
    std::uint64_t z = next_u64() + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::mt19937_64 eng_;
};

}  // namespace myri::sim
