// Virtual time for the discrete-event simulation.
//
// All simulation timestamps are unsigned nanoseconds from simulation start.
// The paper reports results in microseconds; helpers here convert both ways
// so calibration constants can be written in the paper's units.
#pragma once

#include <cstdint>

namespace myri::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = std::uint64_t;

/// Signed duration in nanoseconds (for differences).
using Duration = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * 1000;
inline constexpr Time kSecond = 1000ull * 1000ull * 1000ull;

/// Whole-microsecond duration.
constexpr Time usec(std::uint64_t u) noexcept { return u * kMicrosecond; }

/// Fractional-microsecond duration (e.g. the paper's 0.25 us overheads).
constexpr Time usecf(double u) noexcept {
  return static_cast<Time>(u * static_cast<double>(kMicrosecond) + 0.5);
}

/// Whole-millisecond duration.
constexpr Time msec(std::uint64_t m) noexcept { return m * kMillisecond; }

/// Whole-second duration.
constexpr Time sec(std::uint64_t s) noexcept { return s * kSecond; }

/// Convert a virtual-time duration to (fractional) microseconds for reports.
constexpr double to_usec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Convert a virtual-time duration to (fractional) milliseconds for reports.
constexpr double to_msec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Convert a virtual-time duration to (fractional) seconds for reports.
constexpr double to_sec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace myri::sim
