#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace myri::sim {

void Trace::enable(TraceCat cat, std::ostream* out) {
  mask_ |= static_cast<std::uint32_t>(cat);
  out_ = out;
}

void Trace::log(TraceCat cat, Time now, const std::string& tag,
                const std::string& msg) const {
  if (!on(cat)) return;
  *out_ << '[' << std::setw(12) << std::fixed << std::setprecision(3)
        << to_usec(now) << " us] " << tag << ": " << msg << '\n';
}

}  // namespace myri::sim
