// Lightweight category-gated tracing.
//
// Benches run with tracing off; tests that debug protocol interactions can
// enable a category to get timestamped virtual-time logs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/time.hpp"

namespace myri::sim {

enum class TraceCat : std::uint32_t {
  kNet = 1u << 0,     // link/switch activity
  kNic = 1u << 1,     // LANai device + DMA engines
  kMcp = 1u << 2,     // control-program protocol events
  kHost = 1u << 3,    // driver, PCI, interrupts
  kGm = 1u << 4,      // user-library API
  kFt = 1u << 5,      // watchdog, FTD, recovery
  kMapper = 1u << 6,  // topology discovery
  kFi = 1u << 7,      // fault injection
};

class Trace {
 public:
  /// Construct with no categories enabled and no sink (fully silent).
  Trace() = default;

  /// Enable a category; logs go to `out` (must outlive the Trace).
  void enable(TraceCat cat, std::ostream* out);

  void disable(TraceCat cat) { mask_ &= ~static_cast<std::uint32_t>(cat); }

  [[nodiscard]] bool on(TraceCat cat) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0 && out_ != nullptr;
  }

  /// Emit one line: "[   12.345 us] tag: msg". No-op when the category is off.
  void log(TraceCat cat, Time now, const std::string& tag,
           const std::string& msg) const;

 private:
  std::uint32_t mask_ = 0;
  std::ostream* out_ = nullptr;
};

}  // namespace myri::sim
