// Calibration regression tests: the cost model must keep reproducing the
// paper's Table 2 within tolerance. These guard against accidental drift
// when protocol code changes — if one of these fails, either fix the
// regression or deliberately re-calibrate src/host/timing.hpp AND update
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench/common.hpp"

namespace myri {
namespace {

TEST(Calibration, GmShortMessageLatencyNear11_5us) {
  double sum = 0;
  int n = 0;
  for (const std::uint32_t len : {1u, 50u, 100u}) {
    sum += bench::run_ping_pong(mcp::McpMode::kGm, len, 40).half_rtt.mean_us();
    ++n;
  }
  EXPECT_NEAR(sum / n, 11.5, 0.8);
}

TEST(Calibration, FtgmLatencyOverheadNear1_5us) {
  const double gm =
      bench::run_ping_pong(mcp::McpMode::kGm, 64, 40).half_rtt.mean_us();
  const double ft =
      bench::run_ping_pong(mcp::McpMode::kFtgm, 64, 40).half_rtt.mean_us();
  EXPECT_NEAR(ft - gm, 1.5, 0.5);
}

TEST(Calibration, BidirectionalBandwidthNear92MBs) {
  const auto gm = bench::run_bandwidth_bidir(mcp::McpMode::kGm, 1u << 20, 20);
  const auto ft =
      bench::run_bandwidth_bidir(mcp::McpMode::kFtgm, 1u << 20, 20);
  EXPECT_NEAR(gm.mb_per_s, 92.4, 4.0);
  EXPECT_NEAR(ft.mb_per_s, 92.0, 4.0);
  // FTGM imposes no appreciable bandwidth degradation.
  EXPECT_NEAR(ft.mb_per_s / gm.mb_per_s, 1.0, 0.02);
}

TEST(Calibration, HostUtilizationMatchesTable2) {
  const auto gm = bench::run_host_util(mcp::McpMode::kGm, 64, 200);
  const auto ft = bench::run_host_util(mcp::McpMode::kFtgm, 64, 200);
  EXPECT_NEAR(gm.send_us_per_msg, 0.30, 0.02);
  EXPECT_NEAR(ft.send_us_per_msg, 0.55, 0.02);
  EXPECT_NEAR(gm.recv_us_per_msg, 0.75, 0.02);
  EXPECT_NEAR(ft.recv_us_per_msg, 1.15, 0.02);
}

TEST(Calibration, LanaiUtilizationMatchesTable2) {
  const auto gm = bench::run_host_util(mcp::McpMode::kGm, 64, 300);
  const auto ft = bench::run_host_util(mcp::McpMode::kFtgm, 64, 300);
  EXPECT_NEAR(gm.lanai_us_per_msg, 6.0, 0.6);
  EXPECT_NEAR(ft.lanai_us_per_msg, 6.8, 0.6);
}

TEST(Calibration, RecoveryBreakdownMatchesTable3) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  sim::Time recovered_at = 0;
  tx.set_on_recovered([&] { recovered_at = cluster.eq().now(); });
  cluster.node(0).ftd().mark_fault_injected();
  cluster.node(0).mcp().inject_hang("calibration");
  cluster.run_for(sim::sec(3));
  ASSERT_GT(recovered_at, 0u);
  const auto& ph = cluster.node(0).ftd().phases();
  // Detection < 1 ms (paper: ~800 us worst case).
  EXPECT_LT(sim::to_usec(ph.woken - ph.fault_injected), 1000.0);
  // FTD phase ~765 ms.
  EXPECT_NEAR(sim::to_msec(ph.events_posted - ph.woken), 765.0, 30.0);
  // Per-process phase ~900 ms.
  EXPECT_NEAR(sim::to_msec(recovered_at - ph.events_posted), 900.0, 30.0);
  // Complete recovery < 2 s (the paper's headline).
  EXPECT_LT(sim::to_sec(recovered_at - ph.fault_injected), 2.0);
}

TEST(Calibration, WireLevelConstants) {
  // 2 Gb/s link, 4 KB fragmentation, 0.5 us timer tick: the hardware
  // constants the rest of the model hangs off.
  sim::EventQueue eq;
  net::Link link(eq, sim::Rng(1), {}, "l");
  EXPECT_EQ(link.serialization_time(250), 1000u);  // 250 B @ 2 Gb/s = 1 us
  EXPECT_EQ(net::kMaxPacketPayload, 4096u);
  const host::LanaiTiming lt;
  EXPECT_EQ(lt.timer_tick, sim::usecf(0.5));
}

}  // namespace
}  // namespace myri
