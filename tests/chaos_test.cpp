// Chaos/soak tests: long runs combining lossy links with repeated NIC
// hangs on multiple nodes. The exactly-once invariant must hold through
// everything FTGM claims to mask.
//
// The sweeps are fi::Scenario schedules: the declarative form replaces
// the hand-rolled cluster/workload/schedule_at setup these tests used to
// carry, and the fi::Oracle now also audits tokens, the watchdog and the
// metrics registry continuously while the original assertions still run.
#include <gtest/gtest.h>

#include "faultinject/scenario.hpp"
#include "sim/rng.hpp"

namespace myri {
namespace {

struct ChaosCase {
  std::uint64_t seed;
  int node_count;
  int faults;            // number of hangs injected over the run
  double drop, corrupt;  // link fault rates
};

fi::Scenario chaos_scenario(const ChaosCase& tc) {
  fi::Scenario s;
  s.seed = tc.seed;
  s.nodes = tc.node_count;
  s.msgs = 25;
  s.msg_len = 1800;
  s.drop = tc.drop;
  s.corrupt = tc.corrupt;
  // Hangs on rotating victims, spaced past the ~1.7 s recovery — same
  // shape (and same derived RNG) as the hand-rolled version.
  sim::Rng rng(tc.seed ^ 0xc0ffee);
  sim::Time at = fi::Scenario::kWarmup + sim::usec(50);
  for (int f = 0; f < tc.faults; ++f) {
    fi::ScenarioEvent ev;
    ev.kind = fi::ScenarioEvent::Kind::kNicHang;
    ev.node = static_cast<int>(rng.below(tc.node_count));
    ev.at = at;
    s.events.push_back(ev);
    at += sim::sec(2) + sim::usec(rng.below(500'000));
  }
  return s;
}

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, ExactlyOnceThroughRepeatedFaultsAndLoss) {
  const ChaosCase& tc = GetParam();
  const fi::RunReport r = fi::ScenarioRunner::run(chaos_scenario(tc));

  EXPECT_TRUE(r.oracle_ok) << r.violation << ": " << r.violation_detail;
  ASSERT_EQ(r.streams.size(), static_cast<std::size_t>(tc.node_count));
  for (int i = 0; i < tc.node_count; ++i) {
    const fi::StreamOutcome& so = r.streams[static_cast<std::size_t>(i)];
    EXPECT_TRUE(so.complete)
        << "stream " << i << ": recv=" << so.received
        << " missing=" << so.missing << " dup=" << so.duplicates;
    EXPECT_EQ(so.duplicates, 0) << "stream " << i;
    EXPECT_EQ(so.corrupted, 0) << "stream " << i;
  }
}

std::vector<ChaosCase> chaos_cases() {
  return {
      {101, 2, 1, 0.05, 0.05},
      {102, 2, 2, 0.10, 0.00},
      {103, 3, 2, 0.00, 0.10},
      {104, 4, 3, 0.05, 0.05},
      {105, 4, 2, 0.15, 0.05},
      {106, 6, 3, 0.03, 0.03},
  };
}

INSTANTIATE_TEST_SUITE_P(Runs, ChaosSweep, ::testing::ValuesIn(chaos_cases()));

TEST(ChaosSoak, ManySequentialFaultsOnOnePair) {
  // Five consecutive hang/recover cycles on the same sender while a long
  // verified transfer grinds through.
  fi::Scenario s;
  s.nodes = 2;
  s.msgs = 120;
  s.msg_len = 2048;
  for (int f = 0; f < 5; ++f) {
    fi::ScenarioEvent ev;
    ev.kind = fi::ScenarioEvent::Kind::kNicHang;
    ev.node = 0;
    ev.at = fi::Scenario::kWarmup + sim::msec(100) + sim::sec(2) * f;
    s.events.push_back(ev);
  }
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed()) << r.violation << ": " << r.violation_detail;
  EXPECT_EQ(r.recoveries, 5u);
}

}  // namespace
}  // namespace myri
