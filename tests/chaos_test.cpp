// Chaos/soak tests: long runs combining lossy links with repeated NIC
// hangs on multiple nodes. The exactly-once invariant must hold through
// everything FTGM claims to mask.
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "sim/rng.hpp"

namespace myri {
namespace {

struct ChaosCase {
  std::uint64_t seed;
  int node_count;
  int faults;            // number of hangs injected over the run
  double drop, corrupt;  // link fault rates
};

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, ExactlyOnceThroughRepeatedFaultsAndLoss) {
  const ChaosCase& tc = GetParam();
  gm::ClusterConfig cc;
  cc.nodes = tc.node_count;
  cc.mode = mcp::McpMode::kFtgm;
  cc.seed = tc.seed;
  cc.faults = {tc.drop, tc.corrupt, 0.0};
  gm::Cluster cluster(cc);

  // A mesh of workloads: node i sends to node (i+1) % n.
  std::vector<std::unique_ptr<fi::StreamWorkload>> wls;
  std::vector<gm::Port*> ports;
  for (int i = 0; i < tc.node_count; ++i) {
    ports.push_back(&cluster.node(i).open_port(2, {24, 24}));
  }
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 25;
  wc.msg_len = 1800;
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < tc.node_count; ++i) {
    wls.push_back(std::make_unique<fi::StreamWorkload>(
        *ports[i], *ports[(i + 1) % tc.node_count], wc));
    wls.back()->start();
  }

  // Inject hangs on rotating victims, spaced past the ~1.7 s recovery.
  sim::Rng rng(tc.seed ^ 0xc0ffee);
  sim::Time at = sim::usec(50);
  for (int f = 0; f < tc.faults; ++f) {
    const int victim = static_cast<int>(rng.below(tc.node_count));
    cluster.eq().schedule_at(at, [&cluster, victim] {
      cluster.node(victim).mcp().inject_hang("chaos");
    });
    at += sim::sec(2) + sim::usec(rng.below(500'000));
  }

  // Run long enough for every fault + recovery + redelivery.
  const sim::Time horizon =
      at + sim::sec(3) + sim::msec(200 * tc.node_count);
  while (cluster.eq().now() < horizon) {
    cluster.run_for(sim::msec(100));
    bool all = true;
    for (auto& w : wls) all = all && w->complete();
    if (all) break;
  }

  for (int i = 0; i < tc.node_count; ++i) {
    EXPECT_TRUE(wls[i]->complete())
        << "stream " << i << ": recv=" << wls[i]->received()
        << " missing=" << wls[i]->missing()
        << " dup=" << wls[i]->duplicates();
    EXPECT_EQ(wls[i]->duplicates(), 0) << "stream " << i;
    EXPECT_EQ(wls[i]->corrupted(), 0) << "stream " << i;
  }
}

std::vector<ChaosCase> chaos_cases() {
  return {
      {101, 2, 1, 0.05, 0.05},
      {102, 2, 2, 0.10, 0.00},
      {103, 3, 2, 0.00, 0.10},
      {104, 4, 3, 0.05, 0.05},
      {105, 4, 2, 0.15, 0.05},
      {106, 6, 3, 0.03, 0.03},
  };
}

INSTANTIATE_TEST_SUITE_P(Runs, ChaosSweep, ::testing::ValuesIn(chaos_cases()));

TEST(ChaosSoak, ManySequentialFaultsOnOnePair) {
  // Five consecutive hang/recover cycles on the same sender while a long
  // verified transfer grinds through.
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 120;
  wc.msg_len = 2048;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  for (int f = 0; f < 5; ++f) {
    cluster.eq().schedule_after(sim::msec(100) + sim::sec(2) * f, [&] {
      cluster.node(0).mcp().inject_hang("soak");
    });
  }
  cluster.run_for(sim::sec(14));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.duplicates(), 0);
  EXPECT_EQ(tx.recoveries(), 5u);
}

}  // namespace
}  // namespace myri
