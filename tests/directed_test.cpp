// GM directed sends (RDMA put): zero-token remote memory writes, their
// protection boundary (page registration), and idempotent replay across
// FTGM recovery. Also covers the LanISA disassembler used by the
// fault-anatomy analysis.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "lanai/disassembler.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

ClusterConfig cfg(mcp::McpMode mode) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  return cc;
}

struct PutWorld {
  explicit PutWorld(mcp::McpMode mode) : cluster(cfg(mode)) {
    tx = &cluster.node(0).open_port(2);
    rx = &cluster.node(1).open_port(3);
    cluster.run_for(sim::usec(900));
    // The receiver exposes a registered region; in a real app it would
    // mail its address to the sender first.
    region = rx->alloc_dma_buffer(64 * 1024);
  }
  Cluster cluster;
  gm::Port* tx = nullptr;
  gm::Port* rx = nullptr;
  gm::Buffer region;
};

TEST(DirectedSend, PutLandsInRemoteMemory) {
  PutWorld w(mcp::McpMode::kGm);
  gm::Buffer src = w.tx->alloc_dma_buffer(256);
  auto bytes = w.cluster.node(0).memory().at(src.addr, 256);
  for (int i = 0; i < 256; ++i) bytes[i] = static_cast<std::byte>(i);

  bool done = false;
  ASSERT_TRUE(w.tx->post(
      src, 256,
      {.dst = 1,
       .dst_port = 3,
       .remote_vaddr = static_cast<std::uint32_t>(w.region.addr + 512),
       .callback = [&](bool ok) { done = ok; }}).ok());
  w.cluster.run_for(sim::msec(3));
  EXPECT_TRUE(done);
  auto remote = w.cluster.node(1).memory().at(w.region.addr + 512, 256);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(remote[i], static_cast<std::byte>(i)) << "byte " << i;
  }
  EXPECT_EQ(w.cluster.node(1).mcp().stats().directed_puts, 1u);
}

TEST(DirectedSend, ConsumesNoReceiveTokenAndPostsNoEvent) {
  PutWorld w(mcp::McpMode::kGm);
  int events = 0;
  w.rx->set_receive_handler([&](const gm::RecvInfo&) { ++events; });
  const auto tokens_before = w.rx->recv_tokens_free();
  gm::Buffer src = w.tx->alloc_dma_buffer(64);
  bool done = false;
  ASSERT_TRUE(w.tx->post(
      src, 64,
      {.dst = 1,
       .dst_port = 3,
       .remote_vaddr = static_cast<std::uint32_t>(w.region.addr),
       .callback = [&](bool ok) { done = ok; }}).ok());
  w.cluster.run_for(sim::msec(3));
  EXPECT_TRUE(done);
  EXPECT_EQ(events, 0);
  EXPECT_EQ(w.rx->recv_tokens_free(), tokens_before);
  EXPECT_EQ(w.rx->stats().msgs_received, 0u);
}

TEST(DirectedSend, MultiFragmentPut) {
  PutWorld w(mcp::McpMode::kFtgm);
  const std::uint32_t len = 12 * 1024;  // 3 fragments
  gm::Buffer src = w.tx->alloc_dma_buffer(len);
  auto bytes = w.cluster.node(0).memory().at(src.addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::byte>(i * 7);
  }
  bool done = false;
  ASSERT_TRUE(w.tx->post(
      src, len,
      {.dst = 1,
       .dst_port = 3,
       .remote_vaddr = static_cast<std::uint32_t>(w.region.addr),
       .callback = [&](bool ok) { done = ok; }}).ok());
  w.cluster.run_for(sim::msec(5));
  ASSERT_TRUE(done);
  auto remote = w.cluster.node(1).memory().at(w.region.addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    ASSERT_EQ(remote[i], static_cast<std::byte>(i * 7)) << "byte " << i;
  }
  EXPECT_EQ(w.cluster.node(1).mcp().stats().directed_frags, 3u);
}

TEST(DirectedSend, UnregisteredTargetIsRefused) {
  PutWorld w(mcp::McpMode::kGm);
  gm::Buffer src = w.tx->alloc_dma_buffer(64);
  bool fired = false;
  // Target inside host memory but never registered for port 3. The post
  // itself is accepted (the refusal happens at the remote MCP).
  ASSERT_TRUE(w.tx->post(src, 64,
                         {.dst = 1,
                          .dst_port = 3,
                          .remote_vaddr = 0x2000,
                          .callback = [&](bool) { fired = true; }}).ok());
  w.cluster.run_for(sim::msec(5));
  EXPECT_FALSE(fired);  // never accepted, never ACKed
  EXPECT_GT(w.cluster.node(1).mcp().stats().unmapped_dma_refusals, 0u);
  // The remote memory was not touched (protection boundary).
}

TEST(DirectedSend, InterleavesInOrderWithRegularMessages) {
  PutWorld w(mcp::McpMode::kFtgm);
  w.rx->provide_receive_buffer(w.rx->alloc_dma_buffer(128));
  std::vector<std::string> order;
  w.rx->set_receive_handler(
      [&](const gm::RecvInfo&) { order.push_back("msg"); });
  gm::Buffer src = w.tx->alloc_dma_buffer(64);
  ASSERT_TRUE(w.tx->post(
      src, 64,
      {.dst = 1,
       .dst_port = 3,
       .remote_vaddr = static_cast<std::uint32_t>(w.region.addr),
       .callback = [&](bool) { order.push_back("put"); }}).ok());
  (void)w.tx->post(src, 64, {.dst = 1, .dst_port = 3});
  w.cluster.run_for(sim::msec(5));
  // Same stream: the put completed before the message was delivered.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "put");
  EXPECT_EQ(order[1], "msg");
}

TEST(DirectedSend, ReplaysIdempotentlyAcrossRecovery) {
  PutWorld w(mcp::McpMode::kFtgm);
  const std::uint32_t len = 8 * 1024;
  gm::Buffer src = w.tx->alloc_dma_buffer(len);
  auto bytes = w.cluster.node(0).memory().at(src.addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::byte>(i ^ 0x5a);
  }
  bool done = false;
  ASSERT_TRUE(w.tx->post(
      src, len,
      {.dst = 1,
       .dst_port = 3,
       .remote_vaddr = static_cast<std::uint32_t>(w.region.addr),
       .callback = [&](bool ok) { done = ok; }}).ok());
  // Hang the receiver mid-put; recovery replays the put (idempotent).
  w.cluster.eq().schedule_after(sim::usec(15), [&] {
    w.cluster.node(1).mcp().inject_hang("mid-put");
  });
  w.cluster.run_for(sim::sec(4));
  ASSERT_TRUE(done);
  auto remote = w.cluster.node(1).memory().at(w.region.addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    ASSERT_EQ(remote[i], static_cast<std::byte>(i ^ 0x5a)) << "byte " << i;
  }
}

// ---- disassembler ----

TEST(Disassembler, RoundTripsAssembledCode) {
  const lanai::Program p = lanai::assemble(R"(
    lui  r1, 0x3c000
    addi r2, r0, 0x4100
    lw   r3, 8(r2)
    sw   r3, 0x20(r1)
    beq  r3, r0, out
    jal  r14, out
  out:
    jalr r0, r14
  )", 0x1000);
  EXPECT_EQ(lanai::disassemble(p.words[0]), "lui r1, 0x3c000");
  EXPECT_EQ(lanai::disassemble(p.words[2]), "lw r3, 8(r2)");
  EXPECT_EQ(lanai::disassemble(p.words[6]), "jalr r0, r14");
  EXPECT_NE(lanai::disassemble(p.words[4]).find("beq r3, r0"),
            std::string::npos);
}

TEST(Disassembler, InvalidOpcode) {
  EXPECT_EQ(lanai::disassemble(0), "invalid");
  EXPECT_EQ(lanai::disassemble(63u << 26), "invalid");
}

TEST(Disassembler, FieldClassification) {
  using lanai::Field;
  const std::uint32_t addi = lanai::encode(lanai::Op::kAddi, 2, 0, 0, 100);
  EXPECT_EQ(lanai::field_of_bit(addi, 31), Field::kOpcode);
  EXPECT_EQ(lanai::field_of_bit(addi, 23), Field::kRd);
  EXPECT_EQ(lanai::field_of_bit(addi, 19), Field::kRs1);
  EXPECT_EQ(lanai::field_of_bit(addi, 5), Field::kImm);
  const std::uint32_t add = lanai::encode(lanai::Op::kAdd, 1, 2, 3, 0);
  EXPECT_EQ(lanai::field_of_bit(add, 15), Field::kRs2);
  EXPECT_EQ(lanai::field_of_bit(add, 3), Field::kUnused);
}

TEST(Disassembler, RangeDumpsTheCodeSegment) {
  lanai::Sram sram(16 * 1024);
  const lanai::Program p = lanai::assemble("nop\nhalt\n", 0x1000);
  sram.write32(0x1000, p.words[0]);
  sram.write32(0x1004, p.words[1]);
  const std::string dump = lanai::disassemble_range(sram, 0x1000, 8);
  EXPECT_NE(dump.find("nop"), std::string::npos);
  EXPECT_NE(dump.find("halt"), std::string::npos);
  EXPECT_NE(dump.find("0x01000"), std::string::npos);
}

}  // namespace
}  // namespace myri
