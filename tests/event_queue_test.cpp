// Calendar-queue event core: determinism and safety pins.
//
// The EventQueue rewrite (calendar buckets + overflow heap + pooled slab
// entries) must be observably identical to the binary heap it replaced:
// execution order is defined purely by (timestamp, sequence). These tests
// pin FIFO order across every internal boundary (bucket edges, ring wrap,
// overflow migration), cancellation/compaction behaviour, generation-
// counter handle safety, a randomized differential check against a naive
// reference model, and finally a full 64-node chaos scenario whose digest
// was captured on the pre-rewrite heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "faultinject/scenario.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace myri::sim {
namespace {

// Bucket geometry mirrored from event_queue.hpp (256 ns × 4096 buckets).
constexpr Time kBucketWidth = 256;
constexpr Time kRingSpan = kBucketWidth * 4096;

TEST(EventQueueCalendar, EqualTimestampFifoAcrossBucketBoundaries) {
  EventQueue eq;
  std::vector<int> order;
  int tag = 0;
  // Same-timestamp groups straddling a bucket edge, the ring-wrap span
  // and the overflow horizon, scheduled in interleaved time order so
  // bucket placement cannot accidentally encode arrival order.
  const Time spots[] = {kBucketWidth - 1, kBucketWidth,     kBucketWidth + 1,
                        kRingSpan - 1,    kRingSpan,        kRingSpan + 1,
                        3 * kRingSpan,    3 * kRingSpan + 1};
  for (int rep = 0; rep < 4; ++rep) {
    for (const Time t : spots) {
      eq.schedule_at(t, [&order, id = tag++] { order.push_back(id); });
    }
  }
  eq.run();
  // Expected: sort tags by (time, scheduling sequence). Tag encodes the
  // sequence; its spot index encodes the time.
  std::vector<std::pair<Time, int>> want;
  for (int id = 0; id < tag; ++id) want.push_back({spots[id % 8], id});
  std::stable_sort(want.begin(), want.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(order[i], want[i].second) << "position " << i;
  }
}

TEST(EventQueueCalendar, CallbackSchedulingAtNowRunsBehindItsPeers) {
  // An event scheduled from inside a callback at the current timestamp
  // lands in the bucket being drained; it must still run after every
  // already-pending event of that timestamp (higher sequence).
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(100, [&] {
    order.push_back(0);
    eq.schedule_after(0, [&] { order.push_back(9); });
  });
  eq.schedule_at(100, [&] { order.push_back(1); });
  eq.schedule_at(100, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueueCalendar, CompactionEvictsCancelledEntries) {
  EventQueue eq;
  int fired = 0;
  std::vector<EventQueue::Handle> doomed;
  // 4000 events far out, most cancelled: the cancelled population must
  // cross the compaction threshold (1024 dead and dead >= live) and be
  // swept without disturbing the survivors' order.
  std::vector<int> order;
  for (int i = 0; i < 4000; ++i) {
    const Time at = 1000 + static_cast<Time>(i) * 100;
    if (i % 8 == 0) {
      eq.schedule_at(at, [&order, i] { order.push_back(i); });
    } else {
      doomed.push_back(eq.schedule_at(at, [&fired] { ++fired; }));
    }
  }
  for (auto& h : doomed) h.cancel();
  EXPECT_GE(eq.cancelled_pending(), 1024u);
  // Scheduling after the mass-cancel is what triggers the sweep.
  eq.schedule_at(5'000'000, [&order] { order.push_back(-1); });
  EXPECT_GE(eq.compactions(), 1u);
  EXPECT_EQ(eq.cancelled_pending(), 0u);
  eq.run();
  EXPECT_EQ(fired, 0);
  ASSERT_EQ(order.size(), 501u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i) * 8);
  }
  EXPECT_EQ(order.back(), -1);
}

TEST(EventQueueCalendar, CancelDuringCompactedDrainIsSafe) {
  // Cancelling from inside a callback while earlier mass-cancellation
  // already compacted must neither fire the cancelled event nor corrupt
  // the queue (the old failure mode for stale-slot reuse).
  EventQueue eq;
  bool late_ran = false;
  std::vector<EventQueue::Handle> doomed;
  for (int i = 0; i < 3000; ++i) {
    doomed.push_back(eq.schedule_at(10'000 + i, [] {}));
  }
  EventQueue::Handle victim;
  eq.schedule_at(500, [&] { victim.cancel(); });
  victim = eq.schedule_at(20'000'000, [&] { late_ran = true; });
  for (auto& h : doomed) h.cancel();
  eq.schedule_at(600, [] {});  // trigger compaction
  EXPECT_GE(eq.compactions(), 1u);
  eq.run();
  EXPECT_FALSE(late_ran);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueueCalendar, HandleOutlivesQueue) {
  EventQueue::Handle h;
  {
    EventQueue eq;
    h = eq.schedule_at(50, [] {});
    EXPECT_TRUE(h.pending());
  }
  // The queue (and its slab) are gone: the handle must go inert, not
  // dangle.
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueueCalendar, StaleHandleCannotCancelARecycledSlot) {
  EventQueue eq;
  bool second_ran = false;
  auto h1 = eq.schedule_at(10, [] {});
  eq.run();  // slot freed, generation bumped
  auto h2 = eq.schedule_at(20, [&] { second_ran = true; });
  h1.cancel();  // stale generation: must not touch h2's event
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  eq.run();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueCalendar, DifferentialAgainstReferenceModel) {
  // Random schedule/cancel/run_until workload, mirrored against a naive
  // (at, seq)-sorted reference. Any divergence in firing order or count
  // is a determinism regression.
  Rng rng(2026);
  EventQueue eq;
  struct Ref {
    Time at;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<Ref> ref;
  std::vector<EventQueue::Handle> handles;
  std::vector<std::uint64_t> fired;  // seq order actually observed
  std::uint64_t seq = 0;
  Time vnow = 0;
  for (int round = 0; round < 200; ++round) {
    const int burst = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < burst; ++i) {
      // Mix of near (same bucket), mid (ring) and far (overflow) events,
      // plus exact duplicates of the current time.
      const std::uint64_t r = rng.below(100);
      Time at = vnow;
      if (r < 20) {
        at = vnow + rng.below(64);
      } else if (r < 70) {
        at = vnow + rng.below(200'000);
      } else {
        at = vnow + rng.below(20'000'000);
      }
      const std::uint64_t s = seq++;
      handles.push_back(eq.schedule_at(at, [&fired, s] { fired.push_back(s); }));
      ref.push_back({std::max(at, vnow), s});
    }
    // Cancel a few random still-pending entries (a fired or already
    // cancelled pick is a deliberate no-op on both sides).
    for (int i = 0; i < 3; ++i) {
      const std::size_t k = rng.below(handles.size());
      if (handles[k].pending()) {
        handles[k].cancel();
        ref[k].cancelled = true;
      }
    }
    vnow += rng.below(300'000);
    eq.run_until(vnow);
  }
  eq.run();
  std::vector<Ref> want;
  for (const Ref& r : ref) {
    if (!r.cancelled) want.push_back(r);
  }
  std::sort(want.begin(), want.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  ASSERT_EQ(fired.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(fired[i], want[i].seq) << "divergence at event " << i;
  }
  EXPECT_EQ(eq.executed(), fired.size());
}

TEST(EventQueueCalendar, RunUntilThenLateInsertKeepsOrder) {
  // run_until() can leave the cursor parked mid-ring; a later insert at
  // a nearer time must still fire before everything already queued.
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(10'000'000, [&] { order.push_back(2); });
  eq.run_until(5'000'000);
  eq.schedule_at(6'000'000, [&] { order.push_back(1); });
  eq.schedule_after(0, [&] { order.push_back(0); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eq.now(), 10'000'000u);
}

// ---- digest stability across the queue rewrite ---------------------------

TEST(EventQueueCalendar, PinnedChaosScenarioDigestIsUnchanged) {
  // This digest was captured on the pre-rewrite shared_ptr binary-heap
  // EventQueue for the pinned 64-node fat-tree hang scenario below. The
  // calendar queue must reproduce it bit-identically: if this fails, the
  // rewrite changed equal-timestamp execution order somewhere.
  constexpr std::uint64_t kHeapDigest = 0xd367e149968f9e52ULL;

  fi::Scenario s;
  s.seed = 7;
  s.nodes = 64;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 60;
  s.msg_len = 1500;
  s.drop = 0.02;
  s.corrupt = 0.01;
  fi::ScenarioEvent hang;
  hang.kind = fi::ScenarioEvent::Kind::kNicHang;
  hang.node = 13;
  hang.at = fi::Scenario::kWarmup + sim::usec(500);
  s.events.push_back(hang);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.digest, kHeapDigest);
  EXPECT_EQ(r.deliveries, 3840u);
  EXPECT_EQ(r.recoveries, 1u);
}

}  // namespace
}  // namespace myri::sim
