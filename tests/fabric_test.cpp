// FabricBuilder presets: capacity math, placement, route discovery and
// multi-switch clusters (the paper's testbed scaled past one M3M-SW8).
#include <gtest/gtest.h>

#include <set>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mapper/mapper.hpp"
#include "net/fabric.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;
using net::FabricBuilder;
using net::FabricConfig;
using net::FabricPreset;

FabricConfig make(FabricPreset p, int nodes, std::uint8_t radix = 8) {
  FabricConfig fc;
  fc.preset = p;
  fc.nodes = nodes;
  fc.radix = radix;
  return fc;
}

TEST(Fabric, PresetNamesRoundTrip) {
  for (const auto p : {FabricPreset::kSingleSwitch, FabricPreset::kLine,
                       FabricPreset::kRing, FabricPreset::kFatTree,
                       FabricPreset::kFatTree3}) {
    const auto back = net::parse_fabric_preset(net::to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(net::parse_fabric_preset("torus").has_value());
  // The common unhyphenated spelling is accepted too.
  EXPECT_EQ(net::parse_fabric_preset("fattree"), FabricPreset::kFatTree);
}

TEST(Fabric, CapacityPerPreset) {
  EXPECT_EQ(FabricBuilder::capacity(make(FabricPreset::kSingleSwitch, 1, 8)),
            8u);
  EXPECT_EQ(FabricBuilder::capacity(make(FabricPreset::kLine, 1, 2)), 0u);
  EXPECT_EQ(FabricBuilder::capacity(make(FabricPreset::kFatTree, 1, 8)),
            4u * 255u);
  // Over-capacity configs are rejected at build time.
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  EXPECT_THROW(FabricBuilder(topo, make(FabricPreset::kSingleSwitch, 9, 8)),
               std::invalid_argument);
}

TEST(Fabric, SingleSwitchPlacementMatchesSeedTestbed) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kSingleSwitch, 4));
  EXPECT_EQ(fb.num_switches(), 1u);
  EXPECT_EQ(fb.tiers(), 1);
  EXPECT_TRUE(fb.trunk_cables().empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fb.placements()[i].port, i);
  }
  // One route byte: the destination's host port.
  auto r = fb.route(0, 3);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, std::vector<std::uint8_t>{3});
}

TEST(Fabric, FatTreeShape64Nodes) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kFatTree, 64, 8));
  // 16 leaves of 4 hosts each + 4 spines; every leaf trunks to every spine.
  EXPECT_EQ(fb.num_switches(), 20u);
  EXPECT_EQ(fb.trunk_cables().size(), 16u * 4u);
  EXPECT_EQ(fb.tiers(), 3);
  EXPECT_EQ(fb.placements().size(), 64u);
}

TEST(Fabric, FatTreeEveryPairReachableAtTierLength) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kFatTree, 64, 8));
  const int hosts_per_leaf = 4;
  for (int a = 0; a < 64; ++a) {
    for (int b = 0; b < 64; ++b) {
      if (a == b) continue;
      auto r = fb.route(static_cast<net::NodeId>(a),
                        static_cast<net::NodeId>(b));
      ASSERT_TRUE(r) << a << "->" << b;
      // Same leaf: one byte (host port). Cross leaf: leaf-spine-leaf, so
      // exactly tiers() bytes — one per traversed switch.
      const bool same_leaf = a / hosts_per_leaf == b / hosts_per_leaf;
      EXPECT_EQ(r->size(), same_leaf ? 1u : 3u) << a << "->" << b;
      EXPECT_LE(r->size(), static_cast<std::size_t>(fb.tiers()));
      EXPECT_EQ(r->back(), b % hosts_per_leaf);
    }
  }
}

TEST(Fabric, RingRoutesWrapTheShortWay) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  // 12 nodes, radix 4 => 2 hosts/switch, 6 switches in a loop.
  FabricBuilder fb(topo, make(FabricPreset::kRing, 12, 4));
  EXPECT_EQ(fb.num_switches(), 6u);
  EXPECT_EQ(fb.trunk_cables().size(), 6u);
  // Worst case: opposite side of the loop, 3 trunk hops + the host switch.
  EXPECT_EQ(fb.tiers(), 4);
  auto near = fb.route(0, 2);  // adjacent switches
  ASSERT_TRUE(near);
  EXPECT_EQ(near->size(), 2u);
  auto far = fb.route(0, 6);  // opposite side
  ASSERT_TRUE(far);
  EXPECT_EQ(far->size(), 4u);
  // Wrapping backwards (sw0 -> sw5) must not walk the long way round.
  auto wrap = fb.route(0, 10);
  ASSERT_TRUE(wrap);
  EXPECT_EQ(wrap->size(), 2u);
}

TEST(Fabric, LineHasNoWrapAround) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kLine, 12, 4));
  EXPECT_EQ(fb.trunk_cables().size(), 5u);  // 6 switches, open chain
  auto end_to_end = fb.route(0, 10);
  ASSERT_TRUE(end_to_end);
  EXPECT_EQ(end_to_end->size(), 6u);  // all six switches traversed
}

TEST(Fabric, ClusterTrafficCrossesTheFatTree) {
  ClusterConfig cc;
  cc.nodes = 16;
  cc.fabric = FabricPreset::kFatTree;
  Cluster cluster(cc);
  ASSERT_EQ(cluster.fabric().num_switches(), 8u);  // 4 leaves + 4 spines

  // Stream between nodes on different leaves: traffic must cross a spine.
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(15).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 20;
  wc.msg_len = 1024;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.run_for(sim::msec(50));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.duplicates(), 0);
}

TEST(Fabric, MapperDiscoversTheBuiltFatTree) {
  ClusterConfig cc;
  cc.nodes = 16;
  cc.fabric = FabricPreset::kFatTree;
  cc.install_routes = false;  // the mapper is the only source of routes
  Cluster cluster(cc);
  mapper::Mapper m(cluster.node(0));
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  cluster.run_until_idle();
  ASSERT_TRUE(ok);
  EXPECT_EQ(m.num_switches(), cluster.fabric().num_switches());
  EXPECT_EQ(m.interfaces().size(), 16u);
  for (net::NodeId b = 1; b < 16; ++b) {
    auto r = m.route_between(0, b);
    ASSERT_TRUE(r) << "0->" << int(b);
    EXPECT_LE(r->size(),
              static_cast<std::size_t>(cluster.fabric().tiers()));
  }
}

TEST(Fabric, FatTree3Shape512Nodes) {
  // Radix-16 k-ary fat-tree: 8 pods in use for 512 nodes (128 hosts per
  // pod), 16 switches per pod plus the 64-core spine grid.
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kFatTree3, 512, 16));
  EXPECT_EQ(FabricBuilder::capacity(make(FabricPreset::kFatTree3, 1, 16)),
            1024u);
  EXPECT_EQ(fb.num_switches(), 8u * 16u + 64u);
  EXPECT_EQ(fb.trunk_cables().size(), 8u * 8u * 8u * 2u);
  EXPECT_EQ(fb.tiers(), 5);  // edge-agg-core-agg-edge worst case
  // Every endpoint got a distinct (switch, port) plug.
  std::set<std::pair<std::uint16_t, std::uint8_t>> plugs;
  for (const auto& p : fb.placements()) plugs.insert({p.sw, p.port});
  EXPECT_EQ(plugs.size(), 512u);
}

TEST(Fabric, FatTree3RoutesReachEveryPairWithinFiveHops) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  FabricBuilder fb(topo, make(FabricPreset::kFatTree3, 128, 8));
  for (net::NodeId a = 0; a < 128; a = static_cast<net::NodeId>(a + 17)) {
    const auto rows = fb.routes_from(a);
    for (net::NodeId b = 0; b < 128; ++b) {
      if (a == b) continue;
      ASSERT_FALSE(rows[b].empty()) << int(a) << "->" << int(b);
      EXPECT_LE(rows[b].size(), 5u);
      // The batch derivation must agree with the per-pair BFS.
      const auto single = fb.route(a, b);
      ASSERT_TRUE(single.has_value());
      EXPECT_EQ(rows[b], *single) << int(a) << "->" << int(b);
    }
  }
}

TEST(Fabric, RoutesFromMatchesRoutePerPairOnEveryPreset) {
  for (const auto p : {FabricPreset::kSingleSwitch, FabricPreset::kLine,
                       FabricPreset::kRing, FabricPreset::kFatTree}) {
    sim::EventQueue eq;
    sim::Rng rng(1);
    net::Topology topo(eq, rng);
    FabricBuilder fb(topo, make(p, 6, 8));
    for (net::NodeId a = 0; a < 6; ++a) {
      const auto rows = fb.routes_from(a);
      for (net::NodeId b = 0; b < 6; ++b) {
        const auto single = fb.route(a, b);
        if (a == b) {
          EXPECT_TRUE(rows[b].empty());
        } else {
          ASSERT_TRUE(single.has_value());
          EXPECT_EQ(rows[b], *single) << net::to_string(p);
        }
      }
    }
  }
}

TEST(Fabric, ClusterTrafficCrossesTheFatTree3) {
  // Cross-pod traffic on the smallest honest 3-level config: radix 4 ->
  // 4 hosts per pod; node 0 (pod 0) streams to node 5 (pod 1) through
  // edge, agg and core tiers.
  ClusterConfig cc;
  cc.nodes = 8;
  cc.fabric = FabricPreset::kFatTree3;
  cc.switch_ports = 4;
  Cluster cluster(cc);
  auto& src = cluster.node(0).open_port(2);
  auto& dst = cluster.node(5).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 20;
  wc.msg_len = 512;
  fi::StreamWorkload wl(src, dst, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.run_for(sim::msec(50));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.duplicates(), 0);
}

TEST(Fabric, MapperDiscoversTheBuiltFatTree3) {
  ClusterConfig cc;
  cc.nodes = 16;
  cc.fabric = FabricPreset::kFatTree3;
  cc.switch_ports = 4;
  cc.install_routes = false;  // the mapper is the only source of routes
  Cluster cluster(cc);
  mapper::Mapper m(cluster.node(0));
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  cluster.run_until_idle();
  ASSERT_TRUE(ok);
  EXPECT_EQ(m.num_switches(), cluster.fabric().num_switches());
  EXPECT_EQ(m.interfaces().size(), 16u);
  for (net::NodeId b = 1; b < 16; ++b) {
    auto r = m.route_between(0, b);
    ASSERT_TRUE(r) << "0->" << int(b);
    EXPECT_LE(r->size(),
              static_cast<std::size_t>(cluster.fabric().tiers()));
  }
}

TEST(Fabric, RunUntilIdleHonoursConfiguredEventBound) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.max_events = 500;  // L_timer housekeeping alone would run forever
  Cluster cluster(cc);
  EXPECT_EQ(cluster.run_until_idle(), 500u);
  // An explicit override beats the config without mutating it.
  EXPECT_EQ(cluster.run_until_idle(100), 100u);
  EXPECT_EQ(cluster.config().max_events, 500u);
}

}  // namespace
}  // namespace myri
