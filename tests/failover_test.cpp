// Fabric failover: cable failures and the mapper's reconfiguration around
// them (paper Section 2: "The GM mapper can also reconfigure the network
// if links or nodes appear or disappear").
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "gm/node.hpp"
#include "mapper/failover.hpp"
#include "mapper/mapper.hpp"
#include "net/topology.hpp"

namespace myri {
namespace {

// A triangle of switches gives every pair of nodes two disjoint paths.
struct Triangle {
  sim::EventQueue eq;
  sim::Rng rng{17};
  std::unique_ptr<net::Topology> topo;
  std::uint16_t s0, s1, s2;
  net::Topology::CableId c01, c12, c02;
  std::vector<std::unique_ptr<gm::Node>> nodes;

  Triangle() {
    topo = std::make_unique<net::Topology>(eq, rng);
    s0 = topo->add_switch(8);
    s1 = topo->add_switch(8);
    s2 = topo->add_switch(8);
    c01 = topo->connect_switches(s0, 6, s1, 5);
    c12 = topo->connect_switches(s1, 6, s2, 5);
    c02 = topo->connect_switches(s0, 7, s2, 6);
    for (int i = 0; i < 3; ++i) {
      gm::Node::Config nc;
      nc.id = static_cast<net::NodeId>(i);
      nc.host_mem_bytes = 8u << 20;
      nodes.push_back(
          std::make_unique<gm::Node>(eq, nc, "n" + std::to_string(i)));
    }
    nodes[0]->attach(*topo, s0, 0);
    nodes[1]->attach(*topo, s1, 0);
    nodes[2]->attach(*topo, s2, 0);
    for (auto& n : nodes) n->boot();
  }
};

TEST(Failover, DownCableDropsEverything) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  const auto a = topo.add_switch(4);
  const auto b = topo.add_switch(4);
  const auto cable = topo.connect_switches(a, 3, b, 3);

  class Spy : public net::PacketSink {
   public:
    void deliver(net::Packet, std::uint8_t) override { ++count; }
    int count = 0;
  } sink;
  topo.attach_endpoint(sink, b, 0, "dst");

  net::Packet p;
  p.route = {3, 0};
  p.seal();
  topo.set_cable_down(cable, true);
  topo.get_switch(a).deliver(p, 1);
  eq.run();
  EXPECT_EQ(sink.count, 0);

  topo.set_cable_down(cable, false);
  topo.get_switch(a).deliver(p, 1);
  eq.run();
  EXPECT_EQ(sink.count, 1);
}

TEST(Failover, MapperFindsBothPathsInTriangle) {
  Triangle t;
  mapper::Mapper m(*t.nodes[0]);
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  t.eq.run(10'000'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(m.num_switches(), 3u);
  EXPECT_EQ(m.interfaces().size(), 3u);
  // Direct route 0->1 goes via the s0-s1 cable.
  auto r = m.route_between(0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 2u);  // one inter-switch hop + the host port
}

TEST(Failover, RemapRoutesAroundAFailedCable) {
  Triangle t;
  mapper::Mapper m(*t.nodes[0]);
  m.run([](bool) {});
  t.eq.run(10'000'000);
  auto direct = m.route_between(0, 1);
  ASSERT_TRUE(direct);
  ASSERT_EQ(direct->size(), 2u);

  // The s0-s1 cable dies; remap must route 0->1 the long way (via s2).
  t.topo->set_cable_down(t.c01, true);
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  t.eq.run(20'000'000);
  ASSERT_TRUE(ok);
  auto detour = m.route_between(0, 1);
  ASSERT_TRUE(detour);
  EXPECT_EQ(detour->size(), 3u);  // two inter-switch hops now
  EXPECT_EQ(m.interfaces().size(), 3u);  // nobody was lost
}

TEST(Failover, TrafficResumesAfterRemap) {
  Triangle t;
  mapper::Mapper m(*t.nodes[0]);
  m.run([](bool) {});
  t.eq.run(10'000'000);

  auto& tx = t.nodes[0]->open_port(2);
  auto& rx = t.nodes[1]->open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 10;
  wc.msg_len = 1024;
  fi::StreamWorkload first(tx, rx, wc);
  t.eq.run_until(t.eq.now() + sim::usec(900));
  first.start();
  t.eq.run_until(t.eq.now() + sim::msec(20));
  ASSERT_TRUE(first.complete());

  // Cable dies mid-life; traffic stalls on the dead path...
  t.topo->set_cable_down(t.c01, true);
  fi::StreamWorkload second(tx, rx, wc);
  second.start();
  t.eq.run_until(t.eq.now() + sim::msec(20));
  EXPECT_FALSE(second.complete());

  // ...until the operator re-runs the mapper, which installs the detour;
  // Go-Back-N then pushes the stalled messages through it.
  m.run([](bool) {});
  t.eq.run_until(t.eq.now() + sim::msec(300));
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.duplicates(), 0);
}

// ---- FailoverManager: the automated cable-event -> remap -> reroute path
// on a multi-switch fabric (the PR's acceptance scenario). ----

gm::ClusterConfig fat_tree16() {
  gm::ClusterConfig cc;
  cc.nodes = 16;
  cc.fabric = net::FabricPreset::kFatTree;
  return cc;
}

TEST(FailoverManager, CableKillUnderLoadRemapsAndAllStreamsComplete) {
  gm::Cluster cluster(fat_tree16());
  mapper::FailoverManager fm(cluster);

  // Three concurrent streams; 0->15 crosses leaf0-spine0 (the BFS-first
  // uplink), the others exercise unrelated leaf pairs.
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 40;
  wc.msg_len = 1024;
  fi::StreamWorkload s0(cluster.node(0).open_port(2),
                        cluster.node(15).open_port(3), wc);
  fi::StreamWorkload s1(cluster.node(5).open_port(2),
                        cluster.node(10).open_port(3), wc);
  fi::StreamWorkload s2(cluster.node(12).open_port(2),
                        cluster.node(3).open_port(3), wc);
  cluster.run_for(sim::usec(900));
  s0.start();
  s1.start();
  s2.start();
  cluster.run_for(sim::usec(300));  // some traffic in flight

  // Kill the leaf0<->spine0 trunk mid-stream. The listener fires, the
  // debounced remap re-discovers the fabric and distributes detours; the
  // stalled Go-Back-N windows push through the surviving spines.
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[0], true);
  cluster.run_for(sim::msec(600));

  EXPECT_GE(fm.remaps(), 1u);
  EXPECT_EQ(fm.failed_remaps(), 0u);
  EXPECT_TRUE(s0.complete());
  EXPECT_TRUE(s1.complete());
  EXPECT_TRUE(s2.complete());
  EXPECT_EQ(s0.duplicates() + s1.duplicates() + s2.duplicates(), 0);

  // Failover latency (cable event -> routes distributed) and post-remap
  // route lengths landed in the cluster registry.
  metrics::Registry& reg = cluster.metrics();
  EXPECT_EQ(reg.counter("fabric.cable_events").value(), 1u);
  EXPECT_GE(reg.counter("fabric.failover.remaps").value(), 1u);
  EXPECT_GE(reg.histogram("fabric.failover.remap_ns").count(), 1u);
  // 16 interfaces, routes recorded for each ordered reachable pair.
  EXPECT_GE(reg.histogram("fabric.route_len_hops").count(), 16u * 15u);
  // A 2-level Clos never needs more than 3 route bytes, dead trunk or not.
  EXPECT_LE(reg.histogram("fabric.route_len_hops").max(), 3u);
}

TEST(FailoverManager, CoalescesBackToBackCableEvents) {
  gm::Cluster cluster(fat_tree16());
  mapper::FailoverManager fm(cluster);
  // Two cable transitions inside one debounce window: one remap, not two.
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[0], true);
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[5], true);
  cluster.run_for(sim::msec(400));
  EXPECT_EQ(cluster.metrics().counter("fabric.cable_events").value(), 2u);
  EXPECT_EQ(fm.remaps(), 1u);
  EXPECT_FALSE(fm.remap_in_progress());
}

TEST(FailoverManager, RemapNowBringsUpAnUnmappedFabric) {
  gm::ClusterConfig cc = fat_tree16();
  cc.install_routes = false;  // cold fabric: only the mapper can route it
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(1).open_port(2);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  ASSERT_EQ(tx.post(b, 64, {.dst = 14, .dst_port = 3}).code(),
            gm::Status::kUnreachable);

  mapper::FailoverManager fm(cluster);
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(400));
  ASSERT_TRUE(ok);
  EXPECT_EQ(fm.mapper().interfaces().size(), 16u);
  EXPECT_TRUE(tx.post(b, 64, {.dst = 14, .dst_port = 3}).ok());
}

TEST(Failover, NodeDisappearsFromTheMapWhenItsCableDies) {
  Triangle t;
  mapper::Mapper m(*t.nodes[0]);
  m.run([](bool) {});
  t.eq.run(10'000'000);
  ASSERT_EQ(m.interfaces().size(), 3u);

  // Fail node2's switch-to-switch connections: s1-s2 and s0-s2 both die,
  // so everything behind s2 vanishes from the next map.
  t.topo->set_cable_down(t.c12, true);
  t.topo->set_cable_down(t.c02, true);
  m.run([](bool) {});
  t.eq.run(20'000'000);
  EXPECT_EQ(m.interfaces().size(), 2u);
  EXPECT_FALSE(m.route_between(0, 2));
}

}  // namespace
}  // namespace myri
