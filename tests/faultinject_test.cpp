// Fault-injection framework tests: workload oracle, campaign determinism
// and classification sanity.
#include <gtest/gtest.h>

#include "faultinject/campaign.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mcp/sram_layout.hpp"

namespace myri::fi {
namespace {

TEST(Workload, CompletesCleanRun) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  StreamWorkload wl(tx, rx, {});
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.run_for(sim::msec(20));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.missing(), 0);
  EXPECT_EQ(wl.duplicates(), 0);
}

TEST(Workload, NotCompleteBeforeStart) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  StreamWorkload wl(tx, rx, {});
  EXPECT_FALSE(wl.complete());
}

TEST(Workload, DetectsTamperedPayload) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  StreamWorkload::Config wc;
  wc.total_msgs = 5;
  wc.msg_len = 512;
  StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  // Corrupt data as it lands: flip a byte in receiver host memory right
  // before each event dispatch by corrupting all of pinned memory
  // periodically. Simpler: corrupt one delivered buffer after the run.
  wl.start();
  cluster.run_for(sim::msec(5));
  ASSERT_TRUE(wl.complete());
  // Now verify the oracle itself: a mismatching pattern byte is detected.
  EXPECT_NE(StreamWorkload::pattern(1, 10), StreamWorkload::pattern(2, 10));
}

TEST(Workload, CountsMissingMessages) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  StreamWorkload::Config wc;
  wc.total_msgs = 10;
  StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  // Kill the sender NIC almost immediately: most messages never arrive.
  cluster.eq().schedule_after(sim::usec(20), [&] {
    cluster.node(0).mcp().inject_hang("test");
  });
  cluster.run_for(sim::msec(5));
  EXPECT_FALSE(wl.complete());
  EXPECT_GT(wl.missing(), 0);
}

TEST(Campaign, RunOneIsDeterministicPerSeed) {
  CampaignConfig cc;
  cc.mode = mcp::McpMode::kGm;
  Campaign camp(cc);
  const RunRecord a = camp.run_one(12345);
  const RunRecord b = camp.run_one(12345);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.flip_addr, b.flip_addr);
  EXPECT_EQ(a.flip_bit, b.flip_bit);
  EXPECT_EQ(a.orig_word, b.orig_word);
  EXPECT_EQ(a.word_bit, b.word_bit);
  EXPECT_EQ(a.hang, b.hang);
}

TEST(Campaign, DataSegmentRunOneIsDeterministicPerSeed) {
  CampaignConfig cc;
  cc.mode = mcp::McpMode::kGm;
  cc.target = InjectTarget::kDataSegment;
  Campaign camp(cc);
  for (std::uint64_t seed : {1ull, 777ull, 424242ull}) {
    const RunRecord a = camp.run_one(seed);
    const RunRecord b = camp.run_one(seed);
    EXPECT_EQ(a.outcome, b.outcome) << "seed " << seed;
    EXPECT_EQ(a.flip_addr, b.flip_addr) << "seed " << seed;
    EXPECT_EQ(a.flip_bit, b.flip_bit) << "seed " << seed;
  }
}

TEST(Campaign, DataSegmentFlipsLandInsideTheDataSegment) {
  constexpr std::uint32_t lo = mcp::SramLayout::kSendDescAddr;
  constexpr std::uint32_t hi =
      mcp::SramLayout::kSendStagingBase +
      mcp::SramLayout::kNumSendSlots * mcp::SramLayout::kStagingSlotSize;
  CampaignConfig cc;
  cc.mode = mcp::McpMode::kGm;
  cc.target = InjectTarget::kDataSegment;
  Campaign camp(cc);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RunRecord r = camp.run_one(seed);
    EXPECT_GE(r.flip_addr, lo) << "seed " << seed;
    EXPECT_LT(r.flip_addr, hi) << "seed " << seed;
    EXPECT_LT(r.flip_bit, 8u) << "seed " << seed;
  }
}

TEST(Campaign, DataSegmentCampaignClassifiesEveryRun) {
  // The paper notes its Table 1 "could be different if fault injection is
  // carried out on some other section" — data flips mostly hit stale
  // descriptors/staging (No Impact) or live payload bytes (Corrupted),
  // and must never leave a run unclassified.
  CampaignConfig cc;
  cc.runs = 30;
  cc.seed = 17;
  cc.target = InjectTarget::kDataSegment;
  Campaign camp(cc);
  const CampaignSummary s = camp.run();
  int total = 0;
  for (int c : s.counts) total += c;
  EXPECT_EQ(total, 30);
  EXPECT_GT(s.counts[static_cast<int>(Outcome::kNoImpact)] +
                s.counts[static_cast<int>(Outcome::kCorrupted)],
            0);
}

TEST(Campaign, CountsSumToRuns) {
  CampaignConfig cc;
  cc.runs = 40;
  Campaign camp(cc);
  const CampaignSummary s = camp.run();
  int total = 0;
  for (int c : s.counts) total += c;
  EXPECT_EQ(total, 40);
  EXPECT_EQ(s.runs, 40);
}

TEST(Campaign, GmCampaignProducesHangsAndNoImpact) {
  CampaignConfig cc;
  cc.runs = 60;
  cc.seed = 99;
  Campaign camp(cc);
  const CampaignSummary s = camp.run();
  // The two dominant categories of the paper's Table 1 must both appear.
  EXPECT_GT(s.counts[static_cast<int>(Outcome::kLocalHang)], 0);
  EXPECT_GT(s.counts[static_cast<int>(Outcome::kNoImpact)], 0);
}

TEST(Campaign, FtgmDetectsAndRecoversHangs) {
  CampaignConfig cc;
  cc.runs = 25;
  cc.seed = 7;
  cc.mode = mcp::McpMode::kFtgm;
  Campaign camp(cc);
  const CampaignSummary s = camp.run();
  ASSERT_GT(s.hangs, 0);
  // Section 5.2: every interface hang is detected by the watchdog.
  EXPECT_EQ(s.hangs_detected, s.hangs);
  // And the vast majority recover to exactly-once delivery.
  EXPECT_GE(s.hangs_recovered, s.hangs - 1);
}

TEST(Campaign, OutcomeNamesMatchPaperCategories) {
  EXPECT_STREQ(to_string(Outcome::kLocalHang), "Local Interface Hung");
  EXPECT_STREQ(to_string(Outcome::kNoImpact), "No Impact");
  EXPECT_STREQ(to_string(Outcome::kHostCrash), "Host Computer Crash");
}

TEST(Campaign, PercentagesNormalize) {
  CampaignSummary s;
  s.runs = 200;
  s.counts[static_cast<int>(Outcome::kNoImpact)] = 50;
  EXPECT_DOUBLE_EQ(s.pct(Outcome::kNoImpact), 25.0);
}

}  // namespace
}  // namespace myri::fi
