// Tests for the FM-style comparator layer: handler dispatch, host-level
// credit flow control, copy-cost accounting, and fault tolerance inherited
// from FTGM underneath.
#include <gtest/gtest.h>

#include <cstring>

#include "fm/endpoint.hpp"
#include "gm/cluster.hpp"

namespace myri::fm {
namespace {

struct World {
  explicit World(int n, mcp::McpMode mode = mcp::McpMode::kGm,
                 Endpoint::Config ec = {}) {
    gm::ClusterConfig cc;
    cc.nodes = n;
    cc.mode = mode;
    cluster = std::make_unique<gm::Cluster>(cc);
    for (int i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<Endpoint>(cluster->node(i), ec));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) eps[i]->add_peer(static_cast<net::NodeId>(j));
      }
    }
    cluster->run_for(sim::usec(900));
  }
  std::unique_ptr<gm::Cluster> cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(FmEndpoint, HandlerRunsOnArrival) {
  World w(2);
  std::string got;
  net::NodeId from = net::kInvalidNode;
  w.eps[1]->register_handler(3, [&](net::NodeId src,
                                    std::span<const std::byte> data) {
    from = src;
    got.assign(reinterpret_cast<const char*>(data.data()), data.size());
  });
  const auto payload = bytes_of("fm message");
  EXPECT_TRUE(w.eps[0]->send(1, 3, payload));
  w.cluster->run_for(sim::msec(3));
  EXPECT_EQ(from, 0u);
  EXPECT_EQ(got, "fm message");
}

TEST(FmEndpoint, HandlersAreSeparateById) {
  World w(2);
  int h1 = 0, h2 = 0;
  w.eps[1]->register_handler(1, [&](auto, auto) { ++h1; });
  w.eps[1]->register_handler(2, [&](auto, auto) { ++h2; });
  const auto p = bytes_of("x");
  w.eps[0]->send(1, 1, p);
  w.eps[0]->send(1, 2, p);
  w.eps[0]->send(1, 2, p);
  w.cluster->run_for(sim::msec(3));
  EXPECT_EQ(h1, 1);
  EXPECT_EQ(h2, 2);
}

TEST(FmEndpoint, CreditsExhaustAndSendFails) {
  Endpoint::Config ec;
  ec.credits_per_peer = 4;
  World w(2, mcp::McpMode::kGm, ec);
  const auto p = bytes_of("x");
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(w.eps[0]->send(1, 1, p)) << i;
  }
  EXPECT_FALSE(w.eps[0]->send(1, 1, p));  // out of credits, host-level
  EXPECT_GT(w.eps[0]->stats().credit_stalls, 0u);
}

TEST(FmEndpoint, CreditsReturnAndFlowResumes) {
  Endpoint::Config ec;
  ec.credits_per_peer = 4;
  ec.credit_return_batch = 2;
  World w(2, mcp::McpMode::kGm, ec);
  int got = 0;
  w.eps[1]->register_handler(1, [&](auto, auto) { ++got; });
  const auto p = bytes_of("x");
  // Fire 12 messages through a 4-credit window via the queueing helper.
  for (int i = 0; i < 12; ++i) w.eps[0]->send_or_queue(1, 1, p);
  w.cluster->run_for(sim::msec(10));
  EXPECT_EQ(got, 12);
  EXPECT_GT(w.eps[1]->stats().credit_returns, 0u);
  EXPECT_EQ(w.eps[0]->credits_for(1) +
                static_cast<int>(w.eps[1]->stats().credit_returns) * 0,
            w.eps[0]->credits_for(1));
  // All credits eventually find their way home.
  w.cluster->run_for(sim::msec(10));
  EXPECT_GE(w.eps[0]->credits_for(1), 2);
}

TEST(FmEndpoint, OversizedMessageRejected) {
  World w(2);
  std::vector<std::byte> big(4096);
  EXPECT_FALSE(w.eps[0]->send(1, 1, big));  // > buf_size (2048)
}

TEST(FmEndpoint, CopyCostsChargeHostCpu) {
  World w(2);
  int got = 0;
  w.eps[1]->register_handler(1, [&](auto, auto) { ++got; });
  std::vector<std::byte> payload(2000, std::byte{7});
  w.eps[0]->send(1, 1, payload);
  w.cluster->run_for(sim::msec(3));
  ASSERT_EQ(got, 1);
  // 2000 B at 300 MB/s is ~6.7 us per copy — far above GM's 0.30/0.75 us
  // fixed costs: the paper's point about host-level schemes like FM.
  EXPECT_GT(w.eps[0]->stats().copy_cpu_ns, sim::usecf(6.0));
  EXPECT_GT(w.eps[1]->stats().copy_cpu_ns, sim::usecf(6.0));
}

TEST(FmEndpoint, ThreeNodeTraffic) {
  World w(3);
  int got1 = 0, got2 = 0;
  w.eps[1]->register_handler(1, [&](auto, auto) { ++got1; });
  w.eps[2]->register_handler(1, [&](auto, auto) { ++got2; });
  const auto p = bytes_of("ring");
  for (int i = 0; i < 6; ++i) {
    w.eps[0]->send_or_queue(1, 1, p);
    w.eps[0]->send_or_queue(2, 1, p);
  }
  w.cluster->run_for(sim::msec(10));
  EXPECT_EQ(got1, 6);
  EXPECT_EQ(got2, 6);
}

TEST(FmEndpoint, InheritsFtgmFaultToleranceTransparently) {
  // The paper's closing claim: user-level protocols built on the token
  // system "stand to gain" from FTGM without changes. Hang the NIC under
  // an FM workload and watch it complete.
  World w(2, mcp::McpMode::kFtgm);
  int got = 0;
  w.eps[1]->register_handler(1, [&](auto, auto) { ++got; });
  const auto p = bytes_of("survivor");
  for (int i = 0; i < 20; ++i) w.eps[0]->send_or_queue(1, 1, p);
  w.cluster->eq().schedule_after(sim::usec(40), [&] {
    w.cluster->node(0).mcp().inject_hang("under FM");
  });
  w.cluster->run_for(sim::sec(4));
  EXPECT_EQ(got, 20);
  EXPECT_EQ(w.cluster->node(0).port(7)->recoveries(), 1u);
}

}  // namespace
}  // namespace myri::fm
