// FTGM fault-tolerance tests: backup store, software watchdog, FTD
// recovery pipeline, transparent per-process recovery, and reproductions
// of the paper's Figure 4 (duplicates) and Figure 5 (lost messages).
#include <gtest/gtest.h>

#include "core/backup_store.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

ClusterConfig ftgm_config() {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  return cc;
}

ClusterConfig gm_config() {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kGm;
  return cc;
}

// ---------------- BackupStore unit tests ----------------

mcp::SendRequest make_req(std::uint32_t token, std::uint32_t seq = 0) {
  mcp::SendRequest r;
  r.token_id = token;
  r.seq_first = seq;
  r.dst = 1;
  r.len = 100;
  return r;
}

TEST(BackupStore, SendsKeepPostOrder) {
  core::BackupStore b;
  b.add_send(make_req(1));
  b.add_send(make_req(2));
  b.add_send(make_req(3));
  b.remove_send(2);
  ASSERT_EQ(b.send_count(), 2u);
  EXPECT_EQ(b.sends()[0].token_id, 1u);
  EXPECT_EQ(b.sends()[1].token_id, 3u);
}

TEST(BackupStore, RemoveMissingSendIsNoop) {
  core::BackupStore b;
  b.add_send(make_req(1));
  b.remove_send(99);
  EXPECT_EQ(b.send_count(), 1u);
}

TEST(BackupStore, RecvTokensTracked) {
  core::BackupStore b;
  mcp::RecvToken t;
  t.token_id = 5;
  b.add_recv(t);
  EXPECT_EQ(b.recv_count(), 1u);
  b.remove_recv(5);
  EXPECT_EQ(b.recv_count(), 0u);
}

TEST(BackupStore, AckTableKeepsMaximum) {
  core::BackupStore b;
  b.note_recv_seq(3, 1, 10);
  b.note_recv_seq(3, 1, 7);   // stale update must not regress
  b.note_recv_seq(3, 1, 12);
  ASSERT_EQ(b.ack_table().size(), 1u);
  EXPECT_EQ(b.ack_table().begin()->second.last_seq, 12u);
}

TEST(BackupStore, AckTableSeparatesStreams) {
  core::BackupStore b;
  b.note_recv_seq(3, 1, 10);
  b.note_recv_seq(3, 2, 4);
  b.note_recv_seq(4, 1, 6);
  EXPECT_EQ(b.ack_table().size(), 3u);
}

TEST(BackupStore, SeqBlocksAreContiguousPerDestination) {
  core::BackupStore b;
  EXPECT_EQ(b.alloc_seq_block(1, 3), 0u);
  EXPECT_EQ(b.alloc_seq_block(1, 2), 3u);
  EXPECT_EQ(b.alloc_seq_block(2, 1), 0u);  // independent stream
  EXPECT_EQ(b.next_seq(1), 5u);
}

TEST(BackupStore, FootprintIsModest) {
  // The paper reports ~20 KB of extra virtual memory per process.
  core::BackupStore b;
  for (std::uint32_t i = 0; i < 64; ++i) {
    b.add_send(make_req(i));
    mcp::RecvToken t;
    t.token_id = 1000 + i;
    b.add_recv(t);
    b.note_recv_seq(static_cast<net::NodeId>(i % 8), i % 4, i);
  }
  EXPECT_LT(b.approx_bytes(), 20u * 1024u);
}

TEST(BackupStore, ClearEmptiesEverything) {
  core::BackupStore b;
  b.add_send(make_req(1));
  b.note_recv_seq(1, 1, 1);
  b.clear();
  EXPECT_EQ(b.send_count(), 0u);
  EXPECT_TRUE(b.ack_table().empty());
}

// ---------------- watchdog detection ----------------

TEST(Watchdog, FiresWithinIntervalAfterHang) {
  Cluster cluster(ftgm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(2));
  const sim::Time hang_at = cluster.eq().now();
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::msec(2));
  EXPECT_EQ(cluster.node(0).driver().fatal_interrupts(), 1u);
  // Detection latency is bounded by the watchdog interval (820 us) plus
  // interrupt latency (13 us) — the paper's sub-millisecond detection.
  const auto& ph = cluster.node(0).ftd().phases();
  EXPECT_LE(ph.interrupt_raised - hang_at, sim::usecf(850.0));
}

TEST(Watchdog, NoFalsePositivesUnderHeavyLoad) {
  Cluster cluster(ftgm_config());
  auto& p0 = cluster.node(0).open_port(2);
  auto& p1 = cluster.node(1).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 400;
  wc.msg_len = 4096;
  fi::StreamWorkload a(p0, p1, wc), b(p1, p0, wc);
  cluster.run_for(sim::usec(900));
  a.start();
  b.start();
  cluster.run_for(sim::msec(60));
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(cluster.node(0).ftd().stats().wakeups, 0u);
  EXPECT_EQ(cluster.node(1).ftd().stats().wakeups, 0u);
}

TEST(Watchdog, GmModeHasNoWatchdog) {
  Cluster cluster(gm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(2));
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::msec(5));
  EXPECT_EQ(cluster.node(0).driver().fatal_interrupts(), 0u);
  EXPECT_TRUE(cluster.node(0).mcp().hung());  // dead forever
}

TEST(Watchdog, SpuriousFatalIsFalseAlarm) {
  Cluster cluster(ftgm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  const auto gen = cluster.node(0).mcp().generation();
  // Force the FATAL line without an actual hang: the magic-word probe
  // must discover the MCP alive and stand down.
  cluster.node(0).nic().set_isr_bits(lanai::kIsrIt1);
  cluster.run_for(sim::msec(20));
  EXPECT_EQ(cluster.node(0).ftd().stats().false_alarms, 1u);
  EXPECT_EQ(cluster.node(0).ftd().stats().recoveries, 0u);
  EXPECT_EQ(cluster.node(0).mcp().generation(), gen);  // untouched
}

// ---------------- FTD pipeline ----------------

TEST(Ftd, RecoveryPhasesFollowPaperTimeline) {
  Cluster cluster(ftgm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  cluster.node(0).ftd().mark_fault_injected();
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::sec(2));
  const auto& ph = cluster.node(0).ftd().phases();
  ASSERT_GT(ph.events_posted, 0u);
  // Ordered phases.
  EXPECT_LT(ph.fault_injected, ph.interrupt_raised);
  EXPECT_LT(ph.interrupt_raised, ph.woken);
  EXPECT_LT(ph.woken, ph.confirmed);
  EXPECT_LT(ph.confirmed, ph.mcp_reloaded);
  EXPECT_LT(ph.mcp_reloaded, ph.events_posted);
  // Detection in under a millisecond (paper Table 3: ~800 us).
  EXPECT_LT(ph.woken - ph.fault_injected, sim::msec(1));
  // MCP reload dominates (paper: ~500 ms of ~765 ms).
  EXPECT_NEAR(sim::to_msec(ph.mcp_reloaded - ph.sram_cleared), 500.0, 1.0);
  // FTD phase total ~765 ms.
  EXPECT_NEAR(sim::to_msec(ph.events_posted - ph.woken), 765.0, 40.0);
}

TEST(Ftd, ReloadsAndRestartsTheMcp) {
  Cluster cluster(ftgm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  const auto gen = cluster.node(0).mcp().generation();
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::sec(2));
  EXPECT_FALSE(cluster.node(0).mcp().hung());
  EXPECT_GT(cluster.node(0).mcp().generation(), gen);
  EXPECT_EQ(cluster.node(0).ftd().stats().recoveries, 1u);
}

TEST(Ftd, PostsFaultEventToEveryOpenPort) {
  Cluster cluster(ftgm_config());
  auto& a = cluster.node(0).open_port(1);
  auto& b = cluster.node(0).open_port(4);
  auto& c = cluster.node(0).open_port(6);
  cluster.run_for(sim::msec(1));
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::sec(3));
  EXPECT_EQ(a.recoveries(), 1u);
  EXPECT_EQ(b.recoveries(), 1u);
  EXPECT_EQ(c.recoveries(), 1u);
}

TEST(Ftd, SecondFatalDuringRecoveryIsCoalesced) {
  Cluster cluster(ftgm_config());
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::msec(100));  // mid-recovery
  cluster.node(0).nic().set_isr_bits(lanai::kIsrIt1);
  cluster.run_for(sim::sec(3));
  EXPECT_EQ(cluster.node(0).ftd().stats().recoveries, 1u);
}

// ---------------- transparent end-to-end recovery ----------------

struct RecoveryRun {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<fi::StreamWorkload> wl;
};

RecoveryRun run_with_hang(int victim, sim::Time hang_at, int msgs = 30,
                          std::uint32_t len = 2048) {
  RecoveryRun r;
  r.cluster = std::make_unique<Cluster>(ftgm_config());
  auto& tx = r.cluster->node(0).open_port(2);
  auto& rx = r.cluster->node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = len;
  r.wl = std::make_unique<fi::StreamWorkload>(tx, rx, wc);
  r.cluster->run_for(sim::usec(900));
  r.wl->start();
  r.cluster->eq().schedule_after(hang_at, [c = r.cluster.get(), victim] {
    c->node(victim).mcp().inject_hang("test");
  });
  r.cluster->run_for(sim::sec(4));
  return r;
}

TEST(Recovery, SenderHangIsTransparent) {
  auto r = run_with_hang(/*victim=*/0, sim::usec(70));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
  EXPECT_EQ(r.cluster->node(0).port(2)->recoveries(), 1u);
}

TEST(Recovery, ReceiverHangIsTransparent) {
  auto r = run_with_hang(/*victim=*/1, sim::usec(70));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
  EXPECT_EQ(r.cluster->node(1).port(3)->recoveries(), 1u);
}

TEST(Recovery, HangMidLargeMessage) {
  auto r = run_with_hang(0, sim::usec(120), /*msgs=*/8, /*len=*/60000);
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->corrupted(), 0);
}

TEST(Recovery, ReceiverHangMidLargeMessage) {
  auto r = run_with_hang(1, sim::usec(120), /*msgs=*/8, /*len=*/60000);
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
}

TEST(Recovery, BothNodesHangAndRecover) {
  RecoveryRun r;
  r.cluster = std::make_unique<Cluster>(ftgm_config());
  auto& tx = r.cluster->node(0).open_port(2);
  auto& rx = r.cluster->node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 25;
  wc.msg_len = 1500;
  r.wl = std::make_unique<fi::StreamWorkload>(tx, rx, wc);
  r.cluster->run_for(sim::usec(900));
  r.wl->start();
  r.cluster->eq().schedule_after(sim::usec(60), [&] {
    r.cluster->node(0).mcp().inject_hang("a");
  });
  r.cluster->eq().schedule_after(sim::usec(90), [&] {
    r.cluster->node(1).mcp().inject_hang("b");
  });
  r.cluster->run_for(sim::sec(6));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
}

TEST(Recovery, SendsPostedDuringOutageCompleteAfterRecovery) {
  Cluster cluster(ftgm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < 4; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  }
  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++received; });

  cluster.node(0).mcp().inject_hang("test");
  cluster.run_for(sim::msec(1));
  // The NIC is dead, but the API keeps accepting sends; the backup store
  // holds them until recovery replays them.
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    gm::Buffer b = tx.alloc_dma_buffer(64);
    EXPECT_TRUE(
        tx.post(b, 64, {.dst = 1, .dst_port = 3,
                        .callback = [&](bool ok) { completed += ok; }}).ok());
  }
  cluster.run_for(sim::sec(3));
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(received, 4);
}

TEST(Recovery, SurvivesTwoSuccessiveFaults) {
  RecoveryRun r;
  r.cluster = std::make_unique<Cluster>(ftgm_config());
  auto& tx = r.cluster->node(0).open_port(2);
  auto& rx = r.cluster->node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 40;
  wc.msg_len = 1024;
  r.wl = std::make_unique<fi::StreamWorkload>(tx, rx, wc);
  r.cluster->run_for(sim::usec(900));
  r.wl->start();
  r.cluster->eq().schedule_after(sim::usec(50), [&] {
    r.cluster->node(0).mcp().inject_hang("first");
  });
  r.cluster->eq().schedule_after(sim::sec(3), [&] {
    r.cluster->node(0).mcp().inject_hang("second");
  });
  r.cluster->run_for(sim::sec(8));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.cluster->node(0).port(2)->recoveries(), 2u);
  EXPECT_EQ(r.wl->duplicates(), 0);
}

TEST(Recovery, BackupStoreDrainsAfterQuiesce) {
  auto r = run_with_hang(0, sim::usec(70));
  ASSERT_TRUE(r.wl->complete());
  // Every send token returned -> its backup copy removed.
  EXPECT_EQ(r.cluster->node(0).port(2)->backup().send_count(), 0u);
  EXPECT_FALSE(r.cluster->node(0).port(2)->recovering());
}

TEST(Recovery, AckTableBackupTracksReceiver) {
  auto r = run_with_hang(1, sim::usec(70), 20, 512);
  ASSERT_TRUE(r.wl->complete());
  const auto& ack = r.cluster->node(1).port(3)->backup().ack_table();
  ASSERT_EQ(ack.size(), 1u);  // one incoming stream (node0, port2)
  // 20 single-fragment messages: last seq is 19.
  EXPECT_EQ(ack.begin()->second.last_seq, 19u);
}

TEST(Recovery, RoutesRestoredFromDriverMirror) {
  auto r = run_with_hang(0, sim::usec(70));
  ASSERT_TRUE(r.wl->complete());
  EXPECT_EQ(r.cluster->node(0).nic().num_routes(), 1u);
  EXPECT_TRUE(r.cluster->node(0).nic().route(1) != nullptr);
}

// ---------------- Figure 4: duplicate messages in naive GM ----------------

// Drive: 20 delivered messages, then a sender-NIC crash + naive reload
// (reset, reload MCP, reopen port — but no FTGM state restoration). The
// application retries its unacknowledged message; the reloaded MCP numbers
// it from 0; the receiver NACKs with its expected sequence number; GM
// resynchronizes and the receiver accepts a message the application
// already consumed: a duplicate.
TEST(Figure4, NaiveGmReloadDeliversDuplicate) {
  Cluster cluster(gm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {32, 32});
  cluster.run_for(sim::usec(900));

  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo& info) {
    ++received;
    rx.provide_receive_buffer(info.buffer);
  });
  for (int i = 0; i < 24; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  }
  gm::Buffer b = tx.alloc_dma_buffer(64);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                                .callback = [&](bool) { ++completed; }}).ok());
    cluster.run_for(sim::msec(1));
  }
  ASSERT_EQ(received, 20);
  ASSERT_EQ(completed, 20);

  // Send message 21 and crash the sender NIC the moment the receiver has
  // ACKed it (the ACK is "in transit": the sender never processes it).
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3}).ok());
  const auto acked = [&] {
    return cluster.node(1).mcp().stats().acks_tx >= 21;
  };
  while (!acked() && cluster.eq().step()) {
  }
  ASSERT_TRUE(acked());
  cluster.node(0).mcp().inject_hang("crash with ACK in transit");
  cluster.run_for(sim::msec(2));
  ASSERT_EQ(received, 21);  // receiver consumed message 21

  // Naive recovery: reset + reload + reopen. No sequence restoration.
  cluster.node(0).nic().reset();
  cluster.node(0).driver().reload_mcp();
  cluster.node(0).driver().register_page_hash();
  cluster.node(0).driver().restore_routes();
  cluster.node(0).driver().open_port(2);
  cluster.run_for(sim::usec(600));

  // The application never saw a completion for message 21, so it retries.
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3}).ok());
  cluster.run_for(sim::msec(10));

  // The receiver accepted the retry as a NEW message: a duplicate.
  EXPECT_EQ(received, 22);
  EXPECT_GT(cluster.node(0).mcp().stats().nacks_rx, 0u);
}

// The same crash under FTGM: host-generated sequence numbers are restored
// from the backup, the replayed send carries its original numbers, and the
// receiver's MCP drops it as a duplicate — the application sees it once.
TEST(Figure4, FtgmRecoveryDeliversExactlyOnce) {
  Cluster cluster(ftgm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {32, 32});
  cluster.run_for(sim::usec(900));

  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo& info) {
    ++received;
    rx.provide_receive_buffer(info.buffer);
  });
  for (int i = 0; i < 24; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  }
  gm::Buffer b = tx.alloc_dma_buffer(64);
  for (int i = 0; i < 20; ++i) {
    (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
    cluster.run_for(sim::msec(1));
  }
  ASSERT_EQ(received, 20);

  int late_completed = 0;
  ASSERT_TRUE(
      tx.post(b, 64, {.dst = 1, .dst_port = 3,
                      .callback = [&](bool ok) { late_completed += ok; }})
          .ok());
  while (cluster.node(1).mcp().stats().acks_tx < 21 && cluster.eq().step()) {
  }
  cluster.node(0).mcp().inject_hang("crash with ACK in transit");
  // Full FTGM recovery (watchdog -> FTD -> FAULT_DETECTED replay).
  cluster.run_for(sim::sec(3));

  EXPECT_EQ(received, 21);        // exactly once, no duplicate
  EXPECT_EQ(late_completed, 1);   // and the send callback eventually fired
}

// ---------------- Figure 5: lost messages in GM ----------------

// GM ACKs on acceptance, before the DMA/event reach the host. A crash in
// that window convinces the sender the message arrived while the receiving
// application never sees it: lost forever.
TEST(Figure5, GmEarlyAckLosesMessageOnReceiverCrash) {
  Cluster cluster(gm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++received; });

  bool send_ok = false;
  gm::Buffer b = tx.alloc_dma_buffer(64);
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                              .callback = [&](bool ok) { send_ok = ok; }})
                  .ok());

  // Step until the receiver's MCP has sent the ACK, then hang it before
  // the RECV event is posted to the host.
  while (cluster.node(1).mcp().stats().acks_tx < 1 && cluster.eq().step()) {
  }
  ASSERT_EQ(cluster.node(1).mcp().stats().events_posted, 0u);
  cluster.node(1).mcp().inject_hang("crash between ACK and host DMA");
  cluster.run_for(sim::msec(10));

  EXPECT_TRUE(send_ok);     // sender believes the message arrived
  EXPECT_EQ(received, 0);   // the application never gets it: lost
}

// FTGM delays the final ACK until the payload DMA and the RECV event have
// committed, so the same crash leaves the sender unacknowledged; recovery
// replays and the message is delivered exactly once.
TEST(Figure5, FtgmDelayedAckPreventsLoss) {
  Cluster cluster(ftgm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  int received = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++received; });

  bool send_ok = false;
  gm::Buffer b = tx.alloc_dma_buffer(64);
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                              .callback = [&](bool ok) { send_ok = ok; }})
                  .ok());

  // In FTGM no ACK may exist before the event post; crash right before
  // the ACK would go out.
  while (cluster.node(1).mcp().stats().events_posted < 1 &&
         cluster.eq().step()) {
  }
  EXPECT_EQ(cluster.node(1).mcp().stats().acks_tx, 0u);
  cluster.node(1).mcp().inject_hang("crash between event and ACK");
  cluster.run_for(sim::sec(3));

  EXPECT_TRUE(send_ok);
  EXPECT_EQ(received, 1);  // delivered exactly once despite the crash
}

TEST(Figure5, FtgmAckOrderInvariantDuringNormalOperation) {
  // The commit-point ordering must hold for every message: the RECV event
  // (host DMA) always precedes the stream's ACK.
  Cluster cluster(ftgm_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  rx.set_receive_handler([&](const gm::RecvInfo& info) {
    rx.provide_receive_buffer(info.buffer);
  });
  gm::Buffer b = tx.alloc_dma_buffer(64);
  for (int i = 0; i < 10; ++i) {
    (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
    // Single-fragment messages: events_posted must never lag acks_tx.
    while (cluster.node(0).port(2)->stats().sends_completed ==
               static_cast<std::uint64_t>(i) &&
           cluster.eq().step()) {
      const auto& s = cluster.node(1).mcp().stats();
      ASSERT_GE(s.events_posted, s.acks_tx);
    }
  }
}

}  // namespace
}  // namespace myri
