// gm_get (RDMA read): remote memory fetches served by the target MCP as
// notify-flagged directed puts, with host-level idempotent retry and
// survival across NIC recovery.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

struct GetWorld {
  explicit GetWorld(mcp::McpMode mode, net::LinkFaults faults = {}) {
    ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mode;
    cc.faults = faults;
    cluster = std::make_unique<Cluster>(cc);
    reader = &cluster->node(0).open_port(2);
    target = &cluster->node(1).open_port(3);
    cluster->run_for(sim::usec(900));
    // The target's exported region, filled with a known pattern.
    exported = target->alloc_dma_buffer(16 * 1024);
    auto bytes = cluster->node(1).memory().at(exported.addr, 16 * 1024);
    for (std::uint32_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::byte>((i * 13 + 5) & 0xff);
    }
    local = reader->alloc_dma_buffer(16 * 1024);
  }
  bool local_matches(std::uint32_t len, std::uint32_t remote_off = 0) {
    auto got = cluster->node(0).memory().at(local.addr, len);
    for (std::uint32_t i = 0; i < len; ++i) {
      const auto want =
          static_cast<std::byte>(((i + remote_off) * 13 + 5) & 0xff);
      if (got[i] != want) return false;
    }
    return true;
  }
  std::unique_ptr<Cluster> cluster;
  gm::Port* reader = nullptr;
  gm::Port* target = nullptr;
  gm::Buffer exported, local;
};

TEST(GmGet, FetchesRemoteMemory) {
  GetWorld w(mcp::McpMode::kGm);
  bool ok = false, fired = false;
  w.reader->get_with_callback(
      w.local, 512, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
      [&](bool r) {
        ok = r;
        fired = true;
      });
  w.cluster->run_for(sim::msec(5));
  ASSERT_TRUE(fired);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(w.local_matches(512));
  EXPECT_EQ(w.cluster->node(1).mcp().stats().gets_served, 1u);
}

TEST(GmGet, FetchWithOffset) {
  GetWorld w(mcp::McpMode::kFtgm);
  bool ok = false;
  w.reader->get_with_callback(
      w.local, 256, 1, 3,
      static_cast<std::uint32_t>(w.exported.addr + 1000),
      [&](bool r) { ok = r; });
  w.cluster->run_for(sim::msec(5));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(w.local_matches(256, 1000));
}

TEST(GmGet, MultiFragmentFetch) {
  GetWorld w(mcp::McpMode::kFtgm);
  bool ok = false;
  w.reader->get_with_callback(
      w.local, 12 * 1024, 1, 3,
      static_cast<std::uint32_t>(w.exported.addr), [&](bool r) { ok = r; });
  w.cluster->run_for(sim::msec(10));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(w.local_matches(12 * 1024));
}

TEST(GmGet, ConsumesNoTokensOnEitherSide) {
  GetWorld w(mcp::McpMode::kGm);
  const auto reader_tokens = w.reader->send_tokens_free();
  const auto target_tokens = w.target->recv_tokens_free();
  bool ok = false;
  w.reader->get_with_callback(
      w.local, 64, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
      [&](bool r) { ok = r; });
  w.cluster->run_for(sim::msec(5));
  ASSERT_TRUE(ok);
  EXPECT_EQ(w.reader->send_tokens_free(), reader_tokens);
  EXPECT_EQ(w.target->recv_tokens_free(), target_tokens);
  EXPECT_EQ(w.target->stats().msgs_received, 0u);
}

TEST(GmGet, UnregisteredRemoteMemoryFailsAfterRetries) {
  GetWorld w(mcp::McpMode::kGm);
  bool ok = true, fired = false;
  // 0x2000 is host memory the target never registered for port 3.
  w.reader->get_with_callback(w.local, 64, 1, 3, 0x2000, [&](bool r) {
    ok = r;
    fired = true;
  });
  w.cluster->run_for(sim::sec(4));  // let the full retry budget exhaust
  EXPECT_TRUE(fired);
  EXPECT_FALSE(ok);
  EXPECT_GT(w.cluster->node(1).mcp().stats().unmapped_dma_refusals, 0u);
}

TEST(GmGet, RetriesMaskLossyLinks) {
  net::LinkFaults f;
  f.drop_prob = 0.15;
  GetWorld w(mcp::McpMode::kFtgm, f);
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    w.reader->get_with_callback(
        w.local, 2048, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
        [&](bool r) { ok += r; });
    w.cluster->run_for(sim::msec(40));
  }
  EXPECT_EQ(ok, 5);
  EXPECT_TRUE(w.local_matches(2048));
}

TEST(GmGet, SurvivesTargetNicRecovery) {
  GetWorld w(mcp::McpMode::kFtgm);
  // Hang the target's NIC, then immediately issue a get: the host-level
  // retry keeps re-requesting until the recovered MCP serves it.
  w.cluster->node(1).mcp().inject_hang("target down");
  bool ok = false, fired = false;
  w.reader->get_with_callback(
      w.local, 1024, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
      [&](bool r) {
        ok = r;
        fired = true;
      });
  w.cluster->run_for(sim::sec(4));
  ASSERT_TRUE(fired);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(w.local_matches(1024));
}

TEST(GmGet, DuplicateResponsesAreHarmless) {
  // Force a duplicate by issuing two identical gets back to back; each has
  // its own correlation id, but both write the same local buffer — last
  // writer wins with identical bytes (idempotent).
  GetWorld w(mcp::McpMode::kGm);
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    w.reader->get_with_callback(
        w.local, 128, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
        [&](bool r) { done += r; });
  }
  w.cluster->run_for(sim::msec(10));
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(w.local_matches(128));
  EXPECT_EQ(w.cluster->node(1).mcp().stats().gets_served, 2u);
}

TEST(GmGet, SurvivesRequesterNicRecovery) {
  // The REQUESTER's NIC hangs while gets are pending: recovery restores
  // the internal stream's ACK table from the GOT-event backup, and the
  // host-level retry re-requests anything that was lost.
  GetWorld w(mcp::McpMode::kFtgm);
  int done = 0, ok = 0;
  for (int i = 0; i < 3; ++i) {
    w.reader->get_with_callback(
        w.local, 2048, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
        [&](bool r) {
          ++done;
          ok += r;
        });
  }
  w.cluster->eq().schedule_after(sim::usec(12), [&] {
    w.cluster->node(0).mcp().inject_hang("requester down");
  });
  w.cluster->run_for(sim::sec(4));
  EXPECT_EQ(done, 3);
  EXPECT_EQ(ok, 3);
  EXPECT_TRUE(w.local_matches(2048));
}

TEST(GmGet, InterleavesWithRegularTraffic) {
  GetWorld w(mcp::McpMode::kFtgm);
  w.target->provide_receive_buffer(w.target->alloc_dma_buffer(256));
  int msgs = 0;
  w.target->set_receive_handler([&](const gm::RecvInfo&) { ++msgs; });
  bool got = false;
  gm::Buffer sbuf = w.reader->alloc_dma_buffer(128);
  (void)w.reader->post(sbuf, 128, {.dst = 1, .dst_port = 3});
  w.reader->get_with_callback(
      w.local, 256, 1, 3, static_cast<std::uint32_t>(w.exported.addr),
      [&](bool r) { got = r; });
  w.cluster->run_for(sim::msec(10));
  EXPECT_EQ(msgs, 1);
  EXPECT_TRUE(got);
  EXPECT_TRUE(w.local_matches(256));
}

}  // namespace
}  // namespace myri
