// GM user-library tests: token discipline, callbacks, buffers, event pump.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"

namespace myri::gm {
namespace {

ClusterConfig two_nodes(mcp::McpMode mode = mcp::McpMode::kGm) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  return cc;
}

TEST(GmPort, SendTokensAreFinite) {
  Cluster cluster(two_nodes());
  auto& p = cluster.node(0).open_port(2, {4, 4});
  cluster.run_for(sim::usec(900));
  Buffer b = p.alloc_dma_buffer(64);
  EXPECT_EQ(p.send_tokens_free(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(p.post(b, 64, {.dst = 1, .dst_port = 3}).ok());
  }
  EXPECT_EQ(p.send_tokens_free(), 0u);
  EXPECT_FALSE(p.post(b, 64, {.dst = 1, .dst_port = 3}).ok());  // no token
}

TEST(GmPort, TokensReturnOnCompletion) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2, {4, 4});
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  Buffer rb = rx.alloc_dma_buffer(128);
  rx.provide_receive_buffer(rb);
  Buffer b = tx.alloc_dma_buffer(64);
  EXPECT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3}).ok());
  EXPECT_EQ(tx.send_tokens_free(), 3u);
  cluster.run_for(sim::msec(2));
  EXPECT_EQ(tx.send_tokens_free(), 4u);
}

TEST(GmPort, RecvTokensAreFinite) {
  Cluster cluster(two_nodes());
  auto& p = cluster.node(0).open_port(2, {4, 2});
  cluster.run_for(sim::usec(900));
  Buffer a = p.alloc_dma_buffer(64);
  Buffer b = p.alloc_dma_buffer(64);
  Buffer c = p.alloc_dma_buffer(64);
  EXPECT_TRUE(p.provide_receive_buffer(a));
  EXPECT_TRUE(p.provide_receive_buffer(b));
  EXPECT_FALSE(p.provide_receive_buffer(c));  // out of receive tokens
  EXPECT_EQ(p.recv_tokens_free(), 0u);
}

TEST(GmPort, RecvTokenReturnsOnReceive) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {16, 2});
  cluster.run_for(sim::usec(900));
  Buffer rb = rx.alloc_dma_buffer(128);
  rx.provide_receive_buffer(rb);
  EXPECT_EQ(rx.recv_tokens_free(), 1u);
  Buffer sb = tx.alloc_dma_buffer(64);
  (void)tx.post(sb, 64, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(2));
  EXPECT_EQ(rx.recv_tokens_free(), 2u);
}

TEST(GmPort, InvalidBufferRejected) {
  Cluster cluster(two_nodes());
  auto& p = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  Buffer invalid;
  EXPECT_FALSE(p.post(invalid, 10, {.dst = 1, .dst_port = 3}).ok());
  EXPECT_FALSE(p.provide_receive_buffer(invalid));
  Buffer b = p.alloc_dma_buffer(16);
  EXPECT_FALSE(p.post(b, 32, {.dst = 1, .dst_port = 3}).ok());  // len > buffer size
}

TEST(GmPort, AllocRegistersPages) {
  Cluster cluster(two_nodes());
  auto& p = cluster.node(0).open_port(2);
  Buffer b = p.alloc_dma_buffer(10000);  // spans 3+ pages
  ASSERT_TRUE(b.valid());
  auto& pht = cluster.node(0).page_hash();
  EXPECT_TRUE(pht.lookup(2, b.addr));
  EXPECT_TRUE(pht.lookup(2, b.addr + 9999));
  EXPECT_FALSE(pht.lookup(5, b.addr));  // other ports don't see it
}

TEST(GmPort, CallbacksFireInCompletionOrder) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {16, 16});
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < 6; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  }
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    Buffer b = tx.alloc_dma_buffer(64);
    ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                                .callback = [&order, i](bool) {
                                  order.push_back(i);
                                }}).ok());
  }
  cluster.run_for(sim::msec(5));
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

TEST(GmPort, ReceiveHandlerSeesCorrectMetadata) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  Buffer rb = rx.alloc_dma_buffer(256);
  rx.provide_receive_buffer(rb);
  RecvInfo seen;
  rx.set_receive_handler([&](const RecvInfo& info) { seen = info; });
  Buffer sb = tx.alloc_dma_buffer(100);
  (void)tx.post(sb, 100, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(2));
  EXPECT_EQ(seen.len, 100u);
  EXPECT_EQ(seen.src, 0u);
  EXPECT_EQ(seen.src_port, 2u);
  EXPECT_EQ(seen.buffer.addr, rb.addr);
}

TEST(GmPort, ZeroCopyDataLandsInProvidedBuffer) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  Buffer rb = rx.alloc_dma_buffer(64);
  rx.provide_receive_buffer(rb);
  Buffer sb = tx.alloc_dma_buffer(64);
  auto src = cluster.node(0).memory().at(sb.addr, 64);
  for (int i = 0; i < 64; ++i) src[i] = static_cast<std::byte>(i * 3);
  (void)tx.post(sb, 64, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(2));
  auto dst = cluster.node(1).memory().at(rb.addr, 64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(dst[i], static_cast<std::byte>(i * 3)) << "byte " << i;
  }
}

TEST(GmPort, StatsTrackTraffic) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < 3; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(300));
  }
  for (int i = 0; i < 3; ++i) {
    (void)tx.post(tx.alloc_dma_buffer(300), 300, {.dst = 1, .dst_port = 3});
  }
  cluster.run_for(sim::msec(3));
  EXPECT_EQ(tx.stats().sends_posted, 3u);
  EXPECT_EQ(tx.stats().sends_completed, 3u);
  EXPECT_EQ(tx.stats().bytes_sent, 900u);
  EXPECT_EQ(rx.stats().msgs_received, 3u);
  EXPECT_EQ(rx.stats().bytes_received, 900u);
}

TEST(GmPort, HostCpuChargedPerApiCall) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  const auto before = cluster.node(0).cpu().busy_ns();
  Buffer b = tx.alloc_dma_buffer(64);
  (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(1));
  // GM send overhead is 0.30 us (paper Table 2).
  EXPECT_GE(cluster.node(0).cpu().busy_ns() - before, sim::usecf(0.30));
}

TEST(GmPort, FtgmChargesBackupOverhead) {
  Cluster gm_cluster(two_nodes(mcp::McpMode::kGm));
  Cluster ft_cluster(two_nodes(mcp::McpMode::kFtgm));
  for (Cluster* c : {&gm_cluster, &ft_cluster}) {
    auto& tx = c->node(0).open_port(2);
    auto& rx = c->node(1).open_port(3);
    c->run_for(sim::usec(900));
    rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
    (void)tx.post(tx.alloc_dma_buffer(64), 64, {.dst = 1, .dst_port = 3});
    c->run_for(sim::msec(2));
  }
  // FTGM's send path costs ~0.25 us more host CPU (token backup).
  EXPECT_GT(ft_cluster.node(0).cpu().busy_ns(),
            gm_cluster.node(0).cpu().busy_ns());
}

TEST(GmPort, PendingEventsDrainInOrder) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {32, 32});
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < 10; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(64));
  }
  std::vector<std::uint32_t> lens;
  rx.set_receive_handler([&](const RecvInfo& info) {
    lens.push_back(info.len);
  });
  for (std::uint32_t i = 1; i <= 10; ++i) {
    (void)tx.post(tx.alloc_dma_buffer(64), i, {.dst = 1, .dst_port = 3});
  }
  cluster.run_for(sim::msec(5));
  ASSERT_EQ(lens.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(lens[i], i + 1);
}

TEST(GmPort, ClosePortStopsDelivery) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(64));
  cluster.node(1).close_port(3);
  cluster.run_for(sim::usec(900));  // let the close command land
  Buffer b = tx.alloc_dma_buffer(64);
  bool fired = false;
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                              .callback = [&](bool) { fired = true; }}).ok());
  cluster.run_for(sim::msec(3));
  EXPECT_FALSE(fired);  // receiver port closed: packets dropped, no ACK
}

TEST(GmNode, OpenPortsListsThem) {
  Cluster cluster(two_nodes());
  cluster.node(0).open_port(1);
  cluster.node(0).open_port(5);
  const auto ports = cluster.node(0).open_ports();
  EXPECT_EQ(ports, (std::vector<std::uint8_t>{1, 5}));
}

TEST(GmNode, GmModeHasNoFtd) {
  Cluster cluster(two_nodes(mcp::McpMode::kGm));
  EXPECT_FALSE(cluster.node(0).has_ftd());
  Cluster ft(two_nodes(mcp::McpMode::kFtgm));
  EXPECT_TRUE(ft.node(0).has_ftd());
}

TEST(GmNode, AllocPinnedExhaustion) {
  ClusterConfig cc = two_nodes();
  cc.host_mem_bytes = 2u << 20;  // 1 MB kernel + 1 MB pool
  Cluster cluster(cc);
  auto& p = cluster.node(0).open_port(2);
  Buffer big = p.alloc_dma_buffer(900 * 1024);
  EXPECT_TRUE(big.valid());
  Buffer more = p.alloc_dma_buffer(900 * 1024);
  EXPECT_FALSE(more.valid());
}

}  // namespace
}  // namespace myri::gm
