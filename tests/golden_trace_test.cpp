// Golden-trace regression for the FTGM recovery sequence.
//
// Records the kFt trace of a short two-node run with one injected NIC
// hang and compares it, line for line, against the checked-in golden
// file. The virtual-time simulation is deterministic, so any divergence
// — an extra wakeup, a reordered phase, a shifted timestamp — is a real
// behavioural change in the watchdog/FTD pipeline and must be reviewed.
//
// To regenerate after an intentional change:
//   MYRI_REGEN_GOLDEN=1 ./golden_trace_test
// then commit the updated tests/data/ftgm_recovery_trace.golden.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gm/cluster.hpp"
#include "mapper/failover.hpp"
#include "sim/trace.hpp"

#ifndef MYRI_GOLDEN_DIR
#error "MYRI_GOLDEN_DIR must point at the checked-in golden files"
#endif

namespace myri {
namespace {

std::string golden_path() {
  return std::string(MYRI_GOLDEN_DIR) + "/ftgm_recovery_trace.golden";
}

/// The recorded scene: two FTGM nodes, one verified message each way to
/// prove liveness, a hang on node 0 mid-run, and enough virtual time for
/// the full watchdog -> FATAL -> reload -> replay recovery to finish.
std::string record_recovery_trace() {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  cc.seed = 2003;
  gm::Cluster cluster(cc);

  std::ostringstream out;
  sim::Trace t;
  t.enable(sim::TraceCat::kFt, &out);   // watchdog wakeups, FTD phases
  t.enable(sim::TraceCat::kMcp, &out);  // the hang itself
  cluster.set_trace(&t);

  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(256));
  gm::Buffer b = tx.alloc_dma_buffer(256);
  (void)tx.post(b, 256, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(1));

  cluster.node(0).mcp().inject_hang("golden");
  cluster.run_for(sim::sec(3));  // detection + confirmation + recovery
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(GoldenTrace, FtgmRecoverySequenceMatchesGolden) {
  const std::string got = record_recovery_trace();

  if (std::getenv("MYRI_REGEN_GOLDEN") != nullptr) {
    std::ofstream f(golden_path(), std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
    f << got;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream f(golden_path());
  ASSERT_TRUE(f.good())
      << "missing golden file " << golden_path()
      << " — run with MYRI_REGEN_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << f.rdbuf();

  const std::vector<std::string> want = lines_of(buf.str());
  const std::vector<std::string> have = lines_of(got);
  // Line-by-line diff gives a reviewable failure message, unlike one big
  // string compare.
  const std::size_t n = std::min(want.size(), have.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(have[i], want[i]) << "trace diverges at line " << (i + 1);
    if (have[i] != want[i]) break;
  }
  EXPECT_EQ(have.size(), want.size());
}

TEST(GoldenTrace, RecordingIsDeterministic) {
  // The premise of the golden file: same seed, same trace, bit for bit.
  EXPECT_EQ(record_recovery_trace(), record_recovery_trace());
}

// ---- route control plane (DESIGN.md section 11) ------------------------

std::string route_epoch_golden_path() {
  return std::string(MYRI_GOLDEN_DIR) + "/route_epoch_trace.golden";
}

/// The recorded scene: a 4-node ring brought up under the FailoverManager
/// (epoch 1), one card swallowing MAP_ROUTE chunks until the ack retries
/// push through, then a trunk kill forcing a remap to epoch 2. The kMapper
/// trace pins the epoch pushes, retry rounds and convergence points.
std::string record_route_epoch_trace() {
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.fabric = net::FabricPreset::kRing;
  cc.switch_ports = 3;  // one host per switch: a real 4-trunk ring
  cc.seed = 2003;
  gm::Cluster cluster(cc);
  mapper::FailoverManager fm(cluster);

  std::ostringstream out;
  sim::Trace t;
  t.enable(sim::TraceCat::kMapper, &out);
  fm.set_trace(&t);

  cluster.node(2).mcp().drop_next_map_routes(2);
  fm.remap_now();
  cluster.run_for(sim::msec(50));
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[0], true);
  cluster.run_for(sim::msec(50));
  return out.str();
}

TEST(GoldenTrace, RouteEpochDistributionMatchesGolden) {
  const std::string got = record_route_epoch_trace();

  if (std::getenv("MYRI_REGEN_GOLDEN") != nullptr) {
    std::ofstream f(route_epoch_golden_path(), std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write " << route_epoch_golden_path();
    f << got;
    GTEST_SKIP() << "regenerated " << route_epoch_golden_path();
  }

  std::ifstream f(route_epoch_golden_path());
  ASSERT_TRUE(f.good())
      << "missing golden file " << route_epoch_golden_path()
      << " — run with MYRI_REGEN_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << f.rdbuf();

  const std::vector<std::string> want = lines_of(buf.str());
  const std::vector<std::string> have = lines_of(got);
  const std::size_t n = std::min(want.size(), have.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(have[i], want[i]) << "trace diverges at line " << (i + 1);
    if (have[i] != want[i]) break;
  }
  EXPECT_EQ(have.size(), want.size());
}

TEST(GoldenTrace, RouteEpochRecordingIsDeterministic) {
  EXPECT_EQ(record_route_epoch_trace(), record_route_epoch_trace());
}

}  // namespace
}  // namespace myri
