// Unit tests for host memory, pinned allocation, page hash, PCI, interrupts.
#include <gtest/gtest.h>

#include <array>

#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/pci.hpp"
#include "host/timing.hpp"
#include "sim/event_queue.hpp"

namespace myri::host {
namespace {

TEST(HostMemory, ReadWriteRoundTrip) {
  HostMemory mem(4096);
  std::array<std::byte, 4> data{std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  EXPECT_TRUE(mem.write(100, data));
  std::array<std::byte, 4> out{};
  EXPECT_TRUE(mem.read(100, out));
  EXPECT_EQ(out, data);
}

TEST(HostMemory, OutOfRangeRejected) {
  HostMemory mem(128);
  std::array<std::byte, 4> data{};
  EXPECT_FALSE(mem.write(126, data));
  EXPECT_FALSE(mem.read(1000, data));
  EXPECT_TRUE(mem.at(1000, 4).empty());
}

TEST(HostMemory, BoundaryExactFits) {
  HostMemory mem(128);
  std::array<std::byte, 4> data{};
  EXPECT_TRUE(mem.write(124, data));
  EXPECT_EQ(mem.at(124, 4).size(), 4u);
}

TEST(HostMemory, OverflowAddressDoesNotWrap) {
  HostMemory mem(128);
  EXPECT_TRUE(mem.at(~0ull, 4).empty());
}

TEST(PinnedAllocator, AllocationsAreDisjoint) {
  PinnedAllocator pa(0x1000, 0x10000);
  auto a = pa.alloc(256);
  auto b = pa.alloc(256);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(*a + 256 <= *b || *b + 256 <= *a);
}

TEST(PinnedAllocator, RespectsAlignment) {
  PinnedAllocator pa(0x1001, 0x10000);
  auto a = pa.alloc(10, 64);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a % 64, 0u);
}

TEST(PinnedAllocator, IsPinnedTracksLiveRegions) {
  PinnedAllocator pa(0x1000, 0x10000);
  auto a = pa.alloc(512);
  ASSERT_TRUE(a);
  EXPECT_TRUE(pa.is_pinned(*a, 512));
  EXPECT_TRUE(pa.is_pinned(*a + 100, 100));
  EXPECT_FALSE(pa.is_pinned(*a, 513));
  EXPECT_FALSE(pa.is_pinned(0x20, 4));  // below the pool
}

TEST(PinnedAllocator, FreeUnpins) {
  PinnedAllocator pa(0x1000, 0x10000);
  auto a = pa.alloc(512);
  ASSERT_TRUE(a);
  pa.free(*a);
  EXPECT_FALSE(pa.is_pinned(*a, 512));
  EXPECT_EQ(pa.bytes_in_use(), 0u);
}

TEST(PinnedAllocator, ReusesFreedRegions) {
  PinnedAllocator pa(0x1000, 0x1000);  // small pool
  auto a = pa.alloc(0x800);
  ASSERT_TRUE(a);
  EXPECT_FALSE(pa.alloc(0x900));  // does not fit
  pa.free(*a);
  auto b = pa.alloc(0x700);
  EXPECT_TRUE(b);  // satisfied from the free list
}

TEST(PinnedAllocator, ExhaustionReturnsNullopt) {
  PinnedAllocator pa(0, 1024);
  EXPECT_TRUE(pa.alloc(1000));
  EXPECT_FALSE(pa.alloc(1000));
}

TEST(PinnedAllocator, ZeroLengthAllocSucceeds) {
  PinnedAllocator pa(0, 1024);
  EXPECT_TRUE(pa.alloc(0));
}

TEST(PageHashTable, LookupWithinPage) {
  PageHashTable t;
  t.map(2, 0x10000, 0x10000);
  auto r = t.lookup(2, 0x10123);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, 0x10123u);
}

TEST(PageHashTable, MissingPageIsNullopt) {
  PageHashTable t;
  t.map(2, 0x10000, 0x10000);
  EXPECT_FALSE(t.lookup(2, 0x20000));
}

TEST(PageHashTable, PortsAreIsolated) {
  PageHashTable t;
  t.map(2, 0x10000, 0x10000);
  EXPECT_FALSE(t.lookup(3, 0x10000));
}

TEST(PageHashTable, UnmapPortRemovesOnlyThatPort) {
  PageHashTable t;
  t.map(2, 0x10000, 0x10000);
  t.map(3, 0x10000, 0x10000);
  t.unmap_port(2);
  EXPECT_FALSE(t.lookup(2, 0x10000));
  EXPECT_TRUE(t.lookup(3, 0x10000));
}

TEST(PageHashTable, NonIdentityMapping) {
  PageHashTable t;
  t.map(0, 0x5000, 0x9000);
  auto r = t.lookup(0, 0x5010);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, 0x9010u);
}

TEST(PciBus, DmaTimeMatchesRatePlusSetup) {
  sim::EventQueue eq;
  PciTiming cfg;
  cfg.mb_per_s = 100.0;  // 1000 bytes -> 10 us
  cfg.dma_setup = sim::usecf(1.0);
  PciBus pci(eq, cfg);
  sim::Time done = 0;
  pci.dma(1000, [&] { done = eq.now(); });
  eq.run();
  EXPECT_EQ(done, sim::usec(11));
}

TEST(PciBus, TransactionsSerialize) {
  sim::EventQueue eq;
  PciTiming cfg;
  cfg.mb_per_s = 100.0;
  cfg.dma_setup = 0;
  PciBus pci(eq, cfg);
  sim::Time first = 0, second = 0;
  pci.dma(1000, [&] { first = eq.now(); });
  pci.dma(1000, [&] { second = eq.now(); });
  eq.run();
  EXPECT_EQ(first, sim::usec(10));
  EXPECT_EQ(second, sim::usec(20));
}

TEST(PciBus, BusyTimeAccounted) {
  sim::EventQueue eq;
  PciTiming cfg;
  cfg.mb_per_s = 100.0;
  cfg.dma_setup = 0;
  PciBus pci(eq, cfg);
  pci.dma(500, [] {});
  pci.dma(500, [] {});
  eq.run();
  EXPECT_EQ(pci.busy_time(), sim::usec(10));
  EXPECT_EQ(pci.transactions(), 2u);
}

TEST(PciBus, PioCostApplies) {
  sim::EventQueue eq;
  PciTiming cfg;
  cfg.pio = 150;
  PciBus pci(eq, cfg);
  sim::Time done = 0;
  pci.pio([&] { done = eq.now(); });
  eq.run();
  EXPECT_EQ(done, 150u);
}

TEST(Interrupts, HandlerRunsAfterLatency) {
  sim::EventQueue eq;
  InterruptTiming cfg;
  cfg.latency = sim::usec(13);
  InterruptController irq(eq, cfg);
  sim::Time fired = 0;
  irq.set_handler(IrqLine::kFatal, [&] { fired = eq.now(); });
  irq.raise(IrqLine::kFatal);
  eq.run();
  EXPECT_EQ(fired, sim::usec(13));
  EXPECT_EQ(irq.delivered(IrqLine::kFatal), 1u);
}

TEST(Interrupts, PendingRaisesCoalesce) {
  sim::EventQueue eq;
  InterruptController irq(eq, {});
  int count = 0;
  irq.set_handler(IrqLine::kFatal, [&] { ++count; });
  irq.raise(IrqLine::kFatal);
  irq.raise(IrqLine::kFatal);
  irq.raise(IrqLine::kFatal);
  eq.run();
  EXPECT_EQ(count, 1);
}

TEST(Interrupts, RearmsAfterDelivery) {
  sim::EventQueue eq;
  InterruptController irq(eq, {});
  int count = 0;
  irq.set_handler(IrqLine::kFatal, [&] { ++count; });
  irq.raise(IrqLine::kFatal);
  eq.run();
  irq.raise(IrqLine::kFatal);
  eq.run();
  EXPECT_EQ(count, 2);
}

TEST(Interrupts, LinesAreIndependent) {
  sim::EventQueue eq;
  InterruptController irq(eq, {});
  int fatal = 0, recv = 0;
  irq.set_handler(IrqLine::kFatal, [&] { ++fatal; });
  irq.set_handler(IrqLine::kRecvEvent, [&] { ++recv; });
  irq.raise(IrqLine::kRecvEvent);
  eq.run();
  EXPECT_EQ(fatal, 0);
  EXPECT_EQ(recv, 1);
}

TEST(Timing, DefaultsMatchPaperTable2) {
  const HostTiming t;
  EXPECT_EQ(t.send_api_overhead, sim::usecf(0.30));
  EXPECT_EQ(t.recv_api_overhead, sim::usecf(0.75));
  EXPECT_EQ(t.ftgm_send_backup, sim::usecf(0.25));
  EXPECT_EQ(t.ftgm_recv_backup, sim::usecf(0.40));
}

TEST(Timing, WatchdogArmedAboveMaxLTimerGap) {
  const WatchdogTiming w;
  EXPECT_GT(w.it1_interval, w.l_timer_max_gap);
  EXPECT_GT(w.l_timer_max_gap, w.l_timer_interval);
}

TEST(Timing, LanaiCycleTime) {
  LanaiTiming t;
  t.cpu_mhz = 132.0;
  EXPECT_EQ(t.cycle_time_ns(), 8u);  // rounded 7.57 ns
}

}  // namespace
}  // namespace myri::host
