// Whole-system integration scenarios: mapper + FTGM + recovery combined,
// multi-node isolation during recovery, priority scheduling, determinism,
// and interpreter robustness under arbitrary code (fuzz).
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "lanai/cpu.hpp"
#include "mapper/mapper.hpp"
#include "sim/rng.hpp"

namespace myri {
namespace {

TEST(Integration, MapperThenRecoveryOnMappedFabric) {
  // Routes learnt by the mapper must survive an FTD recovery (the FTD
  // restores them from the driver's mirror, which the MCP populated when
  // it handled the MAP_ROUTE packets).
  sim::EventQueue eq;
  sim::Rng rng(5);
  net::Topology topo(eq, rng);
  const auto s0 = topo.add_switch(8);
  const auto s1 = topo.add_switch(8);
  topo.connect_switches(s0, 7, s1, 7);

  std::vector<std::unique_ptr<gm::Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    gm::Node::Config nc;
    nc.id = static_cast<net::NodeId>(i);
    nc.mode = mcp::McpMode::kFtgm;
    nc.host_mem_bytes = 8u << 20;
    nodes.push_back(
        std::make_unique<gm::Node>(eq, nc, "n" + std::to_string(i)));
    nodes.back()->attach(topo, i < 2 ? s0 : s1, static_cast<std::uint8_t>(i % 2));
    nodes.back()->boot();
  }
  mapper::Mapper m(*nodes[0]);
  m.run([](bool) {});
  eq.run(10'000'000);

  auto& tx = nodes[0]->open_port(2);
  auto& rx = nodes[3]->open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 30;
  wc.msg_len = 2048;
  fi::StreamWorkload wl(tx, rx, wc);
  eq.run_for(sim::usec(900));
  wl.start();
  eq.schedule_after(sim::usec(80), [&] {
    nodes[0]->mcp().inject_hang("post-mapping fault");
  });
  eq.run_until(eq.now() + sim::sec(4));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.duplicates(), 0);
  // The cross-switch route came back after the card reset.
  EXPECT_NE(nodes[0]->nic().route(3), nullptr);
}

TEST(Integration, HealthyPairsKeepFullServiceDuringPeerRecovery) {
  // Nodes 2<->3 traffic must be completely unaffected while node 0
  // recovers: failures are contained to the failed interface.
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& tx_sick = cluster.node(0).open_port(2);
  auto& rx_sick = cluster.node(1).open_port(2);
  auto& tx_ok = cluster.node(2).open_port(2);
  auto& rx_ok = cluster.node(3).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 40;
  wc.msg_len = 1024;
  fi::StreamWorkload sick(tx_sick, rx_sick, wc), healthy(tx_ok, rx_ok, wc);
  cluster.run_for(sim::usec(900));
  sick.start();
  healthy.start();
  cluster.eq().schedule_after(sim::usec(50), [&] {
    cluster.node(0).mcp().inject_hang("isolated fault");
  });
  cluster.run_for(sim::msec(10));
  // The healthy pair finished long before the sick pair's recovery.
  EXPECT_TRUE(healthy.complete());
  EXPECT_FALSE(sick.complete());
  cluster.run_for(sim::sec(4));
  EXPECT_TRUE(sick.complete());
}

TEST(Integration, HighPriorityFragmentsOvertakeBulkTraffic) {
  // Saturate the send engine with a low-priority bulk message, then post a
  // high-priority small message on another port: it must not wait for the
  // whole bulk transfer. (FTGM mode: per-port streams let the scheduler
  // interleave; in GM mode both ports share one FIFO connection.)
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& bulk = cluster.node(0).open_port(1);
  auto& urgent = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3, {32, 32});
  cluster.run_for(sim::usec(900));
  for (int i = 0; i < 4; ++i) {
    rx.provide_receive_buffer(rx.alloc_dma_buffer(600 * 1024));
  }
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128), /*priority=*/1);
  sim::Time bulk_done = 0, urgent_done = 0;
  rx.set_receive_handler([&](const gm::RecvInfo& info) {
    if (info.len > 1000) {
      bulk_done = cluster.eq().now();
    } else {
      urgent_done = cluster.eq().now();
    }
  });

  gm::Buffer big = bulk.alloc_dma_buffer(512 * 1024);  // 128 fragments
  (void)bulk.post(big, 512 * 1024, {.dst = 1, .dst_port = 3, .priority = 0});
  cluster.run_for(sim::usec(200));  // bulk transfer underway
  gm::Buffer small = urgent.alloc_dma_buffer(64);
  (void)urgent.post(small, 64, {.dst = 1, .dst_port = 3, .priority = 1});
  cluster.run_for(sim::msec(30));
  ASSERT_GT(urgent_done, 0u);
  ASSERT_GT(bulk_done, 0u);
  EXPECT_LT(urgent_done, bulk_done);  // overtook the bulk message
}

TEST(Integration, TwoLocalPortsReceivingOneStreamMergeAckState) {
  // A single remote port sends alternately to two local ports: both local
  // processes hold partial views of the same stream's ACK numbers. After a
  // receiver-NIC hang, their merged restore must be consistent (no loss,
  // no duplicates).
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx_a = cluster.node(1).open_port(3);
  auto& rx_b = cluster.node(1).open_port(4);
  cluster.run_for(sim::usec(900));

  int got_a = 0, got_b = 0;
  rx_a.set_receive_handler([&](const gm::RecvInfo& info) {
    ++got_a;
    rx_a.provide_receive_buffer(info.buffer);
  });
  rx_b.set_receive_handler([&](const gm::RecvInfo& info) {
    ++got_b;
    rx_b.provide_receive_buffer(info.buffer);
  });
  for (int i = 0; i < 4; ++i) {
    rx_a.provide_receive_buffer(rx_a.alloc_dma_buffer(128));
    rx_b.provide_receive_buffer(rx_b.alloc_dma_buffer(128));
  }

  gm::Buffer b = tx.alloc_dma_buffer(64);
  int completed = 0;
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 30) return;
    EXPECT_TRUE(
        tx.post(b, 64,
                {.dst = 1,
                 .dst_port = static_cast<std::uint8_t>(3 + (i % 2)),
                 .callback = [&, i](bool) {
                   ++completed;
                   send_next(i + 1);
                 }}).ok());
  };
  send_next(0);
  cluster.eq().schedule_after(sim::usec(90), [&] {
    cluster.node(1).mcp().inject_hang("mid-stream");
  });
  cluster.run_for(sim::sec(4));
  EXPECT_EQ(completed, 30);
  EXPECT_EQ(got_a + got_b, 30);  // exactly once across both ports
  EXPECT_EQ(got_a, 15);
  EXPECT_EQ(got_b, 15);
}

TEST(Integration, IdenticalSeedsGiveIdenticalRuns) {
  // Full-cluster determinism: same seeds, same fault schedule => bitwise
  // identical statistics (the property every experiment relies on).
  auto run = [](std::uint64_t seed) {
    gm::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mcp::McpMode::kFtgm;
    cc.seed = seed;
    cc.faults = {0.05, 0.05, 0.01};
    gm::Cluster cluster(cc);
    auto& tx = cluster.node(0).open_port(2);
    auto& rx = cluster.node(1).open_port(3);
    fi::StreamWorkload::Config wc;
    wc.total_msgs = 25;
    wc.msg_len = 3000;
    fi::StreamWorkload wl(tx, rx, wc);
    cluster.run_for(sim::usec(900));
    wl.start();
    cluster.run_for(sim::msec(100));
    return std::tuple{cluster.node(0).mcp().stats().fragments_tx,
                      cluster.node(0).mcp().stats().retransmissions,
                      cluster.node(1).mcp().stats().crc_drops,
                      cluster.eq().executed()};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), 0u);
}

// ---- LanISA interpreter fuzz: arbitrary SRAM contents must never escape
// the sandbox — every run terminates with a well-defined status. This is
// the property the whole fault-injection methodology rests on. ----

class CpuFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzz, RandomProgramsAlwaysTerminateSafely) {
  sim::Rng rng(GetParam());
  lanai::Sram sram(64 * 1024);
  class NullMmio : public lanai::MmioDevice {
   public:
    std::uint32_t mmio_read(std::uint32_t) override { return 0; }
    void mmio_write(std::uint32_t, std::uint32_t) override {}
  } mmio;
  lanai::Cpu cpu(sram, mmio);
  for (int prog = 0; prog < 50; ++prog) {
    for (std::uint32_t a = 0x1000; a < 0x1400; a += 4) {
      sram.write32(a, static_cast<std::uint32_t>(rng.next_u64()));
    }
    const lanai::RunResult r = cpu.run(0x1000, 5000);
    EXPECT_LE(r.cycles, 5000u);
    EXPECT_TRUE(r.status == lanai::RunStatus::kReturned ||
                r.status == lanai::RunStatus::kHalted ||
                r.status == lanai::RunStatus::kFault ||
                r.status == lanai::RunStatus::kBudgetExceeded ||
                r.status == lanai::RunStatus::kRestart);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

}  // namespace
}  // namespace myri
