// Unit tests for the LanISA assembler.
#include <gtest/gtest.h>

#include "lanai/assembler.hpp"
#include "lanai/cpu.hpp"

namespace myri::lanai {
namespace {

TEST(Assembler, EncodesSimpleInstructions) {
  const Program p = assemble("addi r2, r1, 100\n", 0x1000);
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(op_of(p.words[0]), Op::kAddi);
  EXPECT_EQ(rd_of(p.words[0]), 2u);
  EXPECT_EQ(rs1_of(p.words[0]), 1u);
  EXPECT_EQ(imm18_of(p.words[0]), 100);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble("addi r1, r0, 0xff\naddi r2, r0, -3\n", 0);
  EXPECT_EQ(imm18_of(p.words[0]), 0xff);
  EXPECT_EQ(imm18_of(p.words[1]), -3);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const Program p = assemble(R"(
    ; leading comment
    addi r1, r0, 1   ; trailing
    # hash comment

    nop
  )", 0);
  EXPECT_EQ(p.words.size(), 2u);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const Program p = assemble(R"(
  top:
    addi r1, r1, 1
    beq  r1, r2, done
    bne  r0, r1, top
  done:
    jalr r0, r15
  )", 0x1000);
  EXPECT_EQ(p.label("top"), 0x1000u);
  EXPECT_EQ(p.label("done"), 0x100cu);
  // beq at 0x1004 -> done(0x100c): offset (0x100c - 0x1008)/4 = 1.
  EXPECT_EQ(imm18_of(p.words[1]), 1);
  // bne at 0x1008 -> top(0x1000): offset (0x1000 - 0x100c)/4 = -3.
  EXPECT_EQ(imm18_of(p.words[2]), -3);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const Program p = assemble("start: addi r1, r0, 1\n", 0x2000);
  EXPECT_EQ(p.label("start"), 0x2000u);
  EXPECT_EQ(p.words.size(), 1u);
}

TEST(Assembler, MemoryOperands) {
  const Program p = assemble("lw r3, 0x20(r1)\nsw r4, -8(r2)\n", 0);
  EXPECT_EQ(op_of(p.words[0]), Op::kLw);
  EXPECT_EQ(rs1_of(p.words[0]), 1u);
  EXPECT_EQ(imm18_of(p.words[0]), 0x20);
  EXPECT_EQ(imm18_of(p.words[1]), -8);
}

TEST(Assembler, MemoryOperandWithoutOffset) {
  const Program p = assemble("lw r3, (r1)\n", 0);
  EXPECT_EQ(imm18_of(p.words[0]), 0);
}

TEST(Assembler, JalEncodesWordAddress) {
  const Program p = assemble(R"(
    jal r15, func
    nop
  func:
    jalr r0, r15
  )", 0x1000);
  EXPECT_EQ(op_of(p.words[0]), Op::kJal);
  EXPECT_EQ(imm18_of(p.words[0]), 0x1008 / 4);
}

TEST(Assembler, WordDirective) {
  const Program p = assemble(".word 0xdeadbeef\n", 0);
  EXPECT_EQ(p.words[0], 0xdeadbeefu);
}

TEST(Assembler, WordDirectiveWithLabel) {
  const Program p = assemble(R"(
  tgt:
    nop
    .word tgt
  )", 0x400);
  EXPECT_EQ(p.words[1], 0x400u);
}

TEST(Assembler, SizeBytes) {
  const Program p = assemble("nop\nnop\nnop\n", 0);
  EXPECT_EQ(p.size_bytes(), 12u);
}

TEST(Assembler, UnknownMnemonicFails) {
  EXPECT_THROW(assemble("frobnicate r1\n", 0), AsmError);
}

TEST(Assembler, BadRegisterFails) {
  EXPECT_THROW(assemble("addi r16, r0, 1\n", 0), AsmError);
  EXPECT_THROW(assemble("addi rx, r0, 1\n", 0), AsmError);
}

TEST(Assembler, DuplicateLabelFails) {
  EXPECT_THROW(assemble("a:\nnop\na:\nnop\n", 0), AsmError);
}

TEST(Assembler, UnknownLabelFails) {
  EXPECT_THROW(assemble("beq r0, r0, nowhere\n", 0), AsmError);
}

TEST(Assembler, ImmediateRangeEnforced) {
  EXPECT_THROW(assemble("addi r1, r0, 300000\n", 0), AsmError);
  EXPECT_THROW(assemble("addi r1, r0, -200000\n", 0), AsmError);
  // 18-bit unsigned patterns are allowed (LUI usage).
  EXPECT_NO_THROW(assemble("lui r1, 0x3ffff\n", 0));
}

TEST(Assembler, MisalignedBaseFails) {
  EXPECT_THROW(assemble("nop\n", 2), AsmError);
}

TEST(Assembler, WrongOperandCountFails) {
  EXPECT_THROW(assemble("add r1, r2\n", 0), AsmError);
  EXPECT_THROW(assemble("jalr r0\n", 0), AsmError);
}

TEST(Assembler, ErrorMessagesCarryLineNumbers) {
  try {
    assemble("nop\nnop\nbadop r1, r2, r3\n", 0);
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Assembler, ProgramLabelLookupThrowsOnMissing) {
  const Program p = assemble("nop\n", 0);
  EXPECT_THROW(p.label("missing"), AsmError);
}

}  // namespace
}  // namespace myri::lanai
