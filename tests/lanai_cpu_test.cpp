// Unit tests for the emulated LANai RISC core.
#include <gtest/gtest.h>

#include <map>

#include "lanai/assembler.hpp"
#include "lanai/cpu.hpp"
#include "lanai/registers.hpp"
#include "lanai/sram.hpp"

namespace myri::lanai {
namespace {

class FakeMmio : public MmioDevice {
 public:
  std::uint32_t mmio_read(std::uint32_t addr) override {
    ++reads;
    auto it = regs.find(addr);
    return it == regs.end() ? 0u : it->second;
  }
  void mmio_write(std::uint32_t addr, std::uint32_t value) override {
    ++writes;
    regs[addr] = value;
  }
  std::map<std::uint32_t, std::uint32_t> regs;
  int reads = 0;
  int writes = 0;
};

constexpr std::uint32_t kBase = 0x1000;

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : sram(64 * 1024), cpu(sram, mmio) {}

  RunResult run_asm(const std::string& src, std::uint64_t budget = 10000) {
    const Program p = assemble(src, kBase);
    for (std::size_t i = 0; i < p.words.size(); ++i) {
      sram.write32(kBase + static_cast<std::uint32_t>(i * 4), p.words[i]);
    }
    return cpu.run(kBase, budget);
  }

  Sram sram;
  FakeMmio mmio;
  Cpu cpu;
};

TEST_F(CpuTest, AddiAndReturn) {
  auto r = run_asm("addi r1, r0, 42\n jalr r0, r15\n");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(1), 42u);
  EXPECT_EQ(r.cycles, 2u);
}

TEST_F(CpuTest, R0IsHardwiredZero) {
  auto r = run_asm("addi r0, r0, 99\n jalr r0, r15\n");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(0), 0u);
}

TEST_F(CpuTest, NegativeImmediateSignExtends) {
  auto r = run_asm("addi r1, r0, -5\n jalr r0, r15\n");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(1), 0xfffffffbu);
}

TEST_F(CpuTest, ArithmeticOps) {
  auto r = run_asm(R"(
    addi r1, r0, 12
    addi r2, r0, 5
    add  r3, r1, r2
    sub  r4, r1, r2
    mul  r5, r1, r2
    and  r6, r1, r2
    or   r7, r1, r2
    xor  r8, r1, r2
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 17u);
  EXPECT_EQ(cpu.reg(4), 7u);
  EXPECT_EQ(cpu.reg(5), 60u);
  EXPECT_EQ(cpu.reg(6), 4u);
  EXPECT_EQ(cpu.reg(7), 13u);
  EXPECT_EQ(cpu.reg(8), 9u);
}

TEST_F(CpuTest, Shifts) {
  auto r = run_asm(R"(
    addi r1, r0, 1
    addi r2, r0, 4
    sll  r3, r1, r2
    srl  r4, r3, r2
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 16u);
  EXPECT_EQ(cpu.reg(4), 1u);
}

TEST_F(CpuTest, LuiBuildsMmioBase) {
  auto r = run_asm("lui r1, 0x3c000\n jalr r0, r15\n");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(1), 0xf0000000u);
}

TEST_F(CpuTest, LoadStoreWord) {
  auto r = run_asm(R"(
    addi r1, r0, 0x2000
    addi r2, r0, 0x1234
    sw   r2, 8(r1)
    lw   r3, 8(r1)
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 0x1234u);
  EXPECT_EQ(sram.read32(0x2008), 0x1234u);
}

TEST_F(CpuTest, LoadStoreByte) {
  auto r = run_asm(R"(
    addi r1, r0, 0x2000
    addi r2, r0, 0x1ff
    sb   r2, 3(r1)
    lb   r3, 3(r1)
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 0xffu);  // byte-truncated
}

TEST_F(CpuTest, BranchTakenAndNotTaken) {
  auto r = run_asm(R"(
    addi r1, r0, 3
    addi r2, r0, 3
    beq  r1, r2, eq_path
    addi r3, r0, 111
    jalr r0, r15
  eq_path:
    addi r3, r0, 222
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 222u);
}

TEST_F(CpuTest, BackwardBranchLoop) {
  auto r = run_asm(R"(
    addi r1, r0, 5
    addi r2, r0, 0
  loop:
    addi r2, r2, 10
    addi r1, r1, -1
    bne  r1, r0, loop
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(2), 50u);
}

TEST_F(CpuTest, SignedComparisons) {
  auto r = run_asm(R"(
    addi r1, r0, -1
    addi r2, r0, 1
    blt  r1, r2, neg_less
    addi r3, r0, 1
    jalr r0, r15
  neg_less:
    addi r3, r0, 2
    bge  r2, r1, done
    addi r3, r0, 3
  done:
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(3), 2u);
}

TEST_F(CpuTest, JalCallAndReturnViaR14) {
  auto r = run_asm(R"(
    jal  r14, helper
    addi r2, r0, 7
    jalr r0, r15
  helper:
    addi r1, r0, 9
    jalr r0, r14
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(1), 9u);
  EXPECT_EQ(cpu.reg(2), 7u);
}

TEST_F(CpuTest, HaltStopsExecution) {
  auto r = run_asm("halt\n");
  EXPECT_EQ(r.status, RunStatus::kHalted);
}

TEST_F(CpuTest, InvalidOpcodeFaults) {
  sram.write32(kBase, 0);  // opcode 0 is invalid by design
  auto r = cpu.run(kBase, 100);
  EXPECT_EQ(r.status, RunStatus::kFault);
}

TEST_F(CpuTest, UndefinedHighOpcodeFaults) {
  sram.write32(kBase, 63u << 26);
  auto r = cpu.run(kBase, 100);
  EXPECT_EQ(r.status, RunStatus::kFault);
}

TEST_F(CpuTest, MisalignedLoadFaults) {
  auto r = run_asm(R"(
    addi r1, r0, 0x2001
    lw   r2, 0(r1)
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kFault);
}

TEST_F(CpuTest, OutOfRangeStoreFaults) {
  auto r = run_asm(R"(
    lui  r1, 0x8000
    sw   r0, 0(r1)
    jalr r0, r15
  )");
  // 0x8000 << 14 = 0x20000000: above SRAM, below MMIO.
  EXPECT_EQ(r.status, RunStatus::kFault);
}

TEST_F(CpuTest, RunawayLoopExceedsBudget) {
  auto r = run_asm("loop: beq r0, r0, loop\n", 500);
  EXPECT_EQ(r.status, RunStatus::kBudgetExceeded);
  EXPECT_EQ(r.cycles, 500u);
}

TEST_F(CpuTest, JumpToZeroIsRestart) {
  auto r = run_asm("jalr r0, r0\n");
  EXPECT_EQ(r.status, RunStatus::kRestart);
}

TEST_F(CpuTest, FetchPastSramFaults) {
  // Jump to an address beyond SRAM (but below MMIO).
  auto r = run_asm(R"(
    lui  r1, 4
    jalr r0, r1
  )");
  EXPECT_EQ(r.status, RunStatus::kFault);
}

TEST_F(CpuTest, MmioReadAndWriteDispatch) {
  mmio.regs[kRegScratch] = 0x5555;
  auto r = run_asm(R"(
    lui  r1, 0x3c000
    lw   r2, 0x3c(r1)
    addi r3, r2, 1
    sw   r3, 0x3c(r1)
    jalr r0, r15
  )");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(cpu.reg(2), 0x5555u);
  EXPECT_EQ(mmio.regs[kRegScratch], 0x5556u);
  EXPECT_EQ(mmio.reads, 1);
  EXPECT_EQ(mmio.writes, 1);
}

TEST_F(CpuTest, CyclesAccumulateAcrossRuns) {
  run_asm("addi r1, r0, 1\n jalr r0, r15\n");
  const auto total1 = cpu.total_cycles();
  run_asm("addi r1, r0, 1\n jalr r0, r15\n");
  EXPECT_EQ(cpu.total_cycles(), total1 + 2);
}

TEST_F(CpuTest, ReturnSentinelPreloadedInR15) {
  // A routine that immediately returns must see the sentinel in r15.
  auto r = run_asm("jalr r0, r15\n");
  EXPECT_EQ(r.status, RunStatus::kReturned);
  EXPECT_EQ(r.cycles, 1u);
}

TEST(CpuEncoding, FieldRoundTrip) {
  const std::uint32_t w = encode(Op::kAddi, 3, 7, 0, -42);
  EXPECT_EQ(op_of(w), Op::kAddi);
  EXPECT_EQ(rd_of(w), 3u);
  EXPECT_EQ(rs1_of(w), 7u);
  EXPECT_EQ(imm18_of(w), -42);
}

TEST(CpuEncoding, Imm18Boundaries) {
  EXPECT_EQ(imm18_of(encode(Op::kAddi, 0, 0, 0, 131071)), 131071);
  EXPECT_EQ(imm18_of(encode(Op::kAddi, 0, 0, 0, -131072)), -131072);
}

}  // namespace
}  // namespace myri::lanai
