// Unit tests for the NIC device model: timers, registers, DMA engines,
// packet interface and reset semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "host/host_memory.hpp"
#include "host/interrupts.hpp"
#include "host/pci.hpp"
#include "lanai/nic.hpp"
#include "lanai/registers.hpp"
#include "lanai/tx_descriptor.hpp"
#include "net/link.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace myri::lanai {
namespace {

class SinkSpy : public net::PacketSink {
 public:
  void deliver(net::Packet pkt, std::uint8_t) override {
    packets.push_back(std::move(pkt));
  }
  std::vector<net::Packet> packets;
};

class NicTest : public ::testing::Test {
 protected:
  NicTest()
      : hmem(1 << 20),
        pci(eq, {}),
        irq(eq, {}),
        nic(eq, {}, "nic"),
        uplink(eq, sim::Rng(1), {}, "up") {
    nic.attach_host(hmem, pci, irq);
    nic.attach_uplink(uplink);
    uplink.connect(wire_sink, 0);
    nic.set_node_id(5);
    nic.set_pinned_checker([this](host::DmaAddr a, std::size_t l) {
      return a >= 0x1000 && a + l <= 0x80000;
    });
    nic.set_host_crash_handler([this] { crashed = true; });
  }

  sim::EventQueue eq;
  host::HostMemory hmem;
  host::PciBus pci;
  host::InterruptController irq;
  Nic nic;
  net::Link uplink;
  SinkSpy wire_sink;
  bool crashed = false;
};

TEST_F(NicTest, TimerExpirySetsIsrBitAndCallsHook) {
  int fired = -1;
  Nic::Hooks h;
  h.on_timer = [&](int idx) { fired = idx; };
  nic.set_hooks(std::move(h));
  nic.arm_timer(1, 100);  // 100 ticks of 0.5 us = 50 us
  eq.run_until(sim::usec(49));
  EXPECT_EQ(fired, -1);
  EXPECT_EQ(nic.isr() & kIsrIt1, 0u);
  eq.run_until(sim::usec(51));
  EXPECT_EQ(fired, 1);
  EXPECT_NE(nic.isr() & kIsrIt1, 0u);
}

TEST_F(NicTest, TimerRearmCancelsPreviousExpiry) {
  nic.arm_timer(0, 100);
  eq.run_until(sim::usec(30));
  nic.arm_timer(0, 100);  // push expiry out
  eq.run_until(sim::usec(60));
  EXPECT_EQ(nic.isr() & kIsrIt0, 0u);
  eq.run_until(sim::usec(81));
  EXPECT_NE(nic.isr() & kIsrIt0, 0u);
}

TEST_F(NicTest, TimerRemainingCountsDown) {
  nic.arm_timer(2, 1000);
  eq.run_until(sim::usec(100));
  const auto rem = nic.timer_remaining(2);
  EXPECT_NEAR(static_cast<double>(rem), 800.0, 5.0);
}

TEST_F(NicTest, ImrGatesHostInterrupt) {
  nic.arm_timer(1, 10);
  eq.run();
  EXPECT_EQ(irq.delivered(host::IrqLine::kFatal), 0u);  // IMR clear

  nic.set_imr(kIsrIt1);
  nic.arm_timer(1, 10);
  eq.run();
  EXPECT_EQ(irq.delivered(host::IrqLine::kFatal), 1u);
}

TEST_F(NicTest, ImrWriteWithPendingIsrRaisesImmediately) {
  nic.arm_timer(1, 10);
  eq.run();
  ASSERT_NE(nic.isr() & kIsrIt1, 0u);
  nic.set_imr(kIsrIt1);
  nic.mmio_write(kRegImr, kIsrIt1);  // MMIO path re-evaluates
  eq.run();
  EXPECT_GE(irq.delivered(host::IrqLine::kFatal), 1u);
}

TEST_F(NicTest, IsrWriteOneToClear) {
  nic.set_isr_bits(kIsrIt0 | kIsrRecv);
  nic.mmio_write(kRegIsr, kIsrIt0);
  EXPECT_EQ(nic.isr(), kIsrRecv);
}

TEST_F(NicTest, HostDmaIntoSram) {
  const char msg[] = "hello-lanai";
  hmem.write(0x2000, std::as_bytes(std::span(msg)));
  bool done = false;
  Nic::Hooks h;
  h.on_hdma_done = [&] { done = true; };
  nic.set_hooks(std::move(h));
  nic.start_hdma(/*to_sram=*/true, 0x2000, 0x8000, sizeof(msg));
  EXPECT_TRUE(nic.hdma_busy());
  eq.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(nic.hdma_busy());
  EXPECT_NE(nic.isr() & kIsrHdmaDone, 0u);
  auto got = nic.sram().bytes(0x8000, sizeof(msg));
  EXPECT_EQ(std::memcmp(got.data(), msg, sizeof(msg)), 0);
}

TEST_F(NicTest, SramToHostDma) {
  nic.sram().write32(0x8000, 0xabcd1234);
  nic.start_hdma(false, 0x3000, 0x8000, 4);
  eq.run();
  std::array<std::byte, 4> out{};
  hmem.read(0x3000, out);
  EXPECT_EQ(std::to_integer<unsigned>(out[0]), 0x34u);
  EXPECT_EQ(std::to_integer<unsigned>(out[3]), 0xabu);
}

TEST_F(NicTest, WildDmaReadBeyondMemoryCrashesHost) {
  // Read from beyond physical memory: master abort -> NMI -> host crash.
  nic.start_hdma(true, 0x10000000, 0x8000, 16);
  eq.run();
  EXPECT_TRUE(crashed);
  EXPECT_EQ(nic.stats().wild_dma_reads, 1u);
  EXPECT_EQ(nic.sram().read8(0x8000), 0xffu);
}

TEST_F(NicTest, UnpinnedInRangeDmaReadIsGarbageNotCrash) {
  // Reading stale (unpinned but existing) memory corrupts data only.
  nic.start_hdma(true, 0x500, 0x8000, 16);  // below pinned pool, in range
  eq.run();
  EXPECT_FALSE(crashed);
  EXPECT_EQ(nic.stats().wild_dma_reads, 0u);
}

TEST_F(NicTest, WildDmaWriteCrashesHost) {
  nic.start_hdma(false, 0x100, 0x8000, 16);  // below pinned pool
  eq.run();
  EXPECT_TRUE(crashed);
  EXPECT_EQ(nic.stats().wild_dma_writes, 1u);
}

TEST_F(NicTest, DmaStartWhileBusyIgnored) {
  nic.start_hdma(true, 0x2000, 0x8000, 1024);
  nic.start_hdma(true, 0x2000, 0x9000, 1024);
  eq.run();
  EXPECT_EQ(nic.stats().hdma_transfers, 1u);
  EXPECT_EQ(nic.stats().tx_errors, 1u);
}

TEST_F(NicTest, TxFromDescriptorBuildsSealedPacket) {
  using L = TxDescLayout;
  const std::uint32_t d = 0x4200;
  nic.set_route(9, {3});
  nic.sram().write32(d + L::kDst, 9);
  nic.sram().write32(d + L::kSeq, 17);
  nic.sram().write32(d + L::kStream, 2);
  nic.sram().write32(d + L::kDstPort, 4);
  nic.sram().write32(d + L::kSrcPort, 6);
  nic.sram().write32(d + L::kPayloadAddr, 0x8000);
  nic.sram().write32(d + L::kPayloadLen, 8);
  nic.sram().write32(d + L::kMsgId, 33);
  nic.sram().write32(d + L::kMsgLen, 8);
  nic.sram().write32(d + L::kFragOffset, 0);
  nic.sram().write32(d + L::kFlags, 1);
  nic.sram().write32(0x8000, 0x01020304);
  nic.sram().write32(0x8004, 0x05060708);

  nic.tx_from_descriptor(d);
  eq.run();
  ASSERT_EQ(wire_sink.packets.size(), 1u);
  const net::Packet& p = wire_sink.packets[0];
  EXPECT_EQ(p.src, 5u);
  EXPECT_EQ(p.dst, 9u);
  EXPECT_EQ(p.seq, 17u);
  EXPECT_EQ(p.stream, 2u);
  EXPECT_EQ(p.dst_port, 4u);
  EXPECT_EQ(p.src_port, 6u);
  EXPECT_EQ(p.msg_id, 33u);
  EXPECT_EQ(p.priority, 1u);
  EXPECT_TRUE(p.intact());
  EXPECT_EQ(p.payload.size(), 8u);
}

TEST_F(NicTest, TxWithoutRouteCountsError) {
  using L = TxDescLayout;
  nic.sram().write32(0x4200 + L::kDst, 77);  // no route installed
  nic.sram().write32(0x4200 + L::kPayloadAddr, 0x8000);
  nic.sram().write32(0x4200 + L::kPayloadLen, 4);
  nic.tx_from_descriptor(0x4200);
  eq.run();
  EXPECT_TRUE(wire_sink.packets.empty());
  EXPECT_EQ(nic.stats().tx_errors, 1u);
}

TEST_F(NicTest, TxOversizedPayloadRejected) {
  using L = TxDescLayout;
  nic.set_route(9, {3});
  nic.sram().write32(0x4200 + L::kDst, 9);
  nic.sram().write32(0x4200 + L::kPayloadAddr, 0x8000);
  nic.sram().write32(0x4200 + L::kPayloadLen, 5000);  // > 4 KB
  nic.tx_from_descriptor(0x4200);
  EXPECT_EQ(nic.stats().tx_errors, 1u);
}

TEST_F(NicTest, RxQueueCapDropsWhenFull) {
  Nic::Config cfg;
  cfg.rx_queue_cap = 2;
  Nic small(eq, cfg, "small");
  net::Packet p;
  p.seal();
  small.deliver(p, 0);
  small.deliver(p, 0);
  small.deliver(p, 0);
  EXPECT_EQ(small.rx_depth(), 2u);
  EXPECT_EQ(small.stats().rx_dropped_full, 1u);
}

TEST_F(NicTest, RxPopFifoOrder) {
  net::Packet a, b;
  a.seq = 1;
  b.seq = 2;
  nic.deliver(a, 0);
  nic.deliver(b, 0);
  EXPECT_EQ(nic.rx_pop().seq, 1u);
  EXPECT_EQ(nic.rx_pop().seq, 2u);
  EXPECT_TRUE(nic.rx_empty());
}

TEST_F(NicTest, DoorbellSetsIsrAndHook) {
  bool rung = false;
  Nic::Hooks h;
  h.on_doorbell = [&] { rung = true; };
  nic.set_hooks(std::move(h));
  nic.ring_doorbell();
  EXPECT_TRUE(rung);
  EXPECT_NE(nic.isr() & kIsrDoorbell, 0u);
}

TEST_F(NicTest, ResetClearsVolatileState) {
  nic.set_imr(kIsrIt1);
  nic.set_isr_bits(kIsrRecv);
  nic.set_route(9, {1});
  net::Packet p;
  nic.deliver(p, 0);
  nic.arm_timer(0, 1000);
  nic.reset();
  EXPECT_EQ(nic.isr(), 0u);
  EXPECT_EQ(nic.imr(), 0u);
  EXPECT_EQ(nic.num_routes(), 0u);
  EXPECT_TRUE(nic.rx_empty());
  EXPECT_EQ(nic.timer_remaining(0), 0u);
}

TEST_F(NicTest, ResetPreservesSram) {
  nic.sram().write32(0x8000, 0x1234);
  nic.reset();
  EXPECT_EQ(nic.sram().read32(0x8000), 0x1234u);
}

TEST_F(NicTest, ResetOrphansInflightDma) {
  hmem.write(0x2000, std::as_bytes(std::span("x", 1)));
  bool done = false;
  Nic::Hooks h;
  h.on_hdma_done = [&] { done = true; };
  nic.set_hooks(std::move(h));
  nic.start_hdma(true, 0x2000, 0x8000, 1024);
  nic.reset();
  eq.run();
  EXPECT_FALSE(done);  // completion swallowed by the epoch bump
}

TEST_F(NicTest, MmioTimerWriteArms) {
  nic.mmio_write(kRegIt1, 10);
  eq.run();
  EXPECT_NE(nic.isr() & kIsrIt1, 0u);
}

TEST_F(NicTest, MmioHdmaCtrlReadsBusyFlag) {
  EXPECT_EQ(nic.mmio_read(kRegHdmaCtrl), 0u);
  nic.mmio_write(kRegHdmaHost, 0x2000);
  nic.mmio_write(kRegHdmaLocal, 0x8000);
  nic.mmio_write(kRegHdmaLen, 64);
  nic.mmio_write(kRegHdmaCtrl, 1);
  EXPECT_EQ(nic.mmio_read(kRegHdmaCtrl), 1u);
  eq.run();
  EXPECT_EQ(nic.mmio_read(kRegHdmaCtrl), 0u);
}

TEST_F(NicTest, SendPacketResolvesRouteFromTable) {
  nic.set_route(9, {4, 2});
  net::Packet p;
  p.dst = 9;
  p.seal();
  nic.send_packet(p);
  eq.run();
  ASSERT_EQ(wire_sink.packets.size(), 1u);
  // One byte remains: our fake "switch" (the sink) never stripped any,
  // but the link delivered the route as sent.
  EXPECT_EQ(wire_sink.packets[0].route, (std::vector<std::uint8_t>{4, 2}));
}

TEST_F(NicTest, ScratchRegisterRoundTrip) {
  nic.mmio_write(kRegScratch, 0x77);
  EXPECT_EQ(nic.mmio_read(kRegScratch), 0x77u);
}

}  // namespace
}  // namespace myri::lanai
