// Mapper tests: topology discovery, route computation, distribution,
// remapping — the GM self-configuration the FTD's route restoration
// depends on.
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mapper/mapper.hpp"

namespace myri {
namespace {

struct Fabric {
  sim::EventQueue eq;
  sim::Rng rng{7};
  std::unique_ptr<net::Topology> topo;
  std::vector<std::unique_ptr<gm::Node>> nodes;

  gm::Node& add_node(std::uint16_t sw, std::uint8_t port,
                     mcp::McpMode mode = mcp::McpMode::kGm) {
    gm::Node::Config nc;
    nc.id = static_cast<net::NodeId>(nodes.size());
    nc.mode = mode;
    nc.host_mem_bytes = 4u << 20;
    nodes.push_back(std::make_unique<gm::Node>(
        eq, nc, "n" + std::to_string(nodes.size())));
    nodes.back()->attach(*topo, sw, port);
    nodes.back()->boot();
    return *nodes.back();
  }
};

TEST(Mapper, SingleSwitchDiscoversAllInterfaces) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  for (int i = 0; i < 4; ++i) f.add_node(sw, static_cast<std::uint8_t>(i));

  mapper::Mapper m(*f.nodes[0]);
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  f.eq.run(5'000'000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(m.interfaces(), (std::vector<net::NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(m.num_switches(), 1u);
}

TEST(Mapper, SingleSwitchRoutesAreOneHop) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  for (int i = 0; i < 3; ++i) f.add_node(sw, static_cast<std::uint8_t>(i));
  mapper::Mapper m(*f.nodes[0]);
  m.run([](bool) {});
  f.eq.run(5'000'000);
  const auto r = m.route_between(0, 2);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<std::uint8_t>{2}));
}

TEST(Mapper, TwoSwitchFabric) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto s0 = f.topo->add_switch(8);
  const auto s1 = f.topo->add_switch(8);
  f.topo->connect_switches(s0, 7, s1, 6);
  f.add_node(s0, 0);
  f.add_node(s0, 1);
  f.add_node(s1, 0);
  f.add_node(s1, 1);

  mapper::Mapper m(*f.nodes[0]);
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  f.eq.run(10'000'000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(m.num_switches(), 2u);
  EXPECT_EQ(m.interfaces().size(), 4u);
  const auto r = m.route_between(0, 2);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<std::uint8_t>{7, 0}));
}

TEST(Mapper, ThreeSwitchLine) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto s0 = f.topo->add_switch(4);
  const auto s1 = f.topo->add_switch(4);
  const auto s2 = f.topo->add_switch(4);
  f.topo->connect_switches(s0, 3, s1, 0);
  f.topo->connect_switches(s1, 3, s2, 0);
  f.add_node(s0, 0);
  f.add_node(s2, 1);

  mapper::Mapper m(*f.nodes[0]);
  m.run([](bool) {});
  f.eq.run(10'000'000);
  EXPECT_EQ(m.num_switches(), 3u);
  const auto r = m.route_between(0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<std::uint8_t>{3, 3, 1}));
}

TEST(Mapper, DistributedRoutesActuallyWork) {
  // The proof of the pudding: after mapping, run real traffic between
  // nodes that never had routes installed manually.
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto s0 = f.topo->add_switch(8);
  const auto s1 = f.topo->add_switch(8);
  f.topo->connect_switches(s0, 7, s1, 7);
  auto& n0 = f.add_node(s0, 0);
  f.add_node(s0, 1);
  auto& n2 = f.add_node(s1, 0);

  mapper::Mapper m(n0);
  m.run([](bool) {});
  f.eq.run(10'000'000);

  auto& tx = n0.open_port(2);
  auto& rx = n2.open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 10;
  wc.msg_len = 1024;
  fi::StreamWorkload wl(tx, rx, wc);
  f.eq.run_for(sim::usec(900));
  wl.start();
  f.eq.run_for(sim::msec(20));
  EXPECT_TRUE(wl.complete());
}

TEST(Mapper, RemapAfterNodeAppears) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  auto& n0 = f.add_node(sw, 0);
  f.add_node(sw, 1);

  mapper::Mapper m(n0);
  m.run([](bool) {});
  f.eq.run(5'000'000);
  EXPECT_EQ(m.interfaces().size(), 2u);

  // A new node appears (paper Section 2: the mapper reconfigures when
  // nodes appear or disappear); re-run mapping.
  f.add_node(sw, 5);
  bool ok = false;
  m.run([&](bool r) { ok = r; });
  f.eq.run(5'000'000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(m.interfaces().size(), 3u);
  EXPECT_TRUE(m.route_between(0, 2));
}

TEST(Mapper, HomeSwitchPortLearnt) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  auto& n0 = f.add_node(sw, 5);  // attached on port 5
  f.add_node(sw, 2);
  mapper::Mapper m(n0);
  m.run([](bool) {});
  f.eq.run(5'000'000);
  // Route from node1 (port 2) back to node0 must be [5].
  const auto r = m.route_between(1, 0);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<std::uint8_t>{5}));
}

TEST(Mapper, StatsAccountScoutsAndTimeouts) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  f.add_node(sw, 0);
  f.add_node(sw, 1);
  mapper::Mapper m(*f.nodes[0]);
  m.run([](bool) {});
  f.eq.run(5'000'000);
  const auto& s = m.stats();
  // 1 root scout + 7 ports probed from the switch; each of the 6 empty
  // ports is probed scout_tries (3) times before it counts as dead.
  EXPECT_EQ(s.scouts_sent, 20u);
  EXPECT_EQ(s.replies, 2u);         // switch + node1 (own port skipped)
  EXPECT_EQ(s.scout_retries, 12u);  // 6 empty ports x 2 re-probes
  EXPECT_EQ(s.timeouts, 6u);        // empty switch ports, tries exhausted
}

TEST(Mapper, EmptyFabricReportsFailure) {
  // A mapper whose NIC is not cabled finds nothing.
  sim::EventQueue eq;
  gm::Node::Config nc;
  nc.id = 0;
  nc.host_mem_bytes = 4u << 20;
  gm::Node lone(eq, nc, "lone");
  lone.boot();
  mapper::Mapper m(lone);
  bool fired = false, ok = true;
  m.run([&](bool r) {
    fired = true;
    ok = r;
  });
  eq.run(5'000'000);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(ok);
}

TEST(Mapper, RouteTablesInstalledOnRemoteCards) {
  Fabric f;
  f.topo = std::make_unique<net::Topology>(f.eq, f.rng);
  const auto sw = f.topo->add_switch(8);
  f.add_node(sw, 0);
  f.add_node(sw, 1);
  f.add_node(sw, 2);
  mapper::Mapper m(*f.nodes[0]);
  m.run([](bool) {});
  f.eq.run(5'000'000);
  EXPECT_EQ(f.nodes[1]->nic().num_routes(), 2u);
  EXPECT_EQ(f.nodes[2]->nic().num_routes(), 2u);
  // Driver mirrors updated too (FTD restoration source).
  EXPECT_EQ(f.nodes[1]->driver().route_mirror().size(), 2u);
}

}  // namespace
}  // namespace myri
