// MCP self-restart (jump to the reset vector) and other corrupted-code
// behaviours driven through real instruction rewrites in SRAM — the same
// mechanisms the fault campaign triggers randomly, pinned down
// deterministically here.
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "lanai/cpu.hpp"
#include "mcp/sram_layout.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

struct World {
  explicit World(mcp::McpMode mode = mcp::McpMode::kGm) {
    ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = mode;
    cluster = std::make_unique<Cluster>(cc);
    tx = &cluster->node(0).open_port(2);
    rx = &cluster->node(1).open_port(3);
    cluster->run_for(sim::usec(900));
    rx->provide_receive_buffer(rx->alloc_dma_buffer(256));
  }
  void rewrite_entry(std::uint32_t word) {
    cluster->node(0).nic().sram().write32(mcp::SramLayout::kCodeBase, word);
  }
  bool send_one() {
    gm::Buffer b = tx->alloc_dma_buffer(64);
    return tx->post(b, 64, {.dst = 1, .dst_port = 3}).ok();
  }
  std::unique_ptr<Cluster> cluster;
  gm::Port* tx = nullptr;
  gm::Port* rx = nullptr;
};

TEST(McpRestart, JumpToResetVectorReinitializesTheMcp) {
  World w;
  const auto gen = w.cluster->node(0).mcp().generation();
  // First instruction becomes `jalr r0, r0`: pc := 0, the reset vector.
  w.rewrite_entry(lanai::encode(lanai::Op::kJalr, 0, 0, 0, 0));
  w.send_one();
  w.cluster->run_for(sim::msec(2));
  const auto& mcp = w.cluster->node(0).mcp();
  EXPECT_EQ(mcp.stats().self_restarts, 1u);
  EXPECT_GT(mcp.generation(), gen);
  EXPECT_FALSE(mcp.hung());  // restarted, not hung
  // The restart wiped per-port state: the MCP no longer knows port 2
  // (the library was never told — exactly the naive-recovery hazard).
  EXPECT_FALSE(mcp.port_open(2));
}

TEST(McpRestart, RestartedMcpStillRunsLTimer) {
  World w;
  w.rewrite_entry(lanai::encode(lanai::Op::kJalr, 0, 0, 0, 0));
  w.send_one();
  w.cluster->run_for(sim::msec(1));
  const auto runs = w.cluster->node(0).mcp().stats().l_timer_runs;
  w.cluster->run_for(sim::msec(3));
  EXPECT_GT(w.cluster->node(0).mcp().stats().l_timer_runs, runs);
}

TEST(McpHang, InvalidOpcodeHangsTheProcessor) {
  World w;
  w.rewrite_entry(0);  // opcode 0 is invalid
  w.send_one();
  w.cluster->run_for(sim::msec(2));
  EXPECT_TRUE(w.cluster->node(0).mcp().hung());
  EXPECT_NE(w.cluster->node(0).mcp().hang_reason().find("invalid opcode"),
            std::string::npos);
}

TEST(McpHang, TightLoopExceedsCycleBudget) {
  World w;
  // `beq r0, r0, -1` loops on itself forever.
  w.rewrite_entry(lanai::encode(lanai::Op::kBeq, 0, 0, 0, -1));
  w.send_one();
  w.cluster->run_for(sim::msec(2));
  EXPECT_TRUE(w.cluster->node(0).mcp().hung());
  EXPECT_NE(w.cluster->node(0).mcp().hang_reason().find("budget"),
            std::string::npos);
}

TEST(McpHang, ExplicitHaltInstruction) {
  World w;
  w.rewrite_entry(lanai::encode(lanai::Op::kHalt, 0, 0, 0, 0));
  w.send_one();
  w.cluster->run_for(sim::msec(2));
  EXPECT_TRUE(w.cluster->node(0).mcp().hung());
}

TEST(McpHang, WildStoreOutsideSramFaults) {
  World w;
  // lui r1, 0x8000 -> r1 = 0x20000000 (beyond SRAM, below MMIO); the
  // following original instructions then store through it... simpler:
  // `sw r0, 0(r1)` with r1 garbage = 0 is valid SRAM; instead store to a
  // computed out-of-range address via lui into r1 then sw.
  auto& sram = w.cluster->node(0).nic().sram();
  sram.write32(mcp::SramLayout::kCodeBase,
               lanai::encode(lanai::Op::kLui, 1, 0, 0, 0x8000));
  sram.write32(mcp::SramLayout::kCodeBase + 4,
               lanai::encode(lanai::Op::kSw, 0, 1, 0, 0));
  w.send_one();
  w.cluster->run_for(sim::msec(2));
  EXPECT_TRUE(w.cluster->node(0).mcp().hung());
  EXPECT_NE(w.cluster->node(0).mcp().hang_reason().find("bad SW"),
            std::string::npos);
}

TEST(McpRestart, FtgmWatchdogSurvivesRestartStorm) {
  // In FTGM mode a self-restart re-arms the watchdog; repeated restarts
  // must not wedge timer state or raise false FATALs.
  World w(mcp::McpMode::kFtgm);
  w.rewrite_entry(lanai::encode(lanai::Op::kJalr, 0, 0, 0, 0));
  for (int i = 0; i < 3; ++i) {
    w.send_one();
    w.cluster->run_for(sim::msec(2));
  }
  EXPECT_GE(w.cluster->node(0).mcp().stats().self_restarts, 1u);
  EXPECT_FALSE(w.cluster->node(0).mcp().hung());
  EXPECT_EQ(w.cluster->node(0).ftd().stats().recoveries, 0u);
}

TEST(McpCorruption, StagingAddressFlipCorruptsPayloadSilently) {
  // Rewrite the staging-address load offset in phase A so the payload is
  // DMAed to one place and transmitted from another: the packet is built
  // from stale SRAM, passes the wire CRC, and arrives wrong — the
  // "Messages Corrupted" category with a valid checksum.
  World w;
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 5;
  wc.msg_len = 512;
  fi::StreamWorkload wl(*w.tx, *w.rx, wc);
  wl.start();
  w.cluster->run_for(sim::msec(2));
  ASSERT_TRUE(wl.complete());  // baseline healthy

  // Find the `lw r4, 4(r2)` (staging address) instruction dynamically and
  // corrupt its immediate from 4 to 12 (loads the seq as the address...
  // which is small and maps into the code region: the payload lands over
  // SRAM we do not transmit from).
  auto& sram = w.cluster->node(0).nic().sram();
  const std::uint32_t want = lanai::encode(lanai::Op::kLw, 4, 2, 0, 4);
  bool patched = false;
  for (std::uint32_t a = mcp::SramLayout::kCodeBase;
       a < mcp::SramLayout::kCodeLimit; a += 4) {
    if (sram.read32(a) == want) {
      sram.write32(a, lanai::encode(lanai::Op::kLw, 4, 2, 0, 12));
      patched = true;
      break;
    }
  }
  ASSERT_TRUE(patched);

  fi::StreamWorkload::Config wc2;
  wc2.total_msgs = 5;
  wc2.msg_len = 512;
  fi::StreamWorkload wl2(*w.tx, *w.rx, wc2);
  wl2.start();
  w.cluster->run_for(sim::msec(5));
  EXPECT_GT(wl2.corrupted() + wl2.missing(), 0);
  EXPECT_FALSE(w.cluster->node(0).mcp().hung());
}

}  // namespace
}  // namespace myri
