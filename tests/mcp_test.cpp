// MCP transport tests: fragmentation, Go-Back-N reliability, token
// matching, L_timer housekeeping, and failure semantics — exercised through
// the full stack (library -> PCI -> NIC -> wire -> NIC -> library).
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "mcp/send_chunk.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

ClusterConfig base_config(mcp::McpMode mode = mcp::McpMode::kGm) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  return cc;
}

struct StreamResult {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<fi::StreamWorkload> wl;
};

StreamResult run_stream(ClusterConfig cc, int msgs, std::uint32_t len,
                        sim::Time window) {
  StreamResult r;
  r.cluster = std::make_unique<Cluster>(cc);
  auto& tx = r.cluster->node(0).open_port(2);
  auto& rx = r.cluster->node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = len;
  r.wl = std::make_unique<fi::StreamWorkload>(tx, rx, wc);
  r.cluster->run_for(sim::usec(900));
  r.wl->start();
  r.cluster->run_for(window);
  return r;
}

TEST(McpTransport, SingleSmallMessage) {
  auto r = run_stream(base_config(), 1, 100, sim::msec(1));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.cluster->node(0).mcp().stats().fragments_tx, 1u);
}

TEST(McpTransport, ZeroLengthMessage) {
  // GM supports zero-byte messages (pure notifications); the verified
  // workload needs a 4-byte index, so drive the API directly.
  Cluster cluster(base_config());
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(64));
  int got = -1;
  rx.set_receive_handler(
      [&](const gm::RecvInfo& info) { got = static_cast<int>(info.len); });
  bool done = false;
  gm::Buffer b = tx.alloc_dma_buffer(16);
  ASSERT_TRUE(
      tx.post(b, 0, {.dst = 1, .dst_port = 3,
                     .callback = [&](bool ok) { done = ok; }}).ok());
  cluster.run_for(sim::msec(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(got, 0);
}

TEST(McpTransport, ManyMessagesExactlyOnce) {
  auto r = run_stream(base_config(), 100, 512, sim::msec(20));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
}

TEST(McpTransport, FragmentationBoundaries) {
  // Sizes straddling the 4 KB packet limit (paper Section 5.1).
  for (std::uint32_t len : {4095u, 4096u, 4097u, 8192u, 12289u}) {
    auto r = run_stream(base_config(), 3, len, sim::msec(10));
    EXPECT_TRUE(r.wl->complete()) << "len=" << len;
    const std::uint64_t expect_frags =
        3ull * ((len + net::kMaxPacketPayload - 1) / net::kMaxPacketPayload);
    EXPECT_EQ(r.cluster->node(0).mcp().stats().fragments_tx, expect_frags)
        << "len=" << len;
  }
}

TEST(McpTransport, LargeMessageReassemblesCorrectly) {
  auto r = run_stream(base_config(), 2, 256 * 1024, sim::msec(80));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->corrupted(), 0);
}

TEST(McpTransport, BidirectionalTraffic) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& p0 = cluster.node(0).open_port(2);
  auto& p1 = cluster.node(1).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 40;
  wc.msg_len = 1024;
  fi::StreamWorkload a_to_b(p0, p1, wc);
  fi::StreamWorkload b_to_a(p1, p0, wc);
  cluster.run_for(sim::usec(900));
  a_to_b.start();
  b_to_a.start();
  cluster.run_for(sim::msec(20));
  EXPECT_TRUE(a_to_b.complete());
  EXPECT_TRUE(b_to_a.complete());
}

TEST(McpTransport, TwoSendingPortsDeliverIndependently) {
  ClusterConfig cc = base_config(mcp::McpMode::kFtgm);
  Cluster cluster(cc);
  auto& tx_a = cluster.node(0).open_port(1);
  auto& tx_b = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 20;
  wc.msg_len = 700;
  fi::StreamWorkload wa(tx_a, rx, wc);
  cluster.run_for(sim::usec(900));
  wa.start();
  cluster.run_for(sim::msec(10));
  EXPECT_TRUE(wa.complete());
  // A second port's stream also starts at sequence 0: per-(port, dst)
  // streams mean no interference (paper Fig 6 restructuring).
  fi::StreamWorkload wb(tx_b, rx, wc);
  wb.start();
  cluster.run_for(sim::msec(10));
  EXPECT_TRUE(wb.complete());
  EXPECT_EQ(cluster.node(0).mcp().stats().fragments_tx, 40u);
}

TEST(McpTransport, EightNodeFanIn) {
  ClusterConfig cc = base_config();
  cc.nodes = 8;
  Cluster cluster(cc);
  auto& rx = cluster.node(0).open_port(1, {64, 64});
  std::vector<std::unique_ptr<fi::StreamWorkload>> wls;
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 10;
  wc.msg_len = 256;
  wc.recv_buffers = 40;
  for (int i = 1; i < 8; ++i) {
    auto& tx = cluster.node(i).open_port(1);
    wls.push_back(std::make_unique<fi::StreamWorkload>(tx, rx, wc));
  }
  cluster.run_for(sim::usec(900));
  for (auto& w : wls) w->start();
  cluster.run_for(sim::msec(30));
  int total = 0;
  for (auto& w : wls) total += w->received();
  EXPECT_EQ(total, 70);
  EXPECT_EQ(rx.stats().msgs_received, 70u);
}

// ---- Go-Back-N under transient network faults (paper Section 2: GM
// handles dropped, corrupted and misrouted packets transparently) ----

TEST(McpGoBackN, SurvivesDroppedPackets) {
  ClusterConfig cc = base_config();
  cc.faults.drop_prob = 0.15;
  auto r = run_stream(cc, 50, 1500, sim::msec(200));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_GT(r.cluster->node(0).mcp().stats().retransmissions, 0u);
}

TEST(McpGoBackN, SurvivesCorruptedPackets) {
  ClusterConfig cc = base_config();
  cc.faults.corrupt_prob = 0.15;
  auto r = run_stream(cc, 50, 1500, sim::msec(200));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_GT(r.cluster->node(1).mcp().stats().crc_drops, 0u);
  EXPECT_EQ(r.wl->corrupted(), 0);  // CRC keeps damage away from the app
}

TEST(McpGoBackN, SurvivesMisroutedPackets) {
  ClusterConfig cc = base_config();
  cc.faults.misroute_prob = 0.10;
  auto r = run_stream(cc, 50, 1500, sim::msec(200));
  EXPECT_TRUE(r.wl->complete());
}

TEST(McpGoBackN, SurvivesAllFaultsTogether) {
  ClusterConfig cc = base_config();
  cc.faults = {0.08, 0.08, 0.03};
  auto r = run_stream(cc, 40, 2500, sim::msec(400));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
}

TEST(McpGoBackN, NackTriggersRewind) {
  ClusterConfig cc = base_config();
  cc.faults.drop_prob = 0.2;
  auto r = run_stream(cc, 30, 6000, sim::msec(300));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_GT(r.cluster->node(0).mcp().stats().nacks_rx, 0u);
}

TEST(McpGoBackN, DuplicateFragmentsFilteredByMcp) {
  ClusterConfig cc = base_config();
  cc.faults.drop_prob = 0.25;
  auto r = run_stream(cc, 30, 9000, sim::msec(400));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_EQ(r.wl->duplicates(), 0);
  EXPECT_GT(r.cluster->node(1).mcp().stats().dup_drops, 0u);
}

// ---- receive-token behaviour ----

TEST(McpTokens, NoBufferMeansRetryUntilProvided) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));

  gm::Buffer sbuf = tx.alloc_dma_buffer(256);
  bool sent = false;
  ASSERT_TRUE(
      tx.post(sbuf, 256, {.dst = 1, .dst_port = 3,
                          .callback = [&](bool ok) { sent = ok; }}).ok());
  cluster.run_for(sim::msec(3));
  EXPECT_FALSE(sent);  // receiver has no buffer: sender keeps retrying
  EXPECT_GT(cluster.node(1).mcp().stats().no_token_drops, 0u);

  int got = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++got; });
  gm::Buffer rbuf = rx.alloc_dma_buffer(256);
  rx.provide_receive_buffer(rbuf);
  cluster.run_for(sim::msec(3));
  EXPECT_TRUE(sent);
  EXPECT_EQ(got, 1);
}

TEST(McpTokens, BufferTooSmallIsNotMatched) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));

  gm::Buffer small = rx.alloc_dma_buffer(64);
  rx.provide_receive_buffer(small);
  gm::Buffer sbuf = tx.alloc_dma_buffer(512);
  bool sent = false;
  ASSERT_TRUE(
      tx.post(sbuf, 512, {.dst = 1, .dst_port = 3,
                          .callback = [&](bool ok) { sent = ok; }}).ok());
  cluster.run_for(sim::msec(3));
  EXPECT_FALSE(sent);

  gm::Buffer big = rx.alloc_dma_buffer(512);
  rx.provide_receive_buffer(big);
  cluster.run_for(sim::msec(3));
  EXPECT_TRUE(sent);
}

TEST(McpTokens, PriorityMustMatch) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));

  gm::Buffer lo = rx.alloc_dma_buffer(256);
  rx.provide_receive_buffer(lo, /*priority=*/0);
  gm::Buffer sbuf = tx.alloc_dma_buffer(128);
  bool sent = false;
  ASSERT_TRUE(
      tx.post(sbuf, 128, {.dst = 1, .dst_port = 3, .priority = 1,
                          .callback = [&](bool ok) { sent = ok; }}).ok());
  cluster.run_for(sim::msec(3));
  EXPECT_FALSE(sent);
  gm::Buffer hi = rx.alloc_dma_buffer(256);
  rx.provide_receive_buffer(hi, /*priority=*/1);
  cluster.run_for(sim::msec(3));
  EXPECT_TRUE(sent);
}

// ---- error paths ----

TEST(McpErrors, UnroutableDestinationRejectedSynchronously) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  const std::uint32_t tokens_before = tx.send_tokens_free();
  bool fired = false;
  const gm::Status st =
      tx.post(b, 64, {.dst = 7, .dst_port = 3,
                      .callback = [&](bool) { fired = true; }});
  EXPECT_EQ(st.code(), gm::Status::kUnreachable);
  cluster.run_for(sim::msec(1));
  // The post was refused up front: no callback, no token consumed, no
  // NIC-level send error manufactured.
  EXPECT_FALSE(fired);
  EXPECT_EQ(tx.send_tokens_free(), tokens_before);
  EXPECT_EQ(tx.stats().send_errors, 0u);
}

TEST(McpErrors, SendFromNotYetOpenPortErrors) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  gm::Buffer b = tx.alloc_dma_buffer(64);  // port opens at first L_timer
  bool fired = false, cb_ok = true;
  ASSERT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3,
                              .callback = [&](bool ok) {
                                cb_ok = ok;
                                fired = true;
                              }}).ok());
  cluster.run_for(sim::msec(1));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(cb_ok);
}

TEST(McpErrors, HungMcpStopsTrafficAndGmNeverNotices) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 50;
  wc.msg_len = 3000;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.eq().schedule_after(sim::usec(50), [&] {
    cluster.node(0).mcp().inject_hang("test");
  });
  cluster.run_for(sim::msec(10));
  EXPECT_FALSE(wl.complete());
  EXPECT_TRUE(cluster.node(0).mcp().hung());
  // GM mode: no watchdog, no FATAL interrupt, node silently cut off.
  EXPECT_EQ(cluster.node(0).driver().fatal_interrupts(), 0u);
}

// ---- L_timer housekeeping ----

TEST(McpLTimer, RunsPeriodically) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  cluster.run_for(sim::msec(11));
  const auto runs = cluster.node(0).mcp().stats().l_timer_runs;
  // Nominal period 550 us -> ~20 runs in 11 ms.
  EXPECT_GE(runs, 15u);
  EXPECT_LE(runs, 25u);
}

TEST(McpLTimer, MaxGapStaysUnderWatchdogInterval) {
  // The invariant behind the paper's watchdog design: even under load,
  // consecutive L_timer() runs stay closer together than IT1's 820 us.
  ClusterConfig cc = base_config(mcp::McpMode::kFtgm);
  Cluster cluster(cc);
  auto& p0 = cluster.node(0).open_port(2);
  auto& p1 = cluster.node(1).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 200;
  wc.msg_len = 4096;
  fi::StreamWorkload a(p0, p1, wc), b(p1, p0, wc);
  cluster.run_for(sim::usec(900));
  a.start();
  b.start();
  cluster.run_for(sim::msec(40));
  const auto gap = cluster.node(0).mcp().max_l_timer_gap();
  EXPECT_GT(gap, sim::usecf(550.0));  // queueing delays it past nominal
  EXPECT_LT(gap, sim::usecf(820.0));  // but never past the watchdog
}

TEST(McpLTimer, ClearsMagicWord) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  cluster.node(0).driver().write_magic(0xfeedface);
  cluster.run_for(sim::msec(1));
  EXPECT_EQ(cluster.node(0).driver().read_magic(), 0u);
}

TEST(McpLTimer, HungMcpLeavesMagicWord) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  cluster.node(0).mcp().inject_hang("test");
  cluster.node(0).driver().write_magic(0xfeedface);
  cluster.run_for(sim::msec(5));
  EXPECT_EQ(cluster.node(0).driver().read_magic(), 0xfeedfaceu);
}

TEST(McpLTimer, AlarmDeliveredThroughReceiveQueue) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  auto& p = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  bool fired = false;
  sim::Time at = 0;
  p.set_alarm(sim::msec(2), [&] {
    fired = true;
    at = cluster.eq().now();
  });
  cluster.run_for(sim::msec(5));
  EXPECT_TRUE(fired);
  EXPECT_GE(at, sim::msec(2));
  EXPECT_LE(at, sim::msec(3) + sim::usec(600));  // + L_timer command latency
}

TEST(McpLTimer, PortOpenGoesThroughControlPath) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc);
  cluster.node(0).open_port(4);
  EXPECT_FALSE(cluster.node(0).mcp().port_open(4));
  cluster.run_for(sim::usec(900));
  EXPECT_TRUE(cluster.node(0).mcp().port_open(4));
}

// ---- send_chunk image ----

TEST(SendChunk, AssemblesWithBothEntryPoints) {
  const auto img = mcp::assemble_send_chunk();
  EXPECT_GT(img.program.words.size(), 40u);
  EXPECT_EQ(img.entry_dma, mcp::SramLayout::kCodeBase);
  EXPECT_GT(img.entry_tx, img.entry_dma);
  EXPECT_LT(img.program.base + img.program.size_bytes(),
            mcp::SramLayout::kCodeLimit);
}

TEST(SendChunk, InterpreterRunsItPerFragment) {
  auto r = run_stream(base_config(), 10, 9000, sim::msec(10));
  EXPECT_TRUE(r.wl->complete());
  // 3 fragments per message, two interpreted phases each.
  EXPECT_EQ(r.cluster->node(0).mcp().stats().send_chunk_runs, 60u);
}

TEST(McpWindow, SmallWindowStillCompletes) {
  ClusterConfig cc = base_config();
  cc.send_window = 2;
  auto r = run_stream(cc, 4, 40960, sim::msec(80));  // 10 fragments each
  EXPECT_TRUE(r.wl->complete());
}

TEST(McpStats, UtilizationAccumulates) {
  auto r = run_stream(base_config(), 20, 64, sim::msec(10));
  EXPECT_TRUE(r.wl->complete());
  EXPECT_GT(r.cluster->node(0).mcp().busy_ns(), 0u);
  EXPECT_GT(r.cluster->node(1).mcp().busy_ns(), 0u);
  EXPECT_GT(r.cluster->node(0).cpu().busy_ns(), 0u);
}

}  // namespace
}  // namespace myri
