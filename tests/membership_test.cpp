// Elastic cluster membership (DESIGN.md section 13).
//
// The versioned gm::Roster is the single source of truth for who is
// expected on the fabric; Cluster::add_node / drain_node / replace_node
// mutate it under traffic, and the FailoverManager folds every roster
// delta into the route control plane: a clean join converges via census
// fold-in (no full remap), a retirement evicts the node from the map and
// the cross-epoch caches, a replacement re-pushes the table to the spare.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faultinject/scenario.hpp"
#include "gm/cluster.hpp"
#include "gm/node.hpp"
#include "gm/roster.hpp"
#include "mapper/failover.hpp"
#include "net/fabric.hpp"

namespace myri {
namespace {

// ---- the roster itself -------------------------------------------------

TEST(Roster, MutationsBumpTheEpochAndAppendHistory) {
  gm::Roster r;
  r.seed({0, 1, 2}, 0);
  EXPECT_EQ(r.epoch(), 1u);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.is_member(1));

  r.join(3, sim::usec(10));
  EXPECT_EQ(r.epoch(), 2u);
  EXPECT_TRUE(r.is_member(3));

  r.drain(1, sim::usec(20));
  EXPECT_EQ(r.epoch(), 3u);
  EXPECT_TRUE(r.is_member(1));  // draining nodes are still members
  EXPECT_TRUE(r.is_draining(1));
  r.drain(1, sim::usec(21));  // idempotent: no epoch bump
  EXPECT_EQ(r.epoch(), 3u);

  r.retire(1, sim::usec(30));
  EXPECT_EQ(r.epoch(), 4u);
  EXPECT_FALSE(r.is_member(1));
  EXPECT_FALSE(r.is_draining(1));

  r.replace(2, sim::usec(40));
  EXPECT_EQ(r.epoch(), 5u);
  EXPECT_TRUE(r.is_member(2));

  EXPECT_EQ(r.members(), (std::vector<net::NodeId>{0, 2, 3}));
  // 3 seed entries + join + drain + retire + replace.
  EXPECT_EQ(r.history().size(), 7u);
  EXPECT_EQ(r.history().back().kind, gm::MembershipChange::kReplace);
  EXPECT_EQ(r.history().back().epoch, 5u);
}

TEST(Roster, MembersAtReplaysTheTimeline) {
  gm::Roster r;
  r.seed({0, 1}, 0);
  r.join(2, sim::msec(1));
  r.drain(1, sim::msec(2));
  r.retire(1, sim::msec(3));

  EXPECT_EQ(r.members_at(0), (std::vector<net::NodeId>{0, 1}));
  EXPECT_EQ(r.members_at(sim::msec(1)), (std::vector<net::NodeId>{0, 1, 2}));
  // Draining is not absence.
  EXPECT_EQ(r.members_at(sim::msec(2)), (std::vector<net::NodeId>{0, 1, 2}));
  EXPECT_EQ(r.members_at(sim::msec(3)), (std::vector<net::NodeId>{0, 2}));
}

TEST(Roster, RejectsContradictoryMutations) {
  gm::Roster r;
  r.seed({0, 1}, 0);
  EXPECT_THROW(r.seed({5}, 0), std::logic_error);
  EXPECT_THROW(r.join(1, 0), std::invalid_argument);
  EXPECT_THROW(r.drain(7, 0), std::invalid_argument);
  EXPECT_THROW(r.retire(7, 0), std::invalid_argument);
  EXPECT_THROW(r.replace(7, 0), std::invalid_argument);
}

TEST(Roster, ObserverSeesEveryDelta) {
  gm::Roster r;
  std::vector<gm::MembershipChange> seen;
  r.seed({0}, 0);  // seeding does not fire the observer
  r.set_observer([&](const gm::RosterEvent& ev) { seen.push_back(ev.kind); });
  r.join(1, 0);
  r.drain(1, 0);
  r.retire(1, 0);
  EXPECT_EQ(seen, (std::vector<gm::MembershipChange>{
                      gm::MembershipChange::kJoin,
                      gm::MembershipChange::kDrain,
                      gm::MembershipChange::kRetire}));
}

// ---- fabric free-port reservation --------------------------------------

TEST(Membership, FabricReservesFreePortsInDeterministicOrder) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  net::FabricBuilder fb(topo, {net::FabricPreset::kSingleSwitch, 2, 8});
  EXPECT_EQ(fb.free_ports(), 6u);
  const auto p = fb.reserve_port();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(fb.free_ports(), 5u);
  EXPECT_EQ(fb.placements().size(), 3u);
  EXPECT_EQ(fb.placements().back().sw, p->sw);
  EXPECT_EQ(fb.placements().back().port, p->port);
}

TEST(Membership, AddNodeThrowsOnAFullFabric) {
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.fabric = net::FabricPreset::kRing;
  cc.switch_ports = 3;  // 2 trunks + 1 host per switch: zero free ports
  gm::Cluster cluster(cc);
  EXPECT_EQ(cluster.fabric().free_ports(), 0u);
  EXPECT_THROW(cluster.add_node(), std::runtime_error);
}

// ---- cluster membership under the FailoverManager ----------------------

gm::ClusterConfig ring4(mcp::McpMode mode, std::uint8_t radix = 3) {
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.fabric = net::FabricPreset::kRing;
  cc.switch_ports = radix;
  cc.mode = mode;
  cc.seed = 11;
  return cc;
}

void bring_up(gm::Cluster& cluster, mapper::FailoverManager& fm) {
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(50));
  ASSERT_TRUE(ok);
  ASSERT_TRUE(fm.fully_converged());
  ASSERT_EQ(fm.mapper().epoch(), 1u);
}

TEST(Membership, HotAddFoldsInWithoutAFullRemap) {
  // Radix 5 packs 4 nodes onto 2 ring switches with free ports left over
  // for the joiner (radix 3 and 4 build out exactly full).
  gm::Cluster cluster(ring4(mcp::McpMode::kGm, 5));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);
  const std::uint64_t runs = fm.mapper().stats().runs;
  const std::uint32_t epoch = fm.mapper().epoch();

  const net::NodeId id = cluster.add_node();
  EXPECT_EQ(id, 4);
  EXPECT_EQ(cluster.size(), 5);
  EXPECT_EQ(cluster.roster().epoch(), 2u);
  EXPECT_TRUE(cluster.roster().is_member(4));
  EXPECT_EQ(cluster.metrics().gauge("cluster.membership_epoch").value(), 2);
  EXPECT_EQ(cluster.metrics().counter("mapper.joins").value(), 1u);

  cluster.run_for(sim::msec(500));
  // The join converged via census fold-in at the recorded attach point:
  // one route-epoch bump, zero new discovery floods.
  EXPECT_EQ(fm.mapper().stats().runs, runs);
  EXPECT_GE(fm.mapper().stats().census_folds, 1u);
  EXPECT_EQ(fm.mapper().epoch(), epoch + 1);
  EXPECT_TRUE(fm.fully_converged());
  EXPECT_EQ(cluster.node(4).route_epoch(), fm.mapper().epoch());

  // And the joiner serves traffic both ways.
  gm::Port& rx = cluster.node(4).open_port(2, {});
  int got = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++got; });
  rx.provide_receive_buffer(rx.alloc_dma_buffer(512));
  gm::Port& tx = cluster.node(1).open_port(2, {});
  cluster.run_for(sim::msec(2));
  const gm::Buffer b = tx.alloc_dma_buffer(256);
  ASSERT_TRUE(tx.post(b, 256, {.dst = 4, .dst_port = 2}).ok());
  cluster.run_for(sim::msec(10));
  EXPECT_EQ(got, 1);
}

TEST(Membership, DrainGatesNewStreamsFinishesInFlightAndRetires) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);
  EXPECT_EQ(fm.mapper().tracked_attach_points(), 4u);

  gm::Port& rx = cluster.node(3).open_port(2, {});
  int got = 0;
  rx.set_receive_handler([&](const gm::RecvInfo& info) {
    ++got;
    rx.provide_receive_buffer(info.buffer);
  });
  rx.provide_receive_buffer(rx.alloc_dma_buffer(512));
  gm::Port& tx1 = cluster.node(1).open_port(2, {});
  gm::Port& tx0 = cluster.node(0).open_port(2, {});
  cluster.run_for(sim::msec(2));

  // Node 1 establishes a stream to node 3 before the drain starts.
  const gm::Buffer b1 = tx1.alloc_dma_buffer(256);
  ASSERT_TRUE(tx1.post(b1, 256, {.dst = 3, .dst_port = 2}).ok());
  cluster.run_for(sim::msec(2));

  bool retired = false;
  cluster.drain_node(3, sim::msec(5),
                     [&](net::NodeId x) { retired = x == 3; });
  EXPECT_TRUE(cluster.roster().is_draining(3));
  EXPECT_EQ(cluster.metrics().counter("mapper.drains").value(), 1u);

  // A port with no established stream to the victim is refused...
  const gm::Buffer b0 = tx0.alloc_dma_buffer(256);
  EXPECT_EQ(tx0.post(b0, 256, {.dst = 3, .dst_port = 2}).code(),
            gm::Status::kDraining);
  // ...while the in-flight conversation keeps its admission (and must
  // deliver exactly-once).
  ASSERT_TRUE(tx1.post(b1, 256, {.dst = 3, .dst_port = 2}).ok());

  cluster.run_for(sim::msec(200));
  EXPECT_TRUE(retired);
  EXPECT_FALSE(cluster.roster().is_member(3));
  EXPECT_EQ(cluster.roster().epoch(), 3u);  // drain + retire
  EXPECT_EQ(got, 2);

  // Retirement bounds the mapper's cross-epoch caches: the attach point
  // and route memory of the retired node are evicted, not kept forever.
  EXPECT_EQ(fm.mapper().tracked_attach_points(), 3u);
  EXPECT_EQ(fm.mapper().table().count(3), 0u);
  EXPECT_TRUE(fm.fully_converged());
}

TEST(Membership, ReplaceHandsTheNodeIdToASpareThatServesTraffic) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  // kGm has no watchdog: the wedged card would stay dead forever.
  cluster.node(2).mcp().inject_hang("membership test");
  cluster.run_for(sim::msec(10));

  gm::Node& spare = cluster.replace_node(2);
  EXPECT_EQ(&cluster.node(2), &spare);
  EXPECT_EQ(spare.id(), 2);
  EXPECT_TRUE(cluster.roster().is_member(2));
  EXPECT_EQ(cluster.roster().epoch(), 2u);
  EXPECT_EQ(cluster.metrics().counter("mapper.replaces").value(), 1u);

  // The fresh card holds no routes; the mapper re-pushes the current
  // table to it (same epoch — the fabric did not change shape).
  cluster.run_for(sim::msec(300));
  EXPECT_EQ(cluster.node(2).route_epoch(), fm.mapper().epoch());
  EXPECT_FALSE(cluster.node(2).mcp().hung());

  gm::Port& rx = spare.open_port(2, {});
  int got = 0;
  rx.set_receive_handler([&](const gm::RecvInfo&) { ++got; });
  rx.provide_receive_buffer(rx.alloc_dma_buffer(512));
  gm::Port& tx = cluster.node(0).open_port(2, {});
  cluster.run_for(sim::msec(2));
  const gm::Buffer b = tx.alloc_dma_buffer(256);
  ASSERT_TRUE(tx.post(b, 256, {.dst = 2, .dst_port = 2}).ok());
  cluster.run_for(sim::msec(10));
  EXPECT_EQ(got, 1);
}

// ---- scenario-level roster timeline ------------------------------------

TEST(MembershipScenario, ExpectedUpReplaysTheMembershipTimeline) {
  fi::Scenario s;
  s.nodes = 6;
  s.fabric = net::FabricPreset::kFatTree;
  using K = fi::ScenarioEvent::Kind;

  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 2;
  drain.at = fi::Scenario::kWarmup + sim::msec(1);
  fi::ScenarioEvent join;
  join.kind = K::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(2);
  // kGm: the hang excuses node 3 for good... unless the later replace
  // swaps in a spare, which is expected back up.
  s.mode = mcp::McpMode::kGm;
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 3;
  hang.at = fi::Scenario::kWarmup + sim::msec(3);
  fi::ScenarioEvent repl;
  repl.kind = K::kNodeReplace;
  repl.node = 3;
  repl.at = fi::Scenario::kWarmup + sim::msec(4);
  s.events = {drain, join, hang, repl};

  const std::vector<net::NodeId> up = s.expected_up_at_horizon();
  // Drained node 2 is expected retired; replaced node 3 is expected back;
  // the joiner takes id 6.
  EXPECT_EQ(up, (std::vector<net::NodeId>{0, 1, 3, 4, 5, 6}));
}

TEST(MembershipScenario, MembershipKindsRoundTripThroughJson) {
  fi::Scenario s;
  s.nodes = 4;
  s.fabric = net::FabricPreset::kRing;
  s.radix = 5;  // free ports for the join (radix 4 builds out full)
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent join;
  join.kind = K::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(1);
  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 2;
  drain.at = fi::Scenario::kWarmup + sim::msec(2);
  fi::ScenarioEvent repl;
  repl.kind = K::kNodeReplace;
  repl.node = 1;
  repl.at = fi::Scenario::kWarmup + sim::msec(3);
  s.events = {join, drain, repl};

  std::string err;
  const auto back = fi::Scenario::from_json(s.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, s);
}

TEST(Membership, SustainedChurnRecyclesPortsAndBoundsMapperCaches) {
  // 100 join/drain cycles on a ring that only has two spare ports: from
  // cycle three on, every join reuses a port an earlier retirement handed
  // back (Fabric::release_port), and the mapper's cross-epoch caches must
  // stay bounded by live membership — the exact leak the soak drift
  // oracle bounds, pinned here as a plain regression test.
  gm::Cluster cluster(ring4(mcp::McpMode::kGm, 5));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  for (int cycle = 0; cycle < 100; ++cycle) {
    const net::NodeId id = cluster.add_node();
    EXPECT_EQ(id, static_cast<net::NodeId>(4 + cycle));
    cluster.run_for(sim::msec(30));
    bool retired = false;
    cluster.drain_node(id, sim::msec(2),
                       [&](net::NodeId x) { retired = x == id; });
    cluster.run_for(sim::msec(50));
    ASSERT_TRUE(retired) << "cycle " << cycle;
    ASSERT_FALSE(cluster.roster().is_member(id)) << "cycle " << cycle;
  }

  // Back to the four seed members after 100 transient joiners...
  EXPECT_EQ(cluster.roster().members().size(), 4u);
  EXPECT_EQ(cluster.metrics().counter("mapper.joins").value(), 100u);
  EXPECT_EQ(cluster.metrics().counter("mapper.drains").value(), 100u);
  // ...and the mapper forgot every one of them: attach-point and route
  // caches track live members, not churn history.
  EXPECT_LE(fm.mapper().tracked_attach_points(), 4u);
  EXPECT_LE(fm.mapper().tracked_routes(), 4u);
  EXPECT_EQ(fm.mapper().table().count(103), 0u);
  EXPECT_TRUE(fm.fully_converged());
}

TEST(MembershipScenario, ValidationRejectsImpossibleSchedules) {
  fi::Scenario s;
  s.nodes = 4;
  s.fabric = net::FabricPreset::kRing;
  s.radix = 4;
  fi::ScenarioEvent drain;
  drain.kind = fi::ScenarioEvent::Kind::kNodeDrain;
  drain.node = 0;  // the mapper home must not drain
  drain.at = fi::Scenario::kWarmup;
  s.events = {drain};
  std::string err;
  EXPECT_FALSE(fi::Scenario::from_json(s.to_json(), &err).has_value());
  EXPECT_NE(err.find("node 0"), std::string::npos);

  // A radix-3 ring has zero free ports: joins past capacity are rejected.
  fi::Scenario full;
  full.nodes = 4;
  full.fabric = net::FabricPreset::kRing;
  full.radix = 3;
  fi::ScenarioEvent join;
  join.kind = fi::ScenarioEvent::Kind::kNodeJoin;
  join.at = fi::Scenario::kWarmup;
  full.events = {join};
  EXPECT_FALSE(fi::Scenario::from_json(full.to_json(), &err).has_value());
  EXPECT_NE(err.find("free port"), std::string::npos);
}

}  // namespace
}  // namespace myri
