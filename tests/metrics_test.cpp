// Observability layer tests: Registry instrument semantics and JSON
// snapshots, PhaseTimer phase accounting, the nearest-rank percentile fix
// in LatencyRecorder, offered-vs-delivered link byte accounting, and an
// end-to-end check that a cluster recovery populates the Table 3 phase
// histograms.
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "metrics/metrics.hpp"
#include "metrics/registry.hpp"
#include "net/link.hpp"

namespace myri {
namespace {

// ---------------------------------------------------------------- Registry

TEST(Registry, CounterAccumulatesAndIsStablePerName) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("a.b");
  c.inc();
  c.add(4);
  EXPECT_EQ(reg.counter("a.b").value(), 5u);
  // Same name -> same instrument (components cache the address).
  EXPECT_EQ(&reg.counter("a.b"), &c);
  EXPECT_EQ(reg.counter("other").value(), 0u);
}

TEST(Registry, GaugeTracksValueAndHighWaterMark) {
  metrics::Registry reg;
  metrics::Gauge& g = reg.gauge("depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max(), 7);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
  EXPECT_EQ(g.max(), 7);  // high-water mark survives decreases
}

TEST(Registry, HistogramBucketsAreInclusiveUpperBounds) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.histogram("h", {10, 100});
  h.add(0);    // first bucket (<= 10)
  h.add(10);   // inclusive upper bound -> still first bucket
  h.add(11);   // second bucket
  h.add(100);  // second bucket (inclusive)
  h.add(101);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 222u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 101u);
  EXPECT_DOUBLE_EQ(h.mean(), 222.0 / 5.0);
}

TEST(Registry, HistogramPercentileIsBucketQuantizedNearestRank) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.histogram("h", {10, 100, 1000});
  for (int i = 0; i < 9; ++i) h.add(5);  // bucket 0
  h.add(500);                            // bucket 2
  EXPECT_EQ(h.percentile(50), 10u);   // quantized to the bucket bound
  EXPECT_EQ(h.percentile(90), 10u);   // rank 9 still in bucket 0
  EXPECT_EQ(h.percentile(100), 500u); // capped at the observed max
  // Empty histogram answers 0 everywhere.
  EXPECT_EQ(reg.histogram("empty").percentile(99), 0u);
}

TEST(Registry, RollWindowedResetsOnlyWindowedHistograms) {
  metrics::Registry reg;
  metrics::Histogram& win = reg.histogram("win", {10, 100});
  metrics::Histogram& acc = reg.histogram("acc", {10, 100});
  win.set_windowed();
  EXPECT_TRUE(win.windowed());
  EXPECT_FALSE(acc.windowed());
  win.add(5);
  win.add(50);
  acc.add(7);

  EXPECT_EQ(reg.roll_windowed(), 1u);  // only "win" rolls
  EXPECT_EQ(win.count(), 0u);
  EXPECT_EQ(win.sum(), 0u);
  EXPECT_EQ(win.max(), 0u);
  ASSERT_EQ(win.bucket_counts().size(), 3u);
  EXPECT_EQ(win.bucket_counts()[0], 0u);
  EXPECT_EQ(acc.count(), 1u);  // accumulating histogram untouched
  EXPECT_EQ(acc.sum(), 7u);

  // The window starts fresh: new samples land in an empty histogram, so
  // long-run percentile reads reflect the current window only.
  win.add(200);
  EXPECT_EQ(win.count(), 1u);
  EXPECT_EQ(win.percentile(50), 200u);
  // Rolling is idempotent per window and keeps the windowed flag.
  EXPECT_EQ(reg.roll_windowed(), 1u);
  EXPECT_TRUE(win.windowed());
  EXPECT_EQ(win.count(), 0u);
}

TEST(Registry, MergeAccumulatesAcrossRegistries) {
  metrics::Registry a;
  metrics::Registry b;
  a.counter("c").add(2);
  b.counter("c").add(3);
  b.counter("only_b").add(1);
  a.gauge("g").set(10);
  b.gauge("g").set(4);
  a.histogram("h", {10}).add(5);
  b.histogram("h", {10}).add(50);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 5u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_EQ(a.gauge("g").value(), 4);   // last value wins...
  EXPECT_EQ(a.gauge("g").max(), 10);    // ...joint high-water survives
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").sum(), 55u);
  EXPECT_EQ(a.histogram("h").bucket_counts()[0], 1u);
  EXPECT_EQ(a.histogram("h").bucket_counts()[1], 1u);
}

TEST(Registry, ToJsonEmptySnapshot) {
  metrics::Registry reg;
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Registry, ToJsonSnapshotIsDeterministicAndComplete) {
  metrics::Registry reg;
  reg.counter("z.late").add(7);
  reg.counter("a.early").add(3);
  metrics::Gauge& g = reg.gauge("g");
  g.set(5);
  g.set(2);
  metrics::Histogram& h = reg.histogram("h", {10, 100});
  h.add(5);
  h.add(150);
  // Keys sorted, integers only, sparse [bound,count] buckets with a null
  // bound for the overflow bucket. Pinned as an exact string so the export
  // format cannot drift silently.
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"a.early\":3,\"z.late\":7},"
            "\"gauges\":{\"g\":{\"max\":5,\"value\":2}},"
            "\"histograms\":{\"h\":{\"buckets\":[[10,1],[null,1]],"
            "\"count\":2,\"max\":150,\"min\":5,\"sum\":155}}}");
}

TEST(Registry, ToJsonEscapesQuotesAndBackslashes) {
  metrics::Registry reg;
  reg.counter("we\"ird\\name").add(1);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"we\\\"ird\\\\name\":1},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(Registry, NullSafeHelpersAreNoOpsWhenUnbound) {
  metrics::bump(nullptr);
  metrics::bump(nullptr, 5);
  metrics::level(nullptr, 3);
  metrics::observe(nullptr, 9);  // must not crash
  metrics::Registry reg;
  metrics::Counter* c = &reg.counter("c");
  metrics::bump(c, 2);
  EXPECT_EQ(c->value(), 2u);
}

TEST(PhaseTimer, RecordsPerPhaseAndTotalDurations) {
  metrics::Registry reg;
  metrics::PhaseTimer t(reg, "ftd.recovery");
  EXPECT_TRUE(t.bound());
  t.start(100);
  t.mark("detect", 250);
  t.mark("confirm", 400);
  t.finish(900);
  const metrics::Histogram* detect =
      reg.find_histogram("ftd.recovery.detect_ns");
  const metrics::Histogram* confirm =
      reg.find_histogram("ftd.recovery.confirm_ns");
  const metrics::Histogram* total =
      reg.find_histogram("ftd.recovery.total_ns");
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(confirm, nullptr);
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(detect->sum(), 150u);  // since start
  EXPECT_EQ(confirm->sum(), 150u); // since previous mark
  EXPECT_EQ(total->sum(), 800u);   // since start
  // Unbound timers are inert.
  metrics::PhaseTimer unbound;
  EXPECT_FALSE(unbound.bound());
  unbound.start(0);
  unbound.mark("x", 10);
  unbound.finish(20);
}

// ------------------------------------------------- LatencyRecorder (bugfix)

TEST(LatencyRecorder, PercentileUsesNearestRank) {
  metrics::LatencyRecorder r;
  // Unsorted insertion order exercises the lazy in-place sort.
  r.add(sim::usec(3));
  r.add(sim::usec(1));
  r.add(sim::usec(4));
  r.add(sim::usec(2));
  // Nearest-rank over {1,2,3,4} us: ceil(p/100*4) gives ranks 1,2,2,4.
  // The old floor-indexing code returned 3us for p50 (rank bias of one
  // whole sample) -- these pins fail on it.
  EXPECT_DOUBLE_EQ(r.percentile_us(25), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(50), 2.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(100), 4.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(0), 1.0);  // clamped to the first rank
  EXPECT_DOUBLE_EQ(r.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(r.max_us(), 4.0);
  // Adding after a query re-arms the sort.
  r.add(sim::usec(10));
  EXPECT_DOUBLE_EQ(r.percentile_us(100), 10.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(50), 3.0);  // rank 3 of {1,2,3,4,10}
}

TEST(LatencyRecorder, SingleSampleAndEmpty) {
  metrics::LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.percentile_us(50), 0.0);
  r.add(sim::usec(7));
  EXPECT_DOUBLE_EQ(r.percentile_us(1), 7.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(99), 7.0);
}

// ------------------------------------------------- Link accounting (bugfix)

class CountingSink : public net::PacketSink {
 public:
  void deliver(net::Packet, std::uint8_t) override { ++delivered; }
  int delivered = 0;
};

TEST(LinkAccounting, DroppedPacketsAreOfferedButNotDelivered) {
  sim::EventQueue eq;
  net::Link link(eq, sim::Rng(7), {}, "t0");
  CountingSink sink;
  link.connect(sink, 0);
  net::LinkFaults f;
  f.drop_prob = 1.0;
  link.set_faults(f);

  net::Packet p;
  p.payload.assign(256, std::byte{1});
  p.seal();
  const std::uint64_t wire = p.wire_size();
  link.send(p);
  eq.run();

  // The old code credited pkt.wire_size() to a single bytes counter before
  // the drop check, so dropped traffic inflated bandwidth numbers.
  EXPECT_EQ(link.stats().offered_bytes, wire);
  EXPECT_EQ(link.stats().delivered_bytes, 0u);
  EXPECT_EQ(link.stats().dropped, 1u);
  EXPECT_EQ(sink.delivered, 0);
}

TEST(LinkAccounting, DownLinkOffersButDeliversNothing) {
  sim::EventQueue eq;
  net::Link link(eq, sim::Rng(7), {}, "t0");
  CountingSink sink;
  link.connect(sink, 0);
  link.set_down(true);

  net::Packet p;
  p.payload.assign(64, std::byte{2});
  p.seal();
  const std::uint64_t wire = p.wire_size();
  for (int i = 0; i < 3; ++i) link.send(p);
  eq.run();

  EXPECT_EQ(link.stats().offered_bytes, 3 * wire);
  EXPECT_EQ(link.stats().delivered_bytes, 0u);
  EXPECT_EQ(link.stats().dropped, 3u);
  EXPECT_EQ(sink.delivered, 0);
}

TEST(LinkAccounting, CleanDeliveryCountsBothAndFeedsRegistry) {
  sim::EventQueue eq;
  metrics::Registry reg;
  net::Link link(eq, sim::Rng(7), {}, "t0");
  link.bind_metrics(reg);
  CountingSink sink;
  link.connect(sink, 0);

  net::Packet p;
  p.payload.assign(128, std::byte{3});
  p.seal();
  const std::uint64_t wire = p.wire_size();
  link.send(p);
  link.send(p);
  eq.run();

  EXPECT_EQ(link.stats().offered_bytes, 2 * wire);
  EXPECT_EQ(link.stats().delivered_bytes, 2 * wire);
  EXPECT_EQ(sink.delivered, 2);
  EXPECT_EQ(reg.counter("link.t0.offered_bytes").value(), 2 * wire);
  EXPECT_EQ(reg.counter("link.t0.delivered_bytes").value(), 2 * wire);
  EXPECT_EQ(reg.counter("link.t0.dropped").value(), 0u);
}

// --------------------------------------------------- Cluster end-to-end

TEST(ClusterMetrics, TrafficPopulatesStackCounters) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 10;
  wc.msg_len = 1024;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.run_for(sim::msec(20));
  ASSERT_TRUE(wl.complete());

  metrics::Registry& reg = cluster.metrics();
  EXPECT_EQ(reg.counter("node0.port2.sends_posted").value(), 10u);
  EXPECT_EQ(reg.counter("node0.port2.sends_completed").value(), 10u);
  EXPECT_EQ(reg.counter("node1.port3.msgs_received").value(), 10u);
  EXPECT_EQ(reg.counter("node1.port3.bytes_received").value(), 10u * 1024u);
  EXPECT_GE(reg.counter("node0.mcp.sends_posted").value(), 10u);
  EXPECT_GT(reg.counter("node0.mcp.busy_ns").value(), 0u);
  // Link-level delivery: node0's uplink carried at least the payload.
  EXPECT_GT(reg.counter("link.node0->sw0.delivered_bytes").value(),
            10u * 1024u);
  EXPECT_GT(reg.counter("switch.sw0.forwarded").value(), 0u);
  // Token gauges saw traffic in flight.
  EXPECT_GT(reg.gauge("node0.port2.send_tokens_in_flight").max(), 0);
}

TEST(ClusterMetrics, RecoveryPopulatesTable3PhaseHistograms) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 30;
  wc.msg_len = 2048;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();

  bool recovered = false;
  tx.set_on_recovered([&] { recovered = true; });
  cluster.eq().schedule_after(sim::usec(50), [&] {
    cluster.node(0).ftd().mark_fault_injected();
    cluster.node(0).mcp().inject_hang("test");
  });
  cluster.run_for(sim::sec(4));
  ASSERT_TRUE(recovered);

  const metrics::Registry& reg = cluster.metrics();
  // All six Table 3 phases must have been timed exactly once.
  for (const char* name :
       {"node0.ftd.recovery.detect_ns", "node0.ftd.recovery.confirm_ns",
        "node0.ftd.recovery.reset_ns", "node0.ftd.recovery.reload_ns",
        "node0.ftd.recovery.restore_ns", "node0.ftd.recovery.total_ns",
        "node0.port2.recovery.replay_ns"}) {
    const metrics::Histogram* h = reg.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), 1u) << name;
    EXPECT_GT(h->sum(), 0u) << name;
  }
  const metrics::Counter* recoveries =
      reg.find_counter("node0.ftd.recoveries");
  ASSERT_NE(recoveries, nullptr);
  EXPECT_EQ(recoveries->value(), 1u);
}

}  // namespace
}  // namespace myri
