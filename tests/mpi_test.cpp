// Tests for the MPI-style middleware over GM: matching semantics,
// collectives, fatal-error behaviour on GM, and transparency of FTGM
// recovery underneath an MPI job.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "mpi/comm.hpp"

namespace myri::mpi {
namespace {

struct World {
  explicit World(int n, mcp::McpMode mode = mcp::McpMode::kGm,
                 bool abort_on_error = true) {
    gm::ClusterConfig cc;
    cc.nodes = n;
    cc.mode = mode;
    cluster = std::make_unique<gm::Cluster>(cc);
    std::vector<gm::Node*> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(&cluster->node(i));
    Comm::Config mc;
    mc.abort_on_send_error = abort_on_error;
    comm = std::make_unique<Comm>(std::move(nodes), mc);
    cluster->run_for(sim::usec(900));  // port opens via L_timer
  }
  std::unique_ptr<gm::Cluster> cluster;
  std::unique_ptr<Comm> comm;
};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(const std::vector<std::byte>& v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

TEST(MpiP2P, SendRecvRoundTrip) {
  World w(2);
  Message got;
  bool sent = false;
  w.comm->rank(1).irecv(0, 7, [&](Message m) { got = std::move(m); });
  const auto payload = bytes_of("forty-two");
  w.comm->rank(0).isend(1, 7, payload, [&](bool ok) { sent = ok; });
  w.cluster->run_for(sim::msec(3));
  EXPECT_TRUE(sent);
  EXPECT_EQ(got.src, 0);
  EXPECT_EQ(got.tag, 7);
  EXPECT_EQ(string_of(got.data), "forty-two");
}

TEST(MpiP2P, UnexpectedMessagesWaitForPost) {
  World w(2);
  w.comm->rank(0).isend(1, 3, bytes_of("early"));
  w.cluster->run_for(sim::msec(3));
  EXPECT_EQ(w.comm->rank(1).stats().unexpected, 1u);
  std::string got;
  w.comm->rank(1).irecv(0, 3, [&](Message m) { got = string_of(m.data); });
  EXPECT_EQ(got, "early");  // served synchronously from the queue
}

TEST(MpiP2P, TagsSeparateMessages) {
  World w(2);
  std::vector<int> order;
  w.comm->rank(1).irecv(0, 20, [&](Message) { order.push_back(20); });
  w.comm->rank(1).irecv(0, 10, [&](Message) { order.push_back(10); });
  w.comm->rank(0).isend(1, 10, bytes_of("a"));
  w.comm->rank(0).isend(1, 20, bytes_of("b"));
  w.cluster->run_for(sim::msec(3));
  // Each message matched its tag regardless of posting/arrival order.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 20);
}

TEST(MpiP2P, WildcardsMatchAnything) {
  World w(3);
  int from = -1, tag = -1;
  w.comm->rank(2).irecv(kAnySource, kAnyTag, [&](Message m) {
    from = m.src;
    tag = m.tag;
  });
  w.comm->rank(1).isend(2, 99, bytes_of("x"));
  w.cluster->run_for(sim::msec(3));
  EXPECT_EQ(from, 1);
  EXPECT_EQ(tag, 99);
}

TEST(MpiP2P, FifoMatchingAmongPosts) {
  World w(2);
  std::vector<int> which;
  w.comm->rank(1).irecv(kAnySource, kAnyTag, [&](Message) {
    which.push_back(1);
  });
  w.comm->rank(1).irecv(kAnySource, kAnyTag, [&](Message) {
    which.push_back(2);
  });
  w.comm->rank(0).isend(1, 0, bytes_of("a"));
  w.comm->rank(0).isend(1, 0, bytes_of("b"));
  w.cluster->run_for(sim::msec(3));
  EXPECT_EQ(which, (std::vector<int>{1, 2}));
}

TEST(MpiP2P, ManyMessagesFlowControlledBySlots) {
  World w(2);
  int got = 0;
  for (int i = 0; i < 64; ++i) {
    w.comm->rank(1).irecv(0, i, [&](Message) { ++got; });
  }
  for (int i = 0; i < 64; ++i) {
    w.comm->rank(0).isend(1, i, bytes_of("payload"));
  }
  w.cluster->run_for(sim::msec(20));
  EXPECT_EQ(got, 64);  // more messages than send slots: the queue drains
}

TEST(MpiP2P, OversizedMessageAborts) {
  World w(2);
  std::vector<std::byte> big(128 * 1024);
  w.comm->rank(0).isend(1, 0, big);
  EXPECT_TRUE(w.comm->aborted());
}

TEST(MpiCollectives, BarrierReleasesEveryoneTogether) {
  World w(5);
  std::vector<bool> released(5, false);
  for (int r = 0; r < 5; ++r) {
    w.comm->rank(r).barrier([&released, r] { released[r] = true; });
  }
  w.cluster->run_for(sim::msec(10));
  for (int r = 0; r < 5; ++r) EXPECT_TRUE(released[r]) << "rank " << r;
}

TEST(MpiCollectives, BarrierSingleRankIsImmediate) {
  World w(1);
  bool done = false;
  w.comm->rank(0).barrier([&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(MpiCollectives, BcastDeliversToAllRanks) {
  World w(6);
  std::vector<std::vector<std::byte>> bufs(6);
  bufs[2] = bytes_of("broadcast payload");  // root = 2
  int done = 0;
  for (int r = 0; r < 6; ++r) {
    w.comm->rank(r).bcast(2, &bufs[r], [&] { ++done; });
  }
  w.cluster->run_for(sim::msec(10));
  EXPECT_EQ(done, 6);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(string_of(bufs[r]), "broadcast payload") << "rank " << r;
  }
}

TEST(MpiCollectives, ReduceSumAtRoot) {
  World w(7);
  double result = -1;
  for (int r = 0; r < 7; ++r) {
    w.comm->rank(r).reduce_sum(0, static_cast<double>(r + 1),
                               [&result, r](double v) {
                                 if (r == 0) result = v;
                               });
  }
  w.cluster->run_for(sim::msec(10));
  EXPECT_DOUBLE_EQ(result, 28.0);  // 1+2+...+7
}

TEST(MpiCollectives, AllreduceGivesEveryRankTheSum) {
  World w(4);
  std::vector<double> results(4, -1);
  for (int r = 0; r < 4; ++r) {
    w.comm->rank(r).allreduce_sum(static_cast<double>(10 * (r + 1)),
                                  [&results, r](double v) { results[r] = v; });
  }
  w.cluster->run_for(sim::msec(10));
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(results[r], 100.0);
}

TEST(MpiCollectives, BackToBackCollectivesDoNotCrosstalk) {
  World w(4);
  std::vector<double> first(4, -1), second(4, -1);
  for (int r = 0; r < 4; ++r) {
    w.comm->rank(r).allreduce_sum(1.0, [&, r](double v) {
      first[r] = v;
      w.comm->rank(r).allreduce_sum(2.0, [&, r](double u) { second[r] = u; });
    });
  }
  w.cluster->run_for(sim::msec(20));
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(first[r], 4.0);
    EXPECT_DOUBLE_EQ(second[r], 8.0);
  }
}

// ---- the paper's motivating failure semantics ----

TEST(MpiFaults, SurvivesLossyLinks) {
  // MPI over GM on a lossy fabric: Go-Back-N below makes the middleware
  // oblivious to drops and corruption.
  World w(3);
  w.cluster->topo().set_all_faults({0.08, 0.08, 0.0});
  std::vector<double> results(3, -1);
  for (int r = 0; r < 3; ++r) {
    w.comm->rank(r).allreduce_sum(static_cast<double>(r + 1),
                                  [&results, r](double v) { results[r] = v; });
  }
  w.cluster->run_for(sim::msec(200));
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(results[r], 6.0);
}

TEST(MpiFaults, GmNicHangGrindsTheJobToAHalt) {
  World w(3, mcp::McpMode::kGm);
  // A ring of messages that normally circulates forever.
  int hops = 0;
  std::function<void(int)> pass = [&](int r) {
    const int next = (r + 1) % 3;
    w.comm->rank(r).isend(next, 0, bytes_of("token"));
    w.comm->rank(next).irecv(r, 0, [&, next](Message) {
      ++hops;
      pass(next);
    });
  };
  pass(0);
  w.cluster->run_for(sim::msec(2));
  const int hops_before = hops;
  EXPECT_GT(hops_before, 0);
  // NIC hang on node 1: baseline GM has no recovery; the ring stops.
  w.cluster->node(1).mcp().inject_hang("cosmic ray");
  w.cluster->run_for(sim::sec(3));
  EXPECT_LE(hops, hops_before + 3);  // at most in-flight stragglers
  EXPECT_TRUE(w.cluster->node(1).mcp().hung());
}

TEST(MpiFaults, FtgmNicHangIsInvisibleToTheJob) {
  World w(3, mcp::McpMode::kFtgm);
  int hops = 0;
  std::function<void(int)> pass = [&](int r) {
    const int next = (r + 1) % 3;
    w.comm->rank(r).isend(next, 0, bytes_of("token"));
    w.comm->rank(next).irecv(r, 0, [&, next](Message) {
      ++hops;
      pass(next);
    });
  };
  pass(0);
  w.cluster->run_for(sim::msec(2));
  w.cluster->node(1).mcp().inject_hang("cosmic ray");
  const int hops_at_hang = hops;
  w.cluster->run_for(sim::sec(4));
  // The ring resumed after transparent recovery and made real progress.
  EXPECT_GT(hops, hops_at_hang + 50);
  EXPECT_FALSE(w.comm->aborted());
  EXPECT_FALSE(w.cluster->node(1).mcp().hung());
}

TEST(MpiFaults, CollectivesSurviveRecoveryUnderFtgm) {
  World w(4, mcp::McpMode::kFtgm);
  std::vector<double> results(4, -1);
  // Hang a NIC, then immediately start an allreduce: it must complete
  // (after ~1.7 s of recovery) with the correct sum.
  w.cluster->node(2).mcp().inject_hang("cosmic ray");
  for (int r = 0; r < 4; ++r) {
    w.comm->rank(r).allreduce_sum(static_cast<double>(r),
                                  [&results, r](double v) { results[r] = v; });
  }
  w.cluster->run_for(sim::sec(4));
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(results[r], 6.0);
}

}  // namespace
}  // namespace myri::mpi
