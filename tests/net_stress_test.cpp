// Fabric stress tests: backpressure stalls, contention through shared
// switch ports, multi-hop fabrics under load, and packet-level edge cases
// the main transport tests don't reach.
#include <gtest/gtest.h>

#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"
#include "gm/node.hpp"
#include "net/topology.hpp"

namespace myri {
namespace {

class CollectSink : public net::PacketSink {
 public:
  void deliver(net::Packet pkt, std::uint8_t) override {
    packets.push_back(std::move(pkt));
  }
  std::vector<net::Packet> packets;
};

TEST(Backpressure, SwitchStallsInsteadOfDroppingWhenQueueFills) {
  sim::EventQueue eq;
  sim::Rng rng(3);
  // Tiny link queues force the switch's stall-and-retry path.
  net::Link::Config lc;
  lc.max_queued_packets = 2;
  net::Topology topo(eq, rng, lc);
  const auto sw = topo.add_switch(8);
  CollectSink dst;
  topo.attach_endpoint(dst, sw, 2, "dst");

  // Blast 10 packets into the switch simultaneously (as if arriving on
  // different input ports at once) so the single output link's 2-entry
  // queue must exert backpressure. (The stall budget is bounded, so a
  // bigger blast would legitimately start dropping.)
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.type = net::PacketType::kData;
    p.seq = static_cast<std::uint32_t>(i);
    p.route = {2};
    p.payload.assign(2048, std::byte{1});
    p.seal();
    topo.get_switch(sw).deliver(std::move(p), static_cast<std::uint8_t>(i % 8));
  }
  eq.run();
  EXPECT_EQ(dst.packets.size(), 10u);  // stalled, retried, all delivered
  EXPECT_GT(topo.get_switch(sw).stats().stalled, 0u);
  EXPECT_EQ(topo.get_switch(sw).stats().dead_routed, 0u);
}

TEST(Backpressure, BoundedRetriesEventuallyDropUnderSustainedOverload) {
  // The stall budget is finite: a blocked wormhole cannot hold packets
  // forever, so a sustained overload beyond the retry budget turns into
  // drops (which Go-Back-N heals end to end). Blast far more serialized
  // bytes than the retry window can cover.
  sim::EventQueue eq;
  sim::Rng rng(3);
  net::Link::Config lc;
  lc.max_queued_packets = 1;
  net::Topology topo(eq, rng, lc);
  const auto sw = topo.add_switch(4);
  CollectSink dst;
  topo.attach_endpoint(dst, sw, 1, "dst");
  for (int i = 0; i < 60; ++i) {
    net::Packet p;
    p.route = {1};
    p.payload.assign(4096, std::byte{1});
    p.seal();
    topo.get_switch(sw).deliver(std::move(p), static_cast<std::uint8_t>(i % 4));
  }
  eq.run();
  EXPECT_GT(topo.get_switch(sw).stats().dead_routed, 0u);
  EXPECT_GT(dst.packets.size(), 0u);
  EXPECT_LT(dst.packets.size(), 60u);
}

TEST(Fanin, SevenSendersThroughOneSwitchPortContend) {
  // All-to-one through a single switch: node 0's downlink and NIC are the
  // bottleneck (7 ports, one per sender); everything arrives exactly once.
  gm::ClusterConfig cc;
  cc.nodes = 8;
  gm::Cluster cluster(cc);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 12;
  wc.msg_len = 4096;
  wc.recv_buffers = 8;
  std::vector<std::unique_ptr<fi::StreamWorkload>> wls;
  for (int i = 1; i < 8; ++i) {
    auto& rx = cluster.node(0).open_port(static_cast<std::uint8_t>(i));
    wls.push_back(std::make_unique<fi::StreamWorkload>(
        cluster.node(i).open_port(1), rx, wc));
  }
  cluster.run_for(sim::usec(900));
  for (auto& w : wls) w->start();
  // 7 senders x window 16 can overwhelm the 64-deep RX queue: overflow
  // drops plus backed-off Go-Back-N retransmissions need a wide window.
  cluster.run_for(sim::msec(400));
  for (auto& w : wls) {
    EXPECT_TRUE(w->complete());
    EXPECT_EQ(w->duplicates(), 0);
  }
}

TEST(MultiHop, TrafficAcrossThreeSwitchesUnderLoss) {
  sim::EventQueue eq;
  sim::Rng rng(9);
  net::Topology topo(eq, rng);
  const auto s0 = topo.add_switch(4);
  const auto s1 = topo.add_switch(4);
  const auto s2 = topo.add_switch(4);
  topo.connect_switches(s0, 3, s1, 0);
  topo.connect_switches(s1, 3, s2, 0);

  auto make_node = [&](net::NodeId id, std::uint16_t sw, std::uint8_t port) {
    gm::Node::Config nc;
    nc.id = id;
    nc.host_mem_bytes = 8u << 20;
    auto n = std::make_unique<gm::Node>(eq, nc, "n" + std::to_string(id));
    n->attach(topo, sw, port);
    n->boot();
    return n;
  };
  auto a = make_node(0, s0, 1);
  auto b = make_node(1, s2, 1);
  a->install_route(1, {3, 3, 1});
  b->install_route(0, {0, 0, 1});
  topo.set_all_faults({0.08, 0.08, 0.0});

  auto& tx = a->open_port(2);
  auto& rx = b->open_port(3);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 30;
  wc.msg_len = 2000;
  fi::StreamWorkload wl(tx, rx, wc);
  eq.run_until(sim::usec(900));
  wl.start();
  eq.run_until(eq.now() + sim::msec(300));
  EXPECT_TRUE(wl.complete());
  EXPECT_EQ(wl.duplicates(), 0);
}

TEST(PacketEdge, MaxPayloadPacketSurvivesWire) {
  sim::EventQueue eq;
  sim::Rng rng(1);
  net::Topology topo(eq, rng);
  const auto sw = topo.add_switch(4);
  CollectSink dst;
  net::Link& up = topo.attach_endpoint(dst, sw, 0, "loop-src");
  CollectSink dst2;
  topo.attach_endpoint(dst2, sw, 1, "dst");
  net::Packet p;
  p.payload.assign(net::kMaxPacketPayload, std::byte{0x42});
  p.route = {1};
  p.seal();
  up.send(std::move(p));
  eq.run();
  ASSERT_EQ(dst2.packets.size(), 1u);
  EXPECT_TRUE(dst2.packets[0].intact());
  EXPECT_EQ(dst2.packets[0].payload.size(), net::kMaxPacketPayload);
}

TEST(PacketEdge, DirectedFlagCoveredByCrc) {
  net::Packet p;
  p.payload.assign(16, std::byte{1});
  p.directed = true;
  p.target_vaddr = 0x1234;
  p.seal();
  EXPECT_TRUE(p.intact());
  p.target_vaddr ^= 1;
  EXPECT_FALSE(p.intact());
  p.target_vaddr ^= 1;
  p.directed = false;
  EXPECT_FALSE(p.intact());
}

TEST(LinkStats, ByteAccountingMatchesWireSizes) {
  sim::EventQueue eq;
  net::Link link(eq, sim::Rng(1), {}, "l");
  CollectSink sink;
  link.connect(sink, 0);
  net::Packet p;
  p.payload.assign(100, std::byte{1});
  p.route = {1, 2};
  const auto wire = p.wire_size();
  p.seal();
  link.send(p);
  link.send(p);
  eq.run();
  EXPECT_EQ(link.stats().offered_bytes, 2 * wire);
  EXPECT_EQ(link.stats().delivered_bytes, 2 * wire);
  EXPECT_EQ(link.stats().delivered, 2u);
}

}  // namespace
}  // namespace myri
