// Unit tests for packets, links, switches and topology wiring.
#include <gtest/gtest.h>

#include <cstring>

#include "net/link.hpp"
#include "net/map_info.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace myri::net {
namespace {

// Collects everything delivered to it.
class SinkSpy : public PacketSink {
 public:
  void deliver(Packet pkt, std::uint8_t in_port) override {
    packets.push_back(std::move(pkt));
    in_ports.push_back(in_port);
  }
  std::vector<Packet> packets;
  std::vector<std::uint8_t> in_ports;
};

Packet make_data(std::uint32_t seq, std::size_t payload_len = 64) {
  Packet p;
  p.type = PacketType::kData;
  p.src = 0;
  p.dst = 1;
  p.seq = seq;
  p.msg_len = static_cast<std::uint32_t>(payload_len);
  p.payload.assign(payload_len, std::byte{0xab});
  p.seal();
  return p;
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3).
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xcbf43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Packet, SealThenIntact) {
  Packet p = make_data(7);
  EXPECT_TRUE(p.intact());
}

TEST(Packet, PayloadBitFlipDetected) {
  Packet p = make_data(7);
  p.payload[10] ^= std::byte{0x01};
  EXPECT_FALSE(p.intact());
}

TEST(Packet, HeaderFieldChangeDetected) {
  Packet p = make_data(7);
  p.seq ^= 1;
  EXPECT_FALSE(p.intact());
}

TEST(Packet, RouteNotCoveredByCrc) {
  // Routes are consumed hop by hop, so they must not participate in CRC.
  Packet p = make_data(7);
  p.route = {1, 2, 3};
  EXPECT_TRUE(p.intact());
  p.route.clear();
  EXPECT_TRUE(p.intact());
}

TEST(Packet, WireSizeIncludesAllParts) {
  Packet p = make_data(1, 100);
  p.route = {4, 5};
  EXPECT_EQ(p.wire_size(), 2u + 16u + 100u + 4u);
}

TEST(Packet, DescribeMentionsType) {
  Packet p = make_data(9);
  EXPECT_NE(p.describe().find("DATA"), std::string::npos);
}

TEST(Link, SerializationTimeMatchesRate) {
  sim::EventQueue eq;
  Link link(eq, sim::Rng(1), Link::Config{2.0, 100, 32}, "l");
  // 1000 bytes at 2 Gb/s = 4000 ns.
  EXPECT_EQ(link.serialization_time(1000), 4000u);
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), Link::Config{2.0, 100, 32}, "l");
  link.connect(sink, 3);
  Packet p = make_data(0, 96);  // wire size 96+20 = 116 -> 464 ns
  const auto wire = p.wire_size();
  link.send(std::move(p));
  eq.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.in_ports[0], 3);
  EXPECT_EQ(eq.now(), link.serialization_time(wire) + 100);
}

TEST(Link, BackToBackPacketsSerialize) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), Link::Config{2.0, 0, 32}, "l");
  link.connect(sink, 0);
  Packet a = make_data(0, 1000), b = make_data(1, 1000);
  const auto ser = link.serialization_time(a.wire_size());
  link.send(std::move(a));
  link.send(std::move(b));
  eq.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(eq.now(), 2 * ser);
}

TEST(Link, DropFaultLosesPackets) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), {}, "l");
  link.connect(sink, 0);
  link.set_faults({1.0, 0.0, 0.0});
  for (int i = 0; i < 10; ++i) link.send(make_data(i));
  eq.run();
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(link.stats().dropped, 10u);
  EXPECT_EQ(link.stats().sent, 10u);
}

TEST(Link, CorruptFaultBreaksCrc) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), {}, "l");
  link.connect(sink, 0);
  link.set_faults({0.0, 1.0, 0.0});
  link.send(make_data(0));
  eq.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_FALSE(sink.packets[0].intact());
  EXPECT_EQ(link.stats().corrupted, 1u);
}

TEST(Link, CorruptAckWithoutPayloadStillDetected) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), {}, "l");
  link.connect(sink, 0);
  link.set_faults({0.0, 1.0, 0.0});
  Packet ack;
  ack.type = PacketType::kAck;
  ack.src = 1;
  ack.dst = 0;
  ack.ack_seq = 5;
  ack.seal();
  link.send(std::move(ack));
  eq.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_FALSE(sink.packets[0].intact());
}

TEST(Link, MisrouteAltersFirstRouteByte) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), {}, "l");
  link.connect(sink, 0);
  link.set_faults({0.0, 0.0, 1.0});
  Packet p = make_data(0);
  p.route = {2, 6};
  link.send(std::move(p));
  eq.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_NE(sink.packets[0].route.front(), 2);
  EXPECT_EQ(sink.packets[0].route[1], 6);
  EXPECT_EQ(link.stats().misrouted, 1u);
}

TEST(Link, FaultRatesRoughlyHonoured) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(99), {}, "l");
  link.connect(sink, 0);
  link.set_faults({0.2, 0.0, 0.0});
  for (int i = 0; i < 2000; ++i) link.send(make_data(i));
  eq.run();
  EXPECT_NEAR(static_cast<double>(link.stats().dropped), 400.0, 80.0);
}

TEST(Link, CanAcceptHonoursQueueBound) {
  sim::EventQueue eq;
  SinkSpy sink;
  Link link(eq, sim::Rng(1), Link::Config{2.0, 100, 4}, "l");
  link.connect(sink, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(link.can_accept());
    link.send(make_data(i));
  }
  EXPECT_FALSE(link.can_accept());
  eq.run();
  EXPECT_TRUE(link.can_accept());
  EXPECT_EQ(sink.packets.size(), 4u);
}

TEST(Switch, StripsRouteByteAndForwards) {
  sim::EventQueue eq;
  SinkSpy sink;
  Switch sw(eq, 0, 8, {}, "sw");
  Link out(eq, sim::Rng(1), {}, "out");
  out.connect(sink, 0);
  sw.connect(5, out);
  Packet p = make_data(0);
  p.route = {5, 9};
  sw.deliver(std::move(p), 2);
  eq.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].route, (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(sw.stats().forwarded, 1u);
}

TEST(Switch, DeadRouteOnBadPort) {
  sim::EventQueue eq;
  Switch sw(eq, 0, 4, {}, "sw");
  Packet p = make_data(0);
  p.route = {7};  // beyond port count
  sw.deliver(std::move(p), 0);
  eq.run();
  EXPECT_EQ(sw.stats().dead_routed, 1u);
}

TEST(Switch, DeadRouteOnUnconnectedPort) {
  sim::EventQueue eq;
  Switch sw(eq, 0, 8, {}, "sw");
  Packet p = make_data(0);
  p.route = {3};  // valid port, nothing cabled
  sw.deliver(std::move(p), 0);
  eq.run();
  EXPECT_EQ(sw.stats().dead_routed, 1u);
}

TEST(Switch, DataPacketWithExhaustedRouteDies) {
  sim::EventQueue eq;
  Switch sw(eq, 0, 8, {}, "sw");
  sw.deliver(make_data(0), 0);  // empty route at a switch
  eq.run();
  EXPECT_EQ(sw.stats().dead_routed, 1u);
}

TEST(Switch, AnswersScoutWithIdentityAndWalkedPorts) {
  sim::EventQueue eq;
  SinkSpy prober;
  Switch sw(eq, 42, 8, {}, "sw");
  Link back(eq, sim::Rng(1), {}, "back");
  back.connect(prober, 0);
  sw.connect(6, back);  // scout came in port 6

  Packet scout;
  scout.type = PacketType::kMapScout;
  scout.src = 0;
  scout.msg_id = 77;
  sw.deliver(std::move(scout), 6);
  eq.run();
  ASSERT_EQ(prober.packets.size(), 1u);
  const Packet& r = prober.packets[0];
  EXPECT_EQ(r.type, PacketType::kMapReply);
  EXPECT_EQ(r.msg_id, 77u);
  const MapReplyInfo info = MapReplyInfo::decode(r.payload);
  EXPECT_EQ(info.kind, DeviceKind::kSwitch);
  EXPECT_EQ(info.id, 42u);
  EXPECT_EQ(info.ports, 8u);
  ASSERT_EQ(info.walked.size(), 1u);
  EXPECT_EQ(info.walked[0], 6u);
}

TEST(Switch, ScoutRecordsWalkedAcrossHops) {
  sim::EventQueue eq;
  sim::Rng rng(3);
  Topology topo(eq, rng);
  const auto s0 = topo.add_switch(8);
  const auto s1 = topo.add_switch(8);
  topo.connect_switches(s0, 7, s1, 2);
  SinkSpy prober;
  topo.attach_endpoint(prober, s0, 0, "probe");

  Packet scout;
  scout.type = PacketType::kMapScout;
  scout.src = 0;
  scout.route = {7};  // from s0 out port 7 into s1
  topo.get_switch(s0).deliver(std::move(scout), 0);
  eq.run();
  ASSERT_EQ(prober.packets.size(), 1u);
  const MapReplyInfo info = MapReplyInfo::decode(prober.packets[0].payload);
  EXPECT_EQ(info.id, s1);
  ASSERT_EQ(info.walked.size(), 2u);
  EXPECT_EQ(info.walked[0], 0u);  // entered s0 on port 0
  EXPECT_EQ(info.walked[1], 2u);  // entered s1 on port 2
}

TEST(Topology, EndpointToEndpointAcrossSwitch) {
  sim::EventQueue eq;
  sim::Rng rng(3);
  Topology topo(eq, rng);
  const auto sw = topo.add_switch(8);
  SinkSpy a, b;
  Link& a_up = topo.attach_endpoint(a, sw, 0, "a");
  topo.attach_endpoint(b, sw, 1, "b");
  Packet p = make_data(5);
  p.route = {1};
  a_up.send(std::move(p));
  eq.run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_TRUE(b.packets[0].route.empty());
  EXPECT_TRUE(b.packets[0].intact());
}

TEST(Topology, MultiSwitchPath) {
  sim::EventQueue eq;
  sim::Rng rng(3);
  Topology topo(eq, rng);
  const auto s0 = topo.add_switch(8);
  const auto s1 = topo.add_switch(8);
  const auto s2 = topo.add_switch(8);
  topo.connect_switches(s0, 7, s1, 6);
  topo.connect_switches(s1, 7, s2, 6);
  SinkSpy a, b;
  Link& a_up = topo.attach_endpoint(a, s0, 0, "a");
  topo.attach_endpoint(b, s2, 0, "b");
  Packet p = make_data(1);
  p.route = {7, 7, 0};
  a_up.send(std::move(p));
  eq.run();
  ASSERT_EQ(b.packets.size(), 1u);
}

TEST(Topology, SetAllFaultsAppliesToEveryLink) {
  sim::EventQueue eq;
  sim::Rng rng(3);
  Topology topo(eq, rng);
  const auto sw = topo.add_switch(8);
  SinkSpy a, b;
  Link& a_up = topo.attach_endpoint(a, sw, 0, "a");
  topo.attach_endpoint(b, sw, 1, "b");
  topo.set_all_faults({1.0, 0.0, 0.0});
  Packet p = make_data(1);
  p.route = {1};
  a_up.send(std::move(p));
  eq.run();
  EXPECT_TRUE(b.packets.empty());
}

TEST(RouteCodec, RoundTrip) {
  RouteUpdate in{7, 2, 5, {{3, {1, 2, 3}}, {9, {}}, {300, {7}}}};
  const auto out = RouteUpdate::decode(in.encode());
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.chunk, 2u);
  EXPECT_EQ(out.nchunks, 5u);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].dst, 3u);
  EXPECT_EQ(out.entries[0].route, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(out.entries[1].route.empty());
  EXPECT_EQ(out.entries[2].dst, 300u);
}

TEST(RouteCodec, TruncatedInputStopsCleanly) {
  RouteUpdate in{1, 0, 1, {{3, {1, 2, 3}}}};
  auto bytes = in.encode();
  bytes.pop_back();  // cut the route short
  EXPECT_TRUE(RouteUpdate::decode(bytes).entries.empty());
  bytes.resize(4);  // not even a full header
  const auto out = RouteUpdate::decode(bytes);
  EXPECT_EQ(out.epoch, 0u);
  EXPECT_TRUE(out.entries.empty());
}

TEST(RouteCodec, ProbeHasNoEntries) {
  RouteUpdate probe{42, 0, 0, {}};
  const auto out = RouteUpdate::decode(probe.encode());
  EXPECT_EQ(out.epoch, 42u);
  EXPECT_EQ(out.nchunks, 0u);
  EXPECT_TRUE(out.entries.empty());
}

TEST(RouteCodec, AckRoundTrip) {
  RouteAck in{9, kProbeChunk, 8, true};
  const auto out = RouteAck::decode(in.encode());
  EXPECT_EQ(out.epoch, 9u);
  EXPECT_EQ(out.chunk, kProbeChunk);
  EXPECT_EQ(out.installed_epoch, 8u);
  EXPECT_TRUE(out.announce);
  RouteAck plain{3, 1, 3, false};
  EXPECT_FALSE(RouteAck::decode(plain.encode()).announce);
}

TEST(MapReplyInfo, RoundTrip) {
  MapReplyInfo in{DeviceKind::kSwitch, 513, 16, {1, 2, 3, 4}};
  const auto out = MapReplyInfo::decode(in.encode());
  EXPECT_EQ(out.kind, DeviceKind::kSwitch);
  EXPECT_EQ(out.id, 513u);
  EXPECT_EQ(out.ports, 16u);
  EXPECT_EQ(out.walked, in.walked);
}

TEST(MapReplyInfo, ReverseRoute) {
  EXPECT_EQ(reverse_route({1, 2, 3}), (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_TRUE(reverse_route({}).empty());
}

}  // namespace
}  // namespace myri::net
