// Property-style parameterized sweeps over the invariants in DESIGN.md:
//  1. exactly-once in-order delivery under transient faults,
//  2. exactly-once delivery across NIC hangs at arbitrary times (FTGM),
//  3. send/receive token conservation,
//  4. backup-store consistency,
//  5. watchdog soundness (no false positives, bounded detection).
//
// Invariants 1 and 2 run as fi::Scenario schedules: the declarative form
// replaces the hand-rolled cluster/workload setup, and the fi::Oracle
// audits FIFO/exactly-once/tokens/watchdog/metrics continuously during
// the run on top of the original end-state assertions. Invariants 3-5
// poke port/MCP internals directly and stay hand-rolled.
#include <gtest/gtest.h>

#include "faultinject/scenario.hpp"
#include "faultinject/workload.hpp"
#include "gm/cluster.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;

// ---- invariant 1: exactly-once under link faults, both modes ----

struct FaultCase {
  mcp::McpMode mode;
  double drop, corrupt, misroute;
  std::uint64_t seed;
};

class ExactlyOnceUnderFaults : public ::testing::TestWithParam<FaultCase> {};

TEST_P(ExactlyOnceUnderFaults, HoldsForSeedAndRates) {
  const FaultCase& fc = GetParam();
  fi::Scenario s;
  s.seed = fc.seed;
  s.nodes = 2;
  s.mode = fc.mode;
  s.msgs = 30;
  s.msg_len = 3000;
  s.drop = fc.drop;
  s.corrupt = fc.corrupt;
  s.misroute = fc.misroute;
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed())
      << "drop=" << fc.drop << " corrupt=" << fc.corrupt
      << " misroute=" << fc.misroute << " seed=" << fc.seed << " — "
      << r.violation << ": " << r.violation_detail;
  for (const fi::StreamOutcome& so : r.streams) {
    EXPECT_TRUE(so.complete);
    EXPECT_EQ(so.duplicates, 0);
    EXPECT_EQ(so.corrupted, 0);
  }
}

std::vector<FaultCase> fault_matrix() {
  std::vector<FaultCase> out;
  for (auto mode : {mcp::McpMode::kGm, mcp::McpMode::kFtgm}) {
    for (double p : {0.02, 0.10, 0.20}) {
      for (std::uint64_t seed : {11ull, 22ull}) {
        out.push_back({mode, p, 0.0, 0.0, seed});
        out.push_back({mode, 0.0, p, 0.0, seed});
        out.push_back({mode, p / 2, p / 2, p / 10, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(FaultMatrix, ExactlyOnceUnderFaults,
                         ::testing::ValuesIn(fault_matrix()));

// ---- invariant 2: exactly-once across hangs at arbitrary times ----

struct HangCase {
  int victim;           // 0 = sender NIC, 1 = receiver NIC
  sim::Time hang_at;    // after workload start
  std::uint64_t seed;
};

class ExactlyOnceAcrossHang : public ::testing::TestWithParam<HangCase> {};

TEST_P(ExactlyOnceAcrossHang, FtgmRecoversExactlyOnce) {
  const HangCase& hc = GetParam();
  fi::Scenario s;
  s.seed = hc.seed;
  s.nodes = 2;
  s.msgs = 25;
  s.msg_len = 2500;
  fi::ScenarioEvent ev;
  ev.kind = fi::ScenarioEvent::Kind::kNicHang;
  ev.node = hc.victim;
  ev.at = fi::Scenario::kWarmup + hc.hang_at;
  s.events.push_back(ev);
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed())
      << "victim=" << hc.victim << " at=" << sim::to_usec(hc.hang_at)
      << " — " << r.violation << ": " << r.violation_detail;
  for (const fi::StreamOutcome& so : r.streams) {
    EXPECT_EQ(so.duplicates, 0);
    EXPECT_EQ(so.corrupted, 0);
  }
}

std::vector<HangCase> hang_matrix() {
  std::vector<HangCase> out;
  for (int victim : {0, 1}) {
    for (sim::Time at :
         {sim::usec(5), sim::usec(23), sim::usec(57), sim::usec(120),
          sim::usec(333), sim::msec(1)}) {
      out.push_back({victim, at, 77});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(HangSweep, ExactlyOnceAcrossHang,
                         ::testing::ValuesIn(hang_matrix()));

// ---- invariant 3+4: token conservation and backup consistency ----

class TokenConservation
    : public ::testing::TestWithParam<std::tuple<mcp::McpMode, int>> {};

TEST_P(TokenConservation, TokensReturnAndBackupDrains) {
  const auto [mode, msgs] = GetParam();
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2, {8, 8});
  auto& rx = cluster.node(1).open_port(3, {8, 8});
  fi::StreamWorkload::Config wc;
  wc.total_msgs = msgs;
  wc.msg_len = 1024;
  wc.recv_buffers = 8;
  wc.max_in_flight = 8;
  fi::StreamWorkload wl(tx, rx, wc);
  cluster.run_for(sim::usec(900));
  wl.start();
  cluster.run_for(sim::msec(5) + sim::msec(msgs));
  ASSERT_TRUE(wl.complete());
  // All send tokens back with the application.
  EXPECT_EQ(tx.send_tokens_free(), 8u);
  // Receiver re-provides every buffer, so all 8 are with the LANai again.
  EXPECT_EQ(cluster.node(1).mcp().recv_tokens_held(3), 8u);
  if (mode == mcp::McpMode::kFtgm) {
    // Backup invariants: nothing outstanding after quiesce, and the recv
    // backup exactly mirrors the 8 re-provided buffers.
    EXPECT_EQ(tx.backup().send_count(), 0u);
    EXPECT_EQ(rx.backup().recv_count(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conservation, TokenConservation,
    ::testing::Combine(::testing::Values(mcp::McpMode::kGm,
                                         mcp::McpMode::kFtgm),
                       ::testing::Values(5, 20, 60)));

// ---- invariant 5: watchdog soundness across workload intensities ----

class WatchdogSoundness : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WatchdogSoundness, NeverFiresWithoutAHang) {
  const std::uint32_t msg_len = GetParam();
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  Cluster cluster(cc);
  auto& p0 = cluster.node(0).open_port(2);
  auto& p1 = cluster.node(1).open_port(2);
  fi::StreamWorkload::Config wc;
  wc.total_msgs = 150;
  wc.msg_len = msg_len;
  fi::StreamWorkload a(p0, p1, wc), b(p1, p0, wc);
  cluster.run_for(sim::usec(900));
  a.start();
  b.start();
  cluster.run_for(sim::msec(80));
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(cluster.node(0).ftd().stats().wakeups, 0u);
  EXPECT_EQ(cluster.node(1).ftd().stats().wakeups, 0u);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, WatchdogSoundness,
                         ::testing::Values(16u, 512u, 4096u, 16384u));

class WatchdogDetection : public ::testing::TestWithParam<sim::Time> {};

TEST_P(WatchdogDetection, AlwaysFiresWithinBoundAfterHang) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  Cluster cluster(cc);
  cluster.node(0).open_port(2);
  cluster.run_for(GetParam());
  const sim::Time hang_at = cluster.eq().now();
  cluster.node(0).mcp().inject_hang("sweep");
  cluster.run_for(sim::msec(2));
  ASSERT_EQ(cluster.node(0).driver().fatal_interrupts(), 1u);
  const auto& ph = cluster.node(0).ftd().phases();
  EXPECT_LE(ph.interrupt_raised - hang_at,
            cluster.node(0).config().timing.watchdog.it1_interval +
                cluster.node(0).config().timing.irq.latency);
}

INSTANTIATE_TEST_SUITE_P(PhaseSweep, WatchdogDetection,
                         ::testing::Values(sim::usec(500), sim::usec(777),
                                           sim::msec(1), sim::usec(1250),
                                           sim::msec(3)));

}  // namespace
}  // namespace myri
