// Epoch-versioned route control plane (DESIGN.md section 11).
//
// The mapper is the single source of truth for routes: every successful
// run bumps a route epoch, MAP_ROUTE chunks carry it, cards ack every
// chunk, and lagging nodes are repaired by retry, scrub probes or the
// announce a recovered card sends. These tests pin the repair machinery
// end to end: a node hung through a remap converges without manual
// intervention, dropped chunks are healed by ack retries, a node that
// exhausts the retry budget is picked up by scrub, and sends against a
// stale epoch are gated with kRecovering.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "gm/node.hpp"
#include "mapper/failover.hpp"
#include "net/map_info.hpp"

namespace myri {
namespace {

gm::ClusterConfig ring4(mcp::McpMode mode) {
  gm::ClusterConfig cc;
  cc.nodes = 4;
  cc.fabric = net::FabricPreset::kRing;
  // Radix 3 = one host per switch: a true 4-switch ring with 4 trunks
  // (radix 8 would fold all 4 hosts onto one switch, leaving no trunks).
  cc.switch_ports = 3;
  cc.mode = mode;
  cc.seed = 11;
  return cc;
}

/// Bring the fabric up under the FailoverManager and wait for epoch 1.
void bring_up(gm::Cluster& cluster, mapper::FailoverManager& fm) {
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(50));
  ASSERT_TRUE(ok);
  ASSERT_TRUE(fm.converged());
  ASSERT_EQ(fm.mapper().epoch(), 1u);
}

TEST(RouteEpoch, DistributionStampsEveryNodeWithTheEpoch) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  for (int i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.node(i).route_epoch(), 1u) << "node " << i;
    EXPECT_FALSE(cluster.node(i).routes_stale()) << "node " << i;
  }
  EXPECT_EQ(cluster.metrics().gauge("mapper.route_epoch").value(), 1);
  EXPECT_GE(cluster.metrics().histogram("fabric.route_converge_us").count(),
            1u);
  EXPECT_TRUE(fm.settled());
}

TEST(RouteEpoch, DroppedChunksAreHealedByAckRetry) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  // Node 3's card swallows the first two MAP_ROUTE packets it sees: the
  // initial chunk and the first retry. The second retry must land.
  cluster.node(3).mcp().drop_next_map_routes(2);
  bring_up(cluster, fm);

  EXPECT_EQ(cluster.node(3).route_epoch(), 1u);
  EXPECT_GE(fm.mapper().stats().route_retries, 2u);
  EXPECT_GE(cluster.metrics().counter("mapper.map_route_retries").value(),
            2u);
  EXPECT_EQ(fm.mapper().stats().repushes, 0u);  // retries healed it alone
}

TEST(RouteEpoch, ScrubRepairsANodeThatExhaustedItsRetryBudget) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  // Swallow the initial chunk and all six retry rounds: the distribution
  // gives up on node 3 and the remap completes without it. The periodic
  // scrub must then probe the laggard and re-push its table.
  cluster.node(3).mcp().drop_next_map_routes(7);
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(40));
  ASSERT_TRUE(ok);
  EXPECT_FALSE(fm.converged());  // node 3 still behind at this point
  EXPECT_EQ(cluster.node(3).route_epoch(), 0u);

  cluster.run_for(sim::msec(400));  // scrub cadence is 50 ms
  EXPECT_TRUE(fm.converged());
  EXPECT_EQ(cluster.node(3).route_epoch(), 1u);
  EXPECT_GE(fm.mapper().stats().scrub_probes, 1u);
  EXPECT_GE(fm.mapper().stats().repushes, 1u);
  EXPECT_GE(cluster.metrics().counter("mapper.scrub_repairs").value(), 1u);
  EXPECT_TRUE(fm.settled());
}

TEST(RouteEpoch, NodeHungThroughARemapConvergesWithoutIntervention) {
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  // Node 2 wedges, then a trunk dies while it is down: the remap runs
  // without node 2 (its card cannot answer scouts) and distributes a new
  // epoch to the survivors.
  cluster.node(2).mcp().inject_hang("test");
  cluster.node(2).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(5));
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[0], true);
  cluster.run_for(sim::msec(400));
  EXPECT_GE(fm.mapper().epoch(), 2u);

  // FTD recovery restores node 2's table and announces its (now stale)
  // epoch; the mapper does not know the node, so it remaps and folds it
  // back in. No test code touches the control plane from here on.
  cluster.run_for(sim::sec(6));
  EXPECT_FALSE(cluster.node(2).mcp().hung());
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  const std::uint32_t epoch = fm.mapper().epoch();
  EXPECT_GE(epoch, 3u);
  for (int i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.node(i).route_epoch(), epoch) << "node " << i;
    EXPECT_FALSE(cluster.node(i).routes_stale()) << "node " << i;
  }
  EXPECT_EQ(cluster.metrics().gauge("mapper.route_epoch").value(),
            static_cast<std::int64_t>(epoch));
}

TEST(RouteEpoch, AnnounceRetryHealsThroughALossyWindow) {
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  // Isolate the announce path: no census (scrub effectively off) and no
  // blind remap retries. If the fabric converges, the retried announce
  // did it — there is no other repair channel and no external trigger.
  fc.scrub_interval = sim::sec(1000);
  fc.max_remap_retries = 0;
  mapper::FailoverManager fm(cluster, fc);
  bring_up(cluster, fm);

  // Node 3 wedges; a trunk it is not adjacent to dies while it is down
  // (trunk 1 = sw1-sw2; node 3 reaches the mapper home directly over the
  // closing trunk). The remap runs without node 3: epoch 2, three nodes.
  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(5));
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[1], true);
  cluster.run_for(sim::msec(50));
  ASSERT_GE(fm.mapper().epoch(), 2u);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);

  // 100% loss across every link before the recovery announce goes out:
  // the first announce (and the first few retries) die on the wire.
  net::LinkFaults lossy;
  lossy.drop_prob = 1.0;
  cluster.topo().set_all_faults(lossy);
  for (int i = 0;
       i < 800 && cluster.node(3).mcp().stats().announces_sent == 0; ++i) {
    cluster.run_for(sim::msec(10));
  }
  ASSERT_GE(cluster.node(3).mcp().stats().announces_sent, 1u);
  cluster.run_for(sim::msec(40));  // a few backoff retries die too
  cluster.topo().set_all_faults(net::LinkFaults{});

  // The next retry rides a clean fabric; the mapper folds node 3 back in
  // with a remap. No cable event, no scrub, no test intervention.
  cluster.run_for(sim::msec(500));
  EXPECT_GE(cluster.node(3).mcp().stats().announce_retries, 1u);
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_GE(fm.mapper().epoch(), 3u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  EXPECT_FALSE(fm.gave_up());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, CensusProbeRescuesWhenEveryAnnounceIsLost) {
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  fc.max_remap_retries = 0;  // isolate census: no blind remap retries
  mapper::FailoverManager fm(cluster, fc);
  bring_up(cluster, fm);

  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(5));
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[1], true);
  cluster.run_for(sim::msec(50));
  ASSERT_GE(fm.mapper().epoch(), 2u);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);

  // Hold the loss window through the card's ENTIRE announce budget: the
  // recovered node goes permanently silent from the card side.
  net::LinkFaults lossy;
  lossy.drop_prob = 1.0;
  cluster.topo().set_all_faults(lossy);
  for (int i = 0;
       i < 800 && cluster.node(3).mcp().stats().announces_sent == 0; ++i) {
    cluster.run_for(sim::msec(10));
  }
  ASSERT_GE(cluster.node(3).mcp().stats().announces_sent, 1u);
  for (int i = 0; i < 200 && cluster.node(3).mcp().announce_pending(); ++i) {
    cluster.run_for(sim::msec(10));
  }
  cluster.run_for(sim::msec(200));  // the last armed retry fires and dies
  ASSERT_FALSE(cluster.node(3).mcp().announce_pending());
  cluster.topo().set_all_faults(net::LinkFaults{});

  // Only the mapper-side census probe can reach across now: scrub probes
  // the roster node missing from the map at its last known route, the
  // answer counts as progress, and a remap folds the node back in.
  cluster.run_for(sim::sec(1));
  EXPECT_GE(fm.mapper().stats().census_probes, 1u);
  EXPECT_GE(cluster.metrics().counter("mapper.census_probes").value(), 1u);
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, CensusRederivesRoutesWhenTheFrozenRouteIsDead) {
  // PR-5 residual (b): census probes used to ride the route frozen at the
  // last epoch that contained the node. Here that route crosses trunk 3
  // (sw3-sw0, the home-side shortcut to node 3), which dies while node 3
  // is hung — the frozen bytes lead into the dead cable forever, while a
  // perfectly good path around the ring (sw0-sw1-sw2-sw3) exists in the
  // current map. The node's own announces ride its equally stale mirror
  // route over the same dead trunk, so the re-derived census probe is the
  // only repair channel left.
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  fc.max_remap_retries = 0;  // no blind remaps: only census may heal this
  mapper::FailoverManager fm(cluster, fc);
  bring_up(cluster, fm);

  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(5));
  // Trunk 3 is sw3-sw0: the link the epoch-1 home->node3 route crosses.
  cluster.topo().set_cable_down(cluster.fabric().trunk_cables()[3], true);
  cluster.run_for(sim::msec(50));
  ASSERT_GE(fm.mapper().epoch(), 2u);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);

  // FTD recovery brings the card back; its announce dies in the dead
  // trunk. The census probe, re-derived from the current switch graph to
  // node 3's remembered attach point, goes the long way round and lands.
  cluster.run_for(sim::sec(8));
  EXPECT_GE(fm.mapper().stats().census_probes, 1u);
  EXPECT_FALSE(cluster.node(3).mcp().hung());
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, ReturnedNodeFoldsInWithoutRediscovery) {
  // A node missing from the map that answers a census probe (or
  // announces) used to trigger a *full* remap — re-scouting the whole
  // fabric. Under sustained loss that is how remap storms perpetuate:
  // each re-scout can lose a different node's replies, which the next
  // census folds back in, forever. The answer already proves where the
  // node sits, so the mapper must graft it in at its recorded attach
  // point and push routes without running discovery again.
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  fc.max_remap_retries = 0;  // no blind remaps: fold-in must do the work
  mapper::FailoverManager fm(cluster, fc);
  bring_up(cluster, fm);

  // Hang node 3, then remap while it is out: epoch 2 lacks it, but its
  // attach point (sw3, host port) is remembered from epoch 1.
  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(5));
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(50));
  ASSERT_TRUE(ok);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);
  const std::uint64_t runs_before = fm.mapper().stats().runs;

  // Recovery + census answer/announce: the node must come back via the
  // incremental graft — same discovery count, census_folds bumped, and
  // the new epoch distributed to everyone.
  cluster.run_for(sim::sec(8));
  EXPECT_FALSE(cluster.node(3).mcp().hung());
  EXPECT_GE(fm.mapper().stats().census_folds, 1u);
  EXPECT_EQ(fm.mapper().stats().runs, runs_before);
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, PortSweepRescuesANodeNeverPresentInAnyMap) {
  // PR-5 residual (a): a roster node hung through *every* mapping run has
  // no last route and no attach point — the census used to skip it
  // silently, and once its announce budget was burnt inside a loss
  // window, nothing would ever reach it again. The unknown-port sweep
  // must knock on the dark switch ports and find it.
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  fc.max_remap_retries = 0;  // isolate the sweep: no blind remap retries
  mapper::FailoverManager fm(cluster, fc);

  // Node 3 wedges before the fabric is ever mapped: epoch 1 knows the
  // switch it hangs off (scouts map sw3 via its trunks) but not the node.
  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(1));
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(50));
  ASSERT_TRUE(ok);
  ASSERT_EQ(fm.mapper().epoch(), 1u);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);

  // FTD recovery restores the card — but its driver mirror is empty (it
  // never received a single chunk), so it has no route to the mapper and
  // cannot announce: the node is permanently silent from its own side.
  for (int i = 0; i < 2000 && cluster.node(3).mcp().hung(); ++i) {
    cluster.run_for(sim::msec(10));
  }
  ASSERT_FALSE(cluster.node(3).mcp().hung());
  ASSERT_EQ(cluster.node(3).mcp().stats().announces_sent, 0u);

  // Only the sweep can cross now: sw3's host port has no neighbour in the
  // map, the scrub probes it, the card acks, and a remap folds it in.
  cluster.run_for(sim::sec(2));
  EXPECT_GE(fm.mapper().stats().census_sweep_probes, 1u);
  EXPECT_GE(cluster.metrics().counter("mapper.census_probes").value(), 1u);
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_TRUE(fm.converged());
  EXPECT_TRUE(fm.settled());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, RecoveredCardAnnouncesEvenAtEpochZero) {
  gm::Cluster cluster(ring4(mcp::McpMode::kFtgm));
  mapper::FailoverManager::Config fc;
  fc.scrub_interval = sim::sec(1000);  // no census: the announce must do it
  fc.max_remap_retries = 0;
  mapper::FailoverManager fm(cluster, fc);

  // Node 3 wedges before the fabric is ever mapped: the first epoch never
  // sees it at all.
  cluster.node(3).mcp().inject_hang("test");
  cluster.node(3).ftd().mark_fault_injected();
  cluster.run_for(sim::msec(1));
  bool ok = false;
  fm.remap_now([&](bool r) { ok = r; });
  cluster.run_for(sim::msec(50));
  ASSERT_TRUE(ok);
  ASSERT_EQ(fm.mapper().epoch(), 1u);
  ASSERT_EQ(fm.mapper().table().count(3), 0u);

  // The first epoch-1 chunk reached node 3's host mirror before the card
  // wedged: the driver knows who the mapper is and holds a partial mirror
  // (a route to the mapper host), but the epoch never completed — the
  // installed epoch is still 0. This used to mean "nothing to announce".
  auto to_mapper = cluster.fabric().route(3, 0);
  ASSERT_TRUE(to_mapper.has_value());
  net::RouteUpdate partial{1, 0, 2, {{0, *to_mapper}}};
  cluster.node(3).driver().map_route_update(partial, 0);
  ASSERT_EQ(cluster.node(3).route_epoch(), 0u);

  // Recovery restores the card at epoch 0. The announce must go out
  // anyway: the mapper never mapped this node, so no scrub or census
  // probe will ever look for it — the announce is the only way back in.
  // (hung() clears at the reload step; the announce only goes out at the
  // route-restore step ~600 ms later — poll for the announce itself.)
  for (int i = 0;
       i < 800 && cluster.node(3).mcp().stats().announces_sent == 0; ++i) {
    cluster.run_for(sim::msec(10));
  }
  ASSERT_FALSE(cluster.node(3).mcp().hung());
  cluster.run_for(sim::msec(500));
  EXPECT_GE(cluster.node(3).mcp().stats().announces_sent, 1u);
  EXPECT_EQ(fm.mapper().interfaces().size(), 4u);
  EXPECT_GE(fm.mapper().epoch(), 2u);
  EXPECT_TRUE(fm.converged());
  EXPECT_EQ(cluster.node(3).route_epoch(), fm.mapper().epoch());
}

TEST(RouteEpoch, StaleEpochGatesSendsWithRecovering) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  gm::Node& n1 = cluster.node(1);
  auto& port = n1.open_port(2);
  cluster.run_for(sim::usec(100));
  gm::Buffer b = port.alloc_dma_buffer(64);
  ASSERT_TRUE(port.post(b, 64, {.dst = 2, .dst_port = 3}).ok());
  cluster.run_for(sim::msec(2));

  // An epoch-2 probe tells node 1's driver a newer table exists that it
  // does not hold: the port must gate new work until the push lands.
  net::RouteUpdate probe{2, 0, 0, {}};
  n1.driver().map_route_update(probe, 0);
  EXPECT_TRUE(n1.routes_stale());
  EXPECT_EQ(port.post(b, 64, {.dst = 2, .dst_port = 3}).code(),
            gm::Status::kRecovering);

  // The full epoch-2 table arrives (one chunk): the gate lifts.
  net::RouteUpdate u{2, 0, 1, {}};
  for (const auto& [dst, route] : n1.driver().route_mirror()) {
    u.entries.push_back({dst, route});
  }
  n1.driver().map_route_update(u, 0);
  EXPECT_FALSE(n1.routes_stale());
  EXPECT_EQ(n1.route_epoch(), 2u);
  EXPECT_TRUE(port.post(b, 64, {.dst = 2, .dst_port = 3}).ok());
  cluster.run_for(sim::msec(2));
}

TEST(RouteEpoch, StaleChunksFromAnOlderEpochAreIgnored) {
  gm::Cluster cluster(ring4(mcp::McpMode::kGm));
  mapper::FailoverManager fm(cluster);
  bring_up(cluster, fm);

  gm::Node& n1 = cluster.node(1);
  ASSERT_EQ(n1.route_epoch(), 1u);
  // A delayed epoch-0-style replay (epoch below installed) must neither
  // regress the epoch nor mark the node stale.
  net::RouteUpdate old{0, 0, 1, {{9, {1, 2}}}};
  n1.driver().map_route_update(old, 0);
  EXPECT_EQ(n1.route_epoch(), 1u);
  EXPECT_FALSE(n1.routes_stale());
  EXPECT_EQ(n1.driver().route_mirror().count(9), 0u);
}

}  // namespace
}  // namespace myri
