// Randomized-schedule chaos sweeps (ctest label: chaos).
//
// Each case runs fi::Scenario::random(seed) — topology, rates and fault
// schedule all derived from the seed — under the continuous fi::Oracle.
// Any failure is unexpected: the test then delta-debugs the schedule with
// fi::Shrinker and writes a repro_<seed>.json artifact (uploaded by the
// CI chaos job) that `scenario_replay` re-runs bit-identically.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "faultinject/scenario.hpp"
#include "faultinject/shrinker.hpp"

namespace myri {
namespace {

void report_and_dump(const fi::Scenario& s, const fi::RunReport& r,
                     const std::string& tag) {
  const fi::ShrinkResult sh = fi::Shrinker::shrink(s, r);
  const std::string path = "repro_" + tag + ".json";
  fi::write_repro(path, sh.minimal, sh.report);
  ADD_FAILURE() << tag << " failed: "
                << (r.oracle_ok ? "incomplete delivery"
                                : r.violation + " (" + r.violation_detail + ")")
                << "\n  shrunk to " << sh.minimal.events.size()
                << " event(s) in " << sh.attempts << " attempts; repro: "
                << path << "\n  replay with: scenario_replay " << path;
}

class RandomScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScheduleSweep, HoldsAllInvariants) {
  const std::uint64_t seed = GetParam();
  const fi::Scenario s = fi::Scenario::random(seed);
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "seed_" + std::to_string(seed));
    return;
  }
  // Cross-process seed stability: the digest this run produced must match
  // a second run of the identical scenario value.
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- big-fabric schedules (beyond what random() generates) -------------

TEST(ScenarioChaos, FatTree64NodeHangMidStream) {
  fi::Scenario s;
  s.seed = 7;
  s.nodes = 64;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 60;
  s.msg_len = 1500;
  s.drop = 0.02;
  s.corrupt = 0.01;
  fi::ScenarioEvent hang;
  hang.kind = fi::ScenarioEvent::Kind::kNicHang;
  hang.node = 13;
  hang.at = fi::Scenario::kWarmup + sim::usec(500);
  s.events.push_back(hang);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "fattree64_hang");
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_EQ(r.deliveries, 64u * 60u);
}

TEST(ScenarioChaos, FatTree64NodeTrunkKillAndRestore) {
  fi::Scenario s;
  s.seed = 11;
  s.nodes = 64;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 80;
  s.msg_len = 1200;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent down;
  down.kind = K::kCableDown;
  down.cable = 2;
  down.at = fi::Scenario::kWarmup + sim::usec(300);
  fi::ScenarioEvent up;
  up.kind = K::kCableUp;
  up.cable = 2;
  up.at = down.at + sim::msec(400);
  s.events = {down, up};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "fattree64_trunk");
    return;
  }
  EXPECT_GE(r.remaps, 1u);
  EXPECT_EQ(r.deliveries, 64u * 80u);
}

TEST(ScenarioChaos, FatTree3With512NodesHangMidStream) {
  // The event-core scale target: 512 endpoints on the 3-level Clos, all
  // streaming, with one NIC hang mid-stream. Exercises the calendar
  // queue's ring wrap and overflow migration under real load, the batch
  // route derivation (512 route tables), and recovery at a fabric size
  // where the O(n²) paths would time out. Pinned seed: CI's perf-smoke
  // job runs exactly this case, so its digest doubles as a determinism
  // canary across machines.
  fi::Scenario s;
  s.seed = 7;
  s.nodes = 512;
  s.fabric = net::FabricPreset::kFatTree3;
  s.radix = 16;
  s.msgs = 12;
  s.msg_len = 1024;
  s.drop = 0.01;
  fi::ScenarioEvent hang;
  hang.kind = fi::ScenarioEvent::Kind::kNicHang;
  hang.node = 100;
  hang.at = fi::Scenario::kWarmup + sim::usec(500);
  s.events.push_back(hang);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "fattree3_512_hang");
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_EQ(r.deliveries, 512u * 12u);
  // Seed stability at scale: identical scenario value, identical digest.
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

TEST(ScenarioChaos, RingHangPlusLossWindow) {
  fi::Scenario s;
  s.seed = 3;
  s.nodes = 6;
  s.fabric = net::FabricPreset::kRing;
  s.msgs = 40;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent win;
  win.kind = K::kFaultWindow;
  win.at = fi::Scenario::kWarmup + sim::usec(200);
  win.duration = sim::msec(2);
  win.drop = 0.15;
  win.corrupt = 0.05;
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 4;
  hang.at = fi::Scenario::kWarmup + sim::usec(800);
  s.events = {win, hang};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "ring_hang_loss");
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
}

TEST(ScenarioChaos, MixedHangCableKillAndLossyWindow) {
  // The profile the old disjoint generator refused to produce: a NIC hang,
  // a trunk kill and a lossy window overlapping on one fabric. The epoch
  // control plane must retry dropped MAP_ROUTE chunks through the window,
  // remap around the dead trunk, fold the recovered node back in, and
  // leave every card on the mapper's epoch (the oracle's route-convergence
  // invariant checks exactly that after quiesce).
  fi::Scenario s;
  s.seed = 19;
  s.nodes = 8;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 30;
  s.msg_len = 1024;
  s.drop = 0.04;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 5;
  hang.at = fi::Scenario::kWarmup + sim::usec(400);
  fi::ScenarioEvent down;
  down.kind = K::kCableDown;
  down.cable = 1;
  down.at = fi::Scenario::kWarmup + sim::usec(900);  // node 5 still hung
  fi::ScenarioEvent win;
  win.kind = K::kFaultWindow;
  win.at = down.at + sim::usec(100);  // chunks of the remap meet the loss
  win.duration = sim::msec(5);
  win.drop = 0.20;
  win.corrupt = 0.05;
  fi::ScenarioEvent up;
  up.kind = K::kCableUp;
  up.cable = 1;
  up.at = down.at + sim::msec(600);
  s.events = {hang, down, win, up};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "mixed_hang_cable_loss");
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_GE(r.remaps, 2u);  // trunk kill + restore (+ announce remap)
  EXPECT_EQ(r.deliveries, 8u * 30u);
  // Seed stability holds for the mixed profile too.
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

// ---- announce-loss profiles (self-healing convergence) -----------------

// A node that recovers inside a total-loss window: its announce (and some
// or all retries) die on the wire, and no cable event ever arrives after
// the recovery to bail the control plane out. Convergence must come from
// the card's announce retry backoff or the mapper's census probe alone.
//
// Shape: a cable kill maps the fabric while everyone is alive (so the
// victim has a last-known route for census), the victim wedges, the cable
// restore remaps WITHOUT it, and a 100% drop window opens over the FTD
// recovery. `window_ms` decides who heals it: shorter than the announce
// retry span (~320 ms of backoff) leaves retries to land after the window;
// longer kills the whole announce budget and leaves only census.
fi::Scenario announce_loss(std::uint64_t seed, sim::Time window_len) {
  fi::Scenario s;
  s.seed = seed;
  s.nodes = 8;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 15;  // streams drain well before the control-plane drama
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent down;
  down.kind = K::kCableDown;
  down.cable = 1;
  down.at = fi::Scenario::kWarmup + sim::msec(100);
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 5;
  hang.at = fi::Scenario::kWarmup + sim::msec(150);
  fi::ScenarioEvent up;
  up.kind = K::kCableUp;
  up.cable = 1;
  up.at = fi::Scenario::kWarmup + sim::msec(160);  // node 5 still hung
  fi::ScenarioEvent win;  // covers the recovery announce (~hang + 730 ms)
  win.kind = K::kFaultWindow;
  win.at = hang.at + sim::msec(500);
  win.duration = window_len;
  win.drop = 1.0;
  s.events = {down, hang, up, win};
  return s;
}

class AnnounceLossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnounceLossSweep, RetriedAnnounceConvergesThroughTotalLoss) {
  // Window ends mid-backoff: a late announce retry is the first packet
  // out of the recovered card that survives, and it alone must fold the
  // node back into the map (route-convergence would fail the run if not).
  const fi::Scenario s = announce_loss(GetParam(), sim::msec(400));
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "announce_loss_" + std::to_string(GetParam()));
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_GE(r.remaps, 3u);  // kill + restore + fold-in
  EXPECT_EQ(r.deliveries, 8u * 15u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnounceLossSweep,
                         ::testing::Values<std::uint64_t>(23, 24, 25, 26));

TEST(ScenarioChaos, CensusProbeConvergesWhenTheWholeAnnounceBudgetIsLost) {
  // Window outlives every announce retry (~320 ms span): the card goes
  // permanently silent from its side, and the mapper-side census probe at
  // the node's last-known route is the only repair channel left.
  const fi::Scenario s = announce_loss(29, sim::msec(1300));
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "announce_budget_lost");
    return;
  }
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_GE(r.remaps, 3u);
  EXPECT_EQ(r.deliveries, 8u * 15u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

// ---- membership profiles (roster deltas under traffic) -----------------

TEST(ScenarioChaos, JoinDuringLossWindow) {
  // Hot-add while every link is lossy: the joiner's fold-in census probe,
  // its MAP_ROUTE chunks and the verification stream all have to fight
  // the same drop rate. Route-convergence requires the joiner on the
  // mapper's epoch at horizon regardless.
  fi::Scenario s;
  s.seed = 31;
  s.nodes = 6;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 30;
  s.msg_len = 1024;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent win;
  win.kind = K::kFaultWindow;
  win.at = fi::Scenario::kWarmup + sim::usec(200);
  win.duration = sim::msec(5);
  win.drop = 0.25;
  win.corrupt = 0.05;
  fi::ScenarioEvent join;
  join.kind = K::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(2);  // inside the window
  s.events = {win, join};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "join_during_loss");
    return;
  }
  // 6 ring streams + the joiner's 8-message verification stream.
  EXPECT_EQ(r.deliveries, 6u * 30u + 8u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

TEST(ScenarioChaos, DrainMidRemap) {
  // Drain ordered while a trunk-kill remap is still distributing: the
  // drain gate, the GBN tails re-routed around the dead trunk and the
  // retirement handshake all overlap. The membership invariant insists
  // the drain still terminates in a retirement.
  fi::Scenario s;
  s.seed = 37;
  s.nodes = 8;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 30;
  s.msg_len = 1024;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent down;
  down.kind = K::kCableDown;
  down.cable = 1;
  down.at = fi::Scenario::kWarmup + sim::usec(400);
  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 3;
  drain.at = down.at + sim::usec(300);  // remap chunks still in flight
  s.events = {down, drain};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "drain_mid_remap");
    return;
  }
  EXPECT_GE(r.remaps, 1u);
  // Every ring stream completes exactly-once (the drained node finishes
  // its in-flight traffic before retiring); drains add no extra stream.
  EXPECT_EQ(r.deliveries, 8u * 30u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

TEST(ScenarioChaos, ReplaceDuringRecovery) {
  // Spare swap while the FTD is mid-recovery on the dead card: the
  // quarantined card's late replay must transmit into its cut cable (no
  // duplicate deliveries), and the spare must land on the mapper's epoch
  // and serve the verification stream.
  fi::Scenario s;
  s.seed = 41;
  s.nodes = 8;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 25;
  s.msg_len = 1024;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 5;
  hang.at = fi::Scenario::kWarmup + sim::usec(500);
  fi::ScenarioEvent repl;
  repl.kind = K::kNodeReplace;
  repl.node = 5;
  repl.at = hang.at + sim::msec(200);  // FTD recovery still in flight
  s.events = {hang, repl};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "replace_during_recovery");
    return;
  }
  // The dead card takes its two ring streams with it (abandoned, partial
  // by design); the other 6 complete and the spare's verification stream
  // delivers all 8.
  EXPECT_GE(r.deliveries, 6u * 25u + 8u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

TEST(ScenarioChaos, FatTree64NodeMembershipChurn) {
  // Full membership churn at fabric scale: a join, a drain and a replace
  // on a 64-node fat-tree, all under baseline loss, with the digest
  // re-run pinning seed stability for the membership event paths.
  fi::Scenario s;
  s.seed = 47;
  s.nodes = 64;
  s.fabric = net::FabricPreset::kFatTree;
  s.radix = 10;  // 13 leaves x 5 hosts: one free port for the joiner
  s.msgs = 20;
  s.msg_len = 1200;
  s.drop = 0.01;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent join;
  join.kind = K::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(1);
  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 20;
  drain.at = fi::Scenario::kWarmup + sim::msec(30);
  fi::ScenarioEvent repl;
  repl.kind = K::kNodeReplace;
  repl.node = 40;
  repl.at = fi::Scenario::kWarmup + sim::msec(60);
  s.events = {join, drain, repl};

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  if (r.failed()) {
    report_and_dump(s, r, "fattree64_membership");
    return;
  }
  // 62 surviving ring streams complete (two are abandoned to the replaced
  // card) plus two 8-message verification streams.
  EXPECT_GE(r.deliveries, 62u * 20u + 16u);
  EXPECT_EQ(fi::ScenarioRunner::run(s).digest, r.digest);
}

}  // namespace
}  // namespace myri
