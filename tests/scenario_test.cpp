// fi::Scenario / fi::Oracle / fi::Shrinker engine tests: determinism,
// JSON round-trips, the oracle catching a deliberately broken invariant
// mid-run, delta-debugging shrink, and the repro -> replay loop.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "faultinject/scenario.hpp"
#include "faultinject/shrinker.hpp"

namespace myri {
namespace {

fi::Scenario two_node_clean() {
  fi::Scenario s;
  s.seed = 77;
  s.nodes = 2;
  s.msgs = 12;
  s.msg_len = 1024;
  return s;
}

// ---- clean runs across topologies --------------------------------------

TEST(Scenario, CleanRunDeliversAndPassesOracle) {
  const fi::RunReport r = fi::ScenarioRunner::run(two_node_clean());
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.deliveries, 24u);  // 12 msgs x 2 ring streams
  EXPECT_GT(r.oracle_checks, 0u);
  ASSERT_EQ(r.streams.size(), 2u);
  for (const fi::StreamOutcome& so : r.streams) {
    EXPECT_TRUE(so.complete);
    EXPECT_EQ(so.duplicates, 0);
    EXPECT_EQ(so.missing, 0);
  }
}

TEST(Scenario, HangScheduleRecoversOnFtgm) {
  fi::Scenario s;
  s.seed = 5;
  s.nodes = 4;
  s.msgs = 40;
  fi::ScenarioEvent hang;
  hang.kind = fi::ScenarioEvent::Kind::kNicHang;
  hang.node = 1;
  hang.at = fi::Scenario::kWarmup + sim::usec(400);
  s.events.push_back(hang);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed()) << r.violation << ": " << r.violation_detail;
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_EQ(r.deliveries, 160u);
}

TEST(Scenario, CableKillOnFatTreeRemapsAndDelivers) {
  fi::Scenario s;
  s.seed = 9;
  s.nodes = 8;
  s.fabric = net::FabricPreset::kFatTree;
  s.msgs = 60;  // long enough that the kill lands mid-stream
  fi::ScenarioEvent down;
  down.kind = fi::ScenarioEvent::Kind::kCableDown;
  down.cable = 0;
  down.at = fi::Scenario::kWarmup + sim::usec(300);
  s.events.push_back(down);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed()) << r.violation << ": " << r.violation_detail;
  EXPECT_GE(r.remaps, 1u);
}

TEST(Scenario, RosterInvariantFlagsANodeTheMapNeverDiscovered) {
  // An open chain cut behind the mapper home: the far side stays up but
  // can never be discovered, announced, or census-probed. The epoch loop
  // alone is blind to this (an unmapped node has no table entry to lag
  // behind); the roster interface count must fail the run.
  fi::Scenario s;
  s.seed = 31;
  s.nodes = 4;
  s.fabric = net::FabricPreset::kLine;
  s.radix = 3;  // one host per switch: cable 1 cuts {0,1} from {2,3}
  s.msgs = 6;   // all streams drain long before the cut
  fi::ScenarioEvent cut;
  cut.kind = fi::ScenarioEvent::Kind::kCableDown;
  cut.cable = 1;
  cut.at = fi::Scenario::kWarmup + sim::msec(50);
  s.events.push_back(cut);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_TRUE(r.delivered);  // the workload itself finished cleanly
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.violation, "route-convergence");
  EXPECT_NE(r.violation_detail.find("absent from the final map"),
            std::string::npos)
      << r.violation_detail;
}

TEST(Scenario, RejectsInvalidScenario) {
  fi::Scenario s;
  s.nodes = 1;  // a ring workload needs at least 2
  EXPECT_THROW((void)fi::ScenarioRunner::run(s), std::invalid_argument);
}

// ---- seed determinism ---------------------------------------------------

TEST(Scenario, IdenticalSeedsYieldIdenticalDigests) {
  fi::Scenario s = fi::Scenario::random(314159);
  const fi::RunReport a = fi::ScenarioRunner::run(s);
  const fi::RunReport b = fi::ScenarioRunner::run(s);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.oracle_checks, b.oracle_checks);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.failed(), b.failed());
}

TEST(Scenario, DifferentSeedsYieldDifferentDigests) {
  // Same shape, different cluster seed. The seed drives the link-fault
  // dice, so give the link a loss rate: different seeds then drop
  // different packets and the retransmits shift delivery times, which
  // the digest hashes. (A fault-free run is seed-independent by design.)
  fi::Scenario a = two_node_clean();
  a.drop = 0.05;
  fi::Scenario b = a;
  b.seed = 78;
  EXPECT_NE(fi::ScenarioRunner::run(a).digest,
            fi::ScenarioRunner::run(b).digest);
}

TEST(Scenario, RandomIsDeterministicInItsSeed) {
  EXPECT_EQ(fi::Scenario::random(42), fi::Scenario::random(42));
  EXPECT_NE(fi::Scenario::random(42), fi::Scenario::random(43));
}

// ---- JSON ---------------------------------------------------------------

TEST(ScenarioJson, RoundTripsExactly) {
  for (std::uint64_t seed : {1ull, 16ull, 99ull, 12345ull}) {
    const fi::Scenario s = fi::Scenario::random(seed);
    std::string err;
    const auto back = fi::Scenario::from_json(s.to_json(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, s) << "seed " << seed;
  }
}

TEST(ScenarioJson, RoundTripsEveryEventKind) {
  fi::Scenario s = two_node_clean();
  s.drop = 0.07;
  s.corrupt = 0.03;
  s.horizon = sim::sec(9);
  s.send_gap = sim::msec(3);
  s.check_window = sim::msec(500);
  s.retain_caches = true;
  using K = fi::ScenarioEvent::Kind;
  for (K k : {K::kNicHang, K::kCableDown, K::kCableUp, K::kFaultWindow,
              K::kSramFlip, K::kDoubleDeliver, K::kTokenLeak}) {
    fi::ScenarioEvent ev;
    ev.kind = k;
    ev.at = fi::Scenario::kWarmup + sim::usec(17);
    ev.node = 1;
    ev.cable = 2;
    ev.drop = 0.11;
    ev.corrupt = 0.05;
    ev.duration = sim::usec(321);
    ev.offset = 4097;
    ev.bit = 6;
    s.events.push_back(ev);
  }
  std::string err;
  const auto back = fi::Scenario::from_json(s.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, s);
}

TEST(ScenarioJson, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(fi::Scenario::from_json("", &err).has_value());
  EXPECT_FALSE(fi::Scenario::from_json("{", &err).has_value());
  EXPECT_FALSE(fi::Scenario::from_json("[]", &err).has_value());
  EXPECT_FALSE(
      fi::Scenario::from_json("{\"topology\":{\"nodes\":0}}", &err)
          .has_value());
  EXPECT_FALSE(err.empty());
}

TEST(ScenarioJson, U64SeedSurvivesUnchanged) {
  // Would truncate if numbers went through a double anywhere.
  fi::Scenario s = two_node_clean();
  s.seed = 0xFFFFFFFFFFFFFFFFull - 1;
  const auto back = fi::Scenario::from_json(s.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, s.seed);
}

// ---- structural validation ----------------------------------------------

TEST(ScenarioValidate, AcceptsDrainOfAScheduledJoin) {
  fi::Scenario s;
  s.nodes = 6;  // radix-8 fat-tree: leaf 1 keeps two host ports free
  s.fabric = net::FabricPreset::kFatTree;
  s.radix = 8;
  fi::ScenarioEvent join;
  join.kind = fi::ScenarioEvent::Kind::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(5);
  fi::ScenarioEvent drain;
  drain.kind = fi::ScenarioEvent::Kind::kNodeDrain;
  drain.node = 6;  // the id the join above will mint
  drain.at = fi::Scenario::kWarmup + sim::msec(40);
  s.events = {join, drain};
  EXPECT_TRUE(s.validate().empty()) << s.validate();
}

TEST(ScenarioValidate, RejectsBrokenMembershipTimelines) {
  fi::Scenario base;
  base.nodes = 4;
  base.fabric = net::FabricPreset::kFatTree;
  base.radix = 8;
  using K = fi::ScenarioEvent::Kind;

  {  // drain of an id no join ever mints
    fi::Scenario s = base;
    fi::ScenarioEvent drain;
    drain.kind = K::kNodeDrain;
    drain.node = 9;
    drain.at = fi::Scenario::kWarmup + sim::msec(5);
    s.events = {drain};
    EXPECT_FALSE(s.validate().empty());
  }
  {  // double drain of the same node
    fi::Scenario s = base;
    fi::ScenarioEvent d1;
    d1.kind = K::kNodeDrain;
    d1.node = 2;
    d1.at = fi::Scenario::kWarmup + sim::msec(5);
    fi::ScenarioEvent d2 = d1;
    d2.at = fi::Scenario::kWarmup + sim::msec(50);
    s.events = {d1, d2};
    EXPECT_FALSE(s.validate().empty());
  }
  {  // drain of a join that fires later in the timeline
    fi::Scenario s = base;
    fi::ScenarioEvent drain;
    drain.kind = K::kNodeDrain;
    drain.node = 4;
    drain.at = fi::Scenario::kWarmup + sim::msec(5);
    fi::ScenarioEvent join;
    join.kind = K::kNodeJoin;
    join.at = fi::Scenario::kWarmup + sim::msec(50);
    s.events = {drain, join};
    EXPECT_FALSE(s.validate().empty());
  }
}

TEST(ScenarioValidate, PortCreditAllowsJoinOnlyAfterDrainRetires) {
  // The 64-node radix-10 fat-tree has exactly one spare port. A second
  // join is only runnable once an earlier drain has handed its port back
  // (kRecoveryAllowance past the drain) — validate() must replay that
  // timeline, not just count ports statically.
  fi::Scenario s;
  s.nodes = 64;
  s.fabric = net::FabricPreset::kFatTree;
  s.radix = 10;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent join1;
  join1.kind = K::kNodeJoin;
  join1.at = fi::Scenario::kWarmup + sim::sec(1);
  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 64;
  drain.at = fi::Scenario::kWarmup + sim::sec(5);
  fi::ScenarioEvent join2;
  join2.kind = K::kNodeJoin;
  s.events = {join1, drain, join2};

  // Too soon: the drained port is still retiring at drain + 2 s.
  s.events[2].at = drain.at + sim::sec(2);
  EXPECT_FALSE(s.validate().empty());
  // After the credit lands (drain + kRecoveryAllowance) the join is fine.
  s.events[2].at = drain.at + fi::Scenario::kRecoveryAllowance + sim::msec(1);
  EXPECT_TRUE(s.validate().empty()) << s.validate();
}

// ---- the deliberately broken invariant ----------------------------------

fi::Scenario double_deliver_scenario() {
  // Duplicate stream 0's next delivery mid-run, padded with events that
  // have nothing to do with the failure (shrink fodder).
  fi::Scenario s;
  s.seed = 21;
  s.nodes = 4;
  s.msgs = 30;
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent dup;
  dup.kind = K::kDoubleDeliver;
  dup.node = 0;
  dup.at = fi::Scenario::kWarmup + sim::usec(500);
  fi::ScenarioEvent win;
  win.kind = K::kFaultWindow;
  win.at = fi::Scenario::kWarmup + sim::usec(100);
  win.duration = sim::usec(900);
  win.drop = 0.05;
  fi::ScenarioEvent hang;
  hang.kind = K::kNicHang;
  hang.node = 2;
  hang.at = fi::Scenario::kWarmup + sim::usec(2500);
  fi::ScenarioEvent win2;
  win2.kind = K::kFaultWindow;
  win2.at = fi::Scenario::kWarmup + sim::usec(4000);
  win2.duration = sim::usec(500);
  win2.corrupt = 0.02;
  s.events = {win, dup, hang, win2};
  return s;
}

TEST(Oracle, CatchesDoubleDeliveryMidRun) {
  const fi::Scenario s = double_deliver_scenario();
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.oracle_ok);
  EXPECT_EQ(r.violation, "stream-exactly-once");
  EXPECT_EQ(r.failure_signature(), "stream-exactly-once");
  // Caught mid-run, at the duplicate itself — not in some end-of-run
  // audit long after: the violation time is inside the delivery phase.
  EXPECT_GE(r.violation_at, fi::Scenario::kWarmup + sim::usec(500));
  EXPECT_LT(r.violation_at, sim::msec(100));
}

TEST(Shrinker, MinimizesDoubleDeliverScheduleToEssentials) {
  const fi::Scenario s = double_deliver_scenario();
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  ASSERT_TRUE(r.failed());

  const fi::ShrinkResult sh = fi::Shrinker::shrink(s, r);
  EXPECT_LE(sh.minimal.events.size(), 3u);
  EXPECT_EQ(sh.report.failure_signature(), "stream-exactly-once");
  EXPECT_LE(sh.minimal.nodes, s.nodes);
  EXPECT_LE(sh.minimal.msgs, s.msgs);
  EXPECT_GT(sh.attempts, 0);
  // The one event that matters must survive the shrink.
  bool has_dup = false;
  for (const fi::ScenarioEvent& ev : sh.minimal.events) {
    has_dup |= ev.kind == fi::ScenarioEvent::Kind::kDoubleDeliver;
  }
  EXPECT_TRUE(has_dup);
  // Minimal scenario still fails identically when re-run from scratch.
  const fi::RunReport again = fi::ScenarioRunner::run(sh.minimal);
  EXPECT_EQ(again.failure_signature(), "stream-exactly-once");
  EXPECT_EQ(again.digest, sh.report.digest);
}

TEST(Shrinker, PreservesMembershipTimelineWhenShrinkingJoinDuringLoss) {
  // A join landing inside a loss window, the joiner drained later, plus a
  // deliberate duplicate so the run fails deterministically. Every shrink
  // candidate must keep the membership timeline structurally valid — a
  // candidate that drops the join but keeps the drain (or moves the join
  // to a port-less instant) is rejected by Scenario::validate()'s
  // dry-build port replay, not run.
  fi::Scenario s;
  s.seed = 41;
  s.nodes = 6;  // radix-8 fat-tree: leaf 1 keeps two host ports free
  s.fabric = net::FabricPreset::kFatTree;
  s.radix = 8;
  s.msgs = 30;
  s.send_gap = sim::msec(1);  // paced: stream 0 is still mid-flight at +6 ms
  using K = fi::ScenarioEvent::Kind;
  fi::ScenarioEvent loss;
  loss.kind = K::kFaultWindow;
  loss.at = fi::Scenario::kWarmup + sim::usec(100);
  loss.duration = sim::msec(8);
  loss.drop = 0.08;
  fi::ScenarioEvent join;
  join.kind = K::kNodeJoin;
  join.at = fi::Scenario::kWarmup + sim::msec(2);  // inside the loss window
  fi::ScenarioEvent dup;
  dup.kind = K::kDoubleDeliver;
  dup.node = 0;
  dup.at = fi::Scenario::kWarmup + sim::msec(6);
  fi::ScenarioEvent drain;
  drain.kind = K::kNodeDrain;
  drain.node = 6;  // the joiner
  drain.at = fi::Scenario::kWarmup + sim::msec(30);
  s.events = {loss, join, dup, drain};
  ASSERT_TRUE(s.validate().empty()) << s.validate();

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  ASSERT_TRUE(r.failed());
  ASSERT_EQ(r.failure_signature(), "stream-exactly-once");

  const fi::ShrinkResult sh = fi::Shrinker::shrink(s, r);
  EXPECT_EQ(sh.report.failure_signature(), "stream-exactly-once");
  EXPECT_TRUE(sh.minimal.validate().empty()) << sh.minimal.validate();
  // No orphaned drain: if the drain survived, so did the join it targets.
  bool has_join = false, has_drain = false;
  for (const fi::ScenarioEvent& ev : sh.minimal.events) {
    has_join |= ev.kind == K::kNodeJoin;
    has_drain |= ev.kind == K::kNodeDrain;
  }
  EXPECT_TRUE(has_join || !has_drain);
  // And the minimal repro replays bit-identically through the JSON loop.
  const auto back = fi::Scenario::from_json(sh.minimal.to_json());
  ASSERT_TRUE(back.has_value());
  const fi::RunReport again = fi::ScenarioRunner::run(*back);
  EXPECT_EQ(again.digest, sh.report.digest);
}

// ---- repro artifacts ----------------------------------------------------

TEST(Repro, ArtifactReplaysToIdenticalFailure) {
  const fi::Scenario s = double_deliver_scenario();
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  ASSERT_TRUE(r.failed());
  const fi::ShrinkResult sh = fi::Shrinker::shrink(s, r);

  const std::string path = "repro_scenario_test.json";
  ASSERT_TRUE(fi::write_repro(path, sh.minimal, sh.report));

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  // The artifact parses back to the exact minimal scenario...
  std::string err;
  const auto parsed = fi::Scenario::from_json(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, sh.minimal);

  // ...carries the recorded outcome...
  const auto expect = fi::parse_repro_expect(text);
  ASSERT_TRUE(expect.has_value());
  EXPECT_TRUE(expect->failed);
  EXPECT_EQ(expect->signature, sh.report.failure_signature());
  EXPECT_EQ(expect->digest, sh.report.digest);

  // ...and re-runs to the identical failure, bit for bit.
  const fi::RunReport replay = fi::ScenarioRunner::run(*parsed);
  EXPECT_EQ(replay.failure_signature(), expect->signature);
  EXPECT_EQ(replay.digest, expect->digest);
  std::remove(path.c_str());
}

TEST(Repro, ExpectBlockAbsentFromPlainScenarioJson) {
  const fi::Scenario s = two_node_clean();
  EXPECT_FALSE(fi::parse_repro_expect(s.to_json()).has_value());
}

}  // namespace
}  // namespace myri
