// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace myri::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(usec(1), 1000u);
  EXPECT_EQ(usecf(0.5), 500u);
  EXPECT_EQ(usecf(0.25), 250u);
  EXPECT_EQ(msec(2), 2'000'000u);
  EXPECT_EQ(sec(1), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_msec(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(kSecond), 1.0);
}

TEST(Time, FractionalMicrosecondsRound) {
  EXPECT_EQ(usecf(0.0001), 0u);
  EXPECT_EQ(usecf(0.3), 300u);
  EXPECT_EQ(usecf(13.0), 13000u);
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTimestampsRunFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eq.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue eq;
  Time fired = 0;
  eq.schedule_at(50, [&] {
    eq.schedule_after(25, [&] { fired = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(fired, 75u);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue eq;
  eq.schedule_at(100, [] {});
  eq.run();
  Time fired = 0;
  eq.schedule_at(10, [&] { fired = eq.now(); });  // in the past
  eq.run();
  EXPECT_EQ(fired, 100u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue eq;
  bool ran = false;
  auto h = eq.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  eq.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue eq;
  int runs = 0;
  auto h = eq.schedule_at(10, [&] { ++runs; });
  eq.run();
  h.cancel();  // must not crash or corrupt
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelFromInsideCallback) {
  EventQueue eq;
  bool second_ran = false;
  EventQueue::Handle h2;
  eq.schedule_at(10, [&] { h2.cancel(); });
  h2 = eq.schedule_at(20, [&] { second_ran = true; });
  eq.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventQueue, RunUntilAdvancesClockExactly) {
  EventQueue eq;
  int count = 0;
  eq.schedule_at(10, [&] { ++count; });
  eq.schedule_at(20, [&] { ++count; });
  eq.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(eq.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eq.now(), 20u);
  EXPECT_EQ(eq.pending_events(), 1u);
}

TEST(EventQueue, RunForIsRelative) {
  EventQueue eq;
  eq.schedule_at(5, [] {});
  eq.run();
  EXPECT_EQ(eq.now(), 5u);
  eq.run_for(10);
  EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunCapStopsSelfRescheduling) {
  EventQueue eq;
  std::function<void()> loop = [&] { eq.schedule_after(1, loop); };
  eq.schedule_at(0, loop);
  const std::size_t n = eq.run(1000);
  EXPECT_EQ(n, 1000u);
  EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.step());
  eq.schedule_at(1, [] {});
  EXPECT_TRUE(eq.step());
  EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EmptyAccountsForCancellations) {
  EventQueue eq;
  auto h = eq.schedule_at(10, [] {});
  EXPECT_FALSE(eq.empty());
  h.cancel();
  EXPECT_TRUE(eq.empty());
  EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue eq;
  for (int i = 0; i < 5; ++i) eq.schedule_at(i, [] {});
  eq.run();
  EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue eq;
  int depth = 0;
  std::function<void(int)> chain = [&](int d) {
    depth = d;
    if (d < 10) eq.schedule_after(5, [&, d] { chain(d + 1); });
  };
  eq.schedule_at(0, [&] { chain(1); });
  eq.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(eq.now(), 45u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo |= v == 3;
    hi |= v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng r(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.bernoulli(0.5) ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(42);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, PickCoversElements) {
  Rng r(5);
  std::vector<int> v{10, 20, 30};
  bool seen[3] = {};
  for (int i = 0; i < 100; ++i) {
    const int x = r.pick(v);
    seen[x / 10 - 1] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

}  // namespace
}  // namespace myri::sim
