// Long-horizon soak tests (ctest label: soak).
//
// The PR-budget slice of the soak story: a pinned-seed 64-node smoke soak
// with every fault kind plus membership churn must hold every invariant
// in every check window (and reproduce a pinned digest, which is the
// cross-process determinism guarantee — the constant below was produced
// by a different process than the one asserting it); a deliberately
// planted leak (mapper cache eviction disabled) must be caught by the
// drift oracle mid-run, attributed to its window, shrunk to a sub-minute
// repro, and replayed bit-identically; a test-only token leak must be
// attributed to the window it happened in, not the final one.
//
// The multi-virtual-hour profile runs in the nightly workflow via
// `cluster_sim --soak 7200`, not here.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "faultinject/scenario.hpp"
#include "faultinject/shrinker.hpp"
#include "faultinject/soak.hpp"

namespace myri {
namespace {

/// Smoke-scale arrival rates: a ~60-virtual-second run sees every fault
/// kind and several churn cycles. Mirrors cluster_sim's --soak defaults
/// for short durations.
fi::SoakProfile smoke_profile(sim::Time duration) {
  fi::SoakProfile p;
  p.seed = 2026;
  p.duration = duration;
  p.hang_every = sim::sec(20);
  p.cable_every = sim::sec(25);
  p.cable_outage = sim::sec(3);
  p.flip_every = sim::sec(30);
  p.loss_every = sim::sec(15);
  p.churn_every = sim::sec(12);
  p.replace_every = sim::sec(30);
  return p;
}

TEST(SoakGenerator, IsDeterministicAndValid) {
  const fi::Scenario a = fi::make_soak_scenario(smoke_profile(sim::sec(60)));
  const fi::Scenario b = fi::make_soak_scenario(smoke_profile(sim::sec(60)));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.validate().empty()) << a.validate();
  EXPECT_GT(a.events.size(), 10u);
  EXPECT_EQ(a.check_window, sim::msec(500));
  EXPECT_GT(a.send_gap, 0u);
  // Every kind made it into the schedule: hangs, flips, cable pairs,
  // loss windows, churn (join+drain) and replaces.
  int kinds[10] = {};
  for (const fi::ScenarioEvent& ev : a.events) ++kinds[static_cast<int>(ev.kind)];
  using K = fi::ScenarioEvent::Kind;
  EXPECT_GT(kinds[static_cast<int>(K::kNicHang)], 0);
  EXPECT_GT(kinds[static_cast<int>(K::kSramFlip)], 0);
  EXPECT_GT(kinds[static_cast<int>(K::kCableDown)], 0);
  EXPECT_EQ(kinds[static_cast<int>(K::kCableDown)],
            kinds[static_cast<int>(K::kCableUp)]);
  EXPECT_GT(kinds[static_cast<int>(K::kFaultWindow)], 0);
  EXPECT_GT(kinds[static_cast<int>(K::kNodeJoin)], 0);
  EXPECT_EQ(kinds[static_cast<int>(K::kNodeJoin)],
            kinds[static_cast<int>(K::kNodeDrain)]);
  EXPECT_GT(kinds[static_cast<int>(K::kNodeReplace)], 0);
  // And the soak JSON round-trips like any other scenario.
  std::string err;
  const auto back = fi::Scenario::from_json(a.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, a);
}

// The pinned smoke digest. Produced by a separate run of this scenario
// (any process, any machine building this tree reproduces it); a change
// here means the soak's observable history changed and must be
// deliberate.
constexpr std::uint64_t kSmokeDigest = 0x10cdf70d6ea2ad16ull;

TEST(Soak, Smoke64NodeAllFaultKindsZeroViolations) {
  const fi::Scenario s = fi::make_soak_scenario(smoke_profile(sim::sec(60)));
  ASSERT_EQ(s.nodes, 64);
  const fi::RunReport r = fi::ScenarioRunner::run(s);
  EXPECT_FALSE(r.failed()) << r.violation << " at window "
                           << r.violation_window << ": "
                           << r.violation_detail;
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.violation_window, -1);
  // Windowed sweeps actually ran — roughly one per 500 ms of virtual
  // time until the run quiesced.
  EXPECT_GE(r.windows_checked, 60u);
  EXPECT_LE(r.windows_checked, 130u);
  EXPECT_EQ(r.drift_checks, r.windows_checked + 1);  // + final sweep
  EXPECT_EQ(r.window_digests.size(), r.windows_checked);
  EXPECT_GT(r.recoveries, 0u);  // hangs and flips actually fired
  EXPECT_GT(r.remaps, 0u);      // cable outages actually rerouted
  EXPECT_EQ(r.digest, kSmokeDigest);
}

TEST(Soak, PlantedMapperLeakIsCaughtShrunkAndReplayedBitIdentically) {
  // Churn-only soak with the mapper's retired-node cache eviction
  // disabled (the test-only leak plant): every join/drain cycle strands
  // one attach-point and one route-cache entry, so the mapper caches
  // climb one entry per cycle until the drift probe's members+8 bound
  // trips mid-run.
  fi::SoakProfile p;
  p.seed = 7;
  p.nodes = 6;  // radix-8 fat-tree: leaf 1 keeps two host ports free
  p.radix = 8;
  p.duration = sim::sec(200);
  p.churn_every = sim::sec(10);
  p.hang_every = 0;
  p.cable_every = 0;
  p.flip_every = 0;
  p.loss_every = 0;
  p.replace_every = 0;
  p.drop = 0;
  p.corrupt = 0;
  p.retain_caches = true;
  const fi::Scenario s = fi::make_soak_scenario(p);

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.violation, "state-drift");
  EXPECT_NE(r.violation_detail.find("mapper-"), std::string::npos)
      << r.violation_detail;
  // Attributed to the window the leak crossed its bound in — mid-run,
  // well before the final window.
  const std::int64_t total_windows =
      static_cast<std::int64_t>((s.horizon - fi::Scenario::kWarmup) /
                                s.check_window);
  EXPECT_GT(r.violation_window, 10);
  EXPECT_LT(r.violation_window, total_windows - 10);

  // Shrink and replay: the repro JSON must re-run to the same failure,
  // bit for bit.
  fi::Shrinker::Config cfg;
  cfg.max_attempts = 80;
  const fi::ShrinkResult sr = fi::Shrinker::shrink(s, r, cfg);
  EXPECT_TRUE(sr.minimal.validate().empty());
  EXPECT_LE(sr.minimal.events.size(), s.events.size());
  EXPECT_LT(sr.minimal.effective_horizon(), s.effective_horizon());

  const std::string path = "repro_soak_leak_test.json";
  ASSERT_TRUE(fi::write_repro(path, sr.minimal, sr.report));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const auto back = fi::Scenario::from_json(ss.str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sr.minimal);
  const auto expect = fi::parse_repro_expect(ss.str());
  ASSERT_TRUE(expect.has_value());
  EXPECT_TRUE(expect->failed);
  EXPECT_EQ(expect->signature, "state-drift");
  const fi::RunReport replay = fi::ScenarioRunner::run(*back);
  EXPECT_EQ(replay.digest, expect->digest);
  EXPECT_EQ(replay.failure_signature(), expect->signature);
  std::remove(path.c_str());
}

TEST(Soak, TokenLeakIsAttributedToItsWindowAndShrinksToSubMinute) {
  // A token conjured 80 s into a two-minute windowed run: the violation
  // must land in the window the leak happened in (not the final one),
  // and the shrinker's truncation + time-shift passes must turn the
  // two-minute scenario into a sub-minute repro.
  fi::Scenario s;
  s.seed = 9;
  s.nodes = 4;
  s.msgs = 200;
  s.msg_len = 512;
  s.send_gap = sim::msec(100);
  s.check_window = sim::msec(500);
  s.horizon = fi::Scenario::kWarmup + sim::sec(120);
  fi::ScenarioEvent leak;
  leak.kind = fi::ScenarioEvent::Kind::kTokenLeak;
  leak.node = 1;
  leak.at = fi::Scenario::kWarmup + sim::sec(80) + sim::msec(130);
  s.events.push_back(leak);
  ASSERT_TRUE(s.validate().empty()) << s.validate();

  const fi::RunReport r = fi::ScenarioRunner::run(s);
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.violation, "token-conservation");
  // The sweep that caught it ran within the leak's own 500 ms window.
  const std::int64_t leak_window = static_cast<std::int64_t>(
      (leak.at - fi::Scenario::kWarmup) / s.check_window);
  EXPECT_EQ(r.violation_window, leak_window);
  EXPECT_GE(r.violation_at, leak.at);
  EXPECT_LT(r.violation_window,
            static_cast<std::int64_t>((s.horizon - fi::Scenario::kWarmup) /
                                      s.check_window) -
                1);
  EXPECT_EQ(r.windows_checked, static_cast<std::uint64_t>(leak_window));

  const fi::ShrinkResult sr = fi::Shrinker::shrink(s, r);
  EXPECT_EQ(sr.report.failure_signature(), "token-conservation");
  EXPECT_LT(sr.minimal.effective_horizon(), sim::sec(60));
  const fi::RunReport replay = fi::ScenarioRunner::run(sr.minimal);
  EXPECT_EQ(replay.digest, sr.report.digest);
}

}  // namespace
}  // namespace myri
