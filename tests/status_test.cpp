// gm::Status semantics: the typed result of the GM host API. Each code
// must be distinguishable at the call site (retry now vs back off vs give
// up); post() is the single send entry point.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "gm/status.hpp"

namespace myri {
namespace {

using gm::Cluster;
using gm::ClusterConfig;
using gm::Status;

ClusterConfig two_nodes(mcp::McpMode mode = mcp::McpMode::kGm) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mode;
  return cc;
}

TEST(Status, CodesConvertContextuallyAndName) {
  EXPECT_TRUE(Status().ok());
  EXPECT_TRUE(static_cast<bool>(Status(Status::kOk)));
  for (const auto c : {Status::kNoSendToken, Status::kNoRecvToken,
                       Status::kRecovering, Status::kInvalidArg,
                       Status::kUnreachable, Status::kDraining}) {
    const Status st(c);
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(static_cast<bool>(st));
    EXPECT_EQ(st.code(), c);
    EXPECT_STRNE(st.message(), "unknown");
    EXPECT_STRNE(st.message(), "ok");
  }
  EXPECT_EQ(Status(Status::kNoSendToken), Status::kNoSendToken);
  EXPECT_NE(Status(Status::kNoSendToken), Status::kNoRecvToken);
}

TEST(Status, InvalidArgumentsRejectedBeforeAnythingElse) {
  Cluster cluster(two_nodes());
  auto& tx = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(64);

  gm::Buffer unallocated;  // size 0 => invalid
  EXPECT_EQ(tx.post(unallocated, 16, {.dst = 1}).code(), Status::kInvalidArg);
  EXPECT_EQ(tx.post(b, 65, {.dst = 1}).code(), Status::kInvalidArg);
  EXPECT_EQ(tx.post(b, 64, {.dst = net::kInvalidNode}).code(),
            Status::kInvalidArg);
  EXPECT_EQ(tx.provide_receive_buffer(unallocated).code(),
            Status::kInvalidArg);
  // Token accounting untouched by rejected posts.
  EXPECT_EQ(tx.stats().sends_posted, 0u);
}

TEST(Status, SendTokenExhaustionReportsNoSendToken) {
  Cluster cluster(two_nodes());
  gm::Port::Config pc;
  pc.send_tokens = 2;
  auto& tx = cluster.node(0).open_port(2, pc);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(256);

  EXPECT_TRUE(tx.post(b, 256, {.dst = 1, .dst_port = 3}).ok());
  EXPECT_TRUE(tx.post(b, 256, {.dst = 1, .dst_port = 3}).ok());
  const Status st = tx.post(b, 256, {.dst = 1, .dst_port = 3});
  EXPECT_EQ(st.code(), Status::kNoSendToken);
  EXPECT_EQ(tx.send_tokens_free(), 0u);
}

TEST(Status, RecvTokenExhaustionReportsNoRecvToken) {
  Cluster cluster(two_nodes());
  gm::Port::Config pc;
  pc.recv_tokens = 1;
  auto& rx = cluster.node(1).open_port(3, pc);
  cluster.run_for(sim::usec(900));
  gm::Buffer b0 = rx.alloc_dma_buffer(256);
  gm::Buffer b1 = rx.alloc_dma_buffer(256);
  EXPECT_TRUE(rx.provide_receive_buffer(b0).ok());
  EXPECT_EQ(rx.provide_receive_buffer(b1).code(), Status::kNoRecvToken);
}

TEST(Status, MissingRouteReportsUnreachable) {
  ClusterConfig cc = two_nodes();
  cc.install_routes = false;  // nobody ran the mapper either
  Cluster cluster(cc);
  auto& tx = cluster.node(0).open_port(2);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  bool fired = false;
  const Status st = tx.post(
      b, 64, {.dst = 1, .dst_port = 3, .callback = [&](bool) { fired = true; }});
  EXPECT_EQ(st.code(), Status::kUnreachable);
  cluster.run_for(sim::msec(1));
  EXPECT_FALSE(fired);  // rejected posts never invoke the callback
}

TEST(Status, RecoveringPortRefusesWorkUntilReplayCompletes) {
  Cluster cluster(two_nodes(mcp::McpMode::kFtgm));
  auto& tx = cluster.node(0).open_port(2);
  cluster.node(1).open_port(3);
  cluster.run_for(sim::msec(2));
  gm::Buffer b = tx.alloc_dma_buffer(256);
  ASSERT_TRUE(tx.post(b, 256, {.dst = 1, .dst_port = 3}).ok());

  // Hang the NIC; the watchdog detects it, the driver restarts the MCP and
  // the port enters FAULT_DETECTED replay. The FTD pipeline alone takes
  // ~765 ms of simulated time (paper Table 3), so step in 1 ms increments.
  cluster.node(0).mcp().inject_hang("test");
  for (int i = 0; i < 2000 && !tx.recovering(); ++i) {
    cluster.run_for(sim::msec(1));
  }
  ASSERT_TRUE(tx.recovering());

  // Mid-replay: every posting entry point backs the caller off.
  EXPECT_EQ(tx.post(b, 256, {.dst = 1, .dst_port = 3}).code(),
            Status::kRecovering);
  EXPECT_EQ(tx.provide_receive_buffer(tx.alloc_dma_buffer(256)).code(),
            Status::kRecovering);
  EXPECT_EQ(tx.get_with_callback(b, 64, 1, 3, 0, nullptr).code(),
            Status::kRecovering);

  // Once replay finishes the port accepts work again (paper: transparent
  // recovery, applications unchanged).
  for (int i = 0; i < 4000 && tx.recovering(); ++i) {
    cluster.run_for(sim::msec(1));
  }
  ASSERT_FALSE(tx.recovering());
  EXPECT_TRUE(tx.post(b, 256, {.dst = 1, .dst_port = 3}).ok());
}

TEST(Status, PostIsTheSingleSendEntryPoint) {
  // The PR-2 fire-and-forget bool shim is gone: post() carries the same
  // contextual-bool convenience without hiding the refusal reason.
  Cluster cluster(two_nodes());
  gm::Port::Config pc;
  pc.send_tokens = 1;
  auto& tx = cluster.node(0).open_port(2, pc);
  cluster.run_for(sim::usec(900));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  EXPECT_TRUE(tx.post(b, 64, {.dst = 1, .dst_port = 3}).ok());
  const Status again = tx.post(b, 64, {.dst = 1, .dst_port = 3});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), Status::kNoSendToken);
}

}  // namespace
}  // namespace myri
